package crest

import (
	"strings"
	"testing"
)

// Satellite: every misconfiguration that used to surface as a panic
// deep inside the memory pool is a validated error at the Config
// layer, each with a descriptive message.
func TestConfigValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative memory nodes", Config{MemoryNodes: -1},
			"need at least one memory node per shard group, got -1"},
		{"replicas equal nodes", Config{MemoryNodes: 1, Replicas: 1},
			"1 replicas needs more than 1 memory nodes"},
		{"negative replicas", Config{MemoryNodes: 2, Replicas: -1},
			"-1 replicas needs more than 2 memory nodes"},
		{"negative shards", Config{Shards: -2},
			"need at least one shard group, got -2"},
		{"too many shards", Config{Shards: 65},
			"65 shard groups exceed the maximum of 64"},
		{"unknown placement", Config{Placement: "round-robin"},
			`unknown policy "round-robin"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(tc.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The unknown-placement error lists the valid policies.
	_, err := NewCluster(Config{Placement: "nope"})
	for _, name := range PlacementPolicies() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list policy %q", err, name)
		}
	}
}

// Satellite: an explicitly undersized pool is rejected with an error
// instead of the allocator's exhaustion panic.
func TestUndersizedPoolValidated(t *testing.T) {
	c, err := NewCluster(Config{PoolBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(TableSpec{ID: 1, Name: "t", CellSizes: []int{8}, Capacity: 4096}); err != nil {
		t.Fatal(err)
	}
	err = c.Load(1, 0, [][]byte{U64(1, 8)})
	if err == nil {
		t.Fatal("1 KiB pool accepted for a 4096-row table")
	}
	if !strings.Contains(err.Error(), "cannot hold the declared tables") {
		t.Fatalf("error %q does not diagnose the undersized pool", err)
	}
}

// newShardedBank is newBankCluster with an explicit topology.
func newShardedBank(t *testing.T, system System, n int, cfg Config) *Cluster {
	t.Helper()
	cfg.System = system
	if cfg.CoordinatorsPerNode == 0 {
		cfg.CoordinatorsPerNode = 4
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []TableSpec{
		{ID: 1, Name: "savings", CellSizes: []int{8}, Capacity: n + 8},
		{ID: 2, Name: "checking", CellSizes: []int{8, 8}, Capacity: n + 8},
	} {
		if err := c.CreateTable(spec); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ {
		if err := c.Load(1, Key(k), [][]byte{U64(100, 8)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Load(2, Key(k), [][]byte{U64(100, 8), U64(0, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

// Every engine runs correctly on a multi-group topology under every
// placement policy: transfers across the whole key space commit and
// conserve money even when they span shard groups.
func TestShardedClusterConservesMoney(t *testing.T) {
	for _, system := range []System{SystemCREST, SystemFORD, SystemMotor} {
		for _, pol := range PlacementPolicies() {
			t.Run(string(system)+"/"+pol, func(t *testing.T) {
				cfg := Config{Shards: 3, MemoryNodes: 2, Placement: pol}
				if pol == "hotspot" {
					cfg.PlacementHotKeys = []PlacementHotKey{{Table: 2, Key: 0, Shard: 0}, {Table: 2, Key: 1, Shard: 0}}
				}
				c := newShardedBank(t, system, 12, cfg)
				var txns []*Txn
				for i := 0; i < 24; i++ {
					txns = append(txns, transfer(Key(i%12), Key((i+5)%12), 3))
				}
				results, err := c.ExecuteAll(txns...)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					if !r.Committed {
						t.Fatalf("txn %d did not commit", i)
					}
				}
				total := uint64(0)
				for k := 0; k < 12; k++ {
					row, err := c.ReadRow(2, Key(k), 0)
					if err != nil {
						t.Fatal(err)
					}
					total += GetU64(row[0])
				}
				if total != 1200 {
					t.Fatalf("money not conserved: %d", total)
				}
			})
		}
	}
}

// The sharded topology keeps the simulation deterministic: same seed,
// same virtual end time.
func TestShardedClusterDeterminism(t *testing.T) {
	run := func() int64 {
		c := newShardedBank(t, SystemCREST, 8, Config{Shards: 2, MemoryNodes: 2, Placement: "modulo"})
		var txns []*Txn
		for i := 0; i < 16; i++ {
			txns = append(txns, transfer(Key(i%4), Key(4+(i%4)), 2))
		}
		if _, err := c.ExecuteAll(txns...); err != nil {
			t.Fatal(err)
		}
		return int64(c.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different virtual end times: %d vs %d", a, b)
	}
}

// PlacementSeedFromWhy turns a recorded contention snapshot into a
// hotspot-policy seed pinning the hottest keys to shard group 0.
func TestPlacementSeedFromWhy(t *testing.T) {
	c := newShardedBank(t, SystemCREST, 8, Config{Shards: 2, MemoryNodes: 2, Placement: "modulo", Why: true})
	var txns []*Txn
	for i := 0; i < 64; i++ {
		txns = append(txns, transfer(Key(i%2), Key((i+1)%2), 1))
	}
	if _, err := c.ExecuteAll(txns...); err != nil {
		t.Fatal(err)
	}
	seed := PlacementSeedFromWhy(c.WhySnapshot(), 4)
	if len(seed) == 0 {
		t.Fatal("contended run produced no hotspot seed")
	}
	if len(seed) > 4 {
		t.Fatalf("limit 4 returned %d keys", len(seed))
	}
	for _, hk := range seed {
		if hk.Shard != 0 {
			t.Fatalf("seed pins %+v away from shard 0", hk)
		}
	}
}
