package crest

import (
	"testing"
	"time"
)

// newBankCluster builds a small two-table cluster (savings, checking)
// with n accounts holding 100 in each table.
func newBankCluster(t *testing.T, system System, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{System: system, CoordinatorsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []TableSpec{
		{ID: 1, Name: "savings", CellSizes: []int{8}, Capacity: n + 8},
		{ID: 2, Name: "checking", CellSizes: []int{8, 8}, Capacity: n + 8},
	} {
		if err := c.CreateTable(spec); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ {
		if err := c.Load(1, Key(k), [][]byte{U64(100, 8)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Load(2, Key(k), [][]byte{U64(100, 8), U64(0, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func transfer(from, to Key, amount uint64) *Txn {
	return NewTxn("transfer").AddBlock(
		Op{
			Table: 2, Key: from, ReadCells: []int{0}, WriteCells: []int{0},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{PutU64(read[0], GetU64(read[0])-amount)}
			},
		},
		Op{
			Table: 2, Key: to, ReadCells: []int{0}, WriteCells: []int{0},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{PutU64(read[0], GetU64(read[0])+amount)}
			},
		},
	)
}

func TestQuickstartFlow(t *testing.T) {
	for _, system := range []System{SystemCREST, SystemFORD, SystemMotor, SystemCRESTCell, SystemCRESTBase} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			c := newBankCluster(t, system, 16)
			res, err := c.Execute(transfer(1, 2, 30))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed {
				t.Fatal("transfer did not commit")
			}
			if res.Latency <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			a, err := c.ReadRow(2, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := c.ReadRow(2, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if GetU64(a[0]) != 70 || GetU64(b[0]) != 130 {
				t.Fatalf("balances %d/%d, want 70/130", GetU64(a[0]), GetU64(b[0]))
			}
		})
	}
}

func TestExecuteAllConcurrentTransfersConserveMoney(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 8)
	var txns []*Txn
	for i := 0; i < 32; i++ {
		txns = append(txns, transfer(Key(i%8), Key((i+3)%8), 5))
	}
	results, err := c.ExecuteAll(txns...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Committed {
			t.Fatalf("txn %d did not commit", i)
		}
	}
	total := uint64(0)
	for k := 0; k < 8; k++ {
		row, err := c.ReadRow(2, Key(k), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += GetU64(row[0])
	}
	if total != 800 {
		t.Fatalf("money not conserved: %d", total)
	}
}

func TestKeyDependencyAcrossBlocks(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 8)
	type st struct{ target uint64 }
	s := &st{}
	txn := NewTxn("indirect").WithState(s)
	txn.AddBlock(Op{
		Table: 2, Key: 3, ReadCells: []int{1},
		Hook: func(state any, read [][]byte) [][]byte {
			state.(*st).target = GetU64(read[0]) + 5 // cell 1 is 0 → key 5
			return nil
		},
	})
	txn.AddBlock(Op{
		Table:      2,
		KeyFn:      func(state any) Key { return Key(state.(*st).target) },
		ReadCells:  []int{0},
		WriteCells: []int{0},
		Hook: func(_ any, read [][]byte) [][]byte {
			return [][]byte{PutU64(read[0], GetU64(read[0])+1)}
		},
	})
	if res, err := c.Execute(txn); err != nil || !res.Committed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	row, err := c.ReadRow(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if GetU64(row[0]) != 101 {
		t.Fatalf("dependent record = %d, want 101", GetU64(row[0]))
	}
}

func TestRecoverOnCRESTCluster(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 8)
	if _, err := c.Execute(transfer(0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries == 0 || rep.Committed == 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.CellsRepaired != 0 {
		t.Fatal("clean cluster needed repairs")
	}
}

func TestRecoverRejectedOnBaselines(t *testing.T) {
	c := newBankCluster(t, SystemFORD, 4)
	if _, err := c.Recover(); err == nil {
		t.Fatal("FORD cluster accepted Recover")
	}
}

func TestMemoryNodeFailureSurfacesAndRecovers(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 8)
	if err := c.FailMemoryNode(99); err == nil {
		t.Fatal("bad node id accepted")
	}
	if err := c.FailMemoryNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreMemoryNode(0); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Execute(transfer(0, 1, 1)); err != nil || !res.Committed {
		t.Fatalf("cluster unusable after restore: %+v %v", res, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{MemoryNodes: 1, Replicas: 1}); err == nil {
		t.Fatal("replicas >= nodes accepted")
	}
	c, _ := NewCluster(Config{})
	if err := c.CreateTable(TableSpec{ID: 1, Name: "bad", CellSizes: nil, Capacity: 1}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := c.CreateTable(TableSpec{ID: 1, Name: "bad", CellSizes: []int{8}, Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := c.Execute(NewTxn("x")); err == nil {
		t.Fatal("execute before finalize accepted")
	}
}

func TestLoadAfterFinalizeRejected(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 4)
	if err := c.Load(1, 99, [][]byte{U64(1, 8)}); err == nil {
		t.Fatal("load after finalize accepted")
	}
	if err := c.Finalize(); err == nil {
		t.Fatal("double finalize accepted")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() time.Duration {
		c := newBankCluster(t, SystemCREST, 8)
		var txns []*Txn
		for i := 0; i < 16; i++ {
			txns = append(txns, transfer(Key(i%4), Key(4+(i%4)), 2))
		}
		if _, err := c.ExecuteAll(txns...); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different virtual end times: %v vs %v", a, b)
	}
}

func TestRunBenchmarkQuick(t *testing.T) {
	res, err := RunBenchmark(BenchmarkConfig{
		System:              SystemCREST,
		Workload:            WorkloadYCSB,
		Quick:               true,
		CoordinatorsPerNode: 8,
		Duration:            4 * time.Millisecond,
		Warmup:              time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputKOPS <= 0 || res.Committed == 0 {
		t.Fatalf("empty result %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunBenchmarkUnknownWorkload(t *testing.T) {
	if _, err := RunBenchmark(BenchmarkConfig{Workload: "nope", Quick: true}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("%d experiments, want 16 (fig2-4, table1-2, exp1-8, scenario, crossover, tailprof): %v", len(ids), ids)
	}
	if ids[0] != "fig2" || ids[len(ids)-1] != "tailprof" {
		t.Fatalf("order: %v", ids)
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	tabs, err := RunExperiment("table1", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || len(tabs[0].Rows) != 3 {
		t.Fatalf("table1 shape: %d tables", len(tabs))
	}
}

func TestInsertAndDeleteRows(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 8)
	if err := c.InsertRow(1, 100, [][]byte{U64(555, 8)}); err != nil {
		t.Fatal(err)
	}
	row, err := c.ReadRow(1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if GetU64(row[0]) != 555 {
		t.Fatalf("inserted row reads %d", GetU64(row[0]))
	}
	if err := c.DeleteRow(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadRow(1, 100, 0); err == nil {
		t.Fatal("deleted row still readable")
	}
}

func TestRowOpsRejectedOnBaselines(t *testing.T) {
	c := newBankCluster(t, SystemMotor, 4)
	if err := c.InsertRow(1, 100, [][]byte{U64(1, 8)}); err == nil {
		t.Fatal("Motor cluster accepted InsertRow")
	}
	if err := c.DeleteRow(1, 0); err == nil {
		t.Fatal("Motor cluster accepted DeleteRow")
	}
}

func TestTxnBuilderValidation(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 4)
	// A read-only op without a hook gets a default no-op hook.
	txn := NewTxn("noop-read").AddBlock(Op{Table: 1, Key: 0, ReadCells: []int{0}})
	if res, err := c.Execute(txn); err != nil || !res.Committed {
		t.Fatalf("hookless read: %+v %v", res, err)
	}
	// A write op without a hook panics inside the engine; the sim
	// surfaces it as an error rather than crashing the process.
	bad := NewTxn("bad-write").AddBlock(Op{Table: 1, Key: 0, WriteCells: []int{0}})
	if _, err := c.Execute(bad); err == nil {
		t.Fatal("write op without hook did not error")
	}
}

func TestWithStateThreadsThroughHooks(t *testing.T) {
	c := newBankCluster(t, SystemCREST, 4)
	type counter struct{ reads int }
	st := &counter{}
	txn := NewTxn("stateful").WithState(st).AddBlock(
		Op{Table: 1, Key: 0, ReadCells: []int{0},
			Hook: func(s any, _ [][]byte) [][]byte { s.(*counter).reads++; return nil }},
		Op{Table: 1, Key: 1, ReadCells: []int{0},
			Hook: func(s any, _ [][]byte) [][]byte { s.(*counter).reads++; return nil }},
	)
	if res, err := c.Execute(txn); err != nil || !res.Committed {
		t.Fatalf("%+v %v", res, err)
	}
	if st.reads != 2 {
		t.Fatalf("hooks saw state %d times", st.reads)
	}
}

func TestMemoryNodeFailureSurfacesAsError(t *testing.T) {
	// With f=0 there is no backup: a transaction against the failed
	// node surfaces the fabric error through the simulation.
	c, err := NewCluster(Config{MemoryNodes: 1, Replicas: 0, ComputeNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(TableSpec{ID: 1, Name: "t", CellSizes: []int{8}, Capacity: 4}); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 4; k++ {
		if err := c.Load(1, k, [][]byte{U64(1, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := c.FailMemoryNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadRow(1, 0, 0); err == nil {
		t.Fatal("read against dead sole memory node succeeded")
	}
}

func TestResyncMemoryNodeViaCluster(t *testing.T) {
	c, err := NewCluster(Config{MemoryNodes: 3, Replicas: 1, ComputeNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(TableSpec{ID: 1, Name: "t", CellSizes: []int{8}, Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 8; k++ {
		if err := c.Load(1, k, [][]byte{U64(7, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := c.FailMemoryNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreMemoryNode(1); err != nil {
		t.Fatal(err)
	}
	n, err := c.ResyncMemoryNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing resynced")
	}
	mc := newBankCluster(t, SystemMotor, 4)
	if _, err := mc.ResyncMemoryNode(0); err == nil {
		t.Fatal("Motor cluster accepted resync")
	}
}
