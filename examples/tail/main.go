// Tail: run a deliberately contended SmallBank mix with the flight
// recorder enabled, then answer the question every latency SLO
// postmortem raises — where did the p99.9 transaction's time go? The
// recorder gives every transaction an additive budget (queue,
// backoff, per-class wire time, lock-wait, per-phase compute) that
// sums exactly to its virtual-time latency, and keeps attempt-level
// exemplars for the worst outlier of each failure mode on each shard.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"crest"
)

func main() {
	fmt.Println("SmallBank, Zipf θ=0.99, 120 coordinators — flight recorder on")
	fmt.Println()
	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:              crest.SystemCREST,
		Workload:            crest.WorkloadSmallBank,
		Theta:               0.99,
		CoordinatorsPerNode: 40,
		Duration:            5 * time.Millisecond,
		Warmup:              time.Millisecond,
		Quick:               true,

		Flight: true, // record per-txn latency budgets; the schedule is unchanged
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("  committed=%d aborted=%d\n\n", res.Committed, res.Aborted)

	snap := res.Flight
	if len(snap.Txns) == 0 {
		log.Fatal("no transactions recorded")
	}

	// The tail report: per-component budget of the p50/p99/p999
	// cohorts, which component grows fastest toward the tail, and the
	// top exemplars with their dominant attempt.
	if err := crest.WriteFlightTail(os.Stdout, snap, 3); err != nil {
		log.Fatal(err)
	}

	// Walk the single worst exemplar's critical path attempt by
	// attempt: every row shows where that attempt's time went and every
	// gap between attempts is classified queue or backoff.
	var worstID uint64
	var worstTotal time.Duration
	for i := range snap.Exemplars {
		ex := &snap.Exemplars[i]
		if d := time.Duration(ex.Total()); d > worstTotal {
			worstTotal, worstID = d, ex.ID
		}
	}
	fmt.Printf("\nworst exemplar, attempt by attempt:\n\n")
	if err := crest.WriteFlightCritPath(os.Stdout, snap, worstID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nExport the full recording with cmd/crestbench:")
	fmt.Println("  crestbench -run -workload smallbank -theta 0.99 -flight fl.json")
	fmt.Println("  cresttrace tail -in fl.json && cresttrace critpath -in fl.json <txnid>")
}
