// Why: run a deliberately contended SmallBank mix with abort
// forensics enabled, then answer the question every aborted
// transaction raises — who did this to me? The recorder keeps the
// wait-for and conflict edges the engines observe, so an abort
// explains itself as a blame chain: the access that killed it, the
// transaction that made that access, and what *that* transaction was
// waiting on, hop by hop with virtual-time durations.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"crest"
)

func main() {
	fmt.Println("SmallBank, Zipf θ=0.99, 120 coordinators — abort forensics on")
	fmt.Println()
	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:              crest.SystemCREST,
		Workload:            crest.WorkloadSmallBank,
		Theta:               0.99,
		CoordinatorsPerNode: 40,
		Duration:            5 * time.Millisecond,
		Warmup:              time.Millisecond,
		Quick:               true,

		Why: true, // record wait-for/conflict edges; the schedule is unchanged
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("  committed=%d aborted=%d\n\n", res.Committed, res.Aborted)

	snap := res.Why
	if len(snap.Txns) == 0 {
		log.Fatal("no transactions recorded")
	}

	// Pick the aborted transaction with the deepest blame chain — the
	// most interesting victim.
	var victim uint64
	longest := 0
	for i := range snap.Txns {
		tx := &snap.Txns[i]
		if tx.Cause == nil {
			continue
		}
		if hops := snap.BlameChain(tx.ID, 0); len(hops) > longest {
			longest, victim = len(hops), tx.ID
		}
	}
	if victim == 0 {
		log.Fatal("no abort recorded a cause; raise the contention")
	}

	fmt.Printf("deepest blame chain (%d hops):\n\n", longest)
	if err := crest.WriteWhyBlame(os.Stdout, snap, victim); err != nil {
		log.Fatal(err)
	}

	// The same snapshot aggregates into a contention graph: who blocks
	// whom, which records are hot, and any wait cycles.
	g := snap.Graph()
	fmt.Println("\nhottest cells:")
	for i, h := range g.Hotspots {
		if i == 3 {
			break
		}
		fmt.Printf("  table %d, key %d, cell %d: %d conflict edges, %d abort causes, %s total wait\n",
			h.Table, h.Key, h.Cell, h.Count, h.Aborts, h.TotalWait)
	}
	fmt.Println("\nExport the full graph with cmd/crestbench:")
	fmt.Println("  crestbench -run -workload smallbank -theta 0.99 -why out.dot && dot -Tsvg out.dot")
}
