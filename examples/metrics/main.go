// Metrics: run a short high-contention YCSB mix with the windowed
// metrics plane enabled and print the abort-rate time-series — how
// contention evolves over virtual time, not just the end-of-run total.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"crest"
)

func main() {
	// A deliberately hostile mix: 24 coordinators hammering a small
	// Zipfian-skewed (θ=0.99) keyspace, half the accesses writes.
	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:       crest.SystemCREST,
		Workload:     crest.WorkloadYCSB,
		Theta:        0.99,
		WriteRatio:   0.5,
		Coordinators: 24,
		Duration:     5 * time.Millisecond,
		Warmup:       time.Millisecond,
		Quick:        true,

		Metrics:       true,
		MetricsWindow: 200 * time.Microsecond, // one row per 200µs of virtual time
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// The snapshot holds one sample per window for every series:
	// per-window deltas for counters, boundary values for gauges.
	snap := res.Metrics
	attempts := snap.Find("crest_txn_attempts_total", "")
	if attempts == nil || len(snap.Times) == 0 {
		log.Fatal("no windowed series recorded")
	}

	// Abort rate per window: aborted attempts (summed across the
	// by-reason series) over attempts started in the window.
	abortsPerWindow := make([]float64, len(snap.Times))
	for i := range snap.Series {
		se := &snap.Series[i]
		if se.Name != "crest_txn_aborts_total" {
			continue
		}
		for w, v := range se.Samples {
			abortsPerWindow[w] += v
		}
	}
	fmt.Println("\nabort rate over virtual time:")
	fmt.Println("  window     attempts  aborts  rate")
	for w, start := range snap.Times {
		a := attempts.Samples[w]
		rate := 0.0
		if a > 0 {
			rate = abortsPerWindow[w] / a
		}
		fmt.Printf("  %7.0fµs  %8.0f  %6.0f  %5.1f%%  %s\n",
			float64(start)/1e3, a, abortsPerWindow[w], 100*rate,
			strings.Repeat("#", int(rate*40+0.5)))
	}

	// The same snapshot renders as a terminal summary or exports to
	// Prometheus/CSV/JSON (see cmd/crestbench -metrics).
	fmt.Println()
	if err := crest.WriteMetricsSparklines(os.Stdout, snap); err != nil {
		log.Fatal(err)
	}

	sharded()
}

// sharded runs the same plane on a partitioned topology: four shard
// groups, each a simulation partition with its own recorder shard, all
// merged into one deterministic snapshot. The per-shard engine gauges
// and the window executor's partition instruments carry labels, so one
// snapshot answers "which shard group is hot?" and "how balanced is the
// partitioned schedule?".
func sharded() {
	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:       crest.SystemCREST,
		Workload:     crest.WorkloadSmallBank,
		Theta:        0.5,
		Coordinators: 24,
		Shards:       4,
		Placement:    "modulo",
		Duration:     5 * time.Millisecond,
		Warmup:       time.Millisecond,
		Quick:        true,

		Metrics: true,
		// Four workers: the observed run parallelizes too, and the
		// snapshot below is byte-identical at any worker count.
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res)

	snap := res.Metrics
	fmt.Println("\nper-shard totals (label-selected from one merged snapshot):")
	fmt.Println("  shard  commits  events  injected  mailbox-hwm  cross-verbs")
	for g := 0; g < 4; g++ {
		label := fmt.Sprintf(`shard="%d"`, g)
		part := fmt.Sprintf(`partition="%d"`, g)
		fmt.Printf("  %5d  %7.0f  %6.0f  %8.0f  %11.0f  %11.0f\n", g,
			seriesTotal(snap, "crest_shard_commits_total", label),
			seriesTotal(snap, "crest_sim_part_dispatches_total", part),
			seriesTotal(snap, "crest_sim_part_injected_total", part),
			seriesLast(snap, "crest_sim_part_mailbox_hwm", part),
			seriesTotal(snap, "crest_rdma_cross_part_verbs_total", part))
	}
	fmt.Printf("\nwindow executor: %.0f windows, mean width %.0f virtual ns\n",
		seriesTotal(snap, "crest_sim_windows_total", ""),
		seriesLast(snap, "crest_sim_window_width_avg", ""))
}

// seriesTotal returns a counter series' end-of-run total (0 if absent).
func seriesTotal(snap *crest.MetricsSnapshot, name, labels string) float64 {
	if se := snap.Find(name, labels); se != nil {
		return se.Total
	}
	return 0
}

// seriesLast returns a gauge series' final windowed sample (0 if absent).
func seriesLast(snap *crest.MetricsSnapshot, name, labels string) float64 {
	if se := snap.Find(name, labels); se != nil && len(se.Samples) > 0 {
		return se.Samples[len(se.Samples)-1]
	}
	return 0
}
