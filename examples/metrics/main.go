// Metrics: run a short high-contention YCSB mix with the windowed
// metrics plane enabled and print the abort-rate time-series — how
// contention evolves over virtual time, not just the end-of-run total.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"crest"
)

func main() {
	// A deliberately hostile mix: 24 coordinators hammering a small
	// Zipfian-skewed (θ=0.99) keyspace, half the accesses writes.
	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:       crest.SystemCREST,
		Workload:     crest.WorkloadYCSB,
		Theta:        0.99,
		WriteRatio:   0.5,
		Coordinators: 24,
		Duration:     5 * time.Millisecond,
		Warmup:       time.Millisecond,
		Quick:        true,

		Metrics:       true,
		MetricsWindow: 200 * time.Microsecond, // one row per 200µs of virtual time
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// The snapshot holds one sample per window for every series:
	// per-window deltas for counters, boundary values for gauges.
	snap := res.Metrics
	attempts := snap.Find("crest_txn_attempts_total", "")
	if attempts == nil || len(snap.Times) == 0 {
		log.Fatal("no windowed series recorded")
	}

	// Abort rate per window: aborted attempts (summed across the
	// by-reason series) over attempts started in the window.
	abortsPerWindow := make([]float64, len(snap.Times))
	for i := range snap.Series {
		se := &snap.Series[i]
		if se.Name != "crest_txn_aborts_total" {
			continue
		}
		for w, v := range se.Samples {
			abortsPerWindow[w] += v
		}
	}
	fmt.Println("\nabort rate over virtual time:")
	fmt.Println("  window     attempts  aborts  rate")
	for w, start := range snap.Times {
		a := attempts.Samples[w]
		rate := 0.0
		if a > 0 {
			rate = abortsPerWindow[w] / a
		}
		fmt.Printf("  %7.0fµs  %8.0f  %6.0f  %5.1f%%  %s\n",
			float64(start)/1e3, a, abortsPerWindow[w], 100*rate,
			strings.Repeat("#", int(rate*40+0.5)))
	}

	// The same snapshot renders as a terminal summary or exports to
	// Prometheus/CSV/JSON (see cmd/crestbench -metrics).
	fmt.Println()
	if err := crest.WriteMetricsSparklines(os.Stdout, snap); err != nil {
		log.Fatal(err)
	}
}
