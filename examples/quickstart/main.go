// Quickstart: build a simulated disaggregated cluster, load a table,
// run transactions through the CREST engine and read the result.
package main

import (
	"fmt"
	"log"

	"crest"
)

const accounts = 1 // table id

func main() {
	// The zero config is the paper's testbed shape: 2 memory nodes,
	// 3 compute nodes, f=1 replication, a 2µs-RTT simulated fabric.
	cluster, err := crest.NewCluster(crest.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// One table: 16 accounts, each a record with two cells
	// (columns): balance and a deposit counter.
	if err := cluster.CreateTable(crest.TableSpec{
		ID: accounts, Name: "accounts", CellSizes: []int{8, 8}, Capacity: 16,
	}); err != nil {
		log.Fatal(err)
	}
	for k := crest.Key(0); k < 16; k++ {
		if err := cluster.Load(accounts, k, [][]byte{crest.U64(1000, 8), crest.U64(0, 8)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Finalize(); err != nil {
		log.Fatal(err)
	}

	// A deposit is one op: read-modify-write the balance cell and
	// bump the counter cell. Cell-level concurrency control means a
	// concurrent reader of the counter cell never conflicts with a
	// balance update.
	deposit := func(key crest.Key, amount uint64) *crest.Txn {
		return crest.NewTxn("deposit").AddBlock(crest.Op{
			Table: accounts, Key: key,
			ReadCells:  []int{0, 1},
			WriteCells: []int{0, 1},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{
					crest.PutU64(read[0], crest.GetU64(read[0])+amount),
					crest.PutU64(read[1], crest.GetU64(read[1])+1),
				}
			},
		})
	}

	// Run 32 concurrent deposits against the same hot account.
	txns := make([]*crest.Txn, 32)
	for i := range txns {
		txns[i] = deposit(7, 25)
	}
	results, err := cluster.ExecuteAll(txns...)
	if err != nil {
		log.Fatal(err)
	}
	attempts := 0
	for _, r := range results {
		attempts += r.Attempts
	}

	row, err := cluster.ReadRow(accounts, 7, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("account 7: balance=%d deposits=%d\n", crest.GetU64(row[0]), crest.GetU64(row[1]))
	fmt.Printf("32 concurrent deposits took %d attempts total, %v of virtual time\n",
		attempts, cluster.Now())
	if crest.GetU64(row[0]) != 1000+32*25 {
		log.Fatal("lost update!")
	}
	fmt.Println("serializable: no update lost")
}
