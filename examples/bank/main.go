// Bank: a SmallBank-style contended benchmark comparing all three
// systems on the same skewed transfer workload, printing the paper's
// headline metrics (throughput, abort rate, latency percentiles).
package main

import (
	"fmt"
	"log"
	"time"

	"crest"
)

func main() {
	fmt.Println("SmallBank, Zipf θ=0.99, 120 coordinators over 3 compute nodes")
	fmt.Println("(virtual-time measurement on the simulated RDMA fabric)")
	fmt.Println()
	fmt.Printf("%-7s %10s %9s %9s %9s %10s\n", "system", "KOPS", "abort%", "avg µs", "p99 µs", "committed")
	for _, system := range []crest.System{crest.SystemCREST, crest.SystemFORD, crest.SystemMotor} {
		res, err := crest.RunBenchmark(crest.BenchmarkConfig{
			System:              system,
			Workload:            crest.WorkloadSmallBank,
			Theta:               0.99,
			CoordinatorsPerNode: 40,
			Duration:            10 * time.Millisecond,
			Warmup:              2 * time.Millisecond,
			Quick:               true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %10.1f %8.1f%% %9.1f %9.1f %10d\n",
			res.System, res.ThroughputKOPS, 100*res.AbortRate,
			res.AvgLatencyUs, res.P99LatencyUs, res.Committed)
	}
	fmt.Println()
	fmt.Println("CREST's localized execution lets transactions on the same compute node")
	fmt.Println("share hot accounts through the record cache instead of aborting each")
	fmt.Println("other in the memory pool (§5 of the paper).")
}
