// Orders: the paper's motivating false-conflict scenario (§2.3).
//
// TPC-C's warehouse table is touched by ~92% of transactions:
// NewOrder only READS the warehouse tax column while Payment UPDATES
// the warehouse YTD column. Under record-level concurrency control
// (FORD) those are conflicts and abort each other; under CREST's
// cell-level concurrency control they run concurrently.
//
// This example runs the same contended mix against both systems and
// prints the abort counts side by side.
package main

import (
	"fmt"
	"log"

	"crest"
)

const warehouse = 1

// Warehouse cells: 0 = name, 1 = tax rate, 2 = year-to-date balance.
func buildCluster(system crest.System) *crest.Cluster {
	cluster, err := crest.NewCluster(crest.Config{
		System:              system,
		CoordinatorsPerNode: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.CreateTable(crest.TableSpec{
		ID: warehouse, Name: "warehouse", CellSizes: []int{10, 8, 8}, Capacity: 4,
	}); err != nil {
		log.Fatal(err)
	}
	for w := crest.Key(0); w < 4; w++ {
		err := cluster.Load(warehouse, w, [][]byte{
			[]byte("WAREHOUSE "), crest.U64(725, 8), crest.U64(0, 8),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Finalize(); err != nil {
		log.Fatal(err)
	}
	return cluster
}

// newOrder reads the warehouse identification and tax columns — it
// never writes the warehouse.
func newOrder(w crest.Key) *crest.Txn {
	return crest.NewTxn("NewOrder").AddBlock(crest.Op{
		Table: warehouse, Key: w,
		ReadCells: []int{0, 1},
		Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
	})
}

// payment updates only the warehouse YTD column.
func payment(w crest.Key, amount uint64) *crest.Txn {
	return crest.NewTxn("Payment").AddBlock(crest.Op{
		Table: warehouse, Key: w,
		ReadCells:  []int{2},
		WriteCells: []int{2},
		Hook: func(_ any, read [][]byte) [][]byte {
			return [][]byte{crest.PutU64(read[0], crest.GetU64(read[0])+amount)}
		},
	})
}

func run(system crest.System) (attempts int, ytd uint64) {
	cluster := buildCluster(system)
	var txns []*crest.Txn
	for i := 0; i < 60; i++ {
		// Everyone hammers warehouse 0: half order placements, half
		// payments.
		if i%2 == 0 {
			txns = append(txns, newOrder(0))
		} else {
			txns = append(txns, payment(0, 100))
		}
	}
	results, err := cluster.ExecuteAll(txns...)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		attempts += r.Attempts
	}
	row, err := cluster.ReadRow(warehouse, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	return attempts, crest.GetU64(row[0])
}

func main() {
	fmt.Println("60 transactions against one hot warehouse (30 NewOrder reads, 30 Payment updates)")
	for _, system := range []crest.System{crest.SystemFORD, crest.SystemCREST} {
		attempts, ytd := run(system)
		fmt.Printf("%-6s: %3d total attempts (%d retries), final YTD = %d\n",
			system, attempts, attempts-60, ytd)
	}
	fmt.Println()
	fmt.Println("FORD treats NewOrder's tax reads and Payment's YTD updates as record")
	fmt.Println("conflicts (false conflicts); CREST's cell-level locks and epochs let")
	fmt.Println("them commit side by side with far fewer retries.")
}
