// Recovery: demonstrate CREST's dependency-tracking redo logs (§6 of
// the paper) surviving a memory-node failure.
//
// The example commits a chain of dependent transfers, fails one memory
// node, and runs crash recovery from the surviving log replicas: every
// committed transaction is rolled forward and stale locks are cleared.
package main

import (
	"fmt"
	"log"

	"crest"
)

const ledger = 1

func main() {
	cluster, err := crest.NewCluster(crest.Config{
		MemoryNodes: 3,
		Replicas:    1, // every record and log entry has one backup
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.CreateTable(crest.TableSpec{
		ID: ledger, Name: "ledger", CellSizes: []int{8}, Capacity: 8,
	}); err != nil {
		log.Fatal(err)
	}
	for k := crest.Key(0); k < 8; k++ {
		if err := cluster.Load(ledger, k, [][]byte{crest.U64(100, 8)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Finalize(); err != nil {
		log.Fatal(err)
	}

	// A chain of dependent transfers along the ring of accounts:
	// account k hands 10·k to account k+1.
	var txns []*crest.Txn
	for k := crest.Key(0); k < 7; k++ {
		k := k
		txns = append(txns, crest.NewTxn("hop").AddBlock(
			crest.Op{
				Table: ledger, Key: k, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{crest.PutU64(read[0], crest.GetU64(read[0])-10)}
				},
			},
			crest.Op{
				Table: ledger, Key: k + 1, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{crest.PutU64(read[0], crest.GetU64(read[0])+10)}
				},
			},
		))
	}
	if _, err := cluster.ExecuteAll(txns...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 7 dependent transfers")

	// A memory node crashes. Its replicas survive elsewhere.
	if err := cluster.FailMemoryNode(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory node 0 failed")

	report, err := cluster.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d log entries scanned, %d transactions committed, "+
		"%d orphaned, %d cells rolled forward, %d stale locks cleared\n",
		report.Entries, report.Committed, report.Orphaned,
		report.CellsRepaired, report.LocksCleared)

	if err := cluster.RestoreMemoryNode(0); err != nil {
		log.Fatal(err)
	}
	total := uint64(0)
	for k := crest.Key(0); k < 8; k++ {
		row, err := cluster.ReadRow(ledger, k, 0)
		if err != nil {
			log.Fatal(err)
		}
		total += crest.GetU64(row[0])
	}
	fmt.Printf("ledger total after recovery: %d (invariant: 800)\n", total)
	if total != 800 {
		log.Fatal("money not conserved across recovery")
	}
}
