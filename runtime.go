package crest

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"crest/internal/bench"
)

// RuntimeSchemaVersion identifies the JSON layout of RuntimeStats (the
// crestbench -runtime-stats artifact).
const RuntimeSchemaVersion = "crest-runtime/v1"

// RuntimeStats is the window executor's introspection for one
// partitioned run: how the conservative parallel scheduler (one
// partition per shard group, lock-stepped lookahead windows) actually
// behaved. It splits into two classes:
//
//   - schedule-derived fields (windows, widths, per-partition events,
//     injections, mailbox high-water marks, cross-partition verbs, the
//     window log) are pure functions of the simulation — identical at
//     any worker count;
//   - wall-clock fields (WallMS, BarrierWaitMS, WorkerOccupancy, the
//     *PerSec and *MS fields) measure the simulator on this machine and
//     vary run to run. They are tagged omitempty so a stripped document
//     is deterministic.
type RuntimeStats struct {
	Schema  string `json:"schema"`
	Parts   int    `json:"parts"`
	Workers int    `json:"workers"`
	// LookaheadNs is the conservative lookahead in virtual nanoseconds;
	// WindowWidth* report how much of it each window actually used
	// (width avg / lookahead is the lookahead efficiency).
	LookaheadNs      int64   `json:"lookahead_ns"`
	Windows          uint64  `json:"windows"`
	WindowWidthAvgNs float64 `json:"window_width_avg_ns"`
	WindowWidthMinNs int64   `json:"window_width_min_ns"`
	WindowWidthMaxNs int64   `json:"window_width_max_ns"`
	Events           uint64  `json:"events"`

	// Wall-clock (nondeterministic): total event-loop time, time the
	// main thread waited on window barriers, and mean worker occupancy
	// (summed partition busy time over workers × in-window time; 1.0
	// means every worker was busy whenever a window ran).
	WallMS          float64 `json:"wall_ms,omitempty"`
	BarrierWaitMS   float64 `json:"barrier_wait_ms,omitempty"`
	WorkerOccupancy float64 `json:"worker_occupancy,omitempty"`
	EventsPerSec    float64 `json:"events_per_sec,omitempty"`

	Partitions []PartitionRuntime `json:"partitions"`

	// WindowLog is the run's first windows (bounded; WindowLogDropped
	// counts the overflow), the input to the cresttrace windows
	// timeline.
	WindowLog        []WindowSlice `json:"window_log,omitempty"`
	WindowLogDropped uint64        `json:"window_log_dropped,omitempty"`
}

// PartitionRuntime is one partition's slice of the executor counters.
// Everything except BusyMS and EventsPerSec is schedule-derived.
type PartitionRuntime struct {
	Partition int    `json:"partition"`
	Events    uint64 `json:"events"`
	// Injected / Sent count cross-partition messages delivered to /
	// posted by this partition; MailboxHWM is the largest batch one
	// barrier injected.
	Injected   uint64 `json:"injected"`
	Sent       uint64 `json:"sent"`
	MailboxHWM int    `json:"mailbox_hwm"`
	// CrossVerbs counts the RDMA verbs this partition posted whose
	// target region lives in another partition.
	CrossVerbs uint64 `json:"cross_verbs"`

	BusyMS       float64 `json:"busy_ms,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// WindowSlice is one executed window of the timeline: its virtual-time
// span, the events dispatched inside it and the messages injected at
// the barrier that opened it.
type WindowSlice struct {
	StartNs  int64  `json:"start_ns"`
	EndNs    int64  `json:"end_ns"`
	Events   uint64 `json:"events"`
	Injected uint64 `json:"injected"`
}

// newRuntimeStats converts a bench run's introspection into the public
// schema-versioned form. Returns nil when the run was not partitioned.
func newRuntimeStats(ri *bench.RuntimeInfo, wallMS float64, events uint64) *RuntimeStats {
	if ri == nil || ri.Sim == nil {
		return nil
	}
	sim := ri.Sim
	s := &RuntimeStats{
		Schema:           RuntimeSchemaVersion,
		Parts:            sim.Parts,
		Workers:          ri.Workers,
		LookaheadNs:      int64(sim.Lookahead),
		Windows:          sim.Windows,
		WindowWidthAvgNs: sim.WidthAvg(),
		WindowWidthMinNs: int64(sim.WidthMin),
		WindowWidthMaxNs: int64(sim.WidthMax),
		Events:           events,
		WallMS:           wallMS,
		BarrierWaitMS:    float64(sim.BarrierWaitNS) / 1e6,
		EventsPerSec:     eventsPerSec(events, wallMS),
		WindowLogDropped: sim.WindowLogDropped,
	}
	var busyNS int64
	for _, ps := range sim.PartStats {
		pr := PartitionRuntime{
			Partition:    ps.Part,
			Events:       ps.Events,
			Injected:     ps.Injected,
			Sent:         ps.Sent,
			MailboxHWM:   ps.MailboxHWM,
			BusyMS:       float64(ps.BusyNS) / 1e6,
			EventsPerSec: eventsPerSec(ps.Events, wallMS),
		}
		if ps.Part < len(ri.Cross) {
			pr.CrossVerbs = ri.Cross[ps.Part].Total()
		}
		busyNS += ps.BusyNS
		s.Partitions = append(s.Partitions, pr)
	}
	if sim.WindowWallNS > 0 && ri.Workers > 0 {
		s.WorkerOccupancy = float64(busyNS) / (float64(ri.Workers) * float64(sim.WindowWallNS))
	}
	for _, rec := range sim.WindowLog {
		s.WindowLog = append(s.WindowLog, WindowSlice{
			StartNs:  int64(rec.Start),
			EndNs:    int64(rec.Bound),
			Events:   rec.Events,
			Injected: rec.Injected,
		})
	}
	return s
}

// WriteRuntimeStats emits the stats as indented JSON. The wall-clock
// fields are the only nondeterministic part; strip them (they are
// omitempty) when diffing artifacts.
func WriteRuntimeStats(w io.Writer, s *RuntimeStats) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadRuntimeStats parses a document written by WriteRuntimeStats and
// verifies its schema version.
func ReadRuntimeStats(r io.Reader) (*RuntimeStats, error) {
	var s RuntimeStats
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if s.Schema != RuntimeSchemaVersion {
		return nil, fmt.Errorf("crest: runtime stats schema %q, want %q", s.Schema, RuntimeSchemaVersion)
	}
	return &s, nil
}

// WriteWindowTimeline renders the window/barrier timeline of a
// partitioned run: one row per logged window with its virtual-time
// span, event count, injected cross-partition messages, and a bar
// scaled to the busiest window. The rendering uses only the
// schedule-derived fields, so it is byte-identical at any worker count.
func WriteWindowTimeline(w io.Writer, s *RuntimeStats) error {
	eff := 0.0
	if s.LookaheadNs > 0 {
		eff = s.WindowWidthAvgNs / float64(s.LookaheadNs)
	}
	if _, err := fmt.Fprintf(w,
		"windows %d  parts %d  lookahead %dns  width avg %.1fns min %dns max %dns  efficiency %.0f%%\n",
		s.Windows, s.Parts, s.LookaheadNs, s.WindowWidthAvgNs,
		s.WindowWidthMinNs, s.WindowWidthMaxNs, 100*eff); err != nil {
		return err
	}
	for _, p := range s.Partitions {
		if _, err := fmt.Fprintf(w,
			"partition %d: events %d  injected %d  sent %d  mailbox-hwm %d  cross-verbs %d\n",
			p.Partition, p.Events, p.Injected, p.Sent, p.MailboxHWM, p.CrossVerbs); err != nil {
			return err
		}
	}
	if len(s.WindowLog) == 0 {
		_, err := fmt.Fprintln(w, "no window log recorded")
		return err
	}
	var maxEvents uint64 = 1
	for _, rec := range s.WindowLog {
		if rec.Events > maxEvents {
			maxEvents = rec.Events
		}
	}
	const barWidth = 40
	if _, err := fmt.Fprintf(w, "%8s  %12s  %12s  %8s  %8s\n",
		"window", "start_ns", "end_ns", "events", "injected"); err != nil {
		return err
	}
	for i, rec := range s.WindowLog {
		n := int(rec.Events * barWidth / maxEvents)
		if _, err := fmt.Fprintf(w, "%8d  %12d  %12d  %8d  %8d  %s\n",
			i, rec.StartNs, rec.EndNs, rec.Events, rec.Injected,
			strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	if s.WindowLogDropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d later windows not logged\n", s.WindowLogDropped); err != nil {
			return err
		}
	}
	return nil
}

// ValidateWorkers checks a -workers flag value: the scheduler needs at
// least one worker (counts beyond the partition count are clamped, so
// any positive value is fine). Shared by crestbench and cresttrace.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", n)
	}
	return nil
}
