// Command crestbench regenerates the paper's tables and figures and
// runs ad-hoc benchmark configurations.
//
// Regenerate artifacts (ids: fig2 fig3 fig4 table1 table2 exp1..exp8):
//
//	crestbench -exp exp1
//	crestbench -exp all -profile quick -j 8
//	crestbench -exp all -profile quick -json BENCH_quick.json -cache .benchcache
//
// The experiments run as one deduplicated matrix: every unique
// configuration simulates exactly once, -j configurations in parallel
// (default GOMAXPROCS), with byte-identical output for any -j. -json
// writes every unique run as schema-versioned records; -cache reuses
// results across invocations.
//
// Run a single configuration:
//
//	crestbench -run -system crest -workload ycsb -theta 0.99 -coords 240
//
// All results are virtual-time measurements from the deterministic
// simulation; identical seeds reproduce identical numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	rttrace "runtime/trace"
	"strings"
	"time"

	"crest"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to regenerate, or 'all'")
		profile  = flag.String("profile", "full", "experiment profile: quick or full")
		jobs     = flag.Int("j", 0, "parallel simulations for -exp (default GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "with -exp: write per-run JSON records to this file")
		baseline = flag.String("baseline", "", "with -exp: compare per-run KOPS against this BENCH_*.json baseline")
		cacheDir = flag.String("cache", "", "with -exp: on-disk result cache directory for incremental re-runs")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		runOne   = flag.Bool("run", false, "run a single benchmark configuration")
		system   = flag.String("system", "crest", "system: crest, crest-cell, crest-base, ford, motor")
		workload = flag.String("workload", "tpcc", "workload: tpcc, smallbank, ycsb")
		coords   = flag.Int("coords", 240, "total coordinators (across 3 compute nodes)")
		wh       = flag.Int("warehouses", 40, "TPC-C warehouses")
		theta    = flag.Float64("theta", 0.99, "Zipfian constant (smallbank/ycsb)")
		writes   = flag.Float64("writes", 0.5, "YCSB write ratio")
		perTxn   = flag.Int("n", 4, "YCSB records per transaction")
		duration = flag.Duration("duration", 20*time.Millisecond, "measured virtual time")
		warmup   = flag.Duration("warmup", 4*time.Millisecond, "virtual warmup excluded from measurement")
		seed     = flag.Int64("seed", 1, "simulation seed")
		quick    = flag.Bool("quick", false, "use CI-scale table sizes")
		traceOut = flag.String("trace", "", "with -run: write a Chrome trace_event JSON of the run to this file")
		metOut   = flag.String("metrics", "", "with -run: write the run's windowed metrics to this file (.csv, .json or .prom by extension)")
		whyOut   = flag.String("why", "", "with -run: write the run's contention graph for abort forensics to this file (.dot or crest-why .json by extension)")
		metWin   = flag.Duration("metrics-window", 100*time.Microsecond, "with -metrics: time-series window in virtual time")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
		rtTrace  = flag.String("runtimetrace", "", "write a Go runtime execution trace to this file")
	)
	flag.Parse()

	// The simulator's steady state allocates little, so the default GC
	// pacing spends its time rescanning a near-constant heap. Relax it
	// unless the operator set GOGC themselves. Virtual-time results are
	// unaffected; only wall-clock speed changes.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
	}
	if *rtTrace != "" {
		f, err := os.Create(*rtTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if err := rttrace.Start(f); err != nil {
			fatalf("starting runtime trace: %v", err)
		}
		defer func() {
			rttrace.Stop()
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatalf("%v", err)
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatalf("writing heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
	}

	switch {
	case *list:
		for _, id := range crest.ExperimentIDs() {
			fmt.Println(id)
		}
	case *expID != "":
		var ids []string
		if *expID != "all" {
			ids = []string{*expID}
		}
		quickProfile := *profile == "quick"
		if !quickProfile && *profile != "full" {
			fatalf("unknown profile %q (quick or full)", *profile)
		}
		start := time.Now()
		m, err := crest.RunMatrix(ids, quickProfile, crest.MatrixOptions{
			Workers:  *jobs,
			CacheDir: *cacheDir,
		})
		if err != nil {
			fatalf("%v", err)
		}
		for _, exp := range m.Experiments {
			for _, tab := range exp.Tables {
				fmt.Println(tab.Format())
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := crest.WriteBenchJSON(f, m); err != nil {
				fatalf("writing %s: %v", *jsonOut, err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "[json: %d run records -> %s]\n", len(m.Records), *jsonOut)
		}
		if *baseline != "" {
			f, err := os.Open(*baseline)
			if err != nil {
				fatalf("%v", err)
			}
			base, err := crest.ReadBenchJSON(f)
			f.Close()
			if err != nil {
				fatalf("reading %s: %v", *baseline, err)
			}
			cmp := crest.CompareBenchResultSets(base, m.ResultSet())
			fmt.Printf("KOPS vs %s:\n%s", *baseline, cmp.Format())
		}
		fmt.Fprintf(os.Stderr, "[%d experiment(s), %d unique runs (%d simulated, %d cached), %s profile, %v wall time]\n",
			len(m.Experiments), len(m.Records), m.Simulated, m.CacheHits, *profile,
			time.Since(start).Round(time.Millisecond))
		if p := m.Perf; p != nil {
			fmt.Fprintf(os.Stderr, "[sim: %d events in %.0f ms event-loop time, %.2fM events/sec]\n",
				p.Events, p.SimWallMS, p.EventsPerSec/1e6)
		}
	case *runOne:
		res, err := crest.RunBenchmark(crest.BenchmarkConfig{
			System:        crest.System(strings.ToLower(*system)),
			Workload:      strings.ToLower(*workload),
			Warehouses:    *wh,
			Theta:         *theta,
			WriteRatio:    *writes,
			RecordsPerTx:  *perTxn,
			Coordinators:  *coords,
			Duration:      *duration,
			Warmup:        *warmup,
			Seed:          *seed,
			Quick:         *quick,
			Trace:         *traceOut != "",
			Metrics:       *metOut != "",
			MetricsWindow: *metWin,
			Why:           *whyOut != "",
		})
		if err != nil {
			fatalf("%v", err)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := crest.WriteChromeTrace(f, res.Trace); err != nil {
				fatalf("writing trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "[trace: %d events -> %s]\n", len(res.Trace.Events), *traceOut)
		}
		if *metOut != "" {
			// Metrics output goes to its file and stderr only: the run's
			// stdout stays byte-identical with and without -metrics.
			if err := writeMetrics(*metOut, res.Metrics); err != nil {
				fatalf("%v", err)
			}
			if err := crest.WriteMetricsSparklines(os.Stderr, res.Metrics); err != nil {
				fatalf("writing sparklines: %v", err)
			}
			fmt.Fprintf(os.Stderr, "[metrics: %d series, %d windows -> %s]\n",
				len(res.Metrics.Series), len(res.Metrics.Times), *metOut)
		}
		if *whyOut != "" {
			// Forensics output goes to its file and stderr only: the
			// run's stdout stays byte-identical with and without -why.
			if err := writeWhy(*whyOut, res.Why); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "[why: %d txns, %d edges -> %s]\n",
				len(res.Why.Txns), len(res.Why.Edges), *whyOut)
		}
		fmt.Println(res)
		fmt.Printf("  committed=%d aborted=%d false-abort=%.1f%%\n", res.Committed, res.Aborted, 100*res.FalseAbortRate)
		fmt.Printf("  latency µs: avg=%.1f p50=%.1f p99=%.1f p999=%.1f\n",
			res.AvgLatencyUs, res.P50LatencyUs, res.P99LatencyUs, res.P999LatencyUs)
		fmt.Printf("  phases µs: exec=%.1f validate=%.1f commit=%.1f\n", res.ExecUs, res.ValidateUs, res.CommitUs)
		if res.WallMS > 0 {
			virtualMS := float64(*duration) / float64(time.Millisecond)
			fmt.Fprintf(os.Stderr, "[sim: %.1f ms virtual in %.1f ms wall (%.2fx real time), %d events, %.2fM events/sec]\n",
				virtualMS, res.WallMS, virtualMS/res.WallMS, res.Events, res.EventsPerSec/1e6)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeMetrics writes the snapshot to path in the format its extension
// selects: .csv (windowed time-series), .json (schema-versioned
// document), anything else Prometheus text exposition format.
func writeMetrics(path string, s *crest.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = crest.WriteMetricsCSV(f, s)
	case strings.HasSuffix(path, ".json"):
		err = crest.WriteMetricsJSON(f, s)
	default:
		err = crest.WriteMetricsPrometheus(f, s)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// writeWhy writes the causality snapshot to path: .json selects the
// schema-versioned crest-why document, anything else Graphviz DOT.
func writeWhy(path string, s *crest.WhySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = crest.WriteWhyJSON(f, s)
	} else {
		err = crest.WriteWhyDOT(f, s)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crestbench: "+format+"\n", args...)
	os.Exit(1)
}
