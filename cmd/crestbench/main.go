// Command crestbench regenerates the paper's tables and figures and
// runs ad-hoc benchmark configurations.
//
// Regenerate artifacts (ids: fig2 fig3 fig4 table1 table2 exp1..exp8
// scenario):
//
//	crestbench -exp exp1
//	crestbench -exp all -profile quick -j 8
//	crestbench -exp all -profile quick -json BENCH_quick.json -cache .benchcache
//
// The experiments run as one deduplicated matrix: every unique
// configuration simulates exactly once, -j configurations in parallel
// (default GOMAXPROCS), with byte-identical output for any -j. -json
// writes every unique run as schema-versioned records; -cache reuses
// results across invocations.
//
// Run a single configuration:
//
//	crestbench -run -system crest -workload ycsb -theta 0.99 -coords 240
//
// Run a declarative scenario (workload spec file with a traffic
// timeline; see DESIGN.md §9 and examples/scenarios/):
//
//	crestbench -run -spec examples/scenarios/drift-demo.spec -quick
//
// All results are virtual-time measurements from the deterministic
// simulation; identical seeds reproduce identical numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"runtime/pprof"
	rttrace "runtime/trace"
	"strings"
	"time"

	"crest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validSystems and validWorkloads are the values -run accepts; they
// are checked up front so a typo fails with usage instead of deep in
// the harness.
var validSystems = []string{"crest", "crest-cell", "crest-base", "ford", "motor"}
var validWorkloads = []string{"tpcc", "smallbank", "ycsb"}

func oneOf(v string, valid []string) bool {
	for _, s := range valid {
		if v == s {
			return true
		}
	}
	return false
}

// run executes one invocation and returns the process exit code. It
// is the unit-testable seam: main only binds it to os streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crestbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("exp", "", "experiment id to regenerate, or 'all'")
		profile  = fs.String("profile", "full", "experiment profile: quick or full")
		jobs     = fs.Int("j", 0, "parallel simulations for -exp (default GOMAXPROCS)")
		jsonOut  = fs.String("json", "", "with -exp: write per-run JSON records to this file")
		baseline = fs.String("baseline", "", "with -exp: compare per-run KOPS against this BENCH_*.json baseline")
		cacheDir = fs.String("cache", "", "with -exp: on-disk result cache directory for incremental re-runs")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		runOne   = fs.Bool("run", false, "run a single benchmark configuration")
		system   = fs.String("system", "crest", "system: crest, crest-cell, crest-base, ford, motor")
		workload = fs.String("workload", "tpcc", "workload: tpcc, smallbank, ycsb")
		specPath = fs.String("spec", "", "with -run: drive the run from a declarative scenario .spec file (overrides -workload and its knobs)")
		coords   = fs.Int("coords", 240, "total coordinators (across 3 compute nodes)")
		shards   = fs.Int("shards", 1, "shard groups of independent memory nodes (1 = the classic single-group topology)")
		workers  = fs.Int("workers", 1, "scheduler threads executing shard-group partitions concurrently (results are byte-identical at any count; 1 = sequential)")
		big      = fs.Bool("big", false, "with -run: the million-transaction profile (1000 coordinators, 4 shard groups, 8 compute nodes, smallbank θ=0.5; explicit flags override)")
		placePol = fs.String("placement", "hash", "data placement policy: "+strings.Join(crest.PlacementPolicies(), ", "))
		wh       = fs.Int("warehouses", 40, "TPC-C warehouses")
		theta    = fs.Float64("theta", 0.99, "Zipfian constant (smallbank/ycsb)")
		writes   = fs.Float64("writes", 0.5, "YCSB write ratio")
		perTxn   = fs.Int("n", 4, "YCSB records per transaction")
		duration = fs.Duration("duration", 20*time.Millisecond, "measured virtual time")
		warmup   = fs.Duration("warmup", 4*time.Millisecond, "virtual warmup excluded from measurement")
		seed     = fs.Int64("seed", 1, "simulation seed")
		quick    = fs.Bool("quick", false, "use CI-scale table sizes")
		traceOut = fs.String("trace", "", "with -run: write a Chrome trace_event JSON of the run to this file")
		metOut   = fs.String("metrics", "", "with -run: write the run's windowed metrics to this file (.csv, .json or .prom by extension)")
		whyOut   = fs.String("why", "", "with -run: write the run's contention graph for abort forensics to this file (.dot or crest-why .json by extension)")
		flOut    = fs.String("flight", "", "with -run: write the run's per-txn latency budgets and tail exemplars to this file (crest-flight .json, or the rendered tail report for any other extension)")
		rtStats  = fs.String("runtime-stats", "", "with -run: write the window executor's runtime introspection (crest-runtime JSON) to this file (partitioned runs only)")
		metWin   = fs.Duration("metrics-window", 100*time.Microsecond, "with -metrics: time-series window in virtual time")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
		rtTrace  = fs.String("runtimetrace", "", "write a Go runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatalf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "crestbench: "+format+"\n", args...)
		return 1
	}
	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "crestbench: "+format+"\n", args...)
		fmt.Fprintf(stderr, "usage: crestbench -exp <id> [flags] | crestbench -run [flags] | crestbench -list\n")
		fs.Usage()
		return 2
	}

	// The -big profile is a flag preset: the million-transaction
	// topology (10³ coordinators on 4 shard groups, long enough to
	// commit ~10⁶ transactions). Explicit flags override any part of
	// it, so CI can run a scaled-down smoke with -big -duration 3ms.
	// Only -run consumes the preset; -exp rejects -big below.
	if *big && *runOne {
		if !flagSet(fs, "workload") {
			*workload = "smallbank"
		}
		if !flagSet(fs, "shards") {
			*shards = 4
		}
		if !flagSet(fs, "placement") {
			*placePol = "modulo"
		}
		if !flagSet(fs, "coords") {
			*coords = 1000
		}
		// Moderate skew: the profile measures scheduler throughput at
		// scale, not contention collapse — θ=0.99 at 10³ coordinators
		// aborts ~95% of attempts and commits almost nothing.
		if !flagSet(fs, "theta") {
			*theta = 0.5
		}
		if !flagSet(fs, "duration") {
			*duration = 25 * time.Millisecond
		}
		if !flagSet(fs, "warmup") {
			*warmup = 2 * time.Millisecond
		}
	}

	// Topology flags are validated up front so a typo fails with usage
	// instead of deep in the harness.
	if *shards < 1 {
		return usageErr("-shards must be at least 1, got %d", *shards)
	}
	if *shards > crest.MaxShards {
		return usageErr("-shards %d exceeds the maximum of %d", *shards, crest.MaxShards)
	}
	placement := strings.ToLower(*placePol)
	if !oneOf(placement, crest.PlacementPolicies()) {
		return usageErr("unknown placement %q (%s)", *placePol, strings.Join(crest.PlacementPolicies(), ", "))
	}
	if err := crest.ValidateWorkers(*workers); err != nil {
		return usageErr("%v", err)
	}

	// The simulator's steady state allocates little, so the default GC
	// pacing spends its time rescanning a near-constant heap. Relax it
	// unless the operator set GOGC themselves. Virtual-time results are
	// unaffected; only wall-clock speed changes.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatalf("starting CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *rtTrace != "" {
		f, err := os.Create(*rtTrace)
		if err != nil {
			return fatalf("%v", err)
		}
		if err := rttrace.Start(f); err != nil {
			return fatalf("starting runtime trace: %v", err)
		}
		defer func() {
			rttrace.Stop()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "crestbench: %v\n", err)
				return
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "crestbench: writing heap profile: %v\n", err)
			}
			f.Close()
		}()
	}

	switch {
	case *list:
		for _, id := range crest.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
	case *expID != "":
		if *specPath != "" {
			return usageErr("-spec only applies to -run")
		}
		if *rtStats != "" {
			return usageErr("-runtime-stats only applies to -run")
		}
		if *shards != 1 || placement != "hash" {
			return usageErr("-shards/-placement only apply to -run; experiments set topology per spec (see the crossover experiment)")
		}
		if *big {
			return usageErr("-big only applies to -run")
		}
		var ids []string
		if *expID != "all" {
			ids = []string{*expID}
		}
		quickProfile := *profile == "quick"
		if !quickProfile && *profile != "full" {
			return usageErr("unknown profile %q (quick or full)", *profile)
		}
		start := time.Now()
		m, err := crest.RunMatrix(ids, quickProfile, crest.MatrixOptions{
			Workers:    *jobs,
			SimWorkers: *workers,
			CacheDir:   *cacheDir,
		})
		if err != nil {
			return fatalf("%v", err)
		}
		for _, exp := range m.Experiments {
			for _, tab := range exp.Tables {
				fmt.Fprintln(stdout, tab.Format())
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return fatalf("%v", err)
			}
			if err := crest.WriteBenchJSON(f, m); err != nil {
				return fatalf("writing %s: %v", *jsonOut, err)
			}
			if err := f.Close(); err != nil {
				return fatalf("%v", err)
			}
			fmt.Fprintf(stderr, "[json: %d run records -> %s]\n", len(m.Records), *jsonOut)
		}
		if *baseline != "" {
			f, err := os.Open(*baseline)
			if err != nil {
				return fatalf("%v", err)
			}
			base, err := crest.ReadBenchJSON(f)
			f.Close()
			if err != nil {
				return fatalf("reading %s: %v", *baseline, err)
			}
			cmp := crest.CompareBenchResultSets(base, m.ResultSet())
			fmt.Fprintf(stdout, "KOPS vs %s:\n%s", *baseline, cmp.Format())
		}
		fmt.Fprintf(stderr, "[%d experiment(s), %d unique runs (%d simulated, %d cached), %s profile, %v wall time]\n",
			len(m.Experiments), len(m.Records), m.Simulated, m.CacheHits, *profile,
			time.Since(start).Round(time.Millisecond))
		if p := m.Perf; p != nil {
			fmt.Fprintf(stderr, "[sim: %d events in %.0f ms event-loop time, %.2fM events/sec]\n",
				p.Events, p.SimWallMS, p.EventsPerSec/1e6)
		}
	case *runOne:
		sys := strings.ToLower(*system)
		if !oneOf(sys, validSystems) {
			return usageErr("unknown system %q (%s)", *system, strings.Join(validSystems, ", "))
		}
		wl := strings.ToLower(*workload)
		if *specPath == "" && !oneOf(wl, validWorkloads) {
			return usageErr("unknown workload %q (%s)", *workload, strings.Join(validWorkloads, ", "))
		}
		cfg := crest.BenchmarkConfig{
			System:        crest.System(sys),
			Workload:      wl,
			Warehouses:    *wh,
			Theta:         *theta,
			WriteRatio:    *writes,
			RecordsPerTx:  *perTxn,
			Shards:        *shards,
			Placement:     placement,
			Coordinators:  *coords,
			Duration:      *duration,
			Warmup:        *warmup,
			Seed:          *seed,
			Quick:         *quick,
			Workers:       *workers,
			Trace:         *traceOut != "",
			Metrics:       *metOut != "",
			MetricsWindow: *metWin,
			Why:           *whyOut != "",
			Flight:        *flOut != "",
		}
		if *big {
			// The preset's coordinator count wants more compute nodes
			// than the default testbed shape, and every shard group
			// should home at least one of them (coordinators land on
			// groups round-robin by compute node).
			cfg.ComputeNodes = 8
		}
		if *specPath != "" {
			sc, err := crest.ParseScenarioFile(*specPath)
			if err != nil {
				return fatalf("%v", err)
			}
			cfg.Scenario = sc
			// The measured window must cover the whole timeline unless
			// the operator asked for a specific -duration.
			if tl := sc.TimelineDuration(); time.Duration(tl) > cfg.Duration && !flagSet(fs, "duration") {
				cfg.Duration = time.Duration(tl)
			}
		}
		res, err := crest.RunBenchmark(cfg)
		if err != nil {
			return fatalf("%v", err)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fatalf("%v", err)
			}
			if err := crest.WriteChromeTrace(f, res.Trace); err != nil {
				return fatalf("writing trace: %v", err)
			}
			if err := f.Close(); err != nil {
				return fatalf("%v", err)
			}
			fmt.Fprintf(stderr, "[trace: %d events -> %s]\n", len(res.Trace.Events), *traceOut)
		}
		if *metOut != "" {
			// Metrics output goes to its file and stderr only: the run's
			// stdout stays byte-identical with and without -metrics.
			if err := writeMetrics(*metOut, res.Metrics); err != nil {
				return fatalf("%v", err)
			}
			if err := crest.WriteMetricsSparklines(stderr, res.Metrics); err != nil {
				return fatalf("writing sparklines: %v", err)
			}
			fmt.Fprintf(stderr, "[metrics: %d series, %d windows -> %s]\n",
				len(res.Metrics.Series), len(res.Metrics.Times), *metOut)
		}
		if *whyOut != "" {
			// Forensics output goes to its file and stderr only: the
			// run's stdout stays byte-identical with and without -why.
			if err := writeWhy(*whyOut, res.Why); err != nil {
				return fatalf("%v", err)
			}
			fmt.Fprintf(stderr, "[why: %d txns, %d edges -> %s]\n",
				len(res.Why.Txns), len(res.Why.Edges), *whyOut)
		}
		if *flOut != "" {
			// Flight output goes to its file and stderr only: the run's
			// stdout stays byte-identical with and without -flight.
			if err := writeFlight(*flOut, res.Flight); err != nil {
				return fatalf("%v", err)
			}
			fmt.Fprintf(stderr, "[flight: %d txns, %d exemplars -> %s]\n",
				len(res.Flight.Txns), len(res.Flight.Exemplars), *flOut)
		}
		if *rtStats != "" {
			// Runtime introspection goes to its file and stderr only, like
			// the other observer outputs; the wall-clock fields inside it
			// are the nondeterministic part of the document.
			if res.Runtime == nil {
				return fatalf("-runtime-stats: run was not partitioned (needs -shards > 1 with a partition-safe workload)")
			}
			f, err := os.Create(*rtStats)
			if err != nil {
				return fatalf("%v", err)
			}
			if err := crest.WriteRuntimeStats(f, res.Runtime); err != nil {
				return fatalf("writing runtime stats: %v", err)
			}
			if err := f.Close(); err != nil {
				return fatalf("%v", err)
			}
			fmt.Fprintf(stderr, "[runtime: %d windows, %d partitions, %d workers -> %s]\n",
				res.Runtime.Windows, res.Runtime.Parts, res.Runtime.Workers, *rtStats)
		}
		fmt.Fprintln(stdout, res)
		fmt.Fprintf(stdout, "  committed=%d aborted=%d false-abort=%.1f%%\n", res.Committed, res.Aborted, 100*res.FalseAbortRate)
		fmt.Fprintf(stdout, "  latency µs: avg=%.1f p50=%.1f p99=%.1f p999=%.1f\n",
			res.AvgLatencyUs, res.P50LatencyUs, res.P99LatencyUs, res.P999LatencyUs)
		fmt.Fprintf(stdout, "  phases µs: exec=%.1f validate=%.1f commit=%.1f\n", res.ExecUs, res.ValidateUs, res.CommitUs)
		for _, ps := range res.ScenarioPhases {
			fmt.Fprintf(stdout, "  phase %d: attempts=%d commits=%d aborts=%d abort-rate=%.1f%%\n",
				ps.Phase, ps.Attempts, ps.Commits, ps.Aborts, 100*ps.AbortRate())
		}
		if res.WallMS > 0 {
			virtualMS := float64(cfg.Duration) / float64(time.Millisecond)
			fmt.Fprintf(stderr, "[sim: %.1f ms virtual in %.1f ms wall (%.2fx real time), %d events, %.2fM events/sec]\n",
				virtualMS, res.WallMS, virtualMS/res.WallMS, res.Events, res.EventsPerSec/1e6)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// flagSet reports whether the operator passed the named flag.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// writeMetrics writes the snapshot to path in the format its extension
// selects: .csv (windowed time-series), .json (schema-versioned
// document), anything else Prometheus text exposition format.
func writeMetrics(path string, s *crest.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = crest.WriteMetricsCSV(f, s)
	case strings.HasSuffix(path, ".json"):
		err = crest.WriteMetricsJSON(f, s)
	default:
		err = crest.WriteMetricsPrometheus(f, s)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// writeFlight writes the flight snapshot to path: .json selects the
// schema-versioned crest-flight document, anything else the rendered
// aggregate tail report.
func writeFlight(path string, s *crest.FlightSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = crest.WriteFlightJSON(f, s)
	} else {
		err = crest.WriteFlightTail(f, s, 5)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// writeWhy writes the causality snapshot to path: .json selects the
// schema-versioned crest-why document, anything else Graphviz DOT.
func writeWhy(path string, s *crest.WhySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = crest.WriteWhyJSON(f, s)
	} else {
		err = crest.WriteWhyDOT(f, s)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
