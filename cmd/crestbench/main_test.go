package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dispatch runs the CLI against buffers and returns (code, stdout,
// stderr).
func dispatch(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestNoModeShowsUsage(t *testing.T) {
	code, _, stderr := dispatch()
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage of crestbench") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

func TestBadFlagFails(t *testing.T) {
	code, _, _ := dispatch("-nonsense")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunValidatesSystemUpFront(t *testing.T) {
	code, _, stderr := dispatch("-run", "-system", "oracle")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown system "oracle"`) {
		t.Fatalf("stderr lacks diagnosis:\n%s", stderr)
	}
	if !strings.Contains(stderr, "crest, crest-cell, crest-base, ford, motor") {
		t.Fatalf("stderr lacks the valid set:\n%s", stderr)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

func TestRunValidatesWorkloadUpFront(t *testing.T) {
	code, _, stderr := dispatch("-run", "-workload", "tcp-c")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown workload "tcp-c"`) {
		t.Fatalf("stderr lacks diagnosis:\n%s", stderr)
	}
	if !strings.Contains(stderr, "tpcc, smallbank, ycsb") {
		t.Fatalf("stderr lacks the valid set:\n%s", stderr)
	}
}

func TestTopologyFlagsValidatedUpFront(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero shards", []string{"-run", "-shards", "0"},
			"-shards must be at least 1, got 0"},
		{"negative shards", []string{"-run", "-shards", "-3"},
			"-shards must be at least 1, got -3"},
		{"too many shards", []string{"-run", "-shards", "65"},
			"-shards 65 exceeds the maximum of 64"},
		{"unknown placement", []string{"-run", "-placement", "roundrobin"},
			`unknown placement "roundrobin"`},
		{"unknown placement under exp", []string{"-exp", "exp1", "-placement", "striped"},
			`unknown placement "striped"`},
		{"exp rejects topology", []string{"-exp", "exp1", "-shards", "2"},
			"-shards/-placement only apply to -run"},
		{"zero workers", []string{"-run", "-workers", "0"},
			"-workers must be >= 1 (got 0)"},
		{"negative workers", []string{"-run", "-workers", "-4"},
			"-workers must be >= 1 (got -4)"},
		{"zero workers under exp", []string{"-exp", "exp1", "-workers", "0"},
			"-workers must be >= 1 (got 0)"},
		{"exp rejects big", []string{"-exp", "exp1", "-big"},
			"-big only applies to -run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := dispatch(tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr lacks %q:\n%s", tc.want, stderr)
			}
			if !strings.Contains(stderr, "usage:") {
				t.Fatalf("stderr lacks usage:\n%s", stderr)
			}
		})
	}
	// The unknown-placement diagnosis lists the valid policies.
	_, _, stderr := dispatch("-run", "-placement", "nope")
	if !strings.Contains(stderr, "hash, hotspot, modulo, range") {
		t.Fatalf("stderr lacks the valid set:\n%s", stderr)
	}
}

// The byte-stability contract at the CLI seam: explicitly routing a
// run through the sharded topology at its defaults (-shards 1
// -placement hash) must produce byte-identical stdout to a run that
// never mentions topology at all.
func TestShardsOneHashMatchesDefaultRun(t *testing.T) {
	args := []string{"-run", "-quick", "-system", "crest", "-workload", "ycsb",
		"-coords", "12", "-duration", "2ms", "-warmup", "500us"}
	code, def, stderr := dispatch(args...)
	if code != 0 {
		t.Fatalf("default run failed (%d):\n%s", code, stderr)
	}
	code, sharded, stderr := dispatch(append(args, "-shards", "1", "-placement", "hash")...)
	if code != 0 {
		t.Fatalf("sharded run failed (%d):\n%s", code, stderr)
	}
	if def != sharded {
		t.Fatalf("-shards 1 -placement hash diverged from the default run:\n--- default\n%s--- sharded\n%s", def, sharded)
	}
}

// -workers is invocation-level at the CLI seam: a single-group run
// never consults it (-workers 8 is bit-for-bit the sequential
// scheduler's output), and a sharded run produces identical stdout at
// every worker count.
func TestWorkersByteIdenticalAtCLI(t *testing.T) {
	single := []string{"-run", "-quick", "-system", "crest", "-workload", "ycsb",
		"-coords", "12", "-duration", "2ms", "-warmup", "500us"}
	code, def, stderr := dispatch(single...)
	if code != 0 {
		t.Fatalf("default run failed (%d):\n%s", code, stderr)
	}
	code, w8, stderr := dispatch(append(single, "-workers", "8")...)
	if code != 0 {
		t.Fatalf("-workers 8 run failed (%d):\n%s", code, stderr)
	}
	if def != w8 {
		t.Fatalf("-workers 8 diverged from the sequential run on one shard group:\n--- default\n%s--- workers 8\n%s", def, w8)
	}

	sharded := []string{"-run", "-quick", "-system", "crest", "-workload", "smallbank",
		"-coords", "24", "-shards", "3", "-placement", "modulo",
		"-duration", "2ms", "-warmup", "500us"}
	var outs [3]string
	for i, w := range []string{"1", "2", "8"} {
		code, out, stderr := dispatch(append(sharded, "-workers", w)...)
		if code != 0 {
			t.Fatalf("-workers %s run failed (%d):\n%s", w, code, stderr)
		}
		outs[i] = out
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Fatalf("sharded stdout differs across -workers 1/2/8:\n--- 1\n%s--- 2\n%s--- 8\n%s",
			outs[0], outs[1], outs[2])
	}
}

// The -big preset must parse and run at a smoke scale: explicit
// -duration/-coords flags scale it down without leaving the
// million-transaction topology (4 shard groups, 8 compute nodes).
func TestBigProfileSmoke(t *testing.T) {
	code, out, stderr := dispatch("-run", "-big", "-quick",
		"-coords", "64", "-duration", "2ms", "-warmup", "500us")
	if code != 0 {
		t.Fatalf("-big smoke failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(out, "crest/smallbank @64 coordinators") {
		t.Fatalf("-big smoke output unexpected:\n%s", out)
	}
}

func TestExpRejectsSpec(t *testing.T) {
	code, _, stderr := dispatch("-exp", "exp1", "-spec", "x.spec")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-spec only applies to -run") {
		t.Fatalf("stderr lacks diagnosis:\n%s", stderr)
	}
}

func TestExpRejectsBadProfile(t *testing.T) {
	code, _, stderr := dispatch("-exp", "exp1", "-profile", "huge")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown profile "huge"`) {
		t.Fatalf("stderr lacks diagnosis:\n%s", stderr)
	}
}

func TestRunMissingSpecFileFails(t *testing.T) {
	code, _, stderr := dispatch("-run", "-spec", "no-such-file.spec")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr, "no-such-file.spec") {
		t.Fatalf("stderr lacks the path:\n%s", stderr)
	}
}

func TestListPrintsScenario(t *testing.T) {
	code, stdout, _ := dispatch("-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, "scenario") || !strings.Contains(stdout, "exp1") {
		t.Fatalf("experiment list incomplete:\n%s", stdout)
	}
}

// TestRunSpecEndToEnd drives a tiny scenario through the full CLI
// path and checks the per-phase lines land on stdout.
func TestRunSpecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.spec")
	spec := `workload=ycsb
recordcount=2000
theta=0.9
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=1.0
phase.2.type=constant
phase.2.duration=1ms
phase.2.load=0.5
phase.2.hotspot=0.5
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := dispatch("-run", "-spec", path, "-quick", "-coords", "24", "-warmup", "200us")
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "scenario:tiny") {
		t.Fatalf("stdout lacks the scenario name:\n%s", stdout)
	}
	if !strings.Contains(stdout, "phase 1:") || !strings.Contains(stdout, "phase 2:") {
		t.Fatalf("stdout lacks per-phase lines:\n%s", stdout)
	}
	// Same invocation, byte-identical stdout.
	code2, stdout2, _ := dispatch("-run", "-spec", path, "-quick", "-coords", "24", "-warmup", "200us")
	if code2 != 0 || stdout2 != stdout {
		t.Fatalf("spec-driven run is not reproducible:\n--- first\n%s--- second\n%s", stdout, stdout2)
	}
}
