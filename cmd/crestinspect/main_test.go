package main

import (
	"bytes"
	"strings"
	"testing"
)

// dispatch runs the CLI entry point against in-memory streams.
func dispatch(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestNoModePrintsUsage(t *testing.T) {
	code, stdout, stderr := dispatch()
	if code != 2 {
		t.Fatalf("no mode exited %d, want 2", code)
	}
	if stdout != "" {
		t.Fatalf("usage went to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "-cells") || !strings.Contains(stderr, "-workload") {
		t.Fatalf("stderr missing flag usage:\n%s", stderr)
	}
}

func TestBadFlagsAndArgsRejected(t *testing.T) {
	code, _, stderr := dispatch("-nosuchflag")
	if code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuchflag") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}

	code, _, stderr = dispatch("-cells", "8,30", "stray")
	if code != 2 {
		t.Fatalf("stray positional arg exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected argument") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestCellsLayoutReport(t *testing.T) {
	code, stdout, stderr := dispatch("-cells", "8,30,100")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		`table "adhoc": 3 cells, 138 data bytes`,
		"CREST record:", "FORD record:", "Motor record:",
		"cell 0", "cell 2", "space overhead",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("report missing %q:\n%s", want, stdout)
		}
	}

	code, _, stderr = dispatch("-cells", "8,zero")
	if code != 1 {
		t.Fatalf("bad cell size exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad cell size") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestWrittenGroupingReport(t *testing.T) {
	code, stdout, stderr := dispatch("-cells", "8,30,100,8", "-written", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "grouped by access pattern") {
		t.Fatalf("report missing grouping section:\n%s", stdout)
	}
	if !strings.Contains(stdout, "CREST padded overhead:") {
		t.Fatalf("report missing overhead delta:\n%s", stdout)
	}

	code, _, stderr = dispatch("-cells", "8,30", "-written", "x")
	if code != 1 {
		t.Fatalf("bad written cell exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad written cell") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestWorkloadInspectsEveryTable(t *testing.T) {
	code, stdout, stderr := dispatch("-workload", "smallbank")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if n := strings.Count(stdout, "table \""); n < 2 {
		t.Fatalf("expected at least 2 tables, saw %d:\n%s", n, stdout)
	}

	code, _, stderr = dispatch("-workload", "nosuch")
	if code != 1 {
		t.Fatalf("unknown workload exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown workload") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}
