// Command crestinspect prints the on-memory-node layout of a schema
// under each system (CREST's cell-slotted record, FORD's single
// version, Motor's consecutive version table) and the Table-1-style
// space accounting, for exploring how column shapes drive metadata
// overhead.
//
//	crestinspect -cells 8,30,100
//	crestinspect -workload tpcc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"crest/internal/layout"
	"crest/internal/workload"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/tpcc"
	"crest/internal/workload/ycsb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes the report
// to stdout and diagnostics to stderr, and returns the process exit
// code (0 ok, 1 bad input, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crestinspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cells := fs.String("cells", "", "comma-separated cell sizes of an ad-hoc schema, e.g. 8,30,100")
	wl := fs.String("workload", "", "inspect every table of a workload: tpcc, smallbank or ycsb")
	written := fs.String("written", "", "comma-separated indices of written cells: shows §4.4 access-pattern grouping (with -cells)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "crestinspect: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	switch {
	case *cells != "":
		sizes, err := parseCells(*cells)
		if err != nil {
			fmt.Fprintf(stderr, "crestinspect: %v\n", err)
			return 1
		}
		s := layout.Schema{ID: 1, Name: "adhoc", CellSizes: sizes}
		inspect(stdout, s)
		if *written != "" {
			if err := showGrouping(stdout, s, *written); err != nil {
				fmt.Fprintf(stderr, "crestinspect: %v\n", err)
				return 1
			}
		}
	case *wl != "":
		defs, err := workloadTables(*wl)
		if err != nil {
			fmt.Fprintf(stderr, "crestinspect: %v\n", err)
			return 1
		}
		for _, def := range defs {
			inspect(stdout, def.Schema)
			fmt.Fprintln(stdout)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func parseCells(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad cell size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func workloadTables(name string) ([]workload.TableDef, error) {
	switch name {
	case "tpcc":
		return tpcc.New(tpcc.DefaultConfig()).Tables(), nil
	case "smallbank":
		return smallbank.New(smallbank.DefaultConfig()).Tables(), nil
	case "ycsb":
		return ycsb.New(ycsb.DefaultConfig()).Tables(), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func inspect(w io.Writer, s layout.Schema) {
	s = s.Normalize()
	fmt.Fprintf(w, "table %q: %d cells, %d data bytes\n", s.Name, s.NumCells(), s.DataBytes())

	rec := layout.NewRecord(s)
	fmt.Fprintf(w, "  CREST record: %d bytes\n", rec.Size())
	fmt.Fprintf(w, "    header      @0    (%d bytes: key, table id, lock bitmap, %d-entry EN array)\n",
		layout.HeaderSize, layout.MaxENCells)
	for c := 0; c < rec.NumCells(); c++ {
		fmt.Fprintf(w, "    cell %-2d     @%-4d (8-byte version + %d-byte value, slot %d)\n",
			c, rec.CellOff(c), rec.CellSize(c), rec.CellSlotSize(c))
	}

	ford := layout.NewFORDRecord(s)
	fmt.Fprintf(w, "  FORD record: %d bytes (%d padded) — header %d, values back to back\n",
		ford.Size(), ford.PaddedSize(), layout.BaselineHeaderSize)

	motor := layout.NewMotorRecord(s)
	fmt.Fprintf(w, "  Motor record: %d bytes (%d padded) — header %d, %d version slots × (%d meta + %d data)\n",
		motor.Size(), motor.PaddedSize(), layout.BaselineHeaderSize,
		layout.MotorSlots, layout.MotorSlotMetaSize, s.DataBytes())

	fmt.Fprintf(w, "  space overhead (meta/data):")
	for _, sys := range []layout.System{layout.SysFORD, layout.SysMotor, layout.SysCREST} {
		raw := layout.Space(sys, s, false)
		pad := layout.Space(sys, s, true)
		fmt.Fprintf(w, "  %s %.1f%% (%.1f%% padded)", sys, raw.OverheadPct(), pad.OverheadPct())
	}
	fmt.Fprintln(w)
}

// showGrouping prints the §4.4 access-pattern consolidation: written
// cells stay individual, read-only cells merge, and the space model
// reports the saving.
func showGrouping(w io.Writer, s layout.Schema, writtenSpec string) error {
	var written []int
	for _, part := range strings.Split(writtenSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad written cell %q", part)
		}
		written = append(written, n)
	}
	g, err := layout.GroupByAccess(s, written)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ngrouped by access pattern (written cells %v stay individual):\n", written)
	for gi := 0; gi < g.Grouped().NumCells(); gi++ {
		fmt.Fprintf(w, "  grouped cell %d ← original cells %v (%d bytes)\n",
			gi, g.Members(gi), g.Grouped().CellSizes[gi])
	}
	before := layout.Space(layout.SysCREST, s, true)
	after := layout.Space(layout.SysCREST, g.Grouped(), true)
	fmt.Fprintf(w, "  CREST padded overhead: %.1f%% → %.1f%%\n", before.OverheadPct(), after.OverheadPct())
	return nil
}
