// Command cresttrace runs a workload under one of the simulated
// transaction systems with observability on and renders what it
// recorded.
//
// Emit a Perfetto/chrome://tracing-compatible JSON timeline:
//
//	cresttrace -system crest -workload smallbank -format json -o trace.json
//
// Print per-transaction span timelines (virtual-time phase durations
// with round-trip attribution):
//
//	cresttrace -system ford -workload smallbank -format spans
//
// Print the hot-key contention profile (top-K cells by conflict and
// abort count):
//
//	cresttrace -workload ycsb -theta 0.99 -format hotkeys -top 10
//
// Explain why a transaction aborted (blame chain with per-hop virtual
// wait durations), from a fresh run or from a saved crest-why JSON
// export:
//
//	cresttrace why -workload smallbank -theta 0.99 412
//	cresttrace why -in why.json 412
//
// Export the aggregated contention dependency graph (hotspots and
// wait cycles) as Graphviz DOT or crest-why JSON:
//
//	cresttrace graph -workload smallbank -theta 0.99 -o why.dot
//	cresttrace graph -in why.json -format json
//
// Render the window executor's window/barrier timeline for a
// partitioned run, from a fresh run or from a saved crestbench
// -runtime-stats export:
//
//	cresttrace windows -workload smallbank -shards 4 -workers 4
//	cresttrace windows -in runtime.json
//
// Decompose tail latency into an additive per-component budget (wire,
// lock-wait, backoff, queueing, per-phase compute) and walk one
// outlier's critical path across its retries, from a fresh run or
// from a saved crestbench -flight JSON export:
//
//	cresttrace tail -workload smallbank -theta 0.99
//	cresttrace tail -in flight.json -top 10
//	cresttrace critpath -in flight.json 412
//
// Output is deterministic: the same seed and configuration produce
// byte-identical traces, blame chains, graphs and timelines — at any
// -workers count (observers record into per-partition shards and merge
// deterministically, so -workers only changes wall-clock speed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"crest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage: cresttrace [flags]                 render an event trace (legacy default)
       cresttrace trace [flags]           same, explicitly
       cresttrace why [flags] <txnid>     explain one transaction's abort
       cresttrace graph [flags]           export the contention graph (DOT or JSON)
       cresttrace windows [flags]         render the window executor timeline (partitioned runs)
       cresttrace tail [flags]            decompose tail latency into per-component budgets
       cresttrace critpath [flags] <txnid>  walk one transaction's critical path across retries

Run 'cresttrace <subcommand> -h' for the subcommand's flags.
`

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, usageText)
}

// run dispatches the subcommand and returns the process exit code. It
// is the unit-testable seam: main only binds it to os streams.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "trace":
			return runTrace(args[1:], stdout, stderr)
		case "why":
			return runWhy(args[1:], stdout, stderr)
		case "graph":
			return runGraph(args[1:], stdout, stderr)
		case "windows":
			return runWindows(args[1:], stdout, stderr)
		case "tail":
			return runTail(args[1:], stdout, stderr)
		case "critpath":
			return runCritPath(args[1:], stdout, stderr)
		default:
			fmt.Fprintf(stderr, "cresttrace: unknown subcommand %q\n", args[0])
			usage(stderr)
			return 2
		}
	}
	return runTrace(args, stdout, stderr)
}

// benchFlags are the run-shape flags shared by every subcommand that
// executes a fresh benchmark.
type benchFlags struct {
	system   *string
	workload *string
	coords   *int
	wh       *int
	theta    *float64
	duration *time.Duration
	warmup   *time.Duration
	seed     *int64
	shards   *int
	place    *string
	workers  *int
}

func addBenchFlags(fs *flag.FlagSet) *benchFlags {
	return &benchFlags{
		system:   fs.String("system", "crest", "system: crest, crest-cell, crest-base, ford, motor"),
		workload: fs.String("workload", "smallbank", "workload: tpcc, smallbank, ycsb"),
		coords:   fs.Int("coords", 12, "total coordinators (across 3 compute nodes)"),
		wh:       fs.Int("warehouses", 8, "TPC-C warehouses"),
		theta:    fs.Float64("theta", 0, "Zipfian constant (0 = workload default)"),
		duration: fs.Duration("duration", 2*time.Millisecond, "recorded virtual time"),
		warmup:   fs.Duration("warmup", 200*time.Microsecond, "virtual warmup before the recorded window"),
		seed:     fs.Int64("seed", 1, "simulation seed"),
		shards:   fs.Int("shards", 1, "shard groups of independent memory nodes"),
		place:    fs.String("placement", "hash", "data placement policy: "+strings.Join(crest.PlacementPolicies(), ", ")),
		workers:  fs.Int("workers", 1, "scheduler threads executing shard-group partitions concurrently (output is byte-identical at any count; 1 = sequential)"),
	}
}

// validate checks the shared flags; subcommands call it right after
// Parse so a bad value fails with usage instead of deep in the harness.
func (bf *benchFlags) validate() error {
	return crest.ValidateWorkers(*bf.workers)
}

func (bf *benchFlags) config() crest.BenchmarkConfig {
	return crest.BenchmarkConfig{
		System:              crest.System(strings.ToLower(*bf.system)),
		Workload:            strings.ToLower(*bf.workload),
		Warehouses:          *bf.wh,
		Theta:               *bf.theta,
		CoordinatorsPerNode: (*bf.coords + 2) / 3,
		Shards:              *bf.shards,
		Placement:           strings.ToLower(*bf.place),
		Duration:            *bf.duration,
		Warmup:              *bf.warmup,
		Seed:                *bf.seed,
		Quick:               true,
		Workers:             *bf.workers,
	}
}

// whySnapshotFrom loads the causality snapshot: from a crest-why JSON
// file when in is set, otherwise by running the configured benchmark
// with recording on.
func whySnapshotFrom(in string, bf *benchFlags, capacity int, stderr io.Writer) (*crest.WhySnapshot, int) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: %v\n", err)
			usage(stderr)
			return nil, 1
		}
		defer f.Close()
		snap, err := crest.ReadWhyJSON(f)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: reading %s: %v\n", in, err)
			usage(stderr)
			return nil, 1
		}
		return snap, 0
	}
	cfg := bf.config()
	cfg.Why = true
	cfg.WhyCapacity = capacity
	res, err := crest.RunBenchmark(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace: %v\n", err)
		return nil, 1
	}
	fmt.Fprintf(stderr, "[%s/%s: %d txns, %d edges recorded, %.1f KOPS]\n",
		res.System, res.Workload, len(res.Why.Txns), len(res.Why.Edges), res.ThroughputKOPS)
	return res.Why, 0
}

// flightSnapshotFrom loads the flight snapshot: from a crest-flight
// JSON file when in is set, otherwise by running the configured
// benchmark with the flight recorder on.
func flightSnapshotFrom(in string, bf *benchFlags, capacity int, stderr io.Writer) (*crest.FlightSnapshot, int) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: %v\n", err)
			usage(stderr)
			return nil, 1
		}
		defer f.Close()
		snap, err := crest.ReadFlightJSON(f)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: reading %s: %v\n", in, err)
			usage(stderr)
			return nil, 1
		}
		return snap, 0
	}
	cfg := bf.config()
	cfg.Flight = true
	cfg.FlightCapacity = capacity
	res, err := crest.RunBenchmark(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace: %v\n", err)
		return nil, 1
	}
	fmt.Fprintf(stderr, "[%s/%s: %d txns, %d exemplars recorded, %.1f KOPS]\n",
		res.System, res.Workload, len(res.Flight.Txns), len(res.Flight.Exemplars), res.ThroughputKOPS)
	return res.Flight, 0
}

// runTail prints the aggregate latency budget report: the p50/p99/
// p99.9 component decomposition, the tail-vs-median attribution, and
// the slowest exemplars' critical paths.
func runTail(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace tail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	in := fs.String("in", "", "read a crest-flight JSON export (crestbench -flight) instead of running a benchmark")
	capacity := fs.Int("txns", 0, "flight summary ring capacity (0 = default)")
	top := fs.Int("top", 5, "exemplar critical paths in the report")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace tail: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "cresttrace tail: unexpected argument %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}
	snap, code := flightSnapshotFrom(*in, bf, *capacity, stderr)
	if code != 0 {
		return code
	}
	if err := crest.WriteFlightTail(stdout, snap, *top); err != nil {
		fmt.Fprintf(stderr, "cresttrace tail: %v\n", err)
		return 1
	}
	return 0
}

// runCritPath prints one transaction's budget decomposition, attempt
// timeline and critical path.
func runCritPath(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace critpath", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	in := fs.String("in", "", "read a crest-flight JSON export (crestbench -flight) instead of running a benchmark")
	capacity := fs.Int("txns", 0, "flight summary ring capacity (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace critpath: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "cresttrace critpath: exactly one <txnid> argument required")
		usage(stderr)
		return 2
	}
	id, err := strconv.ParseUint(fs.Arg(0), 10, 64)
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace critpath: bad transaction id %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}
	snap, code := flightSnapshotFrom(*in, bf, *capacity, stderr)
	if code != 0 {
		return code
	}
	if err := crest.WriteFlightCritPath(stdout, snap, id); err != nil {
		fmt.Fprintf(stderr, "cresttrace critpath: %v\n", err)
		return 1
	}
	return 0
}

// runWhy prints the blame chain for one transaction.
func runWhy(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace why", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	in := fs.String("in", "", "read a crest-why JSON export instead of running a benchmark")
	capacity := fs.Int("edges", 0, "causality edge ring capacity (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace why: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "cresttrace why: exactly one <txnid> argument required")
		usage(stderr)
		return 2
	}
	id, err := strconv.ParseUint(fs.Arg(0), 10, 64)
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace why: bad transaction id %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}
	snap, code := whySnapshotFrom(*in, bf, *capacity, stderr)
	if code != 0 {
		return code
	}
	if err := crest.WriteWhyBlame(stdout, snap, id); err != nil {
		fmt.Fprintf(stderr, "cresttrace why: %v\n", err)
		return 1
	}
	return 0
}

// runGraph exports the aggregated contention dependency graph.
func runGraph(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace graph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	in := fs.String("in", "", "read a crest-why JSON export instead of running a benchmark")
	format := fs.String("format", "dot", "output: dot (Graphviz) or json (crest-why/v1)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace graph: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "cresttrace graph: unexpected argument %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}
	if *format != "dot" && *format != "json" {
		fmt.Fprintf(stderr, "cresttrace graph: unknown format %q (dot or json)\n", *format)
		usage(stderr)
		return 2
	}
	snap, code := whySnapshotFrom(*in, bf, 0, stderr)
	if code != 0 {
		return code
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace graph: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	var err error
	if *format == "json" {
		err = crest.WriteWhyJSON(bw, snap)
	} else {
		err = crest.WriteWhyDOT(bw, snap)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace graph: %v\n", err)
		return 1
	}
	return 0
}

// runWindows renders the window executor's window/barrier timeline of
// a partitioned run: per-window virtual-time spans with event and
// injection counts, plus per-partition executor counters. The timeline
// uses only schedule-derived fields, so stdout is byte-identical at any
// -workers count; the wall-clock summary goes to stderr.
func runWindows(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace windows", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	in := fs.String("in", "", "read a crest-runtime JSON export (crestbench -runtime-stats) instead of running a benchmark")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace windows: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "cresttrace windows: unexpected argument %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}

	var stats *crest.RuntimeStats
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace windows: %v\n", err)
			return 1
		}
		stats, err = crest.ReadRuntimeStats(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace windows: reading %s: %v\n", *in, err)
			return 1
		}
	} else {
		res, err := crest.RunBenchmark(bf.config())
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace windows: %v\n", err)
			return 1
		}
		if res.Runtime == nil {
			fmt.Fprintf(stderr, "cresttrace windows: run was not partitioned (needs -shards > 1 with a partition-safe workload)\n")
			return 1
		}
		stats = res.Runtime
		fmt.Fprintf(stderr, "[%s/%s: %d events, %.1f KOPS]\n",
			res.System, res.Workload, res.Events, res.ThroughputKOPS)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace windows: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	err := crest.WriteWindowTimeline(bw, stats)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace windows: %v\n", err)
		return 1
	}
	if stats.WallMS > 0 {
		fmt.Fprintf(stderr, "[runtime: %d workers, %.1f ms wall, %.1f ms barrier wait, occupancy %.0f%%]\n",
			stats.Workers, stats.WallMS, stats.BarrierWaitMS, 100*stats.WorkerOccupancy)
	}
	return 0
}

// runTrace is the original cresttrace behavior: run with tracing on
// and render the event stream.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cresttrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bf := addBenchFlags(fs)
	var (
		format   = fs.String("format", "json", "output: json (Chrome trace_event), spans (text timelines), hotkeys (contention profile)")
		out      = fs.String("o", "", "output file (default stdout)")
		top      = fs.Int("top", 20, "entries in the hotkeys report")
		capacity = fs.Int("events", 0, "trace ring capacity (0 = default)")
		metOut   = fs.String("metrics", "", "also write the run's windowed metrics to this file (.csv, .json or Prometheus text by extension)")
		metWin   = fs.Duration("metrics-window", 100*time.Microsecond, "with -metrics: time-series window in virtual time")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := bf.validate(); err != nil {
		fmt.Fprintf(stderr, "cresttrace: %v\n", err)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "cresttrace: unexpected argument %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}
	switch *format {
	case "json", "spans", "hotkeys":
	default:
		fmt.Fprintf(stderr, "cresttrace: unknown format %q (json, spans or hotkeys)\n", *format)
		usage(stderr)
		return 2
	}

	cfg := bf.config()
	cfg.Trace = true
	cfg.TraceCapacity = *capacity
	cfg.Metrics = *metOut != ""
	cfg.MetricsWindow = *metWin
	res, err := crest.RunBenchmark(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace: %v\n", err)
		return 1
	}

	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: %v\n", err)
			return 1
		}
		switch {
		case strings.HasSuffix(*metOut, ".csv"):
			err = crest.WriteMetricsCSV(f, res.Metrics)
		case strings.HasSuffix(*metOut, ".json"):
			err = crest.WriteMetricsJSON(f, res.Metrics)
		default:
			err = crest.WriteMetricsPrometheus(f, res.Metrics)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: writing %s: %v\n", *metOut, err)
			return 1
		}
		fmt.Fprintf(stderr, "[metrics: %d series, %d windows -> %s]\n",
			len(res.Metrics.Series), len(res.Metrics.Times), *metOut)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "cresttrace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)

	snap := res.Trace
	switch *format {
	case "json":
		err = crest.WriteChromeTrace(bw, snap)
	case "spans":
		err = crest.WriteSpanSummary(bw, snap)
	case "hotkeys":
		err = crest.WriteHotKeys(bw, snap, *top)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cresttrace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "[%s/%s: %d events, %d dropped, %.1f KOPS in the traced window]\n",
		res.System, res.Workload, len(snap.Events), snap.Dropped, res.ThroughputKOPS)
	return 0
}
