// Command cresttrace runs a workload under one of the simulated
// transaction systems with tracing on and renders the recorded event
// stream.
//
// Emit a Perfetto/chrome://tracing-compatible JSON timeline:
//
//	cresttrace -system crest -workload smallbank -format json -o trace.json
//
// Print per-transaction span timelines (virtual-time phase durations
// with round-trip attribution):
//
//	cresttrace -system ford -workload smallbank -format spans
//
// Print the hot-key contention profile (top-K cells by conflict and
// abort count):
//
//	cresttrace -workload ycsb -theta 0.99 -format hotkeys -top 10
//
// Traces are deterministic: the same seed and configuration produce
// byte-identical output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"crest"
)

func main() {
	var (
		system   = flag.String("system", "crest", "system: crest, crest-cell, crest-base, ford, motor")
		workload = flag.String("workload", "smallbank", "workload: tpcc, smallbank, ycsb")
		format   = flag.String("format", "json", "output: json (Chrome trace_event), spans (text timelines), hotkeys (contention profile)")
		out      = flag.String("o", "", "output file (default stdout)")
		top      = flag.Int("top", 20, "entries in the hotkeys report")
		coords   = flag.Int("coords", 12, "total coordinators (across 3 compute nodes)")
		wh       = flag.Int("warehouses", 8, "TPC-C warehouses")
		theta    = flag.Float64("theta", 0, "Zipfian constant (0 = workload default)")
		duration = flag.Duration("duration", 2*time.Millisecond, "traced virtual time")
		warmup   = flag.Duration("warmup", 200*time.Microsecond, "virtual warmup before the trace window")
		seed     = flag.Int64("seed", 1, "simulation seed")
		capacity = flag.Int("events", 0, "trace ring capacity (0 = default)")
		metOut   = flag.String("metrics", "", "also write the run's windowed metrics to this file (.csv, .json or Prometheus text by extension)")
		metWin   = flag.Duration("metrics-window", 100*time.Microsecond, "with -metrics: time-series window in virtual time")
	)
	flag.Parse()

	res, err := crest.RunBenchmark(crest.BenchmarkConfig{
		System:              crest.System(strings.ToLower(*system)),
		Workload:            strings.ToLower(*workload),
		Warehouses:          *wh,
		Theta:               *theta,
		CoordinatorsPerNode: (*coords + 2) / 3,
		Duration:            *duration,
		Warmup:              *warmup,
		Seed:                *seed,
		Quick:               true,
		Trace:               true,
		TraceCapacity:       *capacity,
		Metrics:             *metOut != "",
		MetricsWindow:       *metWin,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fatalf("%v", err)
		}
		switch {
		case strings.HasSuffix(*metOut, ".csv"):
			err = crest.WriteMetricsCSV(f, res.Metrics)
		case strings.HasSuffix(*metOut, ".json"):
			err = crest.WriteMetricsJSON(f, res.Metrics)
		default:
			err = crest.WriteMetricsPrometheus(f, res.Metrics)
		}
		if err != nil {
			fatalf("writing %s: %v", *metOut, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "[metrics: %d series, %d windows -> %s]\n",
			len(res.Metrics.Series), len(res.Metrics.Times), *metOut)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	snap := res.Trace
	switch *format {
	case "json":
		err = crest.WriteChromeTrace(bw, snap)
	case "spans":
		err = crest.WriteSpanSummary(bw, snap)
	case "hotkeys":
		err = crest.WriteHotKeys(bw, snap, *top)
	default:
		fatalf("unknown format %q (json, spans or hotkeys)", *format)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "[%s/%s: %d events, %d dropped, %.1f KOPS in the traced window]\n",
		res.System, res.Workload, len(snap.Events), snap.Dropped, res.ThroughputKOPS)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cresttrace: "+format+"\n", args...)
	os.Exit(1)
}
