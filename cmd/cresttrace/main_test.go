package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crest/internal/causality"
	"crest/internal/sim"
)

// dispatch runs the CLI entry point against in-memory streams.
func dispatch(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestUnknownSubcommandPrintsUsage(t *testing.T) {
	code, stdout, stderr := dispatch("frobnicate")
	if code == 0 {
		t.Fatalf("unknown subcommand exited 0")
	}
	if stdout != "" {
		t.Fatalf("unknown subcommand wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "unknown subcommand") || !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing diagnosis/usage:\n%s", stderr)
	}
}

func TestWhyRequiresTxnID(t *testing.T) {
	code, _, stderr := dispatch("why")
	if code == 0 {
		t.Fatal("why without txnid exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}

	code, _, stderr = dispatch("why", "notanumber")
	if code == 0 {
		t.Fatal("why with a non-numeric txnid exited 0")
	}
	if !strings.Contains(stderr, "bad transaction id") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestWhyUnreadableInputPrintsUsage(t *testing.T) {
	code, _, stderr := dispatch("why", "-in", filepath.Join(t.TempDir(), "absent.json"), "5")
	if code == 0 {
		t.Fatal("unreadable -in exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = dispatch("why", "-in", bad, "5")
	if code == 0 {
		t.Fatal("unparsable -in exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}
}

func TestGraphRejectsBadFormatAndArgs(t *testing.T) {
	code, _, stderr := dispatch("graph", "-format", "svg")
	if code == 0 {
		t.Fatal("bad -format exited 0")
	}
	if !strings.Contains(stderr, "unknown format") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
	code, _, stderr = dispatch("graph", "stray")
	if code == 0 {
		t.Fatal("stray positional arg exited 0")
	}
	if !strings.Contains(stderr, "unexpected argument") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

// whyFixture writes a crest-why JSON export with a three-transaction
// blame chain: T412 failed validation against T398, which waited on
// T371.
func whyFixture(t *testing.T) string {
	t.Helper()
	snap := &causality.Snapshot{
		Txns: []causality.TxnInfo{
			{ID: 371, Label: "Audit", State: causality.StateCommitted, End: 80},
			{ID: 398, Label: "Deposit", State: causality.StateCommitted, End: 90},
			{ID: 412, Label: "Pay", State: causality.StateAborted, Reason: "validation",
				Attempt: 1, Aborts: 1, End: 100,
				Cause: &causality.CauseInfo{Seq: 2, Kind: causality.KindValidation,
					Table: 3, Key: 17, Mask: 1 << 2, Holder: 398}},
		},
		Edges: []causality.Edge{
			{Seq: 1, At: 40, Kind: causality.KindLocalWait, Waiter: 398, Holder: 371,
				Table: 3, Key: 17, Wait: 14 * sim.Microsecond},
			{Seq: 2, At: 95, Kind: causality.KindValidation, Waiter: 412, Holder: 398,
				Table: 3, Key: 17, Mask: 1 << 2},
		},
	}
	path := filepath.Join(t.TempDir(), "why.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := causality.WriteJSON(f, snap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWhyPrintsMultiHopBlameChain(t *testing.T) {
	code, stdout, stderr := dispatch("why", "-in", whyFixture(t), "412")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"T412 [Pay] aborted",
		"failed validation on (table 3, key 17, cell {2}); updated by T398 [Deposit]",
		"T398 [Deposit] waited 14.000µs on (table 3, key 17, record) held by T371 [Audit]",
		"T371 [Audit] committed",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("blame output missing %q:\n%s", want, stdout)
		}
	}

	// An id the export does not contain is an error, not silence.
	code, _, stderr = dispatch("why", "-in", whyFixture(t), "999")
	if code == 0 {
		t.Fatal("unknown txn exited 0")
	}
	if !strings.Contains(stderr, "unknown txn") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestGraphRendersDOTFromExport(t *testing.T) {
	code, stdout, stderr := dispatch("graph", "-in", whyFixture(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "digraph crest_why {\n") || !strings.HasSuffix(stdout, "}\n") {
		t.Fatalf("not a DOT document:\n%s", stdout)
	}
	if !strings.Contains(stdout, `"Pay" -> "Deposit"`) {
		t.Fatalf("missing aggregated edge:\n%s", stdout)
	}

	code, stdout, stderr = dispatch("graph", "-in", whyFixture(t), "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"schema": "crest-why/v1"`) {
		t.Fatalf("missing schema header:\n%s", stdout)
	}
}
