package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crest/internal/causality"
	"crest/internal/flight"
	"crest/internal/sim"
	"crest/internal/trace"
)

// dispatch runs the CLI entry point against in-memory streams.
func dispatch(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestUnknownSubcommandPrintsUsage(t *testing.T) {
	code, stdout, stderr := dispatch("frobnicate")
	if code == 0 {
		t.Fatalf("unknown subcommand exited 0")
	}
	if stdout != "" {
		t.Fatalf("unknown subcommand wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "unknown subcommand") || !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing diagnosis/usage:\n%s", stderr)
	}
}

func TestWhyRequiresTxnID(t *testing.T) {
	code, _, stderr := dispatch("why")
	if code == 0 {
		t.Fatal("why without txnid exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}

	code, _, stderr = dispatch("why", "notanumber")
	if code == 0 {
		t.Fatal("why with a non-numeric txnid exited 0")
	}
	if !strings.Contains(stderr, "bad transaction id") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestWhyUnreadableInputPrintsUsage(t *testing.T) {
	code, _, stderr := dispatch("why", "-in", filepath.Join(t.TempDir(), "absent.json"), "5")
	if code == 0 {
		t.Fatal("unreadable -in exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = dispatch("why", "-in", bad, "5")
	if code == 0 {
		t.Fatal("unparsable -in exited 0")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}
}

func TestGraphRejectsBadFormatAndArgs(t *testing.T) {
	code, _, stderr := dispatch("graph", "-format", "svg")
	if code == 0 {
		t.Fatal("bad -format exited 0")
	}
	if !strings.Contains(stderr, "unknown format") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
	code, _, stderr = dispatch("graph", "stray")
	if code == 0 {
		t.Fatal("stray positional arg exited 0")
	}
	if !strings.Contains(stderr, "unexpected argument") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

// whyFixture writes a crest-why JSON export with a three-transaction
// blame chain: T412 failed validation against T398, which waited on
// T371.
func whyFixture(t *testing.T) string {
	t.Helper()
	snap := &causality.Snapshot{
		Txns: []causality.TxnInfo{
			{ID: 371, Label: "Audit", State: causality.StateCommitted, End: 80},
			{ID: 398, Label: "Deposit", State: causality.StateCommitted, End: 90},
			{ID: 412, Label: "Pay", State: causality.StateAborted, Reason: "validation",
				Attempt: 1, Aborts: 1, End: 100,
				Cause: &causality.CauseInfo{Seq: 2, Kind: causality.KindValidation,
					Table: 3, Key: 17, Mask: 1 << 2, Holder: 398}},
		},
		Edges: []causality.Edge{
			{Seq: 1, At: 40, Kind: causality.KindLocalWait, Waiter: 398, Holder: 371,
				Table: 3, Key: 17, Wait: 14 * sim.Microsecond},
			{Seq: 2, At: 95, Kind: causality.KindValidation, Waiter: 412, Holder: 398,
				Table: 3, Key: 17, Mask: 1 << 2},
		},
	}
	path := filepath.Join(t.TempDir(), "why.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := causality.WriteJSON(f, snap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWhyPrintsMultiHopBlameChain(t *testing.T) {
	code, stdout, stderr := dispatch("why", "-in", whyFixture(t), "412")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"T412 [Pay] aborted",
		"failed validation on (table 3, key 17, cell {2}); updated by T398 [Deposit]",
		"T398 [Deposit] waited 14.000µs on (table 3, key 17, record) held by T371 [Audit]",
		"T371 [Audit] committed",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("blame output missing %q:\n%s", want, stdout)
		}
	}

	// An id the export does not contain is an error, not silence.
	code, _, stderr = dispatch("why", "-in", whyFixture(t), "999")
	if code == 0 {
		t.Fatal("unknown txn exited 0")
	}
	if !strings.Contains(stderr, "unknown txn") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

// flightFixture writes a crest-flight JSON export with two committed
// transactions; the slower one (T9, dominated by backoff) carries
// per-attempt exemplar detail.
func flightFixture(t *testing.T) string {
	t.Helper()
	us := func(n int64) sim.Duration { return sim.Duration(n) * sim.Microsecond }
	fast := flight.TxnBudget{
		ID: 4, Label: "Balance", Coord: 1, Shard: 0,
		Begin: sim.Time(us(10)), End: sim.Time(us(14)), Attempts: 1, Committed: true,
	}
	fast.Budget[flight.CompExec] = us(1)
	fast.Budget[flight.CompWireRead] = us(3)
	slow := flight.TxnBudget{
		ID: 9, Label: "Pay", Coord: 2, Shard: 0,
		Begin: sim.Time(us(20)), End: sim.Time(us(60)), Attempts: 2, Committed: true,
		Reason: "lock-conflict", WaitHolder: 4, WaitMax: us(5),
	}
	slow.Budget[flight.CompExec] = us(2)
	slow.Budget[flight.CompWireRead] = us(6)
	slow.Budget[flight.CompWait] = us(5)
	slow.Budget[flight.CompBackoff] = us(25)
	slow.Budget[flight.CompLock] = us(2)
	ex := flight.Exemplar{TxnBudget: slow, Bucket: flight.CompBackoff}
	a1 := flight.AttemptInfo{Start: sim.Time(us(20)), End: sim.Time(us(30)), Outcome: "lock-conflict",
		Wait: us(5), WaitMax: us(5), WaitHolder: 4}
	a1.Phases[trace.PhaseExec] = us(1)
	a1.Phases[trace.PhaseLock] = us(9)
	a1.WaitPhase[trace.PhaseLock] = us(5)
	a1.WirePhase[trace.PhaseLock] = us(3)
	a1.Wire[flight.ClassRead] = us(3)
	a2 := flight.AttemptInfo{Start: sim.Time(us(55)), End: sim.Time(us(60)), Outcome: "commit",
		Gap: us(25)}
	a2.Phases[trace.PhaseExec] = us(1)
	a2.Phases[trace.PhaseLock] = us(4)
	a2.WirePhase[trace.PhaseLock] = us(3)
	a2.Wire[flight.ClassRead] = us(3)
	ex.Detail = []flight.AttemptInfo{a1, a2}
	snap := &flight.Snapshot{Txns: []flight.TxnBudget{fast, slow}, Exemplars: []flight.Exemplar{ex}}
	path := filepath.Join(t.TempDir(), "flight.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := flight.WriteJSON(f, snap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTailRendersBudgetReportFromExport(t *testing.T) {
	code, stdout, stderr := dispatch("tail", "-in", flightFixture(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"component", "tail vs median", "T9 [Pay]", "backoff"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("tail output missing %q:\n%s", want, stdout)
		}
	}

	code, _, stderr = dispatch("tail", "-in", flightFixture(t), "stray")
	if code != 2 {
		t.Fatalf("stray positional arg exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected argument") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestCritPathWalksAttemptsFromExport(t *testing.T) {
	code, stdout, stderr := dispatch("critpath", "-in", flightFixture(t), "9")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"T9 [Pay] coord 2, shard 0: committed in 40.0µs over 2 attempt(s)",
		"attempt 1: 10.0µs → lock-conflict",
		"gap: backoff 25.0µs",
		"attempt 2: 5.0µs → commit",
		"critical path:",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("critpath output missing %q:\n%s", want, stdout)
		}
	}

	// A txn in the ring but not captured as an exemplar degrades to the
	// summary decomposition with a note.
	code, stdout, _ = dispatch("critpath", "-in", flightFixture(t), "4")
	if code != 0 {
		t.Fatalf("summary-only txn exited %d", code)
	}
	if !strings.Contains(stdout, "no exemplar detail") {
		t.Fatalf("missing summary-only note:\n%s", stdout)
	}

	// Unknown ids and non-numeric ids are errors, not silence.
	code, _, stderr = dispatch("critpath", "-in", flightFixture(t), "999")
	if code == 0 {
		t.Fatal("unknown txn exited 0")
	}
	if !strings.Contains(stderr, "unknown txn") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
	code, _, stderr = dispatch("critpath", "notanumber")
	if code != 2 {
		t.Fatalf("non-numeric txnid exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad transaction id") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestGraphRendersDOTFromExport(t *testing.T) {
	code, stdout, stderr := dispatch("graph", "-in", whyFixture(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "digraph crest_why {\n") || !strings.HasSuffix(stdout, "}\n") {
		t.Fatalf("not a DOT document:\n%s", stdout)
	}
	if !strings.Contains(stdout, `"Pay" -> "Deposit"`) {
		t.Fatalf("missing aggregated edge:\n%s", stdout)
	}

	code, stdout, stderr = dispatch("graph", "-in", whyFixture(t), "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"schema": "crest-why/v1"`) {
		t.Fatalf("missing schema header:\n%s", stdout)
	}
}
