package crest

import (
	"io"

	"crest/internal/bench"
	"crest/internal/scenario"
)

// The declarative scenario surface: a ScenarioSpec is the parsed form
// of a .spec workload file — godb-bench/YCSB-compatible workload keys
// plus a virtual-time traffic timeline of phases (constant load,
// ramps, diurnal sine curves, bursts, and hotspot drift). Feed one to
// BenchmarkConfig.Scenario, or run it from the CLI with
// `crestbench -run -spec file.spec`. See DESIGN.md §9 for the
// grammar and examples/scenarios/ for ready-made specs.
type (
	// ScenarioSpec is a parsed scenario: workload section + timeline.
	ScenarioSpec = scenario.Spec
	// ScenarioPhase is one segment of a scenario's traffic timeline.
	ScenarioPhase = scenario.Phase
	// ScenarioPhaseStat is the per-phase outcome of a scenario run.
	ScenarioPhaseStat = bench.PhaseStat
)

// ParseScenario reads a .spec document; name seeds the scenario's
// name when the document has no name= property.
func ParseScenario(r io.Reader, name string) (*ScenarioSpec, error) {
	return scenario.Parse(r, name)
}

// ParseScenarioFile reads a .spec file, naming the scenario after the
// file when it has no name= property.
func ParseScenarioFile(path string) (*ScenarioSpec, error) {
	return scenario.ParseFile(path)
}

// DriftDemoScenario returns the canonical hotspot-drift demo scenario
// (the same spec as examples/scenarios/drift-demo.spec and the
// "scenario" experiment).
func DriftDemoScenario() *ScenarioSpec { return scenario.DriftDemo() }
