module crest

go 1.22
