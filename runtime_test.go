package crest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func partitionedBenchCfg(workers int) BenchmarkConfig {
	return BenchmarkConfig{
		System:       SystemCREST,
		Workload:     WorkloadSmallBank,
		Theta:        0.5,
		Shards:       3,
		Placement:    "modulo",
		MemoryNodes:  2,
		Coordinators: 12,
		Duration:     2 * time.Millisecond,
		Warmup:       500 * time.Microsecond,
		Quick:        true,
		Workers:      workers,
	}
}

// A partitioned run surfaces the window executor's introspection; a
// classic single-group run does not.
func TestRuntimeStatsPopulatedForPartitionedRuns(t *testing.T) {
	res, err := RunBenchmark(partitionedBenchCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Runtime
	if rt == nil {
		t.Fatal("partitioned run returned no RuntimeStats")
	}
	if rt.Schema != RuntimeSchemaVersion {
		t.Fatalf("schema %q, want %q", rt.Schema, RuntimeSchemaVersion)
	}
	if rt.Parts != 3 || rt.Workers != 2 || rt.Windows == 0 {
		t.Fatalf("implausible stats: parts=%d workers=%d windows=%d", rt.Parts, rt.Workers, rt.Windows)
	}
	if len(rt.Partitions) != 3 {
		t.Fatalf("%d partition entries, want 3", len(rt.Partitions))
	}
	var events uint64
	for _, p := range rt.Partitions {
		events += p.Events
	}
	if events != res.Events {
		t.Fatalf("partition events sum %d != run events %d", events, res.Events)
	}
	if len(rt.WindowLog) == 0 {
		t.Fatal("no window log recorded")
	}

	cfg := partitionedBenchCfg(1)
	cfg.Shards = 1
	cfg.Placement = ""
	single, err := RunBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.Runtime != nil {
		t.Fatal("single-group run returned RuntimeStats")
	}
}

// The runtime-stats document round-trips through its writer and reader,
// and foreign schema versions are rejected.
func TestRuntimeStatsJSONRoundTrip(t *testing.T) {
	res, err := RunBenchmark(partitionedBenchCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRuntimeStats(&buf, res.Runtime); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRuntimeStats(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res.Runtime) {
		t.Fatalf("round-trip changed the document:\n%+v\nvs\n%+v", got, res.Runtime)
	}
	bad := bytes.Replace(buf.Bytes(), []byte(RuntimeSchemaVersion), []byte("crest-runtime/v999"), 1)
	if _, err := ReadRuntimeStats(bytes.NewReader(bad)); err == nil {
		t.Fatal("foreign schema version accepted")
	}
}

// The window timeline renders only schedule-derived fields, so two runs
// at different worker counts produce byte-identical timelines even
// though their wall-clock fields differ.
func TestWindowTimelineByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		res, err := RunBenchmark(partitionedBenchCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteWindowTimeline(&buf, res.Runtime); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, eight := render(1), render(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("timeline differs between workers=1 and workers=8:\n%s\nvs\n%s", one, eight)
	}
	out := string(one)
	for _, want := range []string{"windows ", "partition 0:", "start_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline lacks %q:\n%s", want, out)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v", n, err)
		}
	}
	for _, n := range []int{0, -1} {
		if ValidateWorkers(n) == nil {
			t.Errorf("ValidateWorkers(%d) accepted", n)
		}
	}
}
