package crest

// One testing.B benchmark per table and figure of the paper's
// evaluation. Each iteration regenerates the artifact at a reduced
// profile and reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// walks the full evaluation. cmd/crestbench runs the same experiments
// at the near-paper "full" profile; EXPERIMENTS.md records those
// results against the paper's numbers.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"crest/internal/bench"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/workload"
)

// benchProfile is even smaller than the quick profile so the whole
// -bench=. sweep stays minutes-scale.
func benchProfile() bench.Profile {
	p := bench.Quick()
	p.Duration = 3 * sim.Millisecond
	p.Warmup = 500 * sim.Microsecond
	p.CoordSweep = []int{24, 72}
	p.MaxCoords = 72
	p.YCSBRecords = 10_000
	p.SBAccounts = 10_000
	p.TPCCScale.CustomersPerDistrict = 12
	p.TPCCScale.Items = 128
	p.TPCCScale.OrdersPerDistrict = 16
	return p
}

// runExperiment executes one registered experiment per b.N iteration
// and reports the first row's numeric columns as metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	p := benchProfile()
	exp, ok := bench.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tables []bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = exp.Run(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table %s", id, tab.ID)
		}
		last := tab.Rows[len(tab.Rows)-1]
		for col := 1; col < len(last); col++ {
			v, err := strconv.ParseFloat(trimPct(last[col]), 64)
			if err != nil {
				continue // non-numeric cell
			}
			name := fmt.Sprintf("%s_%s", tab.ID, tab.Header[col])
			b.ReportMetric(v, sanitizeMetric(name))
		}
	}
}

// Benchmarks, one per artifact, in the paper's order.

func BenchmarkFig2Motivation(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3Aborts(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig4Breakdown(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkTable1Space(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkTable2Ops(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkExp1Throughput(b *testing.B)  { runExperiment(b, "exp1") }
func BenchmarkExp2Latency(b *testing.B)     { runExperiment(b, "exp2") }
func BenchmarkExp3Tail(b *testing.B)        { runExperiment(b, "exp3") }
func BenchmarkExp4Breakdown(b *testing.B)   { runExperiment(b, "exp4") }
func BenchmarkExp5Factor(b *testing.B)      { runExperiment(b, "exp5") }
func BenchmarkExp6Skew(b *testing.B)        { runExperiment(b, "exp6") }
func BenchmarkExp7RecordCount(b *testing.B) { runExperiment(b, "exp7") }
func BenchmarkExp8WriteRatio(b *testing.B)  { runExperiment(b, "exp8") }

// BenchmarkAblationRTT sweeps the fabric round-trip time, the latency
// knob DESIGN.md calls out: CREST's relative win should persist across
// interconnect speeds.
func BenchmarkAblationRTT(b *testing.B) {
	p := benchProfile()
	for _, rtt := range []time.Duration{1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond} {
		rtt := rtt
		b.Run(fmt.Sprintf("rtt=%v", rtt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, system := range []bench.SystemKind{bench.CREST, bench.FORD} {
					cfg := benchCfg(p, system, p.YCSB(0.99, 0.5, 4))
					cfg.Params = rdma.DefaultParams()
					cfg.Params.RTT = sim.Duration(rtt)
					res, err := bench.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.ThroughputKOPS(), string(system)+"_KOPS")
				}
			}
		})
	}
}

// BenchmarkAblationReplication compares f=0 against the paper's f=1
// synchronous backup.
func BenchmarkAblationReplication(b *testing.B) {
	p := benchProfile()
	for _, f := range []int{0, 1} {
		f := f
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(p, bench.CREST, p.TPCC(40))
				cfg.Replicas = f
				res, err := bench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputKOPS(), "KOPS")
				b.ReportMetric(res.Lat.Avg(), "avg_µs")
			}
		})
	}
}

// trimPct strips a trailing percent sign from a table cell.
func trimPct(s string) string {
	if len(s) > 0 && s[len(s)-1] == '%' {
		return s[:len(s)-1]
	}
	return s
}

// sanitizeMetric keeps metric names benchstat-friendly.
func sanitizeMetric(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-', c == '/':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func benchCfg(p bench.Profile, system bench.SystemKind, wl func() workload.Generator) bench.Config {
	return bench.Config{
		System:      system,
		Workload:    wl,
		MemNodes:    2,
		CompNodes:   3,
		CoordsPerCN: p.MaxCoords / 3,
		Replicas:    p.Replicas,
		Seed:        p.Seed,
		Duration:    p.Duration,
		Warmup:      p.Warmup,
	}
}
