package crest

import (
	"fmt"
	"io"
	"time"

	"crest/internal/bench"
	"crest/internal/causality"
	"crest/internal/flight"
	"crest/internal/metrics"
	"crest/internal/sim"
	"crest/internal/trace"
	"crest/internal/workload"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/tpcc"
	"crest/internal/workload/ycsb"
)

// Workload names accepted by BenchmarkConfig.
const (
	WorkloadTPCC      = "tpcc"
	WorkloadSmallBank = "smallbank"
	WorkloadYCSB      = "ycsb"
)

// BenchmarkConfig describes one measured run, mirroring the paper's
// §8.2 methodology. Zero values take the evaluation defaults.
type BenchmarkConfig struct {
	System   System
	Workload string // tpcc, smallbank or ycsb

	// Scenario, when set, drives the run from a declarative scenario
	// (see ParseScenario / ParseScenarioFile): the spec's workload
	// section replaces Workload and the workload knobs below, and its
	// traffic timeline modulates load and hotspot placement over
	// virtual time. Determinism is unchanged — same seed, same spec,
	// byte-identical run.
	Scenario *ScenarioSpec

	// TPC-C contention knob (the paper sweeps 100 → 20 warehouses).
	Warehouses int
	// Zipfian constant for SmallBank and YCSB (0 = uniform).
	Theta float64
	// YCSB write ratio and records-per-transaction.
	WriteRatio   float64
	RecordsPerTx int

	// MemoryNodes is the number of memory nodes per shard group.
	MemoryNodes  int
	ComputeNodes int
	// Shards is the number of independent shard groups (default 1, the
	// classic single-group topology; 1 with hash placement is
	// byte-identical to the pre-sharding harness).
	Shards int
	// Placement names the data-placement policy routing records to
	// shard groups and nodes ("" = "hash"; see PlacementPolicies).
	// The "hotspot" policy seeds itself from PlacementHotKeys, or —
	// when none are given — from a short deterministic contention
	// probe of the same workload under modulo placement.
	Placement        string
	PlacementHotKeys []PlacementHotKey
	// Coordinators is the total coordinator count across compute
	// nodes; totals that do not divide the node count are spread by
	// giving the first nodes one extra coordinator, so exactly this
	// many run. It takes precedence over CoordinatorsPerNode.
	Coordinators        int
	CoordinatorsPerNode int
	Replicas            int
	Seed                int64

	// Duration is the measured virtual-time window; Warmup precedes
	// it and is excluded.
	Duration time.Duration
	Warmup   time.Duration

	// Scale shrinks table cardinalities for fast runs: records,
	// accounts and TPC-C rings use the quick profile when true.
	Quick bool

	// Trace records the run's deterministic event trace; the snapshot
	// comes back in BenchmarkResult.Trace.
	Trace bool
	// TraceCapacity bounds the trace ring buffer (0 = default).
	TraceCapacity int

	// Metrics records the run's windowed metrics time-series; the
	// snapshot comes back in BenchmarkResult.Metrics.
	Metrics bool
	// MetricsWindow is the sampling period in virtual time (default
	// 100µs of virtual time; ignored unless Metrics is set).
	MetricsWindow time.Duration

	// Why records wait-for and conflict edges for abort forensics; the
	// snapshot comes back in BenchmarkResult.Why.
	Why bool
	// WhyCapacity bounds the causality edge ring buffer (0 = default).
	WhyCapacity int

	// Flight records every transaction's additive latency budget and
	// the tail outliers' full per-attempt timelines; the snapshot comes
	// back in BenchmarkResult.Flight.
	Flight bool
	// FlightCapacity bounds the flight summary ring buffer (0 = default).
	FlightCapacity int

	// Workers is how many OS threads execute the simulation's
	// shard-group partitions concurrently (sharded topologies with a
	// partition-safe workload; other runs ignore it). It is an
	// invocation-level performance knob: every worker count produces
	// byte-identical results — including trace, metrics and why
	// snapshots, which record into per-partition shards and merge
	// deterministically — so only the wall-clock measurements (WallMS,
	// EventsPerSec, the nondeterministic RuntimeStats fields) change.
	// 0 means 1.
	Workers int
}

// BenchmarkResult aggregates a run, in the paper's units.
type BenchmarkResult struct {
	System       System
	Workload     string
	Coordinators int

	ThroughputKOPS float64
	Committed      uint64
	Aborted        uint64
	AbortRate      float64
	FalseAbortRate float64

	AvgLatencyUs  float64
	P50LatencyUs  float64
	P99LatencyUs  float64
	P999LatencyUs float64

	// Per-phase average latency of committed transactions (µs).
	ExecUs     float64
	ValidateUs float64
	CommitUs   float64

	// Events is the number of scheduler dispatches the run consumed
	// (deterministic: same config, same count). WallMS is the real
	// time the event loop took and EventsPerSec the resulting
	// simulator speed — both nondeterministic measurements of the
	// simulator itself, not of the simulated system.
	Events       uint64
	WallMS       float64
	EventsPerSec float64

	// Trace is the run's event trace when BenchmarkConfig.Trace was
	// set (render with WriteChromeTrace / WriteSpanSummary /
	// WriteHotKeys), nil otherwise.
	Trace *TraceSnapshot

	// Metrics is the run's windowed metrics snapshot when
	// BenchmarkConfig.Metrics was set (render with
	// WriteMetricsPrometheus / WriteMetricsCSV / WriteMetricsJSON /
	// WriteMetricsSparklines), nil otherwise.
	Metrics *MetricsSnapshot

	// Why is the run's causality snapshot when BenchmarkConfig.Why was
	// set (render with WriteWhyBlame / WriteWhyDOT / WriteWhyJSON),
	// nil otherwise.
	Why *WhySnapshot

	// Flight is the run's latency-budget snapshot when
	// BenchmarkConfig.Flight was set (render with WriteFlightTail /
	// WriteFlightCritPath / WriteFlightJSON), nil otherwise.
	Flight *FlightSnapshot

	// ScenarioPhases is the per-phase breakdown (attempts, commits,
	// aborts) when the run was scenario-driven, nil otherwise.
	ScenarioPhases []ScenarioPhaseStat

	// Runtime is the window executor's introspection when the run was
	// partitioned (Shards > 1 with a partition-safe workload), nil
	// otherwise. Its wall-clock fields are nondeterministic; see
	// RuntimeStats for which fields are schedule-derived.
	Runtime *RuntimeStats
}

// String summarizes the result in one line.
func (r BenchmarkResult) String() string {
	return fmt.Sprintf("%s/%s @%d coordinators: %.1f KOPS, abort %.1f%%, avg %.1fµs p99 %.1fµs p999 %.1fµs",
		r.System, r.Workload, r.Coordinators, r.ThroughputKOPS, 100*r.AbortRate,
		r.AvgLatencyUs, r.P99LatencyUs, r.P999LatencyUs)
}

// RunBenchmark executes one measured run and returns its metrics.
func RunBenchmark(cfg BenchmarkConfig) (BenchmarkResult, error) {
	profile := benchProfileFor(cfg.Quick)
	gen, name, err := benchWorkload(cfg, profile)
	if err != nil {
		return BenchmarkResult{}, err
	}
	bc := bench.Config{
		System:       bench.SystemKind(withDefault(string(cfg.System), string(SystemCREST))),
		Workload:     gen,
		MemNodes:     cfg.MemoryNodes,
		CompNodes:    cfg.ComputeNodes,
		Shards:       cfg.Shards,
		Placement:    cfg.Placement,
		HotKeys:      cfg.PlacementHotKeys,
		Coordinators: cfg.Coordinators,
		CoordsPerCN:  cfg.CoordinatorsPerNode,
		Replicas:     cfg.Replicas,
		Seed:         cfg.Seed,
		Duration:     sim.Duration(cfg.Duration),
		Warmup:       sim.Duration(cfg.Warmup),
		Workers:      cfg.Workers,
	}
	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder(cfg.TraceCapacity)
		bc.Trace = rec
	}
	var reg *metrics.Registry
	if cfg.Metrics {
		window := metrics.DefaultWindow
		if cfg.MetricsWindow > 0 {
			window = sim.Duration(cfg.MetricsWindow)
		}
		reg = metrics.NewRegistry(metrics.Options{Window: window})
		bc.Metrics = reg
	}
	var why *causality.Recorder
	if cfg.Why {
		why = causality.NewRecorder(causality.Options{Capacity: cfg.WhyCapacity})
		bc.Why = why
	}
	var fl *flight.Recorder
	if cfg.Flight {
		fl = flight.NewRecorder(flight.Options{TxnCapacity: cfg.FlightCapacity})
		bc.Flight = fl
	}
	res, err := bench.Run(bc)
	if err != nil {
		return BenchmarkResult{}, err
	}
	var snap *TraceSnapshot
	if rec != nil {
		snap = rec.Snapshot()
	}
	var msnap *MetricsSnapshot
	if reg != nil {
		msnap = reg.Snapshot()
	}
	var wsnap *WhySnapshot
	if why != nil {
		wsnap = why.Snapshot()
	}
	var fsnap *FlightSnapshot
	if fl != nil {
		fsnap = fl.Snapshot()
	}
	return BenchmarkResult{
		Trace:          snap,
		Metrics:        msnap,
		Why:            wsnap,
		Flight:         fsnap,
		System:         System(res.System),
		Workload:       name,
		Coordinators:   res.Coordinators,
		ThroughputKOPS: res.ThroughputKOPS(),
		Committed:      res.Committed,
		Aborted:        res.Aborted,
		AbortRate:      res.AbortRate(),
		FalseAbortRate: res.FalseAbortRate(),
		AvgLatencyUs:   res.Lat.Avg(),
		P50LatencyUs:   res.Lat.P50(),
		P99LatencyUs:   res.Lat.P99(),
		P999LatencyUs:  res.Lat.P999(),
		ExecUs:         res.Phases.AvgExec(),
		ValidateUs:     res.Phases.AvgValidate(),
		CommitUs:       res.Phases.AvgCommit(),
		Events:         res.Events,
		WallMS:         res.WallMS,
		EventsPerSec:   eventsPerSec(res.Events, res.WallMS),
		ScenarioPhases: res.ScenarioPhases,
		Runtime:        newRuntimeStats(res.Runtime, res.WallMS, res.Events),
	}, nil
}

func eventsPerSec(events uint64, wallMS float64) float64 {
	if wallMS <= 0 {
		return 0
	}
	return float64(events) / (wallMS / 1e3)
}

func withDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

func benchWorkload(cfg BenchmarkConfig, p bench.Profile) (func() workload.Generator, string, error) {
	if cfg.Scenario != nil {
		gen, err := p.ScenarioWorkload(cfg.Scenario)
		if err != nil {
			return nil, "", err
		}
		return gen, "scenario:" + cfg.Scenario.Name, nil
	}
	theta := cfg.Theta
	switch withDefault(cfg.Workload, WorkloadTPCC) {
	case WorkloadTPCC:
		wh := cfg.Warehouses
		if wh == 0 {
			wh = 40
		}
		return p.TPCC(wh), WorkloadTPCC, nil
	case WorkloadSmallBank:
		if theta == 0 {
			theta = smallbank.DefaultConfig().Theta
		}
		return p.SmallBank(theta), WorkloadSmallBank, nil
	case WorkloadYCSB:
		if theta == 0 {
			theta = ycsb.DefaultConfig().Theta
		}
		ratio := cfg.WriteRatio
		if ratio == 0 {
			ratio = 0.5
		}
		n := cfg.RecordsPerTx
		if n == 0 {
			n = 4
		}
		return p.YCSB(theta, ratio, n), WorkloadYCSB, nil
	}
	return nil, "", fmt.Errorf("crest: unknown workload %q", cfg.Workload)
}

// ExperimentTable is one regenerated artifact of the paper (a table or
// a figure's data series).
type ExperimentTable = bench.Table

// ExperimentIDs lists the reproducible artifacts in the paper's order:
// fig2–fig4 (motivation), table1–table2 (analysis), exp1–exp8
// (evaluation).
func ExperimentIDs() []string { return bench.ExperimentIDs() }

// RunExperiment regenerates one paper artifact. quick selects the
// CI-sized profile; otherwise the near-paper-scale profile runs (see
// EXPERIMENTS.md for expected output and timings). The experiment's
// runs execute in parallel; use RunMatrix to share runs across
// several experiments and to collect machine-readable records.
func RunExperiment(id string, quick bool) ([]ExperimentTable, error) {
	exp, ok := bench.Experiments[id]
	if !ok {
		return nil, fmt.Errorf("crest: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return exp.Run(benchProfileFor(quick))
}

func benchProfileFor(quick bool) bench.Profile {
	if quick {
		return bench.Quick()
	}
	return bench.Full()
}

// The experiment-matrix surface: a RunSpec canonically identifies one
// deterministic run, a RunRecord is its schema-versioned outcome, and
// RunMatrix executes the deduplicated spec set of many experiments on
// a worker pool. See internal/bench's matrix runner for semantics.
type (
	// RunSpec canonically identifies one deterministic benchmark run.
	RunSpec = bench.RunSpec
	// RunRecord is one run's durable, machine-readable outcome.
	RunRecord = bench.RunRecord
	// MatrixOptions configure parallelism and the on-disk result cache.
	MatrixOptions = bench.MatrixOptions
	// MatrixResult is a matrix invocation's tables plus per-run records.
	MatrixResult = bench.MatrixResult
	// BenchResultSet is the schema-versioned JSON document of a matrix
	// invocation's unique runs.
	BenchResultSet = bench.ResultSet
	// BenchPerf is an invocation's simulator wall-clock summary (the
	// nondeterministic "perf" object of a measured BenchResultSet).
	BenchPerf = bench.BenchPerf
)

// BenchSchemaVersion identifies the JSON layout of RunRecord /
// BenchResultSet (the BENCH_*.json artifacts).
const BenchSchemaVersion = bench.SchemaVersion

// RunMatrix regenerates the named experiments (all of them when ids is
// empty) over one shared result store: every unique RunSpec executes
// exactly once — in parallel on opt.Workers simulations (GOMAXPROCS
// when ≤ 0), reusing opt.CacheDir across invocations when set — and
// the rendered tables are byte-identical for any worker count.
func RunMatrix(ids []string, quick bool, opt MatrixOptions) (*MatrixResult, error) {
	return bench.RunMatrix(ids, benchProfileFor(quick), opt)
}

// WriteBenchJSON emits a matrix invocation's per-run records as
// schema-versioned JSON (the BENCH_*.json format). The records are
// deterministic; the optional top-level "perf" object carries the
// invocation's wall-clock simulator measurements and is the one
// nondeterministic part — strip it (or compare ResultSet().Encode
// output) when diffing artifacts.
func WriteBenchJSON(w io.Writer, m *MatrixResult) error {
	return m.MeasuredResultSet().Encode(w)
}

// ReadBenchJSON parses a document written by WriteBenchJSON and
// verifies its schema version.
func ReadBenchJSON(r io.Reader) (*BenchResultSet, error) {
	return bench.DecodeResultSet(r)
}

// BenchComparison is a per-run KOPS diff of one result set against a
// baseline (see CompareBenchResultSets).
type BenchComparison = bench.Comparison

// CompareBenchResultSets diffs cur against base by canonical run key;
// render the result with its Format method. CI uses this to print the
// throughput delta of every quick-profile run against the checked-in
// BENCH_quick.json baseline.
func CompareBenchResultSets(base, cur *BenchResultSet) *BenchComparison {
	return bench.CompareResultSets(base, cur)
}

// Workload generator re-exports for custom harnesses.
var (
	// NewTPCC builds the TPC-C-style generator.
	NewTPCC = tpcc.New
	// NewSmallBank builds the SmallBank generator.
	NewSmallBank = smallbank.New
	// NewYCSB builds the transactional YCSB generator.
	NewYCSB = ycsb.New
)
