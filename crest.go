// Package crest is a Go implementation of CREST, the disaggregated
// transaction system from "CREST: High-Performance Contention
// Resolution for Disaggregated Transactions" (ASPLOS 2026), together
// with the FORD and Motor baselines the paper evaluates against.
//
// The memory pool, compute nodes and RDMA fabric run inside a
// deterministic discrete-event simulation (the paper's testbed needs
// ConnectX-5 InfiniBand hardware; DESIGN.md explains the
// substitution), so a Cluster behaves like a five-machine deployment
// while running in a single process with reproducible, virtual-time
// results.
//
// Quick start:
//
//	cluster, _ := crest.NewCluster(crest.Config{})
//	cluster.CreateTable(crest.TableSpec{
//		ID: 1, Name: "accounts", CellSizes: []int{8, 8}, Capacity: 1024,
//	})
//	cluster.Load(1, 42, [][]byte{crest.U64(100, 8), crest.U64(0, 8)})
//	cluster.Finalize()
//
//	txn := crest.NewTxn("deposit")
//	txn.AddBlock(crest.Op{
//		Table: 1, Key: 42, ReadCells: []int{0}, WriteCells: []int{0},
//		Hook: func(_ any, read [][]byte) [][]byte {
//			return [][]byte{crest.PutU64(read[0], crest.GetU64(read[0])+10)}
//		},
//	})
//	res, _ := cluster.Execute(txn)
//
// Package-level workload and experiment runners regenerate every table
// and figure of the paper's evaluation; see RunExperiment and
// cmd/crestbench.
package crest

import (
	"fmt"
	"io"
	"time"

	"crest/internal/bench"
	"crest/internal/causality"
	"crest/internal/core"
	"crest/internal/engine"
	"crest/internal/flight"
	"crest/internal/ford"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/metrics"
	"crest/internal/motor"
	"crest/internal/placement"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
	"crest/internal/workload"
)

// TableID identifies a table.
type TableID = layout.TableID

// Key is a record's primary key.
type Key = layout.Key

// System selects the transaction system a cluster runs.
type System string

// The five system configurations of the paper's evaluation.
const (
	SystemCREST     System = "crest"
	SystemCRESTCell System = "crest-cell" // factor analysis: +cell-level CC only
	SystemCRESTBase System = "crest-base" // factor analysis: record-level, strict
	SystemFORD      System = "ford"
	SystemMotor     System = "motor"
)

// Config describes a cluster. The zero value gives the paper's testbed
// shape running full CREST: two memory nodes, three compute nodes,
// f=1 primary-backup replication, a 2µs-RTT 100Gbps fabric.
type Config struct {
	System System
	// MemoryNodes is the number of memory nodes per shard group (the
	// whole pool with Shards == 1).
	MemoryNodes         int
	ComputeNodes        int
	CoordinatorsPerNode int
	Replicas            int           // f backup copies per record (0 ≤ f < MemoryNodes)
	Seed                int64         // deterministic virtual-time seed
	RTT                 time.Duration // fabric round-trip (default 2µs)
	PoolBytes           int           // per-node region size (default sized from tables)
	// Shards is the number of independent shard groups of MemoryNodes
	// memory nodes each (default 1, the classic single-cluster
	// topology; at 1 with hash placement every run is byte-identical
	// to the pre-sharding cluster). Replication and recovery never
	// cross groups; write transactions spanning groups pay a
	// cross-shard prepare round at commit.
	Shards int
	// Placement names the data-placement policy routing records to
	// shard groups and nodes: "hash" (default, the historical layout),
	// "modulo", "range" or "hotspot". See PlacementPolicies.
	Placement string
	// PlacementHotKeys seeds the "hotspot" policy's override table
	// (ignored by other policies): each entry pins one record to a
	// shard group, typically derived from a causality hotspot ranking
	// via PlacementSeedFromWhy.
	PlacementHotKeys []PlacementHotKey
	// Trace records a deterministic event trace of everything the
	// cluster does (transaction spans, phases, RDMA verbs, lock
	// traffic); read it back with TraceSnapshot. Tracing consumes no
	// virtual time and no randomness, so a traced cluster runs the
	// exact same schedule as an untraced one.
	Trace bool
	// TraceCapacity bounds the trace ring buffer (0 = default).
	TraceCapacity int
	// Metrics enables the windowed metrics plane (counters, gauges and
	// histograms across the simulator, fabric and engine); read it back
	// with MetricsSnapshot. Like tracing, metrics consume no virtual
	// time and no randomness, so a metered cluster runs the exact same
	// schedule as an unmetered one.
	Metrics bool
	// MetricsWindow is the time-series sampling period in virtual time
	// (default 100µs of virtual time; ignored unless Metrics is set).
	MetricsWindow time.Duration
	// Why enables abort forensics: the cluster records wait-for and
	// conflict edges (who blocked on whom, who invalidated whose read)
	// and can explain any abort after the fact; read it back with
	// WhySnapshot. Like tracing and metrics, recording consumes no
	// virtual time and no randomness, so a recording cluster runs the
	// exact same schedule as a plain one.
	Why bool
	// WhyCapacity bounds the causality edge ring buffer (0 = default).
	WhyCapacity int
	// Flight enables the per-transaction flight recorder: every
	// transaction's virtual-time latency is decomposed into an additive
	// budget (queueing, per-verb wire time, lock waiting, backoff, and
	// per-phase compute) and the slowest outliers keep their full
	// per-attempt timeline; read it back with FlightSnapshot. Like the
	// other observers, recording consumes no virtual time and no
	// randomness, so a recording cluster runs the exact same schedule
	// as a plain one.
	Flight bool
	// FlightCapacity bounds the flight summary ring buffer (0 = default).
	FlightCapacity int
}

func (c Config) withDefaults() Config {
	if c.System == "" {
		c.System = SystemCREST
	}
	if c.MemoryNodes == 0 {
		c.MemoryNodes = 2
	}
	if c.ComputeNodes == 0 {
		c.ComputeNodes = 3
	}
	if c.CoordinatorsPerNode == 0 {
		c.CoordinatorsPerNode = 4
	}
	if c.Replicas == 0 && c.MemoryNodes > 1 {
		c.Replicas = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Placement == "" {
		c.Placement = "hash"
	}
	return c
}

// validate rejects impossible topologies with descriptive errors —
// every misconfiguration that would otherwise surface as a panic deep
// inside the memory pool is caught here instead.
func (c Config) validate() error {
	if c.MemoryNodes < 1 {
		return fmt.Errorf("crest: need at least one memory node per shard group, got %d", c.MemoryNodes)
	}
	if c.Shards < 1 {
		return fmt.Errorf("crest: need at least one shard group, got %d", c.Shards)
	}
	if c.Shards > memnode.MaxShards {
		return fmt.Errorf("crest: %d shard groups exceed the maximum of %d", c.Shards, memnode.MaxShards)
	}
	if c.Replicas < 0 || c.Replicas >= c.MemoryNodes {
		return fmt.Errorf("crest: %d replicas needs more than %d memory nodes", c.Replicas, c.MemoryNodes)
	}
	if _, err := placement.New(c.Placement); err != nil {
		return err
	}
	return nil
}

// TableSpec declares a table: one size per cell (column), and the
// maximum number of records.
type TableSpec struct {
	ID        TableID
	Name      string
	CellSizes []int
	Capacity  int
}

// Cluster is a simulated disaggregated deployment: a memory pool, the
// chosen transaction system, and compute nodes with coordinators.
type Cluster struct {
	cfg       Config
	env       *sim.Env
	fabric    *rdma.Fabric
	pool      *memnode.Pool
	db        *engine.DB
	sys       bench.System
	crestSys  *core.System // non-nil when System is a CREST variant
	specs     []TableSpec
	finalized bool
	coords    []engine.Coordinator
	next      int
	trace     *trace.Recorder     // nil unless Config.Trace
	metrics   *metrics.Registry   // nil unless Config.Metrics
	why       *causality.Recorder // nil unless Config.Why
	flight    *flight.Recorder    // nil unless Config.Flight
}

// NewCluster builds a cluster. Tables must be created and loaded
// before Finalize; transactions run after.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, env: sim.NewEnv(cfg.Seed)}
	params := rdma.DefaultParams()
	if cfg.RTT > 0 {
		params.RTT = sim.Duration(cfg.RTT)
	}
	c.fabric = rdma.NewFabric(c.env, params)
	if cfg.Trace {
		c.trace = trace.NewRecorder(cfg.TraceCapacity)
		c.env.SetObserver(c.trace)
		c.fabric.SetRecorder(c.trace)
	}
	if cfg.Metrics {
		window := metrics.DefaultWindow
		if cfg.MetricsWindow > 0 {
			window = sim.Duration(cfg.MetricsWindow)
		}
		c.metrics = metrics.NewRegistry(metrics.Options{Window: window})
		c.metrics.BindEnv(c.env)
		c.fabric.SetMetrics(c.metrics)
	}
	if cfg.Why {
		c.why = causality.NewRecorder(causality.Options{Capacity: cfg.WhyCapacity})
	}
	if cfg.Flight {
		c.flight = flight.NewRecorder(flight.Options{TxnCapacity: cfg.FlightCapacity})
		c.fabric.SetFlight(c.flight)
	}
	return c, nil
}

// CreateTable declares a table. All tables must be created before the
// first Load.
func (c *Cluster) CreateTable(spec TableSpec) error {
	if c.pool != nil {
		return fmt.Errorf("crest: CreateTable after loading began")
	}
	s := layout.Schema{ID: spec.ID, Name: spec.Name, CellSizes: spec.CellSizes}
	if err := s.Normalize().Validate(); err != nil {
		return err
	}
	if spec.Capacity <= 0 {
		return fmt.Errorf("crest: table %q needs a positive capacity", spec.Name)
	}
	c.specs = append(c.specs, spec)
	return nil
}

// ensureSystem materializes the pool and system once tables are known.
func (c *Cluster) ensureSystem() error {
	if c.pool != nil {
		return nil
	}
	if len(c.specs) == 0 {
		return fmt.Errorf("crest: no tables created")
	}
	defs := make([]workload.TableDef, 0, len(c.specs))
	for _, spec := range c.specs {
		defs = append(defs, workload.TableDef{
			Schema:   layout.Schema{ID: spec.ID, Name: spec.Name, CellSizes: spec.CellSizes},
			Capacity: spec.Capacity,
		})
	}
	size := c.cfg.PoolBytes
	need := bench.PoolBytes(defs, c.cfg.ComputeNodes*c.cfg.CoordinatorsPerNode)
	if size == 0 {
		size = need
	} else if size < need {
		return fmt.Errorf("crest: pool of %d bytes per node cannot hold the declared tables and logs (need at least %d)", size, need)
	}
	pol, err := placement.New(c.cfg.Placement)
	if err != nil {
		return err
	}
	if hs, ok := pol.(*placement.Hotspot); ok && len(c.cfg.PlacementHotKeys) > 0 {
		hs.Seed(c.cfg.PlacementHotKeys)
	}
	pool, err := memnode.NewShardedPool(c.fabric, c.cfg.Shards, c.cfg.MemoryNodes, size, c.cfg.Replicas, pol)
	if err != nil {
		return err
	}
	c.pool = pool
	c.db = engine.NewDB(c.pool)
	c.db.Trace = c.trace
	c.db.Why = c.why
	c.db.Flight = c.flight
	if c.metrics != nil {
		c.db.SetMetrics(c.metrics)
	}
	sys, err := bench.NewSystem(bench.SystemKind(c.cfg.System), c.db)
	if err != nil {
		return err
	}
	c.sys = sys
	if cs, ok := bench.CRESTSystem(sys); ok {
		c.crestSys = cs
	}
	for _, def := range defs {
		c.sys.CreateTable(def.Schema, def.Capacity)
	}
	return nil
}

// Load writes a record's initial cell values (the pre-measurement bulk
// load). Must precede Finalize.
func (c *Cluster) Load(table TableID, key Key, cells [][]byte) error {
	if c.finalized {
		return fmt.Errorf("crest: Load after Finalize")
	}
	if err := c.ensureSystem(); err != nil {
		return err
	}
	c.sys.Load(table, key, cells)
	return nil
}

// Finalize publishes the indexes and starts the compute nodes. No
// loads are accepted afterwards.
func (c *Cluster) Finalize() error {
	if c.finalized {
		return fmt.Errorf("crest: already finalized")
	}
	if err := c.ensureSystem(); err != nil {
		return err
	}
	if err := c.sys.FinishLoad(); err != nil {
		return err
	}
	for cn := 0; cn < c.cfg.ComputeNodes; cn++ {
		node := c.sys.NewComputeNode(cn)
		node.WarmCache()
		for i := 0; i < c.cfg.CoordinatorsPerNode; i++ {
			c.coords = append(c.coords, node.NewCoordinator(cn*c.cfg.CoordinatorsPerNode+i))
		}
	}
	c.finalized = true
	return nil
}

// Result reports one transaction's outcome. Committed is false when
// the transaction kept aborting for maxAttempts tries — for example
// when it touches a logically deleted row.
type Result struct {
	Committed bool
	Attempts  int
	// Latency is the virtual time from first attempt to commit.
	Latency time.Duration
}

// maxAttempts bounds the public Execute retry loop.
const maxAttempts = 256

// Execute runs one transaction to commit on the next coordinator
// (round-robin), retrying aborted attempts with backoff. It drives the
// simulation until the transaction completes.
func (c *Cluster) Execute(txn *Txn) (Result, error) {
	results, err := c.ExecuteAll(txn)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// ExecuteAll runs the given transactions concurrently, one per
// coordinator (round-robin), and waits for all of them.
func (c *Cluster) ExecuteAll(txns ...*Txn) ([]Result, error) {
	if !c.finalized {
		return nil, fmt.Errorf("crest: Finalize before executing transactions")
	}
	results := make([]Result, len(txns))
	retry := engine.DefaultRetryPolicy()
	for i, txn := range txns {
		i, txn := i, txn
		coord := c.coords[c.next]
		c.next = (c.next + 1) % len(c.coords)
		c.env.Spawn(fmt.Sprintf("txn-%s-%d", txn.label, i), func(p *sim.Proc) {
			start := p.Now()
			for attempt := 1; attempt <= maxAttempts; attempt++ {
				a := coord.Execute(p, txn.build())
				results[i].Attempts = attempt
				if a.Committed {
					results[i].Committed = true
					results[i].Latency = time.Duration(p.Now().Sub(start))
					return
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
		})
	}
	if err := c.env.Run(); err != nil {
		return nil, err
	}
	return results, nil
}

// ReadRow reads the given cells of one record in a read-only
// transaction and returns their values.
func (c *Cluster) ReadRow(table TableID, key Key, cells ...int) ([][]byte, error) {
	var out [][]byte
	txn := NewTxn("read-row")
	txn.AddBlock(Op{
		Table: table, Key: key, ReadCells: cells,
		Hook: func(_ any, read [][]byte) [][]byte {
			out = append([][]byte(nil), read...)
			return nil
		},
	})
	res, err := c.Execute(txn)
	if err != nil {
		return nil, err
	}
	if !res.Committed {
		return nil, fmt.Errorf("crest: read-row did not commit")
	}
	return out, nil
}

// InsertRow inserts a whole new row at runtime (§4.4 of the paper:
// all cell locks are claimed with one masked-CAS while the row is
// written and published in the index). CREST-variant clusters only.
func (c *Cluster) InsertRow(table TableID, key Key, cells [][]byte) error {
	return c.rowOp("insert-row", func(p *sim.Proc, coord *core.Coordinator) error {
		return coord.InsertRow(p, table, key, cells)
	})
}

// DeleteRow logically deletes a row: the spare delete bit in the lock
// word goes up and the index entry is tombstoned; later readers abort
// instead of observing the ghost. CREST-variant clusters only.
func (c *Cluster) DeleteRow(table TableID, key Key) error {
	return c.rowOp("delete-row", func(p *sim.Proc, coord *core.Coordinator) error {
		return coord.DeleteRow(p, table, key)
	})
}

func (c *Cluster) rowOp(name string, fn func(*sim.Proc, *core.Coordinator) error) error {
	if !c.finalized {
		return fmt.Errorf("crest: Finalize before row operations")
	}
	coord, ok := c.coords[c.next].(*core.Coordinator)
	if !ok {
		return fmt.Errorf("crest: row operations require a CREST-variant cluster, not %q", c.cfg.System)
	}
	c.next = (c.next + 1) % len(c.coords)
	var opErr error
	c.env.Spawn(name, func(p *sim.Proc) { opErr = fn(p, coord) })
	if err := c.env.Run(); err != nil {
		return err
	}
	return opErr
}

// RecoveryReport mirrors the core recovery summary.
type RecoveryReport = core.RecoveryReport

// Recover runs crash recovery (§6 of the paper: dependency-tracking
// redo logs are scanned, the committed closure is rolled forward, and
// stale locks are cleared). Only CREST-variant clusters support it.
func (c *Cluster) Recover() (RecoveryReport, error) {
	if c.crestSys == nil {
		return RecoveryReport{}, fmt.Errorf("crest: recovery requires a CREST-variant cluster, not %q", c.cfg.System)
	}
	return c.crestSys.Recover()
}

// ResyncMemoryNode rebuilds a restored memory node's records and
// indexes from the surviving replicas (run after RestoreMemoryNode
// and Recover). CREST-variant clusters only.
func (c *Cluster) ResyncMemoryNode(id int) (records int, err error) {
	if c.crestSys == nil {
		return 0, fmt.Errorf("crest: resync requires a CREST-variant cluster, not %q", c.cfg.System)
	}
	return c.crestSys.Resync(id)
}

// FailMemoryNode marks a memory node crashed: verbs against it fail
// until RestoreMemoryNode. For fault-tolerance demonstrations.
func (c *Cluster) FailMemoryNode(id int) error {
	if c.pool == nil || id < 0 || id >= c.pool.NumNodes() {
		return fmt.Errorf("crest: no memory node %d", id)
	}
	c.pool.Nodes()[id].Region.Fail()
	return nil
}

// RestoreMemoryNode clears a crash mark.
func (c *Cluster) RestoreMemoryNode(id int) error {
	if c.pool == nil || id < 0 || id >= c.pool.NumNodes() {
		return fmt.Errorf("crest: no memory node %d", id)
	}
	c.pool.Nodes()[id].Region.Recover()
	return nil
}

// TraceSnapshot is an immutable copy of a cluster's recorded event
// stream and hot-key contention profile.
type TraceSnapshot = trace.Snapshot

// TraceSnapshot copies the trace recorded so far (empty unless the
// cluster was built with Config.Trace). Render it with
// WriteChromeTrace, WriteSpanSummary or WriteHotKeys.
func (c *Cluster) TraceSnapshot() *TraceSnapshot { return c.trace.Snapshot() }

// WriteChromeTrace renders a trace snapshot as Chrome trace_event JSON
// (opens directly in Perfetto or chrome://tracing).
func WriteChromeTrace(w io.Writer, s *TraceSnapshot) error { return trace.WriteChromeTrace(w, s) }

// WriteSpanSummary renders per-transaction span timelines with exact
// virtual-time phase durations and round-trip attribution.
func WriteSpanSummary(w io.Writer, s *TraceSnapshot) error { return trace.WriteSpanSummary(w, s) }

// WriteHotKeys renders the top-k hot-key contention profile.
func WriteHotKeys(w io.Writer, s *TraceSnapshot, k int) error { return trace.WriteHotKeys(w, s, k) }

// MetricsSnapshot is an immutable copy of a cluster's instruments and
// windowed time-series.
type MetricsSnapshot = metrics.Snapshot

// MetricsSnapshot copies the metrics recorded so far (empty unless the
// cluster was built with Config.Metrics). Render it with
// WriteMetricsPrometheus, WriteMetricsCSV, WriteMetricsJSON or
// WriteMetricsSparklines.
func (c *Cluster) MetricsSnapshot() *MetricsSnapshot { return c.metrics.Snapshot() }

// WriteMetricsPrometheus renders end-of-run instrument values in the
// Prometheus text exposition format (a valid scrape file).
func WriteMetricsPrometheus(w io.Writer, s *MetricsSnapshot) error {
	return metrics.WritePrometheus(w, s)
}

// WriteMetricsCSV renders the windowed time-series as CSV, one row per
// virtual-time window.
func WriteMetricsCSV(w io.Writer, s *MetricsSnapshot) error { return metrics.WriteCSV(w, s) }

// WriteMetricsJSON renders the snapshot as a schema-versioned JSON
// document; ReadMetricsJSON parses it back.
func WriteMetricsJSON(w io.Writer, s *MetricsSnapshot) error { return metrics.WriteJSON(w, s) }

// ReadMetricsJSON parses a document written by WriteMetricsJSON.
func ReadMetricsJSON(r io.Reader) (*MetricsSnapshot, error) { return metrics.ReadJSON(r) }

// WriteMetricsSparklines renders a terminal-friendly per-series
// sparkline summary of the windowed time-series.
func WriteMetricsSparklines(w io.Writer, s *MetricsSnapshot) error {
	return metrics.WriteSparklines(w, s)
}

// WhySnapshot is an immutable copy of a cluster's recorded wait-for
// and conflict edges, with transaction nodes and per-abort causes.
type WhySnapshot = causality.Snapshot

// WhySnapshot copies the causality record so far (empty unless the
// cluster was built with Config.Why). Explain a single abort with
// WriteWhyBlame, or export the aggregate contention graph with
// WriteWhyDOT / WriteWhyJSON.
func (c *Cluster) WhySnapshot() *WhySnapshot { return c.why.Snapshot() }

// WriteWhyBlame renders the blame chain for one transaction: the
// abort cause, the transaction it lost to, and who that transaction
// in turn waited on, with per-hop virtual wait durations.
func WriteWhyBlame(w io.Writer, s *WhySnapshot, txn uint64) error {
	return causality.WriteBlame(w, s, txn)
}

// WriteWhyDOT renders the aggregated contention dependency graph as
// Graphviz DOT, with hotspot and wait-cycle annotations.
func WriteWhyDOT(w io.Writer, s *WhySnapshot) error { return causality.WriteDOT(w, s) }

// WriteWhyJSON renders the snapshot as a schema-versioned JSON
// document ("crest-why/v1"); ReadWhyJSON parses it back.
func WriteWhyJSON(w io.Writer, s *WhySnapshot) error { return causality.WriteJSON(w, s) }

// ReadWhyJSON parses a document written by WriteWhyJSON.
func ReadWhyJSON(r io.Reader) (*WhySnapshot, error) { return causality.ReadJSON(r) }

// FlightSnapshot is an immutable copy of a cluster's per-transaction
// latency budgets and captured tail-outlier exemplars.
type FlightSnapshot = flight.Snapshot

// FlightSnapshot copies the flight record so far (empty unless the
// cluster was built with Config.Flight). Render the aggregate tail
// decomposition with WriteFlightTail, one transaction's critical path
// with WriteFlightCritPath, or export it with WriteFlightJSON.
func (c *Cluster) FlightSnapshot() *FlightSnapshot { return c.flight.Snapshot() }

// WriteFlightTail renders the aggregate latency budget report: p50,
// p99 and p99.9 cohort decompositions per component, the tail-vs-
// median delta attribution, and the slowest exemplars' critical paths.
func WriteFlightTail(w io.Writer, s *FlightSnapshot, topN int) error {
	return flight.WriteTail(w, s, topN)
}

// WriteFlightCritPath renders one transaction's full flight record:
// its budget decomposition, per-attempt timeline, and critical path.
func WriteFlightCritPath(w io.Writer, s *FlightSnapshot, txn uint64) error {
	return flight.WriteCritPath(w, s, txn)
}

// WriteFlightJSON renders the snapshot as a schema-versioned JSON
// document ("crest-flight/v1"); ReadFlightJSON parses it back.
func WriteFlightJSON(w io.Writer, s *FlightSnapshot) error { return flight.WriteJSON(w, s) }

// ReadFlightJSON parses a document written by WriteFlightJSON.
func ReadFlightJSON(r io.Reader) (*FlightSnapshot, error) { return flight.ReadJSON(r) }

// MaxShards bounds Config.Shards (shard-group membership travels as a
// 64-bit set through the commit path).
const MaxShards = memnode.MaxShards

// PlacementHotKey pins one record to a shard group; a slice of them
// seeds the "hotspot" placement policy (Config.PlacementHotKeys).
type PlacementHotKey = placement.HotKey

// PlacementPolicies lists the registered placement policy names, in
// sorted order, for Config.Placement.
func PlacementPolicies() []string { return placement.Names() }

// PlacementSeedFromWhy converts a causality snapshot's hotspot ranking
// (a live WhySnapshot or a prior run's -why JSON export read back with
// ReadWhyJSON) into a seed for the "hotspot" placement policy: the
// limit most-contended keys are pinned to shard group 0, colocating
// the hot set so transactions over it stay single-shard. A limit ≤ 0
// keeps every ranked hotspot.
func PlacementSeedFromWhy(s *WhySnapshot, limit int) []PlacementHotKey {
	hs := s.Graph().Hotspots
	if limit <= 0 || limit > len(hs) {
		limit = len(hs)
	}
	keys := make([]PlacementHotKey, 0, limit)
	for _, h := range hs[:limit] {
		keys = append(keys, PlacementHotKey{Table: h.Table, Key: h.Key, Shard: 0})
	}
	return keys
}

// Coordinators reports the number of coordinators available.
func (c *Cluster) Coordinators() int { return len(c.coords) }

// Now returns the cluster's current virtual time.
func (c *Cluster) Now() time.Duration { return time.Duration(c.env.Now()) }

// Cell value helpers re-exported for building workloads.

// U64 encodes v into the first 8 bytes of an n-byte cell.
func U64(v uint64, n int) []byte { return workload.U64(v, n) }

// GetU64 decodes a cell's leading integer.
func GetU64(b []byte) uint64 { return workload.GetU64(b) }

// PutU64 returns a copy of the cell with its leading integer replaced.
func PutU64(b []byte, v uint64) []byte { return workload.PutU64(b, v) }

// Compile-time checks that the internal engines stay interchangeable.
var (
	_ = ford.New
	_ = motor.New
)
