package crest

import (
	"crest/internal/engine"
)

// Op is one record access inside a transaction: which cells it reads,
// which it writes, and the stored-procedure logic deriving the written
// values from the read ones. Each record a transaction touches appears
// in exactly one Op.
type Op struct {
	Table TableID
	Key   Key
	// KeyFn, when set, resolves the key from the transaction state
	// when the op's block starts — a key dependency: the record's key
	// derives from values read in earlier blocks.
	KeyFn func(state any) Key

	ReadCells  []int
	WriteCells []int

	// Hook receives the ReadCells values (private copies, in order)
	// and returns new values for the WriteCells (in order). It must be
	// deterministic given the state and read values, as it may run
	// several times across retries.
	Hook func(state any, read [][]byte) [][]byte
}

// Txn is a transaction under construction: an ordered list of blocks
// (pipeline stages, §5.2 of the paper) plus optional state threaded
// through every hook.
type Txn struct {
	label  string
	state  any
	blocks []engine.Block
}

// NewTxn starts a transaction with a label used in diagnostics.
func NewTxn(label string) *Txn { return &Txn{label: label} }

// WithState attaches the state value passed to every hook and KeyFn.
func (t *Txn) WithState(state any) *Txn {
	t.state = state
	return t
}

// AddBlock appends one pipeline block. Ops whose keys depend on values
// read in earlier blocks belong in a later block.
func (t *Txn) AddBlock(ops ...Op) *Txn {
	blk := engine.Block{}
	for _, op := range ops {
		op := op
		eop := engine.Op{
			Table:      op.Table,
			Key:        op.Key,
			ReadCells:  op.ReadCells,
			WriteCells: op.WriteCells,
			Hook:       op.Hook,
		}
		if op.KeyFn != nil {
			eop.KeyFn = op.KeyFn
		}
		if eop.Hook == nil {
			eop.Hook = func(any, [][]byte) [][]byte {
				if len(op.WriteCells) == 0 {
					return nil
				}
				panic("crest: op with WriteCells needs a Hook")
			}
		}
		blk.Ops = append(blk.Ops, eop)
	}
	t.blocks = append(t.blocks, blk)
	return t
}

// build materializes a fresh engine transaction. Called per execution
// so retries see clean state.
func (t *Txn) build() *engine.Txn {
	e := &engine.Txn{Label: t.label, State: t.state, Blocks: t.blocks}
	e.ComputeReadOnly()
	return e
}
