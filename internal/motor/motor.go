// Package motor implements the Motor baseline (Zhang, Hua, Yang,
// "Motor: Enabling Multi-Versioning for Distributed Transactions on
// Disaggregated Memory", OSDI 2024) as the CREST paper evaluates it:
// record-level optimistic concurrency control with a consecutive
// version table per record.
//
// Motor's defining traits, reproduced here:
//
//   - every record carries MotorSlots full versions plus one metadata
//     word per version, stored consecutively so no chain traversal is
//     needed;
//   - reads fetch the whole consecutive version table (header, slot
//     metadata and all version payloads) in one READ and pick the
//     visible version locally — larger payloads than the single-version
//     baselines, which is Motor's space/bandwidth trade;
//   - fully read-only transactions take a start snapshot and commit
//     without any validation round-trip: a writer holds the record
//     lock from before its commit timestamp is issued until its
//     version is installed, so a reader that retries while the lock is
//     held always observes every version older than its snapshot;
//   - read-write transactions validate their read set (version hint +
//     lock) like FORD, then install into the oldest version slot.
package motor

import (
	"encoding/binary"
	"fmt"
	"sort"

	"crest/internal/engine"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

const (
	logSegmentSize = 64 << 10
	// lockedReadRetries bounds how long a snapshot reader spins on a
	// locked record before aborting the attempt. The spin only needs
	// to cover a committing writer's install window (a couple of
	// round-trips); spinning across a whole lock tenure captures
	// coordinators under contention.
	lockedReadRetries = 3
)

// System is a Motor instance over a shared DB.
type System struct {
	db      *engine.DB
	layouts map[layout.TableID]*layout.MotorRecord
}

// New creates a Motor system on db.
func New(db *engine.DB) *System {
	return &System{db: db, layouts: map[layout.TableID]*layout.MotorRecord{}}
}

// Name labels the engine.
func (s *System) Name() string { return "Motor" }

// DB exposes the underlying database substrate.
func (s *System) DB() *engine.DB { return s.db }

// CreateTable registers a table with Motor's multi-version layout.
func (s *System) CreateTable(sc layout.Schema, capacity int) {
	sc = sc.Normalize()
	lay := layout.NewMotorRecord(sc)
	s.layouts[sc.ID] = lay
	s.db.CreateTable(sc, lay.PaddedSize(), capacity)
}

// Load writes a record's initial cell values into version slot 0.
func (s *System) Load(table layout.TableID, key layout.Key, cells [][]byte) {
	lay := s.layouts[table]
	t := s.db.Table(table)
	s.db.LoadRecord(t, key, func(buf []byte) {
		binary.LittleEndian.PutUint64(buf[layout.BOffKey:], uint64(key))
		binary.LittleEndian.PutUint32(buf[layout.BOffTableID:], uint32(table))
		layout.PutWord(buf, lay.SlotMetaOff(0), layout.PackSlotMeta(true, 0))
		for i, v := range cells {
			if len(v) != lay.Schema.CellSizes[i] {
				panic(fmt.Sprintf("motor: cell %d size %d, schema wants %d", i, len(v), lay.Schema.CellSizes[i]))
			}
			copy(buf[lay.SlotCellOff(0, i):], v)
		}
	})
	if h := s.db.History; h != nil && h.On {
		for i, v := range cells {
			h.SetInitial(engine.CellID{Table: table, Key: key, Cell: i}, v)
		}
	}
}

// FinishLoad publishes the hash indexes.
func (s *System) FinishLoad() error { return s.db.FinishLoad() }

// ComputeNode groups coordinators sharing an address cache.
type ComputeNode struct {
	sys   *System
	id    int
	cache *hashindex.AddrCache
}

// NewComputeNode creates compute node state.
func (s *System) NewComputeNode(id int) *ComputeNode {
	return &ComputeNode{sys: s, id: id, cache: hashindex.NewAddrCache()}
}

// WarmCache preloads the address cache with every record.
func (cn *ComputeNode) WarmCache() { cn.sys.db.WarmCache(cn.cache) }

// Coordinator executes Motor transactions.
type Coordinator struct {
	cn   *ComputeNode
	gid  uint64
	qps  *engine.QPCache
	log  *memnode.LogSegment
	logN []*memnode.Node
}

// NewCoordinator creates coordinator id (globally unique).
func (cn *ComputeNode) NewCoordinator(id int) *Coordinator {
	db := cn.sys.db
	pool := db.Pool
	c := &Coordinator{
		cn:  cn,
		gid: uint64(id) + 1,
		qps: engine.NewQPCache(db.Fabric),
		log: pool.AllocLog(logSegmentSize),
	}
	nodes := pool.Nodes()
	for i := 0; i <= pool.Replicas(); i++ {
		c.logN = append(c.logN, nodes[(id+i)%len(nodes)])
	}
	return c
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

// work is per-record attempt state.
type work struct {
	op        *engine.Op
	key       layout.Key
	off       uint64
	lay       *layout.MotorRecord
	primary   *memnode.Node
	slot      int    // version slot read
	victim    int    // slot to install into
	readVer   uint64 // newest ts observed at fetch
	data      []byte // working copy of one version's cell data
	locked    bool
	cells     uint64
	readVals  [][]byte
	writeVals [][]byte
}

func (w *work) table() layout.TableID { return w.lay.Schema.ID }

// Execute runs one attempt of t.
func (c *Coordinator) Execute(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.sys.db
	at := engine.BeginAttempt(db, p, c.gid, t)

	var snapshot uint64
	if t.ReadOnly {
		snapshot = db.TSO.Last() // start timestamp for MVCC reads
	}

	var ws []*work
	byRec := map[recKey]*work{}
	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		newWork := c.prepareBlock(p, t, blk, byRec)
		ws = append(ws, newWork...)
		at.Phase(trace.PhaseLock)
		abort, falseC := c.fetchBlock(p, newWork, t.ReadOnly, snapshot)
		at.Phase(trace.PhaseExec)
		if abort != engine.AbortNone {
			// Release before Fail: Motor has always charged abort-time
			// lock release to the phase that failed.
			c.releaseLocks(p, ws)
			at.Fail(abort, falseC)
			return at.Done()
		}
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			w := byRec[recKey{op.Table, op.ResolveKey(t.State)}]
			c.applyOp(p, t, op, w)
		}
	}

	if t.ReadOnly {
		// Snapshot reads commit without validation (§ package doc).
		c.record(t, ws, db.TSO.Next(), true, snapshot)
		return at.Done()
	}

	at.Phase(trace.PhaseValidate)
	if abort, falseC := c.validate(p, ws); abort != engine.AbortNone {
		c.releaseLocks(p, ws)
		at.Fail(abort, falseC)
		return at.Done()
	}

	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	c.writeLog(p, ws, ts)
	at.Phase(trace.PhaseApply)
	c.install(p, ws, ts)
	c.record(t, ws, ts, false, 0)
	return at.Done()
}

// prepareBlock resolves keys into work entries, ordered by (table,
// key).
func (c *Coordinator) prepareBlock(p *sim.Proc, t *engine.Txn, blk *engine.Block, byRec map[recKey]*work) []*work {
	db := c.cn.sys.db
	var out []*work
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		if prev, ok := byRec[rk]; ok {
			if op.IsWrite() && !prev.locked {
				panic(fmt.Sprintf("motor: record %v written after read-only fetch", rk))
			}
			prev.cells |= opCellMask(op)
			continue
		}
		lay := c.cn.sys.layouts[op.Table]
		primary := db.Pool.PrimaryOf(op.Table, key)
		off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), op.Table, key)
		if err != nil {
			panic(err)
		}
		w := &work{op: op, key: key, off: off, lay: lay, primary: primary, cells: opCellMask(op)}
		byRec[rk] = w
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].table() != out[j].table() {
			return out[i].table() < out[j].table()
		}
		return out[i].key < out[j].key
	})
	return out
}

func opCellMask(op *engine.Op) uint64 {
	return layout.LockMask(op.ReadCells) | layout.LockMask(op.WriteCells)
}

// fetchBlock reads the block's records, batched per memory node into
// one round-trip: the consecutive version table lets one READ return
// the header, every version's metadata and every version's data, so
// the coordinator picks the visible version locally — no chain
// traversal, which is exactly Motor's layout argument. Writes prepend
// the lock CAS to the same batch. Snapshot reads that land on a locked
// record (a committing writer's install may be in flight) retry
// briefly.
func (c *Coordinator) fetchBlock(p *sim.Proc, ws []*work, snapshotRead bool, snapshot uint64) (engine.AbortReason, bool) {
	if len(ws) == 0 {
		return engine.AbortNone, false
	}
	db := c.cn.sys.db
	todo := append([]*work(nil), ws...)
	for retry := 0; ; retry++ {
		var batches []rdma.Batch
		perNode := map[int]int{}
		type slotIdx struct {
			w      *work
			casIdx int
			rdIdx  int
		}
		var slots []*slotIdx
		for _, w := range todo {
			bi, ok := perNode[w.primary.Region.ID()]
			if !ok {
				bi = len(batches)
				perNode[w.primary.Region.ID()] = bi
				batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
			}
			s := &slotIdx{w: w, casIdx: -1}
			if w.op.IsWrite() && !w.locked {
				s.casIdx = len(batches[bi].Ops)
				batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
					Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: 0, Swap: c.gid,
				})
			}
			s.rdIdx = len(batches[bi].Ops)
			batches[bi].Ops = append(batches[bi].Ops, rdma.Op{Kind: rdma.OpRead, Off: w.off, Len: w.lay.Size()})
			slots = append(slots, s)
		}
		results, err := rdma.PostMulti(p, batches)
		if err != nil {
			panic(err)
		}
		var again []*work
		lockFailed := false
		var conflictMask, myMask uint64
		for _, s := range slots {
			w := s.w
			bi := perNode[w.primary.Region.ID()]
			if s.casIdx >= 0 {
				if results[bi][s.casIdx].OK {
					w.locked = true
					db.Tracker.OnLock(w.table(), w.key, w.cells)
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
				} else {
					lockFailed = true
					conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
					myMask |= w.cells
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
					continue
				}
			}
			rec := results[bi][s.rdIdx].Data
			lockWord := binary.LittleEndian.Uint64(rec[layout.BOffLock:])
			if snapshotRead && lockWord != 0 {
				again = append(again, w)
				conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
				myMask |= w.cells
				db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
				continue
			}
			slot, victim, newest, found := chooseSlots(rec, w.lay, snapshotRead, snapshot)
			if !found {
				// Every version is newer than our snapshot: the
				// history we need has been overwritten.
				return engine.AbortValidation, false
			}
			w.slot, w.victim, w.readVer = slot, victim, newest
			dataLen := w.lay.Schema.DataBytes()
			w.data = append([]byte(nil), rec[w.lay.SlotDataOff(slot):w.lay.SlotDataOff(slot)+dataLen]...)
		}
		if lockFailed {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		if len(again) == 0 {
			return engine.AbortNone, false
		}
		if retry >= lockedReadRetries {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		todo = again
		p.Sleep(2 * sim.Microsecond)
	}
}

// chooseSlots picks the version to read (newest visible) and the slot
// to overwrite on install (oldest or invalid).
func chooseSlots(meta []byte, lay *layout.MotorRecord, snapshotRead bool, snapshot uint64) (slot, victim int, newest uint64, found bool) {
	slot, victim = -1, -1
	var bestTS, victimTS uint64
	victimTS = ^uint64(0)
	for i := 0; i < layout.MotorSlots; i++ {
		valid, ts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(meta[lay.SlotMetaOff(i):]))
		if !valid {
			victim, victimTS = i, 0
			continue
		}
		if ts > newest {
			newest = ts
		}
		if snapshotRead && ts > snapshot {
			continue
		}
		if slot == -1 || ts >= bestTS {
			slot, bestTS = i, ts
		}
		if ts < victimTS {
			victim, victimTS = i, ts
		}
	}
	return slot, victim, newest, slot != -1
}

// applyOp runs the op's hook against the working copy of the version
// data.
func (c *Coordinator) applyOp(p *sim.Proc, t *engine.Txn, op *engine.Op, w *work) {
	db := c.cn.sys.db
	read := make([][]byte, len(op.ReadCells))
	for i, cell := range op.ReadCells {
		read[i] = append([]byte(nil), w.data[w.cellOff(cell):][:w.lay.Schema.CellSizes[cell]]...)
	}
	p.Sleep(db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells)))
	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("motor: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	for i, cell := range op.WriteCells {
		if len(written[i]) != w.lay.Schema.CellSizes[cell] {
			panic("motor: hook wrote wrong cell size")
		}
		copy(w.data[w.cellOff(cell):], written[i])
	}
	w.readVals = read
	w.writeVals = written
}

// cellOff is the offset of a cell within the version-data working
// copy.
func (w *work) cellOff(cell int) int {
	off := 0
	for j := 0; j < cell; j++ {
		off += w.lay.Schema.CellSizes[j]
	}
	return off
}

// validate re-reads lock+version hint of read-only records, batched
// per node.
func (c *Coordinator) validate(p *sim.Proc, ws []*work) (engine.AbortReason, bool) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	var batchWork [][]*work
	perNode := map[int]int{}
	metaLen := layout.MotorSlots * layout.MotorSlotMetaSize
	for _, w := range ws {
		if w.locked {
			continue
		}
		bi, ok := perNode[w.primary.Region.ID()]
		if !ok {
			bi = len(batches)
			perNode[w.primary.Region.ID()] = bi
			batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
			batchWork = append(batchWork, nil)
		}
		batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off + layout.BOffLock,
			Len:  8 + 8 + metaLen, // lock + version hint + slot metas
		})
		batchWork[bi] = append(batchWork[bi], w)
	}
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, w := range batchWork[bi] {
			data := results[bi][ri].Data
			lock := binary.LittleEndian.Uint64(data)
			newest := uint64(0)
			for i := 0; i < layout.MotorSlots; i++ {
				valid, ts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(data[16+i*8:]))
				if valid && ts > newest {
					newest = ts
				}
			}
			if lock == 0 && newest == w.readVer {
				continue
			}
			var conflicting uint64
			if lock != 0 {
				conflicting = db.Tracker.HolderCells(w.table(), w.key)
			}
			if newest != w.readVer {
				conflicting |= db.Tracker.ChangedSince(w.table(), w.key, w.readVer)
			}
			db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
			return engine.AbortValidation, engine.IsFalseConflict(w.cells, conflicting)
		}
	}
	return engine.AbortNone, false
}

// releaseLocks frees held locks in one round-trip.
func (c *Coordinator) releaseLocks(p *sim.Proc, ws []*work) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	perNode := map[int]int{}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		bi, ok := perNode[w.primary.Region.ID()]
		if !ok {
			bi = len(batches)
			perNode[w.primary.Region.ID()] = bi
			batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
		}
		batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
			Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: c.gid, Swap: 0,
		})
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		w.locked = false
	}
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// writeLog persists the redo images (Motor logs new versions; MVCC
// needs no undo) in one round-trip.
func (c *Coordinator) writeLog(p *sim.Proc, ws []*work, ts uint64) {
	n := 0
	for _, w := range ws {
		if w.locked {
			n++
		}
	}
	if n == 0 {
		return
	}
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, w := range ws {
		if !w.locked {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.table()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.key))
		buf = append(buf, w.data...)
	}
	off := c.log.Reserve(len(buf))
	batches := make([]rdma.Batch, 0, len(c.logN))
	for _, nn := range c.logN {
		batches = append(batches, rdma.Batch{
			QP:  c.qps.Get(nn.Region),
			Ops: []rdma.Op{{Kind: rdma.OpWrite, Off: off, Data: buf}},
		})
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// install writes the new version into the victim slot on every
// replica and releases the lock, all ordered within one round-trip:
// data, then the metadata word that makes it visible, then the version
// hint, then the unlock CAS.
func (c *Coordinator) install(p *sim.Proc, ws []*work, ts uint64) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	perNode := map[int]int{}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		metaWord := make([]byte, 8)
		binary.LittleEndian.PutUint64(metaWord, layout.PackSlotMeta(true, ts))
		verWord := make([]byte, 8)
		binary.LittleEndian.PutUint64(verWord, ts)
		for _, n := range db.Pool.ReplicaNodes(w.table(), w.key) {
			bi, ok := perNode[n.Region.ID()]
			if !ok {
				bi = len(batches)
				perNode[n.Region.ID()] = bi
				batches = append(batches, rdma.Batch{QP: c.qps.Get(n.Region)})
			}
			batches[bi].Ops = append(batches[bi].Ops,
				rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.SlotDataOff(w.victim)), Data: w.data},
				rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.SlotMetaOff(w.victim)), Data: metaWord},
				rdma.Op{Kind: rdma.OpWrite, Off: w.off + layout.BOffVersion, Data: verWord},
			)
			if n == w.primary {
				batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
					Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: c.gid, Swap: 0,
				})
			}
		}
	}
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Tracker.OnUpdate(w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		w.locked = false
	}
}

// record feeds the committed transaction into the history checker.
func (c *Coordinator) record(t *engine.Txn, ws []*work, ts uint64, snapshot bool, snapshotTS uint64) {
	h := c.cn.sys.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Snapshot: snapshot, SnapshotTS: snapshotTS, Label: t.Label}
	for _, w := range ws {
		for i, cell := range w.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.readVals[i]),
			})
		}
		for i, cell := range w.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
