// Package motor implements the Motor baseline (Zhang, Hua, Yang,
// "Motor: Enabling Multi-Versioning for Distributed Transactions on
// Disaggregated Memory", OSDI 2024) as the CREST paper evaluates it:
// record-level optimistic concurrency control with a consecutive
// version table per record.
//
// Motor's defining traits, reproduced here:
//
//   - every record carries MotorSlots full versions plus one metadata
//     word per version, stored consecutively so no chain traversal is
//     needed;
//   - reads fetch the whole consecutive version table (header, slot
//     metadata and all version payloads) in one READ and pick the
//     visible version locally — larger payloads than the single-version
//     baselines, which is Motor's space/bandwidth trade;
//   - fully read-only transactions take a start snapshot and commit
//     without any validation round-trip: a writer holds the record
//     lock from before its commit timestamp is issued until its
//     version is installed, so a reader that retries while the lock is
//     held always observes every version older than its snapshot;
//   - read-write transactions validate their read set (version hint +
//     lock) like FORD, then install into the oldest version slot.
package motor

import (
	"encoding/binary"
	"fmt"

	"crest/internal/causality"
	"crest/internal/engine"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

const (
	logSegmentSize = 64 << 10
	// lockedReadRetries bounds how long a snapshot reader spins on a
	// locked record before aborting the attempt. The spin only needs
	// to cover a committing writer's install window (a couple of
	// round-trips); spinning across a whole lock tenure captures
	// coordinators under contention.
	lockedReadRetries = 3
)

// System is a Motor instance over a shared DB.
type System struct {
	db      *engine.DB
	layouts map[layout.TableID]*layout.MotorRecord
}

// New creates a Motor system on db.
func New(db *engine.DB) *System {
	return &System{db: db, layouts: map[layout.TableID]*layout.MotorRecord{}}
}

// Name labels the engine.
func (s *System) Name() string { return "Motor" }

// DB exposes the underlying database substrate.
func (s *System) DB() *engine.DB { return s.db }

// CreateTable registers a table with Motor's multi-version layout.
func (s *System) CreateTable(sc layout.Schema, capacity int) {
	sc = sc.Normalize()
	lay := layout.NewMotorRecord(sc)
	s.layouts[sc.ID] = lay
	s.db.CreateTable(sc, lay.PaddedSize(), capacity)
}

// Load writes a record's initial cell values into version slot 0.
func (s *System) Load(table layout.TableID, key layout.Key, cells [][]byte) {
	lay := s.layouts[table]
	t := s.db.Table(table)
	s.db.LoadRecord(t, key, func(buf []byte) {
		binary.LittleEndian.PutUint64(buf[layout.BOffKey:], uint64(key))
		binary.LittleEndian.PutUint32(buf[layout.BOffTableID:], uint32(table))
		layout.PutWord(buf, lay.SlotMetaOff(0), layout.PackSlotMeta(true, 0))
		for i, v := range cells {
			if len(v) != lay.Schema.CellSizes[i] {
				panic(fmt.Sprintf("motor: cell %d size %d, schema wants %d", i, len(v), lay.Schema.CellSizes[i]))
			}
			copy(buf[lay.SlotCellOff(0, i):], v)
		}
	})
	if h := s.db.History; h != nil && h.On {
		for i, v := range cells {
			h.SetInitial(engine.CellID{Table: table, Key: key, Cell: i}, v)
		}
	}
}

// FinishLoad publishes the hash indexes.
func (s *System) FinishLoad() error { return s.db.FinishLoad() }

// ComputeNode groups coordinators sharing an address cache. db is the
// partition view the node's coordinators run against (the root DB on
// sequential runs).
type ComputeNode struct {
	sys   *System
	db    *engine.DB
	id    int
	cache *hashindex.AddrCache
}

// NewComputeNode creates compute node state.
func (s *System) NewComputeNode(id int) *ComputeNode {
	return &ComputeNode{sys: s, db: s.db, id: id, cache: hashindex.NewAddrCache()}
}

// NewPartitionComputeNode creates compute node state bound to a
// partition view of the database.
func (s *System) NewPartitionComputeNode(id int, db *engine.DB) *ComputeNode {
	cn := s.NewComputeNode(id)
	cn.db = db
	return cn
}

// WarmCache preloads the address cache with every record.
func (cn *ComputeNode) WarmCache() { cn.db.WarmCache(cn.cache) }

// Coordinator executes Motor transactions.
type Coordinator struct {
	cn   *ComputeNode
	gid  uint64
	qps  *engine.QPCache
	log  *memnode.LogSegment
	logN []*memnode.Node
	home int // shard group holding the log (commit decision)
	// scFree recycles attempt scratch (see execScratch).
	scFree []*execScratch
}

// NewCoordinator creates coordinator id (globally unique).
func (cn *ComputeNode) NewCoordinator(id int) *Coordinator {
	db := cn.db
	pool := db.Pool
	c := &Coordinator{
		cn:  cn,
		gid: uint64(id) + 1,
		qps: engine.NewQPCache(db.Fabric),
		log: pool.AllocLog(logSegmentSize),
	}
	c.qps.Warm(pool)
	c.logN = pool.LogNodes(id, pool.Replicas()+1)
	c.home = pool.ShardOfNode(c.logN[0].ID)
	return c
}

// writeShards returns the shard groups of every written record in ws.
func (c *Coordinator) writeShards(ws []*work) engine.ShardSet {
	pool := c.cn.db.Pool
	var parts engine.ShardSet
	for _, w := range ws {
		if w.op.IsWrite() {
			parts.Add(pool.ShardOfNode(w.primary.ID))
		}
	}
	return parts
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

// work is per-record attempt state.
type work struct {
	op        *engine.Op
	key       layout.Key
	rk        recKey
	off       uint64
	lay       *layout.MotorRecord
	primary   *memnode.Node
	slot      int    // version slot read
	victim    int    // slot to install into
	readVer   uint64 // newest ts observed at fetch
	data      []byte // working copy of one version's cell data
	locked    bool
	cells     uint64
	readVals  [][]byte
	writeVals [][]byte
}

func (w *work) table() layout.TableID { return w.lay.Schema.ID }

// Execute runs one attempt of t.
func (c *Coordinator) Execute(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.db
	at := engine.BeginAttempt(db, p, c.gid, c.home, t)

	var snapshot uint64
	if t.ReadOnly {
		snapshot = db.TSO.Last() // start timestamp for MVCC reads
	}

	sc := c.getScratch()
	defer c.putScratch(sc)
	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		newWork := c.prepareBlock(p, t, blk, sc)
		sc.ws = append(sc.ws, newWork...)
		if db.Pool.Shards() > 1 && c.writeShards(sc.ws).Beyond(c.home) {
			at.MarkCrossShard()
		}
		at.Phase(trace.PhaseLock)
		abort, falseC := c.fetchBlock(p, sc, newWork, t.ReadOnly, snapshot)
		at.Phase(trace.PhaseExec)
		if abort != engine.AbortNone {
			// Release before Fail: Motor has always charged abort-time
			// lock release to the phase that failed.
			c.releaseLocks(p, sc, sc.ws)
			at.Fail(abort, falseC)
			return at.Done()
		}
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			w := findWork(sc.ws, recKey{op.Table, op.ResolveKey(t.State)})
			c.applyOp(p, t, sc, op, w)
		}
	}

	if t.ReadOnly {
		// Snapshot reads commit without validation (§ package doc).
		c.record(t, sc.ws, db.TSO.Next(), true, snapshot)
		return at.Done()
	}

	at.Phase(trace.PhaseValidate)
	if abort, falseC := c.validate(p, sc, sc.ws); abort != engine.AbortNone {
		c.releaseLocks(p, sc, sc.ws)
		at.Fail(abort, falseC)
		return at.Done()
	}

	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	c.writeLog(p, sc, sc.ws, ts)
	at.Phase(trace.PhaseApply)
	c.install(p, sc, sc.ws, ts)
	c.record(t, sc.ws, ts, false, 0)
	return at.Done()
}

// prepareBlock resolves keys into work entries, ordered by (table,
// key).
func (c *Coordinator) prepareBlock(p *sim.Proc, t *engine.Txn, blk *engine.Block, sc *execScratch) []*work {
	db := c.cn.db
	sc.block = sc.block[:0]
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		prev := findWork(sc.ws, rk)
		if prev == nil {
			prev = findWork(sc.block, rk)
		}
		if prev != nil {
			if op.IsWrite() && !prev.locked {
				panic(fmt.Sprintf("motor: record %v written after read-only fetch", rk))
			}
			prev.cells |= opCellMask(op)
			continue
		}
		lay := c.cn.sys.layouts[op.Table]
		primary := db.Pool.PrimaryOf(op.Table, key)
		off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), op.Table, key)
		if err != nil {
			panic(err)
		}
		w := sc.newWork()
		w.op, w.key, w.rk, w.off, w.lay, w.primary, w.cells = op, key, rk, off, lay, primary, opCellMask(op)
		sc.block = append(sc.block, w)
	}
	sortWorks(sc.block)
	return sc.block
}

// sortWorks orders records by (TableID, Key). The order is total
// (duplicate records merge into their first work entry above), so the
// insertion sort matches the previous sort.Slice byte for byte.
func sortWorks(ws []*work) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && workLess(w, ws[j]) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

func workLess(a, b *work) bool {
	if a.table() != b.table() {
		return a.table() < b.table()
	}
	return a.key < b.key
}

func opCellMask(op *engine.Op) uint64 {
	return layout.LockMask(op.ReadCells) | layout.LockMask(op.WriteCells)
}

// fetchBlock reads the block's records, batched per memory node into
// one round-trip: the consecutive version table lets one READ return
// the header, every version's metadata and every version's data, so
// the coordinator picks the visible version locally — no chain
// traversal, which is exactly Motor's layout argument. Writes prepend
// the lock CAS to the same batch. Snapshot reads that land on a locked
// record (a committing writer's install may be in flight) retry
// briefly.
func (c *Coordinator) fetchBlock(p *sim.Proc, sc *execScratch, ws []*work, snapshotRead bool, snapshot uint64) (engine.AbortReason, bool) {
	if len(ws) == 0 {
		return engine.AbortNone, false
	}
	db := c.cn.db
	todo := append(sc.todo[:0], ws...)
	sc.todo = todo
	for retry := 0; ; retry++ {
		sc.bat.Begin()
		sc.slots = sc.slots[:0]
		for _, w := range todo {
			bi := sc.bat.Batch(w.primary.Region)
			sc.slots = append(sc.slots, mslot{w: w, casIdx: -1})
			s := &sc.slots[len(sc.slots)-1]
			if w.op.IsWrite() && !w.locked {
				s.casIdx = sc.bat.Append(bi, rdma.Op{
					Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: 0, Swap: c.gid,
				})
			}
			s.rdIdx = sc.bat.Append(bi, rdma.Op{Kind: rdma.OpRead, Off: w.off, Len: w.lay.Size()})
		}
		results, err := rdma.PostMulti(p, sc.bat.Batches())
		if err != nil {
			panic(err)
		}
		again := sc.retry[:0]
		lockFailed := false
		var conflictMask, myMask uint64
		for si := range sc.slots {
			s := &sc.slots[si]
			w := s.w
			bi := sc.bat.Lookup(w.primary.Region)
			if s.casIdx >= 0 {
				if results[bi][s.casIdx].OK {
					w.locked = true
					db.Tracker.OnLock(w.table(), w.key, w.cells)
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
					db.Why.OnLock(p, w.table(), w.key, w.cells)
					db.Met.LockAcquires.Inc()
				} else {
					lockFailed = true
					conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
					myMask |= w.cells
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
					db.Why.LockFail(p, w.table(), w.key, w.cells)
					db.Met.LockConflicts.Inc()
					continue
				}
			}
			rec := results[bi][s.rdIdx].Data
			lockWord := binary.LittleEndian.Uint64(rec[layout.BOffLock:])
			if snapshotRead && lockWord != 0 {
				again = append(again, w)
				conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
				myMask |= w.cells
				db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
				db.Why.LockFail(p, w.table(), w.key, w.cells)
				db.Met.LockConflicts.Inc()
				continue
			}
			slot, victim, newest, found := chooseSlots(rec, w.lay, snapshotRead, snapshot)
			if !found {
				// Every version is newer than our snapshot: the
				// history we need has been overwritten.
				return engine.AbortValidation, false
			}
			w.slot, w.victim, w.readVer = slot, victim, newest
			dataLen := w.lay.Schema.DataBytes()
			w.data = append(w.data[:0], rec[w.lay.SlotDataOff(slot):w.lay.SlotDataOff(slot)+dataLen]...)
		}
		sc.retry = again
		if lockFailed {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		if len(again) == 0 {
			return engine.AbortNone, false
		}
		if retry >= lockedReadRetries {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		// Ping-pong the two retained backings: the current todo list
		// becomes the next round's retry accumulator and vice versa.
		sc.todo, sc.retry = again, todo[:0]
		todo = again
		p.Sleep(2 * sim.Microsecond)
		db.Flight.Backoff(p, 2*sim.Microsecond)
	}
}

// chooseSlots picks the version to read (newest visible) and the slot
// to overwrite on install (oldest or invalid).
func chooseSlots(meta []byte, lay *layout.MotorRecord, snapshotRead bool, snapshot uint64) (slot, victim int, newest uint64, found bool) {
	slot, victim = -1, -1
	var bestTS, victimTS uint64
	victimTS = ^uint64(0)
	for i := 0; i < layout.MotorSlots; i++ {
		valid, ts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(meta[lay.SlotMetaOff(i):]))
		if !valid {
			victim, victimTS = i, 0
			continue
		}
		if ts > newest {
			newest = ts
		}
		if snapshotRead && ts > snapshot {
			continue
		}
		if slot == -1 || ts >= bestTS {
			slot, bestTS = i, ts
		}
		if ts < victimTS {
			victim, victimTS = i, ts
		}
	}
	return slot, victim, newest, slot != -1
}

// applyOp runs the op's hook against the working copy of the version
// data. Read copies live in the attempt arena: hooks may retain them
// only for the attempt (record consumes them before the scratch is
// recycled).
func (c *Coordinator) applyOp(p *sim.Proc, t *engine.Txn, sc *execScratch, op *engine.Op, w *work) {
	db := c.cn.db
	read := w.readVals[:0]
	for _, cell := range op.ReadCells {
		src := w.data[w.cellOff(cell):][:w.lay.Schema.CellSizes[cell]]
		b := sc.bytes(len(src))
		copy(b, src)
		read = append(read, b)
	}
	p.Sleep(db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells)))
	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("motor: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	for i, cell := range op.WriteCells {
		if len(written[i]) != w.lay.Schema.CellSizes[cell] {
			panic("motor: hook wrote wrong cell size")
		}
		copy(w.data[w.cellOff(cell):], written[i])
	}
	w.readVals = read
	w.writeVals = written
}

// cellOff is the offset of a cell within the version-data working
// copy.
func (w *work) cellOff(cell int) int {
	off := 0
	for j := 0; j < cell; j++ {
		off += w.lay.Schema.CellSizes[j]
	}
	return off
}

// validate re-reads lock+version hint of read-only records, batched
// per node.
func (c *Coordinator) validate(p *sim.Proc, sc *execScratch, ws []*work) (engine.AbortReason, bool) {
	db := c.cn.db
	sc.bat.Begin()
	for i := range sc.batchW {
		sc.batchW[i] = sc.batchW[i][:0]
	}
	metaLen := layout.MotorSlots * layout.MotorSlotMetaSize
	for _, w := range ws {
		if w.locked {
			continue
		}
		bi := sc.bat.Batch(w.primary.Region)
		for bi >= len(sc.batchW) {
			sc.batchW = append(sc.batchW, nil)
		}
		sc.bat.Append(bi, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off + layout.BOffLock,
			Len:  8 + 8 + metaLen, // lock + version hint + slot metas
		})
		sc.batchW[bi] = append(sc.batchW[bi], w)
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, w := range sc.batchW[bi] {
			data := results[bi][ri].Data
			lock := binary.LittleEndian.Uint64(data)
			newest := uint64(0)
			for i := 0; i < layout.MotorSlots; i++ {
				valid, ts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(data[16+i*8:]))
				if valid && ts > newest {
					newest = ts
				}
			}
			if lock == 0 && newest == w.readVer {
				continue
			}
			var conflicting uint64
			if lock != 0 {
				conflicting = db.Tracker.HolderCells(w.table(), w.key)
			}
			if newest != w.readVer {
				conflicting |= db.Tracker.ChangedSince(w.table(), w.key, w.readVer)
			}
			db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
			db.Why.ValidationFail(p, w.table(), w.key, w.cells, w.readVer)
			db.Met.LockConflicts.Inc()
			return engine.AbortValidation, engine.IsFalseConflict(w.cells, conflicting)
		}
	}
	return engine.AbortNone, false
}

// releaseLocks frees held locks in one round-trip.
func (c *Coordinator) releaseLocks(p *sim.Proc, sc *execScratch, ws []*work) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if !w.locked {
			continue
		}
		bi := sc.bat.Batch(w.primary.Region)
		sc.bat.Append(bi, rdma.Op{
			Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: c.gid, Swap: 0,
		})
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		db.Why.OnUnlock(w.table(), w.key, w.cells)
		w.locked = false
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// writeLog persists the redo images (Motor logs new versions; MVCC
// needs no undo) in one round-trip.
func (c *Coordinator) writeLog(p *sim.Proc, sc *execScratch, ws []*work, ts uint64) {
	n := 0
	for _, w := range ws {
		if w.locked {
			n++
		}
	}
	if n == 0 {
		return
	}
	buf := sc.logBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, w := range ws {
		if !w.locked {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.table()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.key))
		buf = append(buf, w.data...)
	}
	sc.logBuf = buf
	off := c.log.Reserve(len(buf))
	// Cross-shard commits pay a prepare round first: the entry lands
	// on every other participating group's log mirrors before the
	// home group's decision write below.
	if parts := c.writeShards(ws); parts.Beyond(c.home) {
		engine.PrepareCrossShard(p, c.cn.db, c.qps, c.logN, c.home, parts, off, buf)
	}
	// Distinct batches per replica even when log nodes share a region:
	// merging them would change the fabric's batch count.
	if cap(sc.logBatches) < len(c.logN) {
		sc.logBatches = make([]rdma.Batch, len(c.logN))
	}
	sc.logBatches = sc.logBatches[:len(c.logN)]
	for i, nn := range c.logN {
		sc.logBatches[i].QP = c.qps.Get(nn.Region)
		sc.logBatches[i].Ops = append(sc.logBatches[i].Ops[:0], rdma.Op{Kind: rdma.OpWrite, Off: off, Data: buf})
	}
	if _, err := rdma.PostMulti(p, sc.logBatches); err != nil {
		panic(err)
	}
}

// install writes the new version into the victim slot on every
// replica and releases the lock, all ordered within one round-trip:
// data, then the metadata word that makes it visible, then the version
// hint, then the unlock CAS.
func (c *Coordinator) install(p *sim.Proc, sc *execScratch, ws []*work, ts uint64) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if !w.locked {
			continue
		}
		metaWord := sc.bytes(8)
		binary.LittleEndian.PutUint64(metaWord, layout.PackSlotMeta(true, ts))
		verWord := sc.bytes(8)
		binary.LittleEndian.PutUint64(verWord, ts)
		for _, n := range db.Pool.ReplicaNodes(w.table(), w.key) {
			bi := sc.bat.Batch(n.Region)
			sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.SlotDataOff(w.victim)), Data: w.data})
			sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.SlotMetaOff(w.victim)), Data: metaWord})
			sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: w.off + layout.BOffVersion, Data: verWord})
			if n == w.primary {
				sc.bat.Append(bi, rdma.Op{
					Kind: rdma.OpCAS, Off: w.off + layout.BOffLock, Compare: c.gid, Swap: 0,
				})
			}
		}
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Tracker.OnUpdate(w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		db.Why.OnUpdate(causality.IDOf(p), w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Why.OnUnlock(w.table(), w.key, w.cells)
		w.locked = false
	}
}

// record feeds the committed transaction into the history checker.
func (c *Coordinator) record(t *engine.Txn, ws []*work, ts uint64, snapshot bool, snapshotTS uint64) {
	h := c.cn.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Snapshot: snapshot, SnapshotTS: snapshotTS, Label: t.Label}
	for _, w := range ws {
		for i, cell := range w.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.readVals[i]),
			})
		}
		for i, cell := range w.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
