package motor

import (
	"encoding/binary"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

type fixture struct {
	env *sim.Env
	sys *System
	cns []*ComputeNode
}

func newFixture(t *testing.T, mns, cnCount, replicas, records int, history bool) *fixture {
	t.Helper()
	env := sim.NewEnv(11)
	params := rdma.DefaultParams()
	params.JitterPct = 0
	fabric := rdma.NewFabric(env, params)
	pool := memnode.NewPool(fabric, mns, 32<<20, replicas)
	db := engine.NewDB(pool)
	if history {
		db.History = engine.NewHistory()
	}
	sys := New(db)
	sys.CreateTable(layout.Schema{ID: 1, Name: "kv", CellSizes: []int{8, 8}}, records+16)
	for k := 0; k < records; k++ {
		sys.Load(1, layout.Key(k), [][]byte{word(uint64(k)), word(uint64(k))})
	}
	if err := sys.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	f := &fixture{env: env, sys: sys}
	for i := 0; i < cnCount; i++ {
		cn := sys.NewComputeNode(i)
		cn.WarmCache()
		f.cns = append(f.cns, cn)
	}
	return f
}

func word(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func incTxn(key layout.Key, cell int, delta uint64) *engine.Txn {
	t := &engine.Txn{Label: "inc"}
	t.Blocks = []engine.Block{{Ops: []engine.Op{{
		Table:      1,
		Key:        key,
		ReadCells:  []int{cell},
		WriteCells: []int{cell},
		Hook: func(_ any, read [][]byte) [][]byte {
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + delta)}
		},
	}}}}
	return t
}

func readTxn(keys []layout.Key, out *[]uint64) *engine.Txn {
	t := &engine.Txn{Label: "read", ReadOnly: true}
	var ops []engine.Op
	for _, k := range keys {
		ops = append(ops, engine.Op{
			Table: 1, Key: k, ReadCells: []int{0},
			Hook: func(_ any, read [][]byte) [][]byte {
				*out = append(*out, binary.LittleEndian.Uint64(read[0]))
				return nil
			},
		})
	}
	t.Blocks = []engine.Block{{Ops: ops}}
	return t
}

// newestVersion scans a record's version table host-side.
func (f *fixture) newestVersion(node *memnode.Node, key layout.Key) (ts, val uint64) {
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(key)
	lay := f.sys.layouts[1]
	buf := node.Region.Bytes()
	best := -1
	for i := 0; i < layout.MotorSlots; i++ {
		valid, sts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(buf[off+uint64(lay.SlotMetaOff(i)):]))
		if valid && (best == -1 || sts > ts) {
			best, ts = i, sts
		}
	}
	val = binary.LittleEndian.Uint64(buf[off+uint64(lay.SlotCellOff(best, 0)):])
	return ts, val
}

func TestWriteCreatesNewVersion(t *testing.T) {
	f := newFixture(t, 2, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		if a := coord.Execute(p, incTxn(2, 0, 100)); !a.Committed {
			t.Errorf("abort: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	primary := f.sys.db.Pool.PrimaryOf(1, 2)
	ts, val := f.newestVersion(primary, 2)
	if val != 102 {
		t.Fatalf("newest version value = %d, want 102", val)
	}
	if ts == 0 {
		t.Fatal("commit did not advance version timestamp")
	}
	// The original version must survive in another slot (MVCC).
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(2)
	lay := f.sys.layouts[1]
	buf := primary.Region.Bytes()
	foundOld := false
	for i := 0; i < layout.MotorSlots; i++ {
		valid, sts := layout.UnpackSlotMeta(binary.LittleEndian.Uint64(buf[off+uint64(lay.SlotMetaOff(i)):]))
		if valid && sts == 0 {
			if binary.LittleEndian.Uint64(buf[off+uint64(lay.SlotCellOff(i, 0)):]) == 2 {
				foundOld = true
			}
		}
	}
	if !foundOld {
		t.Fatal("old version evicted despite free slots")
	}
}

func TestVersionTableRecyclesOldest(t *testing.T) {
	f := newFixture(t, 1, 1, 0, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < layout.MotorSlots+3; i++ {
			if a := coord.Execute(p, incTxn(0, 0, 1)); !a.Committed {
				t.Errorf("abort: %v", a.Reason)
			}
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	primary := f.sys.db.Pool.PrimaryOf(1, 0)
	_, val := f.newestVersion(primary, 0)
	if val != uint64(layout.MotorSlots+3) {
		t.Fatalf("final value %d, want %d", val, layout.MotorSlots+3)
	}
}

func TestReadOnlySkipsValidationRTT(t *testing.T) {
	f := newFixture(t, 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("c", func(p *sim.Proc) {
		var out []uint64
		att = coord.Execute(p, readTxn([]layout.Key{0, 1}, &out))
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !att.Committed {
		t.Fatalf("abort: %v", att.Reason)
	}
	if att.Validate != 0 {
		t.Fatalf("read-only txn spent %v validating", att.Validate)
	}
	// One whole-record READ per record.
	if att.Verbs.Reads != 2 {
		t.Fatalf("READs = %d, want 2", att.Verbs.Reads)
	}
	if att.Verbs.CASes != 0 || att.Verbs.Writes != 0 {
		t.Fatalf("read-only txn issued writes: %+v", att.Verbs)
	}
}

func TestReadersDoNotAbortAgainstCommittedWriters(t *testing.T) {
	// Unlike FORD, a Motor snapshot reader overlapping committed
	// writers succeeds: it reads the older version.
	f := newFixture(t, 1, 1, 0, 2, true)
	writer := f.cns[0].NewCoordinator(0)
	reader := f.cns[0].NewCoordinator(1)
	retry := engine.DefaultRetryPolicy()
	f.env.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			for attempt := 1; ; attempt++ {
				if a := writer.Execute(p, incTxn(0, 0, 1)); a.Committed {
					break
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
		}
	})
	committed := 0
	f.env.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			var out []uint64
			if a := reader.Execute(p, readTxn([]layout.Key{0, 1}, &out)); a.Committed {
				committed++
			}
			p.Sleep(time2())
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if committed < 8 {
		t.Fatalf("only %d of 10 snapshot reads committed", committed)
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func time2() sim.Duration { return 5 * sim.Microsecond }

func TestWriteConflictAborts(t *testing.T) {
	f := newFixture(t, 1, 1, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[0].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) { outcomes[0] = c1.Execute(p, incTxn(0, 0, 1)) })
	f.env.Spawn("c2", func(p *sim.Proc) { outcomes[1] = c2.Execute(p, incTxn(0, 0, 1)) })
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	committed := 0
	for _, a := range outcomes {
		if a.Committed {
			committed++
		} else if a.Reason != engine.AbortLockFail {
			t.Errorf("abort reason %v", a.Reason)
		}
	}
	if committed != 1 {
		t.Fatalf("%d committed, want 1", committed)
	}
}

func TestConcurrentIncrementsSerializable(t *testing.T) {
	f := newFixture(t, 2, 2, 1, 4, true)
	const workers, incs = 8, 10
	retry := engine.DefaultRetryPolicy()
	for i := 0; i < workers; i++ {
		cn := f.cns[i%len(f.cns)]
		coord := cn.NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < incs; j++ {
				for attempt := 1; ; attempt++ {
					if a := coord.Execute(p, incTxn(0, 0, 1)); a.Committed {
						break
					}
					p.Sleep(retry.Backoff(attempt, p.Rand()))
				}
			}
		})
	}
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 0) {
		if _, val := f.newestVersion(n, 0); val != workers*incs {
			t.Fatalf("node %d counter = %d, want %d", n.ID, val, workers*incs)
		}
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func TestMixedReadersAndWritersSerializable(t *testing.T) {
	f := newFixture(t, 2, 2, 0, 8, true)
	retry := engine.DefaultRetryPolicy()
	for i := 0; i < 4; i++ {
		coord := f.cns[i%2].NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < 15; j++ {
				key := layout.Key(j % 3)
				for attempt := 1; ; attempt++ {
					if a := coord.Execute(p, incTxn(key, j%2, 1)); a.Committed {
						break
					}
					p.Sleep(retry.Backoff(attempt, p.Rand()))
				}
			}
		})
	}
	for i := 4; i < 8; i++ {
		coord := f.cns[i%2].NewCoordinator(i)
		f.env.Spawn("r", func(p *sim.Proc) {
			for j := 0; j < 15; j++ {
				var out []uint64
				coord.Execute(p, readTxn([]layout.Key{0, 1, 2}, &out))
				p.Sleep(3 * sim.Microsecond)
			}
		})
	}
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func TestSnapshotTooOldAborts(t *testing.T) {
	// A reader that starts, then waits while MotorSlots+ newer
	// versions land, loses its snapshot.
	f := newFixture(t, 1, 1, 0, 2, false)
	writer := f.cns[0].NewCoordinator(0)
	reader := f.cns[0].NewCoordinator(1)
	var att engine.Attempt
	f.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "late", ReadOnly: true}
		txn.Blocks = []engine.Block{
			{Ops: []engine.Op{{
				Table: 1, Key: 1, ReadCells: []int{0},
				Hook: func(_ any, _ [][]byte) [][]byte {
					p.Sleep(400 * sim.Microsecond) // let the writer burn the version table
					return nil
				},
			}}},
			{Ops: []engine.Op{{
				Table: 1, Key: 0, ReadCells: []int{0},
				Hook: func(_ any, _ [][]byte) [][]byte { return nil },
			}}},
		}
		att = reader.Execute(p, txn)
	})
	f.env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		for i := 0; i < layout.MotorSlots+2; i++ {
			if a := writer.Execute(p, incTxn(0, 0, 1)); !a.Committed {
				t.Errorf("writer abort: %v", a.Reason)
			}
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if att.Committed {
		t.Fatal("reader with overwritten snapshot committed")
	}
	if att.Reason != engine.AbortValidation {
		t.Fatalf("reason = %v, want validation", att.Reason)
	}
}
