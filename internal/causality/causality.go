// Package causality is the abort-forensics layer of the observability
// stack: a deterministic, nil-safe recorder of wait-for and conflict
// edges. Every time a coordinator blocks on, CAS-fails against, or
// validation-fails because of a cell, the engines record one Edge —
// (waiter txn, holder/updater txn, cell, edge kind, virtual wait
// duration) — through the shared engine.AttemptTimer seam.
//
// Recording is host-side only: it consumes no virtual time, no
// simulator events and no randomness, so a recording run is
// byte-identical to a plain run and same-seed runs produce byte-equal
// exports. Every method is nil-safe — a disabled recorder is a nil
// pointer and each emission point costs one pointer check — and the
// edge-recording hot path allocates nothing after warm-up.
//
// On top of the edge stream sit two views (report.go): blame chains
// ("T412 aborted at validation on (table 3, key 17, cell 2), updated
// by T398, which waited 14µs on T371") and an aggregated contention
// dependency graph with hotspot ranking and wait-cycle detection,
// exported as Graphviz DOT and schema-versioned JSON (export.go).
package causality

import (
	"fmt"
	"sort"

	"crest/internal/layout"
	"crest/internal/sim"
)

// Kind classifies one wait-for / conflict edge.
type Kind uint8

// The edge kinds the engines record.
const (
	// KindLockFail: a remote lock CAS lost to (or a locked read
	// retried against) the holder's cells.
	KindLockFail Kind = iota
	// KindValidation: a read version changed before commit; the holder
	// is the transaction that installed the newer version.
	KindValidation
	// KindDependency: a CREST local transaction waited for a
	// depended-on local transaction to resolve (§5.2).
	KindDependency
	// KindLocalWait: a coordinator blocked on a compute-node-local
	// object (cache-line mutex or admission queue).
	KindLocalWait
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLockFail:
		return "lock-fail"
	case KindValidation:
		return "validation"
	case KindDependency:
		return "dependency"
	case KindLocalWait:
		return "local-wait"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// State is a transaction's final disposition.
type State uint8

// Transaction states. A harness that retries until commit leaves most
// nodes Committed with Aborts > 0; the abort history stays attached.
const (
	StatePending State = iota
	StateCommitted
	StateAborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Edge is one recorded wait-for / conflict observation. Waiter is
// always known; Holder is 0 when the blocking transaction could not be
// attributed (e.g. the updater aged out of the per-record ring, which
// conservatively counts as a true conflict — see engine.ConflictTracker).
type Edge struct {
	Seq    uint64   `json:"seq"` // global emission order (survives ring eviction)
	At     sim.Time `json:"at"`  // virtual time the edge was observed
	Kind   Kind     `json:"kind"`
	Waiter uint64   `json:"waiter"` // recorder-issued txn id
	Holder uint64   `json:"holder"` // recorder-issued txn id, 0 = unattributed

	// The contended record. Mask holds the cell bits involved; 0 means
	// the whole record (record-level lock word or unknown cells).
	Table layout.TableID `json:"table"`
	Key   layout.Key     `json:"key"`
	Mask  uint64         `json:"mask"`

	// Wait is the virtual time the waiter spent blocked (dependency
	// and local waits); conflict discoveries (lock CAS lost,
	// validation failure) are instantaneous and record 0.
	Wait sim.Duration `json:"wait"`
}

// Txn is the live per-transaction node the engines thread through
// execution via sim.Proc's why context. One node covers all attempts
// of a logical transaction; Aborts counts failed attempts and the
// cause fields freeze the conflict site of the last aborted attempt.
type Txn struct {
	ID      uint64
	Label   string
	Coord   uint64
	Attempt int
	Start   sim.Time
	End     sim.Time
	State   State
	Reason  string // last abort classification, "" if never aborted
	Aborts  int

	// Cause of the last abort: the conflict edge that attempt recorded
	// last, frozen by Abort. CauseSeq is 0 when the aborting attempt
	// recorded no edge (e.g. reverse-order aborts).
	CauseSeq   uint64
	CauseKind  Kind
	CauseTable layout.TableID
	CauseKey   layout.Key
	CauseMask  uint64
	Holder     uint64 // holder of the causing edge, 0 = unattributed

	done   bool
	txnKey any // retry detection: the engine's *Txn pointer

	// Conflict site of the current attempt (promoted to Cause* on
	// abort when it belongs to the aborting attempt).
	cSeq     uint64
	cKind    Kind
	cTable   layout.TableID
	cKey     layout.Key
	cMask    uint64
	cHolder  uint64
	cAttempt int
}

// WhyID returns the node's recorder-issued id (0 for nil: the id of an
// unattributed holder).
func (t *Txn) WhyID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// recKey identifies one record in the holder/updater tables.
type recKey struct {
	table layout.TableID
	key   layout.Key
}

// holderEntry is one live lock holding: the acquiring transaction and
// the cell bits it holds (0 = record-level lock word).
type holderEntry struct {
	id   uint64
	mask uint64
}

// updaterHistoryLen mirrors engine.ConflictTracker's 16-entry update
// ring: versions older than the window lose attribution and the edge
// conservatively records Holder 0.
const updaterHistoryLen = 16

// updEntry is one installed version with the transaction that wrote it.
type updEntry struct {
	version uint64
	id      uint64
	cells   uint64
}

// recState is the per-record attribution state.
type recState struct {
	holders []holderEntry
	ring    [updaterHistoryLen]updEntry
	ringLen int
	ringPos int // next slot to overwrite once the ring is full
}

// Recorder collects edges and transaction nodes into bounded rings.
// It is owned by one simulation environment; the cooperative scheduler
// serializes all emissions, so no locking is needed. The zero Recorder
// is unusable; a nil *Recorder is the disabled state and every method
// tolerates it.
type Recorder struct {
	cap     int
	edges   []Edge
	head    int // index of the oldest edge when full
	full    bool
	seq     uint64
	dropped uint64

	txnCap   int
	txns     []*Txn
	thead    int
	tfull    bool
	tdropped uint64
	nextID   uint64

	recs map[recKey]*recState

	// Partitioned mode (see Shard). Children are each written by
	// exactly one partition; txn ids and edge seqs stride by the
	// partition count so the merged Snapshot stays collision-free
	// without remapping Cause references.
	part   int
	stride int
	shards []*Recorder
	root   *Recorder
}

// Default ring capacities when the caller passes none.
const (
	DefaultCapacity    = 1 << 18
	DefaultTxnCapacity = 1 << 16
)

// Options size a recorder's rings.
type Options struct {
	// Capacity bounds the edge ring (DefaultCapacity when <= 0).
	Capacity int
	// TxnCapacity bounds the transaction-node ring (DefaultTxnCapacity
	// when <= 0).
	TxnCapacity int
}

// NewRecorder returns an enabled recorder.
func NewRecorder(opt Options) *Recorder {
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultCapacity
	}
	if opt.TxnCapacity <= 0 {
		opt.TxnCapacity = DefaultTxnCapacity
	}
	return &Recorder{cap: opt.Capacity, txnCap: opt.TxnCapacity, recs: map[recKey]*recState{}}
}

// Enabled reports whether the recorder collects edges.
func (r *Recorder) Enabled() bool { return r != nil }

// Shard returns the per-partition child recorder for part out of parts,
// creating the full child set on first use. Each child must be written
// by exactly one partition (one sim.Env), which keeps every emission
// lock-free under the parallel window executor; Snapshot on the root
// merges all children deterministically. With parts <= 1 (or a nil
// recorder) Shard returns the receiver, so single-partition wiring is
// byte-identical to an unsharded recorder. Children stride their txn
// ids and edge seqs by the partition count, so ids stay globally unique
// and CauseSeq references survive the merge without remapping.
func (r *Recorder) Shard(part, parts int) *Recorder {
	if r == nil || parts <= 1 {
		return r
	}
	if r.stride > 0 {
		panic("causality: Shard of a partition child")
	}
	if r.shards == nil {
		r.shards = make([]*Recorder, parts)
		for i := range r.shards {
			r.shards[i] = &Recorder{cap: r.cap, txnCap: r.txnCap,
				recs: map[recKey]*recState{}, part: i, stride: parts, root: r}
		}
	}
	if parts != len(r.shards) {
		panic(fmt.Sprintf("causality: Shard with %d parts after %d", parts, len(r.shards)))
	}
	if part < 0 || part >= parts {
		panic(fmt.Sprintf("causality: Shard part %d out of range [0,%d)", part, parts))
	}
	return r.shards[part]
}

// Dropped reports how many edges were evicted from the edge ring,
// summed across partition children.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	d := r.dropped
	for _, c := range r.shards {
		d += c.dropped
	}
	return d
}

// Len reports the number of buffered edges, summed across partition
// children.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.edges)
	for _, c := range r.shards {
		n += len(c.edges)
	}
	return n
}

// emit appends one edge to the ring, evicting the oldest on overflow.
// It returns the edge's sequence number (strided on partition children).
func (r *Recorder) emit(e Edge) uint64 {
	r.seq++
	e.Seq = r.seq
	if r.stride > 1 {
		e.Seq = uint64(r.part) + uint64(r.stride)*(r.seq-1) + 1
	}
	if len(r.edges) < r.cap {
		r.edges = append(r.edges, e)
		return e.Seq
	}
	r.edges[r.head] = e
	r.head = (r.head + 1) % r.cap
	r.full = true
	r.dropped++
	return e.Seq
}

// Of extracts the transaction node from a proc's why context (nil when
// recording is off or the proc runs outside a transaction).
func Of(p *sim.Proc) *Txn {
	t, _ := p.WhyCtx().(*Txn)
	return t
}

// IDOf returns the why id of the transaction running on p (0 when
// recording is off).
func IDOf(p *sim.Proc) uint64 { return Of(p).WhyID() }

// Begin starts (or resumes, for a retry of the same transaction) the
// node for txnKey on proc p, stores it in p's why context and returns
// it. A nil recorder returns nil. Begin allocates one node per logical
// transaction; the per-edge hot path stays allocation-free.
func (r *Recorder) Begin(p *sim.Proc, coord uint64, label string, txnKey any) *Txn {
	if r == nil {
		return nil
	}
	if prev, ok := p.WhyCtx().(*Txn); ok && prev != nil && !prev.done && prev.txnKey == txnKey {
		prev.Attempt++
		return prev
	}
	r.nextID++
	id := r.nextID
	if r.stride > 1 {
		id = uint64(r.part) + uint64(r.stride)*(r.nextID-1) + 1
	}
	t := &Txn{ID: id, Label: label, Coord: coord, Attempt: 1, Start: p.Now(), txnKey: txnKey}
	p.SetWhyCtx(t)
	if len(r.txns) < r.txnCap {
		r.txns = append(r.txns, t)
		return t
	}
	r.txns[r.thead] = t
	r.thead = (r.thead + 1) % r.txnCap
	r.tfull = true
	r.tdropped++
	return t
}

// Commit ends t as committed.
func (r *Recorder) Commit(at sim.Time, t *Txn) {
	if r == nil || t == nil {
		return
	}
	t.done = true
	t.State = StateCommitted
	t.End = at
}

// Abort records a failed attempt of t with its classification. The
// node stays open for the retry. When the attempt recorded a conflict
// edge, the abort cause freezes to that edge.
func (r *Recorder) Abort(at sim.Time, t *Txn, reason string) {
	if r == nil || t == nil {
		return
	}
	t.State = StateAborted
	t.End = at
	t.Reason = reason
	t.Aborts++
	if t.cAttempt == t.Attempt && t.cSeq != 0 {
		t.CauseSeq = t.cSeq
		t.CauseKind = t.cKind
		t.CauseTable, t.CauseKey, t.CauseMask = t.cTable, t.cKey, t.cMask
		t.Holder = t.cHolder
	} else {
		t.CauseSeq, t.CauseMask, t.Holder = 0, 0, 0
	}
}

// edge records one observation for the transaction on p and remembers
// it as the current attempt's conflict site.
func (r *Recorder) edge(p *sim.Proc, kind Kind, holder uint64, table layout.TableID, key layout.Key, mask uint64, wait sim.Duration) {
	t := Of(p)
	if t == nil {
		return
	}
	seq := r.emit(Edge{At: p.Now(), Kind: kind, Waiter: t.ID, Holder: holder,
		Table: table, Key: key, Mask: mask, Wait: wait})
	t.cSeq, t.cKind, t.cHolder = seq, kind, holder
	t.cTable, t.cKey, t.cMask = table, key, mask
	t.cAttempt = t.Attempt
}

// LockFail records a lock CAS lost (or a locked read observed) on the
// given cells. The holder is resolved from the live lock table.
func (r *Recorder) LockFail(p *sim.Proc, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	r.edge(p, KindLockFail, r.holderOf(table, key, mask), table, key, mask, 0)
}

// ValidationFail records a validation failure: a cell the transaction
// read at version since changed (or is locked) at commit time. The
// holder is the newest updater past since from the per-record ring,
// falling back to the live lock holder; versions older than the
// 16-entry window lose attribution (Holder 0), mirroring
// engine.ConflictTracker's conservative true-conflict answer.
func (r *Recorder) ValidationFail(p *sim.Proc, table layout.TableID, key layout.Key, mask uint64, since uint64) {
	if r == nil {
		return
	}
	holder := r.updaterSince(table, key, since)
	if holder == 0 {
		holder = r.holderOf(table, key, mask)
	}
	r.edge(p, KindValidation, holder, table, key, mask, 0)
}

// DependencyWait records a CREST local dependency wait: the running
// transaction blocked for wait on the transaction with why id holder.
func (r *Recorder) DependencyWait(p *sim.Proc, holder uint64, wait sim.Duration) {
	if r == nil {
		return
	}
	r.edge(p, KindDependency, holder, 0, 0, 0, wait)
}

// LocalWait records a block on a compute-node-local object (cache-line
// mutex or admission queue). holder is the why id of the transaction
// that held the object when the waiter parked (0 when unknown).
func (r *Recorder) LocalWait(p *sim.Proc, table layout.TableID, key layout.Key, holder uint64, wait sim.Duration) {
	if r == nil {
		return
	}
	r.edge(p, KindLocalWait, holder, table, key, 0, wait)
}

// rec returns the attribution state for a record, creating it on first
// touch (warm-up; steady state only looks up).
func (r *Recorder) rec(table layout.TableID, key layout.Key) *recState {
	k := recKey{table, key}
	rs := r.recs[k]
	if rs == nil {
		rs = &recState{}
		r.recs[k] = rs
	}
	return rs
}

// OnLock registers the transaction on p as a live holder of the given
// cell bits (0 = the record-level lock word).
func (r *Recorder) OnLock(p *sim.Proc, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	t := Of(p)
	if t == nil {
		return
	}
	rs := r.rec(table, key)
	for i := range rs.holders {
		if rs.holders[i].id == t.ID {
			rs.holders[i].mask |= mask
			return
		}
	}
	rs.holders = append(rs.holders, holderEntry{id: t.ID, mask: mask})
}

// OnUnlock drops the given cell bits from the record's live holders.
// mask 0 (a record-level lock word) clears every holder.
func (r *Recorder) OnUnlock(table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	rs := r.recs[recKey{table, key}]
	if rs == nil {
		return
	}
	if mask == 0 {
		rs.holders = rs.holders[:0]
		return
	}
	kept := rs.holders[:0]
	for _, h := range rs.holders {
		if h.mask &= ^mask; h.mask != 0 {
			kept = append(kept, h)
		}
	}
	rs.holders = kept
}

// holderOf resolves the oldest live holder overlapping mask (any
// holder when mask is 0); 0 when none is known.
func (r *Recorder) holderOf(table layout.TableID, key layout.Key, mask uint64) uint64 {
	rs := r.recs[recKey{table, key}]
	if rs == nil {
		return 0
	}
	for _, h := range rs.holders {
		if mask == 0 || h.mask == 0 || h.mask&mask != 0 {
			return h.id
		}
	}
	return 0
}

// OnUpdate records that transaction id installed version over the
// given cells, feeding updater attribution for validation failures.
// id 0 (recording off at the writer) still advances the ring so stale
// versions age out.
func (r *Recorder) OnUpdate(id uint64, table layout.TableID, key layout.Key, version, cells uint64) {
	if r == nil {
		return
	}
	rs := r.rec(table, key)
	e := updEntry{version: version, id: id, cells: cells}
	if rs.ringLen < updaterHistoryLen {
		rs.ring[rs.ringLen] = e
		rs.ringLen++
		return
	}
	rs.ring[rs.ringPos] = e
	rs.ringPos = (rs.ringPos + 1) % updaterHistoryLen
}

// updaterSince resolves the newest recorded updater whose version is
// past since; 0 when the window no longer covers it.
func (r *Recorder) updaterSince(table layout.TableID, key layout.Key, since uint64) uint64 {
	rs := r.recs[recKey{table, key}]
	if rs == nil {
		return 0
	}
	var best uint64
	var bestVer uint64
	for i := 0; i < rs.ringLen; i++ {
		e := &rs.ring[i]
		if e.version > since && e.version >= bestVer && e.id != 0 {
			best, bestVer = e.id, e.version
		}
	}
	return best
}

// TxnInfo is one transaction node in a snapshot.
type TxnInfo struct {
	ID      uint64     `json:"id"`
	Label   string     `json:"label"`
	Coord   uint64     `json:"coord"`
	Attempt int        `json:"attempts"`
	Start   sim.Time   `json:"start"`
	End     sim.Time   `json:"end"`
	State   State      `json:"state"`
	Reason  string     `json:"reason,omitempty"`
	Aborts  int        `json:"aborts,omitempty"`
	Cause   *CauseInfo `json:"cause,omitempty"`
}

// CauseInfo is the frozen conflict site of a transaction's last abort.
type CauseInfo struct {
	Seq    uint64         `json:"seq"`
	Kind   Kind           `json:"kind"`
	Table  layout.TableID `json:"table"`
	Key    layout.Key     `json:"key"`
	Mask   uint64         `json:"mask"`
	Holder uint64         `json:"holder"`
}

// Snapshot is an immutable copy of the recorder's state, the input to
// every view and exporter.
type Snapshot struct {
	Edges       []Edge    // emission order; merged: (at, partition, seq)
	Txns        []TxnInfo // begin order; merged: (start, partition, id)
	Dropped     uint64    // edges evicted from the ring
	TxnsDropped uint64    // transaction nodes evicted
}

// Snapshot copies the rings (oldest to newest). A nil recorder yields
// an empty snapshot. A partitioned recorder (see Shard) merges every
// child deterministically: edges order by (virtual time, partition,
// seq) — mirroring the window executor's mailbox merge — and
// transaction nodes by (start time, partition, id). Strided seqs and
// ids are kept as emitted so Cause references remain valid.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	if r.shards == nil {
		return r.snapshotLocal()
	}
	type tagEdge struct {
		part int
		Edge
	}
	type tagTxn struct {
		part int
		TxnInfo
	}
	locals := make([]*Snapshot, 0, 1+len(r.shards))
	pids := make([]int, 0, 1+len(r.shards))
	locals = append(locals, r.snapshotLocal())
	pids = append(pids, -1)
	for i, c := range r.shards {
		locals = append(locals, c.snapshotLocal())
		pids = append(pids, i)
	}
	out := &Snapshot{}
	var edges []tagEdge
	var txns []tagTxn
	for k, s := range locals {
		out.Dropped += s.Dropped
		out.TxnsDropped += s.TxnsDropped
		for _, e := range s.Edges {
			edges = append(edges, tagEdge{pids[k], e})
		}
		for _, t := range s.Txns {
			txns = append(txns, tagTxn{pids[k], t})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := &edges[i], &edges[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.Seq < b.Seq
	})
	sort.Slice(txns, func(i, j int) bool {
		a, b := &txns[i], &txns[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.ID < b.ID
	})
	out.Edges = make([]Edge, len(edges))
	for i := range edges {
		out.Edges[i] = edges[i].Edge
	}
	out.Txns = make([]TxnInfo, len(txns))
	for i := range txns {
		out.Txns[i] = txns[i].TxnInfo
	}
	return out
}

// snapshotLocal copies one recorder's own rings, oldest to newest.
func (r *Recorder) snapshotLocal() *Snapshot {
	s := &Snapshot{}
	s.Dropped = r.dropped
	s.TxnsDropped = r.tdropped
	s.Edges = make([]Edge, 0, len(r.edges))
	if r.full {
		s.Edges = append(s.Edges, r.edges[r.head:]...)
		s.Edges = append(s.Edges, r.edges[:r.head]...)
	} else {
		s.Edges = append(s.Edges, r.edges...)
	}
	s.Txns = make([]TxnInfo, 0, len(r.txns))
	appendTxn := func(t *Txn) {
		ti := TxnInfo{ID: t.ID, Label: t.Label, Coord: t.Coord, Attempt: t.Attempt,
			Start: t.Start, End: t.End, State: t.State, Reason: t.Reason, Aborts: t.Aborts}
		if t.CauseSeq != 0 {
			ti.Cause = &CauseInfo{Seq: t.CauseSeq, Kind: t.CauseKind,
				Table: t.CauseTable, Key: t.CauseKey, Mask: t.CauseMask, Holder: t.Holder}
		}
		s.Txns = append(s.Txns, ti)
	}
	if r.tfull {
		for _, t := range r.txns[r.thead:] {
			appendTxn(t)
		}
		for _, t := range r.txns[:r.thead] {
			appendTxn(t)
		}
	} else {
		for _, t := range r.txns {
			appendTxn(t)
		}
	}
	return s
}

// Txn looks up a node by id (nil when unknown or evicted).
func (s *Snapshot) Txn(id uint64) *TxnInfo {
	for i := range s.Txns {
		if s.Txns[i].ID == id {
			return &s.Txns[i]
		}
	}
	return nil
}
