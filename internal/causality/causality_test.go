package causality

import (
	"bytes"
	"strings"
	"testing"

	"crest/internal/layout"
	"crest/internal/sim"
)

// inProc runs fn inside one simulated process and drives the
// environment to completion.
func inProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Spawn("test", fn)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	inProc(t, func(p *sim.Proc) {
		tx := r.Begin(p, 1, "txn", nil)
		if tx != nil {
			t.Errorf("nil recorder returned txn %v", tx)
		}
		if got := IDOf(p); got != 0 {
			t.Errorf("IDOf on nil ctx = %d, want 0", got)
		}
		r.OnLock(p, 1, 2, 0b11)
		r.LockFail(p, 1, 2, 0b11)
		r.ValidationFail(p, 1, 2, 0b1, 5)
		r.DependencyWait(p, 7, sim.Microsecond)
		r.LocalWait(p, 1, 2, 7, sim.Microsecond)
		r.OnUpdate(7, 1, 2, 9, 0b1)
		r.OnUnlock(1, 2, 0b11)
		r.Abort(p.Now(), tx, "lock-conflict")
		r.Commit(p.Now(), tx)
	})
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("nil recorder has state: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap.Edges) != 0 || len(snap.Txns) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestRetryReusesNodeAndFreezesCause(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		key := new(int)
		holderKey := new(int)

		// A holder transaction takes cells 0b01 of (1, 42) and installs
		// a version so both attribution paths have something to find.
		h := r.Begin(p, 9, "holder", holderKey)
		r.OnLock(p, 1, 42, 0b01)
		r.OnUpdate(h.ID, 1, 42, 100, 0b01)

		t1 := r.Begin(p, 7, "transfer", key)
		if t1.Attempt != 1 {
			t.Fatalf("first attempt = %d, want 1", t1.Attempt)
		}
		r.LockFail(p, 1, 42, 0b01)
		r.Abort(p.Now(), t1, "lock-conflict")
		if t1.CauseSeq == 0 || t1.CauseKind != KindLockFail || t1.Holder != h.ID {
			t.Fatalf("cause not frozen to the lock-fail edge: %+v", t1)
		}
		if t1.CauseTable != 1 || t1.CauseKey != 42 || t1.CauseMask != 0b01 {
			t.Fatalf("cause site wrong: %+v", t1)
		}

		t2 := r.Begin(p, 7, "transfer", key)
		if t2 != t1 {
			t.Fatal("retry of the same txn created a new node")
		}
		if t2.Attempt != 2 {
			t.Fatalf("retry attempt = %d, want 2", t2.Attempt)
		}
		r.Commit(p.Now(), t2)
		if t2.State != StateCommitted || t2.Aborts != 1 {
			t.Fatalf("commit after abort: state=%v aborts=%d", t2.State, t2.Aborts)
		}

		t3 := r.Begin(p, 7, "transfer", key)
		if t3 == t1 {
			t.Fatal("new txn after commit reused the finished node")
		}
	})
	snap := r.Snapshot()
	tr := snap.Txn(2) // the transfer node (holder was id 1)
	if tr == nil || tr.Cause == nil {
		t.Fatalf("snapshot lost the cause: %+v", tr)
	}
	if tr.Cause.Kind != KindLockFail || tr.Cause.Holder != 1 {
		t.Fatalf("snapshot cause = %+v, want lock-fail against txn 1", tr.Cause)
	}
}

// TestAbortWithoutEdgeClearsCause: an abort whose attempt recorded no
// conflict edge (e.g. a reverse-order abort) must not inherit the
// previous attempt's cause.
func TestAbortWithoutEdgeClearsCause(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		key := new(int)
		tx := r.Begin(p, 1, "t", key)
		r.LockFail(p, 1, 5, 0b1)
		r.Abort(p.Now(), tx, "lock-conflict")
		if tx.CauseSeq == 0 {
			t.Fatal("first abort did not freeze a cause")
		}
		r.Begin(p, 1, "t", key) // attempt 2: no edges recorded
		r.Abort(p.Now(), tx, "reverse-order")
		if tx.CauseSeq != 0 {
			t.Fatalf("stale cause survived an edge-free abort: %+v", tx)
		}
	})
}

func TestHolderAttributionMaskSemantics(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		a := r.Begin(p, 1, "a", new(int))
		r.OnLock(p, 3, 10, 0b011)
		b := r.Begin(p, 2, "b", new(int))
		r.OnLock(p, 3, 10, 0b100)

		if got := r.holderOf(3, 10, 0b010); got != a.ID {
			t.Fatalf("holder of cell 1 = %d, want %d", got, a.ID)
		}
		if got := r.holderOf(3, 10, 0b100); got != b.ID {
			t.Fatalf("holder of cell 2 = %d, want %d", got, b.ID)
		}
		if got := r.holderOf(3, 10, 0b1000); got != 0 {
			t.Fatalf("holder of free cell = %d, want 0", got)
		}
		// mask 0 queries (record-level conflict) match any holder;
		// oldest wins.
		if got := r.holderOf(3, 10, 0); got != a.ID {
			t.Fatalf("record-level holder = %d, want oldest %d", got, a.ID)
		}

		// Partial unlock subtracts bits; the holder survives on the rest.
		r.OnUnlock(3, 10, 0b001)
		if got := r.holderOf(3, 10, 0b010); got != a.ID {
			t.Fatalf("holder lost after partial unlock: %d", got)
		}
		r.OnUnlock(3, 10, 0b010)
		if got := r.holderOf(3, 10, 0b011); got != 0 {
			t.Fatalf("holder survived full unlock: %d", got)
		}
		if got := r.holderOf(3, 10, 0b100); got != b.ID {
			t.Fatalf("unlock of a dropped the other holder: %d", got)
		}

		// A record-level holding (mask 0) matches every query, and a
		// record-level unlock clears everyone.
		c := r.Begin(p, 3, "c", new(int))
		r.OnLock(p, 9, 1, 0)
		if got := r.holderOf(9, 1, 0b1000); got != c.ID {
			t.Fatalf("record-level holding missed: %d", got)
		}
		r.OnUnlock(9, 1, 0)
		if got := r.holderOf(9, 1, 0); got != 0 {
			t.Fatalf("record-level unlock left holder %d", got)
		}
	})
}

// TestUpdaterRingAgesOut mirrors engine.ConflictTracker's 16-entry
// window: a validation failure against a version still inside the
// window attributes the newest updater past it; one older than the
// window is conservatively unattributed (Holder 0).
func TestUpdaterRingAgesOut(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		// 20 updates, versions 1..20 from ids 101..120: the ring keeps
		// only versions 5..20.
		for v := uint64(1); v <= 20; v++ {
			r.OnUpdate(100+v, 2, 8, v, 0b1)
		}
		if got := r.updaterSince(2, 8, 10); got != 120 {
			t.Fatalf("updater past v10 = %d, want newest 120", got)
		}
		if got := r.updaterSince(2, 8, 19); got != 120 {
			t.Fatalf("updater past v19 = %d, want 120", got)
		}
		// Everything recorded is <= 20: nothing newer exists.
		if got := r.updaterSince(2, 8, 20); got != 0 {
			t.Fatalf("updater past v20 = %d, want 0", got)
		}

		// A reader whose version predates the whole surviving ring still
		// attributes (some entry is newer), but on a record whose ring
		// holds only writes at or before the read version, attribution
		// conservatively fails — exactly the ConflictTracker boundary.
		tx := r.Begin(p, 1, "reader", new(int))
		r.ValidationFail(p, 2, 8, 0b1, 20)
		if tx.cHolder != 0 {
			t.Fatalf("aged-out validation attributed holder %d, want 0", tx.cHolder)
		}
		r.ValidationFail(p, 2, 8, 0b1, 3)
		if tx.cHolder != 120 {
			t.Fatalf("in-window validation holder = %d, want 120", tx.cHolder)
		}
	})
}

func TestEdgeRingEvictsOldest(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4})
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, "t", new(int))
		for i := 0; i < 10; i++ {
			r.LockFail(p, 1, layout.Key(i), 1)
		}
	})
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	if snap.Dropped != 6 {
		t.Fatalf("snapshot dropped = %d, want 6", snap.Dropped)
	}
	for i, e := range snap.Edges {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("edge %d has seq %d, want %d (oldest-to-newest)", i, e.Seq, want)
		}
		if want := layout.Key(6 + i); e.Key != want {
			t.Fatalf("edge %d key %d, want %d", i, e.Key, want)
		}
	}
}

// chainSnapshot is the hand-built scenario the report tests share:
// T412 aborted at validation on (3, 17, cell 2), updated by T398,
// which waited 14µs on T371.
func chainSnapshot() *Snapshot {
	return &Snapshot{
		Txns: []TxnInfo{
			{ID: 371, Label: "Audit", State: StateCommitted, End: 80},
			{ID: 398, Label: "Deposit", State: StateCommitted, End: 90},
			{ID: 412, Label: "Pay", State: StateAborted, Reason: "validation",
				Attempt: 1, Aborts: 1, End: 100,
				Cause: &CauseInfo{Seq: 2, Kind: KindValidation, Table: 3, Key: 17, Mask: 1 << 2, Holder: 398}},
		},
		Edges: []Edge{
			{Seq: 1, At: 40, Kind: KindLocalWait, Waiter: 398, Holder: 371,
				Table: 3, Key: 17, Wait: 14 * sim.Microsecond},
			{Seq: 2, At: 95, Kind: KindValidation, Waiter: 412, Holder: 398,
				Table: 3, Key: 17, Mask: 1 << 2},
		},
	}
}

func TestBlameChainFollowsCauseThenDominantWait(t *testing.T) {
	s := chainSnapshot()
	hops := s.BlameChain(412, 0)
	if len(hops) != 2 {
		t.Fatalf("chain length = %d, want 2: %+v", len(hops), hops)
	}
	if hops[0].Txn != 412 || hops[0].Holder != 398 || hops[0].Kind != KindValidation {
		t.Fatalf("hop 0 = %+v", hops[0])
	}
	if hops[1].Txn != 398 || hops[1].Holder != 371 || hops[1].Kind != KindLocalWait {
		t.Fatalf("hop 1 = %+v", hops[1])
	}
	if hops[1].Wait != 14*sim.Microsecond {
		t.Fatalf("hop 1 wait = %v, want 14µs", hops[1].Wait)
	}

	var buf bytes.Buffer
	if err := WriteBlame(&buf, s, 412); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"T412 [Pay] aborted",
		"failed validation on (table 3, key 17, cell {2}); updated by T398 [Deposit]",
		"T398 [Deposit] waited 14.000µs on (table 3, key 17, record) held by T371 [Audit]",
		"T371 [Audit] committed at 80",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("blame output missing %q:\n%s", want, out)
		}
	}

	if err := WriteBlame(&buf, s, 999); err == nil {
		t.Fatal("unknown txn did not error")
	}
}

func TestBlameChainStopsOnCycle(t *testing.T) {
	s := &Snapshot{
		Txns: []TxnInfo{
			{ID: 1, Label: "a", State: StateAborted, Reason: "lock-conflict", Attempt: 1, Aborts: 1,
				Cause: &CauseInfo{Seq: 1, Kind: KindLockFail, Table: 1, Key: 1, Mask: 1, Holder: 2}},
			{ID: 2, Label: "b", State: StateCommitted},
		},
		Edges: []Edge{
			{Seq: 1, Kind: KindLockFail, Waiter: 1, Holder: 2, Table: 1, Key: 1, Mask: 1},
			{Seq: 2, Kind: KindLockFail, Waiter: 2, Holder: 1, Table: 1, Key: 1, Mask: 1},
		},
	}
	hops := s.BlameChain(1, 0)
	if len(hops) != 2 {
		t.Fatalf("cyclic chain length = %d, want 2 (stop on revisit): %+v", len(hops), hops)
	}
	if hops[1].Holder != 1 {
		t.Fatalf("hop 1 = %+v", hops[1])
	}
}

func TestGraphAggregatesAndFindsCycles(t *testing.T) {
	s := &Snapshot{
		Txns: []TxnInfo{
			{ID: 1, Label: "A", State: StateCommitted, Aborts: 1,
				Cause: &CauseInfo{Seq: 1, Kind: KindLockFail, Table: 1, Key: 5, Mask: 0b1, Holder: 2}},
			{ID: 2, Label: "B", State: StateCommitted},
			{ID: 3, Label: "A", State: StateAborted, Reason: "lock-conflict", Aborts: 2},
		},
		Edges: []Edge{
			{Seq: 1, Kind: KindLockFail, Waiter: 1, Holder: 2, Table: 1, Key: 5, Mask: 0b1},
			{Seq: 2, Kind: KindLockFail, Waiter: 1, Holder: 2, Table: 1, Key: 5, Mask: 0b1},
			{Seq: 3, Kind: KindLocalWait, Waiter: 2, Holder: 1, Table: 1, Key: 5, Wait: sim.Microsecond},
			{Seq: 4, Kind: KindValidation, Waiter: 3, Holder: 0, Table: 1, Key: 5, Mask: 0b10},
		},
	}
	g := s.Graph()

	if len(g.Nodes) != 2 || g.Nodes[0].Label != "A" || g.Nodes[1].Label != "B" {
		t.Fatalf("nodes = %+v", g.Nodes)
	}
	if g.Nodes[0].Txns != 2 || g.Nodes[0].Aborts != 3 || g.Nodes[0].Commits != 1 {
		t.Fatalf("label A aggregate = %+v", g.Nodes[0])
	}

	var ab *GraphEdge
	for i := range g.Edges {
		if g.Edges[i].From == "A" && g.Edges[i].To == "B" && g.Edges[i].Kind == KindLockFail {
			ab = &g.Edges[i]
		}
	}
	if ab == nil || ab.Count != 2 {
		t.Fatalf("A->B lock-fail edge = %+v (edges %+v)", ab, g.Edges)
	}

	// The unattributed validation lands on "?" and must not join cycles.
	foundUnattr := false
	for _, e := range g.Edges {
		if e.To == unattributedLabel && e.Kind == KindValidation {
			foundUnattr = true
		}
	}
	if !foundUnattr {
		t.Fatalf("missing unattributed edge: %+v", g.Edges)
	}

	if len(g.Cycles) != 1 || len(g.Cycles[0]) != 2 || g.Cycles[0][0] != "A" || g.Cycles[0][1] != "B" {
		t.Fatalf("cycles = %+v, want [[A B]]", g.Cycles)
	}

	// Hotspot ranking: (1,5,cell 0) has 3 edge hits + 1 abort cause.
	if len(g.Hotspots) == 0 {
		t.Fatal("no hotspots")
	}
	top := g.Hotspots[0]
	if top.Table != 1 || top.Key != 5 || top.Cell != 0 || top.Aborts != 1 {
		t.Fatalf("top hotspot = %+v", top)
	}
}

func TestJSONRoundTripsByteEqual(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		h := r.Begin(p, 1, "holder", new(int))
		r.OnLock(p, 1, 5, 0b1)
		r.OnUpdate(h.ID, 1, 5, 50, 0b1)
		tx := r.Begin(p, 2, "loser", new(int))
		r.LockFail(p, 1, 5, 0b1)
		r.Abort(p.Now(), tx, "lock-conflict")
		r.ValidationFail(p, 1, 5, 0b1, 10)
		r.Abort(p.Now(), tx, "validation")
		r.Commit(p.Now(), tx)
		r.Commit(p.Now(), h)
	})
	snap := r.Snapshot()

	var first bytes.Buffer
	if err := WriteJSON(&first, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteJSON(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("JSON round trip not byte-equal:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}

	if _, err := ReadJSON(strings.NewReader(`{"schema":"crest-why/v0","txns":[],"edges":[]}`)); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDOTOutputIsStructurallyValid(t *testing.T) {
	s := chainSnapshot()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph crest_why {\n") {
		t.Fatalf("missing digraph header:\n%s", out)
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Fatalf("missing closing brace:\n%s", out)
	}
	if n := strings.Count(out, "{") - strings.Count(out, "}"); n != 0 {
		t.Fatalf("unbalanced braces (%+d):\n%s", n, out)
	}
	if strings.Count(out, `"`)%2 != 0 {
		t.Fatalf("unbalanced quotes:\n%s", out)
	}
	for _, want := range []string{
		`"Pay" [label="Pay\n1 txns, 1 aborted attempts"];`,
		`"Pay" -> "Deposit" [label="validation ×1", color=darkorange];`,
		`"Deposit" -> "Audit" [label="local-wait ×1, 14.000µs", color=gray40];`,
		`"?" [label="unattributed", style=dashed];`,
		"// hotspot 1:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Every edge statement stays inside the graph block and names
	// quoted endpoints.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "->") && !strings.Contains(line, "//") {
			if !strings.HasPrefix(strings.TrimSpace(line), `"`) || !strings.HasSuffix(line, ";") {
				t.Fatalf("malformed edge line %q", line)
			}
		}
	}
}

// TestEdgePathAllocatesNothingSteadyState is the hot-path guarantee:
// once the rings and per-record state are warm, recording an edge (or
// running with the recorder disabled) allocates nothing.
func TestEdgePathAllocatesNothingSteadyState(t *testing.T) {
	r := NewRecorder(Options{Capacity: 64})
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, "warm", new(int))
		// Warm-up: fill the edge ring so emit overwrites in place, touch
		// the record state so the map entry and holder slice exist, and
		// fill the update ring.
		for i := 0; i < 80; i++ {
			r.OnLock(p, 1, 7, 0b1)
			r.OnUpdate(uint64(i+1), 1, 7, uint64(i+1), 0b1)
			r.LockFail(p, 1, 7, 0b1)
			r.OnUnlock(1, 7, 0b1)
		}
		allocs := testing.AllocsPerRun(200, func() {
			r.OnLock(p, 1, 7, 0b1)
			r.LockFail(p, 1, 7, 0b1)
			r.ValidationFail(p, 1, 7, 0b1, 0)
			r.LocalWait(p, 1, 7, 3, sim.Microsecond)
			r.DependencyWait(p, 3, sim.Microsecond)
			r.OnUpdate(3, 1, 7, 99, 0b1)
			r.OnUnlock(1, 7, 0b1)
		})
		if allocs != 0 {
			t.Errorf("live recorder steady state allocates %.1f/op, want 0", allocs)
		}

		var nilRec *Recorder
		allocs = testing.AllocsPerRun(200, func() {
			nilRec.OnLock(p, 1, 7, 0b1)
			nilRec.LockFail(p, 1, 7, 0b1)
			nilRec.ValidationFail(p, 1, 7, 0b1, 0)
			nilRec.LocalWait(p, 1, 7, 3, sim.Microsecond)
			nilRec.DependencyWait(p, 3, sim.Microsecond)
			nilRec.OnUpdate(3, 1, 7, 99, 0b1)
			nilRec.OnUnlock(1, 7, 0b1)
		})
		if allocs != 0 {
			t.Errorf("nil recorder allocates %.1f/op, want 0", allocs)
		}
	})
}
