package causality

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SchemaVersion identifies the JSON layout of a serialized snapshot.
const SchemaVersion = "crest-why/v1"

// jsonDoc is the schema-versioned document: the full edge stream and
// transaction nodes (the round-tripping state) plus the aggregated
// graph, which WriteJSON derives deterministically for human and
// downstream consumers.
type jsonDoc struct {
	Schema      string    `json:"schema"`
	Dropped     uint64    `json:"dropped_edges"`
	TxnsDropped uint64    `json:"dropped_txns"`
	Txns        []TxnInfo `json:"txns"`
	Edges       []Edge    `json:"edges"`
	Graph       *Graph    `json:"graph"`
}

// WriteJSON serializes the snapshot as schema-versioned JSON
// (crest-why/v1). Output is deterministic: same-seed runs produce
// byte-equal documents.
func WriteJSON(w io.Writer, s *Snapshot) error {
	doc := jsonDoc{
		Schema:      SchemaVersion,
		Dropped:     s.Dropped,
		TxnsDropped: s.TxnsDropped,
		Txns:        s.Txns,
		Edges:       s.Edges,
		Graph:       s.Graph(),
	}
	if doc.Txns == nil {
		doc.Txns = []TxnInfo{}
	}
	if doc.Edges == nil {
		doc.Edges = []Edge{}
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSON parses a document written by WriteJSON, verifying its
// schema version. The derived graph is dropped; callers recompute it
// from the round-tripped edge stream.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var doc jsonDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("causality: snapshot schema %q, want %q", doc.Schema, SchemaVersion)
	}
	s := &Snapshot{Edges: doc.Edges, Txns: doc.Txns, Dropped: doc.Dropped, TxnsDropped: doc.TxnsDropped}
	if s.Edges == nil {
		s.Edges = []Edge{}
	}
	if s.Txns == nil {
		s.Txns = []TxnInfo{}
	}
	return s, nil
}

// dotColor styles the graph's edges per kind.
func dotColor(k Kind) string {
	switch k {
	case KindLockFail:
		return "firebrick"
	case KindValidation:
		return "darkorange"
	case KindDependency:
		return "steelblue"
	default: // KindLocalWait
		return "gray40"
	}
}

// dotEscape quotes a string for a double-quoted DOT ID.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// maxDOTHotspots bounds the hotspot table embedded in the DOT comment
// header.
const maxDOTHotspots = 10

// WriteDOT renders the snapshot's aggregated contention graph as
// Graphviz DOT: one node per workload label (with txn/abort counts),
// one edge per (waiter label, holder label, kind) with its count and
// total virtual wait, the top hotspots as comments, and any wait
// cycles flagged. Output is deterministic.
func WriteDOT(w io.Writer, s *Snapshot) error {
	g := s.Graph()
	var b strings.Builder
	b.WriteString("digraph crest_why {\n")
	b.WriteString("  // CREST contention dependency graph (crest-why)\n")
	for i, h := range g.Hotspots {
		if i >= maxDOTHotspots {
			break
		}
		cell := "record"
		if h.Cell >= 0 {
			cell = fmt.Sprintf("cell %d", h.Cell)
		}
		fmt.Fprintf(&b, "  // hotspot %d: table %d key %d %s — %d conflicts, %d aborts, %v waited\n",
			i+1, h.Table, h.Key, cell, h.Count, h.Aborts, h.TotalWait)
	}
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  \"%s\" [label=\"%s\\n%d txns, %d aborted attempts\"];\n",
			dotEscape(n.Label), dotEscape(n.Label), n.Txns, n.Aborts)
	}
	fmt.Fprintf(&b, "  \"%s\" [label=\"unattributed\", style=dashed];\n", unattributedLabel)
	for _, e := range g.Edges {
		label := fmt.Sprintf("%s ×%d", e.Kind, e.Count)
		if e.TotalWait > 0 {
			label += fmt.Sprintf(", %v", e.TotalWait)
		}
		fmt.Fprintf(&b, "  \"%s\" -> \"%s\" [label=\"%s\", color=%s];\n",
			dotEscape(e.From), dotEscape(e.To), dotEscape(label), dotColor(e.Kind))
	}
	for _, cyc := range g.Cycles {
		fmt.Fprintf(&b, "  // wait cycle: %s -> %s\n",
			strings.Join(cyc, " -> "), cyc[0])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
