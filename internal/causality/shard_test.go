package causality

import (
	"bytes"
	"testing"

	"crest/internal/sim"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// Shard is a no-op below two partitions and yields one stable child per
// partition above; misuse panics.
func TestShardIdentityAndMisuse(t *testing.T) {
	var nilR *Recorder
	if nilR.Shard(0, 4) != nil {
		t.Fatal("nil recorder shard is not nil")
	}
	r := NewRecorder(Options{Capacity: 16})
	if r.Shard(0, 1) != r {
		t.Fatal("parts=1 must return the receiver")
	}
	s1 := r.Shard(1, 3)
	if s1 == r || r.Shard(1, 3) != s1 {
		t.Fatal("children missing or not stable")
	}
	mustPanic(t, "Shard of a child", func() { s1.Shard(0, 3) })
	mustPanic(t, "inconsistent parts", func() { r.Shard(0, 2) })
}

// The merged snapshot interleaves the partition edge streams by
// (virtual time, partition) and keeps the strided per-partition edge
// seqs, so CauseSeq references recorded inside a partition stay valid
// after the merge without renumbering.
func TestShardMergeKeepsStridedSeqs(t *testing.T) {
	r := NewRecorder(Options{Capacity: 64})
	s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
	inProc(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			t1 := s1.Begin(p, 200, "b", new(int))
			t0 := s0.Begin(p, 100, "a", new(int))
			s1.LockFail(p, 1, 7, 0b1)
			s1.Abort(p.Now(), t1, "lock-conflict")
			s0.LockFail(p, 1, 8, 0b1)
			s0.Abort(p.Now(), t0, "lock-conflict")
			p.Sleep(sim.Microsecond)
		}
	})
	snap := r.Snapshot()
	if len(snap.Edges) != 6 {
		t.Fatalf("merged edges = %d, want 6", len(snap.Edges))
	}
	seen := map[uint64]bool{}
	for i, e := range snap.Edges {
		if i > 0 && e.At < snap.Edges[i-1].At {
			t.Fatalf("merged edges not time-ordered at %d", i)
		}
		if seen[e.Seq] {
			t.Fatalf("edge seq %d not globally unique after the merge", e.Seq)
		}
		seen[e.Seq] = true
	}
	// Within one tick partition 0 sorts first; strided seqs are odd on
	// partition 0 and even on partition 1.
	for i := 0; i < 6; i += 2 {
		if snap.Edges[i].Seq%2 != 1 || snap.Edges[i+1].Seq%2 != 0 {
			t.Fatalf("tick %d: partition order wrong: seqs %d, %d",
				i/2, snap.Edges[i].Seq, snap.Edges[i+1].Seq)
		}
	}
	// Txn ids stride the same way, and the merged txn table holds all 6.
	if len(snap.Txns) != 6 {
		t.Fatalf("merged txns = %d, want 6", len(snap.Txns))
	}
}

// Two identical sharded runs export byte-identical crest-why documents.
func TestShardMergeDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRecorder(Options{Capacity: 64})
		s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
		inProc(t, func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				t0 := s0.Begin(p, 100, "a", new(int))
				t1 := s1.Begin(p, 200, "b", new(int))
				s0.OnLock(p, 1, 7, 0b1)
				s1.LockFail(p, 1, 7, 0b1)
				s1.Abort(p.Now(), t1, "lock-conflict")
				s0.OnUnlock(1, 7, 0b1)
				s0.Commit(p.Now(), t0)
				p.Sleep(sim.Microsecond)
			}
		})
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical sharded runs exported different documents")
	}
}

// The shard child's edge path is the recorder hot path of a partitioned
// run; once its rings are warm it must not allocate.
func TestShardEdgePathZeroAlloc(t *testing.T) {
	r := NewRecorder(Options{Capacity: 64})
	s := r.Shard(0, 2)
	inProc(t, func(p *sim.Proc) {
		s.Begin(p, 1, "warm", new(int))
		for i := 0; i < 80; i++ {
			s.OnLock(p, 1, 7, 0b1)
			s.OnUpdate(uint64(i+1), 1, 7, uint64(i+1), 0b1)
			s.LockFail(p, 1, 7, 0b1)
			s.OnUnlock(1, 7, 0b1)
		}
		if avg := testing.AllocsPerRun(200, func() {
			s.OnLock(p, 1, 7, 0b1)
			s.LockFail(p, 1, 7, 0b1)
			s.LocalWait(p, 1, 7, 3, sim.Microsecond)
			s.OnUnlock(1, 7, 0b1)
		}); avg != 0 {
			t.Errorf("sharded edge path allocates %v/op, want 0", avg)
		}
	})
}
