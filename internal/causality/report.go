package causality

import (
	"fmt"
	"io"
	"sort"

	"crest/internal/layout"
	"crest/internal/sim"
)

// Hop is one link of a blame chain: Txn failed against or waited on
// Holder. The first hop of a chain is the queried transaction's frozen
// abort cause; subsequent hops follow each holder's dominant wait (the
// edge it spent the most virtual time blocked on).
type Hop struct {
	Txn         uint64
	Label       string
	Kind        Kind
	Table       layout.TableID
	Key         layout.Key
	Mask        uint64
	Wait        sim.Duration
	Holder      uint64
	HolderLabel string
}

// maxChainDepth bounds a blame chain when the caller does not.
const maxChainDepth = 8

// BlameChain follows the causal path out of transaction id: its abort
// cause, then the holder's own dominant wait, and so on until a
// transaction with no recorded waits, an unattributed holder, a cycle,
// or maxDepth hops (maxChainDepth when <= 0). It returns nil when the
// transaction is unknown or recorded no conflict.
func (s *Snapshot) BlameChain(id uint64, maxDepth int) []Hop {
	if maxDepth <= 0 {
		maxDepth = maxChainDepth
	}
	var hops []Hop
	seen := map[uint64]bool{}
	cur := id
	for len(hops) < maxDepth && cur != 0 && !seen[cur] {
		seen[cur] = true
		node := s.Txn(cur)
		hop, ok := s.hopFor(cur, node, len(hops) == 0)
		if !ok {
			break
		}
		if node != nil {
			hop.Label = node.Label
		}
		if h := s.Txn(hop.Holder); h != nil {
			hop.HolderLabel = h.Label
		}
		hops = append(hops, hop)
		cur = hop.Holder
	}
	return hops
}

// hopFor picks the edge that best explains txn id. The queried
// transaction (first) uses its frozen abort cause when one exists;
// every transaction falls back to its dominant edge — maximum virtual
// wait, newest sequence on ties.
func (s *Snapshot) hopFor(id uint64, node *TxnInfo, first bool) (Hop, bool) {
	if first && node != nil && node.Cause != nil {
		c := node.Cause
		h := Hop{Txn: id, Kind: c.Kind, Table: c.Table, Key: c.Key, Mask: c.Mask, Holder: c.Holder}
		for i := range s.Edges {
			if s.Edges[i].Seq == c.Seq {
				h.Wait = s.Edges[i].Wait
				break
			}
		}
		return h, true
	}
	best := -1
	for i := range s.Edges {
		e := &s.Edges[i]
		if e.Waiter != id {
			continue
		}
		if best < 0 || e.Wait > s.Edges[best].Wait ||
			(e.Wait == s.Edges[best].Wait && e.Seq > s.Edges[best].Seq) {
			best = i
		}
	}
	if best < 0 {
		return Hop{}, false
	}
	e := &s.Edges[best]
	return Hop{Txn: id, Kind: e.Kind, Table: e.Table, Key: e.Key, Mask: e.Mask,
		Wait: e.Wait, Holder: e.Holder}, true
}

// cellSet renders a cell mask ("cells {0,2}", "record" for mask 0).
func cellSet(mask uint64) string {
	if mask == 0 {
		return "record"
	}
	out := "cell"
	n := 0
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			n++
		}
	}
	if n > 1 {
		out += "s"
	}
	out += " {"
	firstBit := true
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !firstBit {
			out += ","
		}
		out += fmt.Sprint(i)
		firstBit = false
	}
	return out + "}"
}

// txnRef renders "T42 [label]" ("T?" for an unattributed holder).
func txnRef(id uint64, label string) string {
	if id == 0 {
		return "T? (unattributed: updater aged out of the 16-entry ring)"
	}
	if label == "" {
		return fmt.Sprintf("T%d", id)
	}
	return fmt.Sprintf("T%d [%s]", id, label)
}

// WriteBlame renders transaction id's blame chain as indented text,
// one hop per line with per-hop virtual durations. It errors when the
// transaction is unknown.
func WriteBlame(w io.Writer, s *Snapshot, id uint64) error {
	node := s.Txn(id)
	if node == nil {
		return fmt.Errorf("causality: unknown txn %d (recorded %d txns, %d evicted)",
			id, len(s.Txns), s.TxnsDropped)
	}
	switch {
	case node.State == StateCommitted && node.Aborts > 0:
		fmt.Fprintf(w, "%s committed at %v after %d aborted attempt(s) (last: %s)\n",
			txnRef(id, node.Label), node.End, node.Aborts, node.Reason)
	case node.State == StateCommitted:
		fmt.Fprintf(w, "%s committed at %v with no recorded conflicts\n",
			txnRef(id, node.Label), node.End)
		return nil
	case node.State == StateAborted:
		fmt.Fprintf(w, "%s aborted at %v on attempt %d (%s)\n",
			txnRef(id, node.Label), node.End, node.Attempt, node.Reason)
	default:
		fmt.Fprintf(w, "%s still pending at the snapshot\n", txnRef(id, node.Label))
	}
	hops := s.BlameChain(id, 0)
	if len(hops) == 0 {
		fmt.Fprintf(w, "  no conflict edges recorded for this transaction\n")
		return nil
	}
	for i, h := range hops {
		indent := ""
		for j := 0; j < i; j++ {
			indent += "  "
		}
		fmt.Fprintf(w, "  %s└─ %s\n", indent, hopLine(h))
	}
	last := hops[len(hops)-1]
	if end := s.Txn(last.Holder); end != nil {
		indent := ""
		for j := 0; j < len(hops); j++ {
			indent += "  "
		}
		switch end.State {
		case StateCommitted:
			fmt.Fprintf(w, "  %s└─ %s committed at %v\n", indent, txnRef(end.ID, end.Label), end.End)
		case StateAborted:
			fmt.Fprintf(w, "  %s└─ %s itself aborted at %v (%s)\n",
				indent, txnRef(end.ID, end.Label), end.End, end.Reason)
		}
	}
	return nil
}

// hopLine renders one hop as prose.
func hopLine(h Hop) string {
	where := ""
	if h.Kind != KindDependency {
		where = fmt.Sprintf(" on (table %d, key %d, %s)", h.Table, h.Key, cellSet(h.Mask))
	}
	switch h.Kind {
	case KindValidation:
		return fmt.Sprintf("%s failed validation%s; updated by %s",
			txnRef(h.Txn, h.Label), where, txnRef(h.Holder, h.HolderLabel))
	case KindLockFail:
		return fmt.Sprintf("%s lost the lock CAS%s against %s",
			txnRef(h.Txn, h.Label), where, txnRef(h.Holder, h.HolderLabel))
	case KindDependency:
		return fmt.Sprintf("%s waited %v on local dependency %s",
			txnRef(h.Txn, h.Label), h.Wait, txnRef(h.Holder, h.HolderLabel))
	default: // KindLocalWait
		return fmt.Sprintf("%s waited %v%s held by %s",
			txnRef(h.Txn, h.Label), h.Wait, where, txnRef(h.Holder, h.HolderLabel))
	}
}

// GraphNode aggregates the transactions sharing one workload label.
type GraphNode struct {
	Label   string `json:"label"`
	Txns    int    `json:"txns"`
	Commits int    `json:"commits"`
	Aborts  int    `json:"aborts"` // aborted attempts across the label's txns
}

// GraphEdge aggregates every edge between two labels of one kind.
type GraphEdge struct {
	From      string       `json:"from"` // waiter label
	To        string       `json:"to"`   // holder label, "?" when unattributed
	Kind      Kind         `json:"kind"`
	Count     uint64       `json:"count"`
	TotalWait sim.Duration `json:"total_wait"`
}

// Hotspot ranks one cell by the contention recorded against it.
type Hotspot struct {
	Table     layout.TableID `json:"table"`
	Key       layout.Key     `json:"key"`
	Cell      int            `json:"cell"` // -1 = record-level
	Count     uint64         `json:"count"`
	Aborts    uint64         `json:"aborts"` // last-abort causes frozen on this cell
	TotalWait sim.Duration   `json:"total_wait"`
}

// Graph is the aggregated contention dependency graph: who waits on
// whom (by workload label), where (hotspot ranking), and whether the
// waiting is cyclic.
type Graph struct {
	Nodes    []GraphNode `json:"nodes"`    // sorted by label
	Edges    []GraphEdge `json:"edges"`    // sorted by (from, to, kind)
	Hotspots []Hotspot   `json:"hotspots"` // most contended first
	Cycles   [][]string  `json:"cycles"`   // label cycles among wait edges
}

// unattributedLabel names the graph node standing in for holders the
// recorder could not identify.
const unattributedLabel = "?"

// Graph aggregates the snapshot. All orderings are deterministic.
func (s *Snapshot) Graph() *Graph {
	label := map[uint64]string{}
	nodes := map[string]*GraphNode{}
	for i := range s.Txns {
		t := &s.Txns[i]
		label[t.ID] = t.Label
		n := nodes[t.Label]
		if n == nil {
			n = &GraphNode{Label: t.Label}
			nodes[t.Label] = n
		}
		n.Txns++
		if t.State == StateCommitted {
			n.Commits++
		}
		n.Aborts += t.Aborts
	}
	labelOf := func(id uint64) string {
		if id == 0 {
			return unattributedLabel
		}
		if l, ok := label[id]; ok {
			return l
		}
		return unattributedLabel
	}

	type edgeKey struct {
		from, to string
		kind     Kind
	}
	edges := map[edgeKey]*GraphEdge{}
	type hotKey struct {
		table layout.TableID
		key   layout.Key
		cell  int
	}
	hots := map[hotKey]*Hotspot{}
	bump := func(k hotKey) *Hotspot {
		h := hots[k]
		if h == nil {
			h = &Hotspot{Table: k.table, Key: k.key, Cell: k.cell}
			hots[k] = h
		}
		return h
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		k := edgeKey{labelOf(e.Waiter), labelOf(e.Holder), e.Kind}
		ge := edges[k]
		if ge == nil {
			ge = &GraphEdge{From: k.from, To: k.to, Kind: k.kind}
			edges[k] = ge
		}
		ge.Count++
		ge.TotalWait += e.Wait
		if e.Kind == KindDependency {
			continue // no record identity on dependency edges
		}
		if e.Mask == 0 {
			bump(hotKey{e.Table, e.Key, -1}).bumpCount(e.Wait)
			continue
		}
		for m := e.Mask; m != 0; m &= m - 1 {
			bump(hotKey{e.Table, e.Key, bitIndex(m & -m)}).bumpCount(e.Wait)
		}
	}
	for i := range s.Txns {
		t := &s.Txns[i]
		if t.Cause == nil {
			continue
		}
		if t.Cause.Mask == 0 {
			bump(hotKey{t.Cause.Table, t.Cause.Key, -1}).Aborts++
			continue
		}
		for m := t.Cause.Mask; m != 0; m &= m - 1 {
			bump(hotKey{t.Cause.Table, t.Cause.Key, bitIndex(m & -m)}).Aborts++
		}
	}

	g := &Graph{}
	for _, n := range nodes {
		g.Nodes = append(g.Nodes, *n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Label < g.Nodes[j].Label })
	for _, e := range edges {
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := &g.Edges[i], &g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
	for _, h := range hots {
		g.Hotspots = append(g.Hotspots, *h)
	}
	sort.Slice(g.Hotspots, func(i, j int) bool {
		a, b := &g.Hotspots[i], &g.Hotspots[j]
		if a.Count+a.Aborts != b.Count+b.Aborts {
			return a.Count+a.Aborts > b.Count+b.Aborts
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Cell < b.Cell
	})
	g.Cycles = findCycles(g.Edges)
	return g
}

func (h *Hotspot) bumpCount(wait sim.Duration) {
	h.Count++
	h.TotalWait += wait
}

// bitIndex returns the index of the single set bit b.
func bitIndex(b uint64) int {
	i := 0
	for b > 1 {
		b >>= 1
		i++
	}
	return i
}

// maxCycles bounds the wait-cycle report.
const maxCycles = 16

// findCycles detects elementary label cycles among the aggregated
// edges (the unattributed node is excluded — it is a sink, not a
// transaction). Each cycle is rotated to start at its smallest label
// and reported once, in deterministic order.
func findCycles(edges []GraphEdge) [][]string {
	adj := map[string][]string{}
	for _, e := range edges {
		if e.From == unattributedLabel || e.To == unattributedLabel {
			continue
		}
		dup := false
		for _, t := range adj[e.From] {
			if t == e.To {
				dup = true
				break
			}
		}
		if !dup {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	starts := make([]string, 0, len(adj))
	for l := range adj {
		starts = append(starts, l)
	}
	sort.Strings(starts)
	for _, l := range starts {
		sort.Strings(adj[l])
	}

	seen := map[string]bool{}
	var cycles [][]string
	var path []string
	onPath := map[string]bool{}
	var dfs func(node string)
	dfs = func(node string) {
		if len(cycles) >= maxCycles {
			return
		}
		path = append(path, node)
		onPath[node] = true
		for _, next := range adj[node] {
			if onPath[next] {
				// Rotate the cycle to start at its smallest label.
				start := -1
				for i, l := range path {
					if l == next {
						start = i
						break
					}
				}
				cyc := append([]string(nil), path[start:]...)
				min := 0
				for i := range cyc {
					if cyc[i] < cyc[min] {
						min = i
					}
				}
				rot := append(append([]string(nil), cyc[min:]...), cyc[:min]...)
				key := fmt.Sprint(rot)
				if !seen[key] {
					seen[key] = true
					cycles = append(cycles, rot)
				}
				continue
			}
			dfs(next)
		}
		onPath[node] = false
		path = path[:len(path)-1]
	}
	for _, l := range starts {
		dfs(l)
	}
	sort.Slice(cycles, func(i, j int) bool {
		a, b := cycles[i], cycles[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return cycles
}
