package trace

import (
	"bytes"
	"testing"

	"crest/internal/sim"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// Shard is a no-op below two partitions and yields one stable child per
// partition above; misuse panics.
func TestShardIdentityAndMisuse(t *testing.T) {
	var nilR *Recorder
	if nilR.Shard(0, 4) != nil {
		t.Fatal("nil recorder shard is not nil")
	}
	r := NewRecorder(16)
	if r.Shard(0, 1) != r {
		t.Fatal("parts=1 must return the receiver")
	}
	s1 := r.Shard(1, 3)
	if s1 == r || r.Shard(1, 3) != s1 {
		t.Fatal("children missing or not stable")
	}
	mustPanic(t, "Shard of a child", func() { s1.Shard(0, 3) })
	mustPanic(t, "inconsistent parts", func() { r.Shard(0, 2) })
}

// The merged snapshot interleaves the partition streams by virtual
// time with partition order breaking ties — the same order the window
// executor's mailbox merge imposes on cross-partition messages — and
// span IDs stay globally unique (strided per partition) so no
// renumbering happens at merge time.
func TestShardMergeOrdersByTimeThenPartition(t *testing.T) {
	r := NewRecorder(64)
	s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
	inProc(t, func(p *sim.Proc) {
		// Partition 1 emits first at every timestamp; the merge must
		// still put partition 0's events first within each tick.
		for i := 0; i < 3; i++ {
			sp1 := s1.StartSpan(p, 200, "b", new(int))
			sp0 := s0.StartSpan(p, 100, "a", new(int))
			s1.Commit(p.Now(), sp1)
			s0.Commit(p.Now(), sp0)
			p.Sleep(sim.Microsecond)
		}
	})
	if r.Len() != 12 {
		t.Fatalf("merged length = %d, want 12", r.Len())
	}
	snap := r.Snapshot()
	if len(snap.Events) != 12 {
		t.Fatalf("merged snapshot has %d events, want 12", len(snap.Events))
	}
	ids := map[uint64]bool{}
	for i := range snap.Events {
		e := &snap.Events[i]
		if i > 0 && e.At < snap.Events[i-1].At {
			t.Fatalf("merged events not time-ordered at %d: %v after %v", i, e.At, snap.Events[i-1].At)
		}
		if e.Kind == KindTxnBegin {
			if ids[e.Span] {
				t.Fatalf("span id %d not globally unique after the merge", e.Span)
			}
			ids[e.Span] = true
		}
	}
	// Within one timestamp all of partition 0 precedes partition 1:
	// strided span ids are odd on partition 0 (1, 3, 5, ...) and even
	// on partition 1.
	for i := 0; i < 12; i += 4 {
		tick := snap.Events[i : i+4]
		for j, want := range []uint64{1, 1, 0, 0} {
			if got := tick[j].Span % 2; got != want {
				t.Fatalf("tick %d position %d: span %d from wrong partition", i/4, j, tick[j].Span)
			}
		}
	}
}

// Hot-cell profiles fold across partitions: the same cell bumped on two
// shards reports summed conflict counts.
func TestShardHotProfileFolds(t *testing.T) {
	r := NewRecorder(64)
	s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
	inProc(t, func(p *sim.Proc) {
		sp0 := s0.StartSpan(p, 1, "a", nil)
		sp1 := s1.StartSpan(p, 2, "b", nil)
		s0.Conflict(p.Now(), sp0, 1, 7, 0b1)
		s0.Conflict(p.Now(), sp0, 1, 7, 0b1)
		s1.Conflict(p.Now(), sp1, 1, 7, 0b1)
	})
	snap := r.Snapshot()
	var found bool
	for _, h := range snap.Hot {
		if h.Table == 1 && h.Key == 7 {
			found = true
			if h.Conflicts != 3 {
				t.Fatalf("folded conflicts = %d, want 3", h.Conflicts)
			}
		}
	}
	if !found {
		t.Fatal("hot cell missing from the merged profile")
	}
}

// Two identical sharded runs export byte-identical Chrome traces.
func TestShardMergeDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRecorder(128)
		s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
		inProc(t, func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				sp0 := s0.StartSpan(p, 1, "a", nil)
				sp1 := s1.StartSpan(p, 2, "b", nil)
				s0.LockAcquire(p.Now(), sp0, 1, 2, 0b1)
				s1.Abort(p.Now(), sp1, "lock-conflict", false)
				s0.Commit(p.Now(), sp0)
				p.Sleep(sim.Microsecond)
			}
		})
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical sharded runs exported different traces")
	}
}

// The shard child's emit path is the recorder hot path of a partitioned
// run; once its ring is warm it must not allocate.
func TestShardHotPathZeroAlloc(t *testing.T) {
	r := NewRecorder(32)
	s := r.Shard(0, 2)
	inProc(t, func(p *sim.Proc) {
		sp := s.StartSpan(p, 1, "warm", new(int))
		for i := 0; i < 64; i++ {
			s.LockAcquire(p.Now(), sp, 1, 7, 0b1)
		}
		if avg := testing.AllocsPerRun(200, func() {
			s.LockAcquire(p.Now(), sp, 1, 7, 0b1)
			s.LockRelease(p.Now(), sp, 1, 7, 0b1)
			s.Conflict(p.Now(), sp, 1, 7, 0b1)
		}); avg != 0 {
			t.Errorf("sharded emit path allocates %v/op, want 0", avg)
		}
	})
}
