package trace

import (
	"fmt"
	"io"

	"crest/internal/sim"
)

// PhaseSlice is one contiguous interval an attempt spent in a phase,
// reconstructed from KindPhase transitions.
type PhaseSlice struct {
	Phase Phase
	Start sim.Time
	End   sim.Time
}

// Dur is the slice's length.
func (ps PhaseSlice) Dur() sim.Duration { return ps.End.Sub(ps.Start) }

// AttemptView is one reconstructed attempt of a span: its outcome, the
// exact virtual time spent in each phase, and the RDMA round-trips,
// verbs and payload bytes charged to each phase.
type AttemptView struct {
	N     int // 1-based attempt number
	Start sim.Time
	End   sim.Time // commit / abort instant (excludes release cleanup)

	Committed bool
	Reason    string // abort classification when !Committed
	False     bool   // abort was a false conflict

	Dur       [NumPhases]sim.Duration // virtual time per phase
	RTT       [NumPhases]int          // doorbell batches per phase
	Verbs     [NumPhases]int          // verbs completed per phase
	Bytes     [NumPhases]int          // payload bytes per phase
	Net       [NumPhases]sim.Duration // round-trip latency per phase
	Conflicts int

	Slices []PhaseSlice // the phase timeline, in order
}

// TotalRTTs sums round-trips across phases.
func (a *AttemptView) TotalRTTs() int {
	n := 0
	for _, v := range a.RTT {
		n += v
	}
	return n
}

// SpanView is one reconstructed transaction span: identity plus every
// attempt in order.
type SpanView struct {
	Coord uint64
	ID    uint64
	Txn   uint64
	Label string

	Attempts  []AttemptView
	Committed bool
}

// spanBuild accumulates a SpanView while scanning the event stream.
type spanBuild struct {
	v       SpanView
	openPh  Phase
	openAt  sim.Time
	hasOpen bool
	lastAt  sim.Time
}

func (b *spanBuild) cur() *AttemptView {
	if len(b.v.Attempts) == 0 {
		b.v.Attempts = append(b.v.Attempts, AttemptView{N: 1})
	}
	return &b.v.Attempts[len(b.v.Attempts)-1]
}

// closePhase ends the open phase slice at `at`, folding its length into
// the attempt's per-phase duration.
func (b *spanBuild) closePhase(at sim.Time) {
	if !b.hasOpen {
		return
	}
	a := b.cur()
	a.Slices = append(a.Slices, PhaseSlice{Phase: b.openPh, Start: b.openAt, End: at})
	a.Dur[b.openPh] += at.Sub(b.openAt)
	b.hasOpen = false
}

func (b *spanBuild) openPhase(ph Phase, at sim.Time) {
	b.closePhase(at)
	b.openPh, b.openAt, b.hasOpen = ph, at, true
}

// Spans reconstructs per-transaction span timelines from the event
// stream, in order of first appearance. Spans whose begin event was
// evicted from the ring are reconstructed from their surviving tail.
func (s *Snapshot) Spans() []SpanView {
	type key struct{ coord, id uint64 }
	idx := map[key]*spanBuild{}
	var order []*spanBuild

	get := func(e *Event) *spanBuild {
		k := key{e.Coord, e.Span}
		b := idx[k]
		if b == nil {
			b = &spanBuild{v: SpanView{Coord: e.Coord, ID: e.Span, Txn: e.Txn, Label: e.Label}}
			if e.Kind != KindTxnBegin {
				// Head of the span was evicted; resume mid-flight.
				b.v.Attempts = append(b.v.Attempts, AttemptView{N: e.Attempt, Start: e.At})
			}
			idx[k] = b
			order = append(order, b)
		}
		return b
	}

	for i := range s.Events {
		e := &s.Events[i]
		if e.Span == 0 {
			continue // proc events and other unattributed activity
		}
		b := get(e)
		b.lastAt = e.At
		if e.Txn != 0 {
			b.v.Txn = e.Txn
		}
		switch e.Kind {
		case KindTxnBegin:
			b.v.Attempts = append(b.v.Attempts, AttemptView{N: 1, Start: e.At})
			b.v.Label = e.Label
		case KindTxnRetry:
			b.closePhase(e.At)
			b.v.Attempts = append(b.v.Attempts, AttemptView{N: e.Attempt, Start: e.At})
		case KindPhase:
			b.openPhase(e.Phase, e.At)
		case KindTxnCommit:
			b.closePhase(e.At)
			a := b.cur()
			a.End = e.At
			a.Committed = true
			b.v.Committed = true
		case KindTxnAbort:
			b.closePhase(e.At)
			a := b.cur()
			a.End = e.At
			a.Reason = e.Reason
			a.False = e.False
		case KindVerbComplete:
			a := b.cur()
			a.Verbs[e.Phase]++
			a.Bytes[e.Phase] += e.Bytes
		case KindRTT:
			a := b.cur()
			a.RTT[e.Phase]++
			a.Net[e.Phase] += e.Latency
		case KindConflict:
			b.cur().Conflicts++
		}
	}

	views := make([]SpanView, len(order))
	for i, b := range order {
		b.closePhase(b.lastAt) // release slice of a final abort stays open
		views[i] = b.v
	}
	return views
}

// WriteSpanSummary renders every reconstructed span as a text
// timeline: one block per transaction, one line per attempt, one line
// per phase with its virtual-time duration and round-trip attribution.
func WriteSpanSummary(w io.Writer, s *Snapshot) error {
	spans := s.Spans()
	if s.Dropped > 0 {
		fmt.Fprintf(w, "# ring dropped %d events; earliest spans may be truncated\n", s.Dropped)
	}
	for i := range spans {
		sv := &spans[i]
		outcome := "ABORTED"
		if sv.Committed {
			outcome = "committed"
		}
		fmt.Fprintf(w, "span %d coord %d txn %d %q: %d attempt(s), %s\n",
			sv.ID, sv.Coord, sv.Txn, sv.Label, len(sv.Attempts), outcome)
		for j := range sv.Attempts {
			a := &sv.Attempts[j]
			res := fmt.Sprintf("abort (%s)", a.Reason)
			if a.Committed {
				res = "commit"
			} else if a.False {
				res = fmt.Sprintf("abort (%s, false conflict)", a.Reason)
			}
			fmt.Fprintf(w, "  attempt %d @%.3fµs: %s in %s, %d RTT\n",
				a.N, float64(a.Start)/1e3, res, a.End.Sub(a.Start), a.TotalRTTs())
			for ph := PhaseExec; ph < NumPhases; ph++ {
				if a.Dur[ph] == 0 && a.RTT[ph] == 0 && a.Verbs[ph] == 0 {
					continue
				}
				fmt.Fprintf(w, "    %-8s %10s  %2d RTT  %3d verbs  %6d B  net %s\n",
					ph, a.Dur[ph], a.RTT[ph], a.Verbs[ph], a.Bytes[ph], a.Net[ph])
			}
		}
	}
	return nil
}

// WriteHotKeys renders the top-k hot-key contention profile: the cells
// that lost the most lock CASes / validation checks, and how many
// aborts each caused.
func WriteHotKeys(w io.Writer, s *Snapshot, k int) error {
	hot := s.HotKeys(k)
	fmt.Fprintf(w, "%-4s %-6s %-12s %-4s %10s %10s\n", "rank", "table", "key", "cell", "conflicts", "aborts")
	for i := range hot {
		h := &hot[i]
		fmt.Fprintf(w, "%-4d %-6d %-12d %-4d %10d %10d\n",
			i+1, h.Table, h.Key, h.Cell, h.Conflicts, h.Aborts)
	}
	return nil
}
