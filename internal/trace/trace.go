// Package trace is the deterministic virtual-time tracing and
// observability subsystem. A Recorder collects typed events — txn
// begin/retry/commit/abort, phase transitions, per-verb RDMA
// issue/complete, lock traffic on CREST local objects, simulator
// scheduling — into a bounded ring buffer keyed by (coordinator, txn,
// span).
//
// Because the whole system runs inside the deterministic cooperative
// simulator (internal/sim), a trace is byte-exact and replayable: two
// runs with the same seed and configuration produce identical event
// streams, and recording costs no virtual time, so the trace never
// distorts the measurement the way hardware profilers do.
//
// Every Recorder method is nil-safe: a disabled recorder is a nil
// pointer and each emission point costs exactly one pointer check on
// the hot path.
//
// On top of the raw stream sit three views (see chrome.go and
// report.go): per-txn span timelines with exact virtual-time phase
// durations and RTT attribution, a hot-key contention profile, and a
// Chrome trace_event JSON export that opens directly in Perfetto or
// chrome://tracing.
package trace

import (
	"fmt"
	"sort"

	"crest/internal/layout"
	"crest/internal/sim"
)

// Kind identifies an event type.
type Kind uint8

// The event types the subsystem records.
const (
	// Transaction lifecycle (span events).
	KindTxnBegin Kind = iota
	KindTxnRetry
	KindTxnCommit
	KindTxnAbort

	// Phase machine transitions within one attempt.
	KindPhase

	// RDMA fabric activity.
	KindVerbIssue
	KindVerbComplete
	KindRTT // one per doorbell batch (round-trip attribution)

	// Concurrency-control events on records.
	KindConflict      // a lock CAS lost or a validation check failed
	KindLockAcquire   // remote cell locks acquired
	KindLockPiggyback // a local txn reused already-held remote locks
	KindLockRelease   // remote cell locks released (write-back)
	KindENOverflow    // a cell's 16-bit epoch number wrapped

	// Simulator scheduling.
	KindProcSpawn
	KindProcBlock
	KindProcWake
	KindProcFinish
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTxnBegin:
		return "txn-begin"
	case KindTxnRetry:
		return "txn-retry"
	case KindTxnCommit:
		return "txn-commit"
	case KindTxnAbort:
		return "txn-abort"
	case KindPhase:
		return "phase"
	case KindVerbIssue:
		return "verb-issue"
	case KindVerbComplete:
		return "verb-complete"
	case KindRTT:
		return "rtt"
	case KindConflict:
		return "conflict"
	case KindLockAcquire:
		return "lock-acquire"
	case KindLockPiggyback:
		return "lock-piggyback"
	case KindLockRelease:
		return "lock-release"
	case KindENOverflow:
		return "en-overflow"
	case KindProcSpawn:
		return "proc-spawn"
	case KindProcBlock:
		return "proc-block"
	case KindProcWake:
		return "proc-wake"
	case KindProcFinish:
		return "proc-finish"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Phase identifies a protocol phase within one transaction attempt.
// CREST's localized path uses all five; the strict engines collapse
// lock acquisition into PhaseExec. PhaseRelease covers abort cleanup
// (lock release / write-back after a failed attempt), which no engine
// charges to a measured phase.
type Phase uint8

// The phases of the paper's phase machine (execute → lock → validate
// → log → apply).
const (
	PhaseExec Phase = iota
	PhaseLock
	PhaseValidate
	PhaseLog
	PhaseApply
	PhaseRelease
	NumPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseExec:
		return "execute"
	case PhaseLock:
		return "lock"
	case PhaseValidate:
		return "validate"
	case PhaseLog:
		return "log"
	case PhaseApply:
		return "apply"
	case PhaseRelease:
		return "release"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Event is one trace record. Fields beyond At/Kind are populated per
// kind; zero values mean "not applicable".
type Event struct {
	Seq  uint64   // global emission order (survives ring eviction)
	At   sim.Time // virtual time of the event
	Kind Kind

	// Span identity: the (coordinator, txn, span) key. Span is the
	// recorder-issued span id; Txn is the engine's transaction id when
	// one exists (CREST local txn ids), else 0.
	Coord   uint64
	Span    uint64
	Txn     uint64
	Attempt int

	Phase  Phase  // KindPhase: phase entered; verb events: phase charged
	Reason string // KindTxnAbort: abort classification
	False  bool   // KindTxnAbort / KindConflict: false conflict

	Table layout.TableID // record identity for CC events
	Key   layout.Key
	Mask  uint64 // cell bits involved
	Cell  int    // KindENOverflow: the wrapping cell

	Verb    string       // verb events: READ / WRITE / CAS / masked-CAS
	QP      int          // verb events: queue-pair id
	Region  int          // verb events: target region id
	Bytes   int          // verb events: payload bytes charged
	Ops     int          // KindRTT: verbs in the batch
	Latency sim.Duration // KindVerbComplete / KindRTT: charged latency

	Label string // txn label, proc name, or wait-queue name
}

// Span is the live per-transaction handle the engines thread through
// execution (via sim.Proc's trace context). It carries the identity
// every event of the transaction is keyed by, plus the current phase
// so fabric events can be attributed without the fabric knowing about
// phase machines.
type Span struct {
	Coord   uint64
	ID      uint64
	Label   string
	Attempt int
	Txn     uint64 // engine-assigned txn id, 0 until known
	Phase   Phase

	done   bool
	txnKey any // retry detection: the engine's *Txn pointer

	// Last conflict site of the current attempt, for attributing an
	// abort to the cells that caused it in the hot-key profile.
	cTable   layout.TableID
	cKey     layout.Key
	cMask    uint64
	cAttempt int
}

// SetTxn records the engine's transaction id once drawn.
func (s *Span) SetTxn(id uint64) {
	if s != nil {
		s.Txn = id
	}
}

// hotKey identifies one cell for the contention profile.
type hotKey struct {
	Table layout.TableID
	Key   layout.Key
	Cell  int
}

// HotCell is one entry of the hot-key contention profile.
type HotCell struct {
	Table     layout.TableID
	Key       layout.Key
	Cell      int
	Conflicts uint64 // lock CASes lost + validation failures touching the cell
	Aborts    uint64 // aborts attributed to the cell
}

// Recorder collects events into a bounded ring buffer. It is owned by
// one simulation environment; the cooperative scheduler serializes all
// emissions, so no locking is needed. The zero Recorder is unusable;
// a nil *Recorder is the disabled state and every method tolerates it.
type Recorder struct {
	cap     int
	buf     []Event
	head    int // index of the oldest event when full
	full    bool
	seq     uint64
	dropped uint64

	nextSpan uint64
	hot      map[hotKey]*HotCell

	// Partition-recorder mode (Shard): a root recorder hands each
	// simulation partition its own child, written lock-free by the
	// owning worker, and merges the children deterministically at
	// snapshot time. part/stride make every child's span ids a strided
	// sequence (part+1, part+1+stride, …) so ids stay unique across the
	// family without coordination; root points a child back at its
	// parent for the ProcEvents flag. stride is 0 on a classic
	// (unsharded) recorder.
	part   int
	stride int
	shards []*Recorder
	root   *Recorder

	// ProcEvents enables simulator scheduling events (spawn / block /
	// wake / finish). They are voluminous under contention, so they are
	// opt-in.
	ProcEvents bool
}

// DefaultCapacity bounds the ring buffer when the caller does not.
const DefaultCapacity = 1 << 18

// NewRecorder returns an enabled recorder holding at most capacity
// events (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, hot: map[hotKey]*HotCell{}}
}

// Enabled reports whether the recorder collects events.
func (r *Recorder) Enabled() bool { return r != nil }

// Shard returns the child recorder owned by partition part of parts.
// The whole family is created on the first call, so every caller that
// shards with the same partition count gets the same children. Each
// child is written only by its partition's worker — no locking — and
// the root's Snapshot merges the children into one deterministic
// stream (see Snapshot). A nil recorder or parts <= 1 returns the
// receiver unchanged, so single-partition runs keep the classic
// recorder byte-for-byte.
func (r *Recorder) Shard(part, parts int) *Recorder {
	if r == nil || parts <= 1 {
		return r
	}
	if r.stride > 0 {
		panic("trace: Shard of a partition child")
	}
	if r.shards == nil {
		r.shards = make([]*Recorder, parts)
		for i := range r.shards {
			r.shards[i] = &Recorder{cap: r.cap, hot: map[hotKey]*HotCell{},
				part: i, stride: parts, root: r}
		}
	}
	if len(r.shards) != parts || part < 0 || part >= parts {
		panic(fmt.Sprintf("trace: Shard(%d, %d) of a recorder sharded %d ways",
			part, parts, len(r.shards)))
	}
	return r.shards[part]
}

// procEvents resolves the ProcEvents flag: children defer to the root
// so the flag can be toggled after sharding.
func (r *Recorder) procEvents() bool {
	if r.root != nil {
		return r.root.ProcEvents
	}
	return r.ProcEvents
}

// emit appends one event to the ring, evicting the oldest on overflow.
func (r *Recorder) emit(e Event) {
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % r.cap
	r.full = true
	r.dropped++
}

// Dropped reports how many events were evicted from the ring (summed
// over the partition children on a sharded recorder).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.dropped
	for _, c := range r.shards {
		n += c.dropped
	}
	return n
}

// Len reports the number of buffered events (summed over the partition
// children on a sharded recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.buf)
	for _, c := range r.shards {
		n += len(c.buf)
	}
	return n
}

// StartSpan begins (or resumes, for a retry of the same transaction)
// the span for txnKey on proc p, stores it in p's trace context and
// returns it. A nil recorder returns nil.
func (r *Recorder) StartSpan(p *sim.Proc, coord uint64, label string, txnKey any) *Span {
	if r == nil {
		return nil
	}
	if prev, ok := p.TraceCtx().(*Span); ok && prev != nil && !prev.done && prev.txnKey == txnKey {
		prev.Attempt++
		prev.Phase = PhaseExec
		r.emit(Event{At: p.Now(), Kind: KindTxnRetry, Coord: prev.Coord, Span: prev.ID,
			Txn: prev.Txn, Attempt: prev.Attempt, Label: prev.Label})
		return prev
	}
	r.nextSpan++
	id := r.nextSpan
	if r.stride > 1 {
		// Partition child: stride the id sequence so span ids stay
		// unique across the whole recorder family.
		id = uint64(r.part) + uint64(r.stride)*(r.nextSpan-1) + 1
	}
	s := &Span{Coord: coord, ID: id, Label: label, Attempt: 1, txnKey: txnKey}
	p.SetTraceCtx(s)
	r.emit(Event{At: p.Now(), Kind: KindTxnBegin, Coord: coord, Span: s.ID,
		Attempt: 1, Label: label})
	return s
}

// EnterPhase records a phase transition on s.
func (r *Recorder) EnterPhase(at sim.Time, s *Span, ph Phase) {
	if r == nil || s == nil {
		return
	}
	s.Phase = ph
	r.emit(Event{At: at, Kind: KindPhase, Coord: s.Coord, Span: s.ID, Txn: s.Txn,
		Attempt: s.Attempt, Phase: ph})
}

// Commit ends s as committed.
func (r *Recorder) Commit(at sim.Time, s *Span) {
	if r == nil || s == nil {
		return
	}
	s.done = true
	r.emit(Event{At: at, Kind: KindTxnCommit, Coord: s.Coord, Span: s.ID, Txn: s.Txn,
		Attempt: s.Attempt, Label: s.Label})
}

// Abort records a failed attempt of s with its classification. The
// span itself stays open for the retry. When the attempt recorded a
// conflict, the abort is attributed to that conflict's cells in the
// hot-key profile.
func (r *Recorder) Abort(at sim.Time, s *Span, reason string, falseConflict bool) {
	if r == nil || s == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindTxnAbort, Coord: s.Coord, Span: s.ID, Txn: s.Txn,
		Attempt: s.Attempt, Reason: reason, False: falseConflict, Label: s.Label})
	if s.cAttempt == s.Attempt && s.cMask != 0 {
		r.bumpHot(s.cTable, s.cKey, s.cMask, true)
	}
}

// spanID unpacks a possibly-nil span into event identity fields.
func spanID(s *Span) (coord, id, txn uint64, attempt int, ph Phase) {
	if s == nil {
		return 0, 0, 0, 0, PhaseExec
	}
	return s.Coord, s.ID, s.Txn, s.Attempt, s.Phase
}

// SpanOf extracts the span from a proc's trace context (nil when
// tracing is off or the proc runs outside a transaction).
func SpanOf(p *sim.Proc) *Span {
	s, _ := p.TraceCtx().(*Span)
	return s
}

// VerbIssue records one verb posted to the fabric.
func (r *Recorder) VerbIssue(at sim.Time, s *Span, verb string, qp, region, bytes int) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindVerbIssue, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Verb: verb, QP: qp, Region: region, Bytes: bytes})
}

// VerbComplete records one verb's completion with its charged latency
// (the whole batch's round-trip; doorbell batching amortizes it).
func (r *Recorder) VerbComplete(at sim.Time, s *Span, verb string, qp, region, bytes int, lat sim.Duration) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindVerbComplete, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Verb: verb, QP: qp, Region: region, Bytes: bytes, Latency: lat})
}

// RTT records one doorbell batch: the unit of round-trip attribution.
func (r *Recorder) RTT(at sim.Time, s *Span, qp, region, ops, bytes int, lat sim.Duration) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindRTT, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, QP: qp, Region: region, Ops: ops, Bytes: bytes, Latency: lat})
}

// Conflict records a concurrency-control conflict (a lock CAS lost to
// another holder, or a validation check failure) on the given cells,
// feeding the hot-key profile.
func (r *Recorder) Conflict(at sim.Time, s *Span, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindConflict, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Table: table, Key: key, Mask: mask})
	r.bumpHot(table, key, mask, false)
	if s != nil {
		s.cTable, s.cKey, s.cMask, s.cAttempt = table, key, mask, s.Attempt
	}
}

func (r *Recorder) bumpHot(table layout.TableID, key layout.Key, mask uint64, abort bool) {
	for m := mask; m != 0; m &= m - 1 {
		cell := bitIndex(m & -m)
		hk := hotKey{table, key, cell}
		hc := r.hot[hk]
		if hc == nil {
			hc = &HotCell{Table: table, Key: key, Cell: cell}
			r.hot[hk] = hc
		}
		if abort {
			hc.Aborts++
		} else {
			hc.Conflicts++
		}
	}
}

func bitIndex(b uint64) int {
	i := 0
	for b > 1 {
		b >>= 1
		i++
	}
	return i
}

// LockAcquire records remote cell locks won on a record.
func (r *Recorder) LockAcquire(at sim.Time, s *Span, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindLockAcquire, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Table: table, Key: key, Mask: mask})
}

// LockPiggyback records a local transaction reusing already-held
// remote locks (CREST §5.1).
func (r *Recorder) LockPiggyback(at sim.Time, s *Span, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindLockPiggyback, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Table: table, Key: key, Mask: mask})
}

// LockRelease records remote cell locks released at write-back.
func (r *Recorder) LockRelease(at sim.Time, s *Span, table layout.TableID, key layout.Key, mask uint64) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindLockRelease, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Table: table, Key: key, Mask: mask})
}

// ENOverflow records a cell's 16-bit epoch number wrapping (the paper's
// §4.2 rollover hazard, normally masked by the ENThreshold fallback).
func (r *Recorder) ENOverflow(at sim.Time, s *Span, table layout.TableID, key layout.Key, cell int) {
	if r == nil {
		return
	}
	coord, id, txn, attempt, ph := spanID(s)
	r.emit(Event{At: at, Kind: KindENOverflow, Coord: coord, Span: id, Txn: txn,
		Attempt: attempt, Phase: ph, Table: table, Key: key, Cell: cell})
}

// The sim.Observer implementation: simulator scheduling events. Only
// recorded when ProcEvents is set.

// ProcSpawn implements sim.Observer.
func (r *Recorder) ProcSpawn(name string, at sim.Time) {
	if r == nil || !r.procEvents() {
		return
	}
	r.emit(Event{At: at, Kind: KindProcSpawn, Label: name})
}

// ProcBlock implements sim.Observer: a process parked on a wait queue.
func (r *Recorder) ProcBlock(name, queue string, at sim.Time) {
	if r == nil || !r.procEvents() {
		return
	}
	r.emit(Event{At: at, Kind: KindProcBlock, Label: name, Reason: queue})
}

// ProcWake implements sim.Observer.
func (r *Recorder) ProcWake(name string, at sim.Time) {
	if r == nil || !r.procEvents() {
		return
	}
	r.emit(Event{At: at, Kind: KindProcWake, Label: name})
}

// ProcFinish implements sim.Observer.
func (r *Recorder) ProcFinish(name string, at sim.Time) {
	if r == nil || !r.procEvents() {
		return
	}
	r.emit(Event{At: at, Kind: KindProcFinish, Label: name})
}

// Snapshot is an immutable copy of the recorder's state, the input to
// every exporter.
type Snapshot struct {
	Events  []Event // oldest → newest
	Dropped uint64
	Hot     []HotCell // sorted: most conflicted first
}

// unroll appends the ring's events, oldest to newest, to dst.
func (r *Recorder) unroll(dst []Event) []Event {
	if r.full {
		dst = append(dst, r.buf[r.head:]...)
		dst = append(dst, r.buf[:r.head]...)
	} else {
		dst = append(dst, r.buf...)
	}
	return dst
}

// Snapshot copies the ring (oldest to newest) and the hot-key profile.
// A nil recorder yields an empty snapshot.
//
// On a sharded recorder the snapshot is the deterministic merge of the
// root and every partition child: events sort by (virtual time,
// partition, per-partition emission order) — the same key the
// partitioned scheduler merges cross-partition mailboxes by — then
// Seq renumbers in merged order, hot-cell profiles sum per cell, and
// Dropped sums the family's evictions. The merged order is a pure
// function of the simulation, never of the worker count.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	if r.shards == nil {
		s.Dropped = r.dropped
		s.Events = r.unroll(make([]Event, 0, len(r.buf)))
		s.Hot = sortedHot(r.hot)
		return s
	}

	type tagged struct {
		part int // -1 for the root's own events
		ev   Event
	}
	total := len(r.buf)
	s.Dropped = r.dropped
	for _, c := range r.shards {
		total += len(c.buf)
		s.Dropped += c.dropped
	}
	all := make([]tagged, 0, total)
	for _, ev := range r.unroll(nil) {
		all = append(all, tagged{part: -1, ev: ev})
	}
	for _, c := range r.shards {
		for _, ev := range c.unroll(nil) {
			all = append(all, tagged{part: c.part, ev: ev})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.ev.Seq < b.ev.Seq
	})
	s.Events = make([]Event, len(all))
	for i := range all {
		s.Events[i] = all[i].ev
		s.Events[i].Seq = s.Dropped + uint64(i) + 1
	}

	merged := make(map[hotKey]*HotCell, len(r.hot))
	foldHot(merged, r.hot)
	for _, c := range r.shards {
		foldHot(merged, c.hot)
	}
	s.Hot = sortedHot(merged)
	return s
}

// foldHot sums src's per-cell counters into dst.
func foldHot(dst, src map[hotKey]*HotCell) {
	for hk, hc := range src {
		d := dst[hk]
		if d == nil {
			cp := *hc
			dst[hk] = &cp
			continue
		}
		d.Conflicts += hc.Conflicts
		d.Aborts += hc.Aborts
	}
}

// sortedHot flattens a hot-cell map into the canonical profile order:
// most contended first, ties by (table, key, cell).
func sortedHot(hot map[hotKey]*HotCell) []HotCell {
	out := make([]HotCell, 0, len(hot))
	for _, hc := range hot {
		out = append(out, *hc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Conflicts+a.Aborts != b.Conflicts+b.Aborts {
			return a.Conflicts+a.Aborts > b.Conflicts+b.Aborts
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Cell < b.Cell
	})
	return out
}

// HotKeys returns the top-k entries of the contention profile.
func (s *Snapshot) HotKeys(k int) []HotCell {
	if k < 0 || k > len(s.Hot) {
		k = len(s.Hot)
	}
	return s.Hot[:k]
}
