package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"crest/internal/layout"
	"crest/internal/sim"
)

// inProc runs fn inside one simulated process and drives the
// environment to completion.
func inProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Spawn("test", fn)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	inProc(t, func(p *sim.Proc) {
		s := r.StartSpan(p, 1, "txn", nil)
		if s != nil {
			t.Errorf("nil recorder returned span %v", s)
		}
		r.EnterPhase(p.Now(), s, PhaseLock)
		r.VerbIssue(p.Now(), s, "READ", 1, 0, 8)
		r.VerbComplete(p.Now(), s, "READ", 1, 0, 8, sim.Microsecond)
		r.RTT(p.Now(), s, 1, 0, 1, 8, sim.Microsecond)
		r.Conflict(p.Now(), s, 1, 2, 0b11)
		r.LockAcquire(p.Now(), s, 1, 2, 0b11)
		r.LockPiggyback(p.Now(), s, 1, 2, 0b11)
		r.LockRelease(p.Now(), s, 1, 2, 0b11)
		r.ENOverflow(p.Now(), s, 1, 2, 0)
		r.Abort(p.Now(), s, "lock-conflict", false)
		r.Commit(p.Now(), s)
		r.ProcSpawn("x", p.Now())
		r.ProcBlock("x", "q", p.Now())
		r.ProcWake("x", p.Now())
		r.ProcFinish("x", p.Now())
	})
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("nil recorder has state: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap.Events) != 0 || len(snap.Hot) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestRingEvictsOldestAndCountsDrops(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Conflict(sim.Time(i), nil, 1, layout.Key(i), 1)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	if snap.Dropped != 6 {
		t.Fatalf("snapshot dropped = %d, want 6", snap.Dropped)
	}
	for i, e := range snap.Events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-to-newest order)", i, e.Seq, want)
		}
		if want := sim.Time(6 + i); e.At != want {
			t.Fatalf("event %d at %d, want %d", i, e.At, want)
		}
	}
}

func TestRetryReusesSpanAndBumpsAttempt(t *testing.T) {
	r := NewRecorder(0)
	inProc(t, func(p *sim.Proc) {
		key := new(int)
		s1 := r.StartSpan(p, 7, "transfer", key)
		if s1.Attempt != 1 {
			t.Fatalf("first attempt = %d, want 1", s1.Attempt)
		}
		r.Abort(p.Now(), s1, "lock-conflict", false)

		s2 := r.StartSpan(p, 7, "transfer", key)
		if s2 != s1 {
			t.Fatal("retry of the same txn created a new span")
		}
		if s2.Attempt != 2 {
			t.Fatalf("retry attempt = %d, want 2", s2.Attempt)
		}
		r.Commit(p.Now(), s2)

		s3 := r.StartSpan(p, 7, "transfer", key)
		if s3 == s1 {
			t.Fatal("new txn after commit reused the finished span")
		}
	})
	var kinds []Kind
	for _, e := range r.Snapshot().Events {
		kinds = append(kinds, e.Kind)
	}
	want := []Kind{KindTxnBegin, KindTxnAbort, KindTxnRetry, KindTxnCommit, KindTxnBegin}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestHotProfileCountsCellsAndAttributesAborts(t *testing.T) {
	r := NewRecorder(0)
	inProc(t, func(p *sim.Proc) {
		s := r.StartSpan(p, 1, "t", new(int))
		r.Conflict(p.Now(), s, 3, 9, 0b101) // cells 0 and 2
		r.Abort(p.Now(), s, "lock-conflict", false)

		// The retry conflicts again but commits: no abort attribution.
		s = r.StartSpan(p, 1, "t", s.txnKey)
		r.Conflict(p.Now(), s, 3, 9, 0b001)
		r.Commit(p.Now(), s)
	})
	snap := r.Snapshot()
	if len(snap.Hot) != 2 {
		t.Fatalf("hot cells = %d, want 2", len(snap.Hot))
	}
	top := snap.Hot[0]
	if top.Table != 3 || top.Key != 9 || top.Cell != 0 {
		t.Fatalf("hottest cell = %+v, want table 3 key 9 cell 0", top)
	}
	if top.Conflicts != 2 || top.Aborts != 1 {
		t.Fatalf("cell 0 counts = %d conflicts / %d aborts, want 2/1", top.Conflicts, top.Aborts)
	}
	other := snap.Hot[1]
	if other.Cell != 2 || other.Conflicts != 1 || other.Aborts != 1 {
		t.Fatalf("cell 2 counts = %+v, want 1 conflict / 1 abort", other)
	}
	if got := snap.HotKeys(1); len(got) != 1 || got[0].Cell != 0 {
		t.Fatalf("HotKeys(1) = %+v", got)
	}
}

func TestSpansReconstructPhasesAndRTTs(t *testing.T) {
	r := NewRecorder(0)
	inProc(t, func(p *sim.Proc) {
		s := r.StartSpan(p, 2, "pay", new(int))
		r.EnterPhase(p.Now(), s, PhaseExec)
		p.Sleep(100 * sim.Nanosecond)
		r.EnterPhase(p.Now(), s, PhaseLock)
		r.RTT(p.Now().Add(2*sim.Microsecond), s, 1, 0, 2, 64, 2*sim.Microsecond)
		p.Sleep(2 * sim.Microsecond)
		r.EnterPhase(p.Now(), s, PhaseValidate)
		p.Sleep(300 * sim.Nanosecond)
		r.Commit(p.Now(), s)
	})
	spans := r.Snapshot().Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sv := spans[0]
	if !sv.Committed || sv.Label != "pay" || len(sv.Attempts) != 1 {
		t.Fatalf("span = %+v", sv)
	}
	a := sv.Attempts[0]
	if a.Dur[PhaseExec] != 100*sim.Nanosecond {
		t.Fatalf("exec dur = %v", a.Dur[PhaseExec])
	}
	if a.Dur[PhaseLock] != 2*sim.Microsecond {
		t.Fatalf("lock dur = %v", a.Dur[PhaseLock])
	}
	if a.Dur[PhaseValidate] != 300*sim.Nanosecond {
		t.Fatalf("validate dur = %v", a.Dur[PhaseValidate])
	}
	if a.RTT[PhaseLock] != 1 || a.Net[PhaseLock] != 2*sim.Microsecond || a.TotalRTTs() != 1 {
		t.Fatalf("lock RTT attribution = %d (%v)", a.RTT[PhaseLock], a.Net[PhaseLock])
	}
	if a.End.Sub(a.Start) != 2*sim.Microsecond+400*sim.Nanosecond {
		t.Fatalf("attempt length = %v", a.End.Sub(a.Start))
	}
}

func TestChromeExportIsValidAndDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRecorder(0)
		inProc(t, func(p *sim.Proc) {
			s := r.StartSpan(p, 1, "t", new(int))
			r.EnterPhase(p.Now(), s, PhaseExec)
			p.Sleep(sim.Microsecond)
			r.Conflict(p.Now(), s, 1, 5, 1)
			r.Abort(p.Now(), s, "lock-conflict", true)
			r.EnterPhase(p.Now(), s, PhaseRelease)
			s = r.StartSpan(p, 1, "t", s.txnKey)
			r.EnterPhase(p.Now(), s, PhaseExec)
			p.Sleep(sim.Microsecond)
			r.Commit(p.Now(), s)
		})
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical snapshots produced different JSON bytes")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e["cat"] == "phase" {
			phases[e["name"].(string)] = true
		}
	}
	if !phases["execute"] {
		t.Fatalf("no execute phase slice in export: %v", phases)
	}
}
