package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"crest/internal/sim"
)

// Chrome trace_event export (the JSON array format understood by
// Perfetto and chrome://tracing). Each coordinator becomes a thread of
// one "cluster" process; transaction attempts, phase slices and RDMA
// round-trips become nested "X" (complete) events; conflicts, lock
// traffic, aborts and EN overflows become "i" (instant) events.
// Timestamps are virtual microseconds, so the timeline shows exactly
// what the simulator charged, with zero probe distortion.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	pidCluster = 1 // coordinator threads
	pidSim     = 2 // simulator scheduling events (opt-in)
)

func usTime(t sim.Time) float64    { return float64(t) / 1e3 }
func usDur(d sim.Duration) float64 { return float64(d) / 1e3 }
func maskArg(mask uint64) string   { return fmt.Sprintf("0x%x", mask) }
func cellKey(e *Event) map[string]any {
	return map[string]any{"table": int(e.Table), "key": uint64(e.Key), "mask": maskArg(e.Mask)}
}

// WriteChromeTrace renders the snapshot as Chrome trace_event JSON.
// Output is deterministic: same snapshot, same bytes.
func WriteChromeTrace(w io.Writer, s *Snapshot) error {
	var evs []chromeEvent

	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidCluster,
		Args: map[string]any{"name": "crest cluster"},
	})

	spans := s.Spans()

	// Thread metadata: one named row per coordinator, sorted by id.
	coords := map[uint64]bool{}
	for i := range spans {
		coords[spans[i].Coord] = true
	}
	ids := make([]uint64, 0, len(coords))
	for id := range coords {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidCluster, Tid: id,
			Args: map[string]any{"name": fmt.Sprintf("coordinator %d", id)},
		})
	}

	// Transaction attempts and their phase slices.
	for i := range spans {
		sv := &spans[i]
		for j := range sv.Attempts {
			a := &sv.Attempts[j]
			end := a.End
			for _, ps := range a.Slices {
				if ps.End > end {
					end = ps.End // abort cleanup extends past the measured end
				}
			}
			outcome := "commit"
			if !a.Committed {
				outcome = "abort:" + a.Reason
			}
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("%s #%d", sv.Label, a.N), Cat: "txn", Ph: "X",
				Ts: usTime(a.Start), Dur: usDur(end.Sub(a.Start)), Pid: pidCluster, Tid: sv.Coord,
				Args: map[string]any{
					"span": sv.ID, "txn": sv.Txn, "attempt": a.N,
					"outcome": outcome, "falseConflict": a.False, "rtts": a.TotalRTTs(),
				},
			})
			for _, ps := range a.Slices {
				if ps.Dur() == 0 {
					continue
				}
				evs = append(evs, chromeEvent{
					Name: ps.Phase.String(), Cat: "phase", Ph: "X",
					Ts: usTime(ps.Start), Dur: usDur(ps.Dur()), Pid: pidCluster, Tid: sv.Coord,
					Args: map[string]any{"span": sv.ID, "attempt": a.N},
				})
			}
		}
	}

	// Raw stream: round-trips as nested slices, CC events as instants.
	for i := range s.Events {
		e := &s.Events[i]
		switch e.Kind {
		case KindRTT:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("RTT x%d", e.Ops), Cat: "rdma", Ph: "X",
				Ts: usTime(e.At) - usDur(e.Latency), Dur: usDur(e.Latency),
				Pid: pidCluster, Tid: e.Coord,
				Args: map[string]any{
					"span": e.Span, "attempt": e.Attempt, "phase": e.Phase.String(),
					"qp": e.QP, "region": e.Region, "ops": e.Ops, "bytes": e.Bytes,
				},
			})
		case KindConflict:
			args := cellKey(e)
			args["span"] = e.Span
			evs = append(evs, chromeEvent{
				Name: "conflict", Cat: "cc", Ph: "i", S: "t",
				Ts: usTime(e.At), Pid: pidCluster, Tid: e.Coord, Args: args,
			})
		case KindLockAcquire, KindLockPiggyback, KindLockRelease:
			args := cellKey(e)
			args["span"] = e.Span
			evs = append(evs, chromeEvent{
				Name: e.Kind.String(), Cat: "lock", Ph: "i", S: "t",
				Ts: usTime(e.At), Pid: pidCluster, Tid: e.Coord, Args: args,
			})
		case KindENOverflow:
			evs = append(evs, chromeEvent{
				Name: "en-overflow", Cat: "cc", Ph: "i", S: "t",
				Ts: usTime(e.At), Pid: pidCluster, Tid: e.Coord,
				Args: map[string]any{"table": int(e.Table), "key": uint64(e.Key), "cell": e.Cell, "span": e.Span},
			})
		case KindTxnAbort:
			evs = append(evs, chromeEvent{
				Name: "abort:" + e.Reason, Cat: "txn", Ph: "i", S: "t",
				Ts: usTime(e.At), Pid: pidCluster, Tid: e.Coord,
				Args: map[string]any{"span": e.Span, "attempt": e.Attempt, "falseConflict": e.False},
			})
		case KindProcSpawn, KindProcBlock, KindProcWake, KindProcFinish:
			args := map[string]any{"proc": e.Label}
			if e.Reason != "" {
				args["queue"] = e.Reason
			}
			evs = append(evs, chromeEvent{
				Name: e.Kind.String(), Cat: "sim", Ph: "i", S: "t",
				Ts: usTime(e.At), Pid: pidSim, Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
