package bench

import (
	"fmt"
	"sort"
	"strings"
)

// KOPSDelta is one run's throughput change against a baseline.
type KOPSDelta struct {
	Key     string  // canonical RunSpec key
	Base    float64 // baseline KOPS
	Cur     float64 // current KOPS
	Percent float64 // 100*(Cur-Base)/Base (0 when Base is 0)
}

// Comparison summarizes a result set against a baseline result set:
// per-run KOPS deltas for the keys both contain, plus the keys only
// one side has (a matrix change, not a regression).
type Comparison struct {
	Deltas  []KOPSDelta // sorted by key
	Missing []string    // keys in the baseline absent from the current set
	Added   []string    // keys in the current set absent from the baseline
}

// CompareResultSets diffs cur against base by canonical run key.
func CompareResultSets(base, cur *ResultSet) *Comparison {
	baseBy := make(map[string]*RunRecord, len(base.Runs))
	for _, r := range base.Runs {
		baseBy[r.Key] = r
	}
	c := &Comparison{}
	seen := make(map[string]bool, len(cur.Runs))
	for _, r := range cur.Runs {
		seen[r.Key] = true
		b, ok := baseBy[r.Key]
		if !ok {
			c.Added = append(c.Added, r.Key)
			continue
		}
		d := KOPSDelta{Key: r.Key, Base: b.KOPS, Cur: r.KOPS}
		if b.KOPS != 0 {
			d.Percent = 100 * (r.KOPS - b.KOPS) / b.KOPS
		}
		c.Deltas = append(c.Deltas, d)
	}
	for key := range baseBy {
		if !seen[key] {
			c.Missing = append(c.Missing, key)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Key < c.Deltas[j].Key })
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c
}

// Format renders the comparison as a text table: one row per shared
// run with baseline, current and percent KOPS delta, then the
// worst-regression summary line the CI log greps for.
func (c *Comparison) Format() string {
	var sb strings.Builder
	w := 4
	for _, d := range c.Deltas {
		if len(d.Key) > w {
			w = len(d.Key)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %10s  %10s  %8s\n", w, "run", "base KOPS", "cur KOPS", "delta")
	worst := 0.0
	worstKey := ""
	for _, d := range c.Deltas {
		fmt.Fprintf(&sb, "%-*s  %10.1f  %10.1f  %+7.1f%%\n", w, d.Key, d.Base, d.Cur, d.Percent)
		if d.Percent < worst {
			worst, worstKey = d.Percent, d.Key
		}
	}
	for _, key := range c.Missing {
		fmt.Fprintf(&sb, "%-*s  %10s\n", w, key, "(baseline only)")
	}
	for _, key := range c.Added {
		fmt.Fprintf(&sb, "%-*s  %10s\n", w, key, "(new run)")
	}
	if worstKey != "" {
		fmt.Fprintf(&sb, "worst KOPS regression: %+.1f%% (%s) across %d shared runs\n",
			worst, worstKey, len(c.Deltas))
	} else {
		fmt.Fprintf(&sb, "no KOPS regression across %d shared runs\n", len(c.Deltas))
	}
	return sb.String()
}
