package bench

import (
	"fmt"
	"sort"
	"strings"
)

// P99TolerancePercent is the tail-latency regression threshold the
// comparison summary flags: a shared run whose p99 latency grew by
// more than this percentage over the baseline is called out in the
// worst-regression line (throughput deltas stay informational).
const P99TolerancePercent = 25.0

// KOPSDelta is one run's throughput and tail-latency change against a
// baseline.
type KOPSDelta struct {
	Key     string  // canonical RunSpec key
	Base    float64 // baseline KOPS
	Cur     float64 // current KOPS
	Percent float64 // 100*(Cur-Base)/Base (0 when Base is 0)

	BaseP99    float64 // baseline p99 latency (µs)
	CurP99     float64 // current p99 latency (µs)
	P99Percent float64 // 100*(CurP99-BaseP99)/BaseP99 (0 when BaseP99 is 0)
}

// Comparison summarizes a result set against a baseline result set:
// per-run KOPS and p99 latency deltas for the keys both contain, plus
// the keys only one side has (a matrix change, not a regression).
type Comparison struct {
	Deltas  []KOPSDelta // sorted by key
	Missing []string    // keys in the baseline absent from the current set
	Added   []string    // keys in the current set absent from the baseline
}

// CompareResultSets diffs cur against base by canonical run key.
func CompareResultSets(base, cur *ResultSet) *Comparison {
	baseBy := make(map[string]*RunRecord, len(base.Runs))
	for _, r := range base.Runs {
		baseBy[r.Key] = r
	}
	c := &Comparison{}
	seen := make(map[string]bool, len(cur.Runs))
	for _, r := range cur.Runs {
		seen[r.Key] = true
		b, ok := baseBy[r.Key]
		if !ok {
			c.Added = append(c.Added, r.Key)
			continue
		}
		d := KOPSDelta{Key: r.Key, Base: b.KOPS, Cur: r.KOPS,
			BaseP99: b.Latency.P99, CurP99: r.Latency.P99}
		if b.KOPS != 0 {
			d.Percent = 100 * (r.KOPS - b.KOPS) / b.KOPS
		}
		if d.BaseP99 != 0 {
			d.P99Percent = 100 * (d.CurP99 - d.BaseP99) / d.BaseP99
		}
		c.Deltas = append(c.Deltas, d)
	}
	for key := range baseBy {
		if !seen[key] {
			c.Missing = append(c.Missing, key)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Key < c.Deltas[j].Key })
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c
}

// Format renders the comparison as a text table: one row per shared
// run with baseline, current and percent deltas for KOPS and p99
// latency, then the worst-regression summary lines the CI log greps
// for. A p99 regression beyond P99TolerancePercent is flagged on its
// summary line.
func (c *Comparison) Format() string {
	var sb strings.Builder
	w := 4
	for _, d := range c.Deltas {
		if len(d.Key) > w {
			w = len(d.Key)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %10s  %10s  %8s  %9s  %9s  %8s\n", w, "run",
		"base KOPS", "cur KOPS", "delta", "base p99", "cur p99", "p99 Δ")
	worst := 0.0
	worstKey := ""
	worstP99 := 0.0
	worstP99Key := ""
	for _, d := range c.Deltas {
		fmt.Fprintf(&sb, "%-*s  %10.1f  %10.1f  %+7.1f%%  %9.1f  %9.1f  %+7.1f%%\n",
			w, d.Key, d.Base, d.Cur, d.Percent, d.BaseP99, d.CurP99, d.P99Percent)
		if d.Percent < worst {
			worst, worstKey = d.Percent, d.Key
		}
		// Latency regresses upward: the worst run grew its p99 the most.
		if d.P99Percent > worstP99 {
			worstP99, worstP99Key = d.P99Percent, d.Key
		}
	}
	for _, key := range c.Missing {
		fmt.Fprintf(&sb, "%-*s  %10s\n", w, key, "(baseline only)")
	}
	for _, key := range c.Added {
		fmt.Fprintf(&sb, "%-*s  %10s\n", w, key, "(new run)")
	}
	if worstKey != "" {
		fmt.Fprintf(&sb, "worst KOPS regression: %+.1f%% (%s) across %d shared runs\n",
			worst, worstKey, len(c.Deltas))
	} else {
		fmt.Fprintf(&sb, "no KOPS regression across %d shared runs\n", len(c.Deltas))
	}
	if worstP99Key != "" {
		flag := ""
		if worstP99 > P99TolerancePercent {
			flag = fmt.Sprintf(" [exceeds +%.0f%% threshold]", P99TolerancePercent)
		}
		fmt.Fprintf(&sb, "worst p99 latency regression: %+.1f%% (%s) across %d shared runs%s\n",
			worstP99, worstP99Key, len(c.Deltas), flag)
	} else {
		fmt.Fprintf(&sb, "no p99 latency regression across %d shared runs\n", len(c.Deltas))
	}
	return sb.String()
}
