package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"crest/internal/metrics"
	"crest/internal/scenario"
	"crest/internal/sim"
)

func parseSpec(t *testing.T, text string) *scenario.Spec {
	t.Helper()
	s, err := scenario.Parse(strings.NewReader(text), "test")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScenarioSpecMatchesHandCodedRun is the byte-equality contract:
// a spec describing a static workload commits exactly the schedule of
// the equivalent hand-coded configuration — same events, same
// commits, same aborts, same latency distribution.
func TestScenarioSpecMatchesHandCodedRun(t *testing.T) {
	p := matrixProfile()
	spec := parseSpec(t, `
workload=ycsb
readproportion=0.5
updateproportion=0.5
requestdistribution=zipfian
theta=0.99
recordspertxn=4
`)
	gen, err := p.ScenarioWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Workload: p.YCSB(0.99, 0.5, 4), Coordinators: 12,
		Seed: 1, Duration: p.Duration, Warmup: p.Warmup, Replicas: 1}
	viaSpec := base
	viaSpec.Workload = gen
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(viaSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != want.Events {
		t.Fatalf("events %d != %d: the trivial scenario perturbed the schedule", got.Events, want.Events)
	}
	if got.Committed != want.Committed || got.Aborted != want.Aborted || got.FalseAborts != want.FalseAborts {
		t.Fatalf("outcome diverged: spec %d/%d/%d, hand-coded %d/%d/%d",
			got.Committed, got.Aborted, got.FalseAborts, want.Committed, want.Aborted, want.FalseAborts)
	}
	if got.Lat.P50() != want.Lat.P50() || got.Lat.P999() != want.Lat.P999() {
		t.Fatal("latency distribution diverged")
	}
	if got.Verbs != want.Verbs {
		t.Fatalf("verb counts diverged: %+v vs %+v", got.Verbs, want.Verbs)
	}
}

// TestDriftDemoDeterministicAcrossEngines runs the hotspot-drift demo
// twice per engine and demands identical records, phases included.
func TestDriftDemoDeterministicAcrossEngines(t *testing.T) {
	p := matrixProfile()
	demo := scenario.DriftDemo()
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		spec := p.ScenarioSpec(system, demo, p.MaxCoords)
		cfg, err := spec.config(p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		if a.Events != b.Events || a.Committed != b.Committed || a.Aborted != b.Aborted {
			t.Fatalf("%s: drift run not reproducible: %d/%d/%d vs %d/%d/%d", system,
				a.Events, a.Committed, a.Aborted, b.Events, b.Committed, b.Aborted)
		}
		if !reflect.DeepEqual(a.ScenarioPhases, b.ScenarioPhases) {
			t.Fatalf("%s: phase stats not reproducible:\n%+v\n%+v", system, a.ScenarioPhases, b.ScenarioPhases)
		}
		if len(a.ScenarioPhases) != len(demo.Timeline) {
			t.Fatalf("%s: %d phase stats for %d phases", system, len(a.ScenarioPhases), len(demo.Timeline))
		}
		for i, ps := range a.ScenarioPhases {
			if ps.Commits == 0 {
				t.Fatalf("%s: phase %d committed nothing: %+v", system, i+1, a.ScenarioPhases)
			}
		}
	}
}

// windowMeans averages a ratio of two counter series over the windows
// inside [from, to).
func windowMeans(s *metrics.Snapshot, num, den *metrics.Series, from, to sim.Time) float64 {
	sumN, sumD := 0.0, 0.0
	for i, t0 := range s.Times {
		if t0 < from || t0 >= to {
			continue
		}
		if i < len(num.Samples) {
			sumN += num.Samples[i]
		}
		if i < len(den.Samples) {
			sumD += den.Samples[i]
		}
	}
	if sumD == 0 {
		return 0
	}
	return sumN / sumD
}

// TestDriftShiftsWindowedAbortRate asserts the demo's headline: the
// windowed abort-rate time-series visibly shifts at each drift phase
// boundary (load collapse into phase 2, bursts plus a fresh hot set
// in phase 3).
func TestDriftShiftsWindowedAbortRate(t *testing.T) {
	p := matrixProfile()
	demo := scenario.DriftDemo()
	gen, err := p.ScenarioWorkload(demo)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
	cfg := Config{Workload: gen, Coordinators: 24, Seed: 1,
		Duration: demo.TimelineDuration(), Warmup: 200 * sim.Microsecond,
		Replicas: 1, Metrics: reg}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	attempts := snap.Find("crest_txn_attempts_total", "")
	commits := snap.Find("crest_txn_commits_total", "")
	if attempts == nil || commits == nil {
		t.Fatal("txn counters missing from snapshot")
	}
	boundary1 := sim.Time(demo.PhaseStart(1))
	boundary2 := sim.Time(demo.PhaseStart(2))
	end := sim.Time(demo.TimelineDuration())
	abort := func(from, to sim.Time) float64 {
		return 1 - windowMeans(snap, commits, attempts, from, to)
	}
	rate := func(from, to sim.Time) float64 {
		sum := 0.0
		for i, t0 := range snap.Times {
			if t0 >= from && t0 < to && i < len(attempts.Samples) {
				sum += attempts.Samples[i]
			}
		}
		return sum / float64((to-from)/sim.Time(100*sim.Microsecond))
	}
	p1, p2, p3 := abort(0, boundary1), abort(boundary1, boundary2), abort(boundary2, end)
	a1, a2, a3 := rate(0, boundary1), rate(boundary1, boundary2), rate(boundary2, end)
	t.Logf("windowed abort rate: phase1=%.3f phase2=%.3f phase3=%.3f", p1, p2, p3)
	t.Logf("attempts per window: phase1=%.1f phase2=%.1f phase3=%.1f", a1, a2, a3)
	// Phase 2 drops to 30% load. Offered traffic falls less than
	// linearly (the few admitted coordinators contend less and cycle
	// faster), but both traffic and the abort rate must visibly drop.
	if a2 >= a1*0.9 {
		t.Fatalf("offered load did not drop at boundary 1: %.1f -> %.1f attempts/window", a1, a2)
	}
	if p2 >= p1-0.05 {
		t.Fatalf("abort rate did not visibly drop with the load trough: %.3f -> %.3f", p1, p2)
	}
	// Phase 3 bursts back to full load half the time: traffic and
	// contention climb again over the trough.
	if a3 <= a2*1.1 {
		t.Fatalf("bursts did not raise offered load at boundary 2: %.1f -> %.1f attempts/window", a2, a3)
	}
	if p3 <= p2+0.05 {
		t.Fatalf("abort rate did not visibly rise with the bursts: %.3f -> %.3f", p2, p3)
	}
}

// TestDriftBoundaryMidWindowCSVStable is the awkward-alignment case:
// a phase boundary landing mid-metrics-window (1.05 ms boundaries
// against 100 µs windows) must still produce byte-identical windowed
// CSV across same-seed runs.
func TestDriftBoundaryMidWindowCSVStable(t *testing.T) {
	p := matrixProfile()
	spec := parseSpec(t, `
workload=ycsb
theta=0.99
phase.1.type=constant
phase.1.duration=1050us
phase.1.load=1.0
phase.2.type=constant
phase.2.duration=1050us
phase.2.load=0.4
phase.2.hotspot=0.5
`)
	csv := func() []byte {
		gen, err := p.ScenarioWorkload(spec)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
		cfg := Config{Workload: gen, Coordinators: 12, Seed: 1,
			Duration: spec.TimelineDuration(), Warmup: 200 * sim.Microsecond,
			Replicas: 1, Metrics: reg}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WriteCSV(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := csv(), b2(csv)
	if !bytes.Equal(a, b) {
		t.Fatal("windowed CSV diverged across same-seed runs with a mid-window phase boundary")
	}
	if !bytes.Contains(a, []byte("crest_txn_attempts_total")) {
		t.Fatalf("CSV lacks the attempts series:\n%s", a[:min(len(a), 400)])
	}
}

func b2(f func() []byte) []byte { return f() }

// TestScenarioRunSpecKeyDedupes checks the matrix identity: equal
// scenarios share a key (and so memoize), different timelines do not.
func TestScenarioRunSpecKeyDedupes(t *testing.T) {
	p := matrixProfile()
	a := p.ScenarioSpec(CREST, scenario.DriftDemo(), 12)
	b := p.ScenarioSpec(CREST, scenario.DriftDemo(), 12)
	if a.Key() != b.Key() {
		t.Fatalf("equal scenarios, different keys:\n%s\n%s", a.Key(), b.Key())
	}
	other := scenario.DriftDemo()
	other.Timeline[0].Load = 0.9
	c := p.ScenarioSpec(CREST, other, 12)
	if c.Key() == a.Key() {
		t.Fatal("different timelines, same run key")
	}
	plain := p.Spec(CREST, YCSBSpec(0.99, 0.5, 4), 12)
	if plain.Key() == a.Key() {
		t.Fatal("scenario run key collides with a plain run key")
	}
	if !strings.Contains(a.Key(), "|scn:drift-demo@") {
		t.Fatalf("key lacks the scenario segment: %s", a.Key())
	}
}

// TestScenarioExperimentRenders drives the scenario experiment
// standalone at test scale and checks its table shape.
func TestScenarioExperimentRenders(t *testing.T) {
	p := matrixProfile()
	tables, err := Experiments["scenario"].Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "scenario-drift" {
		t.Fatalf("tables = %+v", tables)
	}
	tab := tables[0]
	// Three phases plus the total row, and per-system commit/abort
	// columns that actually populated.
	if len(tab.Rows) != len(scenario.DriftDemo().Timeline)+1 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v vs header %v", row, tab.Header)
		}
		for _, cell := range row[3:] {
			if cell == "0" {
				t.Fatalf("empty measurement in row %v", row)
			}
		}
	}
}
