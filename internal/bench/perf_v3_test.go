package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The v3 perf object round-trips: the workers and per-partition fields
// survive encode/decode byte-for-byte, and a perf-free document omits
// them entirely (the deterministic artifact is unchanged).
func TestPerfV3FieldsRoundTrip(t *testing.T) {
	set := &ResultSet{
		Schema:  SchemaVersion,
		Profile: "quick",
		Perf: &BenchPerf{
			SimWallMS:        2.5,
			Events:           100,
			EventsPerSec:     4e4,
			Simulated:        3,
			Workers:          4,
			PartEvents:       []uint64{40, 35, 25},
			PartEventsPerSec: []float64{1.6e4, 1.4e4, 1e4},
		},
	}
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"workers": 4`, `"part_events"`, `"part_events_per_sec"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("encoded perf lacks %s:\n%s", field, buf.String())
		}
	}
	got, err := DecodeResultSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Perf, set.Perf) {
		t.Fatalf("perf round-tripped to %+v, want %+v", got.Perf, set.Perf)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoded measured set differs")
	}

	// Single-partition invocations omit the new fields: the perf object
	// of a classic run keeps its v2 shape modulo the workers count.
	set.Perf = &BenchPerf{SimWallMS: 1, Events: 10, EventsPerSec: 1e4, Simulated: 1, Workers: 1}
	buf.Reset()
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "part_events") {
		t.Errorf("unpartitioned perf emitted per-partition fields:\n%s", buf.String())
	}
}

// A matrix invocation with partitioned runs populates the per-partition
// perf fields from the runtime introspection, and the comparison path
// never reads perf (wall-clock must not gate CI).
func TestMatrixPerfCollectsPartitionEvents(t *testing.T) {
	p := matrixProfile()
	spec := p.Spec(CREST, SmallBankSpec(0.5), 12)
	spec.Shards = 3
	spec.Placement = "modulo"
	r := NewRunner(p, MatrixOptions{SimWorkers: 2})
	if _, err := r.Get(spec); err != nil {
		t.Fatal(err)
	}
	perf := r.Perf()
	if perf == nil {
		t.Fatal("no perf collected")
	}
	if perf.Workers != 2 {
		t.Fatalf("perf workers = %d, want 2", perf.Workers)
	}
	if len(perf.PartEvents) != 3 {
		t.Fatalf("perf has %d partition event sums, want 3", len(perf.PartEvents))
	}
	var sum uint64
	for _, n := range perf.PartEvents {
		if n == 0 {
			t.Fatalf("a partition dispatched no events: %v", perf.PartEvents)
		}
		sum += n
	}
	if sum != perf.Events {
		t.Fatalf("per-partition events sum %d != total %d", sum, perf.Events)
	}
	if len(perf.PartEventsPerSec) != len(perf.PartEvents) {
		t.Fatalf("rates len %d != events len %d", len(perf.PartEventsPerSec), len(perf.PartEvents))
	}
}
