package bench

import (
	"fmt"

	"crest/internal/engine"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// oneTxnVerbs loads the configured workload, executes exactly one
// transaction on one coordinator with no contention, and returns the
// verbs that attempt issued — the measurement behind Table 2.
func oneTxnVerbs(cfg Config) (rdma.Stats, error) {
	cfg = cfg.WithDefaults()
	gen := cfg.Workload()
	env := sim.NewEnv(cfg.Seed)
	fabric := rdma.NewFabric(env, cfg.Params)
	pool := memnode.NewPool(fabric, cfg.MemNodes, PoolBytes(gen.Tables(), 1), cfg.Replicas)
	db := engine.NewDB(pool)
	if cfg.Trace != nil {
		env.SetObserver(cfg.Trace)
		fabric.SetRecorder(cfg.Trace)
		db.Trace = cfg.Trace
	}
	sys, err := NewSystem(cfg.System, db)
	if err != nil {
		return rdma.Stats{}, err
	}
	for _, def := range gen.Tables() {
		sys.CreateTable(def.Schema, def.Capacity)
	}
	gen.Load(sys.Load)
	if err := sys.FinishLoad(); err != nil {
		return rdma.Stats{}, err
	}
	node := sys.NewComputeNode(0)
	node.WarmCache()
	coord := node.NewCoordinator(0)
	var verbs rdma.Stats
	var attemptErr error
	env.Spawn("one-txn", func(p *sim.Proc) {
		a := coord.Execute(p, gen.Next(p.Rand()))
		if !a.Committed {
			attemptErr = fmt.Errorf("bench: uncontended txn aborted: %v", a.Reason)
		}
		verbs = a.Verbs
	})
	if err := env.Run(); err != nil {
		return rdma.Stats{}, err
	}
	return verbs, attemptErr
}
