package bench

import (
	"bytes"
	"reflect"
	"testing"

	"crest/internal/causality"
	"crest/internal/flight"
	"crest/internal/metrics"
	"crest/internal/sim"
	"crest/internal/trace"
)

// observedArtifacts is everything a fully observed run exports: the
// rendered bytes of each observer plane plus the deterministic fields
// of the run itself.
type observedArtifacts struct {
	res     Result
	chrome  []byte
	metJSON []byte
	metCSV  []byte
	metProm []byte
	whyDOT  []byte
	whyJSON []byte
	flJSON  []byte
	flTail  []byte
}

// runObserved executes the canonical partitioned configuration with all
// three observers attached at the given worker count and renders every
// export.
func runObserved(t *testing.T, system SystemKind, workers int) observedArtifacts {
	t.Helper()
	cfg := shardedCfg(system, 3, "modulo")
	cfg.Workers = workers
	rec := trace.NewRecorder(0)
	reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
	why := causality.NewRecorder(causality.Options{})
	fl := flight.NewRecorder(flight.Options{})
	cfg.Trace = rec
	cfg.Metrics = reg
	cfg.Why = why
	cfg.Flight = fl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := observedArtifacts{res: res}
	var buf bytes.Buffer
	render := func(name string, f func() error) []byte {
		buf.Reset()
		if err := f(); err != nil {
			t.Fatalf("rendering %s: %v", name, err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	tsnap := rec.Snapshot()
	a.chrome = render("chrome trace", func() error { return trace.WriteChromeTrace(&buf, tsnap) })
	msnap := reg.Snapshot()
	a.metJSON = render("metrics json", func() error { return metrics.WriteJSON(&buf, msnap) })
	a.metCSV = render("metrics csv", func() error { return metrics.WriteCSV(&buf, msnap) })
	a.metProm = render("metrics prom", func() error { return metrics.WritePrometheus(&buf, msnap) })
	wsnap := why.Snapshot()
	a.whyDOT = render("why dot", func() error { return causality.WriteDOT(&buf, wsnap) })
	a.whyJSON = render("why json", func() error { return causality.WriteJSON(&buf, wsnap) })
	fsnap := fl.Snapshot()
	a.flJSON = render("flight json", func() error { return flight.WriteJSON(&buf, fsnap) })
	a.flTail = render("flight tail", func() error { return flight.WriteTail(&buf, fsnap, 3) })
	return a
}

// The parallel-observability contract: a fully observed partitioned run
// (trace + metrics + why) is byte-identical at every worker count. The
// recorders shard per partition and merge deterministically, so neither
// the schedule nor any rendered export may depend on the thread count.
func TestObservedPartitionedByteIdenticalAcrossWorkers(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			base := runObserved(t, system, 1)
			if base.res.Committed == 0 {
				t.Fatal("no commits on the observed partitioned run")
			}
			for _, workers := range []int{2, 8} {
				got := runObserved(t, system, workers)
				if got.res.Events != base.res.Events || !reflect.DeepEqual(got.res.Run, base.res.Run) {
					t.Fatalf("workers=%d changed the observed schedule: %d vs %d events",
						workers, got.res.Events, base.res.Events)
				}
				for _, d := range []struct {
					name       string
					want, have []byte
				}{
					{"chrome trace", base.chrome, got.chrome},
					{"metrics json", base.metJSON, got.metJSON},
					{"metrics csv", base.metCSV, got.metCSV},
					{"metrics prom", base.metProm, got.metProm},
					{"why dot", base.whyDOT, got.whyDOT},
					{"why json", base.whyJSON, got.whyJSON},
					{"flight json", base.flJSON, got.flJSON},
					{"flight tail", base.flTail, got.flTail},
				} {
					if !bytes.Equal(d.want, d.have) {
						t.Errorf("workers=%d: %s export differs from workers=1 (%d vs %d bytes)",
							workers, d.name, len(d.have), len(d.want))
					}
				}
			}
		})
	}
}

// Observation must not perturb the partitioned schedule: the fully
// observed run dispatches exactly the events and fabric traffic of the
// unobserved one, at any worker count.
func TestObservedPartitionedMatchesUnobservedSchedule(t *testing.T) {
	plain := runWorkers(t, CREST, 1, false)
	for _, workers := range []int{1, 8} {
		got := runObserved(t, CREST, workers)
		if got.res.Events != plain.Events {
			t.Fatalf("observers at workers=%d changed the schedule: %d vs %d events",
				workers, got.res.Events, plain.Events)
		}
		if got.res.Verbs != plain.Verbs {
			t.Fatalf("observers at workers=%d changed fabric traffic:\n%+v\nvs\n%+v",
				workers, got.res.Verbs, plain.Verbs)
		}
		if !reflect.DeepEqual(got.res.Run, plain.Run) {
			t.Fatalf("observers at workers=%d changed the measured aggregate:\n%+v\nvs\n%+v",
				workers, got.res.Run, plain.Run)
		}
	}
}

// Runtime introspection sanity on a fully observed partitioned run: the
// schedule-derived counters reconcile with the run (every dispatched
// event belongs to exactly one partition; cross-partition sends equal
// receptions; windows respect the lookahead).
func TestRuntimeStatsReconcile(t *testing.T) {
	got := runObserved(t, CREST, 2)
	ri := got.res.Runtime
	if ri == nil || ri.Sim == nil {
		t.Fatal("partitioned run returned no runtime introspection")
	}
	rs := ri.Sim
	if rs.Parts != 3 || ri.Workers != 2 {
		t.Fatalf("topology mismatch: parts=%d workers=%d", rs.Parts, ri.Workers)
	}
	if rs.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	if avg := rs.WidthAvg(); avg <= 0 || sim.Duration(avg) > rs.Lookahead {
		t.Fatalf("window width avg %.1f out of (0, lookahead=%d]", avg, rs.Lookahead)
	}
	var events, sent, injected uint64
	for _, ps := range rs.PartStats {
		events += ps.Events
		sent += ps.Sent
		injected += ps.Injected
		if ps.Injected > 0 && ps.MailboxHWM == 0 {
			t.Fatalf("partition %d injected %d messages but mailbox HWM is 0", ps.Part, ps.Injected)
		}
	}
	if events != got.res.Events {
		t.Fatalf("per-partition events sum %d != run events %d", events, got.res.Events)
	}
	if sent != injected {
		t.Fatalf("cross-partition sends %d != injections %d", sent, injected)
	}
	if len(ri.Cross) != rs.Parts {
		t.Fatalf("cross-lane stats for %d lanes, want %d", len(ri.Cross), rs.Parts)
	}
	var cross uint64
	for _, st := range ri.Cross {
		cross += st.Total()
	}
	if cross == 0 {
		t.Fatal("modulo placement on 3 groups produced no cross-partition verbs")
	}
}
