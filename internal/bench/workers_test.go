package bench

import (
	"reflect"
	"testing"

	"crest/internal/sim"
)

// runWorkers executes one sharded configuration at the given worker
// count and returns the result.
func runWorkers(t *testing.T, system SystemKind, workers int, check bool) Result {
	t.Helper()
	cfg := shardedCfg(system, 3, "modulo")
	cfg.Workers = workers
	cfg.CheckHistory = check
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The tentpole contract: a partitioned run is byte-identical at every
// worker count — the thread count selects wall-clock speed, never the
// schedule. Every deterministic field of the result must agree.
func TestPartitionedByteIdenticalAcrossWorkers(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			base := runWorkers(t, system, 1, false)
			if base.Committed == 0 {
				t.Fatal("no commits on the partitioned run")
			}
			for _, workers := range []int{2, 8} {
				res := runWorkers(t, system, workers, false)
				if res.Events != base.Events {
					t.Fatalf("workers=%d changed the schedule: %d vs %d events",
						workers, res.Events, base.Events)
				}
				if res.Verbs != base.Verbs {
					t.Fatalf("workers=%d changed fabric traffic:\n%+v\nvs\n%+v",
						workers, res.Verbs, base.Verbs)
				}
				if !reflect.DeepEqual(res.Run, base.Run) {
					t.Fatalf("workers=%d changed the measured aggregate:\n%+v\nvs\n%+v",
						workers, res.Run, base.Run)
				}
			}
		})
	}
}

// A partitioned run's history — partition forks folded back in
// partition order — must pass the serializability check: HLC
// timestamps order cross-partition conflicts exactly like the
// sequential oracle ordered single-partition ones.
func TestPartitionedHistorySerializable(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			res := runWorkers(t, system, 4, true)
			if res.History == nil {
				t.Fatal("no history recorded")
			}
			if res.HistoryErr != nil {
				t.Fatalf("partitioned history not serializable: %v", res.HistoryErr)
			}
			if res.Committed == 0 {
				t.Fatal("no commits recorded")
			}
		})
	}
}

// Workers is invocation-level: on a topology that is not partitioned
// (single shard group), any worker count takes the classic sequential
// scheduler and produces the identical result.
func TestWorkersIgnoredOnSingleGroup(t *testing.T) {
	run := func(workers int) Result {
		cfg := shortCfg(CREST, tinySmallBank)
		cfg.Duration = 3 * sim.Millisecond
		cfg.Warmup = 500 * sim.Microsecond
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, eight := run(0), run(8)
	if base.Events != eight.Events || !reflect.DeepEqual(base.Run, eight.Run) {
		t.Fatalf("Workers perturbed a single-group run: %d vs %d events", base.Events, eight.Events)
	}
}

// A partition-unsafe workload (TPC-C mutates generator state per draw)
// must fall back to the sequential scheduler even on a sharded
// topology — and still run.
func TestPartitionUnsafeWorkloadFallsBack(t *testing.T) {
	cfg := shardedCfg(CREST, 3, "modulo")
	cfg.Workload = tinyTPCC
	cfg.Workers = 8
	if cfg.Partitioned(tinyTPCC()) {
		t.Fatal("TPC-C must not be partition-safe")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no commits on the fallback path")
	}
}
