package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"crest/internal/sim"
	"crest/internal/trace"
)

// tracedRun executes a short contended run with tracing on and
// returns the Chrome JSON export.
func tracedRun(t *testing.T, system SystemKind, seed int64) ([]byte, *trace.Snapshot) {
	t.Helper()
	rec := trace.NewRecorder(0)
	cfg := shortCfg(system, tinySmallBank)
	cfg.Seed = seed
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snap
}

func TestTraceDeterministicByteIdentical(t *testing.T) {
	a, _ := tracedRun(t, CREST, 11)
	b, _ := tracedRun(t, CREST, 11)
	if !bytes.Equal(a, b) {
		t.Fatal("two runs with the same seed produced different traces")
	}
	c, _ := tracedRun(t, CREST, 12)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceChromeExportAllEngines(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			out, snap := tracedRun(t, system, 3)
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(out, &doc); err != nil {
				t.Fatalf("invalid Chrome JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("no trace events")
			}
			spans := snap.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans reconstructed")
			}
			committed := 0
			for i := range spans {
				if spans[i].Committed {
					committed++
				}
			}
			if committed == 0 {
				t.Fatal("no committed spans in the trace")
			}
		})
	}
}

// TestTraceReconcilesWithTable2 runs exactly one uncontended SmallBank
// transaction per engine and checks that the span's per-phase RTT and
// verb attribution sums to the fabric's own counters — the measurement
// behind Table 2.
func TestTraceReconcilesWithTable2(t *testing.T) {
	for _, system := range []SystemKind{CREST, CRESTBase, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			rec := trace.NewRecorder(0)
			cfg := shortCfg(system, tinySmallBank)
			cfg.Trace = rec
			verbs, err := oneTxnVerbs(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spans := rec.Snapshot().Spans()
			if len(spans) != 1 {
				t.Fatalf("spans = %d, want 1", len(spans))
			}
			sv := spans[0]
			if !sv.Committed || len(sv.Attempts) != 1 {
				t.Fatalf("uncontended txn: %+v", sv)
			}
			a := sv.Attempts[0]
			if got, want := uint64(a.TotalRTTs()), verbs.RTTs; got != want {
				t.Errorf("trace RTTs = %d, fabric counted %d", got, want)
			}
			totalVerbs := 0
			for ph := trace.PhaseExec; ph < trace.NumPhases; ph++ {
				totalVerbs += a.Verbs[ph]
			}
			if got, want := uint64(totalVerbs), verbs.Total(); got != want {
				t.Errorf("trace verbs = %d, fabric counted %d", got, want)
			}
			// Every round-trip belongs to a phase that also spent
			// virtual time there. (Net can exceed the phase's wall
			// duration: PostMulti charges each concurrent replica batch
			// its own round-trip while the coordinator waits once.)
			for ph := trace.PhaseExec; ph < trace.NumPhases; ph++ {
				if a.RTT[ph] > 0 && (a.Dur[ph] <= 0 || a.Net[ph] <= 0) {
					t.Errorf("phase %v: %d RTTs but dur %v, net %v", ph, a.RTT[ph], a.Dur[ph], a.Net[ph])
				}
			}
		})
	}
}
