package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"crest/internal/sim"
	"crest/internal/workload/tpcc"
)

// matrixProfile is a miniature profile that exercises the exact code
// path of the quick/full profiles (same Profile struct, same
// experiment renderers, every experiment id) at test speed.
func matrixProfile() Profile {
	return Profile{
		Name:        "test",
		Duration:    1500 * sim.Microsecond,
		Warmup:      300 * sim.Microsecond,
		CoordSweep:  []int{6, 12},
		MaxCoords:   12,
		YCSBRecords: 3000,
		SBAccounts:  3000,
		TPCCScale: tpcc.Config{
			Districts:            4,
			CustomersPerDistrict: 8,
			Items:                64,
			OrdersPerDistrict:    16,
			MaxOrderLines:        10,
			HistoryCap:           1 << 10,
		},
		Replicas: 1,
		Seed:     1,
	}
}

func runMatrixJSON(t *testing.T, ids []string, p Profile, opt MatrixOptions) (*MatrixResult, string, []byte) {
	t.Helper()
	m, err := RunMatrix(ids, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ResultSet().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return m, m.FormatTables(), buf.Bytes()
}

// TestMatrixParallelMatchesSequential is the golden guarantee behind
// -j: the full experiment suite rendered with one worker and with
// eight workers produces byte-identical tables and byte-identical
// JSON records.
func TestMatrixParallelMatchesSequential(t *testing.T) {
	p := matrixProfile()
	_, seqTables, seqJSON := runMatrixJSON(t, nil, p, MatrixOptions{Workers: 1})
	_, parTables, parJSON := runMatrixJSON(t, nil, p, MatrixOptions{Workers: 8})
	if seqTables != parTables {
		t.Errorf("-j 1 and -j 8 tables differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", seqTables, parTables)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("-j 1 and -j 8 JSON records differ")
	}
	if seqTables == "" {
		t.Fatal("no tables rendered")
	}
}

// TestMatrixDedupesAcrossExperiments asserts the structural headline:
// exp1, exp2 and exp3 declare overlapping sweeps, and a shared matrix
// run simulates each unique spec exactly once.
func TestMatrixDedupesAcrossExperiments(t *testing.T) {
	p := matrixProfile()
	ids := []string{"exp1", "exp2", "exp3"}
	declared := 0
	unique := map[string]bool{}
	for _, id := range ids {
		for _, spec := range Experiments[id].Specs(p) {
			declared++
			unique[spec.Key()] = true
		}
	}
	// exp2 redraws exp1's grid and exp3 reuses its max-coordinator
	// column, so the unique set must be strictly smaller.
	if len(unique) >= declared {
		t.Fatalf("no cross-experiment overlap: %d declared, %d unique", declared, len(unique))
	}
	m, err := RunMatrix(ids, p, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Simulated != len(unique) {
		t.Errorf("simulated %d runs, want exactly the %d unique specs", m.Simulated, len(unique))
	}
	if len(m.Records) != len(unique) {
		t.Errorf("recorded %d runs, want %d", len(m.Records), len(unique))
	}
}

// TestMatrixDiskCache asserts the incremental-re-run contract: a
// second invocation against a warm cache performs zero simulations
// and still renders byte-identical output.
func TestMatrixDiskCache(t *testing.T) {
	p := matrixProfile()
	dir := t.TempDir()
	ids := []string{"fig3", "exp3", "table2"}
	opt := MatrixOptions{Workers: 4, CacheDir: dir}

	first, firstTables, firstJSON := runMatrixJSON(t, ids, p, opt)
	if first.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	second, secondTables, secondJSON := runMatrixJSON(t, ids, p, opt)
	if second.Simulated != 0 {
		t.Errorf("warm run simulated %d runs, want 0", second.Simulated)
	}
	if second.CacheHits != len(first.Records) {
		t.Errorf("warm run hit cache %d times, want %d", second.CacheHits, len(first.Records))
	}
	if firstTables != secondTables {
		t.Error("cached run rendered different tables")
	}
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Error("cached run produced different JSON")
	}
}

// TestMatrixCacheRejectsStaleSchema: entries written under a different
// schema version are misses, not misreads.
func TestMatrixCacheRejectsStaleSchema(t *testing.T) {
	p := matrixProfile()
	dir := t.TempDir()
	ids := []string{"table2"}
	first, err := RunMatrix(ids, p, MatrixOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(first.Records) {
		t.Fatalf("%d cache files for %d records", len(ents), len(first.Records))
	}
	for _, ent := range ents {
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		stale := bytes.Replace(data, []byte(SchemaVersion), []byte("crest-bench/v0"), 1)
		if err := os.WriteFile(path, stale, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	second, err := RunMatrix(ids, p, MatrixOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 0 {
		t.Errorf("stale-schema entries served %d cache hits", second.CacheHits)
	}
	if second.Simulated != len(first.Records) {
		t.Errorf("simulated %d, want %d after cache invalidation", second.Simulated, len(first.Records))
	}
}

func TestRunSpecKeyCanonical(t *testing.T) {
	p := matrixProfile()
	a := p.Spec(CREST, YCSBSpec(0.99, 0.5, 4), 12)
	b := p.Spec(CREST, YCSBSpec(0.99, 0.5, 4), 12)
	if a.Key() != b.Key() {
		t.Fatalf("identical specs key differently: %q vs %q", a.Key(), b.Key())
	}
	variants := []RunSpec{
		p.Spec(FORD, YCSBSpec(0.99, 0.5, 4), 12),
		p.Spec(CREST, YCSBSpec(0.9, 0.5, 4), 12),
		p.Spec(CREST, YCSBSpec(0.99, 0.75, 4), 12),
		p.Spec(CREST, YCSBSpec(0.99, 0.5, 2), 12),
		p.Spec(CREST, YCSBSpec(0.99, 0.5, 4), 6),
		p.Spec(CREST, SmallBankSpec(0.99), 12),
		p.Spec(CREST, TPCCSpec(40), 12),
	}
	seen := map[string]bool{a.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("spec %+v collides with an earlier key %q", v, v.Key())
		}
		seen[v.Key()] = true
	}
	// Seed, duration and profile scale are part of identity too.
	c := a
	c.Seed = 2
	d := a
	d.Duration = 2 * sim.Millisecond
	e := a
	e.Profile = "full"
	f := a
	f.OneTxn = true
	for _, v := range []RunSpec{c, d, e, f} {
		if v.Key() == a.Key() {
			t.Fatalf("spec %+v shares key with base spec", v)
		}
	}
}

// TestSpecsMatchRender: the dry-run spec discovery declares exactly
// the specs rendering consumes — for every experiment, rendering after
// Prime triggers no extra simulations.
func TestSpecsMatchRender(t *testing.T) {
	p := matrixProfile()
	for _, id := range []string{"fig4", "table1", "table2", "exp5"} {
		exp := Experiments[id]
		runner := NewRunner(p, MatrixOptions{})
		if err := runner.Prime(exp.Specs(p)); err != nil {
			t.Fatal(err)
		}
		primed := runner.Simulated()
		if _, err := exp.Render(p, runner.Get); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if runner.Simulated() != primed {
			t.Errorf("%s: render simulated %d runs beyond its declared specs", id, runner.Simulated()-primed)
		}
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	p := matrixProfile()
	m, err := RunMatrix([]string{"table2"}, p, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ResultSet().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaVersion+`"`) {
		t.Fatalf("encoded set lacks schema version:\n%s", buf.String())
	}
	got, err := DecodeResultSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile != p.Name {
		t.Errorf("profile %q, want %q", got.Profile, p.Name)
	}
	if len(got.Runs) != len(m.Records) {
		t.Fatalf("decoded %d runs, want %d", len(got.Runs), len(m.Records))
	}
	for i, rec := range got.Runs {
		want := m.Records[i]
		if !reflect.DeepEqual(rec, want) {
			t.Errorf("run %d round-tripped to %+v, want %+v", i, *rec, *want)
		}
		if rec.Key != rec.Spec.Key() {
			t.Errorf("run %d key %q does not match its spec key %q", i, rec.Key, rec.Spec.Key())
		}
	}
	// A re-encode of the decoded set is byte-identical (stable order,
	// no timestamps).
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoded result set differs")
	}
	// Wrong schema versions are rejected.
	bad := bytes.Replace(buf.Bytes(), []byte(SchemaVersion), []byte("crest-bench/v999"), 1)
	if _, err := DecodeResultSet(bytes.NewReader(bad)); err == nil {
		t.Error("foreign schema version accepted")
	}
}

// TestCoordinatorTotalExact: a total that does not divide the compute
// nodes runs exactly that many coordinators (the old CLI silently
// rounded 100 down to 99).
func TestCoordinatorTotalExact(t *testing.T) {
	cfg := shortCfg(CREST, tinyYCSB)
	cfg.CoordsPerCN = 0
	cfg.Coordinators = 10 // 3 compute nodes: 4+3+3
	cfg.Duration = 2 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coordinators != 10 {
		t.Fatalf("reported %d coordinators, want 10", res.Coordinators)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

// TestCoordinatorTotalMatchesPerCN: for divisible totals the two
// spellings are the same run, bit for bit.
func TestCoordinatorTotalMatchesPerCN(t *testing.T) {
	perCN := shortCfg(CREST, tinyYCSB)
	perCN.CoordsPerCN = 4
	perCN.Duration = 2 * sim.Millisecond
	total := perCN
	total.CoordsPerCN = 0
	total.Coordinators = 12
	a, err := Run(perCN)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(total)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Aborted != b.Aborted || a.Verbs != b.Verbs {
		t.Fatalf("total-coordinator spelling diverged: %d/%d/%+v vs %d/%d/%+v",
			a.Committed, a.Aborted, a.Verbs, b.Committed, b.Aborted, b.Verbs)
	}
	if a.Coordinators != b.Coordinators {
		t.Fatalf("coordinator counts differ: %d vs %d", a.Coordinators, b.Coordinators)
	}
}
