package bench

import (
	"strings"
	"testing"

	"crest/internal/metrics"
	"crest/internal/sim"
)

func shardedCfg(system SystemKind, shards int, pl string) Config {
	cfg := shortCfg(system, tinySmallBank)
	cfg.MemNodes = 2
	cfg.Shards = shards
	cfg.Placement = pl
	cfg.Duration = 3 * sim.Millisecond
	cfg.Warmup = 500 * sim.Microsecond
	return cfg
}

// Satellite guarantee: metering a sharded run must not change the
// simulated schedule — the per-shard gauges and cross-shard counters
// are observers, not participants.
func TestShardedMeteredByteIdenticalToPlain(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			run := func(reg *metrics.Registry) Result {
				cfg := shardedCfg(system, 3, "modulo")
				cfg.Metrics = reg
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
			plain, metered := run(nil), run(reg)
			if plain.Events != metered.Events {
				t.Fatalf("metrics changed the schedule: %d vs %d events", plain.Events, metered.Events)
			}
			if plain.Verbs != metered.Verbs {
				t.Fatalf("metrics changed fabric traffic: %+v vs %+v", plain.Verbs, metered.Verbs)
			}
			if plain.Committed != metered.Committed || plain.Aborted != metered.Aborted ||
				plain.CrossShard != metered.CrossShard || plain.CrossShardAborts != metered.CrossShardAborts {
				t.Fatalf("metrics changed outcomes: %+v vs %+v", plain.Run, metered.Run)
			}

			snap := reg.Snapshot()
			if se := snap.Find("crest_txn_cross_shard_total", ""); se == nil || se.Total == 0 {
				t.Fatalf("cross-shard counter missing or empty on a 3-group run: %+v", se)
			}
			// Every shard group exposes labeled per-shard series.
			for _, labels := range []string{`shard="0"`, `shard="1"`, `shard="2"`} {
				if snap.Find("crest_shard_commits_total", labels) == nil {
					t.Fatalf("per-shard commit counter {%s} missing", labels)
				}
				if snap.Find("crest_shard_txn_active", labels) == nil {
					t.Fatalf("per-shard active gauge {%s} missing", labels)
				}
			}
		})
	}
}

// A single-group run must not grow new series: the historical metric
// set is part of the shards=1 byte-stability contract, and cross-shard
// counters stay zero.
func TestSingleGroupMetricsUnchanged(t *testing.T) {
	reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
	cfg := shardedCfg(CREST, 1, "")
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossShard != 0 || res.CrossShardAborts != 0 {
		t.Fatalf("single-group run counted cross-shard txns: %d/%d", res.CrossShard, res.CrossShardAborts)
	}
	snap := reg.Snapshot()
	for i := range snap.Series {
		if strings.HasPrefix(snap.Series[i].Name, "crest_shard_") {
			t.Fatalf("single-group run exposes per-shard series %s{%s}", snap.Series[i].Name, snap.Series[i].Labels)
		}
	}
	if se := snap.Find("crest_txn_cross_shard_total", ""); se == nil {
		t.Fatal("cross-shard counter series should register (at zero) for schema stability")
	} else if se.Total != 0 {
		t.Fatalf("single-group cross-shard counter = %v", se.Total)
	}
}

// Scattering a skewed workload across groups by key modulo makes write
// transactions span groups; colocating the probed hot set (hotspot
// placement) brings a measurable share of them back to one group.
func TestHotspotPlacementReducesCrossShardShare(t *testing.T) {
	share := func(pl string) float64 {
		res, err := Run(shardedCfg(CREST, 4, pl))
		if err != nil {
			t.Fatal(err)
		}
		attempts := res.Committed + res.Aborted
		if attempts == 0 {
			t.Fatal("no attempts measured")
		}
		return float64(res.CrossShard) / float64(attempts)
	}
	modulo, hotspot := share("modulo"), share("hotspot")
	if modulo == 0 {
		t.Fatal("modulo placement produced no cross-shard transactions on 4 groups")
	}
	if hotspot >= modulo {
		t.Fatalf("hotspot placement did not reduce the cross-shard share: %.3f vs modulo %.3f", hotspot, modulo)
	}
}

// RunSpec keys: pre-sharding specs keep their exact historical keys
// (cache and golden compatibility), sharded specs append the topology
// segments.
func TestRunSpecKeyTopologySegments(t *testing.T) {
	p := Quick()
	base := p.Spec(CREST, SmallBankSpec(0.99), 24)
	want := "crest|smallbank(theta=0.9900)|c24|mn2|cn3|r1|d5000000|w1000000|s1|pquick|oncefalse"
	if got := base.Key(); got != want {
		t.Fatalf("classic key changed:\n got %s\nwant %s", got, want)
	}
	one := base
	one.Shards = 1
	one.Placement = "hash"
	if one.Key() != want {
		t.Fatalf("explicit shards=1/hash changed the key: %s", one.Key())
	}
	sharded := base
	sharded.Shards = 3
	sharded.Placement = "modulo"
	if got := sharded.Key(); got != want+"|sh3|plmodulo" {
		t.Fatalf("sharded key = %s", got)
	}
	polOnly := base
	polOnly.Placement = "range"
	if got := polOnly.Key(); got != want+"|sh1|plrange" {
		t.Fatalf("placement-only key = %s", got)
	}
}
