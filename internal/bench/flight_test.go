package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"crest/internal/flight"
	"crest/internal/sim"
)

// TestFlightRunByteIdenticalToPlainRun is the flight recorder's
// half of the observability contract: attaching it must not change
// the simulated schedule of any engine. Events counts every scheduler
// dispatch, so equality there pins the whole event sequence, and
// Verbs/latencies pin the protocol outcome.
func TestFlightRunByteIdenticalToPlainRun(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			run := func(rec *flight.Recorder) Result {
				cfg := shortCfg(system, tinySmallBank)
				cfg.Duration = 2 * sim.Millisecond
				cfg.Warmup = 200 * sim.Microsecond
				cfg.Flight = rec
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			rec := flight.NewRecorder(flight.Options{})
			plain, recorded := run(nil), run(rec)
			if plain.Committed != recorded.Committed || plain.Aborted != recorded.Aborted {
				t.Fatalf("recording changed outcomes: %d/%d vs %d/%d",
					plain.Committed, plain.Aborted, recorded.Committed, recorded.Aborted)
			}
			if plain.Events != recorded.Events {
				t.Fatalf("recording changed the schedule: %d vs %d events", plain.Events, recorded.Events)
			}
			if plain.Verbs != recorded.Verbs {
				t.Fatalf("recording changed fabric traffic: %+v vs %+v", plain.Verbs, recorded.Verbs)
			}
			if plain.Lat.Avg() != recorded.Lat.Avg() || plain.Lat.P99() != recorded.Lat.P99() {
				t.Fatalf("recording changed latencies: %v/%v vs %v/%v",
					plain.Lat.Avg(), plain.Lat.P99(), recorded.Lat.Avg(), recorded.Lat.P99())
			}
			if len(rec.Snapshot().Txns) == 0 {
				t.Fatal("no flight records captured")
			}
		})
	}
}

// TestFlightBudgetSumsExactly is the additivity guarantee for every
// engine: each committed transaction's budget components sum exactly
// to its measured virtual-time latency, the recorder sees exactly the
// transactions the stats pipeline measured, and the slowest flight
// record is the slowest latency sample.
func TestFlightBudgetSumsExactly(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			rec := flight.NewRecorder(flight.Options{})
			cfg := shortCfg(system, tinySmallBank)
			cfg.Duration = 2 * sim.Millisecond
			cfg.Warmup = 200 * sim.Microsecond
			cfg.Flight = rec
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			snap := rec.Snapshot()
			if rec.Dropped() != 0 {
				t.Fatalf("ring overflowed (%d dropped); widen TxnCapacity for this test", rec.Dropped())
			}
			committed, worst := 0, sim.Duration(0)
			for i := range snap.Txns {
				tx := &snap.Txns[i]
				if got, want := tx.Total(), tx.End.Sub(tx.Begin); got != want {
					t.Fatalf("txn %d budget sums to %v, elapsed is %v (%+v)", tx.ID, got, want, tx.Budget)
				}
				for c := flight.Component(0); c < flight.NumComponents; c++ {
					if tx.Budget[c] < 0 {
						t.Fatalf("txn %d has negative %v: %v", tx.ID, c, tx.Budget[c])
					}
				}
				if !tx.Committed {
					continue
				}
				committed++
				if tot := tx.Total(); tot > worst {
					worst = tot
				}
			}
			if uint64(committed) != res.Committed {
				t.Fatalf("flight saw %d committed txns, stats measured %d", committed, res.Committed)
			}
			if got, want := worst.Micros(), res.Lat.Percentile(100); got != want {
				t.Fatalf("slowest flight record %.3fµs, slowest latency sample %.3fµs", got, want)
			}
		})
	}
}

// TestFlightExportByteIdenticalAcrossWorkers: the flight exports —
// JSON and the rendered tail report — must not depend on how many OS
// threads executed the partitioned simulation.
func TestFlightExportByteIdenticalAcrossWorkers(t *testing.T) {
	export := func(workers int) (js, tail []byte) {
		rec := flight.NewRecorder(flight.Options{})
		cfg := shardedCfg(CREST, 3, "modulo")
		cfg.Workers = workers
		cfg.Flight = rec
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		snap := rec.Snapshot()
		var jsBuf, tailBuf bytes.Buffer
		if err := flight.WriteJSON(&jsBuf, snap); err != nil {
			t.Fatal(err)
		}
		if err := flight.WriteTail(&tailBuf, snap, 3); err != nil {
			t.Fatal(err)
		}
		return jsBuf.Bytes(), tailBuf.Bytes()
	}
	js1, tail1 := export(1)
	for _, workers := range []int{2, 8} {
		js, tail := export(workers)
		if !bytes.Equal(js1, js) {
			t.Fatalf("flight JSON differs between workers=1 and workers=%d", workers)
		}
		if !bytes.Equal(tail1, tail) {
			t.Fatalf("tail report differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestFlightTailReportEndToEnd: a contended run renders a budget
// decomposition table and a critical path for its worst outlier.
func TestFlightTailReportEndToEnd(t *testing.T) {
	rec := flight.NewRecorder(flight.Options{})
	cfg := shortCfg(CREST, tinySmallBank)
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	cfg.Flight = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Exemplars) == 0 {
		t.Fatal("contended run captured no exemplars")
	}

	var tail bytes.Buffer
	if err := flight.WriteTail(&tail, snap, 3); err != nil {
		t.Fatal(err)
	}
	out := tail.String()
	for _, want := range []string{"component", "p50", "p99", "tail vs median", "critical path:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tail report missing %q:\n%s", want, out)
		}
	}

	var cp bytes.Buffer
	worst := snap.Exemplars[0]
	for _, e := range snap.Exemplars[1:] {
		if e.Total() > worst.Total() {
			worst = e
		}
	}
	if err := flight.WriteCritPath(&cp, snap, worst.ID); err != nil {
		t.Fatal(err)
	}
	cpOut := cp.String()
	for _, want := range []string{fmt.Sprintf("T%d", worst.ID), "budget:", "critical path:"} {
		if !strings.Contains(cpOut, want) {
			t.Fatalf("critical-path report missing %q:\n%s", want, cpOut)
		}
	}
	if err := flight.WriteCritPath(&cp, snap, 0); err == nil {
		t.Fatal("unknown txn id did not error")
	}
}
