package bench

import (
	"bytes"
	"strings"
	"testing"

	"crest/internal/causality"
	"crest/internal/sim"
)

// TestWhyRunByteIdenticalToPlainRun is the tentpole guarantee, the
// same one tracing and metrics make: enabling causality recording must
// not change the simulated schedule of any engine. Events counts every
// scheduler dispatch, so equality there pins the whole event sequence,
// and Verbs/latencies pin the protocol outcome.
func TestWhyRunByteIdenticalToPlainRun(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			run := func(rec *causality.Recorder) Result {
				cfg := shortCfg(system, tinySmallBank)
				cfg.Duration = 2 * sim.Millisecond
				cfg.Warmup = 200 * sim.Microsecond
				cfg.Why = rec
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			rec := causality.NewRecorder(causality.Options{})
			plain, recorded := run(nil), run(rec)
			if plain.Committed != recorded.Committed || plain.Aborted != recorded.Aborted {
				t.Fatalf("recording changed outcomes: %d/%d vs %d/%d",
					plain.Committed, plain.Aborted, recorded.Committed, recorded.Aborted)
			}
			if plain.Events != recorded.Events {
				t.Fatalf("recording changed the schedule: %d vs %d events", plain.Events, recorded.Events)
			}
			if plain.Verbs != recorded.Verbs {
				t.Fatalf("recording changed fabric traffic: %+v vs %+v", plain.Verbs, recorded.Verbs)
			}
			if plain.Lat.Avg() != recorded.Lat.Avg() || plain.Lat.P99() != recorded.Lat.P99() {
				t.Fatalf("recording changed latencies: %v/%v vs %v/%v",
					plain.Lat.Avg(), plain.Lat.P99(), recorded.Lat.Avg(), recorded.Lat.P99())
			}

			// Contended SmallBank must actually have produced forensics.
			snap := rec.Snapshot()
			if len(snap.Txns) == 0 {
				t.Fatal("no transaction nodes recorded")
			}
			if recorded.Aborted > 0 && len(snap.Edges) == 0 {
				t.Fatal("run aborted but no conflict edges recorded")
			}
			causes := 0
			for i := range snap.Txns {
				if snap.Txns[i].Cause != nil {
					causes++
				}
			}
			if recorded.Aborted > 0 && causes == 0 {
				t.Fatal("aborts happened but no abort cause was frozen")
			}
		})
	}
}

// TestWhyExportsDeterministic: the same seed must yield byte-equal DOT
// and JSON exports.
func TestWhyExportsDeterministic(t *testing.T) {
	export := func() (dot, js []byte) {
		rec := causality.NewRecorder(causality.Options{})
		cfg := shortCfg(CREST, tinySmallBank)
		cfg.Duration = 2 * sim.Millisecond
		cfg.Warmup = 200 * sim.Microsecond
		cfg.Why = rec
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		snap := rec.Snapshot()
		var dotBuf, jsonBuf bytes.Buffer
		if err := causality.WriteDOT(&dotBuf, snap); err != nil {
			t.Fatal(err)
		}
		if err := causality.WriteJSON(&jsonBuf, snap); err != nil {
			t.Fatal(err)
		}
		return dotBuf.Bytes(), jsonBuf.Bytes()
	}
	dotA, jsonA := export()
	dotB, jsonB := export()
	if !bytes.Equal(dotA, dotB) {
		t.Fatal("same seed produced different DOT exports")
	}
	if !bytes.Equal(jsonA, jsonB) {
		t.Fatal("same seed produced different JSON exports")
	}

	// And the JSON round-trips byte-equal through Read + Write.
	back, err := causality.ReadJSON(bytes.NewReader(jsonA))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := causality.WriteJSON(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonA, again.Bytes()) {
		t.Fatal("JSON export does not round-trip byte-equal")
	}
}

// TestWhyBlameChainEndToEnd: a contended run must yield at least one
// transaction whose abort explains itself as a multi-hop blame chain
// with attributed holders.
func TestWhyBlameChainEndToEnd(t *testing.T) {
	rec := causality.NewRecorder(causality.Options{})
	cfg := shortCfg(CREST, tinySmallBank)
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	cfg.Why = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatal("contended run recorded no aborts; the scenario lost its teeth")
	}
	snap := rec.Snapshot()

	longest := 0
	var longestID uint64
	attributed := 0
	for i := range snap.Txns {
		tx := &snap.Txns[i]
		if tx.Cause == nil {
			continue
		}
		if tx.Cause.Holder != 0 {
			attributed++
		}
		if hops := snap.BlameChain(tx.ID, 0); len(hops) > longest {
			longest, longestID = len(hops), tx.ID
		}
	}
	if attributed == 0 {
		t.Fatal("no abort cause names a holder transaction")
	}
	if longest < 2 {
		t.Fatalf("longest blame chain has %d hop(s); want a multi-hop chain", longest)
	}

	var buf bytes.Buffer
	if err := causality.WriteBlame(&buf, snap, longestID); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "└─") < 2 {
		t.Fatalf("rendered blame chain is not multi-hop:\n%s", out)
	}
}
