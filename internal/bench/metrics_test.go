package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"crest/internal/metrics"
	"crest/internal/sim"
)

// TestMetricsRunByteIdenticalToPlainRun is the PR's golden guarantee,
// mirroring tracing's: enabling metrics must not change the simulated
// schedule. Events counts every scheduler dispatch, so equality there
// pins the whole event sequence, and Verbs/latencies pin the protocol
// outcome.
func TestMetricsRunByteIdenticalToPlainRun(t *testing.T) {
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			run := func(reg *metrics.Registry) Result {
				cfg := shortCfg(system, tinySmallBank)
				cfg.Duration = 2 * sim.Millisecond
				cfg.Warmup = 200 * sim.Microsecond
				cfg.Metrics = reg
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
			plain, metered := run(nil), run(reg)
			if plain.Committed != metered.Committed || plain.Aborted != metered.Aborted {
				t.Fatalf("metrics changed outcomes: %d/%d vs %d/%d",
					plain.Committed, plain.Aborted, metered.Committed, metered.Aborted)
			}
			if plain.Events != metered.Events {
				t.Fatalf("metrics changed the schedule: %d vs %d events", plain.Events, metered.Events)
			}
			if plain.Verbs != metered.Verbs {
				t.Fatalf("metrics changed fabric traffic: %+v vs %+v", plain.Verbs, metered.Verbs)
			}
			if plain.Lat.Avg() != metered.Lat.Avg() || plain.Lat.P99() != metered.Lat.P99() {
				t.Fatalf("metrics changed latencies: %v/%v vs %v/%v",
					plain.Lat.Avg(), plain.Lat.P99(), metered.Lat.Avg(), metered.Lat.P99())
			}

			// The run must also have produced a non-empty time-series.
			snap := reg.Snapshot()
			if len(snap.Times) == 0 {
				t.Fatal("no windows sealed")
			}
			for _, name := range []string{
				"crest_txn_commits_total",
				"crest_txn_attempts_total",
				"crest_sim_dispatches_total",
				"crest_rdma_rtts_total",
			} {
				se := snap.Find(name, "")
				if se == nil {
					t.Fatalf("series %s missing", name)
				}
				if se.Total == 0 {
					t.Fatalf("series %s empty", name)
				}
				if len(se.Samples) != len(snap.Times) {
					t.Fatalf("series %s has %d samples for %d windows", name, len(se.Samples), len(snap.Times))
				}
			}
			// Contended SmallBank must show aborts broken down by reason
			// and fabric verbs in flight at some boundary.
			aborts := 0.0
			for i := range snap.Series {
				se := &snap.Series[i]
				if se.Name == "crest_txn_aborts_total" {
					aborts += se.Total
				}
			}
			if metered.Aborted > 0 && aborts == 0 {
				t.Fatal("run aborted but no crest_txn_aborts_total series counted")
			}
			if snap.Find("crest_rdma_inflight_verbs", "") == nil {
				t.Fatal("in-flight verbs gauge missing")
			}
		})
	}
}

// TestMetricsSnapshotRoundTripsThroughExporters drives a metered run
// through every exporter: CSV and JSON must round-trip the windowed
// series, and the Prometheus rendering must be non-empty text
// exposition output.
func TestMetricsSnapshotRoundTripsThroughExporters(t *testing.T) {
	reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
	cfg := shortCfg(CREST, tinySmallBank)
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	cfg.Metrics = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	var jsonBuf bytes.Buffer
	if err := metrics.WriteJSON(&jsonBuf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := metrics.ReadJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != len(snap.Series) || len(back.Times) != len(snap.Times) {
		t.Fatalf("JSON round trip lost data: %d/%d series, %d/%d windows",
			len(back.Series), len(snap.Series), len(back.Times), len(snap.Times))
	}

	var csvBuf bytes.Buffer
	if err := metrics.WriteCSV(&csvBuf, snap); err != nil {
		t.Fatal(err)
	}
	// encoding/csv validates the quoting (per-node label IDs contain
	// commas) and that every row has the header's column count.
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(rows) != 1+len(snap.Times) {
		t.Fatalf("CSV rows = %d, want %d", len(rows), 1+len(snap.Times))
	}
	if len(rows[0]) != 1+len(snap.Series) {
		t.Fatalf("CSV columns = %d, want %d", len(rows[0]), 1+len(snap.Series))
	}

	var promBuf bytes.Buffer
	if err := metrics.WritePrometheus(&promBuf, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(promBuf.String(), "# TYPE crest_txn_commits_total counter") {
		t.Fatalf("Prometheus output missing commit counter:\n%s", promBuf.String())
	}
}

// TestMetricsDeterministicAcrossRuns: the same seed must yield the
// byte-identical exported time-series.
func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	export := func() []byte {
		reg := metrics.NewRegistry(metrics.Options{Window: 100 * sim.Microsecond})
		cfg := shortCfg(CREST, tinySmallBank)
		cfg.Duration = 2 * sim.Millisecond
		cfg.Warmup = 200 * sim.Microsecond
		cfg.Metrics = reg
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WriteCSV(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different metrics CSV")
	}
}
