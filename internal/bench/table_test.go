package bench

import (
	"strings"
	"testing"

	"crest/internal/layout"
	"crest/internal/workload"
)

func TestTableFormatAligns(t *testing.T) {
	tab := Table{
		ID:     "t1",
		Title:  "demo",
		Header: []string{"a", "long-column", "b"},
		Rows: [][]string{
			{"1", "2", "3"},
			{"10000", "20", "30"},
		},
		Notes: []string{"a note"},
	}
	out := tab.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== t1: demo ==") {
		t.Fatalf("header line %q", lines[0])
	}
	// Columns align: the index of "long-column" in the header matches
	// the index of "20" in the wide row.
	hIdx := strings.Index(lines[1], "long-column")
	rIdx := strings.Index(lines[3], "20")
	if hIdx != rIdx {
		t.Fatalf("misaligned columns: %d vs %d\n%s", hIdx, rIdx, out)
	}
	if !strings.Contains(lines[4], "note: a note") {
		t.Fatalf("missing note: %q", lines[4])
	}
}

func TestTableFormatEdgeCases(t *testing.T) {
	// A row wider than the header must not panic or drop cells, and
	// formatting is a pure function of the table value.
	tab := Table{
		ID:     "edge",
		Title:  "ragged",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2", "extra"}, {"3"}},
	}
	out := tab.Format()
	if !strings.Contains(out, "extra") {
		t.Fatalf("dropped overflow cell: %q", out)
	}
	if again := tab.Format(); again != out {
		t.Fatal("Format is not deterministic")
	}
	empty := Table{ID: "e", Title: "no rows", Header: []string{"x"}}
	lines := strings.Split(strings.TrimRight(empty.Format(), "\n"), "\n")
	if len(lines) != 2 { // title + header, no rows
		t.Fatalf("empty table rendered %d lines: %q", len(lines), empty.Format())
	}
}

func TestProfilesProduceWorkloads(t *testing.T) {
	for _, p := range []Profile{Quick(), Full()} {
		for name, gen := range map[string]func() workload.Generator{
			"tpcc":      p.TPCC(4),
			"smallbank": p.SmallBank(0.5),
			"ycsb":      p.YCSB(0.5, 0.5, 2),
		} {
			g := gen()
			if len(g.Tables()) == 0 {
				t.Fatalf("%s/%s: no tables", p.Name, name)
			}
			for _, def := range g.Tables() {
				if err := def.Schema.Normalize().Validate(); err != nil {
					t.Fatalf("%s/%s: %v", p.Name, name, err)
				}
			}
		}
	}
}

func TestExperimentIDsOrdered(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"fig2", "fig3", "fig4", "table1", "table2",
		"exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "scenario", "crossover", "tailprof"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		exp, ok := Experiments[id]
		if !ok || exp.Render == nil {
			t.Fatalf("experiment %s unregistered", id)
		}
		if exp.ID != id {
			t.Fatalf("experiment %s registered under id %s", exp.ID, id)
		}
	}
}

func TestPoolBytesCoversWorstLayout(t *testing.T) {
	defs := []workload.TableDef{{
		Schema:   layout.Schema{ID: 1, Name: "x", CellSizes: []int{40, 40, 40, 40}},
		Capacity: 1000,
	}}
	got := PoolBytes(defs, 10)
	// Motor's multi-version layout is the biggest consumer:
	// 1000 records must fit with index and log slack on top.
	motor := layout.NewMotorRecord(defs[0].Schema).PaddedSize() * 1000
	if got < motor {
		t.Fatalf("PoolBytes %d below Motor footprint %d", got, motor)
	}
}

func TestTwoRecordGenShape(t *testing.T) {
	g := twoRecordGen{}
	if len(g.Tables()) != 1 {
		t.Fatal("tables")
	}
	loaded := 0
	g.Load(func(layout.TableID, layout.Key, [][]byte) { loaded++ })
	if loaded != 4 {
		t.Fatalf("loaded %d", loaded)
	}
	txn := g.Next(nil)
	if len(txn.Blocks[0].Ops) != 2 {
		t.Fatal("ops")
	}
	if !txn.Blocks[0].Ops[0].IsWrite() || txn.Blocks[0].Ops[1].IsWrite() {
		t.Fatal("op shapes")
	}
}
