package bench

import (
	"testing"

	"crest/internal/sim"
	"crest/internal/workload"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/tpcc"
	"crest/internal/workload/ycsb"
)

func tinyYCSB() workload.Generator {
	cfg := ycsb.DefaultConfig()
	cfg.Records = 2000
	cfg.Theta = 0.99
	return ycsb.New(cfg)
}

func tinySmallBank() workload.Generator {
	return smallbank.New(smallbank.Config{Accounts: 2000, Theta: 0.99})
}

func tinyTPCC() workload.Generator {
	return tpcc.New(tpcc.Config{
		Warehouses:           4,
		Districts:            4,
		CustomersPerDistrict: 16,
		Items:                128,
		OrdersPerDistrict:    32,
		MaxOrderLines:        10,
		HistoryCap:           1 << 12,
	})
}

func shortCfg(system SystemKind, wl func() workload.Generator) Config {
	return Config{
		System:      system,
		Workload:    wl,
		CoordsPerCN: 8,
		Replicas:    1,
		Duration:    6 * sim.Millisecond,
		Warmup:      1 * sim.Millisecond,
	}
}

func TestAllSystemsRunYCSB(t *testing.T) {
	for _, system := range []SystemKind{CREST, CRESTCell, CRESTBase, FORD, Motor} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			res, err := Run(shortCfg(system, tinyYCSB))
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed")
			}
			if res.ThroughputKOPS() <= 0 {
				t.Fatal("zero throughput")
			}
			if res.Lat.Avg() <= 0 {
				t.Fatal("zero latency")
			}
		})
	}
}

func TestAllSystemsSerializableOnAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("serializability sweep is slow")
	}
	workloads := map[string]func() workload.Generator{
		"ycsb":      tinyYCSB,
		"smallbank": tinySmallBank,
		"tpcc":      tinyTPCC,
	}
	for _, system := range []SystemKind{CREST, CRESTCell, CRESTBase, FORD, Motor} {
		for name, wl := range workloads {
			system, name, wl := system, name, wl
			t.Run(string(system)+"/"+name, func(t *testing.T) {
				cfg := shortCfg(system, wl)
				cfg.CoordsPerCN = 6
				cfg.Duration = 4 * sim.Millisecond
				cfg.CheckHistory = true
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.HistoryErr != nil {
					t.Fatalf("not serializable: %v", res.HistoryErr)
				}
				if res.Committed == 0 {
					t.Fatal("no commits")
				}
			})
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		res, err := Run(shortCfg(CREST, tinyYCSB))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Aborted != b.Aborted {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a.Committed, a.Aborted, b.Committed, b.Aborted)
	}
	if a.Verbs != b.Verbs {
		t.Fatalf("verb counts diverged: %+v vs %+v", a.Verbs, b.Verbs)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shortCfg(CREST, tinyYCSB)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed == b.Committed && a.Verbs == b.Verbs {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestCRESTBeatsBaselinesUnderHighContention(t *testing.T) {
	// The headline result (Exp#1): under a skewed write-heavy YCSB,
	// CREST outperforms FORD and Motor.
	wl := func() workload.Generator {
		cfg := ycsb.DefaultConfig()
		cfg.Records = 2000
		cfg.Theta = 1.1
		cfg.WriteRatio = 0.9
		return ycsb.New(cfg)
	}
	tput := map[SystemKind]float64{}
	for _, system := range []SystemKind{CREST, FORD, Motor} {
		cfg := shortCfg(system, wl)
		cfg.CoordsPerCN = 24
		cfg.Duration = 10 * sim.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tput[system] = res.ThroughputKOPS()
		t.Logf("%s: %s", system, res)
	}
	if tput[CREST] <= tput[FORD] {
		t.Errorf("CREST (%.1f) did not beat FORD (%.1f)", tput[CREST], tput[FORD])
	}
	if tput[CREST] <= tput[Motor] {
		t.Errorf("CREST (%.1f) did not beat Motor (%.1f)", tput[CREST], tput[Motor])
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	cfg := shortCfg("nonsense", tinyYCSB)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown system accepted")
	}
}
