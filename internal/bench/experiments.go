package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
	"crest/internal/workload"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/tpcc"
	"crest/internal/workload/ycsb"
)

// Profile scales every experiment: Quick finishes a full sweep in
// minutes for CI; Full approaches the paper's configuration (three
// compute nodes, up to 240 coordinators, larger tables, longer
// measured windows) and is what EXPERIMENTS.md records.
type Profile struct {
	Name        string
	Duration    sim.Duration
	Warmup      sim.Duration
	CoordSweep  []int // total coordinators across compute nodes
	MaxCoords   int   // the "240 coordinators" point
	YCSBRecords int
	SBAccounts  int
	TPCCScale   tpcc.Config // warehouse count overridden per experiment
	Replicas    int
	Seed        int64
}

// Quick is the CI-sized profile.
func Quick() Profile {
	return Profile{
		Name:        "quick",
		Duration:    5 * sim.Millisecond,
		Warmup:      1 * sim.Millisecond,
		CoordSweep:  []int{24, 72, 120},
		MaxCoords:   120,
		YCSBRecords: 20_000,
		SBAccounts:  20_000,
		TPCCScale: tpcc.Config{
			Districts:            10,
			CustomersPerDistrict: 16,
			Items:                256,
			OrdersPerDistrict:    32,
			MaxOrderLines:        10,
			HistoryCap:           1 << 13,
		},
		Replicas: 1,
		Seed:     1,
	}
}

// Full approaches the paper's setup.
func Full() Profile {
	return Profile{
		Name:        "full",
		Duration:    10 * sim.Millisecond,
		Warmup:      2 * sim.Millisecond,
		CoordSweep:  []int{24, 72, 144, 240},
		MaxCoords:   240,
		YCSBRecords: 1_000_000, // the paper's table size

		SBAccounts: 100_000,
		TPCCScale: tpcc.Config{
			Districts:            10,
			CustomersPerDistrict: 48,
			Items:                1000,
			OrdersPerDistrict:    64,
			MaxOrderLines:        10,
			HistoryCap:           1 << 15,
		},
		Replicas: 1,
		Seed:     1,
	}
}

// TPCC builds a TPC-C generator factory at the given warehouse count.
func (p Profile) TPCC(warehouses int) func() workload.Generator {
	cfg := p.TPCCScale
	cfg.Warehouses = warehouses
	return func() workload.Generator { return tpcc.New(cfg) }
}

// SmallBank builds a SmallBank generator factory.
func (p Profile) SmallBank(theta float64) func() workload.Generator {
	return func() workload.Generator {
		return smallbank.New(smallbank.Config{Accounts: p.SBAccounts, Theta: theta})
	}
}

// YCSB builds a YCSB generator factory.
func (p Profile) YCSB(theta, writeRatio float64, n int) func() workload.Generator {
	return func() workload.Generator {
		cfg := ycsb.DefaultConfig()
		cfg.Records = p.YCSBRecords
		cfg.Theta = theta
		cfg.WriteRatio = writeRatio
		cfg.N = n
		return ycsb.New(cfg)
	}
}

// Table is one regenerated artifact (a paper table or figure series).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w+2, cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// systems under comparison in the main experiments.
var mainSystems = []SystemKind{CREST, FORD, Motor}

// Experiment is one regenerable artifact: an id plus a renderer that
// asks the Getter for every run it needs and formats the tables. The
// spec list is derived from the renderer itself (see Specs), so the
// declared matrix and the rendered cells cannot drift apart.
type Experiment struct {
	ID     string
	Render func(Profile, Getter) ([]Table, error)
}

// Specs enumerates every run the experiment needs, by dry-running the
// renderer with a probe getter that records specs and returns empty
// records.
func (e Experiment) Specs(p Profile) []RunSpec {
	var specs []RunSpec
	probe := func(s RunSpec) (*RunRecord, error) {
		specs = append(specs, s)
		return &RunRecord{Key: s.Key(), Spec: s}, nil
	}
	// The probe never fails, and renderers only format the records'
	// numeric fields, so a dry render cannot error.
	_, _ = e.Render(p, probe)
	return specs
}

// Run regenerates the experiment standalone over a private runner
// (parallel across that experiment's own specs). RunMatrix shares one
// runner across many experiments instead.
func (e Experiment) Run(p Profile) ([]Table, error) {
	runner := NewRunner(p, MatrixOptions{})
	if err := runner.Prime(e.Specs(p)); err != nil {
		return nil, err
	}
	return e.Render(p, runner.Get)
}

// Fig2 reproduces the motivating experiment: FORD and Motor throughput
// versus contention level (§2.3).
func Fig2(p Profile, get Getter) ([]Table, error) {
	warehouseSweep := []int{80, 60, 40, 20}
	thetaSweep := []float64{0.1, 0.5, 0.9, 0.99, 1.22}
	tpccTab := Table{ID: "fig2a", Title: "FORD/Motor throughput (KOPS) vs TPC-C warehouses",
		Header: []string{"warehouses", "FORD", "Motor"}}
	for _, wh := range warehouseSweep {
		row := []string{fmt.Sprint(wh)}
		for _, system := range []SystemKind{FORD, Motor} {
			rec, err := get(p.Spec(system, TPCCSpec(wh), p.MaxCoords/2*2))
			if err != nil {
				return nil, err
			}
			row = append(row, f1(rec.KOPS))
		}
		tpccTab.Rows = append(tpccTab.Rows, row)
	}
	sbTab := Table{ID: "fig2b", Title: "FORD/Motor throughput (KOPS) vs SmallBank skew",
		Header: []string{"theta", "FORD", "Motor"}}
	for _, theta := range thetaSweep {
		row := []string{f2(theta)}
		for _, system := range []SystemKind{FORD, Motor} {
			rec, err := get(p.Spec(system, SmallBankSpec(theta), p.MaxCoords/2*2))
			if err != nil {
				return nil, err
			}
			row = append(row, f1(rec.KOPS))
		}
		sbTab.Rows = append(sbTab.Rows, row)
	}
	return []Table{tpccTab, sbTab}, nil
}

// Fig3 reproduces the abort-rate analysis: total abort rate and the
// fraction caused by false conflicts, under TPC-C.
func Fig3(p Profile, get Getter) ([]Table, error) {
	tab := Table{ID: "fig3", Title: "Abort rate and false-abort rate vs TPC-C warehouses",
		Header: []string{"warehouses", "FORD abort", "FORD false", "Motor abort", "Motor false"}}
	for _, wh := range []int{80, 60, 40, 20} {
		row := []string{fmt.Sprint(wh)}
		for _, system := range []SystemKind{FORD, Motor} {
			rec, err := get(p.Spec(system, TPCCSpec(wh), p.MaxCoords))
			if err != nil {
				return nil, err
			}
			row = append(row, pct(rec.AbortRate), pct(rec.FalseAbortRate))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: at 20 warehouses FORD/Motor abort 75.9%/85.2%, false-abort 40.7%/44.1%")
	return []Table{tab}, nil
}

// Fig4 reproduces Motor's latency breakdown under varying contention.
func Fig4(p Profile, get Getter) ([]Table, error) {
	tpccTab := Table{ID: "fig4a", Title: "Motor latency breakdown (µs) vs TPC-C warehouses",
		Header: []string{"warehouses", "execution", "validation", "commit"}}
	for _, wh := range []int{80, 40, 20} {
		rec, err := get(p.Spec(Motor, TPCCSpec(wh), p.MaxCoords))
		if err != nil {
			return nil, err
		}
		tpccTab.Rows = append(tpccTab.Rows, []string{fmt.Sprint(wh),
			f1(rec.Phases.Exec), f1(rec.Phases.Validate), f1(rec.Phases.Commit)})
	}
	sbTab := Table{ID: "fig4b", Title: "Motor latency breakdown (µs) vs SmallBank skew",
		Header: []string{"theta", "execution", "validation", "commit"}}
	for _, theta := range []float64{0.1, 0.99, 1.22} {
		rec, err := get(p.Spec(Motor, SmallBankSpec(theta), p.MaxCoords))
		if err != nil {
			return nil, err
		}
		sbTab.Rows = append(sbTab.Rows, []string{f2(theta),
			f1(rec.Phases.Exec), f1(rec.Phases.Validate), f1(rec.Phases.Commit)})
	}
	return []Table{tpccTab, sbTab}, nil
}

// Table1 reproduces the space-overhead analysis from the workload
// schemas, weighting each table by its record count. It runs no
// simulations — the numbers are pure layout arithmetic.
func Table1(p Profile, _ Getter) ([]Table, error) {
	workloads := []struct {
		name string
		defs []workload.TableDef
	}{
		{"TPC-C", p.TPCC(40)().Tables()},
		{"SmallBank", p.SmallBank(0.99)().Tables()},
		{"YCSB", p.YCSB(0.99, 0.5, 4)().Tables()},
	}
	out := make([]Table, 0, 2)
	for _, padded := range []bool{false, true} {
		id, title := "table1a", "Space overhead in memory nodes (metadata only, no padding)"
		if padded {
			id, title = "table1b", "Space overhead in memory nodes (with cacheline padding)"
		}
		tab := Table{ID: id, Title: title,
			Header: []string{"workload", "FORD", "Motor", "CREST"}}
		for _, wl := range workloads {
			row := []string{wl.name}
			for _, sys := range []layout.System{layout.SysFORD, layout.SysMotor, layout.SysCREST} {
				data, meta := 0, 0
				for _, def := range wl.defs {
					u := layout.Space(sys, def.Schema, padded)
					data += u.Data * def.Capacity
					meta += u.Meta * def.Capacity
				}
				row = append(row, pct(float64(meta)/float64(data)))
			}
			tab.Rows = append(tab.Rows, row)
		}
		tab.Notes = append(tab.Notes,
			"expected ordering (paper Table 1): FORD < CREST < Motor on multi-cell tables")
		out = append(out, tab)
	}
	return out, nil
}

// twoRecordGen is the Table 2 micro-workload: each transaction updates
// one cell of one record and reads one cell of another.
type twoRecordGen struct{}

func (twoRecordGen) Name() string { return "two-record" }

func (twoRecordGen) Tables() []workload.TableDef {
	return []workload.TableDef{{
		Schema:   layout.Schema{ID: 90, Name: "probe", CellSizes: []int{8, 8}},
		Capacity: 4,
	}}
}

func (twoRecordGen) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	for k := 0; k < 4; k++ {
		fn(90, layout.Key(k), [][]byte{workload.U64(0, 8), workload.U64(0, 8)})
	}
}

func (twoRecordGen) Next(_ *rand.Rand) *engine.Txn {
	return &engine.Txn{Label: "probe", Blocks: []engine.Block{{Ops: []engine.Op{
		{
			Table: 90, Key: 0, ReadCells: []int{0}, WriteCells: []int{0},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{workload.PutU64(read[0], workload.GetU64(read[0])+1)}
			},
		},
		{
			Table: 90, Key: 1, ReadCells: []int{1},
			Hook: func(_ any, _ [][]byte) [][]byte { return nil },
		},
	}}}}
}

// Table2 reproduces the per-transaction verb profile: one uncontended
// transaction (one read-write record + one read-only record) per
// system.
func Table2(p Profile, get Getter) ([]Table, error) {
	tab := Table{ID: "table2", Title: "RDMA verbs for one uncontended txn (1 RW + 1 RO record)",
		Header: []string{"system", "READ", "WRITE", "CAS", "masked-CAS", "round-trips"}}
	for _, system := range []SystemKind{FORD, Motor, CREST} {
		spec := p.Spec(system, TwoRecordSpec(), 1)
		spec.CompNodes = 1
		spec.OneTxn = true
		rec, err := get(spec)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{string(system),
			fmt.Sprint(rec.Verbs.Reads), fmt.Sprint(rec.Verbs.Writes),
			fmt.Sprint(rec.Verbs.CASes), fmt.Sprint(rec.Verbs.MaskedCASes), fmt.Sprint(rec.Verbs.RTTs)})
	}
	tab.Notes = append(tab.Notes,
		"paper Table 2: FORD/Motor use CAS+READ / READ / WRITE+CAS; CREST masked-CAS+READ / READ / WRITE+masked-CAS",
		"Motor reads whole version tables: same round-trips as FORD but larger payloads")
	return []Table{tab}, nil
}

// Exp1 is Fig 11: throughput versus coordinator count.
func Exp1(p Profile, get Getter) ([]Table, error) {
	return sweepCoords(p, get, "exp1", "Throughput (KOPS) vs coordinators",
		func(rec *RunRecord) string { return f1(rec.KOPS) })
}

// Exp2 is Fig 12: average and median latency versus coordinator count.
// Its sweep is the exact spec set Exp1 runs, so under a shared runner
// it re-renders Exp1's records without a single new simulation.
func Exp2(p Profile, get Getter) ([]Table, error) {
	avg, err := sweepCoords(p, get, "exp2-avg", "Average latency (µs) vs coordinators",
		func(rec *RunRecord) string { return f1(rec.Latency.Avg) })
	if err != nil {
		return nil, err
	}
	med, err := sweepCoords(p, get, "exp2-p50", "Median latency (µs) vs coordinators",
		func(rec *RunRecord) string { return f1(rec.Latency.P50) })
	if err != nil {
		return nil, err
	}
	return append(avg, med...), nil
}

// workloadsUnderTest are the three benchmark configurations of §8.3.
func workloadsUnderTest(p Profile) []struct {
	name string
	wl   WorkloadSpec
} {
	return []struct {
		name string
		wl   WorkloadSpec
	}{
		{"tpcc", TPCCSpec(40)},
		{"smallbank", SmallBankSpec(0.99)},
		{"ycsb", YCSBSpec(0.99, 0.5, 4)},
	}
}

func sweepCoords(p Profile, get Getter, id, title string, metric func(*RunRecord) string) ([]Table, error) {
	var out []Table
	for _, wl := range workloadsUnderTest(p) {
		tab := Table{ID: id + "-" + wl.name, Title: title + " — " + wl.name,
			Header: []string{"coordinators", "CREST", "FORD", "Motor"}}
		for _, coords := range p.CoordSweep {
			row := []string{fmt.Sprint(coords)}
			for _, system := range mainSystems {
				rec, err := get(p.Spec(system, wl.wl, coords))
				if err != nil {
					return nil, err
				}
				row = append(row, metric(rec))
			}
			tab.Rows = append(tab.Rows, row)
		}
		out = append(out, tab)
	}
	return out, nil
}

// Exp3 is Fig 13: tail latencies at the maximum coordinator count.
func Exp3(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, wl := range workloadsUnderTest(p) {
		tab := Table{ID: "exp3-" + wl.name, Title: fmt.Sprintf("Tail latency (µs) at %d coordinators — %s", p.MaxCoords, wl.name),
			Header: []string{"system", "P99", "P999"}}
		for _, system := range mainSystems {
			rec, err := get(p.Spec(system, wl.wl, p.MaxCoords))
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, []string{string(system), f1(rec.Latency.P99), f1(rec.Latency.P999)})
		}
		out = append(out, tab)
	}
	return out, nil
}

// skewSettings reproduce §8.4's high/low skew pairs. The id keys the
// table ids structurally — spec-level deduplication makes any repeat
// of a setting share its runs, so no display-level dedupe is needed.
func skewSettings(p Profile) []struct {
	id   string
	name string
	wl   WorkloadSpec
} {
	return []struct {
		id   string
		name string
		wl   WorkloadSpec
	}{
		{"tpcc-high", "tpcc-high (40wh)", TPCCSpec(40)},
		{"tpcc-low", "tpcc-low (100wh)", TPCCSpec(100)},
		{"smallbank-high", "smallbank-high (θ.99)", SmallBankSpec(0.99)},
		{"smallbank-low", "smallbank-low (θ.1)", SmallBankSpec(0.1)},
		{"ycsb-high", "ycsb-high (θ.99)", YCSBSpec(0.99, 0.5, 4)},
		{"ycsb-low", "ycsb-low (θ.1)", YCSBSpec(0.1, 0.5, 4)},
	}
}

// Exp4 is Fig 14: per-phase latency breakdown for all three systems
// under high and low skew.
func Exp4(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, setting := range skewSettings(p) {
		tab := Table{ID: "exp4-" + setting.id, Title: "Latency breakdown (µs) — " + setting.name,
			Header: []string{"system", "execution", "validation", "commit"}}
		for _, system := range mainSystems {
			rec, err := get(p.Spec(system, setting.wl, p.MaxCoords))
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, []string{string(system),
				f1(rec.Phases.Exec), f1(rec.Phases.Validate), f1(rec.Phases.Commit)})
		}
		out = append(out, tab)
	}
	return out, nil
}

// Exp5 is Fig 15: factor analysis — Base, +cell-level CC, then full
// CREST (localized execution + parallel commits), normalized to Base.
func Exp5(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, setting := range skewSettings(p) {
		tab := Table{ID: "exp5-" + setting.id, Title: "Factor analysis (normalized throughput) — " + setting.name,
			Header: []string{"variant", "KOPS", "vs Base"}}
		var base float64
		for _, system := range []SystemKind{CRESTBase, CRESTCell, CREST} {
			rec, err := get(p.Spec(system, setting.wl, p.MaxCoords))
			if err != nil {
				return nil, err
			}
			k := rec.KOPS
			if system == CRESTBase {
				base = k
			}
			norm := "1.00"
			if base > 0 {
				norm = f2(k / base)
			}
			tab.Rows = append(tab.Rows, []string{string(system), f1(k), norm})
		}
		out = append(out, tab)
	}
	return out, nil
}

// Exp6 is Fig 16: throughput versus skewness for all three systems.
func Exp6(p Profile, get Getter) ([]Table, error) {
	tpccTab := Table{ID: "exp6-tpcc", Title: "Throughput (KOPS) vs TPC-C warehouses",
		Header: []string{"warehouses", "CREST", "FORD", "Motor"}}
	for _, wh := range []int{100, 80, 60, 40, 20} {
		row := []string{fmt.Sprint(wh)}
		for _, system := range mainSystems {
			rec, err := get(p.Spec(system, TPCCSpec(wh), p.MaxCoords))
			if err != nil {
				return nil, err
			}
			row = append(row, f1(rec.KOPS))
		}
		tpccTab.Rows = append(tpccTab.Rows, row)
	}
	out := []Table{tpccTab}
	for _, wl := range []struct {
		name string
		spec func(theta float64) WorkloadSpec
	}{
		{"smallbank", SmallBankSpec},
		{"ycsb", func(theta float64) WorkloadSpec { return YCSBSpec(theta, 0.5, 4) }},
	} {
		tab := Table{ID: "exp6-" + wl.name, Title: "Throughput (KOPS) vs Zipf theta — " + wl.name,
			Header: []string{"theta", "CREST", "FORD", "Motor"}}
		for _, theta := range []float64{0.1, 0.5, 0.9, 0.99, 1.11} {
			row := []string{f2(theta)}
			for _, system := range mainSystems {
				rec, err := get(p.Spec(system, wl.spec(theta), p.MaxCoords))
				if err != nil {
					return nil, err
				}
				row = append(row, f1(rec.KOPS))
			}
			tab.Rows = append(tab.Rows, row)
		}
		out = append(out, tab)
	}
	return out, nil
}

// Exp7 is Fig 17: YCSB throughput and average latency versus the
// number of records accessed per transaction.
func Exp7(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, theta := range []float64{0.99, 0.1} {
		tput := Table{ID: fmt.Sprintf("exp7-tput-θ%.2f", theta),
			Title:  fmt.Sprintf("YCSB throughput (KOPS) vs records per txn (θ=%.2f)", theta),
			Header: []string{"N", "CREST", "FORD", "Motor"}}
		lat := Table{ID: fmt.Sprintf("exp7-lat-θ%.2f", theta),
			Title:  fmt.Sprintf("YCSB average latency (µs) vs records per txn (θ=%.2f)", theta),
			Header: []string{"N", "CREST", "FORD", "Motor"}}
		for _, n := range []int{1, 2, 3, 4} {
			trow := []string{fmt.Sprint(n)}
			lrow := []string{fmt.Sprint(n)}
			for _, system := range mainSystems {
				rec, err := get(p.Spec(system, YCSBSpec(theta, 0.5, n), p.MaxCoords))
				if err != nil {
					return nil, err
				}
				trow = append(trow, f1(rec.KOPS))
				lrow = append(lrow, f1(rec.Latency.Avg))
			}
			tput.Rows = append(tput.Rows, trow)
			lat.Rows = append(lat.Rows, lrow)
		}
		out = append(out, tput, lat)
	}
	return out, nil
}

// Exp8 is Fig 18: YCSB throughput versus write ratio.
func Exp8(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, theta := range []float64{0.99, 0.1} {
		tab := Table{ID: fmt.Sprintf("exp8-θ%.2f", theta),
			Title:  fmt.Sprintf("YCSB throughput (KOPS) vs write ratio (θ=%.2f)", theta),
			Header: []string{"write%", "CREST", "FORD", "Motor"}}
		for _, ratio := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
			row := []string{fmt.Sprintf("%.0f", 100*ratio)}
			for _, system := range mainSystems {
				rec, err := get(p.Spec(system, YCSBSpec(theta, ratio, 4), p.MaxCoords))
				if err != nil {
					return nil, err
				}
				row = append(row, f1(rec.KOPS))
			}
			tab.Rows = append(tab.Rows, row)
		}
		out = append(out, tab)
	}
	return out, nil
}

// ExpCrossover is the sharding crossover study (not in the paper; it
// exercises the topology layer): a hot Zipfian YCSB mix (θ=1.22, 50%
// writes, 4 records per transaction) swept over shard-group counts
// under modulo versus hotspot-aware placement, per engine. Modulo
// placement scatters the hot set across groups, so at higher shard
// counts nearly every write transaction pays the cross-shard prepare
// round and holds its locks longer; hotspot-aware placement colocates
// the hot keys on one group and recovers most of the loss. The
// shards=1 row is the classic single-group spec (hash placement),
// shared by both placement columns as the common baseline.
func ExpCrossover(p Profile, get Getter) ([]Table, error) {
	wl := YCSBSpec(1.22, 0.5, 4)
	var out []Table
	for _, system := range mainSystems {
		tab := Table{ID: "crossover-" + string(system),
			Title:  fmt.Sprintf("%s: YCSB θ=1.22 throughput (KOPS) and cross-shard txn share vs shard groups", system),
			Header: []string{"shards", "modulo KOPS", "modulo xshard", "hotspot KOPS", "hotspot xshard"}}
		for _, shards := range []int{1, 2, 3, 4, 6} {
			row := []string{fmt.Sprint(shards)}
			for _, policy := range []string{"modulo", "hotspot"} {
				spec := p.Spec(system, wl, p.MaxCoords)
				if shards > 1 {
					spec.Shards = shards
					spec.Placement = policy
				}
				rec, err := get(spec)
				if err != nil {
					return nil, err
				}
				share := 0.0
				if attempts := rec.Committed + rec.Aborted; attempts > 0 {
					share = float64(rec.CrossShard) / float64(attempts)
				}
				row = append(row, f1(rec.KOPS), pct(share))
			}
			tab.Rows = append(tab.Rows, row)
		}
		tab.Notes = append(tab.Notes,
			"shards=1 is the single-group baseline; hotspot seeds itself from a modulo-placement contention probe")
		out = append(out, tab)
	}
	return out, nil
}

// ExpTailProf is the tail-latency profile (not in the paper; it feeds
// the flight recorder's aggregate story): the exp6 skew sweep re-read
// for its latency quantiles instead of throughput. For each workload
// and engine it reports p50/p99/p99.9 across θ plus the tail
// amplification p99.9/p50 — how far the slowest 0.1% detaches from
// the typical transaction as contention concentrates. The specs are
// exactly exp6's, so a shared matrix run renders this experiment
// without a single new simulation.
func ExpTailProf(p Profile, get Getter) ([]Table, error) {
	var out []Table
	for _, wl := range []struct {
		name string
		spec func(theta float64) WorkloadSpec
	}{
		{"smallbank", SmallBankSpec},
		{"ycsb", func(theta float64) WorkloadSpec { return YCSBSpec(theta, 0.5, 4) }},
	} {
		tab := Table{ID: "tailprof-" + wl.name,
			Title:  "Latency quantiles (µs) vs Zipf theta — " + wl.name,
			Header: []string{"theta", "CREST p50", "CREST p99", "CREST p999", "FORD p50", "FORD p99", "FORD p999", "Motor p50", "Motor p99", "Motor p999"}}
		amp := Table{ID: "tailprof-" + wl.name + "-amp",
			Title:  "Tail amplification (p99.9 / p50) vs Zipf theta — " + wl.name,
			Header: []string{"theta", "CREST", "FORD", "Motor"}}
		for _, theta := range []float64{0.1, 0.5, 0.9, 0.99, 1.11} {
			row := []string{f2(theta)}
			arow := []string{f2(theta)}
			for _, system := range mainSystems {
				rec, err := get(p.Spec(system, wl.spec(theta), p.MaxCoords))
				if err != nil {
					return nil, err
				}
				l := rec.Latency
				row = append(row, f1(l.P50), f1(l.P99), f1(l.P999))
				ratio := 0.0
				if l.P50 > 0 {
					ratio = l.P999 / l.P50
				}
				arow = append(arow, f1(ratio))
			}
			tab.Rows = append(tab.Rows, row)
			amp.Rows = append(amp.Rows, arow)
		}
		amp.Notes = append(amp.Notes,
			"same runs as exp6; drill into one point with crestbench -run -flight and cresttrace tail")
		out = append(out, tab, amp)
	}
	return out, nil
}

// Experiments is the registry mapping experiment ids to their
// implementations, in the paper's order.
var Experiments = map[string]Experiment{
	"fig2":      {ID: "fig2", Render: Fig2},
	"fig3":      {ID: "fig3", Render: Fig3},
	"fig4":      {ID: "fig4", Render: Fig4},
	"table1":    {ID: "table1", Render: Table1},
	"table2":    {ID: "table2", Render: Table2},
	"exp1":      {ID: "exp1", Render: Exp1},
	"exp2":      {ID: "exp2", Render: Exp2},
	"exp3":      {ID: "exp3", Render: Exp3},
	"exp4":      {ID: "exp4", Render: Exp4},
	"exp5":      {ID: "exp5", Render: Exp5},
	"exp6":      {ID: "exp6", Render: Exp6},
	"exp7":      {ID: "exp7", Render: Exp7},
	"exp8":      {ID: "exp8", Render: Exp8},
	"scenario":  {ID: "scenario", Render: ExpScenario},
	"crossover": {ID: "crossover", Render: ExpCrossover},
	"tailprof":  {ID: "tailprof", Render: ExpTailProf},
}

// ExperimentIDs lists the registry in canonical order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return expOrder(ids[i]) < expOrder(ids[j]) })
	return ids
}

func expOrder(id string) string {
	order := map[string]string{
		"fig2": "01", "fig3": "02", "fig4": "03",
		"table1": "04", "table2": "05",
		"exp1": "06", "exp2": "07", "exp3": "08", "exp4": "09",
		"exp5": "10", "exp6": "11", "exp7": "12", "exp8": "13",
		"scenario": "14", "crossover": "15", "tailprof": "16",
	}
	return order[id]
}
