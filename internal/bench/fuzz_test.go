package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// randomWorkload generates random multi-table transactions: random
// cell-level read/write sets, random block structure with key
// dependencies, random skew. It exists to fuzz all five system
// configurations against the serializability checker with access
// patterns no hand-written workload covers.
type randomWorkload struct {
	rng     *rand.Rand
	tables  []workload.TableDef
	pickers []*workload.KeyPicker
}

func newRandomWorkload(seed int64) *randomWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := &randomWorkload{rng: rng}
	nTables := rng.Intn(3) + 1
	for t := 0; t < nTables; t++ {
		nCells := rng.Intn(5) + 1
		sizes := make([]int, nCells)
		for c := range sizes {
			sizes[c] = 8 + rng.Intn(3)*8
		}
		records := 8 + rng.Intn(24)
		w.tables = append(w.tables, workload.TableDef{
			Schema: layout.Schema{
				ID:        layout.TableID(60 + t),
				Name:      fmt.Sprintf("rand%d", t),
				CellSizes: sizes,
			},
			Capacity: records,
		})
		theta := 0.0
		if rng.Intn(2) == 0 {
			theta = 0.5 + rng.Float64()*0.7
		}
		w.pickers = append(w.pickers, workload.NewKeyPicker(records, theta))
	}
	return w
}

func (w *randomWorkload) Name() string                { return "random" }
func (w *randomWorkload) Tables() []workload.TableDef { return w.tables }

func (w *randomWorkload) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	for ti, def := range w.tables {
		for k := 0; k < def.Capacity; k++ {
			cells := make([][]byte, def.Schema.NumCells())
			for c := range cells {
				cells[c] = workload.U64(uint64(ti*1000+k), def.Schema.CellSizes[c])
			}
			fn(def.Schema.ID, layout.Key(k), cells)
		}
	}
}

// Next builds a transaction of 1–3 blocks; later blocks may resolve a
// key from a value read in block one (a key dependency).
func (w *randomWorkload) Next(rng *rand.Rand) *engine.Txn {
	type st struct{ seen uint64 }
	state := &st{}
	txn := &engine.Txn{Label: "random", State: state}
	nBlocks := rng.Intn(2) + 1
	used := map[[2]uint64]bool{}
	for b := 0; b < nBlocks; b++ {
		var ops []engine.Op
		nOps := rng.Intn(3) + 1
		for o := 0; o < nOps; o++ {
			ti := rng.Intn(len(w.tables))
			def := w.tables[ti]
			key := w.pickers[ti].Pick(rng)
			if used[[2]uint64{uint64(def.Schema.ID), uint64(key)}] {
				continue // one op per record per txn
			}
			used[[2]uint64{uint64(def.Schema.ID), uint64(key)}] = true
			nCells := def.Schema.NumCells()
			readCell := rng.Intn(nCells)
			op := engine.Op{
				Table:     def.Schema.ID,
				Key:       key,
				ReadCells: []int{readCell},
			}
			if rng.Intn(2) == 0 {
				writeCell := rng.Intn(nCells)
				op.WriteCells = []int{writeCell}
				if writeCell == readCell {
					op.Hook = func(_ any, read [][]byte) [][]byte {
						return [][]byte{workload.PutU64(read[0], workload.GetU64(read[0])+1)}
					}
				} else {
					size := def.Schema.CellSizes[writeCell]
					op.Hook = func(s any, read [][]byte) [][]byte {
						s.(*st).seen += workload.GetU64(read[0])
						return [][]byte{workload.U64(s.(*st).seen, size)}
					}
				}
			} else {
				op.Hook = func(s any, read [][]byte) [][]byte {
					s.(*st).seen += workload.GetU64(read[0])
					return nil
				}
			}
			ops = append(ops, op)
		}
		if len(ops) > 0 {
			txn.Blocks = append(txn.Blocks, engine.Block{Ops: ops})
		}
	}
	if len(txn.Blocks) == 0 {
		return w.Next(rng)
	}
	txn.ComputeReadOnly()
	return txn
}

// TestFuzzSerializableAcrossSystems runs randomized workloads through
// every system configuration and checks the recorded histories.
func TestFuzzSerializableAcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep is slow")
	}
	systems := []SystemKind{CREST, CRESTCell, CRESTBase, FORD, Motor}
	for seed := int64(1); seed <= 12; seed++ {
		for _, system := range systems {
			seed, system := seed, system
			t.Run(fmt.Sprintf("seed%d/%s", seed, system), func(t *testing.T) {
				cfg := Config{
					System:       system,
					Workload:     func() workload.Generator { return newRandomWorkload(seed) },
					MemNodes:     2,
					CompNodes:    2,
					CoordsPerCN:  4,
					Replicas:     1,
					Seed:         seed,
					Duration:     3_000_000, // 3ms virtual
					Warmup:       1,
					CheckHistory: true,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.HistoryErr != nil {
					t.Fatalf("seed %d %s: %v", seed, system, res.HistoryErr)
				}
				if res.Committed == 0 {
					t.Fatalf("seed %d %s: nothing committed", seed, system)
				}
			})
		}
	}
}
