// The experiment matrix runner. The paper's evaluation is a matrix of
// (system × workload × coordinators × skew) cells; this file gives
// that matrix a first-class representation. A RunSpec is a canonical
// value that fully determines one deterministic DES run; experiments
// declare the specs they need and a Runner executes the deduplicated
// set — in parallel on a bounded worker pool, memoized in process and
// optionally on disk — then renders tables from the shared result
// store. Because every run is an independent single-scheduler
// simulation keyed by its spec, parallel execution is byte-identical
// to sequential execution.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"crest/internal/rdma"
	"crest/internal/scenario"
	"crest/internal/sim"
	"crest/internal/workload"
)

// SchemaVersion identifies the JSON record layout emitted by
// ResultSet.Encode and accepted by DecodeResultSet and the on-disk
// cache. Bump it whenever RunRecord changes incompatibly; stale cache
// entries are then ignored rather than misread.
//
// v2 added RunRecord.Events; v1 entries would decode with a zero
// count, which is a misread, not a miss. v3 added the BenchPerf
// workers/per-partition fields emitted by parallel-capable invocations.
const SchemaVersion = "crest-bench/v3"

// Workload kinds a WorkloadSpec can name.
const (
	WLTPCC      = "tpcc"
	WLSmallBank = "smallbank"
	WLYCSB      = "ycsb"
	WLTwoRecord = "two-record" // Table 2's micro-workload
)

// WorkloadSpec is the declarative form of a workload: a kind plus the
// knobs the paper sweeps. Table cardinalities come from the Profile
// (recorded in RunSpec.Profile), so the same spec scales from quick to
// full runs.
type WorkloadSpec struct {
	Kind string `json:"kind"`
	// Warehouses is the TPC-C contention knob.
	Warehouses int `json:"warehouses,omitempty"`
	// Theta is the Zipfian constant (SmallBank, YCSB).
	Theta float64 `json:"theta,omitempty"`
	// WriteRatio and RecordsPerTx are the YCSB mix knobs.
	WriteRatio   float64 `json:"write_ratio,omitempty"`
	RecordsPerTx int     `json:"records_per_tx,omitempty"`
}

// TPCCSpec declares a TPC-C workload at a warehouse count.
func TPCCSpec(warehouses int) WorkloadSpec {
	return WorkloadSpec{Kind: WLTPCC, Warehouses: warehouses}
}

// SmallBankSpec declares a SmallBank workload at a skew.
func SmallBankSpec(theta float64) WorkloadSpec {
	return WorkloadSpec{Kind: WLSmallBank, Theta: theta}
}

// YCSBSpec declares a YCSB workload.
func YCSBSpec(theta, writeRatio float64, recordsPerTx int) WorkloadSpec {
	return WorkloadSpec{Kind: WLYCSB, Theta: theta, WriteRatio: writeRatio, RecordsPerTx: recordsPerTx}
}

// TwoRecordSpec declares the Table 2 micro-workload (one read-write
// plus one read-only record per transaction).
func TwoRecordSpec() WorkloadSpec { return WorkloadSpec{Kind: WLTwoRecord} }

// key renders only the fields that matter for the kind, so two specs
// that run the same generator always collide.
func (w WorkloadSpec) key() string {
	switch w.Kind {
	case WLTPCC:
		return fmt.Sprintf("tpcc(wh=%d)", w.Warehouses)
	case WLSmallBank:
		return fmt.Sprintf("smallbank(theta=%.4f)", w.Theta)
	case WLYCSB:
		return fmt.Sprintf("ycsb(theta=%.4f,write=%.4f,n=%d)", w.Theta, w.WriteRatio, w.RecordsPerTx)
	default:
		return w.Kind
	}
}

// generator materializes the factory under a profile's table scales.
func (w WorkloadSpec) generator(p Profile) (func() workload.Generator, error) {
	switch w.Kind {
	case WLTPCC:
		return p.TPCC(w.Warehouses), nil
	case WLSmallBank:
		return p.SmallBank(w.Theta), nil
	case WLYCSB:
		return p.YCSB(w.Theta, w.WriteRatio, w.RecordsPerTx), nil
	case WLTwoRecord:
		return func() workload.Generator { return twoRecordGen{} }, nil
	}
	return nil, fmt.Errorf("bench: unknown workload kind %q", w.Kind)
}

// RunSpec canonically identifies one deterministic run: everything
// that influences the schedule is in here, so equal keys mean equal
// results and a result may be reused wherever its spec reappears.
type RunSpec struct {
	System   SystemKind   `json:"system"`
	Workload WorkloadSpec `json:"workload"`
	// Coordinators is the total across compute nodes.
	Coordinators int          `json:"coordinators"`
	MemNodes     int          `json:"mem_nodes"`
	CompNodes    int          `json:"comp_nodes"`
	Replicas     int          `json:"replicas"`
	Duration     sim.Duration `json:"duration_ns"`
	Warmup       sim.Duration `json:"warmup_ns"`
	Seed         int64        `json:"seed"`
	// Profile names the table-scale profile (quick, full) the run
	// resolves cardinalities from.
	Profile string `json:"profile"`
	// OneTxn selects the Table 2 measurement mode: load, execute
	// exactly one uncontended transaction, report its verbs.
	OneTxn bool `json:"one_txn,omitempty"`
	// Scenario, when set, drives the run from a declarative scenario
	// (workload section + traffic timeline) instead of Workload. Its
	// hash-stable Key() joins the run key, so equal scenarios dedupe
	// across experiments exactly like equal workloads do.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Shards is the number of shard groups of MemNodes memory nodes
	// each (0 and 1 both mean the classic single-group topology), and
	// Placement names the data-placement policy ("" means "hash").
	// Both join the run key only when non-default, so every
	// pre-sharding key, cache entry and JSON record is unchanged.
	Shards    int    `json:"shards,omitempty"`
	Placement string `json:"placement,omitempty"`
}

// Key is the canonical identity of the run; it is the memoization and
// cache key, and two specs with equal keys are interchangeable.
func (s RunSpec) Key() string {
	key := fmt.Sprintf("%s|%s|c%d|mn%d|cn%d|r%d|d%d|w%d|s%d|p%s|once%t",
		s.System, s.Workload.key(), s.Coordinators, s.MemNodes, s.CompNodes,
		s.Replicas, int64(s.Duration), int64(s.Warmup), s.Seed, s.Profile, s.OneTxn)
	if s.Scenario != nil {
		key += "|scn:" + s.Scenario.Key()
	}
	if s.Shards > 1 || (s.Placement != "" && s.Placement != "hash") {
		shards := s.Shards
		if shards < 1 {
			shards = 1
		}
		pl := s.Placement
		if pl == "" {
			pl = "hash"
		}
		key += fmt.Sprintf("|sh%d|pl%s", shards, pl)
	}
	return key
}

// Spec assembles a run spec at a total coordinator count under the
// paper's testbed shape (two memory nodes, three compute nodes), with
// the profile's duration, warmup, replication and seed.
func (p Profile) Spec(system SystemKind, wl WorkloadSpec, totalCoords int) RunSpec {
	return RunSpec{
		System:       system,
		Workload:     wl,
		Coordinators: totalCoords,
		MemNodes:     2,
		CompNodes:    3,
		Replicas:     p.Replicas,
		Duration:     p.Duration,
		Warmup:       p.Warmup,
		Seed:         p.Seed,
		Profile:      p.Name,
	}
}

// config materializes the bench.Config the spec describes.
func (s RunSpec) config(p Profile) (Config, error) {
	var gen func() workload.Generator
	var err error
	if s.Scenario != nil {
		gen, err = p.ScenarioWorkload(s.Scenario)
	} else {
		gen, err = s.Workload.generator(p)
	}
	if err != nil {
		return Config{}, err
	}
	return Config{
		System:       s.System,
		Workload:     gen,
		MemNodes:     s.MemNodes,
		CompNodes:    s.CompNodes,
		Shards:       s.Shards,
		Placement:    s.Placement,
		Coordinators: s.Coordinators,
		Replicas:     s.Replicas,
		Seed:         s.Seed,
		Duration:     s.Duration,
		Warmup:       s.Warmup,
	}, nil
}

// LatencySummaryUs is a run's latency digest in microseconds.
type LatencySummaryUs struct {
	Avg  float64 `json:"avg"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// PhaseSummaryUs is the per-phase average latency of committed
// transactions in microseconds.
type PhaseSummaryUs struct {
	Exec     float64 `json:"exec"`
	Validate float64 `json:"validate"`
	Commit   float64 `json:"commit"`
}

// RunRecord is the durable, machine-readable outcome of one run: the
// spec that produced it plus every metric the paper's tables report.
// It is what the in-process store memoizes, what the on-disk cache
// persists, and what -json emits, so cached and fresh runs render
// byte-identical tables.
type RunRecord struct {
	Key  string  `json:"key"`
	Spec RunSpec `json:"spec"`

	KOPS           float64 `json:"kops"`
	Committed      uint64  `json:"committed"`
	Aborted        uint64  `json:"aborted"`
	FalseAborts    uint64  `json:"false_aborts"`
	AbortRate      float64 `json:"abort_rate"`
	FalseAbortRate float64 `json:"false_abort_rate"`

	Latency LatencySummaryUs `json:"latency_us"`
	Phases  PhaseSummaryUs   `json:"phases_us"`

	Verbs     rdma.Stats `json:"verbs"`
	ElapsedUs float64    `json:"elapsed_us"`

	// Events is the number of scheduler dispatches the run consumed.
	// It is as deterministic as every other field — same spec, same
	// count — so it caches and reproduces bit-for-bit; wall-clock
	// measurements, which do not, live in BenchPerf instead.
	Events uint64 `json:"events,omitempty"`
	// ScenarioPhases is the per-phase breakdown of scenario-driven
	// runs (absent otherwise; additive, so the schema version holds).
	ScenarioPhases []PhaseStat `json:"scenario_phases,omitempty"`
	// CrossShard counts measured attempts whose writes spanned shard
	// groups; CrossShardAborts is the aborted subset. Both are absent
	// on single-group runs (additive, so the schema version holds).
	CrossShard       uint64 `json:"cross_shard,omitempty"`
	CrossShardAborts uint64 `json:"cross_shard_aborts,omitempty"`
}

// newRunRecord digests a Result into its durable record.
func newRunRecord(spec RunSpec, res Result) *RunRecord {
	return &RunRecord{
		Key:            spec.Key(),
		Spec:           spec,
		KOPS:           res.ThroughputKOPS(),
		Committed:      res.Committed,
		Aborted:        res.Aborted,
		FalseAborts:    res.FalseAborts,
		AbortRate:      res.AbortRate(),
		FalseAbortRate: res.FalseAbortRate(),
		Latency: LatencySummaryUs{
			Avg: res.Lat.Avg(), P50: res.Lat.P50(), P99: res.Lat.P99(), P999: res.Lat.P999(),
		},
		Phases: PhaseSummaryUs{
			Exec: res.Phases.AvgExec(), Validate: res.Phases.AvgValidate(), Commit: res.Phases.AvgCommit(),
		},
		Verbs:            res.Verbs,
		ElapsedUs:        res.Elapsed.Micros(),
		Events:           res.Events,
		ScenarioPhases:   res.ScenarioPhases,
		CrossShard:       res.CrossShard,
		CrossShardAborts: res.CrossShardAborts,
	}
}

// Getter resolves one spec to its record; experiment renderers are
// written against it so they never trigger or order simulations
// themselves.
type Getter func(RunSpec) (*RunRecord, error)

// MatrixOptions configure a Runner.
type MatrixOptions struct {
	// Workers bounds concurrent simulations; ≤ 0 means GOMAXPROCS.
	Workers int
	// SimWorkers is the scheduler worker count inside each simulation
	// (Config.Workers): partitioned runs execute that many shard-group
	// partitions concurrently. Like Workers it is invocation-level —
	// results are byte-identical at any value — so it never enters a
	// spec key or a cached record. ≤ 0 means 1.
	SimWorkers int
	// CacheDir, when non-empty, persists records as JSON files keyed
	// by spec so later invocations skip already-simulated cells.
	CacheDir string
}

// Runner executes run specs at most once each, keyed by RunSpec.Key,
// and serves the memoized records.
type Runner struct {
	profile    Profile
	workers    int
	simWorkers int
	cache      string

	mu        sync.Mutex
	store     map[string]*RunRecord
	simulated int
	cacheHits int
	// Wall-clock cost of the runs this runner actually simulated
	// (cache hits excluded); nondeterministic, reported via BenchPerf.
	simWallMS float64
	simEvents uint64
	// partEvents sums, per partition index, the events the executed
	// partitioned runs dispatched there (schedule-derived).
	partEvents []uint64
}

// NewRunner returns an empty runner over a profile.
func NewRunner(p Profile, opt MatrixOptions) *Runner {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{profile: p, workers: w, simWorkers: opt.SimWorkers,
		cache: opt.CacheDir, store: map[string]*RunRecord{}}
}

// Get returns the record for spec, executing the run if it is not
// memoized (and not in the disk cache).
func (r *Runner) Get(spec RunSpec) (*RunRecord, error) {
	key := spec.Key()
	r.mu.Lock()
	rec := r.store[key]
	r.mu.Unlock()
	if rec != nil {
		return rec, nil
	}
	if rec := r.loadCached(spec, key); rec != nil {
		return rec, nil
	}
	rec, err := r.execute(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.store[key] = rec
	r.simulated++
	r.mu.Unlock()
	r.saveCached(key, rec)
	return rec, nil
}

// Prime deduplicates specs by key and executes the not-yet-memoized
// remainder on the worker pool. It is the fan-out step of RunMatrix;
// after it returns, renderers hit only the in-process store.
func (r *Runner) Prime(specs []RunSpec) error {
	var todo []RunSpec
	seen := map[string]bool{}
	for _, spec := range specs {
		key := spec.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		r.mu.Lock()
		_, have := r.store[key]
		r.mu.Unlock()
		if have {
			continue
		}
		if rec := r.loadCached(spec, key); rec != nil {
			continue
		}
		todo = append(todo, spec)
	}
	if len(todo) == 0 {
		return nil
	}

	workers := r.workers
	if workers > len(todo) {
		workers = len(todo)
	}
	errs := make([]error, len(todo))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				spec := todo[i]
				rec, err := r.execute(spec)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", spec.Key(), err)
					continue
				}
				r.mu.Lock()
				r.store[spec.Key()] = rec
				r.simulated++
				r.mu.Unlock()
				r.saveCached(spec.Key(), rec)
			}
		}()
	}
	for i := range todo {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// execute runs one simulation (no memoization).
func (r *Runner) execute(spec RunSpec) (*RunRecord, error) {
	cfg, err := spec.config(r.profile)
	if err != nil {
		return nil, err
	}
	cfg.Workers = r.simWorkers
	if spec.OneTxn {
		verbs, err := oneTxnVerbs(cfg)
		if err != nil {
			return nil, err
		}
		return &RunRecord{Key: spec.Key(), Spec: spec, Verbs: verbs}, nil
	}
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.simWallMS += res.WallMS
	r.simEvents += res.Events
	if res.Runtime != nil && res.Runtime.Sim != nil {
		for _, ps := range res.Runtime.Sim.PartStats {
			for len(r.partEvents) <= ps.Part {
				r.partEvents = append(r.partEvents, 0)
			}
			r.partEvents[ps.Part] += ps.Events
		}
	}
	r.mu.Unlock()
	return newRunRecord(spec, res), nil
}

// Records returns every memoized record sorted by key — the canonical
// order the JSON output uses, independent of execution order.
func (r *Runner) Records() []*RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := make([]*RunRecord, 0, len(r.store))
	for _, rec := range r.store {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// Simulated reports how many simulations this runner actually
// executed (memoization and cache hits excluded).
func (r *Runner) Simulated() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simulated
}

// CacheHits reports how many records were served from the disk cache.
func (r *Runner) CacheHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheHits
}

// Perf reports the wall-clock cost of the simulations this runner
// actually executed, or nil if everything came from memo or cache.
func (r *Runner) Perf() *BenchPerf {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.simulated == 0 {
		return nil
	}
	workers := r.simWorkers
	if workers < 1 {
		workers = 1
	}
	p := &BenchPerf{
		SimWallMS: r.simWallMS,
		Events:    r.simEvents,
		Simulated: r.simulated,
		Workers:   workers,
	}
	if r.simWallMS > 0 {
		p.EventsPerSec = float64(r.simEvents) / (r.simWallMS / 1e3)
	}
	if len(r.partEvents) > 0 {
		p.PartEvents = append([]uint64(nil), r.partEvents...)
		if r.simWallMS > 0 {
			p.PartEventsPerSec = make([]float64, len(r.partEvents))
			for i, n := range r.partEvents {
				p.PartEventsPerSec[i] = float64(n) / (r.simWallMS / 1e3)
			}
		}
	}
	return p
}

// cacheEntry is the on-disk envelope; the embedded schema version and
// key guard against stale or colliding files.
type cacheEntry struct {
	Schema string     `json:"schema"`
	Record *RunRecord `json:"record"`
}

func (r *Runner) cachePath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(r.cache, hex.EncodeToString(sum[:12])+".json")
}

// loadCached consults the disk cache; on a hit the record is memoized
// and counted. Unreadable or mismatched entries are treated as misses.
func (r *Runner) loadCached(spec RunSpec, key string) *RunRecord {
	if r.cache == "" {
		return nil
	}
	data, err := os.ReadFile(r.cachePath(key))
	if err != nil {
		return nil
	}
	var ent cacheEntry
	if json.Unmarshal(data, &ent) != nil || ent.Schema != SchemaVersion ||
		ent.Record == nil || ent.Record.Key != key {
		return nil
	}
	r.mu.Lock()
	r.store[key] = ent.Record
	r.cacheHits++
	r.mu.Unlock()
	return ent.Record
}

// saveCached persists one record; cache write failures are ignored
// (the cache is an optimization, not a store of record).
func (r *Runner) saveCached(key string, rec *RunRecord) {
	if r.cache == "" {
		return
	}
	if err := os.MkdirAll(r.cache, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Schema: SchemaVersion, Record: rec})
	if err != nil {
		return
	}
	tmp := r.cachePath(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, r.cachePath(key))
}

// BenchPerf is the simulator's own wall-clock performance over one
// matrix invocation's executed runs. Unlike everything else in a
// ResultSet it is nondeterministic (it measures the machine, not the
// simulated system), so it rides only in the measured encoding — never
// in cache entries, and byte-identity tests use the canonical
// encoding without it.
type BenchPerf struct {
	// SimWallMS is the summed event-loop wall time of the executed
	// runs, in milliseconds.
	SimWallMS float64 `json:"sim_wall_ms"`
	// Events is the summed scheduler dispatch count of those runs.
	Events uint64 `json:"events"`
	// EventsPerSec is Events over SimWallMS.
	EventsPerSec float64 `json:"events_per_sec"`
	// Simulated counts the executed runs (cache hits excluded).
	Simulated int `json:"simulated"`
	// Workers is the scheduler worker count the invocation ran
	// partitioned simulations with (invocation-level: results are
	// byte-identical at any value).
	Workers int `json:"workers,omitempty"`
	// PartEvents sums, per partition index, the events the executed
	// partitioned runs dispatched there; absent when no run was
	// partitioned. Schedule-derived, unlike the *PerSec fields.
	PartEvents []uint64 `json:"part_events,omitempty"`
	// PartEventsPerSec is PartEvents over SimWallMS (nondeterministic).
	PartEventsPerSec []float64 `json:"part_events_per_sec,omitempty"`
}

// ResultSet is the schema-versioned JSON document -json emits: every
// unique run of a matrix invocation, in canonical (key) order.
type ResultSet struct {
	Schema  string       `json:"schema"`
	Profile string       `json:"profile"`
	Runs    []*RunRecord `json:"runs"`
	// Perf carries the invocation's simulator wall-clock measurements
	// when present (see MatrixResult.MeasuredResultSet).
	Perf *BenchPerf `json:"perf,omitempty"`
}

// Encode writes the set as deterministic, indented JSON.
func (s *ResultSet) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeResultSet parses a document produced by Encode and verifies
// its schema version.
func DecodeResultSet(r io.Reader) (*ResultSet, error) {
	var s ResultSet
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: result set schema %q, want %q", s.Schema, SchemaVersion)
	}
	return &s, nil
}

// ExperimentResult pairs an experiment id with its rendered tables.
type ExperimentResult struct {
	ID     string
	Tables []Table
}

// MatrixResult is one matrix invocation's full outcome.
type MatrixResult struct {
	Profile     string
	Experiments []ExperimentResult
	// Records are the unique runs behind the tables, in key order.
	Records []*RunRecord
	// Simulated counts runs actually executed; CacheHits counts runs
	// served from the disk cache.
	Simulated int
	CacheHits int
	// Perf is the simulator's wall-clock cost over the executed runs,
	// nil when every record came from memo or cache.
	Perf *BenchPerf
}

// ResultSet packages the records for JSON output in canonical form:
// fully deterministic, byte-identical across worker counts and cache
// states.
func (m *MatrixResult) ResultSet() *ResultSet {
	return &ResultSet{Schema: SchemaVersion, Profile: m.Profile, Runs: m.Records}
}

// MeasuredResultSet additionally attaches the invocation's simulator
// wall-clock performance (nondeterministic; compare canonical
// encodings, not measured ones).
func (m *MatrixResult) MeasuredResultSet() *ResultSet {
	s := m.ResultSet()
	s.Perf = m.Perf
	return s
}

// FormatTables renders every table in experiment order — the exact
// stdout of crestbench -exp, used by the byte-identity tests.
func (m *MatrixResult) FormatTables() string {
	var out []byte
	for _, er := range m.Experiments {
		for _, tab := range er.Tables {
			out = append(out, tab.Format()...)
			out = append(out, '\n')
		}
	}
	return string(out)
}

// RunMatrix regenerates the named experiments (all of them when ids is
// empty) over one shared, deduplicated result store: it collects every
// spec the experiments declare, executes the unique set on the worker
// pool, and renders each experiment's tables from the memoized
// records. Output is byte-identical for any worker count.
func RunMatrix(ids []string, p Profile, opt MatrixOptions) (*MatrixResult, error) {
	if len(ids) == 0 {
		ids = ExperimentIDs()
	}
	exps := make([]Experiment, 0, len(ids))
	var specs []RunSpec
	for _, id := range ids {
		exp, ok := Experiments[id]
		if !ok {
			return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs())
		}
		exps = append(exps, exp)
		specs = append(specs, exp.Specs(p)...)
	}
	runner := NewRunner(p, opt)
	if err := runner.Prime(specs); err != nil {
		return nil, err
	}
	out := &MatrixResult{Profile: p.Name}
	for _, exp := range exps {
		tables, err := exp.Render(p, runner.Get)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exp.ID, err)
		}
		out.Experiments = append(out.Experiments, ExperimentResult{ID: exp.ID, Tables: tables})
	}
	out.Records = runner.Records()
	out.Simulated = runner.Simulated()
	out.CacheHits = runner.CacheHits()
	out.Perf = runner.Perf()
	return out, nil
}
