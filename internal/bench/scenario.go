// Scenario integration: materializing declarative .spec scenarios
// (internal/scenario) into runnable workloads, giving them RunSpec
// identities the memoizing matrix can dedupe, and the "scenario"
// experiment — the hotspot-drift demo swept across all engines.
package bench

import (
	"fmt"

	"crest/internal/scenario"
	"crest/internal/workload"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/tpcc"
	"crest/internal/workload/ycsb"
)

// ScenarioWorkload materializes a scenario spec into a workload
// factory under the profile's table scales: the spec's workload
// section configures the inner generator (unset fields defer to the
// profile, exactly as the equivalent hand-coded WorkloadSpec would),
// and the timeline wraps it in a scenario.Generator.
func (p Profile) ScenarioWorkload(s *scenario.Spec) (func() workload.Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var inner func() workload.Generator
	switch s.Workload {
	case scenario.WLYCSB:
		cfg := ycsb.DefaultConfig()
		cfg.Records = p.YCSBRecords
		if s.RecordCount > 0 {
			cfg.Records = s.RecordCount
		}
		if s.RecordsPerTxn > 0 {
			cfg.N = s.RecordsPerTxn
		}
		if s.FieldCount > 0 {
			cfg.NumCells = s.FieldCount
		}
		if s.FieldLength > 0 {
			cfg.CellSize = s.FieldLength
		}
		cfg.Theta = s.Theta
		cfg.Distribution = s.Distribution
		cfg.InsertProportion = s.InsertProportion
		cfg.PreLoaded = s.PreLoaded
		// The spec's proportions cover all operations; the generator
		// splits non-insert traffic by its write ratio.
		if rw := s.ReadProportion + s.UpdateProportion; rw > 0 {
			cfg.WriteRatio = s.UpdateProportion / rw
		}
		inner = func() workload.Generator { return ycsb.New(cfg) }
	case scenario.WLSmallBank:
		cfg := smallbank.Config{Accounts: p.SBAccounts, Theta: s.Theta}
		if s.RecordCount > 0 {
			cfg.Accounts = s.RecordCount
		}
		inner = func() workload.Generator { return smallbank.New(cfg) }
	case scenario.WLTPCC:
		cfg := p.TPCCScale
		cfg.Warehouses = 40
		if s.Warehouses > 0 {
			cfg.Warehouses = s.Warehouses
		}
		inner = func() workload.Generator { return tpcc.New(cfg) }
	default:
		return nil, fmt.Errorf("bench: scenario workload %q not runnable", s.Workload)
	}
	return func() workload.Generator { return scenario.NewGenerator(s, inner()) }, nil
}

// ScenarioSpec assembles a run spec for a scenario under the paper's
// testbed shape. The measured window is stretched to cover the whole
// timeline when the profile's duration is shorter.
func (p Profile) ScenarioSpec(system SystemKind, sc *scenario.Spec, totalCoords int) RunSpec {
	spec := p.Spec(system, WorkloadSpec{Kind: "scenario"}, totalCoords)
	spec.Scenario = sc
	if tl := sc.TimelineDuration(); tl > spec.Duration {
		spec.Duration = tl
	}
	return spec
}

// phaseStat looks up one phase's stats, tolerating records without
// them (probe getters and stale caches return empty records).
func phaseStat(rec *RunRecord, i int) PhaseStat {
	if i < len(rec.ScenarioPhases) {
		return rec.ScenarioPhases[i]
	}
	return PhaseStat{Phase: i + 1}
}

// ExpScenario is the scenario experiment: the hotspot-drift demo
// (examples/scenarios/drift-demo.spec) on every engine, reported per
// phase. The hot key set migrates at each phase boundary while the
// offered load changes shape, so the per-phase abort rates show each
// system's response to drifting contention.
func ExpScenario(p Profile, get Getter) ([]Table, error) {
	demo := scenario.DriftDemo()
	recs := make(map[SystemKind]*RunRecord, len(mainSystems))
	for _, system := range mainSystems {
		rec, err := get(p.ScenarioSpec(system, demo, p.MaxCoords))
		if err != nil {
			return nil, err
		}
		recs[system] = rec
	}
	tab := Table{ID: "scenario-drift",
		Title:  fmt.Sprintf("Per-phase commits and abort rate under hotspot drift — %s, %d coordinators", demo.Name, p.MaxCoords),
		Header: []string{"phase", "kind", "hotspot"}}
	for _, system := range mainSystems {
		tab.Header = append(tab.Header, string(system)+" commits", string(system)+" abort")
	}
	for i := range demo.Timeline {
		ph := &demo.Timeline[i]
		row := []string{fmt.Sprint(i + 1), ph.Kind, f2(ph.Hotspot)}
		for _, system := range mainSystems {
			ps := phaseStat(recs[system], i)
			row = append(row, fmt.Sprint(ps.Commits), pct(ps.AbortRate()))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Rows = append(tab.Rows, totalScenarioRow(recs))
	tab.Notes = append(tab.Notes,
		"the hot key set rotates by the hotspot fraction of the key space at each phase boundary",
		"phase 1 overlaps the warmup window, so its measured span is shorter than its duration")
	return []Table{tab}, nil
}

// totalScenarioRow sums the per-phase stats into a footer row.
func totalScenarioRow(recs map[SystemKind]*RunRecord) []string {
	row := []string{"total", "", ""}
	for _, system := range mainSystems {
		var t PhaseStat
		for _, ps := range recs[system].ScenarioPhases {
			t.Attempts += ps.Attempts
			t.Commits += ps.Commits
			t.Aborts += ps.Aborts
		}
		row = append(row, fmt.Sprint(t.Commits), pct(t.AbortRate()))
	}
	return row
}
