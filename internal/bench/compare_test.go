package bench

import (
	"strings"
	"testing"
)

func rs(pairs ...any) *ResultSet {
	s := &ResultSet{Schema: SchemaVersion}
	for i := 0; i < len(pairs); i += 2 {
		s.Runs = append(s.Runs, &RunRecord{Key: pairs[i].(string), KOPS: pairs[i+1].(float64)})
	}
	return s
}

func TestCompareResultSets(t *testing.T) {
	base := rs("a", 100.0, "b", 200.0, "gone", 50.0)
	cur := rs("b", 190.0, "a", 110.0, "new", 75.0)

	cmp := CompareResultSets(base, cur)
	if len(cmp.Deltas) != 2 {
		t.Fatalf("Deltas = %+v, want 2 shared runs", cmp.Deltas)
	}
	// Sorted by key: a then b.
	a, b := cmp.Deltas[0], cmp.Deltas[1]
	if a.Key != "a" || a.Percent != 10.0 {
		t.Fatalf("delta a = %+v, want +10%%", a)
	}
	if b.Key != "b" || b.Percent != -5.0 {
		t.Fatalf("delta b = %+v, want -5%%", b)
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "gone" {
		t.Fatalf("Missing = %v", cmp.Missing)
	}
	if len(cmp.Added) != 1 || cmp.Added[0] != "new" {
		t.Fatalf("Added = %v", cmp.Added)
	}

	out := cmp.Format()
	for _, want := range []string{
		"a", "+10.0%", "-5.0%",
		"gone", "(baseline only)",
		"new", "(new run)",
		"worst KOPS regression: -5.0% (b) across 2 shared runs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := rs("a", 100.0)
	cur := rs("a", 105.0)
	out := CompareResultSets(base, cur).Format()
	if !strings.Contains(out, "no KOPS regression across 1 shared runs") {
		t.Fatalf("Format() missing all-clear line:\n%s", out)
	}
}
