package bench

import (
	"strings"
	"testing"
)

// rs builds a result set from (key, KOPS, p99µs) triples.
func rs(triples ...any) *ResultSet {
	s := &ResultSet{Schema: SchemaVersion}
	for i := 0; i < len(triples); i += 3 {
		s.Runs = append(s.Runs, &RunRecord{
			Key:     triples[i].(string),
			KOPS:    triples[i+1].(float64),
			Latency: LatencySummaryUs{P99: triples[i+2].(float64)},
		})
	}
	return s
}

func TestCompareResultSets(t *testing.T) {
	base := rs("a", 100.0, 40.0, "b", 200.0, 80.0, "gone", 50.0, 10.0)
	cur := rs("b", 190.0, 120.0, "a", 110.0, 38.0, "new", 75.0, 20.0)

	cmp := CompareResultSets(base, cur)
	if len(cmp.Deltas) != 2 {
		t.Fatalf("Deltas = %+v, want 2 shared runs", cmp.Deltas)
	}
	// Sorted by key: a then b.
	a, b := cmp.Deltas[0], cmp.Deltas[1]
	if a.Key != "a" || a.Percent != 10.0 {
		t.Fatalf("delta a = %+v, want +10%%", a)
	}
	if a.BaseP99 != 40.0 || a.CurP99 != 38.0 || a.P99Percent != -5.0 {
		t.Fatalf("delta a = %+v, want p99 -5%%", a)
	}
	if b.Key != "b" || b.Percent != -5.0 {
		t.Fatalf("delta b = %+v, want -5%%", b)
	}
	if b.P99Percent != 50.0 {
		t.Fatalf("delta b = %+v, want p99 +50%%", b)
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "gone" {
		t.Fatalf("Missing = %v", cmp.Missing)
	}
	if len(cmp.Added) != 1 || cmp.Added[0] != "new" {
		t.Fatalf("Added = %v", cmp.Added)
	}

	out := cmp.Format()
	for _, want := range []string{
		"base p99", "cur p99",
		"a", "+10.0%", "-5.0%",
		"gone", "(baseline only)",
		"new", "(new run)",
		"worst KOPS regression: -5.0% (b) across 2 shared runs",
		// b's p99 grew 80µs -> 120µs: +50%, past the 25% threshold.
		"worst p99 latency regression: +50.0% (b) across 2 shared runs [exceeds +25% threshold]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := rs("a", 100.0, 50.0)
	cur := rs("a", 105.0, 45.0)
	out := CompareResultSets(base, cur).Format()
	if !strings.Contains(out, "no KOPS regression across 1 shared runs") {
		t.Fatalf("Format() missing all-clear line:\n%s", out)
	}
	if !strings.Contains(out, "no p99 latency regression across 1 shared runs") {
		t.Fatalf("Format() missing p99 all-clear line:\n%s", out)
	}
}

func TestCompareP99WithinThresholdUnflagged(t *testing.T) {
	base := rs("a", 100.0, 50.0)
	cur := rs("a", 100.0, 55.0) // +10% p99: reported but not flagged
	out := CompareResultSets(base, cur).Format()
	if !strings.Contains(out, "worst p99 latency regression: +10.0% (a) across 1 shared runs") {
		t.Fatalf("Format() missing p99 summary:\n%s", out)
	}
	if strings.Contains(out, "threshold") {
		t.Fatalf("within-threshold regression flagged:\n%s", out)
	}
}
