// Package bench is the experiment harness: it assembles a simulated
// cluster (memory pool + compute nodes + one of the five system
// configurations), loads a workload, drives coordinators for a span of
// virtual time, and aggregates the metrics the paper reports.
//
// Every table and figure of the paper's evaluation is a set of
// bench.Run calls with different knobs; see the experiment definitions
// in package benchdef (exp.go) and the per-experiment index in
// DESIGN.md.
package bench

import (
	"fmt"
	"time"

	"crest/internal/causality"
	"crest/internal/core"
	"crest/internal/engine"
	"crest/internal/flight"
	"crest/internal/ford"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/metrics"
	"crest/internal/motor"
	"crest/internal/placement"
	"crest/internal/rdma"
	"crest/internal/scenario"
	"crest/internal/sim"
	"crest/internal/stats"
	"crest/internal/trace"
	"crest/internal/workload"
)

// SystemKind selects which transaction system a run uses.
type SystemKind string

// The five system configurations the paper evaluates.
const (
	CREST     SystemKind = "crest"      // full CREST
	CRESTCell SystemKind = "crest-cell" // factor analysis: +cell only
	CRESTBase SystemKind = "crest-base" // factor analysis: Base
	FORD      SystemKind = "ford"
	Motor     SystemKind = "motor"
)

// Config describes one benchmark run.
type Config struct {
	System   SystemKind
	Workload func() workload.Generator // fresh generator per run
	// MemNodes is the number of memory nodes per shard group (the
	// whole pool when Shards == 1).
	MemNodes  int
	CompNodes int
	// Shards is the number of independent shard groups (default 1 —
	// the classic topology; 1 with hash placement is byte-identical to
	// the pre-sharding harness).
	Shards int
	// Placement names the data-placement policy ("" = "hash"; see
	// internal/placement).
	Placement string
	// HotKeys seeds the "hotspot" placement policy. When the policy is
	// "hotspot" and HotKeys is empty, Run derives a seed by first
	// executing a short deterministic probe of the same workload under
	// modulo placement with a causality recorder and pinning its
	// hottest keys to shard group 0.
	HotKeys []placement.HotKey
	// CoordsPerCN is the number of coordinators per compute node; the
	// paper sweeps the total (CompNodes × CoordsPerCN) from 24 to 240.
	CoordsPerCN int
	// Coordinators, when non-zero, is the total coordinator count
	// across all compute nodes and takes precedence over CoordsPerCN.
	// A total that does not divide CompNodes is spread by giving the
	// first (total mod CompNodes) nodes one extra coordinator, so the
	// run uses exactly the requested count.
	Coordinators int
	Replicas     int // f backups per record
	Seed         int64
	// Duration is the measured window of virtual time. Coordinators
	// run transactions back to back until it elapses, then drain.
	Duration sim.Duration
	// Warmup excludes the ramp-up from the measurements.
	Warmup sim.Duration
	// Params overrides the fabric latency model (zero value = default).
	Params rdma.Params
	// CheckHistory turns on the serializability checker (slows the
	// run; used by tests, not benchmarks).
	CheckHistory bool
	// Trace, when non-nil, records the run's event stream (see
	// internal/trace). Tracing consumes no virtual time and no
	// randomness, so a traced run commits exactly the same schedule as
	// an untraced one.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives the run's instrument traffic (see
	// internal/metrics). Like tracing, metrics consume no virtual time
	// and no randomness: a metered run commits exactly the same
	// schedule as an unmetered one.
	Metrics *metrics.Registry
	// Why, when non-nil, records wait-for and conflict edges for abort
	// forensics (see internal/causality). Like tracing and metrics,
	// recording consumes no virtual time and no randomness.
	Why *causality.Recorder
	// Flight, when non-nil, records per-transaction latency budgets,
	// critical paths and tail exemplars (see internal/flight). Like the
	// other probes, recording consumes no virtual time and no
	// randomness. The recorder's warmup cutoff is set from Warmup so
	// capture matches the measurement window.
	Flight *flight.Recorder
	// Workers is how many OS threads execute shard-group partitions
	// concurrently when the run is partitioned (see Partitioned). It is
	// an invocation-level performance knob: every worker count produces
	// byte-identical results, so it must never enter a cache key or a
	// canonical record. 0 means 1.
	Workers int
}

// Partitioned reports whether the run executes on the partitioned
// parallel scheduler (sim.World): one partition per shard group. It
// requires a sharded topology and a partition-safe workload generator.
// The decision is a property of the topology alone — never of Workers
// or of attached observability probes — so a partitioned run is
// byte-identical at every worker count, and attaching trace, metrics
// or abort forensics never changes the schedule: each partition records
// into its own shard of the recorder/registry (trace.Recorder.Shard and
// friends), merged deterministically at snapshot time, so observed runs
// execute at full worker count.
func (c Config) Partitioned(gen workload.Generator) bool {
	return c.Shards > 1 && workload.IsPartitionSafe(gen)
}

// WithDefaults fills unset fields with the evaluation defaults: two
// memory nodes, three compute nodes (the paper's testbed shape), f=1
// replication, 20 ms measured after 2 ms warmup.
func (c Config) WithDefaults() Config {
	if c.System == "" {
		c.System = CREST
	}
	if c.MemNodes == 0 {
		c.MemNodes = 2
	}
	if c.CompNodes == 0 {
		c.CompNodes = 3
	}
	if c.CoordsPerCN == 0 && c.Coordinators == 0 {
		c.CoordsPerCN = 80
	}
	if c.Duration == 0 {
		c.Duration = 20 * sim.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * sim.Millisecond
	}
	if c.Params.RTT == 0 {
		c.Params = rdma.DefaultParams()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// TotalCoordinators is the number of coordinators the run drives:
// Coordinators when set, CompNodes × CoordsPerCN otherwise.
func (c Config) TotalCoordinators() int {
	if c.Coordinators > 0 {
		return c.Coordinators
	}
	return c.CompNodes * c.CoordsPerCN
}

// coordsOnNode is cn's share of the total: an even split, with the
// remainder spread one-per-node from the front.
func (c Config) coordsOnNode(cn int) int {
	total := c.TotalCoordinators()
	n := total / c.CompNodes
	if cn < total%c.CompNodes {
		n++
	}
	return n
}

// PhaseStat aggregates the measured window of one scenario phase.
type PhaseStat struct {
	Phase    int    `json:"phase"` // 1-based, matching phase.<i> in the spec
	Attempts uint64 `json:"attempts"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
}

// AbortRate is aborts per attempt within the phase.
func (p PhaseStat) AbortRate() float64 {
	if p.Attempts == 0 {
		return 0
	}
	return float64(p.Aborts) / float64(p.Attempts)
}

// Result is one run's aggregated outcome.
type Result struct {
	*stats.Run
	System       SystemKind
	Workload     string
	Coordinators int
	HistoryErr   error
	// History is the recorded cell-level history when CheckHistory
	// was set (diagnostics).
	History *engine.History
	// Events is the number of scheduler dispatches the run consumed —
	// a deterministic measure of simulation size (same spec, same
	// count).
	Events uint64
	// WallMS is the real time the event loop took, in milliseconds.
	// Unlike every other field it is nondeterministic: it measures the
	// simulator, not the simulated system, and never feeds canonical
	// output.
	WallMS float64
	// ScenarioPhases breaks the measured window down by scenario phase
	// when the workload is scenario-driven (attempts are attributed to
	// the phase in which their transaction was first generated).
	ScenarioPhases []PhaseStat
	// Runtime is the window executor's introspection, populated only
	// for partitioned runs. Its wall-clock fields (busy time, barrier
	// waits) are nondeterministic; everything else is schedule-derived.
	Runtime *RuntimeInfo
}

// RuntimeInfo is one partitioned run's executor introspection: the
// simulator's window/mailbox counters plus the fabric's cross-partition
// verb traffic, per partition.
type RuntimeInfo struct {
	Sim *sim.RuntimeStats
	// Cross is, per partition, the verbs that partition posted whose
	// target region lives in another partition.
	Cross []rdma.Stats
	// Workers is the worker count the run executed with (invocation
	// level: it never affects any other field except wall-clock ones).
	Workers int
}

// System is the engine-facing surface the three implementations share.
// (Each package returns concrete compute-node types; these adapters
// unify them.)
type System interface {
	Name() string
	CreateTable(layout.Schema, int)
	Load(layout.TableID, layout.Key, [][]byte)
	FinishLoad() error
	NewComputeNode(id int) ComputeNode
}

// ComputeNode creates coordinators.
type ComputeNode interface {
	WarmCache()
	NewCoordinator(id int) engine.Coordinator
}

// PartitionedSystem is the capability a system adapter needs for
// partitioned runs: compute nodes bound to a partition view of the
// database (engine.DB.PartitionView). part/parts let engines with
// system-wide counters (CREST's transaction ids) switch to strided
// partition-local sequences.
type PartitionedSystem interface {
	NewPartitionComputeNode(id int, db *engine.DB, part, parts int) ComputeNode
}

type crestSys struct{ *core.System }

func (s crestSys) NewComputeNode(id int) ComputeNode { return crestCN{s.System.NewComputeNode(id)} }

func (s crestSys) NewPartitionComputeNode(id int, db *engine.DB, part, parts int) ComputeNode {
	return crestCN{s.System.NewPartitionComputeNode(id, db, part, parts)}
}

type crestCN struct{ *core.ComputeNode }

func (c crestCN) NewCoordinator(id int) engine.Coordinator { return c.ComputeNode.NewCoordinator(id) }

type fordSys struct{ *ford.System }

func (s fordSys) NewComputeNode(id int) ComputeNode { return fordCN{s.System.NewComputeNode(id)} }

func (s fordSys) NewPartitionComputeNode(id int, db *engine.DB, _, _ int) ComputeNode {
	return fordCN{s.System.NewPartitionComputeNode(id, db)}
}

type fordCN struct{ *ford.ComputeNode }

func (c fordCN) NewCoordinator(id int) engine.Coordinator { return c.ComputeNode.NewCoordinator(id) }

type motorSys struct{ *motor.System }

func (s motorSys) NewComputeNode(id int) ComputeNode { return motorCN{s.System.NewComputeNode(id)} }

func (s motorSys) NewPartitionComputeNode(id int, db *engine.DB, _, _ int) ComputeNode {
	return motorCN{s.System.NewPartitionComputeNode(id, db)}
}

type motorCN struct{ *motor.ComputeNode }

func (c motorCN) NewCoordinator(id int) engine.Coordinator { return c.ComputeNode.NewCoordinator(id) }

// NewSystem builds the configured system over db.
func NewSystem(kind SystemKind, db *engine.DB) (System, error) {
	switch kind {
	case CREST:
		return crestSys{core.New(db, core.DefaultOptions())}, nil
	case CRESTCell:
		return crestSys{core.New(db, core.CellOptions())}, nil
	case CRESTBase:
		return crestSys{core.New(db, core.BaseOptions())}, nil
	case FORD:
		return fordSys{ford.New(db)}, nil
	case Motor:
		return motorSys{motor.New(db)}, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", kind)
}

// PoolBytes estimates the per-node region size a workload needs under
// the largest layout (Motor's multi-versioned records), plus index,
// log and slack space.
func PoolBytes(defs []workload.TableDef, coordinators int) int {
	total := 0
	for _, def := range defs {
		s := def.Schema.Normalize()
		m := layout.NewMotorRecord(s).PaddedSize()
		if c := layout.NewRecord(s).Size(); c > m {
			m = c
		}
		total += def.Capacity * m
		total += def.Capacity * 48 // hash index entries with slack
	}
	total += coordinators * (80 << 10) // log segments
	total += 4 << 20                   // allocator slack
	return total
}

// Run executes one benchmark configuration and returns its metrics.
func Run(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	gen := cfg.Workload()
	defs := gen.Tables()

	totalCoords := cfg.TotalCoordinators()
	pol, err := placement.New(cfg.Placement)
	if err != nil {
		return Result{}, err
	}
	if hs, ok := pol.(*placement.Hotspot); ok {
		keys := cfg.HotKeys
		if len(keys) == 0 {
			if keys, err = probeHotKeys(cfg); err != nil {
				return Result{}, err
			}
		}
		hs.Seed(keys)
	}
	// A partitioned run builds one scheduler partition per shard group
	// (conservative lookahead = the fabric's one-way minimum); any
	// other run uses the classic sequential scheduler, byte-for-byte.
	parts := 0
	var world *sim.World
	var env *sim.Env
	if cfg.Partitioned(gen) {
		parts = cfg.Shards
		world = sim.NewWorld(cfg.Seed, parts, cfg.Params.Lookahead())
		world.SetWorkers(cfg.Workers)
		env = world.Env(0)
	} else {
		env = sim.NewEnv(cfg.Seed)
	}
	fabric := rdma.NewFabric(env, cfg.Params)
	pool, err := memnode.NewShardedPool(fabric, cfg.Shards, cfg.MemNodes, PoolBytes(defs, totalCoords), cfg.Replicas, pol)
	if err != nil {
		return Result{}, err
	}
	db := engine.NewDB(pool)
	// Observers attach per partition: each partition's scheduler,
	// fabric lane and engine view record into its own shard of the root
	// recorder/registry, written lock-free by the owning worker and
	// merged deterministically at snapshot time.
	if cfg.Trace != nil {
		if world != nil {
			for i := 0; i < world.Parts(); i++ {
				world.Env(i).SetObserver(cfg.Trace.Shard(i, world.Parts()))
			}
		} else {
			env.SetObserver(cfg.Trace)
		}
		fabric.SetRecorder(cfg.Trace)
		db.Trace = cfg.Trace
	}
	if cfg.Metrics != nil {
		if world != nil {
			// Each partition shard binds its own scheduler, so the sim
			// gauges (runnable/live procs, dispatches) cover the whole
			// world after the merge, not just partition 0.
			for i := 0; i < world.Parts(); i++ {
				cfg.Metrics.Shard(i, world.Parts()).BindEnv(world.Env(i))
			}
		} else {
			cfg.Metrics.BindEnv(env)
		}
		fabric.SetMetrics(cfg.Metrics)
		db.SetMetrics(cfg.Metrics)
		if world != nil {
			registerWorldProbes(cfg.Metrics, world, fabric)
		}
	}
	if cfg.Why != nil {
		db.Why = cfg.Why
	}
	if cfg.Flight != nil {
		cfg.Flight.SetWarmup(sim.Time(cfg.Warmup))
		fabric.SetFlight(cfg.Flight)
		db.Flight = cfg.Flight
	}
	if cfg.CheckHistory {
		db.History = engine.NewHistory()
	}
	sys, err := NewSystem(cfg.System, db)
	if err != nil {
		return Result{}, err
	}
	for _, def := range defs {
		sys.CreateTable(def.Schema, def.Capacity)
	}
	gen.Load(sys.Load)
	if err := sys.FinishLoad(); err != nil {
		return Result{}, err
	}

	// Partition views are created after the load so their timestamp
	// oracles floor above every load-time draw.
	var views []*engine.DB
	var psys PartitionedSystem
	if parts > 0 {
		var ok bool
		if psys, ok = sys.(PartitionedSystem); !ok {
			return Result{}, fmt.Errorf("bench: system %q cannot run partitioned", cfg.System)
		}
		views = make([]*engine.DB, parts)
		for i := range views {
			views[i] = db.PartitionView(world.Env(i), i)
		}
	}

	res := Result{
		Run:          stats.NewRun(),
		System:       cfg.System,
		Workload:     gen.Name(),
		Coordinators: totalCoords,
	}
	retry := engine.DefaultRetryPolicy()
	stop := false
	verbs0 := fabric.Stats()

	// Scenario-driven runs modulate admission and key selection from
	// the virtual clock. Under a trivial timeline Gate is always zero
	// and NextAt is exactly Next, so this path adds no events and no
	// randomness to a plain run.
	timed, _ := gen.(workload.TimedGenerator)
	var scn *scenario.Spec
	if sg, ok := gen.(*scenario.Generator); ok {
		scn = sg.Spec()
		if len(scn.Timeline) > 0 {
			res.ScenarioPhases = make([]PhaseStat, len(scn.Timeline))
			for i := range res.ScenarioPhases {
				res.ScenarioPhases[i].Phase = i + 1
			}
		}
	}

	// Measurement accumulators: the sequential scheduler records into
	// the result directly; a partitioned run gives each partition its
	// own accumulator — recording never crosses partitions — and merges
	// them in partition order afterwards.
	runs := []*stats.Run{res.Run}
	phases := [][]PhaseStat{res.ScenarioPhases}
	if parts > 0 {
		runs = make([]*stats.Run, parts)
		phases = make([][]PhaseStat, parts)
		for i := range runs {
			runs[i] = stats.NewRun()
			if res.ScenarioPhases != nil {
				ph := make([]PhaseStat, len(res.ScenarioPhases))
				copy(ph, res.ScenarioPhases)
				phases[i] = ph
			}
		}
	}

	coordID := 0
	partSeq := make([]int, cfg.Shards)
	for cn := 0; cn < cfg.CompNodes; cn++ {
		part := 0
		var node ComputeNode
		penv := env
		if parts > 0 {
			// Every coordinator of one compute node lives in one
			// partition, so compute-node state (record caches, address
			// caches) stays single-threaded.
			part = cn % parts
			node = psys.NewPartitionComputeNode(cn, views[part], part, parts)
			penv = world.Env(part)
		} else {
			node = sys.NewComputeNode(cn)
		}
		node.WarmCache()
		prun, pph := runs[part], phases[part]
		for i := 0; i < cfg.coordsOnNode(cn); i++ {
			id := coordID
			if parts > 0 {
				// Strided coordinator ids keep each coordinator's log
				// in its own partition's shard group (the log home
				// group is id mod shards), so commits stay
				// partition-local.
				id = part + parts*partSeq[part]
				partSeq[part]++
			}
			coord := node.NewCoordinator(id)
			rank := coordID
			coordID++
			penv.Spawn(fmt.Sprintf("cn%d/coord%d", cn, i), func(p *sim.Proc) {
				for !stop {
					var txn *engine.Txn
					if timed != nil {
						// Park while the timeline gates this
						// coordinator; each wait lands on the next
						// decision point (phase boundary, burst edge,
						// or resolution grid tick).
						for {
							w := timed.Gate(p.Now(), rank, totalCoords)
							if w == 0 {
								break
							}
							p.Sleep(w)
							if stop {
								return
							}
						}
						txn = timed.NextAt(p.Now(), p.Rand())
					} else {
						txn = gen.Next(p.Rand())
					}
					start := p.Now()
					measured := start >= sim.Time(cfg.Warmup)
					var ps *PhaseStat
					if measured && pph != nil {
						ps = &pph[scn.PhaseAt(start)]
					}
					attempt := 0
					for {
						a := coord.Execute(p, txn)
						if measured {
							prun.RecordAttempt(a)
							if ps != nil {
								ps.Attempts++
								if !a.Committed {
									ps.Aborts++
								}
							}
						}
						if a.Committed {
							break
						}
						if stop {
							// Draining: give up on this transaction.
							return
						}
						if a.Reason == engine.AbortWait {
							// A release window is in progress; come
							// back shortly without escalating.
							p.Sleep(2*sim.Microsecond + sim.Duration(p.Rand().Int63n(int64(4*sim.Microsecond))))
							continue
						}
						attempt++
						p.Sleep(retry.Backoff(attempt, p.Rand()))
					}
					if measured {
						prun.RecordCommit(p.Now().Sub(start))
						if ps != nil {
							ps.Commits++
						}
					}
				}
			})
		}
	}

	deadline := sim.Time(cfg.Duration)
	wallStart := time.Now()
	if world != nil {
		if err := world.RunUntil(deadline); err != nil {
			return res, err
		}
		stop = true
		if err := world.Run(); err != nil { // drain in-flight transactions
			return res, err
		}
		res.Events = world.Dispatched()
	} else {
		if err := env.RunUntil(deadline); err != nil {
			return res, err
		}
		stop = true
		if err := env.Run(); err != nil { // drain in-flight transactions
			return res, err
		}
		res.Events = env.Dispatched()
	}
	res.WallMS = float64(time.Since(wallStart)) / float64(time.Millisecond)
	if parts > 0 {
		// Fold the per-partition accumulators in partition order — a
		// pure function of the simulation, independent of workers.
		for _, r := range runs {
			res.Run.Merge(r)
		}
		for _, ph := range phases {
			for j := range ph {
				res.ScenarioPhases[j].Attempts += ph[j].Attempts
				res.ScenarioPhases[j].Commits += ph[j].Commits
				res.ScenarioPhases[j].Aborts += ph[j].Aborts
			}
		}
		for _, v := range views {
			db.History.Absorb(v.History)
		}
	}
	if world != nil {
		ri := &RuntimeInfo{Sim: world.RuntimeStats(), Workers: world.Workers()}
		ri.Cross = make([]rdma.Stats, world.Parts())
		for i := range ri.Cross {
			ri.Cross[i] = fabric.CrossLaneStats(i)
		}
		res.Runtime = ri
	}
	res.Elapsed = cfg.Duration - cfg.Warmup
	res.Verbs = fabric.Stats().Sub(verbs0)
	if cfg.CheckHistory {
		res.HistoryErr = db.History.Check()
		res.History = db.History
	}
	return res, nil
}

// registerWorldProbes exports the window executor's schedule-derived
// introspection through the metrics registry of a partitioned metered
// run: per-partition dispatch/injection counters, mailbox high-water
// marks and cross-partition verb counts on each partition's shard
// registry, plus the world-wide window counters on partition 0's. Only
// schedule-derived values are registered — wall-clock timings (barrier
// waits, busy time) surface exclusively through Result.Runtime, so the
// metrics export stays byte-identical at any worker count.
func registerWorldProbes(reg *metrics.Registry, world *sim.World, fabric *rdma.Fabric) {
	parts := world.Parts()
	for i := 0; i < parts; i++ {
		part := i
		shard := reg.Shard(part, parts)
		label := fmt.Sprintf(`partition="%d"`, part)
		penv := world.Env(part)
		shard.CounterFunc("crest_sim_part_dispatches_total", label,
			"Events dispatched, by partition.",
			func() uint64 { return penv.Dispatched() })
		shard.CounterFunc("crest_sim_part_injected_total", label,
			"Cross-partition messages injected at barriers, by target partition.",
			func() uint64 { return world.PartInjected(part) })
		shard.GaugeFunc("crest_sim_part_mailbox_hwm", label,
			"Largest single-barrier incoming message batch, by partition.",
			func() int64 { return int64(world.PartMailboxHWM(part)) })
		shard.CounterFunc("crest_rdma_cross_part_verbs_total", label,
			"Verbs posted whose target region lives in another partition, by issuing partition.",
			func() uint64 { return fabric.CrossLaneStats(part).Total() })
	}
	shard0 := reg.Shard(0, parts)
	shard0.CounterFunc("crest_sim_windows_total", "",
		"Conservative time windows executed.", world.Windows)
	shard0.GaugeFunc("crest_sim_window_width_avg", "",
		"Mean window width in virtual time units (lookahead efficiency).",
		func() int64 { return int64(world.WindowWidthAvg()) })
}

// probeHotKeys derives a hotspot-placement seed when the caller gave
// none: it runs a short deterministic slice of the same workload under
// modulo placement with a causality recorder and pins the recorder's
// hottest keys (at most memnode.MaxShards of them) to shard group 0,
// colocating the hot set. The probe is a separate simulation with its
// own virtual clock, so it adds no events and no randomness to the
// measured run.
func probeHotKeys(cfg Config) ([]placement.HotKey, error) {
	probe := cfg
	probe.Placement = "modulo"
	probe.HotKeys = nil
	probe.Why = causality.NewRecorder(causality.Options{})
	probe.Trace = nil
	probe.Metrics = nil
	probe.Flight = nil
	probe.CheckHistory = false
	probe.Duration = 4 * sim.Millisecond
	probe.Warmup = sim.Millisecond
	if _, err := Run(probe); err != nil {
		return nil, fmt.Errorf("bench: hotspot placement probe: %w", err)
	}
	hs := probe.Why.Snapshot().Graph().Hotspots
	limit := memnode.MaxShards
	if len(hs) < limit {
		limit = len(hs)
	}
	keys := make([]placement.HotKey, 0, limit)
	for _, h := range hs[:limit] {
		keys = append(keys, placement.HotKey{Table: h.Table, Key: h.Key, Shard: 0})
	}
	return keys, nil
}

// CRESTSystem unwraps a System adapter into the concrete CREST engine
// when the run uses a CREST variant (for recovery and diagnostics).
func CRESTSystem(s System) (*core.System, bool) {
	cs, ok := s.(crestSys)
	if !ok {
		return nil, false
	}
	return cs.System, true
}
