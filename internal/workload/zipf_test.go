package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestZipfHighThetaProperties exercises the regime the Gray et al.
// quick approximation gets wrong (theta ≥ 1, up to the paper's
// production-observed 1.22 and beyond): the CDF must stay monotonic
// and end at 1, every draw must stay in range, and the sampled head
// mass must match the analytic P(0).
func TestZipfHighThetaProperties(t *testing.T) {
	check := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := uint64(nRaw)%5000 + 2             // [2, 5001]
		theta := 1 + float64(thetaRaw%200)/100 // [1.00, 2.99]
		z := NewZipf(n, theta)

		prev := 0.0
		for i := uint64(0); i < n; i++ {
			if z.cdf[i] < prev {
				t.Logf("n=%d theta=%.2f: cdf decreases at %d", n, theta, i)
				return false
			}
			prev = z.cdf[i]
		}
		if z.cdf[n-1] != 1 {
			t.Logf("n=%d theta=%.2f: cdf ends at %v", n, theta, z.cdf[n-1])
			return false
		}

		rng := rand.New(rand.NewSource(seed))
		const draws = 20000
		head := 0
		for i := 0; i < draws; i++ {
			r := z.Next(rng)
			if r >= n {
				t.Logf("n=%d theta=%.2f: drew out-of-range rank %d", n, theta, r)
				return false
			}
			if r == 0 {
				head++
			}
		}
		// With theta ≥ 1 the head holds a large share (P(0) ≥ 1/H_n),
		// so 20k draws estimate it tightly; allow ±25% relative slack.
		want := z.P(0)
		got := float64(head) / draws
		if got < 0.75*want || got > 1.25*want {
			t.Logf("n=%d theta=%.2f: head mass %.4f, want ≈ %.4f", n, theta, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
