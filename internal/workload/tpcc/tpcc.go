// Package tpcc implements a TPC-C-style OLTP workload with the
// column-access patterns the paper's analysis depends on (§2.3): the
// warehouse table is touched by ~92% of transactions, NewOrder only
// reads warehouse identification/tax columns while Payment updates the
// YTD column, so record-level concurrency control suffers false
// conflicts that cell-level concurrency control avoids.
//
// Scaling: per the reproduction notes in DESIGN.md, cardinalities
// (customers, items, order rings) are scaled down from the TPC-C spec
// — contention level is controlled by the warehouse count, exactly the
// knob the paper sweeps (80 warehouses = low contention, 20 = high).
// Order/order-line/history rows are pre-allocated as rings and
// "inserted" by writing fresh slots, which keeps the contention
// behaviour (the hot D_NEXT_O_ID counter) while avoiding runtime index
// inserts.
package tpcc

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// Table ids.
const (
	WarehouseTable layout.TableID = 30
	DistrictTable  layout.TableID = 31
	CustomerTable  layout.TableID = 32
	HistoryTable   layout.TableID = 33
	NewOrderTable  layout.TableID = 34
	OrdersTable    layout.TableID = 35
	OrderLineTable layout.TableID = 36
	ItemTable      layout.TableID = 37
	StockTable     layout.TableID = 38
)

// Warehouse cells.
const (
	WName = iota
	WStreet1
	WStreet2
	WCity
	WState
	WZip
	WTax
	WYtd
)

// District cells.
const (
	DName = iota
	DStreet
	DCity
	DState
	DZip
	DTax
	DYtd
	DNextOID
)

// Customer cells.
const (
	CFirst = iota
	CMiddle
	CLast
	CStreet1
	CStreet2
	CCity
	CState
	CZip
	CPhone
	CCredit
	CCreditLim
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CData
)

// Orders cells.
const (
	OCID = iota
	OEntryD
	OCarrier
	OOLCnt
)

// OrderLine cells.
const (
	OLIID = iota
	OLSupplyW
	OLQty
	OLAmount
	OLDistInfo
)

// Stock cells.
const (
	SQty = iota
	SDist
	SYtd
	SOrderCnt
	SRemoteCnt
	SData
)

// Item cells.
const (
	IName = iota
	IPrice
	IData
)

// Config sizes the workload. Warehouses is the paper's contention
// knob.
type Config struct {
	Warehouses           int // paper default 40; 80 = low, 20 = high contention
	Districts            int // per warehouse (spec: 10)
	CustomersPerDistrict int // scaled (spec: 3000)
	Items                int // scaled (spec: 100,000)
	OrdersPerDistrict    int // order ring capacity per district
	MaxOrderLines        int // order lines per order (spec: 5–15, capped)
	HistoryCap           int // history ring capacity
}

// DefaultConfig is the paper's default contention level at laptop
// scale.
func DefaultConfig() Config {
	return Config{
		Warehouses:           40,
		Districts:            10,
		CustomersPerDistrict: 48,
		Items:                1000,
		OrdersPerDistrict:    64,
		MaxOrderLines:        10,
		HistoryCap:           1 << 15,
	}
}

// Generator produces TPC-C transactions with the standard mix:
// NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel
// 4% (92% read-write, matching §2.3).
type Generator struct {
	cfg     Config
	histSeq uint64
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Warehouses <= 0 || cfg.Districts <= 0 || cfg.CustomersPerDistrict <= 0 ||
		cfg.Items <= 0 || cfg.OrdersPerDistrict <= 0 || cfg.MaxOrderLines < 5 {
		panic("tpcc: invalid config")
	}
	return &Generator{cfg: cfg}
}

// Name implements workload.Generator.
func (g *Generator) Name() string { return "tpcc" }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Key composition helpers.

func (g *Generator) districtKey(w, d int) layout.Key {
	return layout.Key(w*g.cfg.Districts + d)
}

func (g *Generator) customerKey(w, d, c int) layout.Key {
	return layout.Key((w*g.cfg.Districts+d)*g.cfg.CustomersPerDistrict + c)
}

func (g *Generator) orderKey(w, d int, o uint64) layout.Key {
	return layout.Key(uint64(w*g.cfg.Districts+d)*uint64(g.cfg.OrdersPerDistrict) +
		o%uint64(g.cfg.OrdersPerDistrict))
}

func (g *Generator) orderLineKey(w, d int, o uint64, ol int) layout.Key {
	return layout.Key(uint64(g.orderKey(w, d, o))*uint64(g.cfg.MaxOrderLines) + uint64(ol))
}

func (g *Generator) stockKey(w, i int) layout.Key {
	return layout.Key(w*g.cfg.Items + i)
}

// Tables implements workload.Generator.
func (g *Generator) Tables() []workload.TableDef {
	c := g.cfg
	nDist := c.Warehouses * c.Districts
	nOrders := nDist * c.OrdersPerDistrict
	return []workload.TableDef{
		{Schema: layout.Schema{ID: WarehouseTable, Name: "warehouse",
			CellSizes: []int{10, 20, 20, 20, 2, 9, 8, 8}}, Capacity: c.Warehouses},
		{Schema: layout.Schema{ID: DistrictTable, Name: "district",
			CellSizes: []int{10, 20, 20, 2, 9, 8, 8, 8}}, Capacity: nDist},
		{Schema: layout.Schema{ID: CustomerTable, Name: "customer",
			CellSizes: []int{16, 2, 16, 20, 20, 20, 2, 9, 16, 2, 8, 8, 8, 8, 8, 100}},
			Capacity: nDist * c.CustomersPerDistrict},
		{Schema: layout.Schema{ID: HistoryTable, Name: "history",
			CellSizes: []int{8, 24}}, Capacity: c.HistoryCap},
		{Schema: layout.Schema{ID: NewOrderTable, Name: "neworder",
			CellSizes: []int{8}}, Capacity: nOrders},
		{Schema: layout.Schema{ID: OrdersTable, Name: "orders",
			CellSizes: []int{8, 8, 8, 8}}, Capacity: nOrders},
		{Schema: layout.Schema{ID: OrderLineTable, Name: "orderline",
			CellSizes: []int{8, 8, 8, 8, 24}}, Capacity: nOrders * c.MaxOrderLines},
		{Schema: layout.Schema{ID: ItemTable, Name: "item",
			CellSizes: []int{24, 8, 50}}, Capacity: c.Items},
		{Schema: layout.Schema{ID: StockTable, Name: "stock",
			CellSizes: []int{8, 24, 8, 8, 8, 50}}, Capacity: c.Warehouses * c.Items},
	}
}

// Load implements workload.Generator: full initial population,
// including a half-full order ring per district so read-only
// transactions have history to scan.
func (g *Generator) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	c := g.cfg
	rng := rand.New(rand.NewSource(99))
	for w := 0; w < c.Warehouses; w++ {
		fn(WarehouseTable, layout.Key(w), [][]byte{
			workload.Text(uint64(w), 10), workload.Text(uint64(w)+1, 20),
			workload.Text(uint64(w)+2, 20), workload.Text(uint64(w)+3, 20),
			workload.Text(uint64(w)+4, 2), workload.Text(uint64(w)+5, 9),
			workload.U64(uint64(rng.Intn(2000)), 8), // tax (basis points)
			workload.U64(0, 8),                      // ytd
		})
	}
	initialOrders := uint64(c.OrdersPerDistrict / 2)
	for w := 0; w < c.Warehouses; w++ {
		for d := 0; d < c.Districts; d++ {
			dk := g.districtKey(w, d)
			fn(DistrictTable, dk, [][]byte{
				workload.Text(uint64(dk), 10), workload.Text(uint64(dk)+1, 20),
				workload.Text(uint64(dk)+2, 20), workload.Text(uint64(dk)+3, 2),
				workload.Text(uint64(dk)+4, 9),
				workload.U64(uint64(rng.Intn(2000)), 8), // tax
				workload.U64(0, 8),                      // ytd
				workload.U64(initialOrders, 8),          // next order id
			})
			for cu := 0; cu < c.CustomersPerDistrict; cu++ {
				ck := g.customerKey(w, d, cu)
				fn(CustomerTable, ck, [][]byte{
					workload.Text(uint64(ck), 16), workload.Text(uint64(ck)+1, 2),
					workload.Text(uint64(ck)+2, 16), workload.Text(uint64(ck)+3, 20),
					workload.Text(uint64(ck)+4, 20), workload.Text(uint64(ck)+5, 20),
					workload.Text(uint64(ck)+6, 2), workload.Text(uint64(ck)+7, 9),
					workload.Text(uint64(ck)+8, 16), workload.Text(uint64(ck)+9, 2),
					workload.U64(50_000, 8),                 // credit limit
					workload.U64(uint64(rng.Intn(5000)), 8), // discount (bp)
					workload.U64(1_000_000, 8),              // balance
					workload.U64(0, 8), workload.U64(0, 8),  // ytd payment, cnt
					workload.Text(uint64(ck)+10, 100), // data
				})
			}
			for o := uint64(0); o < uint64(c.OrdersPerDistrict); o++ {
				ok := g.orderKey(w, d, o)
				loaded := o < initialOrders
				cid, olCnt := uint64(0), uint64(0)
				if loaded {
					cid = uint64(rng.Intn(c.CustomersPerDistrict))
					olCnt = 5
				}
				fn(OrdersTable, ok, [][]byte{
					workload.U64(cid, 8), workload.U64(o, 8),
					workload.U64(0, 8), workload.U64(olCnt, 8),
				})
				fn(NewOrderTable, ok, [][]byte{workload.U64(0, 8)})
				for ol := 0; ol < c.MaxOrderLines; ol++ {
					iid := uint64(0)
					if loaded && ol < int(olCnt) {
						iid = uint64(rng.Intn(c.Items))
					}
					fn(OrderLineTable, g.orderLineKey(w, d, o, ol), [][]byte{
						workload.U64(iid, 8), workload.U64(uint64(w), 8),
						workload.U64(5, 8), workload.U64(100, 8),
						workload.Text(uint64(ok), 24),
					})
				}
			}
		}
	}
	for i := 0; i < c.Items; i++ {
		fn(ItemTable, layout.Key(i), [][]byte{
			workload.Text(uint64(i), 24),
			workload.U64(uint64(rng.Intn(9900)+100), 8),
			workload.Text(uint64(i)+1, 50),
		})
	}
	for w := 0; w < c.Warehouses; w++ {
		for i := 0; i < c.Items; i++ {
			fn(StockTable, g.stockKey(w, i), [][]byte{
				workload.U64(uint64(rng.Intn(90)+10), 8),
				workload.Text(uint64(i), 24),
				workload.U64(0, 8), workload.U64(0, 8), workload.U64(0, 8),
				workload.Text(uint64(i)+2, 50),
			})
		}
	}
	for h := 0; h < c.HistoryCap; h++ {
		fn(HistoryTable, layout.Key(h), [][]byte{workload.U64(0, 8), workload.Text(uint64(h), 24)})
	}
}

// Next implements workload.Generator.
func (g *Generator) Next(rng *rand.Rand) *engine.Txn {
	switch p := rng.Float64(); {
	case p < 0.45:
		return g.newOrder(rng)
	case p < 0.88:
		return g.payment(rng)
	case p < 0.92:
		return g.orderStatus(rng)
	case p < 0.96:
		return g.delivery(rng)
	default:
		return g.stockLevel(rng)
	}
}
