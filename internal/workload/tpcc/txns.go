package tpcc

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// nuRand is TPC-C's non-uniform random distribution NURand(A, x, y):
// customers are selected with a skew toward a hashed hot set, per
// clause 2.1.6 of the specification. C is fixed per generator run.
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := a / 2
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// customer picks a customer id within a district using NURand(1023),
// scaled to the configured district size.
func (g *Generator) customer(rng *rand.Rand) int {
	n := g.cfg.CustomersPerDistrict
	return nuRand(rng, 1023, 0, n-1) % n
}

// newOrderState threads the order id resolved in block 1 into the
// key-dependent block 2 (the paper's Fig 9 example is exactly this
// dependency: the order rows' keys derive from D_NEXT_O_ID).
type newOrderState struct {
	oID uint64
}

// newOrder places an order: it reads the warehouse tax/name columns
// (never writing the warehouse — the false-conflict half of §2.3),
// increments the district's next-order-id (the true hot cell), updates
// stock, and writes the order rows in a dependent second block.
func (g *Generator) newOrder(rng *rand.Rand) *engine.Txn {
	c := g.cfg
	w := rng.Intn(c.Warehouses)
	d := rng.Intn(c.Districts)
	cu := g.customer(rng)
	nOL := 5 + rng.Intn(c.MaxOrderLines-4)
	st := &newOrderState{}

	items := rng.Perm(c.Items)[:nOL]
	block1 := []engine.Op{
		{
			Table: WarehouseTable, Key: layout.Key(w),
			ReadCells: []int{WName, WTax},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		},
		{
			Table: DistrictTable, Key: g.districtKey(w, d),
			ReadCells: []int{DTax, DNextOID}, WriteCells: []int{DNextOID},
			Hook: func(state any, read [][]byte) [][]byte {
				s := state.(*newOrderState)
				s.oID = workload.GetU64(read[1])
				return [][]byte{workload.PutU64(read[1], s.oID+1)}
			},
		},
		{
			Table: CustomerTable, Key: g.customerKey(w, d, cu),
			ReadCells: []int{CLast, CCredit, CDiscount},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		},
	}
	for ol := 0; ol < nOL; ol++ {
		item := items[ol]
		supplyW := w
		if c.Warehouses > 1 && rng.Intn(100) == 0 {
			supplyW = rng.Intn(c.Warehouses) // 1% remote per spec
		}
		qty := uint64(rng.Intn(10) + 1)
		block1 = append(block1,
			engine.Op{
				Table: ItemTable, Key: layout.Key(item),
				ReadCells: []int{IName, IPrice},
				Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
			},
			engine.Op{
				Table: StockTable, Key: g.stockKey(supplyW, item),
				ReadCells:  []int{SQty, SDist},
				WriteCells: []int{SQty, SYtd, SOrderCnt},
				Hook: func(_ any, read [][]byte) [][]byte {
					have := workload.GetU64(read[0])
					if have >= qty+10 {
						have -= qty
					} else {
						have = have - qty + 91
					}
					return [][]byte{
						workload.PutU64(read[0], have),
						workload.U64(qty, 8),
						workload.U64(1, 8),
					}
				},
			},
		)
	}

	block2 := []engine.Op{
		{
			Table:      OrdersTable,
			KeyFn:      func(state any) layout.Key { return g.orderKey(w, d, state.(*newOrderState).oID) },
			WriteCells: []int{OCID, OEntryD, OCarrier, OOLCnt},
			Hook: func(state any, _ [][]byte) [][]byte {
				s := state.(*newOrderState)
				return [][]byte{
					workload.U64(uint64(cu), 8), workload.U64(s.oID, 8),
					workload.U64(0, 8), workload.U64(uint64(nOL), 8),
				}
			},
		},
		{
			Table:      NewOrderTable,
			KeyFn:      func(state any) layout.Key { return g.orderKey(w, d, state.(*newOrderState).oID) },
			WriteCells: []int{0},
			Hook:       func(_ any, _ [][]byte) [][]byte { return [][]byte{workload.U64(1, 8)} },
		},
	}
	for ol := 0; ol < nOL; ol++ {
		ol := ol
		item := items[ol]
		block2 = append(block2, engine.Op{
			Table: OrderLineTable,
			KeyFn: func(state any) layout.Key {
				return g.orderLineKey(w, d, state.(*newOrderState).oID, ol)
			},
			WriteCells: []int{OLIID, OLSupplyW, OLQty, OLAmount, OLDistInfo},
			Hook: func(_ any, _ [][]byte) [][]byte {
				return [][]byte{
					workload.U64(uint64(item), 8), workload.U64(uint64(w), 8),
					workload.U64(1, 8), workload.U64(100, 8),
					workload.Text(uint64(item), 24),
				}
			},
		})
	}
	return &engine.Txn{
		Label:  "NewOrder",
		State:  st,
		Blocks: []engine.Block{{Ops: block1}, {Ops: block2}},
	}
}

// payment records a customer payment: it updates the warehouse and
// district YTD columns (the cells NewOrder never touches), the
// customer's balance columns, and appends a history row.
func (g *Generator) payment(rng *rand.Rand) *engine.Txn {
	c := g.cfg
	w := rng.Intn(c.Warehouses)
	d := rng.Intn(c.Districts)
	// 85% local customer, 15% remote warehouse (spec), which adds the
	// cross-warehouse contention the paper's skew sweep relies on.
	cw, cd := w, d
	if c.Warehouses > 1 && rng.Intn(100) < 15 {
		for cw == w {
			cw = rng.Intn(c.Warehouses)
		}
		cd = rng.Intn(c.Districts)
	}
	cu := g.customer(rng)
	amount := uint64(rng.Intn(5000) + 100)
	g.histSeq++
	histKey := layout.Key(g.histSeq % uint64(c.HistoryCap))

	ops := []engine.Op{
		{
			Table: WarehouseTable, Key: layout.Key(w),
			ReadCells: []int{WName, WYtd}, WriteCells: []int{WYtd},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{workload.PutU64(read[1], workload.GetU64(read[1])+amount)}
			},
		},
		{
			Table: DistrictTable, Key: g.districtKey(w, d),
			ReadCells: []int{DName, DYtd}, WriteCells: []int{DYtd},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{workload.PutU64(read[1], workload.GetU64(read[1])+amount)}
			},
		},
		{
			Table: CustomerTable, Key: g.customerKey(cw, cd, cu),
			ReadCells:  []int{CLast, CCredit, CBalance, CYtdPayment, CPaymentCnt},
			WriteCells: []int{CBalance, CYtdPayment, CPaymentCnt},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{
					workload.PutU64(read[2], workload.GetU64(read[2])-amount),
					workload.PutU64(read[3], workload.GetU64(read[3])+amount),
					workload.PutU64(read[4], workload.GetU64(read[4])+1),
				}
			},
		},
		{
			Table: HistoryTable, Key: histKey,
			WriteCells: []int{0, 1},
			Hook: func(_ any, _ [][]byte) [][]byte {
				return [][]byte{workload.U64(amount, 8), workload.Text(uint64(histKey), 24)}
			},
		},
	}
	return &engine.Txn{Label: "Payment", Blocks: []engine.Block{{Ops: ops}}}
}

// orderStatusState carries the district's next order id into the
// dependent read of a recent order.
type orderStatusState struct {
	nextO uint64
}

// orderStatus is read-only: customer balance plus a recent order and
// its order lines.
func (g *Generator) orderStatus(rng *rand.Rand) *engine.Txn {
	c := g.cfg
	w := rng.Intn(c.Warehouses)
	d := rng.Intn(c.Districts)
	cu := g.customer(rng)
	back := uint64(rng.Intn(8) + 1)
	st := &orderStatusState{}
	oKey := func(state any) layout.Key {
		s := state.(*orderStatusState)
		o := uint64(0)
		if s.nextO > back {
			o = s.nextO - back
		}
		return g.orderKey(w, d, o)
	}

	block1 := []engine.Op{
		{
			Table: CustomerTable, Key: g.customerKey(w, d, cu),
			ReadCells: []int{CFirst, CMiddle, CLast, CBalance},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		},
		{
			Table: DistrictTable, Key: g.districtKey(w, d),
			ReadCells: []int{DNextOID},
			Hook: func(state any, read [][]byte) [][]byte {
				state.(*orderStatusState).nextO = workload.GetU64(read[0])
				return nil
			},
		},
	}
	block2 := []engine.Op{{
		Table: OrdersTable, KeyFn: oKey,
		ReadCells: []int{OCID, OEntryD, OCarrier, OOLCnt},
		Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
	}}
	for ol := 0; ol < 5; ol++ {
		ol := ol
		block2 = append(block2, engine.Op{
			Table: OrderLineTable,
			KeyFn: func(state any) layout.Key {
				s := state.(*orderStatusState)
				o := uint64(0)
				if s.nextO > back {
					o = s.nextO - back
				}
				return g.orderLineKey(w, d, o, ol)
			},
			ReadCells: []int{OLIID, OLSupplyW, OLQty, OLAmount},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		})
	}
	return &engine.Txn{
		Label:    "OrderStatus",
		ReadOnly: true,
		State:    st,
		Blocks:   []engine.Block{{Ops: block1}, {Ops: block2}},
	}
}

// deliveryState carries the delivered order's customer and total.
type deliveryState struct {
	cID   uint64
	total uint64
}

// delivery delivers one order in one district (the spec delivers all
// ten districts; DESIGN.md documents the scaling): it clears the
// new-order flag, stamps the carrier, sums the order lines, and
// credits the customer's balance in a dependent block.
func (g *Generator) delivery(rng *rand.Rand) *engine.Txn {
	c := g.cfg
	w := rng.Intn(c.Warehouses)
	d := rng.Intn(c.Districts)
	o := uint64(rng.Intn(c.OrdersPerDistrict))
	carrier := uint64(rng.Intn(10) + 1)
	st := &deliveryState{}

	block1 := []engine.Op{
		{
			Table: NewOrderTable, Key: g.orderKey(w, d, o),
			ReadCells: []int{0}, WriteCells: []int{0},
			Hook: func(_ any, read [][]byte) [][]byte {
				return [][]byte{workload.PutU64(read[0], 0)}
			},
		},
		{
			Table: OrdersTable, Key: g.orderKey(w, d, o),
			ReadCells: []int{OCID, OOLCnt}, WriteCells: []int{OCarrier},
			Hook: func(state any, read [][]byte) [][]byte {
				state.(*deliveryState).cID = workload.GetU64(read[0])
				return [][]byte{workload.U64(carrier, 8)}
			},
		},
	}
	for ol := 0; ol < 5; ol++ {
		block1 = append(block1, engine.Op{
			Table: OrderLineTable, Key: g.orderLineKey(w, d, o, ol),
			ReadCells: []int{OLAmount},
			Hook: func(state any, read [][]byte) [][]byte {
				state.(*deliveryState).total += workload.GetU64(read[0])
				return nil
			},
		})
	}
	block2 := []engine.Op{{
		Table: CustomerTable,
		KeyFn: func(state any) layout.Key {
			s := state.(*deliveryState)
			return g.customerKey(w, d, int(s.cID)%c.CustomersPerDistrict)
		},
		ReadCells: []int{CBalance}, WriteCells: []int{CBalance},
		Hook: func(state any, read [][]byte) [][]byte {
			s := state.(*deliveryState)
			return [][]byte{workload.PutU64(read[0], workload.GetU64(read[0])+s.total)}
		},
	}}
	return &engine.Txn{
		Label:  "Delivery",
		State:  st,
		Blocks: []engine.Block{{Ops: block1}, {Ops: block2}},
	}
}

// stockLevelState resolves the three-stage key dependency: district →
// recent order lines → their items' stock rows.
type stockLevelState struct {
	nextO uint64
	items []uint64
	keys  []layout.Key
}

// stockKeys dedupes the item ids read in block 2 into distinct stock
// keys (a transaction accesses each record at most once; duplicate
// items probe to the neighbouring stock row, an approximation noted in
// DESIGN.md).
func (s *stockLevelState) stockKeys(g *Generator, w, n int) []layout.Key {
	if s.keys != nil {
		return s.keys
	}
	seen := map[layout.Key]bool{}
	for _, it := range s.items {
		k := g.stockKey(w, int(it)%g.cfg.Items)
		for seen[k] {
			k = g.stockKey(w, (int(k)+1)%g.cfg.Items)
		}
		seen[k] = true
		s.keys = append(s.keys, k)
	}
	for len(s.keys) < n {
		k := g.stockKey(w, len(s.keys)*7%g.cfg.Items)
		for seen[k] {
			k = g.stockKey(w, (int(k)+1)%g.cfg.Items)
		}
		seen[k] = true
		s.keys = append(s.keys, k)
	}
	return s.keys
}

// stockLevel is read-only and pipeline-heavy: three blocks chained by
// key dependencies.
func (g *Generator) stockLevel(rng *rand.Rand) *engine.Txn {
	c := g.cfg
	w := rng.Intn(c.Warehouses)
	d := rng.Intn(c.Districts)
	const scan = 5
	st := &stockLevelState{}

	block1 := []engine.Op{{
		Table: DistrictTable, Key: g.districtKey(w, d),
		ReadCells: []int{DNextOID},
		Hook: func(state any, read [][]byte) [][]byte {
			state.(*stockLevelState).nextO = workload.GetU64(read[0])
			return nil
		},
	}}
	block2 := make([]engine.Op, 0, scan)
	for i := 0; i < scan; i++ {
		i := i
		block2 = append(block2, engine.Op{
			Table: OrderLineTable,
			KeyFn: func(state any) layout.Key {
				s := state.(*stockLevelState)
				o := uint64(0)
				if s.nextO > uint64(i+1) {
					o = s.nextO - uint64(i+1)
				}
				return g.orderLineKey(w, d, o, 0)
			},
			ReadCells: []int{OLIID},
			Hook: func(state any, read [][]byte) [][]byte {
				s := state.(*stockLevelState)
				s.items = append(s.items, workload.GetU64(read[0]))
				return nil
			},
		})
	}
	block3 := make([]engine.Op, 0, scan)
	for i := 0; i < scan; i++ {
		i := i
		block3 = append(block3, engine.Op{
			Table: StockTable,
			KeyFn: func(state any) layout.Key {
				return state.(*stockLevelState).stockKeys(g, w, scan)[i]
			},
			ReadCells: []int{SQty},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		})
	}
	return &engine.Txn{
		Label:    "StockLevel",
		ReadOnly: true,
		State:    st,
		Blocks:   []engine.Block{{Ops: block1}, {Ops: block2}, {Ops: block3}},
	}
}
