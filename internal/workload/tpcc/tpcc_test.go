package tpcc

import (
	"math/rand"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

func tinyConfig() Config {
	return Config{
		Warehouses:           2,
		Districts:            2,
		CustomersPerDistrict: 8,
		Items:                32,
		OrdersPerDistrict:    16,
		MaxOrderLines:        10,
		HistoryCap:           64,
	}
}

func TestSchemasValid(t *testing.T) {
	g := New(tinyConfig())
	for _, def := range g.Tables() {
		if err := def.Schema.Normalize().Validate(); err != nil {
			t.Fatalf("table %s: %v", def.Schema.Name, err)
		}
		if def.Capacity <= 0 {
			t.Fatalf("table %s capacity %d", def.Schema.Name, def.Capacity)
		}
	}
}

func TestAverageCellShapeNearPaper(t *testing.T) {
	// The paper reports ~6.6 cells per record, ~36 bytes per cell on
	// average across the TPC-C tables. Our schemas should be in that
	// neighbourhood.
	g := New(DefaultConfig())
	cells, bytes := 0, 0
	for _, def := range g.Tables() {
		cells += def.Schema.NumCells()
		bytes += def.Schema.DataBytes()
	}
	avgCells := float64(cells) / 9
	avgBytes := float64(bytes) / float64(cells)
	if avgCells < 4 || avgCells > 10 {
		t.Fatalf("avg cells/record %.1f far from paper's 6.6", avgCells)
	}
	// (The paper's 36.1-byte average weights tables by row count; our
	// unweighted schema average just needs to be the right order of
	// magnitude.)
	if avgBytes < 8 || avgBytes > 60 {
		t.Fatalf("avg cell bytes %.1f far from paper's 36.1", avgBytes)
	}
}

// loadState materializes the whole database for local hook execution.
func loadState(g *Generator) map[layout.TableID]map[layout.Key][][]byte {
	state := map[layout.TableID]map[layout.Key][][]byte{}
	for _, def := range g.Tables() {
		state[def.Schema.ID] = map[layout.Key][][]byte{}
	}
	g.Load(func(table layout.TableID, key layout.Key, cells [][]byte) {
		cp := make([][]byte, len(cells))
		for i, c := range cells {
			cp[i] = append([]byte(nil), c...)
		}
		state[table][key] = cp
	})
	return state
}

func TestLoadMatchesCapacities(t *testing.T) {
	g := New(tinyConfig())
	state := loadState(g)
	for _, def := range g.Tables() {
		if got := len(state[def.Schema.ID]); got != def.Capacity {
			t.Fatalf("table %s loaded %d of %d", def.Schema.Name, got, def.Capacity)
		}
		sizes := def.Schema.CellSizes
		for key, cells := range state[def.Schema.ID] {
			if len(cells) != len(sizes) {
				t.Fatalf("table %s key %d has %d cells", def.Schema.Name, key, len(cells))
			}
			for i, c := range cells {
				if len(c) != sizes[i] {
					t.Fatalf("table %s cell %d size %d != %d", def.Schema.Name, i, len(c), sizes[i])
				}
			}
		}
	}
}

// applyLocally executes a transaction's hooks against the local state,
// verifying every referenced record exists and every write matches its
// cell size.
func applyLocally(t *testing.T, txn *engine.Txn, g *Generator,
	state map[layout.TableID]map[layout.Key][][]byte) {
	t.Helper()
	sizes := map[layout.TableID][]int{}
	for _, def := range g.Tables() {
		sizes[def.Schema.ID] = def.Schema.CellSizes
	}
	for _, blk := range txn.Blocks {
		for i := range blk.Ops {
			op := &blk.Ops[i]
			key := op.ResolveKey(txn.State)
			rec := state[op.Table][key]
			if rec == nil {
				t.Fatalf("txn %s references unloaded record table=%d key=%d", txn.Label, op.Table, key)
			}
			read := make([][]byte, len(op.ReadCells))
			for j, c := range op.ReadCells {
				read[j] = append([]byte(nil), rec[c]...)
			}
			written := op.Hook(txn.State, read)
			if len(written) != len(op.WriteCells) {
				t.Fatalf("txn %s hook wrote %d values for %d cells", txn.Label, len(written), len(op.WriteCells))
			}
			for j, c := range op.WriteCells {
				if len(written[j]) != sizes[op.Table][c] {
					t.Fatalf("txn %s wrote %d bytes to cell %d (size %d)",
						txn.Label, len(written[j]), c, sizes[op.Table][c])
				}
				rec[c] = written[j]
			}
		}
	}
}

func TestAllTransactionTypesExecuteLocally(t *testing.T) {
	g := New(tinyConfig())
	state := loadState(g)
	rng := rand.New(rand.NewSource(8))
	labels := map[string]int{}
	for i := 0; i < 1500; i++ {
		txn := g.Next(rng)
		labels[txn.Label]++
		applyLocally(t, txn, g, state)
		// No record may be touched by two ops of one txn.
		seen := map[[2]uint64]bool{}
		for _, blk := range txn.Blocks {
			for j := range blk.Ops {
				op := &blk.Ops[j]
				rk := [2]uint64{uint64(op.Table), uint64(op.ResolveKey(txn.State))}
				if seen[rk] {
					t.Fatalf("txn %s touches record %v twice", txn.Label, rk)
				}
				seen[rk] = true
			}
		}
	}
	for _, want := range []string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"} {
		if labels[want] == 0 {
			t.Fatalf("type %s never generated: %v", want, labels)
		}
	}
	// ~92% read-write.
	rw := labels["NewOrder"] + labels["Payment"] + labels["Delivery"]
	if frac := float64(rw) / 1500; frac < 0.85 || frac > 0.97 {
		t.Fatalf("read-write fraction %.2f, paper says 92%%", frac)
	}
}

func TestNewOrderAdvancesNextOID(t *testing.T) {
	g := New(tinyConfig())
	state := loadState(g)
	rng := rand.New(rand.NewSource(9))
	before := map[layout.Key]uint64{}
	for key, cells := range state[DistrictTable] {
		before[key] = workload.GetU64(cells[DNextOID])
	}
	placed := 0
	for i := 0; i < 300 && placed < 20; i++ {
		txn := g.Next(rng)
		if txn.Label != "NewOrder" {
			continue
		}
		applyLocally(t, txn, g, state)
		placed++
	}
	advanced := uint64(0)
	for key, cells := range state[DistrictTable] {
		advanced += workload.GetU64(cells[DNextOID]) - before[key]
	}
	if advanced != uint64(placed) {
		t.Fatalf("D_NEXT_O_ID advanced %d for %d NewOrders", advanced, placed)
	}
}

func TestNewOrderNeverWritesWarehouse(t *testing.T) {
	// The motivating false conflict (§2.3): NewOrder only reads
	// warehouse columns; Payment writes only W_YTD.
	g := New(tinyConfig())
	rng := rand.New(rand.NewSource(10))
	checked := 0
	for i := 0; i < 400; i++ {
		txn := g.Next(rng)
		for _, blk := range txn.Blocks {
			for _, op := range blk.Ops {
				if op.Table != WarehouseTable {
					continue
				}
				switch txn.Label {
				case "NewOrder":
					if len(op.WriteCells) != 0 {
						t.Fatal("NewOrder writes the warehouse")
					}
					checked++
				case "Payment":
					if len(op.WriteCells) != 1 || op.WriteCells[0] != WYtd {
						t.Fatal("Payment must write exactly W_YTD")
					}
					for _, c := range op.ReadCells {
						if c == WTax {
							t.Fatal("Payment reads W_TAX")
						}
					}
					checked++
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d warehouse accesses observed", checked)
	}
}

func TestReadOnlyTypesMarked(t *testing.T) {
	g := New(tinyConfig())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		txn := g.Next(rng)
		ro := txn.Label == "OrderStatus" || txn.Label == "StockLevel"
		if txn.ReadOnly != ro {
			t.Fatalf("%s ReadOnly=%v", txn.Label, txn.ReadOnly)
		}
	}
}

func TestStockLevelThreeBlockPipeline(t *testing.T) {
	g := New(tinyConfig())
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 400; i++ {
		txn := g.Next(rng)
		if txn.Label != "StockLevel" {
			continue
		}
		if len(txn.Blocks) != 3 {
			t.Fatalf("StockLevel has %d blocks, want 3", len(txn.Blocks))
		}
		return
	}
	t.Fatal("no StockLevel generated")
}

func TestNURandSkewsAndStaysInRange(t *testing.T) {
	g := New(tinyConfig())
	rng := rand.New(rand.NewSource(13))
	counts := map[int]int{}
	for i := 0; i < 5000; i++ {
		cu := g.customer(rng)
		if cu < 0 || cu >= g.cfg.CustomersPerDistrict {
			t.Fatalf("customer %d out of range", cu)
		}
		counts[cu]++
	}
	// NURand is non-uniform: the hottest customer should exceed the
	// uniform expectation noticeably.
	max, uniform := 0, 5000/g.cfg.CustomersPerDistrict
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < uniform*3/2 {
		t.Fatalf("NURand looks uniform: max %d vs uniform %d", max, uniform)
	}
}
