// Package ycsb adapts the YCSB key-value benchmark for transaction
// processing, exactly as §8.2 of the paper describes: one table of
// records with four 40-byte cells; each transaction selects N distinct
// records (Zipf-distributed); read transactions read all cells of each
// record, write transactions update one random cell of each record.
//
// Beyond the paper's fixed mix, the generator supports YCSB's three
// request distributions (uniform, zipfian, latest) and logical
// inserts: insert transactions claim the next record at a
// monotonically advancing frontier, and the latest distribution skews
// selection toward the most recently inserted records. Rows are
// physically pre-allocated at load time, so inserts exercise the
// normal write path of every engine while the frontier models table
// growth.
package ycsb

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// TableID is the YCSB table.
const TableID layout.TableID = 10

// Request distributions a Config can name.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
	DistLatest  = "latest"
)

// Config sizes the workload. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Records    int     // table size (paper: 1 M; scaled default 100 K)
	N          int     // records per transaction (paper default 4)
	WriteRatio float64 // fraction of write transactions
	Theta      float64 // Zipfian constant (0 = uniform)
	CellSize   int     // bytes per cell (paper: 40)
	NumCells   int     // cells per record (paper: 4)

	// Distribution selects request key selection: "uniform",
	// "zipfian" or "latest". Empty keeps the historical behaviour
	// (uniform when Theta == 0, zipfian otherwise). "latest" skews
	// selection toward the most recently inserted records and draws
	// its recency ranks from a Zipf with constant Theta (0.99 when
	// Theta is 0).
	Distribution string
	// InsertProportion is the fraction of transactions that insert:
	// each insert claims the next record at the logical frontier by
	// writing all of its cells. Rows are physically pre-allocated, so
	// the frontier models table growth without engine-level space
	// allocation; once it reaches Records, inserts degrade to
	// rewriting the newest record.
	InsertProportion float64
	// PreLoaded is the number of records logically present before the
	// run when inserts are enabled (0 or > Records means all of them).
	// Only the latest distribution restricts selection to the
	// logically present prefix; uniform and zipfian select over the
	// whole key space.
	PreLoaded int
}

// DefaultConfig matches the paper's setup at a laptop-scale record
// count.
func DefaultConfig() Config {
	return Config{
		Records:    100_000,
		N:          4,
		WriteRatio: 0.5,
		Theta:      0.99,
		CellSize:   40,
		NumCells:   4,
	}
}

// Generator produces YCSB transactions.
type Generator struct {
	cfg    Config
	picker *workload.KeyPicker
	// recency draws ranks-behind-the-frontier for the latest
	// distribution; frontier is the number of logically inserted
	// records (keys < frontier exist, keys ≥ frontier are unclaimed
	// pre-allocated rows).
	recency  *workload.Zipf
	frontier int
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Records <= 0 || cfg.N <= 0 || cfg.NumCells <= 0 || cfg.CellSize < 8 {
		panic("ycsb: invalid config")
	}
	g := &Generator{cfg: cfg, frontier: cfg.Records}
	if cfg.PreLoaded > 0 && cfg.PreLoaded < cfg.Records {
		g.frontier = cfg.PreLoaded
	}
	switch cfg.Distribution {
	case "", DistZipfian, DistUniform:
		theta := cfg.Theta
		if cfg.Distribution == DistUniform {
			theta = 0
		}
		if cfg.Distribution == DistZipfian && theta == 0 {
			theta = 0.99
		}
		g.picker = workload.NewKeyPicker(cfg.Records, theta)
	case DistLatest:
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.99
		}
		if g.frontier < cfg.N {
			panic("ycsb: latest distribution needs PreLoaded >= N")
		}
		g.recency = workload.NewZipf(uint64(cfg.Records), theta)
	default:
		panic("ycsb: unknown request distribution " + cfg.Distribution)
	}
	return g
}

// Name implements workload.Generator.
func (g *Generator) Name() string { return "ycsb" }

// PartitionSafe implements workload.PartitionSafe: draws are pure
// unless inserts move the frontier (which both the insert path and the
// latest distribution read).
func (g *Generator) PartitionSafe() bool { return g.cfg.InsertProportion == 0 }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Frontier reports the number of logically inserted records: the next
// insert transaction claims key Frontier() (until the table is full).
func (g *Generator) Frontier() int { return g.frontier }

// Tables implements workload.Generator.
func (g *Generator) Tables() []workload.TableDef {
	sizes := make([]int, g.cfg.NumCells)
	for i := range sizes {
		sizes[i] = g.cfg.CellSize
	}
	return []workload.TableDef{{
		Schema:   layout.Schema{ID: TableID, Name: "usertable", CellSizes: sizes},
		Capacity: g.cfg.Records,
	}}
}

// Load implements workload.Generator.
func (g *Generator) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	for k := 0; k < g.cfg.Records; k++ {
		cells := make([][]byte, g.cfg.NumCells)
		for c := range cells {
			cells[c] = workload.U64(uint64(k), g.cfg.CellSize)
		}
		fn(TableID, layout.Key(k), cells)
	}
}

// pickKeys draws N distinct keys under the configured distribution.
func (g *Generator) pickKeys(rng *rand.Rand) []layout.Key {
	if g.recency == nil {
		return g.picker.PickDistinct(rng, g.cfg.N)
	}
	// Latest: rank r means "r-th most recently inserted record", so
	// hot keys hug the frontier and migrate as inserts land.
	out := make([]layout.Key, 0, g.cfg.N)
	seen := map[layout.Key]bool{}
	for len(out) < g.cfg.N {
		r := g.recency.Next(rng) % uint64(g.frontier)
		key := layout.Key(uint64(g.frontier) - 1 - r)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// insertTxn claims the next record at the frontier by writing every
// cell. The row is physically pre-allocated, so engines execute it as
// a plain read-modify-write of all cells; when the table is full the
// newest record is rewritten instead (the frontier stops moving).
func (g *Generator) insertTxn() *engine.Txn {
	key := g.frontier
	if key >= g.cfg.Records {
		key = g.cfg.Records - 1
	} else {
		g.frontier++
	}
	all := make([]int, g.cfg.NumCells)
	for c := range all {
		all[c] = c
	}
	v := uint64(key)
	size := g.cfg.CellSize
	return &engine.Txn{
		Label: "ycsb-insert",
		Blocks: []engine.Block{{Ops: []engine.Op{{
			Table: TableID,
			Key:   layout.Key(key),
			// Insert marks the claim so scenario drift never remaps a
			// frontier key; engines execute it as a plain full-row
			// read-modify-write (the row is pre-allocated).
			Insert:     true,
			ReadCells:  all,
			WriteCells: all,
			Hook: func(_ any, read [][]byte) [][]byte {
				cells := make([][]byte, len(read))
				for c := range cells {
					cells[c] = workload.U64(v, size)
				}
				return cells
			},
		}}}},
	}
}

// Next implements workload.Generator.
func (g *Generator) Next(rng *rand.Rand) *engine.Txn {
	// The insert draw is guarded so configurations without inserts
	// keep the historical RNG draw sequence byte-for-byte.
	if g.cfg.InsertProportion > 0 && rng.Float64() < g.cfg.InsertProportion {
		return g.insertTxn()
	}
	keys := g.pickKeys(rng)
	isWrite := rng.Float64() < g.cfg.WriteRatio
	t := &engine.Txn{Label: "ycsb-read", ReadOnly: !isWrite}
	if isWrite {
		t.Label = "ycsb-write"
	}
	var ops []engine.Op
	for _, key := range keys {
		if isWrite {
			cell := rng.Intn(g.cfg.NumCells)
			ops = append(ops, engine.Op{
				Table:      TableID,
				Key:        key,
				ReadCells:  []int{cell},
				WriteCells: []int{cell},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{workload.PutU64(read[0], workload.GetU64(read[0])+1)}
				},
			})
			continue
		}
		all := make([]int, g.cfg.NumCells)
		for c := range all {
			all[c] = c
		}
		ops = append(ops, engine.Op{
			Table:     TableID,
			Key:       key,
			ReadCells: all,
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		})
	}
	t.Blocks = []engine.Block{{Ops: ops}}
	return t
}
