// Package ycsb adapts the YCSB key-value benchmark for transaction
// processing, exactly as §8.2 of the paper describes: one table of
// records with four 40-byte cells; each transaction selects N distinct
// records (Zipf-distributed); read transactions read all cells of each
// record, write transactions update one random cell of each record.
package ycsb

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// TableID is the YCSB table.
const TableID layout.TableID = 10

// Config sizes the workload. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Records    int     // table size (paper: 1 M; scaled default 100 K)
	N          int     // records per transaction (paper default 4)
	WriteRatio float64 // fraction of write transactions
	Theta      float64 // Zipfian constant (0 = uniform)
	CellSize   int     // bytes per cell (paper: 40)
	NumCells   int     // cells per record (paper: 4)
}

// DefaultConfig matches the paper's setup at a laptop-scale record
// count.
func DefaultConfig() Config {
	return Config{
		Records:    100_000,
		N:          4,
		WriteRatio: 0.5,
		Theta:      0.99,
		CellSize:   40,
		NumCells:   4,
	}
}

// Generator produces YCSB transactions.
type Generator struct {
	cfg    Config
	picker *workload.KeyPicker
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Records <= 0 || cfg.N <= 0 || cfg.NumCells <= 0 || cfg.CellSize < 8 {
		panic("ycsb: invalid config")
	}
	return &Generator{cfg: cfg, picker: workload.NewKeyPicker(cfg.Records, cfg.Theta)}
}

// Name implements workload.Generator.
func (g *Generator) Name() string { return "ycsb" }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Tables implements workload.Generator.
func (g *Generator) Tables() []workload.TableDef {
	sizes := make([]int, g.cfg.NumCells)
	for i := range sizes {
		sizes[i] = g.cfg.CellSize
	}
	return []workload.TableDef{{
		Schema:   layout.Schema{ID: TableID, Name: "usertable", CellSizes: sizes},
		Capacity: g.cfg.Records,
	}}
}

// Load implements workload.Generator.
func (g *Generator) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	for k := 0; k < g.cfg.Records; k++ {
		cells := make([][]byte, g.cfg.NumCells)
		for c := range cells {
			cells[c] = workload.U64(uint64(k), g.cfg.CellSize)
		}
		fn(TableID, layout.Key(k), cells)
	}
}

// Next implements workload.Generator.
func (g *Generator) Next(rng *rand.Rand) *engine.Txn {
	keys := g.picker.PickDistinct(rng, g.cfg.N)
	isWrite := rng.Float64() < g.cfg.WriteRatio
	t := &engine.Txn{Label: "ycsb-read", ReadOnly: !isWrite}
	if isWrite {
		t.Label = "ycsb-write"
	}
	var ops []engine.Op
	for _, key := range keys {
		if isWrite {
			cell := rng.Intn(g.cfg.NumCells)
			ops = append(ops, engine.Op{
				Table:      TableID,
				Key:        key,
				ReadCells:  []int{cell},
				WriteCells: []int{cell},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{workload.PutU64(read[0], workload.GetU64(read[0])+1)}
				},
			})
			continue
		}
		all := make([]int, g.cfg.NumCells)
		for c := range all {
			all[c] = c
		}
		ops = append(ops, engine.Op{
			Table:     TableID,
			Key:       key,
			ReadCells: all,
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		})
	}
	t.Blocks = []engine.Block{{Ops: ops}}
	return t
}
