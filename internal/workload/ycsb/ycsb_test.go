package ycsb

import (
	"math/rand"
	"sort"
	"testing"

	"crest/internal/layout"
)

func TestTablesAndLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	g := New(cfg)
	defs := g.Tables()
	if len(defs) != 1 {
		t.Fatalf("%d tables", len(defs))
	}
	if err := defs[0].Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := defs[0].Schema.DataBytes(); got != 160 {
		t.Fatalf("record data bytes = %d, want 160 (4×40)", got)
	}
	loaded := 0
	g.Load(func(table layout.TableID, key layout.Key, cells [][]byte) {
		if table != TableID || int(key) >= cfg.Records {
			t.Fatalf("bad record %d/%d", table, key)
		}
		if len(cells) != 4 || len(cells[0]) != 40 {
			t.Fatal("bad cell shape")
		}
		loaded++
	})
	if loaded != cfg.Records {
		t.Fatalf("loaded %d records", loaded)
	}
}

func TestNextShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cfg.N = 3
	g := New(cfg)
	rng := rand.New(rand.NewSource(1))
	reads, writes := 0, 0
	for i := 0; i < 500; i++ {
		txn := g.Next(rng)
		ops := txn.Blocks[0].Ops
		if len(ops) != 3 {
			t.Fatalf("%d ops, want 3", len(ops))
		}
		seen := map[layout.Key]bool{}
		for _, op := range ops {
			if seen[op.Key] {
				t.Fatal("duplicate key in one txn")
			}
			seen[op.Key] = true
			if int(op.Key) >= cfg.Records {
				t.Fatal("key out of range")
			}
		}
		if txn.ReadOnly {
			reads++
			if len(ops[0].ReadCells) != 4 || len(ops[0].WriteCells) != 0 {
				t.Fatal("read txn must read all cells")
			}
		} else {
			writes++
			if len(ops[0].WriteCells) != 1 {
				t.Fatal("write txn must update one cell")
			}
		}
	}
	// 50% write ratio within loose bounds.
	if writes < 150 || reads < 150 {
		t.Fatalf("mix off: %d writes %d reads", writes, reads)
	}
}

func TestWriteRatioExtremes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	cfg.WriteRatio = 0
	g := New(cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if !g.Next(rng).ReadOnly {
			t.Fatal("write generated at ratio 0")
		}
	}
	cfg.WriteRatio = 1
	g = New(cfg)
	for i := 0; i < 50; i++ {
		if g.Next(rng).ReadOnly {
			t.Fatal("read generated at ratio 1")
		}
	}
}

func TestUniformThetaZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 64
	cfg.Theta = 0
	g := New(cfg)
	rng := rand.New(rand.NewSource(3))
	seen := map[layout.Key]bool{}
	for i := 0; i < 500; i++ {
		for _, op := range g.Next(rng).Blocks[0].Ops {
			seen[op.Key] = true
		}
	}
	if len(seen) < 60 {
		t.Fatalf("uniform selection covered only %d keys", len(seen))
	}
}

func TestLatestSelectionTracksInsertFrontier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 2000
	cfg.N = 2
	cfg.Distribution = DistLatest
	cfg.InsertProportion = 0.3
	cfg.PreLoaded = 400
	g := New(cfg)
	if g.Frontier() != 400 {
		t.Fatalf("initial frontier = %d, want PreLoaded", g.Frontier())
	}
	rng := rand.New(rand.NewSource(7))
	inserts := 0
	var distances []int
	beyondPreload := 0
	for i := 0; i < 3000; i++ {
		frontierBefore := g.Frontier()
		txn := g.Next(rng)
		if txn.Label == "ycsb-insert" {
			inserts++
			op := txn.Blocks[0].Ops[0]
			if g.Frontier() <= cfg.Records && int(op.Key) != frontierBefore {
				t.Fatalf("insert claimed key %d, frontier was %d", op.Key, frontierBefore)
			}
			continue
		}
		for _, op := range txn.Blocks[0].Ops {
			if int(op.Key) >= frontierBefore {
				t.Fatalf("selected un-inserted key %d at frontier %d", op.Key, frontierBefore)
			}
			distances = append(distances, frontierBefore-1-int(op.Key))
			if int(op.Key) >= cfg.PreLoaded {
				beyondPreload++
			}
		}
	}
	if inserts < 600 {
		t.Fatalf("only %d inserts in 3000 txns at proportion 0.3", inserts)
	}
	if g.Frontier() != cfg.PreLoaded+inserts {
		t.Fatalf("frontier %d after %d inserts from %d", g.Frontier(), inserts, cfg.PreLoaded)
	}
	// Selection must skew toward the frontier: the median distance
	// behind it should be far smaller than the loaded prefix.
	sort.Ints(distances)
	if med := distances[len(distances)/2]; med > cfg.PreLoaded/4 {
		t.Fatalf("median recency distance %d does not track the frontier", med)
	}
	// And records inserted during the run must themselves be selected.
	if beyondPreload == 0 {
		t.Fatal("no selections of records inserted during the run")
	}
}

func TestLatestWithoutInsertsStaysInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	cfg.Distribution = DistLatest
	g := New(cfg)
	rng := rand.New(rand.NewSource(8))
	hot := 0
	for i := 0; i < 400; i++ {
		for _, op := range g.Next(rng).Blocks[0].Ops {
			if int(op.Key) >= cfg.Records {
				t.Fatalf("key %d out of range", op.Key)
			}
			if int(op.Key) >= cfg.Records-10 {
				hot++
			}
		}
	}
	// Rank 0 is the newest record; the top 10% of the key space must
	// absorb well over half the selections at theta 0.99.
	if hot < 500 {
		t.Fatalf("only %d/1600 selections in the newest 10%% of keys", hot)
	}
}

func TestInsertFallsBackWhenFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 50
	cfg.N = 2
	cfg.Distribution = DistLatest
	cfg.InsertProportion = 1.0
	cfg.PreLoaded = 48
	g := New(cfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		txn := g.Next(rng)
		if txn.Label != "ycsb-insert" {
			t.Fatalf("txn %d: %s, want insert", i, txn.Label)
		}
		key := int(txn.Blocks[0].Ops[0].Key)
		if i < 2 {
			if key != 48+i {
				t.Fatalf("insert %d claimed %d", i, key)
			}
		} else if key != cfg.Records-1 {
			t.Fatalf("full-table insert rewrote %d, want newest record", key)
		}
	}
	if g.Frontier() != cfg.Records {
		t.Fatalf("frontier %d, want clamped at Records", g.Frontier())
	}
}
