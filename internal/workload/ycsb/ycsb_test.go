package ycsb

import (
	"math/rand"
	"testing"

	"crest/internal/layout"
)

func TestTablesAndLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	g := New(cfg)
	defs := g.Tables()
	if len(defs) != 1 {
		t.Fatalf("%d tables", len(defs))
	}
	if err := defs[0].Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := defs[0].Schema.DataBytes(); got != 160 {
		t.Fatalf("record data bytes = %d, want 160 (4×40)", got)
	}
	loaded := 0
	g.Load(func(table layout.TableID, key layout.Key, cells [][]byte) {
		if table != TableID || int(key) >= cfg.Records {
			t.Fatalf("bad record %d/%d", table, key)
		}
		if len(cells) != 4 || len(cells[0]) != 40 {
			t.Fatal("bad cell shape")
		}
		loaded++
	})
	if loaded != cfg.Records {
		t.Fatalf("loaded %d records", loaded)
	}
}

func TestNextShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cfg.N = 3
	g := New(cfg)
	rng := rand.New(rand.NewSource(1))
	reads, writes := 0, 0
	for i := 0; i < 500; i++ {
		txn := g.Next(rng)
		ops := txn.Blocks[0].Ops
		if len(ops) != 3 {
			t.Fatalf("%d ops, want 3", len(ops))
		}
		seen := map[layout.Key]bool{}
		for _, op := range ops {
			if seen[op.Key] {
				t.Fatal("duplicate key in one txn")
			}
			seen[op.Key] = true
			if int(op.Key) >= cfg.Records {
				t.Fatal("key out of range")
			}
		}
		if txn.ReadOnly {
			reads++
			if len(ops[0].ReadCells) != 4 || len(ops[0].WriteCells) != 0 {
				t.Fatal("read txn must read all cells")
			}
		} else {
			writes++
			if len(ops[0].WriteCells) != 1 {
				t.Fatal("write txn must update one cell")
			}
		}
	}
	// 50% write ratio within loose bounds.
	if writes < 150 || reads < 150 {
		t.Fatalf("mix off: %d writes %d reads", writes, reads)
	}
}

func TestWriteRatioExtremes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	cfg.WriteRatio = 0
	g := New(cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if !g.Next(rng).ReadOnly {
			t.Fatal("write generated at ratio 0")
		}
	}
	cfg.WriteRatio = 1
	g = New(cfg)
	for i := 0; i < 50; i++ {
		if g.Next(rng).ReadOnly {
			t.Fatal("read generated at ratio 1")
		}
	}
}

func TestUniformThetaZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 64
	cfg.Theta = 0
	g := New(cfg)
	rng := rand.New(rand.NewSource(3))
	seen := map[layout.Key]bool{}
	for i := 0; i < 500; i++ {
		for _, op := range g.Next(rng).Blocks[0].Ops {
			seen[op.Key] = true
		}
	}
	if len(seen) < 60 {
		t.Fatalf("uniform selection covered only %d keys", len(seen))
	}
}
