package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. Rank 0 is the hottest item.
//
// The paper's SmallBank and YCSB experiments sweep theta from 0.1 up
// to 1.22 (the value observed in production workloads), so the
// generator must handle theta ≥ 1, where the Gray et al. quick
// approximation breaks down. This implementation precomputes the CDF
// once and samples by binary search: exact for every theta, O(log n)
// per draw, and the table is shared per (n, theta).
type Zipf struct {
	n   uint64
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent theta > 0.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf over zero items")
	}
	if theta <= 0 {
		panic("workload: Zipf theta must be positive (use uniform selection instead)")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{n: n, cdf: cdf}
}

// Next draws one rank.
func (z *Zipf) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if z.cdf[i] == u && uint64(i)+1 < z.n {
		i++
	}
	return uint64(i)
}

// P returns the probability of rank i (diagnostics and tests).
func (z *Zipf) P(i uint64) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
