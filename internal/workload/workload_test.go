package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(1000, 0.99)
	sum := 0.0
	for i := uint64(0); i < 1000; i++ {
		sum += z.P(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestZipfRankZeroHottest(t *testing.T) {
	for _, theta := range []float64{0.1, 0.99, 1.11, 1.22} {
		z := NewZipf(10000, theta)
		for i := uint64(1); i < 100; i++ {
			if z.P(i) > z.P(i-1)+1e-12 {
				t.Fatalf("theta=%v: P(%d) > P(%d)", theta, i, i-1)
			}
		}
	}
}

func TestZipfSkewGrowsWithTheta(t *testing.T) {
	frac := func(theta float64) float64 {
		z := NewZipf(100000, theta)
		rng := rand.New(rand.NewSource(1))
		hot := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			if z.Next(rng) < 100 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	low, mid, high := frac(0.1), frac(0.99), frac(1.22)
	if !(low < mid && mid < high) {
		t.Fatalf("hot-key fraction not increasing: %.3f %.3f %.3f", low, mid, high)
	}
	if high < 0.5 {
		t.Fatalf("theta=1.22 hot fraction %.3f, expected majority on top-100", high)
	}
}

func TestZipfMatchesAnalyticalFrequency(t *testing.T) {
	z := NewZipf(1000, 0.99)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	for _, rank := range []uint64{0, 1, 10, 100} {
		want := z.P(rank)
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.2*want+0.001 {
			t.Errorf("rank %d: empirical %.4f vs analytical %.4f", rank, got, want)
		}
	}
}

func TestQuickZipfInRange(t *testing.T) {
	f := func(seed int64, n uint16, thetaRaw uint8) bool {
		nn := uint64(n)%5000 + 1
		theta := 0.05 + float64(thetaRaw)/200.0 // 0.05 .. 1.325
		z := NewZipf(nn, theta)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if z.Next(rng) >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBadArgsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 0.5) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestKeyPickerUniformCoversSpace(t *testing.T) {
	p := NewKeyPicker(64, 0)
	rng := rand.New(rand.NewSource(3))
	seen := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		k := uint64(p.Pick(rng))
		if k >= 64 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 64 {
		t.Fatalf("uniform picker covered %d of 64 keys", len(seen))
	}
}

func TestKeyPickerScramblesHotKeys(t *testing.T) {
	// The two hottest ranks must not map to adjacent keys.
	p := NewKeyPicker(100000, 1.22)
	rng := rand.New(rand.NewSource(5))
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		counts[uint64(p.Pick(rng))]++
	}
	var top1, top2 uint64
	for k, c := range counts {
		if c > counts[top1] {
			top1, top2 = k, top1
		} else if c > counts[top2] {
			top2 = k
		}
	}
	diff := int64(top1) - int64(top2)
	if diff < 0 {
		diff = -diff
	}
	if diff <= 1 {
		t.Fatalf("hottest keys adjacent: %d and %d", top1, top2)
	}
}

func TestKeyPickerDistinct(t *testing.T) {
	p := NewKeyPicker(10, 1.22)
	rng := rand.New(rand.NewSource(9))
	keys := p.PickDistinct(rng, 10)
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[uint64(k)] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[uint64(k)] = true
	}
}

func TestQuickScrambleIsPermutation(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := uint64(nRaw)%500 + 2
		step := scrambleStep(n)
		seen := map[uint64]bool{}
		for r := uint64(0); r < n; r++ {
			k := (r*step + n/3) % n
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCellHelpers(t *testing.T) {
	b := U64(42, 27)
	if len(b) != 27 || GetU64(b) != 42 {
		t.Fatal("U64 round trip")
	}
	b2 := PutU64(b, 100)
	if GetU64(b2) != 100 || GetU64(b) != 42 {
		t.Fatal("PutU64 must not mutate input")
	}
	txt := Text(7, 20)
	if len(txt) != 20 {
		t.Fatal("Text length")
	}
	for _, c := range txt {
		if c < 'a' || c > 'z' {
			t.Fatal("Text not printable")
		}
	}
	if string(Text(7, 20)) != string(txt) {
		t.Fatal("Text not deterministic")
	}
}
