package smallbank

import (
	"math/rand"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

func TestTablesAndLoad(t *testing.T) {
	g := New(Config{Accounts: 100, Theta: 0.5})
	defs := g.Tables()
	if len(defs) != 2 {
		t.Fatalf("%d tables", len(defs))
	}
	for _, d := range defs {
		if err := d.Schema.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Schema.NumCells() != 1 {
			t.Fatal("SmallBank records must have exactly one cell")
		}
	}
	perTable := map[layout.TableID]int{}
	g.Load(func(table layout.TableID, key layout.Key, cells [][]byte) {
		perTable[table]++
		if workload.GetU64(cells[0]) != InitialBalance {
			t.Fatal("bad initial balance")
		}
	})
	if perTable[SavingsTable] != 100 || perTable[CheckingTable] != 100 {
		t.Fatalf("loaded %v", perTable)
	}
}

// applyLocally runs a txn's hooks against an in-memory state map to
// validate workload-level semantics without an engine.
func applyLocally(t *testing.T, txn *engine.Txn, state map[layout.TableID]map[layout.Key][]byte) {
	t.Helper()
	for _, blk := range txn.Blocks {
		for i := range blk.Ops {
			op := &blk.Ops[i]
			key := op.ResolveKey(txn.State)
			rec := state[op.Table][key]
			if rec == nil {
				t.Fatalf("txn %s references unloaded record %d/%d", txn.Label, op.Table, key)
			}
			read := make([][]byte, len(op.ReadCells))
			for j := range read {
				read[j] = append([]byte(nil), rec...)
			}
			written := op.Hook(txn.State, read)
			if len(written) != len(op.WriteCells) {
				t.Fatalf("txn %s: %d written for %d cells", txn.Label, len(written), len(op.WriteCells))
			}
			for _, w := range written {
				state[op.Table][key] = w
			}
		}
	}
}

func TestConservingMixConservesMoney(t *testing.T) {
	g := NewConserving(Config{Accounts: 20, Theta: 0.9})
	state := map[layout.TableID]map[layout.Key][]byte{
		SavingsTable:  {},
		CheckingTable: {},
	}
	g.Load(func(table layout.TableID, key layout.Key, cells [][]byte) {
		state[table][key] = cells[0]
	})
	total := func() int64 {
		sum := int64(0)
		for _, tbl := range state {
			for _, v := range tbl {
				sum += int64(workload.GetU64(v))
			}
		}
		return sum
	}
	want := total()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		applyLocally(t, g.Next(rng), state)
	}
	if got := total(); got != want {
		t.Fatalf("money not conserved: %d → %d", want, got)
	}
}

func TestMixCoversAllTypes(t *testing.T) {
	g := New(DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	labels := map[string]int{}
	for i := 0; i < 2000; i++ {
		labels[g.Next(rng).Label]++
	}
	for _, want := range []string{"Balance", "DepositChecking", "TransactSavings", "Amalgamate", "WriteCheck", "SendPayment"} {
		if labels[want] == 0 {
			t.Fatalf("type %s never generated (%v)", want, labels)
		}
	}
	if labels["WriteCheck"] < labels["Balance"] {
		t.Fatalf("WriteCheck (25%%) should dominate Balance (15%%): %v", labels)
	}
}

func TestBalanceIsReadOnly(t *testing.T) {
	g := New(DefaultConfig())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		txn := g.Next(rng)
		if txn.Label == "Balance" && !txn.ReadOnly {
			t.Fatal("Balance not marked read-only")
		}
		if txn.Label != "Balance" && txn.ReadOnly {
			t.Fatalf("%s marked read-only", txn.Label)
		}
	}
}

func TestSingleCellAccessesOnly(t *testing.T) {
	// Every SmallBank op touches only cell 0 — the paper's reason this
	// workload has zero false conflicts.
	g := New(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		txn := g.Next(rng)
		for _, blk := range txn.Blocks {
			for _, op := range blk.Ops {
				for _, c := range append(append([]int(nil), op.ReadCells...), op.WriteCells...) {
					if c != 0 {
						t.Fatalf("%s touches cell %d", txn.Label, c)
					}
				}
			}
		}
	}
}
