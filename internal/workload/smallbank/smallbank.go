// Package smallbank implements the SmallBank banking benchmark
// (Cahill, Röhm, Fekete, TODS 2009) as §8.2 of the paper configures
// it: two single-cell tables (savings and checking balances), accounts
// selected by a Zipf distribution to model hot accounts.
//
// Every transaction touches the one balance column, so SmallBank has
// zero false conflicts by construction — the paper uses it to show
// that CREST's localized execution helps even when cell-level
// concurrency control cannot.
package smallbank

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/workload"
)

// Table ids.
const (
	SavingsTable  layout.TableID = 20
	CheckingTable layout.TableID = 21
)

// CellSize approximates the paper's 26.7-byte average cell.
const CellSize = 27

// InitialBalance is every account's starting balance in both tables.
const InitialBalance = 10_000

// Config sizes the workload.
type Config struct {
	Accounts int     // paper: 100 K
	Theta    float64 // Zipfian constant (paper default 0.99)
}

// DefaultConfig matches the paper.
func DefaultConfig() Config { return Config{Accounts: 100_000, Theta: 0.99} }

// Generator produces SmallBank transactions with the standard mix:
// Balance 15%, DepositChecking 15%, TransactSavings 15%, Amalgamate
// 15%, WriteCheck 25%, SendPayment 15%.
type Generator struct {
	cfg    Config
	picker *workload.KeyPicker
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Accounts <= 1 {
		panic("smallbank: need at least two accounts")
	}
	return &Generator{cfg: cfg, picker: workload.NewKeyPicker(cfg.Accounts, cfg.Theta)}
}

// Name implements workload.Generator.
func (g *Generator) Name() string { return "smallbank" }

// Tables implements workload.Generator.
func (g *Generator) Tables() []workload.TableDef {
	return []workload.TableDef{
		{Schema: layout.Schema{ID: SavingsTable, Name: "savings", CellSizes: []int{CellSize}}, Capacity: g.cfg.Accounts},
		{Schema: layout.Schema{ID: CheckingTable, Name: "checking", CellSizes: []int{CellSize}}, Capacity: g.cfg.Accounts},
	}
}

// PartitionSafe implements workload.PartitionSafe: every transaction
// is a pure function of the caller's rng.
func (g *Generator) PartitionSafe() bool { return true }

// Load implements workload.Generator.
func (g *Generator) Load(fn func(layout.TableID, layout.Key, [][]byte)) {
	for k := 0; k < g.cfg.Accounts; k++ {
		fn(SavingsTable, layout.Key(k), [][]byte{workload.U64(InitialBalance, CellSize)})
		fn(CheckingTable, layout.Key(k), [][]byte{workload.U64(InitialBalance, CellSize)})
	}
}

// Next implements workload.Generator.
func (g *Generator) Next(rng *rand.Rand) *engine.Txn {
	switch p := rng.Float64(); {
	case p < 0.15:
		return g.balance(rng)
	case p < 0.30:
		return g.depositChecking(rng)
	case p < 0.45:
		return g.transactSavings(rng)
	case p < 0.60:
		return g.amalgamate(rng)
	case p < 0.85:
		return g.writeCheck(rng)
	default:
		return g.sendPayment(rng)
	}
}

func readOp(table layout.TableID, key layout.Key, sink func(uint64)) engine.Op {
	return engine.Op{
		Table: table, Key: key, ReadCells: []int{0},
		Hook: func(_ any, read [][]byte) [][]byte {
			if sink != nil {
				sink(workload.GetU64(read[0]))
			}
			return nil
		},
	}
}

func addOp(table layout.TableID, key layout.Key, delta int64) engine.Op {
	return engine.Op{
		Table: table, Key: key, ReadCells: []int{0}, WriteCells: []int{0},
		Hook: func(_ any, read [][]byte) [][]byte {
			v := int64(workload.GetU64(read[0])) + delta
			return [][]byte{workload.PutU64(read[0], uint64(v))}
		},
	}
}

// balance reads both balances of one account (read-only).
func (g *Generator) balance(rng *rand.Rand) *engine.Txn {
	acct := g.picker.Pick(rng)
	return &engine.Txn{
		Label:    "Balance",
		ReadOnly: true,
		Blocks: []engine.Block{{Ops: []engine.Op{
			readOp(SavingsTable, acct, nil),
			readOp(CheckingTable, acct, nil),
		}}},
	}
}

// depositChecking adds a fixed amount to a checking balance.
func (g *Generator) depositChecking(rng *rand.Rand) *engine.Txn {
	return &engine.Txn{
		Label:  "DepositChecking",
		Blocks: []engine.Block{{Ops: []engine.Op{addOp(CheckingTable, g.picker.Pick(rng), 130)}}},
	}
}

// transactSavings adds to a savings balance.
func (g *Generator) transactSavings(rng *rand.Rand) *engine.Txn {
	return &engine.Txn{
		Label:  "TransactSavings",
		Blocks: []engine.Block{{Ops: []engine.Op{addOp(SavingsTable, g.picker.Pick(rng), 210)}}},
	}
}

// amalgamate moves all funds of account A into account B's checking.
func (g *Generator) amalgamate(rng *rand.Rand) *engine.Txn {
	pair := g.picker.PickDistinct(rng, 2)
	a, b := pair[0], pair[1]
	st := &struct{ moved int64 }{}
	return &engine.Txn{
		Label: "Amalgamate",
		State: st,
		Blocks: []engine.Block{{Ops: []engine.Op{
			{
				Table: SavingsTable, Key: a, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					s := state.(*struct{ moved int64 })
					s.moved += int64(workload.GetU64(read[0]))
					return [][]byte{workload.PutU64(read[0], 0)}
				},
			},
			{
				Table: CheckingTable, Key: a, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					s := state.(*struct{ moved int64 })
					s.moved += int64(workload.GetU64(read[0]))
					return [][]byte{workload.PutU64(read[0], 0)}
				},
			},
			{
				Table: CheckingTable, Key: b, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					s := state.(*struct{ moved int64 })
					v := int64(workload.GetU64(read[0])) + s.moved
					return [][]byte{workload.PutU64(read[0], uint64(v))}
				},
			},
		}}},
	}
}

// writeCheck reads both balances and deducts a check (plus an
// overdraft penalty when funds are short) from checking.
func (g *Generator) writeCheck(rng *rand.Rand) *engine.Txn {
	acct := g.picker.Pick(rng)
	amount := int64(rng.Intn(50) + 1)
	st := &struct{ savings int64 }{}
	return &engine.Txn{
		Label: "WriteCheck",
		State: st,
		Blocks: []engine.Block{{Ops: []engine.Op{
			{
				Table: SavingsTable, Key: acct, ReadCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					state.(*struct{ savings int64 }).savings = int64(workload.GetU64(read[0]))
					return nil
				},
			},
			{
				Table: CheckingTable, Key: acct, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					s := state.(*struct{ savings int64 })
					bal := int64(workload.GetU64(read[0]))
					take := amount
					if s.savings+bal < amount {
						take++ // overdraft penalty
					}
					return [][]byte{workload.PutU64(read[0], uint64(bal-take))}
				},
			},
		}}},
	}
}

// sendPayment transfers between two checking accounts.
func (g *Generator) sendPayment(rng *rand.Rand) *engine.Txn {
	pair := g.picker.PickDistinct(rng, 2)
	amount := int64(rng.Intn(90) + 10)
	return &engine.Txn{
		Label: "SendPayment",
		Blocks: []engine.Block{{Ops: []engine.Op{
			addOp(CheckingTable, pair[0], -amount),
			addOp(CheckingTable, pair[1], amount),
		}}},
	}
}

// ConservingGenerator restricts the mix to money-conserving
// transactions (Balance, Amalgamate, SendPayment), used by invariant
// tests: the sum of all balances never changes.
type ConservingGenerator struct{ *Generator }

// NewConserving wraps a generator with the conserving mix.
func NewConserving(cfg Config) *ConservingGenerator {
	return &ConservingGenerator{Generator: New(cfg)}
}

// Next implements workload.Generator.
func (g *ConservingGenerator) Next(rng *rand.Rand) *engine.Txn {
	switch p := rng.Float64(); {
	case p < 0.2:
		return g.balance(rng)
	case p < 0.6:
		return g.amalgamate(rng)
	default:
		return g.sendPayment(rng)
	}
}
