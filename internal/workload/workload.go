// Package workload defines the benchmark-workload interface shared by
// the TPC-C, SmallBank and YCSB generators (sub-packages), plus the
// skewed key-selection machinery (Zipf) the paper's contention knobs
// are built on.
package workload

import (
	"encoding/binary"
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
)

// TableDef describes one table a workload needs: its schema and how
// many records it will hold.
type TableDef struct {
	Schema   layout.Schema
	Capacity int
}

// Generator produces transactions for one benchmark workload.
type Generator interface {
	// Name identifies the workload ("tpcc", "smallbank", "ycsb").
	Name() string
	// Tables lists the tables to create before loading.
	Tables() []TableDef
	// Load emits every initial record through fn.
	Load(fn func(table layout.TableID, key layout.Key, cells [][]byte))
	// Next generates one transaction using rng for all randomness.
	Next(rng *rand.Rand) *engine.Txn
}

// TimedGenerator is a Generator whose traffic varies over virtual
// time: the harness gates each coordinator's admission through Gate
// and generates through NextAt so the generator can see the virtual
// clock (scenario timelines: load phases and hotspot drift). Both
// methods are deterministic functions of their arguments plus rng —
// they draw no randomness beyond what Next would — so a timed run is
// exactly as reproducible as a plain one.
type TimedGenerator interface {
	Generator
	// NextAt generates one transaction as of virtual time now.
	NextAt(now sim.Time, rng *rand.Rand) *engine.Txn
	// Gate reports how long coordinator coord (of total) must wait
	// before admitting its next transaction at virtual time now: 0
	// admits immediately, a positive duration parks the coordinator
	// until the next admission decision point.
	Gate(now sim.Time, coord, total int) sim.Duration
}

// PartitionSafe is the capability a generator declares when its
// Next/NextAt draws are pure functions of their arguments — no
// generator state is mutated and none of the read state ever changes
// after construction — so coordinators running in different simulation
// partitions (internal/sim.World) may share one generator instance
// concurrently. Generators without the method, or answering false
// (e.g. YCSB with inserts, whose frontier moves; TPC-C, whose history
// sequence advances), force the harness onto the sequential scheduler.
type PartitionSafe interface {
	PartitionSafe() bool
}

// IsPartitionSafe reports whether g declares the PartitionSafe
// capability and answers true.
func IsPartitionSafe(g Generator) bool {
	ps, ok := g.(PartitionSafe)
	return ok && ps.PartitionSafe()
}

// U64 encodes v as the 8 leading bytes of a cell of size n (the rest
// is zero padding). Workload cells store integers this way so hooks
// can do arithmetic on fixed-size cells.
func U64(v uint64, n int) []byte {
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// GetU64 decodes the integer stored by U64.
func GetU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// PutU64 overwrites the integer in place, preserving padding.
func PutU64(b []byte, v uint64) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

// Text fills a cell of size n with a deterministic printable pattern
// seeded by tag, for non-numeric columns.
func Text(tag uint64, n int) []byte {
	b := make([]byte, n)
	x := tag*0x9e3779b97f4a7c15 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = 'a' + byte(x%26)
	}
	return b
}

// KeyPicker selects record indices in [0, n) — uniformly or Zipf-
// distributed — and scrambles ranks so hot keys spread over the key
// space (and thus over memory nodes).
type KeyPicker struct {
	n     uint64
	zipf  *Zipf
	step  uint64
	shift uint64
}

// NewKeyPicker builds a picker over n keys with Zipfian constant
// theta; theta == 0 selects uniformly.
func NewKeyPicker(n int, theta float64) *KeyPicker {
	if n <= 0 {
		panic("workload: KeyPicker over empty key space")
	}
	p := &KeyPicker{n: uint64(n), step: scrambleStep(uint64(n)), shift: uint64(n) / 3}
	if theta > 0 {
		p.zipf = NewZipf(uint64(n), theta)
	}
	return p
}

// scrambleStep returns a multiplier coprime to n, so rank→key is a
// permutation.
func scrambleStep(n uint64) uint64 {
	step := n*7/11 + 3
	for gcd(step, n) != 1 {
		step++
	}
	return step
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Pick draws one key.
func (p *KeyPicker) Pick(rng *rand.Rand) layout.Key {
	var rank uint64
	if p.zipf != nil {
		rank = p.zipf.Next(rng)
	} else {
		rank = uint64(rng.Int63n(int64(p.n)))
	}
	return layout.Key((rank*p.step + p.shift) % p.n)
}

// PickDistinct draws k distinct keys.
func (p *KeyPicker) PickDistinct(rng *rand.Rand, k int) []layout.Key {
	if uint64(k) > p.n {
		panic("workload: more distinct keys than key space")
	}
	out := make([]layout.Key, 0, k)
	seen := map[layout.Key]bool{}
	for len(out) < k {
		key := p.Pick(rng)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}
