package ford

import (
	"crest/internal/engine"
	"crest/internal/rdma"
)

// execScratch is the attempt-scoped working memory of one Execute
// call. Coordinators are shared round-robin across transaction
// processes, so attempts on one coordinator can overlap in virtual
// time; each attempt checks a scratch out of the coordinator's free
// list for its whole duration, which keeps the steady-state hot path
// allocation-free without cross-attempt aliasing. Nothing allocated
// from a scratch may outlive the attempt.
type execScratch struct {
	bat        *engine.Batcher
	slab       []work
	n          int
	ws         []*work
	block      []*work
	batchW     [][]*work
	logBuf     []byte
	logBatches []rdma.Batch
	arena      []byte
	arenaOff   int
}

func (c *Coordinator) getScratch() *execScratch {
	if n := len(c.scFree); n > 0 {
		sc := c.scFree[n-1]
		c.scFree = c.scFree[:n-1]
		sc.n = 0
		sc.ws = sc.ws[:0]
		sc.arenaOff = 0
		return sc
	}
	return &execScratch{bat: engine.NewBatcher(c.qps)}
}

func (c *Coordinator) putScratch(sc *execScratch) { c.scFree = append(c.scFree, sc) }

// newWork hands out a zeroed work from the slab, keeping the recycled
// entry's data/readVals backing arrays.
func (sc *execScratch) newWork() *work {
	if sc.n == len(sc.slab) {
		sc.slab = append(sc.slab, work{})
	}
	w := &sc.slab[sc.n]
	sc.n++
	data, readVals := w.data[:0], w.readVals[:0]
	*w = work{data: data, readVals: readVals}
	return w
}

// bytes carves n bytes out of the attempt arena; slices stay valid
// until the attempt ends (a full chunk is abandoned to the garbage
// collector, not reallocated).
func (sc *execScratch) bytes(n int) []byte {
	if sc.arenaOff+n > len(sc.arena) {
		sz := 32 << 10
		if n > sz {
			sz = n
		}
		sc.arena = make([]byte, sz)
		sc.arenaOff = 0
	}
	b := sc.arena[sc.arenaOff : sc.arenaOff+n : sc.arenaOff+n]
	sc.arenaOff += n
	return b
}

// findWork returns the work covering rk, or nil; transactions touch a
// handful of records, so the linear scan beats a map.
func findWork(list []*work, rk recKey) *work {
	for _, w := range list {
		if w.rk == rk {
			return w
		}
	}
	return nil
}
