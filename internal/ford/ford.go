// Package ford implements the FORD baseline (Zhang et al., "Localized
// Validation Accelerates Distributed Transactions on Disaggregated
// Persistent Memory", ACM TOS 2023) as the paper evaluates it:
// record-level optimistic concurrency control over one-sided RDMA.
//
// Per transaction (Table 2 of the CREST paper):
//
//	execution:  READ for read-only records; CAS(lock)+READ, batched in
//	            one round-trip, for read-write records (no-wait: a
//	            failed CAS aborts the attempt);
//	validation: one READ of lock+version for each read-only record,
//	            batched per memory node;
//	commit:     one log WRITE, then WRITE(version+data)+CAS(unlock)
//	            batched per replica — strict locking holds every lock
//	            until here.
package ford

import (
	"encoding/binary"
	"fmt"

	"crest/internal/causality"
	"crest/internal/engine"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// logSegmentSize is each coordinator's undo-log ring in the memory
// pool.
const logSegmentSize = 64 << 10

// System is a FORD instance over a shared DB.
type System struct {
	db      *engine.DB
	layouts map[layout.TableID]*layout.FORDRecord
	nextCN  int
}

// New creates a FORD system on db.
func New(db *engine.DB) *System {
	return &System{db: db, layouts: map[layout.TableID]*layout.FORDRecord{}}
}

// Name implements the conventional engine label.
func (s *System) Name() string { return "FORD" }

// DB exposes the underlying database substrate.
func (s *System) DB() *engine.DB { return s.db }

// CreateTable registers a table with FORD's record layout.
func (s *System) CreateTable(sc layout.Schema, capacity int) {
	sc = sc.Normalize()
	lay := layout.NewFORDRecord(sc)
	s.layouts[sc.ID] = lay
	s.db.CreateTable(sc, lay.PaddedSize(), capacity)
}

// Load writes a record's initial cell values host-side (pre-load).
func (s *System) Load(table layout.TableID, key layout.Key, cells [][]byte) {
	lay := s.layouts[table]
	t := s.db.Table(table)
	s.db.LoadRecord(t, key, func(buf []byte) {
		binary.LittleEndian.PutUint64(buf[layout.BOffKey:], uint64(key))
		binary.LittleEndian.PutUint32(buf[layout.BOffTableID:], uint32(table))
		for i, v := range cells {
			if len(v) != lay.Schema.CellSizes[i] {
				panic(fmt.Sprintf("ford: cell %d size %d, schema wants %d", i, len(v), lay.Schema.CellSizes[i]))
			}
			copy(buf[lay.CellValueOff(i):], v)
		}
	})
	if h := s.db.History; h != nil && h.On {
		for i, v := range cells {
			h.SetInitial(engine.CellID{Table: table, Key: key, Cell: i}, v)
		}
	}
}

// FinishLoad publishes the hash indexes.
func (s *System) FinishLoad() error { return s.db.FinishLoad() }

// ComputeNode groups the coordinators of one compute node; in FORD
// they share only the address cache. db is the partition view the
// node's coordinators run against (the root DB on sequential runs).
type ComputeNode struct {
	sys   *System
	db    *engine.DB
	id    int
	cache *hashindex.AddrCache
}

// NewComputeNode creates compute node state.
func (s *System) NewComputeNode(id int) *ComputeNode {
	cn := &ComputeNode{sys: s, db: s.db, id: id, cache: hashindex.NewAddrCache()}
	s.nextCN++
	return cn
}

// NewPartitionComputeNode creates compute node state bound to a
// partition view of the database.
func (s *System) NewPartitionComputeNode(id int, db *engine.DB) *ComputeNode {
	cn := s.NewComputeNode(id)
	cn.db = db
	return cn
}

// WarmCache preloads the address cache with every record.
func (cn *ComputeNode) WarmCache() { cn.db.WarmCache(cn.cache) }

// Coordinator executes FORD transactions.
type Coordinator struct {
	cn   *ComputeNode
	gid  uint64 // global owner id, nonzero (lock word value)
	qps  *engine.QPCache
	log  *memnode.LogSegment
	logN []*memnode.Node
	home int // shard group holding the log (commit decision)
	// scFree recycles attempt scratch (see execScratch).
	scFree []*execScratch
}

// NewCoordinator creates coordinator number id on the compute node.
// Ids must be globally unique across compute nodes.
func (cn *ComputeNode) NewCoordinator(id int) *Coordinator {
	db := cn.db
	pool := db.Pool
	c := &Coordinator{
		cn:  cn,
		gid: uint64(id) + 1,
		qps: engine.NewQPCache(db.Fabric),
		log: pool.AllocLog(logSegmentSize),
	}
	c.qps.Warm(pool)
	c.logN = pool.LogNodes(id, pool.Replicas()+1)
	c.home = pool.ShardOfNode(c.logN[0].ID)
	return c
}

// writeShards returns the shard groups of every written record in ws.
func (c *Coordinator) writeShards(ws []*work) engine.ShardSet {
	pool := c.cn.db.Pool
	var parts engine.ShardSet
	for _, w := range ws {
		if w.op.IsWrite() {
			parts.Add(pool.ShardOfNode(w.primary.ID))
		}
	}
	return parts
}

// work is the per-record execution state of one attempt.
type work struct {
	op        *engine.Op
	key       layout.Key
	rk        recKey
	off       uint64
	lay       *layout.FORDRecord
	primary   *memnode.Node
	data      []byte // working copy of the whole record
	readVer   uint64
	locked    bool
	cells     uint64 // accessed-cell mask, for conflict classification
	readVals  [][]byte
	writeVals [][]byte
}

func (w *work) table() layout.TableID { return w.lay.Schema.ID }

// Execute runs one attempt of t. It never retries; the caller owns
// backoff and retry.
func (c *Coordinator) Execute(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.db
	at := engine.BeginAttempt(db, p, c.gid, c.home, t)
	sc := c.getScratch()
	defer c.putScratch(sc)

	// Execution phase: per block, batch CAS+READ / READ per memory
	// node, then run the hooks locally.
	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		newWork, err := c.prepareBlock(p, t, blk, sc)
		if err != nil {
			panic(err) // address resolution errors are programming bugs
		}
		sc.ws = append(sc.ws, newWork...)
		if db.Pool.Shards() > 1 && c.writeShards(sc.ws).Beyond(c.home) {
			at.MarkCrossShard()
		}
		at.Phase(trace.PhaseLock)
		abort, falseC := c.fetchBlock(p, sc, newWork)
		at.Phase(trace.PhaseExec)
		if abort != engine.AbortNone {
			// Release before Fail: FORD has always charged abort-time
			// lock release to the phase that failed.
			c.releaseLocks(p, sc, sc.ws)
			at.Fail(abort, falseC)
			return at.Done()
		}
		// Run every op of the block in program order.
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			w := findWork(sc.ws, recKey{op.Table, op.ResolveKey(t.State)})
			c.applyOp(p, t, sc, op, w)
		}
	}

	// Validation phase: re-read lock+version of every read-only
	// record.
	at.Phase(trace.PhaseValidate)
	if abort, falseC := c.validate(p, sc, sc.ws); abort != engine.AbortNone {
		c.releaseLocks(p, sc, sc.ws)
		at.Fail(abort, falseC)
		return at.Done()
	}

	// Commit phase: undo log, then install updates and release locks.
	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	c.writeLog(p, sc, sc.ws, ts)
	at.Phase(trace.PhaseApply)
	c.install(p, sc, sc.ws, ts)
	c.record(t, sc.ws, ts)
	return at.Done()
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

// prepareBlock resolves keys and builds work entries for records not
// yet fetched, sorted by (table, key) for deterministic batching.
func (c *Coordinator) prepareBlock(p *sim.Proc, t *engine.Txn, blk *engine.Block, sc *execScratch) ([]*work, error) {
	db := c.cn.db
	sc.block = sc.block[:0]
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		prev := findWork(sc.ws, rk)
		if prev == nil {
			prev = findWork(sc.block, rk)
		}
		if prev != nil {
			if op.IsWrite() && !prev.locked {
				panic(fmt.Sprintf("ford: record %v written after read-only fetch; declare the write on first access", rk))
			}
			prev.cells |= opCellMask(op)
			continue
		}
		lay := c.cn.sys.layouts[op.Table]
		primary := db.Pool.PrimaryOf(op.Table, key)
		off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), op.Table, key)
		if err != nil {
			return nil, err
		}
		w := sc.newWork()
		w.op, w.key, w.rk, w.off, w.lay, w.primary, w.cells = op, key, rk, off, lay, primary, opCellMask(op)
		sc.block = append(sc.block, w)
	}
	sortWorks(sc.block)
	return sc.block, nil
}

// sortWorks orders records by (TableID, Key). The order is total
// (duplicate records merge into their first work entry above), so the
// insertion sort matches the previous sort.Slice byte for byte.
func sortWorks(ws []*work) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && workLess(w, ws[j]) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

func workLess(a, b *work) bool {
	if a.table() != b.table() {
		return a.table() < b.table()
	}
	return a.key < b.key
}

func opCellMask(op *engine.Op) uint64 {
	return layout.LockMask(op.ReadCells) | layout.LockMask(op.WriteCells)
}

// fetchBlock issues the block's CAS+READ / READ batches, one
// round-trip per memory node, and parses the results.
func (c *Coordinator) fetchBlock(p *sim.Proc, sc *execScratch, ws []*work) (engine.AbortReason, bool) {
	if len(ws) == 0 {
		return engine.AbortNone, false
	}
	db := c.cn.db
	sc.bat.Begin()
	for i := range sc.batchW {
		sc.batchW[i] = sc.batchW[i][:0]
	}
	for _, w := range ws {
		bi := sc.bat.Batch(w.primary.Region)
		for bi >= len(sc.batchW) {
			sc.batchW = append(sc.batchW, nil)
		}
		if w.op.IsWrite() {
			sc.bat.Append(bi, rdma.Op{
				Kind:    rdma.OpCAS,
				Off:     w.off + layout.BOffLock,
				Compare: 0,
				Swap:    c.gid,
			})
		}
		sc.bat.Append(bi, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off,
			Len:  w.lay.Size(),
		})
		sc.batchW[bi] = append(sc.batchW[bi], w)
	}
	batches := sc.bat.Batches()
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	abort := engine.AbortNone
	falseConflict := false
	for bi := range batches {
		ri := 0
		for _, w := range sc.batchW[bi] {
			if w.op.IsWrite() {
				if results[bi][ri].OK {
					w.locked = true
					db.Tracker.OnLock(w.table(), w.key, w.cells)
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
					db.Why.OnLock(p, w.table(), w.key, w.cells)
					db.Met.LockAcquires.Inc()
				} else {
					if abort == engine.AbortNone {
						abort = engine.AbortLockFail
						holder := db.Tracker.HolderCells(w.table(), w.key)
						falseConflict = engine.IsFalseConflict(w.cells, holder)
					}
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
					db.Why.LockFail(p, w.table(), w.key, w.cells)
					db.Met.LockConflicts.Inc()
				}
				ri++
			}
			// The fetched block is retained (and mutated by op hooks)
			// across later round-trips, while Result.Data is QP scratch
			// valid only until the next post: take a private copy.
			w.data = append(w.data[:0], results[bi][ri].Data...)
			w.readVer = layout.ReadWord(w.data, layout.BOffVersion) & layout.MaxTS48
			ri++
		}
	}
	return abort, falseConflict
}

// applyOp runs the op's hook against the working copy. Read copies
// live in the attempt arena: hooks may retain them only for the
// attempt (record consumes them before the scratch is recycled).
func (c *Coordinator) applyOp(p *sim.Proc, t *engine.Txn, sc *execScratch, op *engine.Op, w *work) {
	db := c.cn.db
	read := w.readVals[:0]
	for _, cell := range op.ReadCells {
		src := w.data[w.lay.CellValueOff(cell):][:w.lay.Schema.CellSizes[cell]]
		b := sc.bytes(len(src))
		copy(b, src)
		read = append(read, b)
	}
	p.Sleep(db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells)))
	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("ford: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	for i, cell := range op.WriteCells {
		if len(written[i]) != w.lay.Schema.CellSizes[cell] {
			panic(fmt.Sprintf("ford: hook wrote %d bytes to cell %d of size %d", len(written[i]), cell, w.lay.Schema.CellSizes[cell]))
		}
		copy(w.data[w.lay.CellValueOff(cell):], written[i])
	}
	w.readVals = read
	w.writeVals = written
}

// validate re-reads lock+version of every read-only record, batched
// per memory node in one round-trip.
func (c *Coordinator) validate(p *sim.Proc, sc *execScratch, ws []*work) (engine.AbortReason, bool) {
	db := c.cn.db
	sc.bat.Begin()
	for i := range sc.batchW {
		sc.batchW[i] = sc.batchW[i][:0]
	}
	for _, w := range ws {
		if w.locked {
			continue // read-write records are protected by their lock
		}
		bi := sc.bat.Batch(w.primary.Region)
		for bi >= len(sc.batchW) {
			sc.batchW = append(sc.batchW, nil)
		}
		sc.bat.Append(bi, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off + layout.BOffLock,
			Len:  16, // lock word + version word
		})
		sc.batchW[bi] = append(sc.batchW[bi], w)
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, w := range sc.batchW[bi] {
			lock := binary.LittleEndian.Uint64(results[bi][ri].Data)
			ver := binary.LittleEndian.Uint64(results[bi][ri].Data[8:]) & layout.MaxTS48
			if lock == 0 && ver == w.readVer {
				continue
			}
			var conflicting uint64
			if lock != 0 {
				conflicting = db.Tracker.HolderCells(w.table(), w.key)
			}
			if ver != w.readVer {
				conflicting |= db.Tracker.ChangedSince(w.table(), w.key, w.readVer)
			}
			db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
			db.Why.ValidationFail(p, w.table(), w.key, w.cells, w.readVer)
			db.Met.LockConflicts.Inc()
			return engine.AbortValidation, engine.IsFalseConflict(w.cells, conflicting)
		}
	}
	return engine.AbortNone, false
}

// releaseLocks clears every lock this attempt holds, batched per node
// in one round-trip.
func (c *Coordinator) releaseLocks(p *sim.Proc, sc *execScratch, ws []*work) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if !w.locked {
			continue
		}
		bi := sc.bat.Batch(w.primary.Region)
		sc.bat.Append(bi, rdma.Op{
			Kind:    rdma.OpCAS,
			Off:     w.off + layout.BOffLock,
			Compare: c.gid,
			Swap:    0,
		})
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		db.Why.OnUnlock(w.table(), w.key, w.cells)
		w.locked = false
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// writeLog persists the undo images of every written record to the
// coordinator's log segment replicas in one round-trip.
func (c *Coordinator) writeLog(p *sim.Proc, sc *execScratch, ws []*work, ts uint64) {
	entry := c.encodeLog(sc, ws, ts)
	if entry == nil {
		return
	}
	sc.logBuf = entry
	off := c.log.Reserve(len(entry))
	// Cross-shard commits pay a prepare round first: the entry lands
	// on every other participating group's log mirrors before the
	// home group's decision write below.
	if parts := c.writeShards(ws); parts.Beyond(c.home) {
		engine.PrepareCrossShard(p, c.cn.db, c.qps, c.logN, c.home, parts, off, entry)
	}
	// Distinct batches per replica even when log nodes share a region:
	// merging them would change the fabric's batch count.
	if cap(sc.logBatches) < len(c.logN) {
		sc.logBatches = make([]rdma.Batch, len(c.logN))
	}
	sc.logBatches = sc.logBatches[:len(c.logN)]
	for i, n := range c.logN {
		sc.logBatches[i].QP = c.qps.Get(n.Region)
		sc.logBatches[i].Ops = append(sc.logBatches[i].Ops[:0], rdma.Op{Kind: rdma.OpWrite, Off: off, Data: entry})
	}
	if _, err := rdma.PostMulti(p, sc.logBatches); err != nil {
		panic(err)
	}
}

// encodeLog builds the undo-log entry into the scratch log buffer: ts,
// then per written record its table, key and prior image. Returns nil
// if the txn wrote nothing.
func (c *Coordinator) encodeLog(sc *execScratch, ws []*work, ts uint64) []byte {
	n := 0
	for _, w := range ws {
		if w.locked {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	buf := sc.logBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, w := range ws {
		if !w.locked {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.table()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.key))
		buf = binary.LittleEndian.AppendUint64(buf, w.readVer)
		buf = append(buf, w.data[w.lay.DataOff():w.lay.Size()]...)
	}
	return buf
}

// install writes version+data and releases the lock on every replica
// of every written record — one WRITE plus one CAS per record, all in
// one round-trip (delivery order makes the data visible before the
// unlock).
func (c *Coordinator) install(p *sim.Proc, sc *execScratch, ws []*work, ts uint64) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if !w.locked {
			continue
		}
		layout.PutWord(w.data, layout.BOffVersion, ts)
		src := w.data[layout.BOffVersion:w.lay.Size()]
		payload := sc.bytes(len(src))
		copy(payload, src)
		for _, n := range db.Pool.ReplicaNodes(w.table(), w.key) {
			bi := sc.bat.Batch(n.Region)
			sc.bat.Append(bi, rdma.Op{
				Kind: rdma.OpWrite,
				Off:  w.off + layout.BOffVersion,
				Data: payload,
			})
			if n == w.primary {
				sc.bat.Append(bi, rdma.Op{
					Kind:    rdma.OpCAS,
					Off:     w.off + layout.BOffLock,
					Compare: c.gid,
					Swap:    0,
				})
			}
		}
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Tracker.OnUpdate(w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		db.Why.OnUpdate(causality.IDOf(p), w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Why.OnUnlock(w.table(), w.key, w.cells)
		w.locked = false
	}
}

// record feeds the committed transaction into the history checker,
// using the values the hooks actually observed and produced.
func (c *Coordinator) record(t *engine.Txn, ws []*work, ts uint64) {
	h := c.cn.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Label: t.Label}
	for _, w := range ws {
		for i, cell := range w.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.readVals[i]),
			})
		}
		for i, cell := range w.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
