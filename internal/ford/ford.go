// Package ford implements the FORD baseline (Zhang et al., "Localized
// Validation Accelerates Distributed Transactions on Disaggregated
// Persistent Memory", ACM TOS 2023) as the paper evaluates it:
// record-level optimistic concurrency control over one-sided RDMA.
//
// Per transaction (Table 2 of the CREST paper):
//
//	execution:  READ for read-only records; CAS(lock)+READ, batched in
//	            one round-trip, for read-write records (no-wait: a
//	            failed CAS aborts the attempt);
//	validation: one READ of lock+version for each read-only record,
//	            batched per memory node;
//	commit:     one log WRITE, then WRITE(version+data)+CAS(unlock)
//	            batched per replica — strict locking holds every lock
//	            until here.
package ford

import (
	"encoding/binary"
	"fmt"
	"sort"

	"crest/internal/engine"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// logSegmentSize is each coordinator's undo-log ring in the memory
// pool.
const logSegmentSize = 64 << 10

// System is a FORD instance over a shared DB.
type System struct {
	db      *engine.DB
	layouts map[layout.TableID]*layout.FORDRecord
	nextCN  int
}

// New creates a FORD system on db.
func New(db *engine.DB) *System {
	return &System{db: db, layouts: map[layout.TableID]*layout.FORDRecord{}}
}

// Name implements the conventional engine label.
func (s *System) Name() string { return "FORD" }

// DB exposes the underlying database substrate.
func (s *System) DB() *engine.DB { return s.db }

// CreateTable registers a table with FORD's record layout.
func (s *System) CreateTable(sc layout.Schema, capacity int) {
	sc = sc.Normalize()
	lay := layout.NewFORDRecord(sc)
	s.layouts[sc.ID] = lay
	s.db.CreateTable(sc, lay.PaddedSize(), capacity)
}

// Load writes a record's initial cell values host-side (pre-load).
func (s *System) Load(table layout.TableID, key layout.Key, cells [][]byte) {
	lay := s.layouts[table]
	t := s.db.Table(table)
	s.db.LoadRecord(t, key, func(buf []byte) {
		binary.LittleEndian.PutUint64(buf[layout.BOffKey:], uint64(key))
		binary.LittleEndian.PutUint32(buf[layout.BOffTableID:], uint32(table))
		for i, v := range cells {
			if len(v) != lay.Schema.CellSizes[i] {
				panic(fmt.Sprintf("ford: cell %d size %d, schema wants %d", i, len(v), lay.Schema.CellSizes[i]))
			}
			copy(buf[lay.CellValueOff(i):], v)
		}
	})
	if h := s.db.History; h != nil && h.On {
		for i, v := range cells {
			h.SetInitial(engine.CellID{Table: table, Key: key, Cell: i}, v)
		}
	}
}

// FinishLoad publishes the hash indexes.
func (s *System) FinishLoad() error { return s.db.FinishLoad() }

// ComputeNode groups the coordinators of one compute node; in FORD
// they share only the address cache.
type ComputeNode struct {
	sys   *System
	id    int
	cache *hashindex.AddrCache
}

// NewComputeNode creates compute node state.
func (s *System) NewComputeNode(id int) *ComputeNode {
	cn := &ComputeNode{sys: s, id: id, cache: hashindex.NewAddrCache()}
	s.nextCN++
	return cn
}

// WarmCache preloads the address cache with every record.
func (cn *ComputeNode) WarmCache() { cn.sys.db.WarmCache(cn.cache) }

// Coordinator executes FORD transactions.
type Coordinator struct {
	cn   *ComputeNode
	gid  uint64 // global owner id, nonzero (lock word value)
	qps  *engine.QPCache
	log  *memnode.LogSegment
	logN []*memnode.Node
}

// NewCoordinator creates coordinator number id on the compute node.
// Ids must be globally unique across compute nodes.
func (cn *ComputeNode) NewCoordinator(id int) *Coordinator {
	db := cn.sys.db
	pool := db.Pool
	c := &Coordinator{
		cn:  cn,
		gid: uint64(id) + 1,
		qps: engine.NewQPCache(db.Fabric),
		log: pool.AllocLog(logSegmentSize),
	}
	nodes := pool.Nodes()
	for i := 0; i <= pool.Replicas(); i++ {
		c.logN = append(c.logN, nodes[(id+i)%len(nodes)])
	}
	return c
}

// work is the per-record execution state of one attempt.
type work struct {
	op        *engine.Op
	key       layout.Key
	off       uint64
	lay       *layout.FORDRecord
	primary   *memnode.Node
	data      []byte // working copy of the whole record
	readVer   uint64
	locked    bool
	cells     uint64 // accessed-cell mask, for conflict classification
	readVals  [][]byte
	writeVals [][]byte
}

func (w *work) table() layout.TableID { return w.lay.Schema.ID }

// Execute runs one attempt of t. It never retries; the caller owns
// backoff and retry.
func (c *Coordinator) Execute(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.sys.db
	at := engine.BeginAttempt(db, p, c.gid, t)

	var ws []*work
	byRec := map[recKey]*work{}

	// Execution phase: per block, batch CAS+READ / READ per memory
	// node, then run the hooks locally.
	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		newWork, err := c.prepareBlock(p, t, blk, byRec)
		if err != nil {
			panic(err) // address resolution errors are programming bugs
		}
		ws = append(ws, newWork...)
		at.Phase(trace.PhaseLock)
		abort, falseC := c.fetchBlock(p, newWork)
		at.Phase(trace.PhaseExec)
		if abort != engine.AbortNone {
			// Release before Fail: FORD has always charged abort-time
			// lock release to the phase that failed.
			c.releaseLocks(p, ws)
			at.Fail(abort, falseC)
			return at.Done()
		}
		// Run every op of the block in program order.
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			w := byRec[recKey{op.Table, op.ResolveKey(t.State)}]
			c.applyOp(p, t, op, w)
		}
	}

	// Validation phase: re-read lock+version of every read-only
	// record.
	at.Phase(trace.PhaseValidate)
	if abort, falseC := c.validate(p, ws); abort != engine.AbortNone {
		c.releaseLocks(p, ws)
		at.Fail(abort, falseC)
		return at.Done()
	}

	// Commit phase: undo log, then install updates and release locks.
	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	c.writeLog(p, ws, ts)
	at.Phase(trace.PhaseApply)
	c.install(p, ws, ts)
	c.record(t, ws, ts)
	return at.Done()
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

// prepareBlock resolves keys and builds work entries for records not
// yet fetched, sorted by (table, key) for deterministic batching.
func (c *Coordinator) prepareBlock(p *sim.Proc, t *engine.Txn, blk *engine.Block, byRec map[recKey]*work) ([]*work, error) {
	db := c.cn.sys.db
	var out []*work
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		if prev, ok := byRec[rk]; ok {
			if op.IsWrite() && !prev.locked {
				panic(fmt.Sprintf("ford: record %v written after read-only fetch; declare the write on first access", rk))
			}
			prev.cells |= opCellMask(op)
			continue
		}
		lay := c.cn.sys.layouts[op.Table]
		primary := db.Pool.PrimaryOf(op.Table, key)
		off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), op.Table, key)
		if err != nil {
			return nil, err
		}
		w := &work{op: op, key: key, off: off, lay: lay, primary: primary, cells: opCellMask(op)}
		byRec[rk] = w
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].table() != out[j].table() {
			return out[i].table() < out[j].table()
		}
		return out[i].key < out[j].key
	})
	return out, nil
}

func opCellMask(op *engine.Op) uint64 {
	return layout.LockMask(op.ReadCells) | layout.LockMask(op.WriteCells)
}

// fetchBlock issues the block's CAS+READ / READ batches, one
// round-trip per memory node, and parses the results.
func (c *Coordinator) fetchBlock(p *sim.Proc, ws []*work) (engine.AbortReason, bool) {
	if len(ws) == 0 {
		return engine.AbortNone, false
	}
	db := c.cn.sys.db
	var batches []rdma.Batch
	batchWork := make(map[int][]*work) // batch index → works in op order
	perNode := map[int]int{}           // region id → batch index
	for _, w := range ws {
		bi, ok := perNode[w.primary.Region.ID()]
		if !ok {
			bi = len(batches)
			perNode[w.primary.Region.ID()] = bi
			batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
		}
		if w.op.IsWrite() {
			batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
				Kind:    rdma.OpCAS,
				Off:     w.off + layout.BOffLock,
				Compare: 0,
				Swap:    c.gid,
			})
		}
		batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off,
			Len:  w.lay.Size(),
		})
		batchWork[bi] = append(batchWork[bi], w)
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	abort := engine.AbortNone
	falseConflict := false
	for bi := range batches {
		ri := 0
		for _, w := range batchWork[bi] {
			if w.op.IsWrite() {
				if results[bi][ri].OK {
					w.locked = true
					db.Tracker.OnLock(w.table(), w.key, w.cells)
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
				} else {
					if abort == engine.AbortNone {
						abort = engine.AbortLockFail
						holder := db.Tracker.HolderCells(w.table(), w.key)
						falseConflict = engine.IsFalseConflict(w.cells, holder)
					}
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
				}
				ri++
			}
			w.data = results[bi][ri].Data
			w.readVer = layout.ReadWord(w.data, layout.BOffVersion) & layout.MaxTS48
			ri++
		}
	}
	return abort, falseConflict
}

// applyOp runs the op's hook against the working copy.
func (c *Coordinator) applyOp(p *sim.Proc, t *engine.Txn, op *engine.Op, w *work) {
	db := c.cn.sys.db
	read := make([][]byte, len(op.ReadCells))
	for i, cell := range op.ReadCells {
		read[i] = append([]byte(nil), w.data[w.lay.CellValueOff(cell):][:w.lay.Schema.CellSizes[cell]]...)
	}
	p.Sleep(db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells)))
	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("ford: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	for i, cell := range op.WriteCells {
		if len(written[i]) != w.lay.Schema.CellSizes[cell] {
			panic(fmt.Sprintf("ford: hook wrote %d bytes to cell %d of size %d", len(written[i]), cell, w.lay.Schema.CellSizes[cell]))
		}
		copy(w.data[w.lay.CellValueOff(cell):], written[i])
	}
	w.readVals = read
	w.writeVals = written
}

// validate re-reads lock+version of every read-only record, batched
// per memory node in one round-trip.
func (c *Coordinator) validate(p *sim.Proc, ws []*work) (engine.AbortReason, bool) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	var batchWork [][]*work
	perNode := map[int]int{}
	for _, w := range ws {
		if w.locked {
			continue // read-write records are protected by their lock
		}
		bi, ok := perNode[w.primary.Region.ID()]
		if !ok {
			bi = len(batches)
			perNode[w.primary.Region.ID()] = bi
			batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
			batchWork = append(batchWork, nil)
		}
		batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
			Kind: rdma.OpRead,
			Off:  w.off + layout.BOffLock,
			Len:  16, // lock word + version word
		})
		batchWork[bi] = append(batchWork[bi], w)
	}
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, w := range batchWork[bi] {
			lock := binary.LittleEndian.Uint64(results[bi][ri].Data)
			ver := binary.LittleEndian.Uint64(results[bi][ri].Data[8:]) & layout.MaxTS48
			if lock == 0 && ver == w.readVer {
				continue
			}
			var conflicting uint64
			if lock != 0 {
				conflicting = db.Tracker.HolderCells(w.table(), w.key)
			}
			if ver != w.readVer {
				conflicting |= db.Tracker.ChangedSince(w.table(), w.key, w.readVer)
			}
			db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
			return engine.AbortValidation, engine.IsFalseConflict(w.cells, conflicting)
		}
	}
	return engine.AbortNone, false
}

// releaseLocks clears every lock this attempt holds, batched per node
// in one round-trip.
func (c *Coordinator) releaseLocks(p *sim.Proc, ws []*work) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	perNode := map[int]int{}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		bi, ok := perNode[w.primary.Region.ID()]
		if !ok {
			bi = len(batches)
			perNode[w.primary.Region.ID()] = bi
			batches = append(batches, rdma.Batch{QP: c.qps.Get(w.primary.Region)})
		}
		batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
			Kind:    rdma.OpCAS,
			Off:     w.off + layout.BOffLock,
			Compare: c.gid,
			Swap:    0,
		})
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		w.locked = false
	}
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// writeLog persists the undo images of every written record to the
// coordinator's log segment replicas in one round-trip.
func (c *Coordinator) writeLog(p *sim.Proc, ws []*work, ts uint64) {
	entry := c.encodeLog(ws, ts)
	if entry == nil {
		return
	}
	off := c.log.Reserve(len(entry))
	batches := make([]rdma.Batch, 0, len(c.logN))
	for _, n := range c.logN {
		batches = append(batches, rdma.Batch{
			QP:  c.qps.Get(n.Region),
			Ops: []rdma.Op{{Kind: rdma.OpWrite, Off: off, Data: entry}},
		})
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// encodeLog builds the undo-log entry: ts, then per written record its
// table, key and prior image. Returns nil if the txn wrote nothing.
func (c *Coordinator) encodeLog(ws []*work, ts uint64) []byte {
	n := 0
	for _, w := range ws {
		if w.locked {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, w := range ws {
		if !w.locked {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.table()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.key))
		buf = binary.LittleEndian.AppendUint64(buf, w.readVer)
		buf = append(buf, w.data[w.lay.DataOff():w.lay.Size()]...)
	}
	return buf
}

// install writes version+data and releases the lock on every replica
// of every written record — one WRITE plus one CAS per record, all in
// one round-trip (delivery order makes the data visible before the
// unlock).
func (c *Coordinator) install(p *sim.Proc, ws []*work, ts uint64) {
	db := c.cn.sys.db
	var batches []rdma.Batch
	perNode := map[int]int{}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		layout.PutWord(w.data, layout.BOffVersion, ts)
		payload := append([]byte(nil), w.data[layout.BOffVersion:w.lay.Size()]...)
		for _, n := range db.Pool.ReplicaNodes(w.table(), w.key) {
			bi, ok := perNode[n.Region.ID()]
			if !ok {
				bi = len(batches)
				perNode[n.Region.ID()] = bi
				batches = append(batches, rdma.Batch{QP: c.qps.Get(n.Region)})
			}
			batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
				Kind: rdma.OpWrite,
				Off:  w.off + layout.BOffVersion,
				Data: payload,
			})
			if n == w.primary {
				batches[bi].Ops = append(batches[bi].Ops, rdma.Op{
					Kind:    rdma.OpCAS,
					Off:     w.off + layout.BOffLock,
					Compare: c.gid,
					Swap:    0,
				})
			}
		}
	}
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
	for _, w := range ws {
		if !w.locked {
			continue
		}
		db.Tracker.OnUnlock(w.table(), w.key, w.cells)
		db.Tracker.OnUpdate(w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.cells)
		w.locked = false
	}
}

// record feeds the committed transaction into the history checker,
// using the values the hooks actually observed and produced.
func (c *Coordinator) record(t *engine.Txn, ws []*work, ts uint64) {
	h := c.cn.sys.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Label: t.Label}
	for _, w := range ws {
		for i, cell := range w.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.readVals[i]),
			})
		}
		for i, cell := range w.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
