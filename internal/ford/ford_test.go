package ford

import (
	"encoding/binary"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// fixture builds a one-table FORD system: table 1 with two 8-byte
// cells per record, keys 0..n-1, both cells initialized to the key.
type fixture struct {
	env *sim.Env
	sys *System
	cns []*ComputeNode
}

func newFixture(t *testing.T, mns, cnCount, replicas, records int, history bool) *fixture {
	t.Helper()
	env := sim.NewEnv(7)
	params := rdma.DefaultParams()
	params.JitterPct = 0
	fabric := rdma.NewFabric(env, params)
	pool := memnode.NewPool(fabric, mns, 16<<20, replicas)
	db := engine.NewDB(pool)
	if history {
		db.History = engine.NewHistory()
	}
	sys := New(db)
	sys.CreateTable(layout.Schema{ID: 1, Name: "kv", CellSizes: []int{8, 8}}, records+16)
	for k := 0; k < records; k++ {
		sys.Load(1, layout.Key(k), [][]byte{word(uint64(k)), word(uint64(k))})
	}
	if err := sys.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	f := &fixture{env: env, sys: sys}
	for i := 0; i < cnCount; i++ {
		cn := sys.NewComputeNode(i)
		cn.WarmCache()
		f.cns = append(f.cns, cn)
	}
	return f
}

func word(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// incTxn returns a transaction that adds delta to cell of key.
func incTxn(key layout.Key, cell int, delta uint64) *engine.Txn {
	t := &engine.Txn{Label: "inc"}
	t.Blocks = []engine.Block{{Ops: []engine.Op{{
		Table:      1,
		Key:        key,
		ReadCells:  []int{cell},
		WriteCells: []int{cell},
		Hook: func(_ any, read [][]byte) [][]byte {
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + delta)}
		},
	}}}}
	return t
}

// readTxn reads both cells of key into out.
func readTxn(key layout.Key, out *[2]uint64) *engine.Txn {
	t := &engine.Txn{Label: "read", ReadOnly: true}
	t.Blocks = []engine.Block{{Ops: []engine.Op{{
		Table:     1,
		Key:       key,
		ReadCells: []int{0, 1},
		Hook: func(_ any, read [][]byte) [][]byte {
			out[0] = binary.LittleEndian.Uint64(read[0])
			out[1] = binary.LittleEndian.Uint64(read[1])
			return nil
		},
	}}}}
	return t
}

// poolCell reads a cell value directly from a node's region.
func (f *fixture) poolCell(node *memnode.Node, key layout.Key, cell int) uint64 {
	tab := f.sys.db.Table(1)
	off, ok := tab.AddrOf(key)
	if !ok {
		panic("key not loaded")
	}
	lay := f.sys.layouts[1]
	return binary.LittleEndian.Uint64(node.Region.Bytes()[off+uint64(lay.CellValueOff(cell)):])
}

func TestSingleWriteCommits(t *testing.T) {
	f := newFixture(t, 2, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("c", func(p *sim.Proc) {
		att = coord.Execute(p, incTxn(2, 0, 100))
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !att.Committed {
		t.Fatalf("attempt aborted: %v", att.Reason)
	}
	primary := f.sys.db.Pool.PrimaryOf(1, 2)
	if got := f.poolCell(primary, 2, 0); got != 102 {
		t.Fatalf("cell = %d, want 102", got)
	}
	// Cell 1 untouched.
	if got := f.poolCell(primary, 2, 1); got != 2 {
		t.Fatalf("cell 1 = %d, want 2", got)
	}
}

func TestReplicasUpdatedSynchronously(t *testing.T) {
	f := newFixture(t, 3, 1, 2, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		if a := coord.Execute(p, incTxn(1, 1, 5)); !a.Committed {
			t.Errorf("abort: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 1) {
		if got := f.poolCell(n, 1, 1); got != 6 {
			t.Fatalf("node %d cell = %d, want 6", n.ID, got)
		}
	}
}

func TestVerbCountsMatchTable2(t *testing.T) {
	f := newFixture(t, 2, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("c", func(p *sim.Proc) {
		// One read-write record and one read-only record.
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops = append(txn.Blocks[0].Ops, engine.Op{
			Table:     1,
			Key:       1,
			ReadCells: []int{0},
			Hook:      func(_ any, _ [][]byte) [][]byte { return nil },
		})
		att = coord.Execute(p, txn)
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !att.Committed {
		t.Fatalf("abort: %v", att.Reason)
	}
	v := att.Verbs
	// Execution: CAS+READ for the locked record, READ for the other.
	// Validation: one READ. Commit: log WRITE + record WRITE + unlock
	// CAS.
	if v.CASes != 2 {
		t.Errorf("CASes = %d, want 2 (lock+unlock)", v.CASes)
	}
	if v.Reads != 3 {
		t.Errorf("READs = %d, want 3 (2 fetch + 1 validate)", v.Reads)
	}
	if v.Writes != 2 {
		t.Errorf("WRITEs = %d, want 2 (log + record)", v.Writes)
	}
}

func TestWriteConflictAborts(t *testing.T) {
	f := newFixture(t, 1, 1, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[0].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) { outcomes[0] = c1.Execute(p, incTxn(0, 0, 1)) })
	f.env.Spawn("c2", func(p *sim.Proc) { outcomes[1] = c2.Execute(p, incTxn(0, 0, 1)) })
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	committed, aborted := 0, 0
	for _, a := range outcomes {
		if a.Committed {
			committed++
		} else {
			aborted++
			if a.Reason != engine.AbortLockFail {
				t.Errorf("abort reason %v, want lock-conflict", a.Reason)
			}
			if a.FalseConflict {
				t.Error("same-cell conflict classified as false")
			}
		}
	}
	if committed != 1 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d", committed, aborted)
	}
}

func TestDisjointCellConflictIsFalse(t *testing.T) {
	f := newFixture(t, 1, 1, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[0].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) { outcomes[0] = c1.Execute(p, incTxn(0, 0, 1)) })
	f.env.Spawn("c2", func(p *sim.Proc) { outcomes[1] = c2.Execute(p, incTxn(0, 1, 1)) })
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range outcomes {
		if a.Committed {
			continue
		}
		if !a.FalseConflict {
			t.Fatalf("disjoint-cell record conflict not classified false (reason %v)", a.Reason)
		}
	}
}

func TestValidationCatchesStaleRead(t *testing.T) {
	// A slow reader fetches key 0, then a writer commits to it before
	// the reader validates.
	f := newFixture(t, 1, 1, 0, 2, false)
	reader := f.cns[0].NewCoordinator(0)
	writer := f.cns[0].NewCoordinator(1)
	var readAtt engine.Attempt
	f.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "slow-read", ReadOnly: true}
		txn.Blocks = []engine.Block{
			{Ops: []engine.Op{{
				Table: 1, Key: 0, ReadCells: []int{0},
				Hook: func(_ any, _ [][]byte) [][]byte { return nil },
			}}},
			// A second block whose fetch gives the writer time to
			// commit between our read and our validation.
			{Ops: []engine.Op{{
				Table: 1, Key: 1, ReadCells: []int{0},
				Hook: func(_ any, _ [][]byte) [][]byte { p.Sleep(50 * sim.Microsecond); return nil },
			}}},
		}
		readAtt = reader.Execute(p, txn)
	})
	f.env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		if a := writer.Execute(p, incTxn(0, 0, 7)); !a.Committed {
			t.Errorf("writer aborted: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if readAtt.Committed {
		t.Fatal("stale read committed")
	}
	if readAtt.Reason != engine.AbortValidation {
		t.Fatalf("reason = %v, want validation", readAtt.Reason)
	}
}

func TestConcurrentIncrementsSerializable(t *testing.T) {
	f := newFixture(t, 2, 2, 1, 4, true)
	const workers, incs = 8, 10
	retry := engine.DefaultRetryPolicy()
	for i := 0; i < workers; i++ {
		cn := f.cns[i%len(f.cns)]
		coord := cn.NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < incs; j++ {
				for attempt := 1; ; attempt++ {
					if a := coord.Execute(p, incTxn(0, 0, 1)); a.Committed {
						break
					}
					p.Sleep(retry.Backoff(attempt, p.Rand()))
				}
			}
		})
	}
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	primary := f.sys.db.Pool.PrimaryOf(1, 0)
	if got := f.poolCell(primary, 0, 0); got != workers*incs {
		t.Fatalf("final counter = %d, want %d", got, workers*incs)
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func TestReadersSeeConsistentPairs(t *testing.T) {
	// Writers keep both cells of key 0 equal; readers must never
	// observe a mixed pair.
	f := newFixture(t, 2, 1, 0, 2, true)
	writerC := f.cns[0].NewCoordinator(0)
	readerC := f.cns[0].NewCoordinator(1)
	retry := engine.DefaultRetryPolicy()
	f.env.Spawn("writer", func(p *sim.Proc) {
		for j := 0; j < 20; j++ {
			txn := &engine.Txn{Label: "pair"}
			txn.Blocks = []engine.Block{{Ops: []engine.Op{{
				Table: 1, Key: 0, ReadCells: []int{0}, WriteCells: []int{0, 1},
				Hook: func(_ any, read [][]byte) [][]byte {
					v := binary.LittleEndian.Uint64(read[0]) + 1
					return [][]byte{word(v), word(v)}
				},
			}}}}
			for attempt := 1; ; attempt++ {
				if a := writerC.Execute(p, txn); a.Committed {
					break
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
		}
	})
	f.env.Spawn("reader", func(p *sim.Proc) {
		for j := 0; j < 40; j++ {
			var pair [2]uint64
			if a := readerC.Execute(p, readTxn(0, &pair)); a.Committed {
				if pair[0] != pair[1] {
					t.Errorf("observed torn pair %v", pair)
				}
			}
			p.Sleep(3 * sim.Microsecond)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func TestKeyDependencyAcrossBlocks(t *testing.T) {
	// Block 1 reads key 0's cell 0, block 2 increments the key that
	// value names.
	f := newFixture(t, 2, 1, 0, 8, false)
	coord := f.cns[0].NewCoordinator(0)
	type st struct{ next uint64 }
	f.env.Spawn("c", func(p *sim.Proc) {
		s := &st{}
		txn := &engine.Txn{Label: "chain", State: s}
		txn.Blocks = []engine.Block{
			{Ops: []engine.Op{{
				Table: 1, Key: 3, ReadCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					state.(*st).next = binary.LittleEndian.Uint64(read[0]) + 1
					return nil
				},
			}}},
			{Ops: []engine.Op{{
				Table:      1,
				KeyFn:      func(state any) layout.Key { return layout.Key(state.(*st).next) },
				ReadCells:  []int{1},
				WriteCells: []int{1},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1000)}
				},
			}}},
		}
		if a := coord.Execute(p, txn); !a.Committed {
			t.Errorf("abort: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	// Key 3's cell 0 holds 3, so the dependent key is 4: cell 1 of
	// key 4 becomes 4+1000.
	primary := f.sys.db.Pool.PrimaryOf(1, 4)
	if got := f.poolCell(primary, 4, 1); got != 1004 {
		t.Fatalf("dependent record cell = %d, want 1004", got)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	// A txn that locks key 0 then aborts on key 1's lock must release
	// key 0 so a later txn can lock it.
	f := newFixture(t, 1, 1, 0, 2, false)
	blocker := f.cns[0].NewCoordinator(0)
	victim := f.cns[0].NewCoordinator(1)
	after := f.cns[0].NewCoordinator(2)

	// blocker holds key 1 for a long time by sleeping inside its hook.
	f.env.Spawn("blocker", func(p *sim.Proc) {
		txn := incTxn(1, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(100 * sim.Microsecond)
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
		}
		if a := blocker.Execute(p, txn); !a.Committed {
			t.Errorf("blocker aborted: %v", a.Reason)
		}
	})
	f.env.Spawn("victim", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		txn := &engine.Txn{Label: "two"}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{
			incTxn(0, 0, 1).Blocks[0].Ops[0],
			incTxn(1, 0, 1).Blocks[0].Ops[0],
		}}}
		if a := victim.Execute(p, txn); a.Committed {
			t.Error("victim committed against held lock")
		}
	})
	f.env.Spawn("after", func(p *sim.Proc) {
		p.Sleep(40 * sim.Microsecond)
		if a := after.Execute(p, incTxn(0, 0, 1)); !a.Committed {
			t.Errorf("lock on key 0 leaked: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}
