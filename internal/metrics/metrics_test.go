package metrics

import (
	"bytes"
	"strings"
	"testing"

	"crest/internal/sim"
)

// fakeClock binds r to a controllable virtual clock, as BindEnv would
// to a live environment, without registering the simulator probes.
func fakeClock(r *Registry) *sim.Time {
	now := new(sim.Time)
	r.clock = func() sim.Time { return *now }
	r.next = *now + sim.Time(r.window)
	return now
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.BindEnv(nil) // must not dereference
	if r.Window() != 0 {
		t.Fatal("nil registry window")
	}
	c := r.Counter("c_total", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Inc()
	g.Dec()
	g.Set(7)
	h.Observe(3)
	r.CounterFunc("cf", "", "", func() uint64 { return 1 })
	r.GaugeFunc("gf", "", "", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments reported values")
	}
	s := r.Snapshot()
	if len(s.Series) != 0 || len(s.Times) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestWindowingAttributesMutations(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	c := r.Counter("ops_total", "", "ops")
	g := r.Gauge("depth", "", "depth")

	// Window 0: [0µs, 10µs).
	c.Add(3)
	g.Set(5)
	// Window 1: [10µs, 20µs).
	*now = sim.Time(12 * sim.Microsecond)
	c.Add(4)
	// Window 3: two windows elapse silently; the sealed gap must carry
	// a zero delta for the counter and the boundary value for the gauge.
	*now = sim.Time(35 * sim.Microsecond)
	c.Inc()
	g.Set(1)

	s := r.Snapshot()
	cs, gs := s.Find("ops_total", ""), s.Find("depth", "")
	if cs == nil || gs == nil {
		t.Fatal("series missing")
	}
	// Snapshot at 35µs seals windows 0..2 (window 3 is still open).
	if want := []float64{3, 4, 0}; !floatsEq(cs.Samples, want) {
		t.Fatalf("counter samples = %v, want %v", cs.Samples, want)
	}
	if want := []float64{5, 5, 5}; !floatsEq(gs.Samples, want) {
		t.Fatalf("gauge samples = %v, want %v", gs.Samples, want)
	}
	if cs.Total != 8 || gs.Total != 1 {
		t.Fatalf("totals %v/%v", cs.Total, gs.Total)
	}
	if len(s.Times) != 3 || s.Times[1] != sim.Time(10*sim.Microsecond) {
		t.Fatalf("window times %v", s.Times)
	}
}

func TestLateRegistrationBackfills(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	a := r.Counter("a_total", "", "")
	a.Inc()
	*now = sim.Time(25 * sim.Microsecond)
	a.Inc() // seals windows 0 and 1
	b := r.Counter("b_total", "", "")
	b.Inc()
	s := r.Snapshot()
	bs := s.Find("b_total", "")
	if want := []float64{0, 0}; !floatsEq(bs.Samples, want) {
		t.Fatalf("late series not backfilled: %v", bs.Samples)
	}
}

func TestWindowDisabled(t *testing.T) {
	r := NewRegistry(Options{}) // Window 0: totals only
	now := fakeClock(r)
	c := r.Counter("c_total", "", "")
	c.Add(2)
	*now = sim.Time(5 * sim.Millisecond)
	c.Add(3)
	s := r.Snapshot()
	if len(s.Times) != 0 {
		t.Fatalf("disabled series sealed %d windows", len(s.Times))
	}
	if got := s.Find("c_total", "").Total; got != 5 {
		t.Fatalf("total = %v", got)
	}
}

func TestRegisterIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry(Options{})
	a := r.Counter("x_total", `k="1"`, "")
	b := r.Counter("x_total", `k="1"`, "")
	a.Add(2)
	b.Add(3)
	if a.Value() != 5 || b.Value() != 5 {
		t.Fatal("re-registration did not share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", `k="1"`, "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(Options{})
	fakeClock(r)
	h := r.Histogram("lat_us", "", "", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	se := s.Find("lat_us", "")
	if se.Total != 7 || se.Sum != 120 {
		t.Fatalf("count/sum = %v/%v", se.Total, se.Sum)
	}
	// Cumulative: ≤1:2, ≤2:3, ≤4:4, ≤8:5, +Inf:7.
	wantCum := []uint64{2, 3, 4, 5, 7}
	for i, b := range se.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, b.Count, wantCum[i], se.Buckets)
		}
	}
	if se.Buckets[len(se.Buckets)-1].Le != 1<<63-1 {
		t.Fatal("missing +Inf bucket")
	}
}

func TestLogLinearBounds(t *testing.T) {
	got := LogLinearBounds(1, 64, 2)
	want := []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
}

func TestProbesSampledAtSeal(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	var dispatched uint64
	r.CounterFunc("disp_total", "", "", func() uint64 { return dispatched })
	c := r.Counter("c_total", "", "")
	dispatched = 7
	*now = sim.Time(15 * sim.Microsecond)
	c.Inc() // seals window 0; probe reads 7
	dispatched = 10
	s := r.Snapshot() // seals window 1 at 15µs... still open; totals read 10
	ds := s.Find("disp_total", "")
	if want := []float64{7}; !floatsEq(ds.Samples, want) {
		t.Fatalf("probe samples = %v, want %v", ds.Samples, want)
	}
	if ds.Total != 10 {
		t.Fatalf("probe total = %v", ds.Total)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	c := r.Counter("c_total", "", "")
	c.Inc()
	*now = sim.Time(10 * sim.Microsecond)
	s1 := r.Snapshot()
	c.Add(10)
	*now = sim.Time(20 * sim.Microsecond)
	r.Snapshot()
	if len(s1.Times) != 1 || s1.Find("c_total", "").Total != 1 {
		t.Fatal("earlier snapshot mutated by later activity")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	c := r.Counter("ops_total", `verb="READ"`, "reads")
	h := r.Histogram("lat_us", "", "latency", []int64{1, 10, 100})
	c.Add(3)
	h.Observe(5)
	*now = sim.Time(30 * sim.Microsecond)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != s.Window || len(got.Times) != len(s.Times) || len(got.Series) != len(s.Series) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	cs := got.Find("ops_total", `verb="READ"`)
	if cs == nil || cs.Total != 3 || !floatsEq(cs.Samples, s.Find("ops_total", `verb="READ"`).Samples) {
		t.Fatalf("series lost in round trip: %+v", cs)
	}
	hs := got.Find("lat_us", "")
	if hs == nil || len(hs.Buckets) != 4 || hs.Sum != 5 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}

	// Schema mismatches must be rejected.
	if _, err := ReadJSON(strings.NewReader(`{"schema":"bogus/v9","series":[]}`)); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestCSVExport(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	c := r.Counter("ops_total", "", "")
	g := r.Gauge("depth", "", "")
	h := r.Histogram("lat_us", "", "", []int64{1, 10})
	c.Add(2)
	g.Set(4)
	h.Observe(3)
	*now = sim.Time(20 * sim.Microsecond)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 windows
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "window_start_us,ops_total,depth,lat_us_count" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "0.000,2,4,1" {
		t.Fatalf("csv row 0 = %q", lines[1])
	}
	if lines[2] != "10.000,0,4,0" {
		t.Fatalf("csv row 1 = %q", lines[2])
	}
}

// validPromLine accepts comment lines and `name{labels} value` samples
// — the shape the text exposition format (0.0.4) requires.
func validPromLine(line string) bool {
	if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
		return true
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return false
	}
	name := fields[0]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return false
		}
		name = name[:i]
	}
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		ok := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	fakeClock(r)
	r.Counter("crest_ops_total", `verb="READ"`, "reads").Add(3)
	r.Counter("crest_ops_total", `verb="WRITE"`, "reads").Add(2)
	r.Gauge("crest_depth", "", "depth").Set(9)
	h := r.Histogram("crest_lat_us", "", "latency", []int64{1, 10})
	h.Observe(5)
	h.Observe(50)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !validPromLine(line) {
			t.Fatalf("invalid exposition line %q in:\n%s", line, out)
		}
	}
	for _, want := range []string{
		"# TYPE crest_ops_total counter",
		`crest_ops_total{verb="READ"} 3`,
		`crest_ops_total{verb="WRITE"} 2`,
		"crest_depth 9",
		"# TYPE crest_lat_us histogram",
		`crest_lat_us_bucket{le="10"} 1`,
		`crest_lat_us_bucket{le="+Inf"} 2`,
		"crest_lat_us_sum 55",
		"crest_lat_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE are emitted once per metric name, not per label set.
	if strings.Count(out, "# TYPE crest_ops_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestSparklines(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	now := fakeClock(r)
	c := r.Counter("ops_total", "", "")
	for i := 0; i < 5; i++ {
		*now = sim.Time(i * 10 * int(sim.Microsecond))
		c.Add(uint64(i))
	}
	*now = sim.Time(50 * sim.Microsecond)
	s := r.Snapshot()
	var buf bytes.Buffer
	if err := WriteSparklines(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ops_total") || !strings.Contains(out, "min=") {
		t.Fatalf("sparkline output:\n%s", out)
	}
	// Empty snapshot renders the no-windows notice rather than failing.
	buf.Reset()
	if err := WriteSparklines(&buf, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no sealed windows") {
		t.Fatalf("empty sparkline output: %q", buf.String())
	}
}

func TestDroppedWindowsBounded(t *testing.T) {
	r := NewRegistry(Options{Window: sim.Duration(1)})
	now := fakeClock(r)
	c := r.Counter("c_total", "", "")
	*now = sim.Time(MaxWindows + 1000)
	c.Inc()
	s := r.Snapshot()
	if len(s.Times) != MaxWindows {
		t.Fatalf("stored %d windows", len(s.Times))
	}
	if s.DroppedWindows == 0 {
		t.Fatal("no dropped-window count")
	}
}

// TestHotPathZeroAlloc is the PR's allocation guard: once instruments
// exist and no window boundary is crossed, counter/gauge/histogram
// mutations must not allocate. Window sealing amortizes its appends and
// is exercised (and excluded) separately.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry(Options{Window: sim.Duration(1 * sim.Second)})
	fakeClock(r)
	c := r.Counter("c_total", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", LogLinearBounds(1, 1<<20, 2))
	// Warm up.
	c.Inc()
	g.Set(1)
	h.Observe(17)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Dec()
		g.Set(5)
		h.Observe(123)
		h.Observe(1 << 19)
	}); avg != 0 {
		t.Fatalf("hot path allocates %v/op", avg)
	}
	// The disabled path must be allocation-free too.
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	if avg := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilG.Set(1)
		nilH.Observe(1)
	}); avg != 0 {
		t.Fatalf("nil path allocates %v/op", avg)
	}
}

func floatsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
