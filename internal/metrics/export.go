// Exporters: Prometheus text exposition, CSV and JSON time-series, and
// an ASCII sparkline summary. All output is deterministic — series in
// registration order, fixed number formatting — so exported artifacts
// diff cleanly across runs and seeds.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// SchemaVersion identifies the JSON layout written by WriteJSON.
const SchemaVersion = "crest-metrics/v1"

// jsonDoc is the WriteJSON envelope.
type jsonDoc struct {
	Schema string `json:"schema"`
	*Snapshot
}

// WriteJSON emits the snapshot as a schema-versioned JSON document.
func WriteJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Schema: SchemaVersion, Snapshot: s})
}

// ReadJSON parses a document written by WriteJSON and verifies its
// schema version.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var doc jsonDoc
	doc.Snapshot = &Snapshot{}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics: parsing JSON: %w", err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("metrics: schema %q, want %q", doc.Schema, SchemaVersion)
	}
	return doc.Snapshot, nil
}

// formatValue renders a sample or total without float noise: integers
// stay integers, everything else keeps shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV emits the windowed time-series as CSV: one row per sealed
// window, first column the window start in virtual microseconds, then
// one column per series (counters and histograms as per-window deltas,
// gauges as boundary values). Histogram columns carry observation
// counts and are suffixed _count.
func WriteCSV(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("window_start_us")
	for i := range s.Series {
		se := &s.Series[i]
		id := se.ID()
		if se.Kind == KindHistogram {
			id += "_count"
		}
		bw.WriteByte(',')
		// Commas inside label values would break the row; quote per
		// RFC 4180 when present.
		if strings.ContainsAny(id, ",\"") {
			id = `"` + strings.ReplaceAll(id, `"`, `""`) + `"`
		}
		bw.WriteString(id)
	}
	bw.WriteByte('\n')
	for wi, t := range s.Times {
		fmt.Fprintf(bw, "%.3f", float64(t)/1e3)
		for i := range s.Series {
			bw.WriteByte(',')
			bw.WriteString(formatValue(s.Series[i].Samples[wi]))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WritePrometheus emits every instrument's end-of-run value in the
// Prometheus text exposition format (version 0.0.4): HELP and TYPE
// comments, then one sample line per series (histograms expand to
// cumulative _bucket lines plus _sum and _count). Virtual time has no
// wall-clock meaning, so no timestamps are attached; the output is a
// valid scrape file for promtool and file-based exporters.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for i := range s.Series {
		se := &s.Series[i]
		if !seen[se.Name] {
			seen[se.Name] = true
			if se.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", se.Name, se.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", se.Name, se.Kind)
		}
		switch se.Kind {
		case KindHistogram:
			for _, b := range se.Buckets {
				le := "+Inf"
				if b.Le != 1<<63-1 {
					le = strconv.FormatInt(b.Le, 10)
				}
				fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", se.Name, labelPrefix(se.Labels), le, b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", se.Name, labelBlock(se.Labels), formatValue(se.Sum))
			fmt.Fprintf(bw, "%s_count%s %s\n", se.Name, labelBlock(se.Labels), formatValue(se.Total))
		default:
			fmt.Fprintf(bw, "%s%s %s\n", se.Name, labelBlock(se.Labels), formatValue(se.Total))
		}
	}
	return bw.Flush()
}

// labelBlock renders "{labels}" or "" for a plain sample line.
func labelBlock(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelPrefix renders `labels,` for merging with an le="..." pair.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// sparkLevels are the eight block glyphs of an ASCII sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders samples scaled into sparkLevels, at most width
// cells wide (samples are averaged into cells when narrower).
func sparkline(samples []float64, width int) string {
	if len(samples) == 0 {
		return ""
	}
	cells := samples
	if len(samples) > width {
		cells = make([]float64, width)
		for i := range cells {
			lo := i * len(samples) / width
			hi := (i + 1) * len(samples) / width
			if hi == lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range samples[lo:hi] {
				sum += v
			}
			cells[i] = sum / float64(hi-lo)
		}
	}
	min, max := cells[0], cells[0]
	for _, v := range cells {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		lvl := 0
		if max > min {
			lvl = int((v - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// WriteSparklines renders one line per windowed series: the series id,
// a sparkline of its per-window samples, and the min/mean/max of the
// samples — a terminal-friendly glance at how a run evolved over
// virtual time.
func WriteSparklines(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if len(s.Times) == 0 {
		fmt.Fprintln(bw, "metrics: no sealed windows (series disabled or run shorter than one window)")
		return bw.Flush()
	}
	span := float64(s.Times[len(s.Times)-1]) / 1e3
	fmt.Fprintf(bw, "metrics: %d windows of %v over %.0fµs of virtual time\n",
		len(s.Times), s.Window, span+float64(s.Window)/1e3)
	const width = 60
	idw := 0
	for i := range s.Series {
		if n := len(s.Series[i].ID()); n > idw {
			idw = n
		}
	}
	for i := range s.Series {
		se := &s.Series[i]
		min, max, sum := se.Samples[0], se.Samples[0], 0.0
		for _, v := range se.Samples {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Fprintf(bw, "%-*s %s min=%s mean=%s max=%s\n",
			idw, se.ID(), sparkline(se.Samples, width),
			formatValue(min), formatValue(sum/float64(len(se.Samples))), formatValue(max))
	}
	return bw.Flush()
}
