package metrics

import (
	"bytes"
	"testing"

	"crest/internal/sim"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// Shard is a no-op below two partitions and yields one stable child per
// partition above; misuse (re-sharding a child, inconsistent partition
// counts) is a programming error and panics.
func TestShardIdentityAndMisuse(t *testing.T) {
	var nilR *Registry
	if nilR.Shard(0, 4) != nil {
		t.Fatal("nil registry shard is not nil")
	}
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	if r.Shard(0, 1) != r {
		t.Fatal("parts=1 must return the receiver")
	}
	s1 := r.Shard(1, 3)
	if s1 == r {
		t.Fatal("parts=3 returned the root")
	}
	if r.Shard(1, 3) != s1 {
		t.Fatal("children are not stable across calls")
	}
	if s1.Window() != r.Window() {
		t.Fatalf("child window %v != root %v", s1.Window(), r.Window())
	}
	mustPanic(t, "Shard of a child", func() { s1.Shard(0, 3) })
	mustPanic(t, "inconsistent parts", func() { r.Shard(0, 2) })
	mustPanic(t, "part out of range", func() { r.Shard(3, 3) })
}

// The merged snapshot is the per-identity sum of the family: series
// registered on several partitions fold their totals and per-window
// samples, shard-local series ride along, and shorter members zero-pad
// to the longest window vector.
func TestShardMergeSumsAcrossPartitions(t *testing.T) {
	r := NewRegistry(Options{Window: 10 * sim.Microsecond})
	s0, s1 := r.Shard(0, 2), r.Shard(1, 2)
	now0, now1 := fakeClock(s0), fakeClock(s1)

	c0 := s0.Counter("ops_total", "", "ops")
	c1 := s1.Counter("ops_total", "", "ops")
	only1 := s1.Gauge("depth", `partition="1"`, "")
	c0.Add(3)
	c1.Add(4)
	only1.Set(7)

	// Both partitions advance in lock step (as aligned windows do in a
	// partitioned run); shard 0 then mutates in the second window, and
	// both clocks pass its end so Snapshot seals two windows everywhere.
	*now0 = sim.Time(12 * sim.Microsecond)
	c0.Add(5)
	*now0 = sim.Time(22 * sim.Microsecond)
	*now1 = sim.Time(22 * sim.Microsecond)

	snap := r.Snapshot()
	if len(snap.Times) != 2 {
		t.Fatalf("merged windows = %d, want 2", len(snap.Times))
	}
	se := snap.Find("ops_total", "")
	if se == nil {
		t.Fatal("merged counter missing")
	}
	if se.Total != 12 {
		t.Fatalf("merged total = %v, want 12", se.Total)
	}
	if len(se.Samples) != 2 || se.Samples[0] != 7 || se.Samples[1] != 5 {
		t.Fatalf("merged samples = %v, want [7 5]", se.Samples)
	}
	g := snap.Find("depth", `partition="1"`)
	if g == nil {
		t.Fatal("shard-local series missing from the merge")
	}
	if len(g.Samples) != 2 {
		t.Fatalf("shard-local samples not padded to the merged windows: %v", g.Samples)
	}
}

// The merged snapshot renders deterministically: two identical sharded
// runs export byte-identical documents.
func TestShardMergeDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry(Options{Window: 10 * sim.Microsecond})
		for part := 0; part < 3; part++ {
			s := r.Shard(part, 3)
			now := fakeClock(s)
			c := s.Counter("ops_total", "", "")
			h := s.Histogram("lat", "", "", LogLinearBounds(1, 1<<10, 2))
			for i := 0; i < 5; i++ {
				c.Add(uint64(part + i))
				h.Observe(int64(1 << i))
				*now += sim.Time(10 * sim.Microsecond)
			}
		}
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical sharded runs exported different documents")
	}
}

// The shard child's mutation path is the recorder hot path of a
// partitioned run; it must stay allocation-free in steady state.
func TestShardHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry(Options{Window: sim.Duration(1 * sim.Second)})
	s := r.Shard(0, 2)
	fakeClock(s)
	c := s.Counter("c_total", "", "")
	g := s.Gauge("g", "", "")
	h := s.Histogram("h", "", "", LogLinearBounds(1, 1<<20, 2))
	c.Inc()
	g.Set(1)
	h.Observe(17)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(5)
		h.Observe(123)
	}); avg != 0 {
		t.Fatalf("sharded hot path allocates %v/op", avg)
	}
}
