// Package metrics is the virtual-time metrics plane: a deterministic,
// nil-safe registry of counters, gauges and fixed-bucket log-linear
// histograms, plus a windowed time-series sampler that snapshots every
// instrument once per W virtual microseconds.
//
// Like tracing (internal/trace), metrics consume no virtual time and no
// randomness: nothing here spawns simulator processes, schedules
// events, or draws from the seeded source. Windows therefore cannot be
// closed by a timer; they close lazily — every instrument mutation
// first checks whether virtual time has crossed the next window
// boundary and, if so, seals every elapsed window before the mutation
// lands. Because every mutation performs this check, a sealed window
// holds exactly the mutations whose virtual timestamps fall inside it,
// and a metrics-enabled run is byte-identical to a disabled one.
//
// The registry follows the trace recorder's nil-safety contract: a nil
// *Registry returns nil instruments, and every method of a nil
// instrument is a no-op, so a disabled emission point costs exactly one
// pointer check. The mutation fast path (no window boundary crossed)
// allocates nothing; sealing a window appends one sample per instrument
// (amortized by slice doubling).
package metrics

import (
	"fmt"

	"crest/internal/sim"
)

// Kind classifies an instrument.
type Kind uint8

// The instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind (Prometheus TYPE names).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DefaultWindow is the sampling window applied when a caller enables
// windowing without choosing one: 100 virtual microseconds, fine enough
// to resolve contention ramps in the paper's 20 ms runs and coarse
// enough that a full run stays a few hundred rows.
const DefaultWindow = 100 * sim.Microsecond

// MaxWindows bounds the number of sealed windows a registry retains.
// Past the bound, further windows are counted as dropped rather than
// stored, so a pathological window choice (1 ns windows over seconds of
// virtual time) degrades to truncation instead of unbounded memory.
const MaxWindows = 1 << 16

// Options configures a registry.
type Options struct {
	// Window is the sampling period in virtual time. Zero or negative
	// disables the time series: instruments still accumulate totals
	// (Prometheus export keeps working) but no per-window samples are
	// recorded.
	Window sim.Duration
}

// Registry owns a set of named instruments and their windowed samples.
// It is bound to one simulation environment (BindEnv) whose virtual
// clock drives the window boundaries. The cooperative scheduler
// serializes all mutations, so no locking is needed. A nil *Registry is
// the disabled state; every method tolerates it.
type Registry struct {
	clock  func() sim.Time
	window sim.Duration
	next   sim.Time // end of the currently open window

	insts  []*instrument
	byName map[string]*instrument

	times   []sim.Time // start time of each sealed window
	dropped uint64     // windows sealed past MaxWindows

	// Partition-registry mode (Shard): a root registry hands each
	// simulation partition its own child, bound to that partition's
	// clock and mutated only by its worker; the root's Snapshot merges
	// the family deterministically (series summed by identity, samples
	// added per window).
	shards []*Registry
	child  bool // set on partition children: re-sharding them is misuse
}

// instrument is the registry-side state shared by the typed handles.
type instrument struct {
	r      *Registry
	name   string
	labels string // Prometheus label pairs, e.g. `reason="validation"`
	help   string
	kind   Kind

	count  uint64 // counter value / histogram observation count
	gauge  int64  // gauge value
	sum    int64  // histogram sum of observed values
	bounds []int64
	bucket []uint64 // len(bounds)+1: last is the overflow (+Inf) bucket

	probeC func() uint64 // counter probe (sampled at seal/snapshot)
	probeG func() int64  // gauge probe

	samples []float64 // one per sealed window
	last    uint64    // counter/histogram value at the previous seal
}

// NewRegistry returns an empty registry. Bind it to an environment with
// BindEnv before the simulation runs; instruments may be created before
// or after binding.
func NewRegistry(opt Options) *Registry {
	return &Registry{
		window: opt.Window,
		byName: map[string]*instrument{},
	}
}

// BindEnv attaches the registry to env's virtual clock and registers
// the simulator's own instruments: runnable and live process gauges and
// the per-window dispatch counter. A registry is bound to exactly one
// environment for its lifetime; nil receivers no-op.
func (r *Registry) BindEnv(env *sim.Env) {
	if r == nil {
		return
	}
	r.clock = env.Now
	r.next = env.Now() + sim.Time(r.window)
	r.GaugeFunc("crest_sim_runnable_procs", "",
		"Simulated processes spawned and not parked on a wait queue.",
		func() int64 { return int64(env.Live() - env.Waiting()) })
	r.GaugeFunc("crest_sim_live_procs", "",
		"Simulated processes spawned and not yet finished.",
		func() int64 { return int64(env.Live()) })
	r.CounterFunc("crest_sim_dispatches_total", "",
		"Scheduler events dispatched (process wakeups and deferred calls).",
		env.Dispatched)
}

// Shard returns the child registry owned by partition part of parts.
// The whole family is created on the first call with the root's window,
// so every caller that shards with the same partition count gets the
// same children. Bind each child to its own partition's environment;
// the root's Snapshot merges the family — per-identity series sums,
// per-window sample sums — into one deterministic snapshot. A nil
// registry or parts <= 1 returns the receiver unchanged, so
// single-partition runs keep the classic registry byte-for-byte.
func (r *Registry) Shard(part, parts int) *Registry {
	if r == nil || parts <= 1 {
		return r
	}
	if r.child {
		panic("metrics: Shard of a partition child")
	}
	if r.shards == nil {
		r.shards = make([]*Registry, parts)
		for i := range r.shards {
			r.shards[i] = &Registry{window: r.window, byName: map[string]*instrument{}, child: true}
		}
	}
	if len(r.shards) != parts || part < 0 || part >= parts {
		panic(fmt.Sprintf("metrics: Shard(%d, %d) of a registry sharded %d ways",
			part, parts, len(r.shards)))
	}
	return r.shards[part]
}

// Window reports the registry's sampling period (0 = series disabled).
func (r *Registry) Window() sim.Duration {
	if r == nil {
		return 0
	}
	return r.window
}

// key builds the registration key for (name, labels).
func key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// register returns the instrument for (name, labels), creating it on
// first use. Registration is idempotent: a second registration with the
// same identity returns the first instrument (its kind must match).
func (r *Registry) register(name, labels, help string, kind Kind) *instrument {
	k := key(name, labels)
	if in := r.byName[k]; in != nil {
		if in.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", k, kind, in.kind))
		}
		return in
	}
	in := &instrument{r: r, name: name, labels: labels, help: help, kind: kind}
	// Backfill zeros for windows sealed before this instrument existed,
	// so every series has one sample per sealed window.
	if n := len(r.times); n > 0 {
		in.samples = make([]float64, n)
	}
	r.insts = append(r.insts, in)
	r.byName[k] = in
	return in
}

// tick seals every window whose end has passed. It is the first thing
// every mutation does, so samples attribute to the window the mutation's
// virtual timestamp falls in.
func (r *Registry) tick() {
	if r.window <= 0 || r.clock == nil {
		return
	}
	if now := r.clock(); now >= r.next {
		r.seal(now)
	}
}

// seal closes every window with end ≤ now. Kept out of tick so the
// boundary check inlines into instrument mutations.
func (r *Registry) seal(now sim.Time) {
	for r.next <= now {
		if len(r.times) >= MaxWindows {
			r.dropped++
		} else {
			r.times = append(r.times, r.next-sim.Time(r.window))
			for _, in := range r.insts {
				in.sample()
			}
		}
		r.next += sim.Time(r.window)
	}
}

// sample appends the instrument's value for the window being sealed:
// counters and histograms record the delta since the previous seal,
// gauges their value at the boundary.
func (in *instrument) sample() {
	switch in.kind {
	case KindCounter:
		cur := in.count
		if in.probeC != nil {
			cur = in.probeC()
		}
		in.samples = append(in.samples, float64(cur-in.last))
		in.last = cur
	case KindGauge:
		cur := in.gauge
		if in.probeG != nil {
			cur = in.probeG()
		}
		in.samples = append(in.samples, float64(cur))
	case KindHistogram:
		in.samples = append(in.samples, float64(in.count-in.last))
		in.last = in.count
	}
}

// Counter is a monotonically increasing count. The nil *Counter is the
// disabled state.
type Counter struct{ in *instrument }

// Counter returns the counter for (name, labels), registering it on
// first use. Counter names should end in _total (Prometheus
// convention). A nil registry returns the nil (disabled) counter.
func (r *Registry) Counter(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{in: r.register(name, labels, help, KindCounter)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.in.r.tick()
	c.in.count += n
}

// Value reports the counter's running total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.in.count
}

// Gauge is an instantaneous value that can move both ways. The nil
// *Gauge is the disabled state.
type Gauge struct{ in *instrument }

// Gauge returns the gauge for (name, labels), registering it on first
// use. A nil registry returns the nil (disabled) gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{in: r.register(name, labels, help, KindGauge)}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.in.r.tick()
	g.in.gauge += d
}

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.in.r.tick()
	g.in.gauge = v
}

// Value reports the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.in.gauge
}

// CounterFunc registers a probe counter: its running total is read from
// fn at every window seal and snapshot instead of being pushed. Probes
// cost the hot path nothing; they exist for values another subsystem
// already maintains (the scheduler's dispatch count).
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, labels, help, KindCounter).probeC = fn
}

// GaugeFunc registers a probe gauge, sampled from fn at every window
// seal and snapshot.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, labels, help, KindGauge).probeG = fn
}

// Histogram accumulates int64 observations into fixed, preallocated
// log-linear buckets. The nil *Histogram is the disabled state.
type Histogram struct{ in *instrument }

// Histogram returns the histogram for (name, labels), registering it on
// first use with the given bucket upper bounds (strictly increasing; an
// overflow bucket is implicit). Passing nil bounds uses
// LogLinearBounds(1, 1<<20, 2), which suits microsecond latencies.
// A nil registry returns the nil (disabled) histogram.
func (r *Registry) Histogram(name, labels, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	in := r.register(name, labels, help, KindHistogram)
	if in.bucket == nil {
		if bounds == nil {
			bounds = LogLinearBounds(1, 1<<20, 2)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s bounds not increasing at %d", name, i))
			}
		}
		in.bounds = bounds
		in.bucket = make([]uint64, len(bounds)+1)
	}
	return &Histogram{in: in}
}

// LogLinearBounds builds log-linear bucket upper bounds: stepsPerOctave
// evenly spaced bounds within each power-of-two octave from min up to
// and including max (duplicates from integer truncation are dropped).
// With min=1, max=64, steps=2: 1 2 3 4 6 8 12 16 24 32 48 64.
func LogLinearBounds(min, max int64, stepsPerOctave int) []int64 {
	if min < 1 {
		min = 1
	}
	if stepsPerOctave < 1 {
		stepsPerOctave = 1
	}
	var out []int64
	for v := min; v <= max && v > 0; v *= 2 {
		for s := 0; s < stepsPerOctave; s++ {
			b := v + v*int64(s)/int64(stepsPerOctave)
			if b > max {
				b = max
			}
			if n := len(out); n == 0 || b > out[n-1] {
				out = append(out, b)
			}
		}
	}
	if n := len(out); n == 0 || out[n-1] < max {
		out = append(out, max)
	}
	return out
}

// Observe records one value. The bucket search is a hand-written binary
// search so the hot path stays closure- and allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	in := h.in
	in.r.tick()
	in.count++
	in.sum += v
	lo, hi := 0, len(in.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if in.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	in.bucket[lo]++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.in.count
}

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations ≤ Le (Le == math.MaxInt64 marks the overflow bucket,
// rendered as +Inf by the Prometheus exporter).
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"` // cumulative
}

// Series is one instrument's state in a snapshot.
type Series struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Help   string `json:"help,omitempty"`
	Kind   Kind   `json:"kind"`

	// Total is the instrument's value at snapshot time: the running
	// total for counters, the current value for gauges, the observation
	// count for histograms.
	Total float64 `json:"total"`
	// Sum is the histogram's sum of observed values (0 otherwise).
	Sum float64 `json:"sum,omitempty"`
	// Buckets is the histogram's cumulative bucket table (nil
	// otherwise).
	Buckets []Bucket `json:"buckets,omitempty"`

	// Samples holds one value per sealed window: per-window deltas for
	// counters and histograms (observation counts), the value at the
	// window boundary for gauges.
	Samples []float64 `json:"samples,omitempty"`
}

// ID renders the series' Prometheus identity, name{labels}.
func (s *Series) ID() string { return key(s.Name, s.Labels) }

// Snapshot is an immutable copy of a registry's instruments and sealed
// windows — the input to every exporter.
type Snapshot struct {
	// Window is the sampling period (0 when the series was disabled).
	Window sim.Duration `json:"window_ns"`
	// Times holds each sealed window's start, in virtual time.
	Times []sim.Time `json:"times_ns,omitempty"`
	// DroppedWindows counts windows sealed past MaxWindows.
	DroppedWindows uint64 `json:"dropped_windows,omitempty"`
	// Series lists every instrument in registration order.
	Series []Series `json:"series"`
}

// Snapshot seals every fully elapsed window, then copies the registry.
// A nil registry yields an empty snapshot. Sealing in Snapshot is what
// closes the tail windows of a run: windows otherwise seal lazily, on
// the first mutation past their boundary.
//
// On a sharded registry the snapshot is the deterministic merge of the
// root and every partition child: window start times come from the
// longest family member, series with the same identity merge in
// first-seen order (root first, then children in partition order) with
// totals, histogram buckets and per-window samples summed, and samples
// zero-pad to the merged window count. The merge is a pure function of
// the simulation, never of the worker count.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	if r.shards == nil {
		return r.snapshotLocal()
	}
	parts := make([]*Snapshot, 0, 1+len(r.shards))
	parts = append(parts, r.snapshotLocal())
	for _, c := range r.shards {
		parts = append(parts, c.snapshotLocal())
	}
	return mergeSnapshots(r.window, parts)
}

// snapshotLocal copies one registry's own instruments, ignoring any
// partition children.
func (r *Registry) snapshotLocal() *Snapshot {
	s := &Snapshot{}
	if r.window > 0 && r.clock != nil {
		if now := r.clock(); now >= r.next {
			r.seal(now)
		}
	}
	s.Window = r.window
	s.DroppedWindows = r.dropped
	s.Times = append([]sim.Time(nil), r.times...)
	s.Series = make([]Series, 0, len(r.insts))
	for _, in := range r.insts {
		se := Series{
			Name:    in.name,
			Labels:  in.labels,
			Help:    in.help,
			Kind:    in.kind,
			Samples: append([]float64(nil), in.samples...),
		}
		switch in.kind {
		case KindCounter:
			cur := in.count
			if in.probeC != nil {
				cur = in.probeC()
			}
			se.Total = float64(cur)
		case KindGauge:
			cur := in.gauge
			if in.probeG != nil {
				cur = in.probeG()
			}
			se.Total = float64(cur)
		case KindHistogram:
			se.Total = float64(in.count)
			se.Sum = float64(in.sum)
			se.Buckets = make([]Bucket, len(in.bucket))
			cum := uint64(0)
			for i, c := range in.bucket {
				cum += c
				le := int64(1<<63 - 1)
				if i < len(in.bounds) {
					le = in.bounds[i]
				}
				se.Buckets[i] = Bucket{Le: le, Count: cum}
			}
		}
		s.Series = append(s.Series, se)
	}
	return s
}

// mergeSnapshots folds per-partition snapshots into one. Times come
// from the longest member (every member seals the same aligned window
// sequence, so a shorter one is a strict prefix); dropped-window counts
// take the maximum for the same reason. Series merge by identity in
// first-seen order with totals, sums, cumulative buckets and samples
// added; samples zero-pad to the merged window count so every series
// keeps one value per sealed window.
func mergeSnapshots(window sim.Duration, parts []*Snapshot) *Snapshot {
	out := &Snapshot{Window: window}
	for _, p := range parts {
		if len(p.Times) > len(out.Times) {
			out.Times = p.Times
		}
		if p.DroppedWindows > out.DroppedWindows {
			out.DroppedWindows = p.DroppedWindows
		}
	}
	idx := map[string]int{}
	for _, p := range parts {
		for i := range p.Series {
			se := &p.Series[i]
			j, ok := idx[se.ID()]
			if !ok {
				idx[se.ID()] = len(out.Series)
				out.Series = append(out.Series, *se)
				continue
			}
			dst := &out.Series[j]
			dst.Total += se.Total
			dst.Sum += se.Sum
			dst.Buckets = addBuckets(dst.Buckets, se.Buckets)
			dst.Samples = addSamples(dst.Samples, se.Samples)
		}
	}
	for i := range out.Series {
		for len(out.Series[i].Samples) < len(out.Times) {
			out.Series[i].Samples = append(out.Series[i].Samples, 0)
		}
	}
	return out
}

// addBuckets sums two cumulative bucket tables elementwise. The tables
// come from instruments registered with identical bounds; a missing
// side passes through unchanged.
func addBuckets(a, b []Bucket) []Bucket {
	if len(a) == 0 {
		return b
	}
	for i := range a {
		if i < len(b) {
			a[i].Count += b[i].Count
		}
	}
	return a
}

// addSamples sums two per-window sample vectors elementwise, extending
// to the longer one (windows are aligned from virtual time zero, so a
// shorter vector is a prefix).
func addSamples(a, b []float64) []float64 {
	if len(b) > len(a) {
		a, b = append(make([]float64, 0, len(b)), b...), a
	}
	for i := range b {
		a[i] += b[i]
	}
	return a
}

// Find returns the series with the given name and labels, or nil.
func (s *Snapshot) Find(name, labels string) *Series {
	id := key(name, labels)
	for i := range s.Series {
		if s.Series[i].ID() == id {
			return &s.Series[i]
		}
	}
	return nil
}
