package sim

import (
	"fmt"
	"strings"
	"testing"
)

// ringWorld builds a world of parts partitions where each partition
// runs procs processes that alternate local jittered sleeps with
// cross-partition sends to the next partition (delivery lookahead
// ahead), bumping a per-partition counter on delivery. It exercises
// local scheduling, the outbox path, and barrier injection together.
func ringWorld(seed int64, parts, procs, rounds int, lookahead Duration) (*World, []int) {
	w := NewWorld(seed, parts, lookahead)
	counters := make([]int, parts)
	for pi := 0; pi < parts; pi++ {
		pi := pi
		src := w.Env(pi)
		dst := w.Env((pi + 1) % parts)
		for j := 0; j < procs; j++ {
			src.Spawn(fmt.Sprintf("p%d/%d", pi, j), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Sleep(Duration(p.Rand().Int63n(int64(lookahead))))
					tgt := (pi + 1) % parts
					src.Send(dst, p.Now().Add(lookahead), func() { counters[tgt]++ })
					p.Sleep(lookahead / 2)
				}
			})
		}
	}
	return w, counters
}

// TestWorldByteIdenticalAcrossWorkers is the sim-level half of the
// determinism contract: the complete dispatch sequence of every
// partition — times, sequence numbers and process names — must be
// identical for any worker count.
func TestWorldByteIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) (string, []int, uint64) {
		w, counters := ringWorld(7, 4, 3, 40, 2*Microsecond)
		logs := make([][]string, w.Parts())
		for i := 0; i < w.Parts(); i++ {
			i := i
			w.Env(i).dispatchHook = func(at Time, seq uint64, p *Proc) {
				name := "call"
				if p != nil {
					name = p.name
				}
				logs[i] = append(logs[i], fmt.Sprintf("%d@%d/%d:%s", i, int64(at), seq, name))
			}
		}
		w.SetWorkers(workers)
		if err := w.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sb strings.Builder
		for _, l := range logs {
			for _, s := range l {
				sb.WriteString(s)
				sb.WriteByte('\n')
			}
		}
		return sb.String(), counters, w.Dispatched()
	}
	base, baseCounters, baseEvents := run(1)
	if baseEvents == 0 {
		t.Fatal("no events dispatched")
	}
	for _, workers := range []int{2, 8} {
		got, counters, events := run(workers)
		if got != base {
			t.Fatalf("workers=%d dispatch sequence differs from workers=1", workers)
		}
		if events != baseEvents {
			t.Fatalf("workers=%d dispatched %d events, workers=1 dispatched %d", workers, events, baseEvents)
		}
		for i := range counters {
			if counters[i] != baseCounters[i] {
				t.Fatalf("workers=%d counter[%d]=%d, want %d", workers, i, counters[i], baseCounters[i])
			}
		}
	}
}

// TestWorldMatchesSingleEnvWhenOnePartition pins the degenerate case:
// a one-partition world is the sequential scheduler bit-for-bit.
func TestWorldMatchesSingleEnvWhenOnePartition(t *testing.T) {
	trace := func(spawn func(*Env)) string {
		var sb strings.Builder
		e := NewEnv(3)
		e.dispatchHook = func(at Time, seq uint64, p *Proc) {
			fmt.Fprintf(&sb, "%d/%d\n", int64(at), seq)
		}
		spawn(e)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	workload := func(e *Env) {
		for j := 0; j < 5; j++ {
			e.Spawn(fmt.Sprintf("p%d", j), func(p *Proc) {
				for r := 0; r < 20; r++ {
					p.Sleep(Duration(p.Rand().Int63n(900)))
				}
			})
		}
	}
	want := trace(workload)

	var sb strings.Builder
	w := NewWorld(3, 1, Microsecond)
	w.Env(0).dispatchHook = func(at Time, seq uint64, p *Proc) {
		fmt.Fprintf(&sb, "%d/%d\n", int64(at), seq)
	}
	workload(w.Env(0))
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatal("one-partition world diverged from the sequential scheduler")
	}
}

// TestWorldSendLookaheadViolationPanics pins the safety net: a
// cross-partition send inside the current window is a protocol bug and
// must fail loudly, not silently reorder.
func TestWorldSendLookaheadViolationPanics(t *testing.T) {
	w := NewWorld(1, 2, 10*Microsecond)
	w.Env(0).Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Send inside the window did not panic")
			}
		}()
		w.Env(0).Send(w.Env(1), p.Now(), func() {})
	})
	_ = w.Run()
}

// TestWorldDeadlock verifies the global deadlock check fires only when
// no partition can make progress.
func TestWorldDeadlock(t *testing.T) {
	w := NewWorld(1, 2, Microsecond)
	w.Env(0).Spawn("stuck", func(p *Proc) { p.Suspend() })
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want world deadlock error, got %v", err)
	}
}

// TestWorldCrossPartitionFailurePropagates verifies a panic in any
// partition surfaces as the run's error, and deterministically so (the
// lowest-numbered failing partition wins).
func TestWorldFailurePropagates(t *testing.T) {
	w := NewWorld(1, 2, Microsecond)
	w.Env(1).Spawn("boom", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("kaboom")
	})
	w.Env(0).Spawn("fine", func(p *Proc) { p.Sleep(5 * Microsecond) })
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want propagated panic, got %v", err)
	}
}

// TestMailboxZeroAlloc is the PR's AllocsPerRun guard for the
// cross-partition mailbox hot path: once the outboxes, gather buffers
// and heaps are warm, a full window cycle — enqueue via Send, barrier
// gather, sort, and heap injection — must allocate nothing. Measured
// at workers=1: the parallel path adds only the per-window worker
// goroutines, which are not per-message costs.
func TestMailboxZeroAlloc(t *testing.T) {
	w := NewWorld(11, 2, 2*Microsecond)
	a, b := w.Env(0), w.Env(1)
	hits := 0
	onDeliver := func() { hits++ }
	a.Spawn("sender", func(p *Proc) {
		for {
			for i := 0; i < 8; i++ {
				a.Send(b, p.Now().Add(2*Microsecond), onDeliver)
			}
			p.Sleep(2 * Microsecond)
		}
	})
	deadline := Time(0)
	step := func() {
		deadline = deadline.Add(20 * Microsecond)
		if err := w.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: grow the outbox, gather buffer and heap to steady state.
	for i := 0; i < 4; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(10, step)
	if allocs != 0 {
		t.Fatalf("mailbox window cycle allocates %v times per run, want 0", allocs)
	}
	if hits == 0 {
		t.Fatal("no messages delivered")
	}
}

// BenchmarkMailbox measures the cross-partition enqueue/drain path:
// one sender posting batches of deferred calls to the peer partition,
// windows advancing at the lookahead cadence.
func BenchmarkMailbox(bm *testing.B) {
	w := NewWorld(11, 2, 2*Microsecond)
	a, b := w.Env(0), w.Env(1)
	sink := 0
	onDeliver := func() { sink++ }
	a.Spawn("sender", func(p *Proc) {
		for {
			for i := 0; i < 8; i++ {
				a.Send(b, p.Now().Add(2*Microsecond), onDeliver)
			}
			p.Sleep(2 * Microsecond)
		}
	})
	deadline := Time(0)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		deadline = deadline.Add(2 * Microsecond)
		if err := w.RunUntil(deadline); err != nil {
			bm.Fatal(err)
		}
	}
	_ = sink
}
