package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	e := NewEnv(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5µs", woke)
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("env now %v, want 5µs", e.Now())
	}
}

func TestSleepOrdering(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		order = append(order, "b")
	})
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		order = append(order, "a")
	})
	e.Spawn("c", func(p *Proc) {
		p.Sleep(2 * Microsecond) // same time as b; b spawned first so runs first
		order = append(order, "c")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSpawnTieBreakIsSpawnOrder(t *testing.T) {
	e := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn("p", func(p *Proc) { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not spawn order", order)
		}
	}
}

func TestYieldInterleaves(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEnv(1)
	q := NewWaitQueue("test")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(Microsecond)
		if n := q.Wake(1); n != 1 {
			t.Errorf("Wake(1) released %d", n)
		}
		p.Sleep(Microsecond)
		q.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v not FIFO", order)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEnv(1)
	q := NewWaitQueue("never")
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("boom", func(p *Proc) { panic("kaboom") })
	if err := e.Run(); err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEnv(1)
	m := NewMutex("m")
	inside := 0
	max := 0
	for i := 0; i < 8; i++ {
		e.Spawn("locker", func(p *Proc) {
			for j := 0; j < 5; j++ {
				m.Lock(p)
				inside++
				if inside > max {
					max = inside
				}
				p.Sleep(Microsecond)
				inside--
				m.Unlock()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("mutex admitted %d holders", max)
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEnv(1)
	m := NewMutex("m")
	e.Spawn("p", func(p *Proc) {
		if !m.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock() {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock()
		if !m.TryLock() {
			t.Error("TryLock after Unlock failed")
		}
		m.Unlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEnv(1)
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * Microsecond)
			ticks++
		}
	})
	if err := e.RunUntil(Time(55 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != Time(55*Microsecond) {
		t.Fatalf("now = %v, want 55µs", e.Now())
	}
}

func TestStopEndsRun(t *testing.T) {
	e := NewEnv(1)
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			ticks++
			if ticks == 3 {
				p.Env().Stop()
				return
			}
		}
	})
	e.Spawn("other", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	trace := func(seed int64) []int64 {
		e := NewEnv(seed)
		var out []int64
		for i := 0; i < 4; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(p.Rand().Intn(100)) * Microsecond)
					out = append(out, int64(p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatal("different trace lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEnv(1)
	var started Time
	e.SpawnAt("late", Time(40*Microsecond), func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != Time(40*Microsecond) {
		t.Fatalf("started at %v, want 40µs", started)
	}
}

func TestSpawnFromInsideProc(t *testing.T) {
	e := NewEnv(1)
	childRan := false
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Microsecond)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(Microsecond)
			childRan = true
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if e.Now() != Time(2*Microsecond) {
		t.Fatalf("now = %v, want 2µs", e.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		500 * Nanosecond:      "500ns",
		2 * Microsecond:       "2.000µs",
		1500 * Microsecond:    "1.500ms",
		2500 * Millisecond:    "2.500s",
		3*Microsecond + 500:   "3.500µs",
		Duration(1) * Second:  "1.000s",
		250 * Millisecond / 2: "125.000ms",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

// Property: for any set of sleep durations, processes wake in
// nondecreasing time order and the clock never goes backwards.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv(7)
		var wakes []Time
		for _, d := range delays {
			d := Duration(d) * Microsecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i] < wakes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO mutex hands the lock to waiters in request order.
func TestQuickMutexFIFOUnderLoad(t *testing.T) {
	f := func(n uint8) bool {
		workers := int(n%16) + 2
		e := NewEnv(3)
		m := NewMutex("m")
		var got []int
		for i := 0; i < workers; i++ {
			i := i
			e.Spawn("w", func(p *Proc) {
				p.Sleep(Duration(i)) // stagger arrival: i ns apart
				m.Lock(p)
				p.Sleep(Microsecond)
				got = append(got, i)
				m.Unlock()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEnv(1)
	e.Spawn("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestWaitQueueSetNameAppearsInDeadlockReport(t *testing.T) {
	e := NewEnv(1)
	q := NewWaitQueue("anon")
	q.SetName("descriptive-name")
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	if !strings.Contains(err.Error(), "descriptive-name") {
		t.Fatalf("deadlock report %q misses queue name", err)
	}
}

func TestWaitingProcsSnapshot(t *testing.T) {
	e := NewEnv(1)
	q := NewWaitQueue("park")
	e.Spawn("a", func(p *Proc) { q.Wait(p) })
	e.Spawn("b", func(p *Proc) {
		p.Sleep(Microsecond)
		if got := len(p.Env().WaitingProcs()); got != 1 {
			t.Errorf("WaitingProcs = %d, want 1", got)
		}
		q.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.WaitingProcs()); got != 0 {
		t.Fatalf("WaitingProcs after run = %d", got)
	}
}
