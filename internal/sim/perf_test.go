package sim

import (
	"fmt"
	"testing"
)

// BenchmarkDispatch measures the scheduler's raw dispatch rate with a
// realistically deep event heap: 64 processes sleeping in staggered
// loops, so every dispatch pays a real heap sift.
func BenchmarkDispatch(b *testing.B) {
	e := NewEnv(1)
	per := b.N/64 + 1
	for i := 0; i < 64; i++ {
		d := Duration(1+i%7) * Microsecond
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(d)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestDispatchSteadyStateZeroAlloc pins the zero-allocation dispatch
// contract: once processes are spawned and the event heap has grown to
// its working size, running the scheduler allocates nothing.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	e := NewEnv(1)
	for i := 0; i < 8; i++ {
		d := Duration(1+i%3) * Microsecond
		e.Spawn(fmt.Sprintf("spinner%d", i), func(p *Proc) {
			for {
				p.Sleep(d)
			}
		})
	}
	deadline := Time(0)
	step := func() {
		deadline += Time(100 * Microsecond)
		if err := e.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm up: heap growth, proc shells, goroutine handoff
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Fatalf("steady-state dispatch allocates %.1f objects per 100µs window, want 0", avg)
	}
}

// TestStopOutsideProcPanics pins Stop's contract: calling it from
// outside a running process (or CallAt function) would race the run
// loop, so it must panic instead of silently corrupting state.
func TestStopOutsideProcPanics(t *testing.T) {
	e := NewEnv(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Stop from outside a running process did not panic")
		}
	}()
	e.Stop()
}

// TestStopInsideProcAllowed is the positive half: from process context
// Stop is the documented way to end a run.
func TestStopInsideProcAllowed(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("stopper", func(p *Proc) {
		p.Sleep(Microsecond)
		e.Stop()
		p.Sleep(Second) // never dispatched
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() false after in-process Stop")
	}
}

// dispatchRec is one observed scheduler dispatch.
type dispatchRec struct {
	at   Time
	seq  uint64
	name string
}

// nopObserver stands in for a tracing recorder: it receives every
// lifecycle callback and must not perturb the schedule.
type nopObserver struct{ calls int }

func (o *nopObserver) ProcSpawn(string, Time)         { o.calls++ }
func (o *nopObserver) ProcBlock(string, string, Time) { o.calls++ }
func (o *nopObserver) ProcWake(string, Time)          { o.calls++ }
func (o *nopObserver) ProcFinish(string, Time)        { o.calls++ }

// contendedRun drives a small contended workload — shared mutex,
// shared wait queue, rng-jittered sleeps — and returns the complete
// dispatch sequence the scheduler produced.
func contendedRun(t *testing.T, seed int64, obs Observer) []dispatchRec {
	t.Helper()
	e := NewEnv(seed)
	if obs != nil {
		e.SetObserver(obs)
	}
	var recs []dispatchRec
	e.dispatchHook = func(at Time, seq uint64, p *Proc) {
		name := ""
		if p != nil {
			name = p.Name()
		}
		recs = append(recs, dispatchRec{at, seq, name})
	}
	mu := NewMutex("shared")
	q := NewWaitQueue("turnstile")
	token := 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			for iter := 0; iter < 20; iter++ {
				p.Sleep(Duration(1 + p.Rand().Int63n(5)))
				mu.Lock(p)
				token++
				if token%4 == 0 {
					q.WakeAll()
				}
				mu.Unlock()
				if token%5 == 1 {
					q.Wait(p)
				}
			}
			q.WakeAll() // let stragglers drain
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestDispatchSequenceDeterminism is the property behind every golden
// test in this repository: the same seed yields the exact same
// (time, seq, process) dispatch sequence, and attaching an observer —
// how tracing hooks in — does not move a single event.
func TestDispatchSequenceDeterminism(t *testing.T) {
	base := contendedRun(t, 7, nil)
	if len(base) == 0 {
		t.Fatal("no dispatches recorded")
	}
	rerun := contendedRun(t, 7, nil)
	obs := &nopObserver{}
	observed := contendedRun(t, 7, obs)
	if obs.calls == 0 {
		t.Fatal("observer never invoked")
	}
	for name, got := range map[string][]dispatchRec{"rerun": rerun, "observed": observed} {
		if len(got) != len(base) {
			t.Fatalf("%s dispatched %d events, base %d", name, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s diverges at dispatch %d: %+v vs %+v", name, i, got[i], base[i])
			}
		}
	}
	other := contendedRun(t, 8, nil)
	if len(other) == len(base) {
		same := true
		for i := range base {
			if other[i] != base[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules; rng is not feeding the schedule")
		}
	}
}
