// Package sim implements a deterministic cooperative discrete-event
// simulator. All protocol code in this repository runs inside sim
// processes: virtual time advances only when every process is blocked,
// exactly one process executes at a time, and ties are broken by spawn
// order, so a run is fully reproducible for a given seed.
//
// The simulator exists because the paper's behaviour is measured in
// microseconds of network round-trips; wall-clock goroutine scheduling
// cannot reproduce that reliably, and virtual time lets tests assert
// exact round-trip counts and latencies.
//
// The scheduler is built for wall-clock speed as much as determinism:
// the event queue is a hand-rolled non-boxing min-heap (no
// container/heap interface traffic), wait bookkeeping lives on the
// Proc itself rather than in side maps, finished Proc shells are
// pooled for reuse by later Spawns, and deferred calls (CallAt) let
// I/O models apply side effects at an exact virtual instant without
// waking the issuing process twice. Dispatched events are counted so
// harnesses can report events/sec.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Micros reports the duration as a float number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration as a float number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Add advances a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration between two Times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is one heap entry: either a process wakeup (proc != nil) or a
// deferred call (fn != nil). Exactly one of the two is set. gen guards
// against waking a pooled Proc shell that has been reused since the
// event was queued.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func()
	gen  uint32
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap would box every event through an interface on push
// and pop; this is the hottest data structure in the repository, so it
// stays monomorphic.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release proc/fn references
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s.less(r, l) {
			min = r
		}
		if !s.less(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Observer receives scheduler lifecycle callbacks: process spawn,
// parking on a wait queue, wakeup, and exit. Observers must not touch
// the environment (no Spawn, no clock access beyond the at argument) —
// they exist for tracing, and tracing must not perturb the schedule.
type Observer interface {
	ProcSpawn(name string, at Time)
	ProcBlock(name, queue string, at Time)
	ProcWake(name string, at Time)
	ProcFinish(name string, at Time)
}

// Env is a simulation environment: a virtual clock, an event queue and
// a set of cooperative processes.
type Env struct {
	now        Time
	events     eventHeap
	seq        uint64
	ack        chan struct{}
	rng        *rand.Rand
	live       int // processes spawned and not yet finished
	waiting    int // processes parked with no pending wake event
	stopped    bool
	failure    error
	obs        Observer
	dispatched uint64 // events dispatched across all Run calls

	// procs holds every distinct Proc shell ever spawned (live,
	// finished, and pooled); it is the lazy scan set for deadlock
	// reports. free is the pool of finished shells ready for reuse.
	procs []*Proc
	free  []*Proc

	// current is the process the scheduler has handed control to, nil
	// between dispatches; inCall is true while a deferred CallAt
	// function runs. Together they enforce Stop's contract.
	current *Proc
	inCall  bool

	// dispatchHook, when non-nil, observes every dispatched event
	// (tests use it to assert full-sequence determinism).
	dispatchHook func(at Time, seq uint64, p *Proc)

	// world/part/outs wire the environment into a partitioned World
	// (see world.go): part is the partition index and outs the per-pair
	// cross-partition mailboxes. All nil/zero for a standalone Env.
	world *World
	part  int
	outs  []outbox
}

// SetObserver installs obs to receive scheduler lifecycle events. A
// nil obs disables observation.
func (e *Env) SetObserver(obs Observer) { e.obs = obs }

// NewEnv returns an empty environment whose random source is seeded
// with seed.
func NewEnv(seed int64) *Env {
	e := &Env{
		ack:    make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		events: make(eventHeap, 0, 64),
	}
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must
// only be used from the currently running process (or outside Run),
// which the cooperative scheduler guarantees.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Live reports the number of processes that have been spawned and have
// not yet finished.
func (e *Env) Live() int { return e.live }

// Waiting reports the number of processes currently parked on wait
// queues or suspended with no pending wake event. Live() - Waiting() is
// the runnable-process count the metrics plane samples per window.
func (e *Env) Waiting() int { return e.waiting }

// Dispatched reports the total number of events the scheduler has
// dispatched (process wakeups and deferred calls) across every Run and
// RunUntil on this environment. It is the denominator-free half of an
// events/sec measurement.
func (e *Env) Dispatched() uint64 { return e.dispatched }

// Proc is a simulated process. Its function runs on a dedicated
// goroutine but only while the scheduler has handed it control;
// everything it does between two blocking calls is atomic in virtual
// time.
//
// Finished Proc shells (struct and resume channel) are pooled and
// reused by later Spawns; gen disambiguates incarnations so a stale
// queued event can never wake a reused shell.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	fn     func(*Proc)
	gen    uint32

	// waiting/waitQ are the Proc-resident wait bookkeeping: set while
	// the process is parked on a WaitQueue (or suspended awaiting a
	// deferred resume), with the queue label for deadlock reports.
	// Keeping them here avoids a map mutation on every Wait/Wake.
	waiting bool
	waitQ   string

	// traceCtx carries an opaque per-process tracing context (the
	// current transaction span). It lives here so lower layers (the
	// fabric) can attribute work to the span without importing the
	// tracing package or the engine.
	traceCtx any

	// whyCtx carries the per-process causality context (the current
	// transaction's wait-for node), kept separate from traceCtx so the
	// two observability layers enable independently.
	whyCtx any

	// flightCtx carries the per-process flight-recorder context (the
	// current transaction's latency-budget record), independent of the
	// other observability contexts for the same reason.
	flightCtx any
}

// TraceCtx returns the process's tracing context, or nil.
func (p *Proc) TraceCtx() any { return p.traceCtx }

// SetTraceCtx attaches a tracing context to the process.
func (p *Proc) SetTraceCtx(ctx any) { p.traceCtx = ctx }

// WhyCtx returns the process's causality context, or nil.
func (p *Proc) WhyCtx() any { return p.whyCtx }

// SetWhyCtx attaches a causality context to the process.
func (p *Proc) SetWhyCtx(ctx any) { p.whyCtx = ctx }

// FlightCtx returns the process's flight-recorder context, or nil.
func (p *Proc) FlightCtx() any { return p.flightCtx }

// SetFlightCtx attaches a flight-recorder context to the process.
func (p *Proc) SetFlightCtx(ctx any) { p.flightCtx = ctx }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the deterministic random source shared by the
// environment.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// newProc returns a ready Proc shell: pooled if one is free, freshly
// allocated otherwise. The caller schedules it and starts its
// goroutine.
func (e *Env) newProc(name string, fn func(*Proc)) *Proc {
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.name, p.fn = name, fn
		p.done = false
		p.waiting = false
		p.waitQ = ""
		p.traceCtx = nil
		p.whyCtx = nil
		p.flightCtx = nil
		p.gen++
		return p
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{}), fn: fn}
	e.procs = append(e.procs, p)
	return p
}

// Spawn creates a process and schedules it to start at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	p := e.newProc(name, fn)
	e.live++
	e.schedule(p, e.now)
	if e.obs != nil {
		e.obs.ProcSpawn(name, e.now)
	}
	go p.run()
	return p
}

// SpawnAt is Spawn with an explicit start time, which must not be in
// the past.
func (e *Env) SpawnAt(name string, at Time, fn func(*Proc)) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", at, e.now))
	}
	p := e.newProc(name, fn)
	e.live++
	e.schedule(p, at)
	if e.obs != nil {
		e.obs.ProcSpawn(name, at)
	}
	go p.run()
	return p
}

func (e *Env) schedule(p *Proc, at Time) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p, gen: p.gen})
}

// CallAt schedules fn to run at virtual time at, which must not be in
// the past. The call executes on the scheduler goroutine, between
// process dispatches, atomically at its instant: fn may inspect the
// environment, mutate model state and Resume suspended processes, but
// it must not block, park, or run for unbounded time. Ties with
// process wakeups at the same instant are broken by schedule order
// (seq), exactly as between two wakeups.
//
// CallAt exists for I/O models: the RDMA fabric applies a verb batch
// at the round-trip midpoint via CallAt while the issuing process
// stays parked until the completion instant, halving the goroutine
// context switches per round-trip.
func (e *Env) CallAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: CallAt(%v) in the past (now %v)", at, e.now))
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// Suspend parks the calling process with no scheduled wakeup. A
// deferred call (CallAt) or another process must later Resume it;
// until then it counts as waiting in deadlock reports, labelled
// "suspended". Suspend is the single-park primitive beneath the
// fabric's round-trip model.
func (p *Proc) Suspend() {
	p.waiting = true
	p.waitQ = "suspended"
	p.env.waiting++
	p.park()
}

// Resume schedules a Suspended process to continue at time at (not in
// the past). It is the counterpart of Suspend and is typically called
// from a CallAt function.
func (e *Env) Resume(p *Proc, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: Resume(%v) in the past (now %v)", at, e.now))
	}
	if !p.waiting {
		panic(fmt.Sprintf("sim: Resume of process %q that is not suspended", p.name))
	}
	p.waiting = false
	p.waitQ = ""
	e.waiting--
	e.schedule(p, at)
}

func (p *Proc) run() {
	<-p.resume // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			n := runtime.Stack(buf, false)
			p.env.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, buf[:n])
		}
		p.done = true
		p.env.live--
		if p.env.obs != nil {
			p.env.obs.ProcFinish(p.name, p.env.now)
		}
		// Return the shell to the pool before handing control back:
		// the scheduler is blocked on ack, so no Spawn can race the
		// reuse, and this goroutine touches p no further.
		p.env.free = append(p.env.free, p)
		p.env.ack <- struct{}{}
	}()
	p.fn(p)
}

// park yields control back to the scheduler and blocks until the next
// dispatch.
func (p *Proc) park() {
	p.env.ack <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. A non-positive d
// yields the processor: the process is rescheduled at the current time
// behind every event already queued for it.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now.Add(d))
	p.park()
}

// Yield reschedules the process at the current virtual time, letting
// any other runnable process at this instant execute first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until none remain or Stop is called. It
// returns an error if a process panicked, or if processes remain
// parked on wait queues with no pending event (a deadlock).
func (e *Env) Run() error { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil dispatches events with time ≤ deadline. Events beyond the
// deadline stay queued; the clock is left at the last dispatched
// event (or the deadline if nothing ran past it).
func (e *Env) RunUntil(deadline Time) error {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			e.now = deadline
			return e.failure
		}
		ev := e.events.pop()
		if ev.fn == nil && (ev.proc.done || ev.proc.gen != ev.gen) {
			continue // stale wakeup for a finished or reused process
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatched++
		if e.dispatchHook != nil {
			e.dispatchHook(ev.at, ev.seq, ev.proc)
		}
		if ev.fn != nil {
			e.inCall = true
			ev.fn()
			e.inCall = false
			continue
		}
		e.current = ev.proc
		ev.proc.resume <- struct{}{}
		<-e.ack
		e.current = nil
		if e.failure != nil {
			return e.failure
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if !e.stopped && e.waiting > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked forever: %v",
			e.now, e.waiting, e.waiterNames())
	}
	return nil
}

// maxWaiterNames bounds how many parked processes a deadlock or
// diagnostic report lists (and how much sorting work building the
// report does).
const maxWaiterNames = 40

// waiterNames lists the parked processes by scanning the Proc-resident
// wait flags — nothing is maintained on the Wait/Wake hot path. The
// report holds the lexicographically first maxWaiterNames entries in
// sorted order; beyond that, work is capped with a bounded insertion
// rather than a full sort.
func (e *Env) waiterNames() []string {
	names := make([]string, 0, min(e.waiting, maxWaiterNames))
	total := 0
	for _, p := range e.procs {
		if !p.waiting {
			continue
		}
		total++
		name := p.name + " @ " + p.waitQ
		i := sort.SearchStrings(names, name)
		switch {
		case len(names) < maxWaiterNames:
			names = append(names, "")
			copy(names[i+1:], names[i:])
			names[i] = name
		case i < maxWaiterNames:
			copy(names[i+1:], names[i:maxWaiterNames-1])
			names[i] = name
		}
	}
	if total > maxWaiterNames {
		names = append(names, "...")
	}
	return names
}

// Stop makes Run return after the current event completes. Parked
// processes are abandoned (their goroutines stay blocked until the
// process exits, which is fine for one-shot simulations).
//
// Stop must be called from inside a running process (or a CallAt
// function); calling it from outside the scheduler would race the run
// loop, so it panics instead.
func (e *Env) Stop() {
	if e.current == nil && !e.inCall {
		panic("sim: Stop called from outside a running process; " +
			"call it from process or CallAt context so the run loop observes it safely")
	}
	e.stopped = true
}

// Stopped reports whether Stop has been called during the current Run.
func (e *Env) Stopped() bool { return e.stopped }

// WaitQueue is a FIFO queue of parked processes. Processes enter with
// Wait and are released, in order, by Wake or WakeAll. It is the
// primitive beneath Mutex and Cond.
type WaitQueue struct {
	name string
	ps   []*Proc
}

// NewWaitQueue returns a queue labelled name (used in deadlock
// reports).
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Len reports the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.ps) }

// Wait parks p until another process wakes it. The wakeup happens at
// the waker's current virtual time.
func (q *WaitQueue) Wait(p *Proc) {
	q.ps = append(q.ps, p)
	p.waiting = true
	p.waitQ = q.name
	p.env.waiting++
	if p.env.obs != nil {
		p.env.obs.ProcBlock(p.name, q.name, p.env.now)
	}
	p.park()
}

// Wake releases up to n parked processes (all of them if n < 0),
// scheduling each at the current virtual time. It returns how many
// were released.
func (q *WaitQueue) Wake(n int) int {
	if n < 0 || n > len(q.ps) {
		n = len(q.ps)
	}
	for i := 0; i < n; i++ {
		p := q.ps[i]
		p.waiting = false
		p.waitQ = ""
		p.env.waiting--
		p.env.schedule(p, p.env.now)
		if p.env.obs != nil {
			p.env.obs.ProcWake(p.name, p.env.now)
		}
	}
	q.ps = q.ps[:copy(q.ps, q.ps[n:])]
	return n
}

// WakeAll releases every parked process.
func (q *WaitQueue) WakeAll() int { return q.Wake(-1) }

// Mutex is a FIFO mutual-exclusion lock for simulated processes.
type Mutex struct {
	held bool
	q    WaitQueue
}

// NewMutex returns an unlocked mutex labelled name.
func NewMutex(name string) *Mutex { return &Mutex{q: WaitQueue{name: "mutex " + name}} }

// Lock blocks p until the mutex is available, granting it in FIFO
// order.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.q.Wait(p)
	}
	m.held = true
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex and wakes the first waiter, if any.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.held = false
	m.q.Wake(1)
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.held }

// WaitingProcs lists processes parked on wait queues right now, with
// their queue labels (diagnostics).
func (e *Env) WaitingProcs() []string { return e.waiterNames() }

// SetName labels the queue for deadlock and diagnostic reports.
func (q *WaitQueue) SetName(name string) { q.name = name }
