// Package sim implements a deterministic cooperative discrete-event
// simulator. All protocol code in this repository runs inside sim
// processes: virtual time advances only when every process is blocked,
// exactly one process executes at a time, and ties are broken by spawn
// order, so a run is fully reproducible for a given seed.
//
// The simulator exists because the paper's behaviour is measured in
// microseconds of network round-trips; wall-clock goroutine scheduling
// cannot reproduce that reliably, and virtual time lets tests assert
// exact round-trip counts and latencies.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Micros reports the duration as a float number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration as a float number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Add advances a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration between two Times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Observer receives scheduler lifecycle callbacks: process spawn,
// parking on a wait queue, wakeup, and exit. Observers must not touch
// the environment (no Spawn, no clock access beyond the at argument) —
// they exist for tracing, and tracing must not perturb the schedule.
type Observer interface {
	ProcSpawn(name string, at Time)
	ProcBlock(name, queue string, at Time)
	ProcWake(name string, at Time)
	ProcFinish(name string, at Time)
}

// Env is a simulation environment: a virtual clock, an event queue and
// a set of cooperative processes.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	ack     chan struct{}
	rng     *rand.Rand
	live    int // processes spawned and not yet finished
	waiting int // processes parked on a WaitQueue (no pending event)
	waiters map[*Proc]string
	stopped bool
	failure error
	obs     Observer
}

// SetObserver installs obs to receive scheduler lifecycle events. A
// nil obs disables observation.
func (e *Env) SetObserver(obs Observer) { e.obs = obs }

// NewEnv returns an empty environment whose random source is seeded
// with seed.
func NewEnv(seed int64) *Env {
	e := &Env{
		ack:     make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		waiters: map[*Proc]string{},
		events:  make(eventHeap, 0, 64),
	}
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must
// only be used from the currently running process (or outside Run),
// which the cooperative scheduler guarantees.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Live reports the number of processes that have been spawned and have
// not yet finished.
func (e *Env) Live() int { return e.live }

// Proc is a simulated process. Its function runs on a dedicated
// goroutine but only while the scheduler has handed it control;
// everything it does between two blocking calls is atomic in virtual
// time.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	fn     func(*Proc)

	// traceCtx carries an opaque per-process tracing context (the
	// current transaction span). It lives here so lower layers (the
	// fabric) can attribute work to the span without importing the
	// tracing package or the engine.
	traceCtx any
}

// TraceCtx returns the process's tracing context, or nil.
func (p *Proc) TraceCtx() any { return p.traceCtx }

// SetTraceCtx attaches a tracing context to the process.
func (p *Proc) SetTraceCtx(ctx any) { p.traceCtx = ctx }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the deterministic random source shared by the
// environment.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// Spawn creates a process and schedules it to start at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{}), fn: fn}
	e.live++
	e.schedule(p, e.now)
	if e.obs != nil {
		e.obs.ProcSpawn(name, e.now)
	}
	go p.run()
	return p
}

// SpawnAt is Spawn with an explicit start time, which must not be in
// the past.
func (e *Env) SpawnAt(name string, at Time, fn func(*Proc)) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", at, e.now))
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{}), fn: fn}
	e.live++
	e.schedule(p, at)
	if e.obs != nil {
		e.obs.ProcSpawn(name, at)
	}
	go p.run()
	return p
}

func (e *Env) schedule(p *Proc, at Time) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p})
}

func (p *Proc) run() {
	<-p.resume // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			n := runtime.Stack(buf, false)
			p.env.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, buf[:n])
		}
		p.done = true
		p.env.live--
		if p.env.obs != nil {
			p.env.obs.ProcFinish(p.name, p.env.now)
		}
		p.env.ack <- struct{}{}
	}()
	p.fn(p)
}

// park yields control back to the scheduler and blocks until the next
// dispatch.
func (p *Proc) park() {
	p.env.ack <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. A non-positive d
// yields the processor: the process is rescheduled at the current time
// behind every event already queued for it.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now.Add(d))
	p.park()
}

// Yield reschedules the process at the current virtual time, letting
// any other runnable process at this instant execute first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until none remain or Stop is called. It
// returns an error if a process panicked, or if processes remain
// parked on wait queues with no pending event (a deadlock).
func (e *Env) Run() error { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil dispatches events with time ≤ deadline. Events beyond the
// deadline stay queued; the clock is left at the last dispatched
// event (or the deadline if nothing ran past it).
func (e *Env) RunUntil(deadline Time) error {
	e.stopped = false
	for !e.events.empty() && !e.stopped {
		if e.events.peek().at > deadline {
			e.now = deadline
			return e.failure
		}
		ev := e.events.pop()
		if ev.proc.done {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.proc.resume <- struct{}{}
		<-e.ack
		if e.failure != nil {
			return e.failure
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if !e.stopped && e.waiting > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked forever: %v",
			e.now, e.waiting, e.waiterNames())
	}
	return nil
}

func (e *Env) waiterNames() []string {
	names := make([]string, 0, len(e.waiters))
	for p, where := range e.waiters {
		names = append(names, p.name+" @ "+where)
	}
	sort.Strings(names)
	if len(names) > 40 {
		names = append(names[:40], "...")
	}
	return names
}

// Stop makes Run return after the current event completes. Parked
// processes are abandoned (their goroutines stay blocked until the
// process exits, which is fine for one-shot simulations).
//
// Stop must be called from inside a running process.
func (e *Env) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called during the current Run.
func (e *Env) Stopped() bool { return e.stopped }

// WaitQueue is a FIFO queue of parked processes. Processes enter with
// Wait and are released, in order, by Wake or WakeAll. It is the
// primitive beneath Mutex and Cond.
type WaitQueue struct {
	name string
	ps   []*Proc
}

// NewWaitQueue returns a queue labelled name (used in deadlock
// reports).
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Len reports the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.ps) }

// Wait parks p until another process wakes it. The wakeup happens at
// the waker's current virtual time.
func (q *WaitQueue) Wait(p *Proc) {
	q.ps = append(q.ps, p)
	p.env.waiting++
	p.env.waiters[p] = q.name
	if p.env.obs != nil {
		p.env.obs.ProcBlock(p.name, q.name, p.env.now)
	}
	p.park()
}

// Wake releases up to n parked processes (all of them if n < 0),
// scheduling each at the current virtual time. It returns how many
// were released.
func (q *WaitQueue) Wake(n int) int {
	if n < 0 || n > len(q.ps) {
		n = len(q.ps)
	}
	for i := 0; i < n; i++ {
		p := q.ps[i]
		p.env.waiting--
		delete(p.env.waiters, p)
		p.env.schedule(p, p.env.now)
		if p.env.obs != nil {
			p.env.obs.ProcWake(p.name, p.env.now)
		}
	}
	q.ps = q.ps[:copy(q.ps, q.ps[n:])]
	return n
}

// WakeAll releases every parked process.
func (q *WaitQueue) WakeAll() int { return q.Wake(-1) }

// Mutex is a FIFO mutual-exclusion lock for simulated processes.
type Mutex struct {
	held bool
	q    WaitQueue
}

// NewMutex returns an unlocked mutex labelled name.
func NewMutex(name string) *Mutex { return &Mutex{q: WaitQueue{name: "mutex " + name}} }

// Lock blocks p until the mutex is available, granting it in FIFO
// order.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.q.Wait(p)
	}
	m.held = true
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex and wakes the first waiter, if any.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.held = false
	m.q.Wake(1)
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.held }

// WaitingProcs lists processes parked on wait queues right now, with
// their queue labels (diagnostics).
func (e *Env) WaitingProcs() []string { return e.waiterNames() }

// SetName labels the queue for deadlock and diagnostic reports.
func (q *WaitQueue) SetName(name string) { q.name = name }
