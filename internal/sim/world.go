// Conservative parallel discrete-event simulation: a World is a set of
// partition environments that advance in lock-stepped time windows on
// real goroutines.
//
// The synchronization protocol is classic conservative lookahead
// (Chandy–Misra style, with a global window barrier instead of per-link
// null messages). Let E_min be the earliest pending event across every
// partition and L the lookahead — the minimum virtual delay of any
// cross-partition interaction. Every partition may then dispatch all
// events with time ≤ E_min + L − 1 without hearing from its peers:
// anything a peer sends while executing this window carries a delivery
// time ≥ (its current time) + L ≥ E_min + L, which lies strictly beyond
// the window. Cross-partition sends travel through per-pair outboxes
// and are injected into target heaps at the barrier between windows,
// sorted by (delivery time, source partition, per-pair sequence), so
// the merged order is a pure function of the simulation state — never
// of the number of worker threads or their scheduling.
//
// Worker count therefore only selects how many partitions execute
// concurrently inside one window; one thread or sixteen produce
// bit-identical schedules, which is what lets golden tests pin the
// output while the wall clock scales with shards × workers.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxTime is the sentinel deadline used by Run (drain to completion).
const maxTime = Time(1<<62 - 1)

// xmsg is one cross-partition deferred call in flight: fn must execute
// in the target partition at virtual time at. src and seq give the
// deterministic merge order for ties at the same instant.
type xmsg struct {
	at  Time
	seq uint64
	src int32
	fn  func()
}

// outbox is one ordered source→target mailbox. seq counts every
// message ever sent on the pair, so ties at one delivery instant merge
// in send order.
type outbox struct {
	msgs []xmsg
	seq  uint64
}

// inbatch is a target partition's reusable gather-and-sort buffer for
// one barrier's incoming messages. It implements sort.Interface so the
// barrier sorts without allocating.
type inbatch struct{ msgs []xmsg }

func (b *inbatch) Len() int      { return len(b.msgs) }
func (b *inbatch) Swap(i, j int) { b.msgs[i], b.msgs[j] = b.msgs[j], b.msgs[i] }
func (b *inbatch) Less(i, j int) bool {
	x, y := &b.msgs[i], &b.msgs[j]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.src != y.src {
		return x.src < y.src
	}
	return x.seq < y.seq
}

// World is a partitioned simulation: one Env per partition, advancing
// together through conservative time windows. Processes and deferred
// calls live in exactly one partition; interactions that cross
// partitions must be routed through Env.Send with a delay of at least
// the world's lookahead.
type World struct {
	envs      []*Env
	lookahead Duration
	workers   int
	in        []inbatch
	// bound is the inclusive end of the window currently executing;
	// Send validates the lookahead contract against it. It is written
	// only between windows.
	bound Time

	// Persistent window-execution pool, alive only inside RunUntil:
	// spawning goroutines per window would cost more than many windows
	// contain. workC hands each helper one window bound; next is the
	// shared partition cursor; wg is the window barrier.
	workC chan Time
	next  int64
	wg    sync.WaitGroup

	// rt collects executor introspection (see runtime.go): window and
	// mailbox counters plus wall-clock timings, exposed via RuntimeStats.
	rt worldRuntime
}

// NewWorld creates a world of parts partitions. Partition 0's random
// stream is seeded with seed exactly like NewEnv(seed); the other
// partitions draw their seeds from a splitmix of (seed, partition), so
// every partition has an independent deterministic stream. lookahead
// is the minimum virtual delay of any cross-partition interaction and
// must be positive.
func NewWorld(seed int64, parts int, lookahead Duration) *World {
	if parts < 1 {
		panic("sim: NewWorld needs at least one partition")
	}
	if lookahead <= 0 {
		panic("sim: NewWorld needs a positive lookahead")
	}
	w := &World{
		envs:      make([]*Env, parts),
		lookahead: lookahead,
		workers:   1,
		in:        make([]inbatch, parts),
	}
	w.rt.injected = make([]uint64, parts)
	w.rt.mailboxHWM = make([]int, parts)
	w.rt.busyNS = make([]int64, parts)
	for i := range w.envs {
		e := NewEnv(partSeed(seed, i))
		e.world = w
		e.part = i
		e.outs = make([]outbox, parts)
		w.envs[i] = e
	}
	return w
}

// partSeed derives partition i's random seed: the caller's seed
// verbatim for partition 0, a splitmix64 mix otherwise.
func partSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Env returns partition i's environment.
func (w *World) Env(i int) *Env { return w.envs[i] }

// Parts returns the number of partitions.
func (w *World) Parts() int { return len(w.envs) }

// Lookahead returns the world's conservative lookahead.
func (w *World) Lookahead() Duration { return w.lookahead }

// SetWorkers sets how many OS threads execute partitions concurrently
// within a window. It only affects wall-clock speed: the schedule is
// identical for every worker count. Values outside [1, Parts()] are
// clamped.
func (w *World) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(w.envs) {
		n = len(w.envs)
	}
	w.workers = n
}

// Workers returns the configured worker count (after clamping).
func (w *World) Workers() int { return w.workers }

// Dispatched sums the partitions' dispatched-event counters.
func (w *World) Dispatched() uint64 {
	var n uint64
	for _, e := range w.envs {
		n += e.dispatched
	}
	return n
}

// Live sums the partitions' live-process counts.
func (w *World) Live() int {
	n := 0
	for _, e := range w.envs {
		n += e.live
	}
	return n
}

// Run dispatches events until none remain anywhere or a partition
// stops, like Env.Run for a single environment.
func (w *World) Run() error { return w.RunUntil(maxTime) }

// RunUntil advances every partition through conservative windows until
// the earliest pending event lies beyond deadline (or nothing is
// pending). Clocks are left at the deadline, exactly like
// Env.RunUntil. An error reports the lowest-numbered partition's
// process panic, or a global deadlock (every partition idle with
// processes parked and no cross-partition message in flight).
func (w *World) RunUntil(deadline Time) error {
	for _, e := range w.envs {
		e.stopped = false
	}
	if k := w.workers; k > 1 {
		w.startPool(k)
		defer w.stopPool()
	}
	for {
		injected := w.inject()
		emin := maxTime
		for _, e := range w.envs {
			if len(e.events) > 0 && e.events[0].at < emin {
				emin = e.events[0].at
			}
		}
		if emin == maxTime || emin > deadline {
			break
		}
		bound := emin.Add(w.lookahead) - 1
		if bound > deadline {
			bound = deadline
		}
		w.bound = bound
		d0 := w.Dispatched()
		t0 := time.Now()
		w.runWindow(bound)
		w.rt.windowNS += int64(time.Since(t0))
		w.rt.noteWindow(emin, bound, w.Dispatched()-d0, injected)
		if err := w.failure(); err != nil {
			return err
		}
		for _, e := range w.envs {
			if e.stopped {
				return nil
			}
		}
	}
	for _, e := range w.envs {
		if e.now < deadline && deadline < maxTime {
			e.now = deadline
		}
	}
	waiting := 0
	for _, e := range w.envs {
		waiting += e.waiting
	}
	if waiting > 0 && !w.pendingEvents() {
		names := []string{}
		for _, e := range w.envs {
			names = append(names, e.waiterNames()...)
		}
		return fmt.Errorf("sim: world deadlock: %d process(es) parked forever across %d partitions: %v",
			waiting, len(w.envs), names)
	}
	return nil
}

// pendingEvents reports whether any partition still has queued events
// (outboxes are empty whenever this is called, right after inject).
func (w *World) pendingEvents() bool {
	for _, e := range w.envs {
		if len(e.events) > 0 {
			return true
		}
	}
	return false
}

// failure returns the lowest-numbered partition's failure, so the
// reported error does not depend on worker scheduling.
func (w *World) failure() error {
	for _, e := range w.envs {
		if e.failure != nil {
			return e.failure
		}
	}
	return nil
}

// inject drains every outbox into its target partition's event heap.
// Each target gathers its incoming messages from all sources in source
// order, sorts them by (delivery time, source partition, pair
// sequence), and pushes them with fresh local sequence numbers — the
// deterministic merge the byte-identity contract rests on. It runs
// single-threaded, between windows, and returns the total number of
// messages injected.
func (w *World) inject() uint64 {
	var total uint64
	for t := range w.envs {
		b := &w.in[t]
		b.msgs = b.msgs[:0]
		for s := range w.envs {
			box := &w.envs[s].outs[t]
			if len(box.msgs) == 0 {
				continue
			}
			b.msgs = append(b.msgs, box.msgs...)
			// Release the fn references so the pooled backing array
			// does not pin dead closures.
			for i := range box.msgs {
				box.msgs[i].fn = nil
			}
			box.msgs = box.msgs[:0]
		}
		if len(b.msgs) == 0 {
			continue
		}
		sort.Sort(b)
		w.rt.noteInject(t, len(b.msgs))
		total += uint64(len(b.msgs))
		e := w.envs[t]
		for i := range b.msgs {
			e.seq++
			e.events.push(event{at: b.msgs[i].at, seq: e.seq, fn: b.msgs[i].fn})
			b.msgs[i].fn = nil
		}
	}
	return total
}

// startPool spawns k−1 helper goroutines that park on workC between
// windows (the caller of runWindow is the k-th thread). A persistent
// pool amortizes goroutine startup across the run's many short
// windows.
func (w *World) startPool(k int) {
	w.workC = make(chan Time)
	for i := 0; i < k-1; i++ {
		go func() {
			for bound := range w.workC {
				w.drain(bound)
				w.wg.Done()
			}
		}()
	}
}

// stopPool releases the helpers.
func (w *World) stopPool() {
	close(w.workC)
	w.workC = nil
}

// drain executes partitions' windows until none are left unclaimed.
// Each claimed partition's busy time accrues to its own slot: exactly
// one worker owns a partition per window, and the barrier orders the
// write before any cross-thread read.
func (w *World) drain(bound Time) {
	n := len(w.envs)
	for {
		j := int(atomic.AddInt64(&w.next, 1)) - 1
		if j >= n {
			return
		}
		t0 := time.Now()
		w.envs[j].runWindow(bound)
		w.rt.busyNS[j] += int64(time.Since(t0))
	}
}

// runWindow executes one window on up to workers threads. Partitions
// share nothing during a window (the lookahead contract routes every
// interaction through the next barrier — observers included: each
// partition records into its own shard, merged at snapshot time), and
// the WaitGroup gives the barrier its happens-before edge, so
// cross-partition reads of state applied in earlier windows are
// race-free.
func (w *World) runWindow(bound Time) {
	if w.workers <= 1 || w.workC == nil {
		for _, e := range w.envs {
			t0 := time.Now()
			e.runWindow(bound)
			w.rt.busyNS[e.part] += int64(time.Since(t0))
		}
		return
	}
	k := w.workers
	atomic.StoreInt64(&w.next, 0)
	w.wg.Add(k - 1)
	for i := 0; i < k-1; i++ {
		w.workC <- bound
	}
	w.drain(bound)
	t0 := time.Now()
	w.wg.Wait()
	w.rt.barrierNS += int64(time.Since(t0))
}

// runWindow dispatches this partition's events with time ≤ bound and
// leaves the clock at bound. It is RunUntil's dispatch loop without
// the deadlock check (an idle partition here may simply be waiting for
// a cross-partition message; the world checks for global deadlock at
// the barrier).
func (e *Env) runWindow(bound Time) {
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > bound {
			break
		}
		ev := e.events.pop()
		if ev.fn == nil && (ev.proc.done || ev.proc.gen != ev.gen) {
			continue // stale wakeup for a finished or reused process
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatched++
		if e.dispatchHook != nil {
			e.dispatchHook(ev.at, ev.seq, ev.proc)
		}
		if ev.fn != nil {
			e.inCall = true
			ev.fn()
			e.inCall = false
			continue
		}
		e.current = ev.proc
		ev.proc.resume <- struct{}{}
		<-e.ack
		e.current = nil
		if e.failure != nil {
			return
		}
	}
	if e.now < bound {
		e.now = bound
	}
}

// Send schedules fn to run in partition env to at virtual time at.
// Within one partition it is exactly CallAt. Across partitions at must
// lie beyond the current window (the lookahead contract guarantees
// this for any interaction delayed by ≥ Lookahead); the call is
// buffered in the per-pair outbox and injected at the next barrier.
func (e *Env) Send(to *Env, at Time, fn func()) {
	if to == e || e.world == nil {
		e.CallAt(at, fn)
		return
	}
	if to.world != e.world {
		panic("sim: Send across worlds")
	}
	if at <= e.world.bound {
		panic(fmt.Sprintf("sim: Send(%v) violates lookahead: window ends at %v", at, e.world.bound))
	}
	box := &e.outs[to.part]
	box.seq++
	box.msgs = append(box.msgs, xmsg{at: at, seq: box.seq, src: int32(e.part), fn: fn})
}

// Part returns the environment's partition index (0 for a standalone
// environment).
func (e *Env) Part() int { return e.part }

// World returns the world the environment belongs to, or nil for a
// standalone environment.
func (e *Env) World() *World { return e.world }
