package sim

// Runtime introspection of the window executor. The counters split into
// two classes with different determinism guarantees:
//
//   - schedule-derived: windows executed, window widths, per-partition
//     events dispatched, messages sent/injected across the seam, and
//     mailbox high-water marks are pure functions of the simulation
//     state — identical at any worker count, safe to export through the
//     deterministic metrics registry;
//   - wall-clock: per-partition busy time, barrier wait and total
//     window time are real time.Now measurements. They vary run to run
//     and must only surface in invocation-level outputs (runtime-stats
//     JSON, stderr summaries), never in byte-compared artifacts.
//
// All counters mutate either between windows (single-threaded) or from
// the one worker that owns a partition during a window; the window
// barrier orders the latter before any cross-thread read.

// windowLogCap bounds the per-run window log: enough to render a
// timeline of the interesting prefix without letting a long run grow
// without bound. Overflow increments WindowLogDropped.
const windowLogCap = 4096

// worldRuntime is the World's introspection state.
type worldRuntime struct {
	windows    uint64
	widthSum   uint64 // virtual time units, summed over windows
	widthMin   Duration
	widthMax   Duration
	windowNS   int64    // wall time inside runWindow, all windows
	barrierNS  int64    // wall time the main thread waited on the barrier
	injected   []uint64 // per partition: messages injected at barriers
	mailboxHWM []int    // per partition: largest single-barrier batch
	busyNS     []int64  // per partition: wall time dispatching windows
	log        []WindowRec
	logDropped uint64
}

// noteInject records one barrier's message batch for target partition t.
func (rt *worldRuntime) noteInject(t, n int) {
	rt.injected[t] += uint64(n)
	if n > rt.mailboxHWM[t] {
		rt.mailboxHWM[t] = n
	}
}

// noteWindow records one executed window [start, bound].
func (rt *worldRuntime) noteWindow(start, bound Time, events, injected uint64) {
	width := Duration(bound-start) + 1
	rt.windows++
	rt.widthSum += uint64(width)
	if rt.widthMin == 0 || width < rt.widthMin {
		rt.widthMin = width
	}
	if width > rt.widthMax {
		rt.widthMax = width
	}
	if len(rt.log) < windowLogCap {
		rt.log = append(rt.log, WindowRec{Start: start, Bound: bound, Events: events, Injected: injected})
	} else {
		rt.logDropped++
	}
}

// WindowRec is one executed window in the log: its virtual-time span,
// the events dispatched inside it (across all partitions) and the
// cross-partition messages injected at the barrier that opened it.
type WindowRec struct {
	Start    Time
	Bound    Time
	Events   uint64
	Injected uint64
}

// PartRuntime is one partition's slice of the executor counters.
type PartRuntime struct {
	Part       int
	Events     uint64 // events dispatched in this partition
	Injected   uint64 // cross-partition messages delivered to it
	Sent       uint64 // cross-partition messages it posted
	MailboxHWM int    // largest single-barrier incoming batch
	BusyNS     int64  // wall-clock: wall time spent dispatching (nondeterministic)
}

// RuntimeStats is a snapshot of the window executor's introspection
// counters. Everything except the *NS fields (and PartRuntime.BusyNS)
// is schedule-derived and identical at any worker count.
type RuntimeStats struct {
	Parts     int
	Workers   int
	Lookahead Duration
	Windows   uint64
	WidthSum  uint64 // virtual time units summed over windows
	WidthMin  Duration
	WidthMax  Duration

	WindowWallNS  int64 // wall-clock: total time inside windows
	BarrierWaitNS int64 // wall-clock: main-thread barrier waits

	PartStats []PartRuntime

	WindowLog        []WindowRec // first windowLogCap windows
	WindowLogDropped uint64
}

// WidthAvg returns the mean window width in virtual time units (the
// lookahead-efficiency figure: how close windows come to the full
// lookahead).
func (s *RuntimeStats) WidthAvg() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.WidthSum) / float64(s.Windows)
}

// RuntimeStats snapshots the executor's introspection counters. Call it
// between runs (not from inside a running window).
func (w *World) RuntimeStats() *RuntimeStats {
	s := &RuntimeStats{
		Parts:            len(w.envs),
		Workers:          w.workers,
		Lookahead:        w.lookahead,
		Windows:          w.rt.windows,
		WidthSum:         w.rt.widthSum,
		WidthMin:         w.rt.widthMin,
		WidthMax:         w.rt.widthMax,
		WindowWallNS:     w.rt.windowNS,
		BarrierWaitNS:    w.rt.barrierNS,
		WindowLogDropped: w.rt.logDropped,
	}
	s.WindowLog = append(s.WindowLog, w.rt.log...)
	s.PartStats = make([]PartRuntime, len(w.envs))
	for i, e := range w.envs {
		var sent uint64
		for t := range e.outs {
			sent += e.outs[t].seq
		}
		s.PartStats[i] = PartRuntime{
			Part:       i,
			Events:     e.dispatched,
			Injected:   w.rt.injected[i],
			Sent:       sent,
			MailboxHWM: w.rt.mailboxHWM[i],
			BusyNS:     w.rt.busyNS[i],
		}
	}
	return s
}

// Windows returns the number of windows executed so far
// (schedule-derived, safe for metric probes).
func (w *World) Windows() uint64 { return w.rt.windows }

// WindowWidthAvg returns the mean window width so far in virtual time
// units (schedule-derived).
func (w *World) WindowWidthAvg() float64 {
	if w.rt.windows == 0 {
		return 0
	}
	return float64(w.rt.widthSum) / float64(w.rt.windows)
}

// PartInjected returns the cross-partition messages injected into
// partition i so far (schedule-derived).
func (w *World) PartInjected(i int) uint64 { return w.rt.injected[i] }

// PartMailboxHWM returns partition i's largest single-barrier incoming
// batch so far (schedule-derived).
func (w *World) PartMailboxHWM(i int) int { return w.rt.mailboxHWM[i] }
