package layout

import (
	"testing"
	"testing/quick"
)

func sampleSchema() Schema {
	return Schema{ID: 3, Name: "accounts", CellSizes: []int{8, 30, 100}}
}

func TestSchemaValidate(t *testing.T) {
	if err := sampleSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Name: "empty"},
		{Name: "zero", CellSizes: []int{0}},
		{Name: "neg", CellSizes: []int{8, -1}},
		{Name: "wide", CellSizes: make([]int, MaxENCells+1)},
	}
	for i := range bad {
		for j := range bad[i].CellSizes {
			if bad[i].CellSizes[j] == 0 && bad[i].Name == "wide" {
				bad[i].CellSizes[j] = 4
			}
		}
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %q validated but should not", s.Name)
		}
	}
}

func TestNormalizeConsolidatesWideTables(t *testing.T) {
	wide := Schema{Name: "wide", CellSizes: make([]int, 30)}
	for i := range wide.CellSizes {
		wide.CellSizes[i] = 10
	}
	n := wide.Normalize()
	if got := n.NumCells(); got != MaxENCells {
		t.Fatalf("normalized to %d cells, want %d", got, MaxENCells)
	}
	if n.DataBytes() != wide.DataBytes() {
		t.Fatalf("normalize changed data bytes: %d vs %d", n.DataBytes(), wide.DataBytes())
	}
	// Last cell absorbs cells 19..29: 11 cells × 10 bytes.
	if last := n.CellSizes[MaxENCells-1]; last != 110 {
		t.Fatalf("consolidated tail = %d, want 110", last)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Narrow schemas come back equal but not aliased.
	s := sampleSchema()
	c := s.Normalize()
	c.CellSizes[0] = 999
	if s.CellSizes[0] == 999 {
		t.Fatal("Normalize aliased the original slice")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Key: 0xdeadbeef, TableID: 7, Lock: 0b1011}
	for i := range h.EN {
		h.EN[i] = uint16(i * 3)
	}
	buf := make([]byte, HeaderSize)
	EncodeHeader(buf, h)
	got := DecodeHeader(buf)
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
}

func TestCellVersionRoundTrip(t *testing.T) {
	buf := make([]byte, 8)
	v := CellVersion{EN: 65535, TS: MaxTS48}
	PutCellVersion(buf, v)
	if got := GetCellVersion(buf); got != v {
		t.Fatalf("decoded %+v, want %+v", got, v)
	}
}

func TestCellVersionOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 49-bit timestamp")
		}
	}()
	PutCellVersion(make([]byte, 8), CellVersion{TS: MaxTS48 + 1})
}

func TestQuickCellVersionRoundTrip(t *testing.T) {
	f := func(en uint16, ts uint64) bool {
		ts &= MaxTS48
		buf := make([]byte, 8)
		PutCellVersion(buf, CellVersion{EN: en, TS: ts})
		got := GetCellVersion(buf)
		return got.EN == en && got.TS == ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(key uint64, table uint32, lock uint64, ens [MaxENCells]uint16) bool {
		h := Header{Key: Key(key), TableID: TableID(table), Lock: lock, EN: ens}
		buf := make([]byte, HeaderSize)
		EncodeHeader(buf, h)
		return DecodeHeader(buf) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordLayoutOffsets(t *testing.T) {
	r := NewRecord(sampleSchema())
	if r.NumCells() != 3 {
		t.Fatalf("NumCells = %d", r.NumCells())
	}
	// Cell 0: 8+8=16 → one cacheline. Cell 1: 8+30=38 → one. Cell 2:
	// 8+100=108 → two cachelines.
	wantOff := []int{64, 128, 192}
	wantSlot := []int{64, 64, 128}
	for i := range wantOff {
		if r.CellOff(i) != wantOff[i] {
			t.Errorf("CellOff(%d) = %d, want %d", i, r.CellOff(i), wantOff[i])
		}
		if r.CellSlotSize(i) != wantSlot[i] {
			t.Errorf("CellSlotSize(%d) = %d, want %d", i, r.CellSlotSize(i), wantSlot[i])
		}
		if r.CellValueOff(i) != wantOff[i]+CellVersionSize {
			t.Errorf("CellValueOff(%d) = %d", i, r.CellValueOff(i))
		}
	}
	if r.Size() != 64+64+64+128 {
		t.Fatalf("Size = %d, want 320", r.Size())
	}
	if r.ENOff(2) != OffEN+4 {
		t.Fatalf("ENOff(2) = %d", r.ENOff(2))
	}
}

func TestQuickRecordSlotsDoNotOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > MaxENCells {
			return true
		}
		s := Schema{Name: "q", CellSizes: make([]int, len(sizes))}
		for i, b := range sizes {
			s.CellSizes[i] = int(b)%200 + 1
		}
		r := NewRecord(s)
		prevEnd := HeaderSize
		for i := 0; i < r.NumCells(); i++ {
			if r.CellOff(i) < prevEnd {
				return false
			}
			if r.CellOff(i)%Cacheline != 0 {
				return false
			}
			end := r.CellOff(i) + CellVersionSize + r.CellSize(i)
			if end > r.CellOff(i)+r.CellSlotSize(i) {
				return false
			}
			prevEnd = r.CellOff(i) + r.CellSlotSize(i)
		}
		return r.Size() == prevEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLockMask(t *testing.T) {
	if m := LockMask([]int{1, 3}); m != 0b1010 {
		t.Fatalf("LockMask = %b", m)
	}
	if m := AllCellsMask(3); m != 0b111 {
		t.Fatalf("AllCellsMask = %b", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for cell index on delete bit")
		}
	}()
	LockMask([]int{DeleteBit})
}

func TestVersionWordPackUnpack(t *testing.T) {
	w := PackVersionWord(true, 12345)
	locked, v := UnpackVersionWord(w)
	if !locked || v != 12345 {
		t.Fatalf("unpack = (%v,%d)", locked, v)
	}
	locked, v = UnpackVersionWord(PackVersionWord(false, MaxTS48))
	if locked || v != MaxTS48 {
		t.Fatalf("unpack = (%v,%d)", locked, v)
	}
}

func TestSlotMetaPackUnpack(t *testing.T) {
	valid, ts := UnpackSlotMeta(PackSlotMeta(true, 99))
	if !valid || ts != 99 {
		t.Fatalf("unpack = (%v,%d)", valid, ts)
	}
	valid, ts = UnpackSlotMeta(PackSlotMeta(false, 0))
	if valid || ts != 0 {
		t.Fatalf("unpack = (%v,%d)", valid, ts)
	}
}

func TestFORDLayout(t *testing.T) {
	r := NewFORDRecord(sampleSchema())
	if r.Size() != BaselineHeaderSize+138 {
		t.Fatalf("Size = %d", r.Size())
	}
	if r.PaddedSize() != 192 { // 170 → 192
		t.Fatalf("PaddedSize = %d", r.PaddedSize())
	}
	if r.CellValueOff(0) != 32 || r.CellValueOff(1) != 40 || r.CellValueOff(2) != 70 {
		t.Fatalf("cell offsets %d %d %d", r.CellValueOff(0), r.CellValueOff(1), r.CellValueOff(2))
	}
}

func TestMotorLayout(t *testing.T) {
	s := sampleSchema()
	r := NewMotorRecord(s)
	want := BaselineHeaderSize + MotorSlots*MotorSlotMetaSize + MotorSlots*s.DataBytes()
	if r.Size() != want {
		t.Fatalf("Size = %d, want %d", r.Size(), want)
	}
	if r.SlotMetaOff(0) != 32 || r.SlotMetaOff(3) != 56 {
		t.Fatalf("meta offsets %d %d", r.SlotMetaOff(0), r.SlotMetaOff(3))
	}
	if r.SlotDataOff(0) != 64 {
		t.Fatalf("SlotDataOff(0) = %d", r.SlotDataOff(0))
	}
	if r.SlotDataOff(1) != 64+s.DataBytes() {
		t.Fatalf("SlotDataOff(1) = %d", r.SlotDataOff(1))
	}
	if r.SlotCellOff(0, 2) != 64+38 {
		t.Fatalf("SlotCellOff(0,2) = %d", r.SlotCellOff(0, 2))
	}
}

// Table 1's qualitative result: Motor has the highest metadata
// overhead, CREST sits between Motor and FORD for multi-cell tables.
func TestSpaceOverheadOrdering(t *testing.T) {
	// A TPC-C-like schema: several medium cells.
	s := Schema{Name: "tpcc-like", CellSizes: []int{8, 8, 36, 36, 36, 36, 40}}
	for _, padded := range []bool{false, true} {
		ford := Space(SysFORD, s, padded)
		motor := Space(SysMotor, s, padded)
		crest := Space(SysCREST, s, padded)
		if !(ford.OverheadPct() < crest.OverheadPct()) {
			t.Errorf("padded=%v: FORD %.1f%% !< CREST %.1f%%",
				padded, ford.OverheadPct(), crest.OverheadPct())
		}
		if !(crest.OverheadPct() < motor.OverheadPct()) {
			t.Errorf("padded=%v: CREST %.1f%% !< Motor %.1f%%",
				padded, crest.OverheadPct(), motor.OverheadPct())
		}
		for _, u := range []SpaceUsage{ford, motor, crest} {
			if u.Total != u.Data+u.Meta {
				t.Errorf("inconsistent usage %+v", u)
			}
		}
	}
}

func TestSpacePaddingNeverShrinks(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		s := Schema{Name: "q", CellSizes: make([]int, len(sizes))}
		for i, b := range sizes {
			s.CellSizes[i] = int(b)%120 + 1
		}
		for _, sys := range []System{SysFORD, SysMotor, SysCREST} {
			if Space(sys, s, true).Total < Space(sys, s, false).Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemString(t *testing.T) {
	if SysFORD.String() != "FORD" || SysMotor.String() != "Motor" || SysCREST.String() != "CREST" {
		t.Fatal("bad system names")
	}
}
