// Package layout defines the on-memory-node wire formats of the three
// systems this repository implements:
//
//   - the CREST record structure of Fig 6 in the paper — a 64-byte
//     record header (TableID, Key, an 8-byte per-cell Lock bitmap and
//     a 20-entry epoch-number array) followed by one cacheline-aligned
//     slot per cell, each slot carrying the cell version (2-byte epoch
//     number + 6-byte commit timestamp) co-located with the value;
//   - the FORD baseline's record-level format (one 8-byte lock+version
//     word per record);
//   - the Motor baseline's consecutive version table (a fixed array of
//     version slots, each a timestamped full copy of the record data).
//
// The package also provides the space-overhead model behind Table 1.
package layout

import (
	"encoding/binary"
	"fmt"
)

// TableID identifies a table.
type TableID uint32

// Key is a record's primary key. Workloads use dense integer keys.
type Key uint64

// Layout constants shared by the formats.
const (
	// Cacheline is the unit of atomic one-sided access (§4.1).
	Cacheline = 64
	// HeaderSize is the CREST record header: exactly one cacheline so
	// the Lock word and EN array snapshot with a single READ (§4.3).
	HeaderSize = Cacheline
	// MaxENCells is the number of epoch numbers the header's EN array
	// holds. Tables with more cells consolidate the tail into one big
	// cell (§4.4).
	MaxENCells = 20
	// DeleteBit is the spare Lock bit marking a logically deleted
	// record (§4.4).
	DeleteBit = 63
	// CellVersionSize is the per-cell version co-located with the
	// value: 2-byte epoch number + 6-byte commit timestamp.
	CellVersionSize = 8
	// MaxTS48 is the largest commit timestamp representable in the
	// 6-byte TS_commit field.
	MaxTS48 = 1<<48 - 1
)

// CREST header field offsets.
const (
	OffKey     = 0  // 8-byte key
	OffTableID = 8  // 4-byte table id (4 bytes reserved after it)
	OffLock    = 16 // 8-byte per-cell lock bitmap, 8-aligned for masked-CAS
	OffEN      = 24 // 20 × 2-byte epoch numbers
)

// Schema describes a table's columns as cell sizes in bytes.
type Schema struct {
	ID        TableID
	Name      string
	CellSizes []int
}

// NumCells returns the number of cells per record.
func (s Schema) NumCells() int { return len(s.CellSizes) }

// DataBytes returns the total value payload per record.
func (s Schema) DataBytes() int {
	n := 0
	for _, c := range s.CellSizes {
		n += c
	}
	return n
}

// Validate reports whether the schema is usable.
func (s Schema) Validate() error {
	if len(s.CellSizes) == 0 {
		return fmt.Errorf("layout: table %q has no cells", s.Name)
	}
	if len(s.CellSizes) > MaxENCells {
		return fmt.Errorf("layout: table %q has %d cells; max %d (consolidate with Normalize)",
			s.Name, len(s.CellSizes), MaxENCells)
	}
	for i, c := range s.CellSizes {
		if c <= 0 {
			return fmt.Errorf("layout: table %q cell %d has size %d", s.Name, i, c)
		}
	}
	return nil
}

// Normalize returns a schema with at most MaxENCells cells: cells from
// index MaxENCells-1 onward are consolidated into a single large cell,
// as §4.4 describes for wide tables. The returned schema shares no
// state with s.
func (s Schema) Normalize() Schema {
	out := Schema{ID: s.ID, Name: s.Name}
	if len(s.CellSizes) <= MaxENCells {
		out.CellSizes = append([]int(nil), s.CellSizes...)
		return out
	}
	out.CellSizes = append([]int(nil), s.CellSizes[:MaxENCells-1]...)
	tail := 0
	for _, c := range s.CellSizes[MaxENCells-1:] {
		tail += c
	}
	out.CellSizes = append(out.CellSizes, tail)
	return out
}

// CellVersion is the per-cell version word: a 2-byte epoch number that
// increments on every update, and a 48-bit commit timestamp that forms
// the global commit order.
type CellVersion struct {
	EN uint16
	TS uint64
}

// PutCellVersion encodes v into the 8 bytes at b.
func PutCellVersion(b []byte, v CellVersion) {
	_ = b[7]
	binary.LittleEndian.PutUint16(b, v.EN)
	putUint48(b[2:], v.TS)
}

// GetCellVersion decodes the 8 bytes at b.
func GetCellVersion(b []byte) CellVersion {
	_ = b[7]
	return CellVersion{
		EN: binary.LittleEndian.Uint16(b),
		TS: getUint48(b[2:]),
	}
}

func putUint48(b []byte, v uint64) {
	if v > MaxTS48 {
		panic(fmt.Sprintf("layout: timestamp %d exceeds 48 bits", v))
	}
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
}

func getUint48(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
}

// Header is the decoded CREST record header.
type Header struct {
	Key     Key
	TableID TableID
	Lock    uint64
	EN      [MaxENCells]uint16
}

// EncodeHeader writes h into the HeaderSize bytes at b.
func EncodeHeader(b []byte, h Header) {
	_ = b[HeaderSize-1]
	binary.LittleEndian.PutUint64(b[OffKey:], uint64(h.Key))
	binary.LittleEndian.PutUint32(b[OffTableID:], uint32(h.TableID))
	binary.LittleEndian.PutUint64(b[OffLock:], h.Lock)
	for i, en := range h.EN {
		binary.LittleEndian.PutUint16(b[OffEN+2*i:], en)
	}
}

// DecodeHeader parses the HeaderSize bytes at b.
func DecodeHeader(b []byte) Header {
	_ = b[HeaderSize-1]
	h := Header{
		Key:     Key(binary.LittleEndian.Uint64(b[OffKey:])),
		TableID: TableID(binary.LittleEndian.Uint32(b[OffTableID:])),
		Lock:    binary.LittleEndian.Uint64(b[OffLock:]),
	}
	for i := range h.EN {
		h.EN[i] = binary.LittleEndian.Uint16(b[OffEN+2*i:])
	}
	return h
}

// LockMask returns the Lock-word bit mask covering the given cells.
func LockMask(cells []int) uint64 {
	var m uint64
	for _, c := range cells {
		if c < 0 || c >= DeleteBit {
			panic(fmt.Sprintf("layout: cell index %d out of lockable range", c))
		}
		m |= 1 << uint(c)
	}
	return m
}

// AllCellsMask returns the mask covering every cell of a schema, used
// when inserting or deleting whole rows (§4.4).
func AllCellsMask(numCells int) uint64 {
	if numCells <= 0 || numCells > MaxENCells {
		panic(fmt.Sprintf("layout: bad cell count %d", numCells))
	}
	return 1<<uint(numCells) - 1
}

// DeleteMask is the Lock bit marking logical deletion.
const DeleteMask = uint64(1) << DeleteBit

// Record is the CREST record layout for one schema, with precomputed
// slot offsets.
type Record struct {
	Schema   Schema
	cellOff  []int // offset of each cell slot (version word first)
	slotSize []int
	size     int
}

// NewRecord builds the CREST layout for s. The schema must already be
// normalized and valid.
func NewRecord(s Schema) *Record {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	r := &Record{Schema: s}
	off := HeaderSize
	for _, c := range s.CellSizes {
		slot := pad(CellVersionSize+c, Cacheline)
		r.cellOff = append(r.cellOff, off)
		r.slotSize = append(r.slotSize, slot)
		off += slot
	}
	r.size = off
	return r
}

func pad(n, unit int) int { return (n + unit - 1) / unit * unit }

// Size returns the padded record size in bytes.
func (r *Record) Size() int { return r.size }

// NumCells returns the number of cells.
func (r *Record) NumCells() int { return len(r.cellOff) }

// CellOff returns the offset (within the record) of cell i's version
// word; the value follows immediately.
func (r *Record) CellOff(i int) int { return r.cellOff[i] }

// CellValueOff returns the offset of cell i's value bytes.
func (r *Record) CellValueOff(i int) int { return r.cellOff[i] + CellVersionSize }

// CellSize returns the value size of cell i.
func (r *Record) CellSize(i int) int { return r.Schema.CellSizes[i] }

// CellSlotSize returns the padded slot size of cell i (version+value).
func (r *Record) CellSlotSize(i int) int { return r.slotSize[i] }

// ENOff returns the offset of cell i's epoch number inside the header.
func (r *Record) ENOff(i int) int { return OffEN + 2*i }
