package layout

import (
	"encoding/binary"
	"fmt"
)

// Baseline header constants. FORD and Motor manage concurrency at
// record granularity: one lock word and one version word per record.
// The lock is acquired with CAS(0 → owner id), which needs its own
// word (a combined lock+version word would make the compare value
// unknowable to the locker).
const (
	// BaselineHeaderSize holds Key (8), TableID (4, 4 reserved), the
	// 8-byte lock word and the 8-byte version word.
	BaselineHeaderSize = 32
	BOffKey            = 0
	BOffTableID        = 8
	BOffLock           = 16 // 8-byte word: 0 = free, else owner id
	BOffVersion        = 24 // 8-byte word: low 48 bits = commit version

	// BaselineLockBit is the lock flag inside a packed lock+version
	// word (used by log entries and diagnostics).
	BaselineLockBit = uint64(1) << 63

	// MotorSlots is the length of Motor's consecutive version table.
	// The Motor paper sizes the vcell array per table; four slots is
	// its common configuration and what the Table 1 space analysis
	// assumes.
	MotorSlots = 4

	// MotorSlotMetaSize is the per-version metadata: 48-bit commit
	// timestamp, version-valid flag and slot bookkeeping.
	MotorSlotMetaSize = 8
)

// PackVersionWord combines the lock flag and a 48-bit version.
func PackVersionWord(locked bool, version uint64) uint64 {
	if version > MaxTS48 {
		panic(fmt.Sprintf("layout: version %d exceeds 48 bits", version))
	}
	w := version
	if locked {
		w |= BaselineLockBit
	}
	return w
}

// UnpackVersionWord splits a baseline lock+version word.
func UnpackVersionWord(w uint64) (locked bool, version uint64) {
	return w&BaselineLockBit != 0, w & MaxTS48
}

// FORDRecord is the FORD baseline layout: a 24-byte header followed by
// the raw cell values, with no per-cell metadata.
type FORDRecord struct {
	Schema Schema
	size   int
}

// NewFORDRecord builds the FORD layout for s.
func NewFORDRecord(s Schema) *FORDRecord {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &FORDRecord{Schema: s, size: BaselineHeaderSize + s.DataBytes()}
}

// Size returns the unpadded record size.
func (r *FORDRecord) Size() int { return r.size }

// PaddedSize returns the record size rounded up to cachelines.
func (r *FORDRecord) PaddedSize() int { return pad(r.size, Cacheline) }

// DataOff returns the offset of the record's value bytes.
func (r *FORDRecord) DataOff() int { return BaselineHeaderSize }

// CellValueOff returns the offset of cell i's value bytes (values are
// stored back to back).
func (r *FORDRecord) CellValueOff(i int) int {
	off := BaselineHeaderSize
	for j := 0; j < i; j++ {
		off += r.Schema.CellSizes[j]
	}
	return off
}

// MotorRecord is the Motor baseline layout: a 24-byte header, a
// consecutive table of MotorSlots version-metadata words, then
// MotorSlots full copies of the record data. Storing the versions
// consecutively is Motor's key layout idea: one READ fetches every
// version without chain traversal.
type MotorRecord struct {
	Schema Schema
	size   int
}

// NewMotorRecord builds the Motor layout for s.
func NewMotorRecord(s Schema) *MotorRecord {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	size := BaselineHeaderSize + MotorSlots*MotorSlotMetaSize + MotorSlots*s.DataBytes()
	return &MotorRecord{Schema: s, size: size}
}

// Size returns the unpadded record size.
func (r *MotorRecord) Size() int { return r.size }

// PaddedSize returns the record size rounded up to cachelines.
func (r *MotorRecord) PaddedSize() int { return pad(r.size, Cacheline) }

// SlotMetaOff returns the offset of version slot i's metadata word.
func (r *MotorRecord) SlotMetaOff(i int) int {
	return BaselineHeaderSize + i*MotorSlotMetaSize
}

// SlotDataOff returns the offset of version slot i's data copy.
func (r *MotorRecord) SlotDataOff(i int) int {
	return BaselineHeaderSize + MotorSlots*MotorSlotMetaSize + i*r.Schema.DataBytes()
}

// SlotCellOff returns the offset of cell c inside version slot i.
func (r *MotorRecord) SlotCellOff(i, c int) int {
	off := r.SlotDataOff(i)
	for j := 0; j < c; j++ {
		off += r.Schema.CellSizes[j]
	}
	return off
}

// PackSlotMeta encodes a Motor version slot's metadata: valid flag and
// 48-bit commit timestamp.
func PackSlotMeta(valid bool, ts uint64) uint64 {
	if ts > MaxTS48 {
		panic(fmt.Sprintf("layout: timestamp %d exceeds 48 bits", ts))
	}
	w := ts
	if valid {
		w |= 1 << 63
	}
	return w
}

// UnpackSlotMeta decodes a Motor version slot's metadata.
func UnpackSlotMeta(w uint64) (valid bool, ts uint64) {
	return w&(1<<63) != 0, w & MaxTS48
}

// ReadWord reads the 8-byte little-endian word at off in buf.
func ReadWord(buf []byte, off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }

// PutWord writes the 8-byte little-endian word at off in buf.
func PutWord(buf []byte, off int, w uint64) { binary.LittleEndian.PutUint64(buf[off:], w) }

// System names one of the three implemented systems, for the space
// model.
type System int

// The systems compared in Table 1.
const (
	SysFORD System = iota
	SysMotor
	SysCREST
)

// String returns the system's name.
func (s System) String() string {
	switch s {
	case SysFORD:
		return "FORD"
	case SysMotor:
		return "Motor"
	case SysCREST:
		return "CREST"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// SpaceUsage is the per-record space accounting behind Table 1.
type SpaceUsage struct {
	Data  int // one copy of the record's values
	Meta  int // everything that is not value payload (incl. extra MVCC copies)
	Total int // stored footprint (= Data + Meta, padded if requested)
}

// OverheadPct returns Meta as a percentage of Data, the paper's
// space-overhead metric.
func (u SpaceUsage) OverheadPct() float64 {
	if u.Data == 0 {
		return 0
	}
	return 100 * float64(u.Meta) / float64(u.Data)
}

// Space computes the per-record space usage of system sys for schema
// s. With padded=false it counts raw bytes (Table 1a); with
// padded=true every record (and for CREST every cell slot) is aligned
// to 64-byte cachelines (Table 1b), and the padding counts as
// metadata.
func Space(sys System, s Schema, padded bool) SpaceUsage {
	s = s.Normalize()
	data := s.DataBytes()
	var total int
	switch sys {
	case SysFORD:
		r := NewFORDRecord(s)
		total = r.Size()
		if padded {
			total = r.PaddedSize()
		}
	case SysMotor:
		r := NewMotorRecord(s)
		total = r.Size()
		if padded {
			total = r.PaddedSize()
		}
	case SysCREST:
		if padded {
			total = NewRecord(s).Size()
		} else {
			total = HeaderSize + s.NumCells()*CellVersionSize + data
			// Without padding the header shrinks to the fields in
			// use: key, table id, lock, and one EN per actual cell.
			total -= (MaxENCells - s.NumCells()) * 2
		}
	default:
		panic("layout: unknown system")
	}
	return SpaceUsage{Data: data, Meta: total - data, Total: total}
}
