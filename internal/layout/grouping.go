package layout

import (
	"fmt"
	"sort"
)

// Grouping consolidates a schema's cells into fewer, larger cells —
// the improvement §4.4 of the paper sketches for wide tables:
// "consolidate cells based on transactions' access patterns (e.g.,
// grouping read-intensive cells) to mitigate conflicts". A Grouping
// maps original cell indices to grouped ones so workloads written
// against the original schema can be replayed against the grouped
// layout.
type Grouping struct {
	original Schema
	grouped  Schema
	toGroup  []int   // original cell → grouped cell
	members  [][]int // grouped cell → original cells (in layout order)
	offsets  []int   // original cell → byte offset inside its group
}

// NewGrouping builds a grouping from explicit groups of original cell
// indices. Every cell must appear in exactly one group; groups of one
// keep the cell as is. The grouped schema preserves the original
// table id and name.
func NewGrouping(s Schema, groups [][]int) (*Grouping, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	claimed := make([]int, s.NumCells())
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("layout: empty group %d", gi)
		}
		for _, c := range g {
			if c < 0 || c >= s.NumCells() {
				return nil, fmt.Errorf("layout: group %d references cell %d of %d", gi, c, s.NumCells())
			}
			claimed[c]++
		}
	}
	for c, n := range claimed {
		if n != 1 {
			return nil, fmt.Errorf("layout: cell %d appears in %d groups, want exactly 1", c, n)
		}
	}
	g := &Grouping{
		original: s.Normalize(),
		toGroup:  make([]int, s.NumCells()),
		offsets:  make([]int, s.NumCells()),
	}
	g.grouped = Schema{ID: s.ID, Name: s.Name}
	for gi, group := range groups {
		members := append([]int(nil), group...)
		sort.Ints(members)
		size := 0
		for _, c := range members {
			g.toGroup[c] = gi
			g.offsets[c] = size
			size += s.CellSizes[c]
		}
		g.members = append(g.members, members)
		g.grouped.CellSizes = append(g.grouped.CellSizes, size)
	}
	if err := g.grouped.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// GroupByAccess derives groups from observed access patterns: cells
// that are only ever read share one group, cells that are written
// stay individual (they are the contention points cell-level locking
// protects). writtenCells lists every cell any transaction type
// writes.
func GroupByAccess(s Schema, writtenCells []int) (*Grouping, error) {
	written := map[int]bool{}
	for _, c := range writtenCells {
		if c < 0 || c >= s.NumCells() {
			return nil, fmt.Errorf("layout: written cell %d of %d", c, s.NumCells())
		}
		written[c] = true
	}
	var groups [][]int
	var readOnly []int
	for c := 0; c < s.NumCells(); c++ {
		if written[c] {
			groups = append(groups, []int{c})
		} else {
			readOnly = append(readOnly, c)
		}
	}
	if len(readOnly) > 0 {
		groups = append(groups, readOnly)
	}
	return NewGrouping(s, groups)
}

// Original returns the pre-grouping schema.
func (g *Grouping) Original() Schema { return g.original }

// Grouped returns the consolidated schema.
func (g *Grouping) Grouped() Schema { return g.grouped }

// GroupOf maps an original cell index to its grouped cell index.
func (g *Grouping) GroupOf(cell int) int { return g.toGroup[cell] }

// OffsetOf returns the byte offset of an original cell's value inside
// its grouped cell.
func (g *Grouping) OffsetOf(cell int) int { return g.offsets[cell] }

// Members returns the original cells inside grouped cell gi, in the
// order their bytes are laid out.
func (g *Grouping) Members(gi int) []int { return g.members[gi] }

// MapCells translates a set of original cell indices into the grouped
// schema, deduplicating cells that landed in the same group.
func (g *Grouping) MapCells(cells []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		gi := g.toGroup[c]
		if !seen[gi] {
			seen[gi] = true
			out = append(out, gi)
		}
	}
	sort.Ints(out)
	return out
}

// PackRecord assembles grouped cell values from original ones.
func (g *Grouping) PackRecord(cells [][]byte) ([][]byte, error) {
	if len(cells) != g.original.NumCells() {
		return nil, fmt.Errorf("layout: %d cells for schema with %d", len(cells), g.original.NumCells())
	}
	out := make([][]byte, g.grouped.NumCells())
	for gi, members := range g.members {
		buf := make([]byte, 0, g.grouped.CellSizes[gi])
		for _, c := range members {
			if len(cells[c]) != g.original.CellSizes[c] {
				return nil, fmt.Errorf("layout: cell %d has %d bytes, want %d", c, len(cells[c]), g.original.CellSizes[c])
			}
			buf = append(buf, cells[c]...)
		}
		out[gi] = buf
	}
	return out, nil
}

// Extract pulls one original cell's bytes out of its grouped cell
// value.
func (g *Grouping) Extract(cell int, groupedValue []byte) []byte {
	off := g.offsets[cell]
	return groupedValue[off : off+g.original.CellSizes[cell]]
}
