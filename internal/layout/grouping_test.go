package layout

import (
	"bytes"
	"testing"
	"testing/quick"
)

func groupingSchema() Schema {
	return Schema{ID: 5, Name: "wide", CellSizes: []int{8, 16, 8, 24, 8}}
}

func TestNewGroupingValid(t *testing.T) {
	g, err := NewGrouping(groupingSchema(), [][]int{{0}, {1, 3}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Grouped().NumCells(); got != 3 {
		t.Fatalf("grouped cells = %d", got)
	}
	if got := g.Grouped().CellSizes[1]; got != 40 { // 16+24
		t.Fatalf("group 1 size = %d", got)
	}
	if g.Grouped().DataBytes() != groupingSchema().DataBytes() {
		t.Fatal("grouping changed total data bytes")
	}
	if g.GroupOf(3) != 1 || g.GroupOf(4) != 2 {
		t.Fatal("bad group mapping")
	}
	// Cell 3 sits after cell 1 inside group 1.
	if g.OffsetOf(1) != 0 || g.OffsetOf(3) != 16 {
		t.Fatalf("offsets %d %d", g.OffsetOf(1), g.OffsetOf(3))
	}
}

func TestNewGroupingRejectsBadGroups(t *testing.T) {
	s := groupingSchema()
	cases := [][][]int{
		{{0}, {1}},                     // missing cells
		{{0, 0}, {1}, {2}, {3}, {4}},   // duplicate inside a group
		{{0}, {1}, {2}, {3}, {4}, {0}}, // cell in two groups
		{{0}, {}, {1}, {2}, {3}, {4}},  // empty group
		{{0}, {1}, {2}, {3}, {9}},      // out of range
	}
	for i, groups := range cases {
		if _, err := NewGrouping(s, groups); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGroupByAccessSeparatesWrittenCells(t *testing.T) {
	g, err := GroupByAccess(groupingSchema(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Written cell 2 alone; 0,1,3,4 consolidated.
	if g.Grouped().NumCells() != 2 {
		t.Fatalf("grouped into %d cells", g.Grouped().NumCells())
	}
	if len(g.Members(g.GroupOf(2))) != 1 {
		t.Fatal("written cell shares a group")
	}
	ro := g.GroupOf(0)
	for _, c := range []int{1, 3, 4} {
		if g.GroupOf(c) != ro {
			t.Fatal("read-only cells not consolidated")
		}
	}
}

func TestMapCellsDedupes(t *testing.T) {
	g, err := NewGrouping(groupingSchema(), [][]int{{0, 1}, {2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := g.MapCells([]int{0, 1, 4})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("MapCells = %v", got)
	}
}

func TestPackAndExtractRoundTrip(t *testing.T) {
	s := groupingSchema()
	g, err := NewGrouping(s, [][]int{{0, 2, 4}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cells := make([][]byte, s.NumCells())
	for c := range cells {
		cells[c] = bytes.Repeat([]byte{byte(c + 1)}, s.CellSizes[c])
	}
	packed, err := g.PackRecord(cells)
	if err != nil {
		t.Fatal(err)
	}
	for c := range cells {
		got := g.Extract(c, packed[g.GroupOf(c)])
		if !bytes.Equal(got, cells[c]) {
			t.Fatalf("cell %d extract mismatch", c)
		}
	}
}

func TestPackRejectsBadShapes(t *testing.T) {
	g, _ := NewGrouping(groupingSchema(), [][]int{{0, 1, 2, 3, 4}})
	if _, err := g.PackRecord(make([][]byte, 2)); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	cells := make([][]byte, 5)
	for c := range cells {
		cells[c] = []byte{1}
	}
	if _, err := g.PackRecord(cells); err == nil {
		t.Fatal("wrong cell sizes accepted")
	}
}

// Property: any partition of cells yields a grouping that preserves
// bytes through pack/extract and total data size.
func TestQuickGroupingPreservesBytes(t *testing.T) {
	f := func(sizesRaw []uint8, assignRaw []uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > MaxENCells {
			return true
		}
		s := Schema{ID: 1, Name: "q", CellSizes: make([]int, len(sizesRaw))}
		for i, b := range sizesRaw {
			s.CellSizes[i] = int(b)%32 + 1
		}
		// Random partition: assign each cell to one of up to 4 buckets.
		buckets := map[int][]int{}
		for c := range s.CellSizes {
			b := 0
			if c < len(assignRaw) {
				b = int(assignRaw[c]) % 4
			}
			buckets[b] = append(buckets[b], c)
		}
		var groups [][]int
		for b := 0; b < 4; b++ {
			if len(buckets[b]) > 0 {
				groups = append(groups, buckets[b])
			}
		}
		g, err := NewGrouping(s, groups)
		if err != nil {
			return false
		}
		if g.Grouped().DataBytes() != s.DataBytes() {
			return false
		}
		cells := make([][]byte, s.NumCells())
		for c := range cells {
			cells[c] = bytes.Repeat([]byte{byte(c * 7)}, s.CellSizes[c])
		}
		packed, err := g.PackRecord(cells)
		if err != nil {
			return false
		}
		for c := range cells {
			if !bytes.Equal(g.Extract(c, packed[g.GroupOf(c)]), cells[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
