// Package memnode models the memory pool of a disaggregated
// architecture: passive nodes that expose registered memory regions to
// one-sided RDMA and perform no transaction logic themselves.
//
// The pool is organized as shard groups: shards independent groups of
// nodesPerShard nodes each. A placement.Policy decides which group
// owns a record and which node inside the group holds its primary
// copy; replicas follow the primary in ring order inside the group.
// The classic single-cluster topology is the one-group case.
//
// Allocation across the pool is symmetric: every node of every group
// performs the same allocation sequence, so one offset addresses the
// same object (a table heap, an index, a log segment) on every node.
// That keeps (f+1)-primary-backup replication a pure data-plane
// concern — a record's replicas live at the same offset on the f
// group nodes following its primary — and it is what makes the
// sharded refactor byte-stable: group membership only changes which
// nodes are written, never where anything lives.
package memnode

import (
	"errors"
	"fmt"

	"crest/internal/layout"
	"crest/internal/placement"
	"crest/internal/rdma"
)

// MaxShards bounds the shard-group count (participant sets travel as
// 64-bit masks through the commit path).
const MaxShards = 64

// Node is one memory node: an id plus its registered region.
type Node struct {
	ID     int
	Region *rdma.Region
}

// Pool is the memory pool: all memory nodes, organized in shard
// groups, plus the replication factor and the placement policy that
// routes records to nodes.
type Pool struct {
	nodes    []*Node // group-major: group g owns nodes[g*perGroup : (g+1)*perGroup]
	replicas int     // f: number of backup copies per record
	shards   int
	perGroup int
	policy   placement.Policy
	fabric   *rdma.Fabric
	allocOff uint64
	size     uint64
}

// NewPool registers regions of size bytes on mns memory nodes as a
// single shard group under hash placement — the historical topology,
// bit-for-bit. replicas is f, the number of synchronously updated
// backups per record; it must leave at least one distinct node per
// replica.
func NewPool(fabric *rdma.Fabric, mns int, size int, replicas int) *Pool {
	p, err := NewShardedPool(fabric, 1, mns, size, replicas, nil)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// NewShardedPool registers shards independent groups of nodesPerShard
// memory nodes each, with size bytes per node, routing records through
// pol (nil selects hash placement). replicas is f, the per-record
// backup count, and replication never leaves a group, so it must
// leave at least one distinct node per replica inside one group.
// Invalid topologies return errors rather than panicking so the
// public config layer can surface them.
func NewShardedPool(fabric *rdma.Fabric, shards, nodesPerShard, size, replicas int, pol placement.Policy) (*Pool, error) {
	if shards < 1 {
		return nil, fmt.Errorf("memnode: need at least one shard group, got %d", shards)
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("memnode: %d shard groups exceed the maximum of %d", shards, MaxShards)
	}
	if nodesPerShard <= 0 {
		return nil, errors.New("memnode: need at least one memory node")
	}
	if replicas < 0 || replicas >= nodesPerShard {
		return nil, fmt.Errorf("memnode: %d backups impossible with %d nodes", replicas, nodesPerShard)
	}
	if pol == nil {
		pol = placement.Hash{}
	}
	if fabric.Lanes() > 1 && fabric.Lanes() != shards {
		return nil, fmt.Errorf("memnode: fabric has %d partitions but the pool has %d shard groups",
			fabric.Lanes(), shards)
	}
	p := &Pool{
		fabric:   fabric,
		replicas: replicas,
		shards:   shards,
		perGroup: nodesPerShard,
		policy:   pol,
		size:     uint64(size),
	}
	for i := 0; i < shards*nodesPerShard; i++ {
		// On a partitioned fabric each shard group's nodes live in the
		// matching simulation partition; replication never leaves a
		// group, so a replicated write stays single-partition too.
		part := 0
		if fabric.Lanes() > 1 {
			part = i / nodesPerShard
		}
		p.nodes = append(p.nodes, &Node{
			ID:     i,
			Region: fabric.RegisterAt(fmt.Sprintf("mn%d", i), size, part),
		})
	}
	return p, nil
}

// Nodes returns the pool's memory nodes (all groups, group-major).
func (p *Pool) Nodes() []*Node { return p.nodes }

// NumNodes returns the total number of memory nodes across groups.
func (p *Pool) NumNodes() int { return len(p.nodes) }

// Replicas returns f, the number of backups per record.
func (p *Pool) Replicas() int { return p.replicas }

// Shards returns the number of shard groups.
func (p *Pool) Shards() int { return p.shards }

// NodesPerShard returns the number of memory nodes in each group.
func (p *Pool) NodesPerShard() int { return p.perGroup }

// Policy returns the placement policy routing records to nodes.
func (p *Pool) Policy() placement.Policy { return p.policy }

// GroupNodes returns shard group g's memory nodes.
func (p *Pool) GroupNodes(g int) []*Node {
	return p.nodes[g*p.perGroup : (g+1)*p.perGroup]
}

// ShardOf returns the shard group owning (table, key).
func (p *Pool) ShardOf(table layout.TableID, key layout.Key) int {
	return p.policy.Shard(table, key, p.shards)
}

// ShardOfNode returns the shard group node id belongs to.
func (p *Pool) ShardOfNode(id int) int { return id / p.perGroup }

// Fabric returns the pool's interconnect.
func (p *Pool) Fabric() *rdma.Fabric { return p.fabric }

// Alloc reserves size bytes at the same offset on every node and
// returns that offset. Allocations are cacheline aligned.
func (p *Pool) Alloc(size int) uint64 {
	off := p.allocOff
	p.allocOff += uint64((size + layout.Cacheline - 1) / layout.Cacheline * layout.Cacheline)
	if p.allocOff > p.size {
		panic(fmt.Sprintf("memnode: pool exhausted: %d of %d bytes", p.allocOff, p.size))
	}
	return off
}

// Used reports the bytes allocated so far (per node).
func (p *Pool) Used() uint64 { return p.allocOff }

// PrimaryOf returns the memory node holding the primary copy of the
// record identified by (table, key).
func (p *Pool) PrimaryOf(table layout.TableID, key layout.Key) *Node {
	return p.nodes[p.primaryIndex(table, key)]
}

// primaryIndex routes (table, key) through the placement policy: the
// policy picks the owning group and the primary position inside it.
// With one group this is exactly the historical policy.Primary over
// all nodes.
func (p *Pool) primaryIndex(table layout.TableID, key layout.Key) int {
	g := p.policy.Shard(table, key, p.shards)
	return g*p.perGroup + p.policy.Primary(table, key, p.perGroup)
}

// ReplicaNodes returns the primary followed by the f backup nodes for
// (table, key), in replication order. Replication never leaves the
// owning shard group.
func (p *Pool) ReplicaNodes(table layout.TableID, key layout.Key) []*Node {
	g := p.policy.Shard(table, key, p.shards)
	pi := p.policy.Primary(table, key, p.perGroup)
	base := g * p.perGroup
	out := make([]*Node, 0, p.replicas+1)
	for i := 0; i <= p.replicas; i++ {
		out = append(out, p.nodes[base+(pi+i)%p.perGroup])
	}
	return out
}

// LogNodes returns the count nodes hosting coordinator id's log
// segment, starting at the node the id hashes to and following in
// ring order. With one shard group the ring spans the whole pool
// (the historical layout, byte-for-byte); with more, each
// coordinator's log lives entirely inside its home group — the group
// its id maps to — so recovery of a group never depends on another
// group's nodes.
func (p *Pool) LogNodes(id, count int) []*Node {
	out := make([]*Node, count)
	if p.shards == 1 {
		for i := range out {
			out[i] = p.nodes[(id+i)%len(p.nodes)]
		}
		return out
	}
	g := id % p.shards
	gn := p.GroupNodes(g)
	for i := range out {
		out[i] = gn[(id/p.shards+i)%p.perGroup]
	}
	return out
}

// MirrorNodes returns shard group g's nodes at the same in-group
// positions as ns. The symmetric allocation guarantees any offset
// valid on ns is valid on the mirror — this is how the cross-shard
// prepare addresses a remote group's log replicas.
func (p *Pool) MirrorNodes(ns []*Node, g int) []*Node {
	out := make([]*Node, len(ns))
	for i, n := range ns {
		out[i] = p.nodes[g*p.perGroup+n.ID%p.perGroup]
	}
	return out
}

// Heap is a table's record heap: count fixed-size slots starting at a
// pool-mirrored offset.
type Heap struct {
	pool    *Pool
	Base    uint64
	RecSize int
	Count   int
}

// AllocHeap reserves a heap of count records of recSize bytes.
func (p *Pool) AllocHeap(recSize, count int) *Heap {
	slot := (recSize + layout.Cacheline - 1) / layout.Cacheline * layout.Cacheline
	return &Heap{pool: p, Base: p.Alloc(slot * count), RecSize: slot, Count: count}
}

// SlotOff returns the region offset of record slot i.
func (h *Heap) SlotOff(i int) uint64 {
	if i < 0 || i >= h.Count {
		panic(fmt.Sprintf("memnode: slot %d outside heap of %d", i, h.Count))
	}
	return h.Base + uint64(i*h.RecSize)
}

// LogSegment is a per-coordinator append-only log area in the memory
// pool (§6, redo-logging). The owning coordinator is the only writer,
// so it tracks the tail locally; Reserve hands out the offset for the
// next entry. The segment is a ring: once full it wraps, which is safe
// because entries are only needed until their transaction's updates
// are applied and acknowledged.
type LogSegment struct {
	Base uint64
	Size int
	tail int
}

// AllocLog reserves a log segment of size bytes.
func (p *Pool) AllocLog(size int) *LogSegment {
	return &LogSegment{Base: p.Alloc(size), Size: size}
}

// Reserve returns the offset for an n-byte entry and advances the
// tail. Entries never straddle the wrap point: if n does not fit in
// the remainder, the remainder is skipped.
func (s *LogSegment) Reserve(n int) uint64 {
	if n > s.Size {
		panic(fmt.Sprintf("memnode: log entry of %d bytes exceeds segment of %d", n, s.Size))
	}
	if s.tail+n > s.Size {
		s.tail = 0
	}
	off := s.Base + uint64(s.tail)
	s.tail += n
	return off
}

// Tail reports the local tail position (bytes into the segment).
func (s *LogSegment) Tail() int { return s.tail }
