// Package memnode models the memory pool of a disaggregated
// architecture: passive nodes that expose registered memory regions to
// one-sided RDMA and perform no transaction logic themselves.
//
// Allocation across the pool is mirrored: every node performs the same
// allocation sequence, so one offset addresses the same object (a
// table heap, an index, a log segment) on every node. That is how
// (f+1)-primary-backup replication stays a pure data-plane concern: a
// record's replicas live at the same offset on the f nodes following
// its primary.
package memnode

import (
	"fmt"

	"crest/internal/layout"
	"crest/internal/rdma"
)

// Node is one memory node: an id plus its registered region.
type Node struct {
	ID     int
	Region *rdma.Region
}

// Pool is the memory pool: all memory nodes plus the replication
// factor.
type Pool struct {
	nodes    []*Node
	replicas int // f: number of backup copies per record
	fabric   *rdma.Fabric
	allocOff uint64
	size     uint64
}

// NewPool registers regions of size bytes on mns memory nodes.
// replicas is f, the number of synchronously updated backups per
// record; it must leave at least one distinct node per replica.
func NewPool(fabric *rdma.Fabric, mns int, size int, replicas int) *Pool {
	if mns <= 0 {
		panic("memnode: need at least one memory node")
	}
	if replicas < 0 || replicas >= mns {
		panic(fmt.Sprintf("memnode: %d backups impossible with %d nodes", replicas, mns))
	}
	p := &Pool{fabric: fabric, replicas: replicas, size: uint64(size)}
	for i := 0; i < mns; i++ {
		p.nodes = append(p.nodes, &Node{
			ID:     i,
			Region: fabric.Register(fmt.Sprintf("mn%d", i), size),
		})
	}
	return p
}

// Nodes returns the pool's memory nodes.
func (p *Pool) Nodes() []*Node { return p.nodes }

// NumNodes returns the number of memory nodes.
func (p *Pool) NumNodes() int { return len(p.nodes) }

// Replicas returns f, the number of backups per record.
func (p *Pool) Replicas() int { return p.replicas }

// Fabric returns the pool's interconnect.
func (p *Pool) Fabric() *rdma.Fabric { return p.fabric }

// Alloc reserves size bytes at the same offset on every node and
// returns that offset. Allocations are cacheline aligned.
func (p *Pool) Alloc(size int) uint64 {
	off := p.allocOff
	p.allocOff += uint64((size + layout.Cacheline - 1) / layout.Cacheline * layout.Cacheline)
	if p.allocOff > p.size {
		panic(fmt.Sprintf("memnode: pool exhausted: %d of %d bytes", p.allocOff, p.size))
	}
	return off
}

// Used reports the bytes allocated so far (per node).
func (p *Pool) Used() uint64 { return p.allocOff }

// PrimaryOf returns the memory node holding the primary copy of the
// record identified by (table, key).
func (p *Pool) PrimaryOf(table layout.TableID, key layout.Key) *Node {
	return p.nodes[p.primaryIndex(table, key)]
}

func (p *Pool) primaryIndex(table layout.TableID, key layout.Key) int {
	return int(mix(uint64(table), uint64(key)) % uint64(len(p.nodes)))
}

// ReplicaNodes returns the primary followed by the f backup nodes for
// (table, key), in replication order.
func (p *Pool) ReplicaNodes(table layout.TableID, key layout.Key) []*Node {
	pi := p.primaryIndex(table, key)
	out := make([]*Node, 0, p.replicas+1)
	for i := 0; i <= p.replicas; i++ {
		out = append(out, p.nodes[(pi+i)%len(p.nodes)])
	}
	return out
}

// mix is a 64-bit finalizer-style hash combining table and key.
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Heap is a table's record heap: count fixed-size slots starting at a
// pool-mirrored offset.
type Heap struct {
	pool    *Pool
	Base    uint64
	RecSize int
	Count   int
}

// AllocHeap reserves a heap of count records of recSize bytes.
func (p *Pool) AllocHeap(recSize, count int) *Heap {
	slot := (recSize + layout.Cacheline - 1) / layout.Cacheline * layout.Cacheline
	return &Heap{pool: p, Base: p.Alloc(slot * count), RecSize: slot, Count: count}
}

// SlotOff returns the region offset of record slot i.
func (h *Heap) SlotOff(i int) uint64 {
	if i < 0 || i >= h.Count {
		panic(fmt.Sprintf("memnode: slot %d outside heap of %d", i, h.Count))
	}
	return h.Base + uint64(i*h.RecSize)
}

// LogSegment is a per-coordinator append-only log area in the memory
// pool (§6, redo-logging). The owning coordinator is the only writer,
// so it tracks the tail locally; Reserve hands out the offset for the
// next entry. The segment is a ring: once full it wraps, which is safe
// because entries are only needed until their transaction's updates
// are applied and acknowledged.
type LogSegment struct {
	Base uint64
	Size int
	tail int
}

// AllocLog reserves a log segment of size bytes.
func (p *Pool) AllocLog(size int) *LogSegment {
	return &LogSegment{Base: p.Alloc(size), Size: size}
}

// Reserve returns the offset for an n-byte entry and advances the
// tail. Entries never straddle the wrap point: if n does not fit in
// the remainder, the remainder is skipped.
func (s *LogSegment) Reserve(n int) uint64 {
	if n > s.Size {
		panic(fmt.Sprintf("memnode: log entry of %d bytes exceeds segment of %d", n, s.Size))
	}
	if s.tail+n > s.Size {
		s.tail = 0
	}
	off := s.Base + uint64(s.tail)
	s.tail += n
	return off
}

// Tail reports the local tail position (bytes into the segment).
func (s *LogSegment) Tail() int { return s.tail }
