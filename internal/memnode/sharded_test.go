package memnode

import (
	"strings"
	"testing"

	"crest/internal/layout"
	"crest/internal/placement"
	"crest/internal/rdma"
	"crest/internal/sim"
)

func shardedPool(t *testing.T, shards, perGroup, replicas int, pol placement.Policy) *Pool {
	t.Helper()
	env := sim.NewEnv(1)
	p, err := NewShardedPool(rdma.NewFabric(env, rdma.DefaultParams()), shards, perGroup, 1<<20, replicas, pol)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewShardedPoolErrors(t *testing.T) {
	env := sim.NewEnv(1)
	fabric := rdma.NewFabric(env, rdma.DefaultParams())
	cases := []struct {
		name                       string
		shards, perGroup, replicas int
		want                       string
	}{
		{"zero shards", 0, 2, 1, "need at least one shard group, got 0"},
		{"too many shards", MaxShards + 1, 1, 0, "65 shard groups exceed the maximum of 64"},
		{"zero nodes", 2, 0, 0, "need at least one memory node"},
		{"replicas equal group", 2, 2, 2, "2 backups impossible with 2 nodes"},
		{"negative replicas", 1, 2, -1, "-1 backups impossible with 2 nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewShardedPool(fabric, tc.shards, tc.perGroup, 1<<16, tc.replicas, nil)
			if err == nil {
				t.Fatal("bad topology accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Replication and primaries never leave a record's owning shard group,
// and a record's replica set never repeats a node.
func TestShardedRoutingStaysInGroup(t *testing.T) {
	const shards, perGroup = 3, 3
	p := shardedPool(t, shards, perGroup, 2, placement.Hash{})
	if p.NumNodes() != shards*perGroup {
		t.Fatalf("%d nodes, want %d", p.NumNodes(), shards*perGroup)
	}
	for k := layout.Key(0); k < 2000; k++ {
		g := p.ShardOf(5, k)
		if g < 0 || g >= shards {
			t.Fatalf("key %d on shard %d", k, g)
		}
		primary := p.PrimaryOf(5, k)
		if p.ShardOfNode(primary.ID) != g {
			t.Fatalf("key %d: primary mn%d outside its shard group %d", k, primary.ID, g)
		}
		replicas := p.ReplicaNodes(5, k)
		if len(replicas) != 3 || replicas[0] != primary {
			t.Fatalf("key %d: replica set %v", k, replicas)
		}
		seen := map[int]bool{}
		for _, n := range replicas {
			if seen[n.ID] {
				t.Fatalf("key %d: node mn%d repeated in replica set", k, n.ID)
			}
			seen[n.ID] = true
			if p.ShardOfNode(n.ID) != g {
				t.Fatalf("key %d: replica mn%d outside shard group %d", k, n.ID, g)
			}
		}
	}
}

// GroupNodes partitions the pool: group g owns the contiguous ID range
// [g·perGroup, (g+1)·perGroup).
func TestGroupNodesPartition(t *testing.T) {
	p := shardedPool(t, 4, 2, 0, nil)
	seen := map[int]bool{}
	for g := 0; g < 4; g++ {
		for i, n := range p.GroupNodes(g) {
			if want := g*2 + i; n.ID != want {
				t.Fatalf("group %d node %d has ID %d, want %d", g, i, n.ID, want)
			}
			if seen[n.ID] {
				t.Fatalf("node %d in two groups", n.ID)
			}
			seen[n.ID] = true
		}
	}
}

// With one shard group, LogNodes is the classic whole-pool ring — the
// byte-compatibility contract for pre-sharding topologies.
func TestLogNodesSingleGroupRing(t *testing.T) {
	p := shardedPool(t, 1, 5, 2, nil)
	nodes := p.Nodes()
	for id := 0; id < 12; id++ {
		ln := p.LogNodes(id, 3)
		for i, n := range ln {
			if want := nodes[(id+i)%5]; n != want {
				t.Fatalf("coord %d log node %d = mn%d, want mn%d", id, i, n.ID, want.ID)
			}
		}
	}
}

// With multiple groups a coordinator's log lives wholly inside its
// home group, and homes round-robin across groups by coordinator ID.
func TestLogNodesShardedHome(t *testing.T) {
	const shards, perGroup = 3, 4
	p := shardedPool(t, shards, perGroup, 2, nil)
	for id := 0; id < 24; id++ {
		ln := p.LogNodes(id, 3)
		home := id % shards
		seen := map[int]bool{}
		for _, n := range ln {
			if p.ShardOfNode(n.ID) != home {
				t.Fatalf("coord %d: log node mn%d outside home group %d", id, n.ID, home)
			}
			if seen[n.ID] {
				t.Fatalf("coord %d: log node mn%d repeated", id, n.ID)
			}
			seen[n.ID] = true
		}
	}
}

// MirrorNodes maps a node set to the same in-group positions of
// another group — the cross-shard prepare fan-out.
func TestMirrorNodes(t *testing.T) {
	p := shardedPool(t, 3, 4, 1, nil)
	ln := p.LogNodes(7, 2)
	for g := 0; g < 3; g++ {
		mirror := p.MirrorNodes(ln, g)
		if len(mirror) != len(ln) {
			t.Fatalf("mirror of %d nodes has %d", len(ln), len(mirror))
		}
		for i, m := range mirror {
			if p.ShardOfNode(m.ID) != g {
				t.Fatalf("mirror node mn%d not in group %d", m.ID, g)
			}
			if m.ID%4 != ln[i].ID%4 {
				t.Fatalf("mirror node mn%d not at in-group position of mn%d", m.ID, ln[i].ID)
			}
		}
	}
}

// Allocation is symmetric across topologies: the same alloc sequence
// yields the same offsets whether the pool is one group of six nodes
// or three groups of two — the mechanism behind shards=1 byte
// stability and group-local addressing.
func TestShardedAllocSymmetric(t *testing.T) {
	a := shardedPool(t, 1, 6, 1, nil)
	b := shardedPool(t, 3, 2, 1, nil)
	for _, size := range []int{64, 128, 9, 4096} {
		offA, offB := a.Alloc(size), b.Alloc(size)
		if offA != offB {
			t.Fatalf("alloc(%d): %d on single group, %d sharded", size, offA, offB)
		}
	}
	if a.Used() != b.Used() {
		t.Fatalf("used %d vs %d", a.Used(), b.Used())
	}
}
