package memnode

import (
	"testing"
	"testing/quick"

	"crest/internal/layout"
	"crest/internal/rdma"
	"crest/internal/sim"
)

func newPool(t *testing.T, mns, replicas int) *Pool {
	t.Helper()
	env := sim.NewEnv(1)
	fabric := rdma.NewFabric(env, rdma.DefaultParams())
	return NewPool(fabric, mns, 1<<20, replicas)
}

func TestAllocMirroredAndAligned(t *testing.T) {
	p := newPool(t, 3, 1)
	a := p.Alloc(10)
	b := p.Alloc(100)
	if a != 0 {
		t.Fatalf("first alloc at %d", a)
	}
	if b != 64 {
		t.Fatalf("second alloc at %d, want 64 (cacheline aligned)", b)
	}
	if p.Used() != 64+128 {
		t.Fatalf("used %d", p.Used())
	}
}

func TestPoolExhaustionPanics(t *testing.T) {
	p := newPool(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exhaustion")
		}
	}()
	p.Alloc(1 << 21)
}

func TestBadReplicationPanics(t *testing.T) {
	env := sim.NewEnv(1)
	fabric := rdma.NewFabric(env, rdma.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f >= nodes")
		}
	}()
	NewPool(fabric, 2, 1024, 2)
}

func TestReplicaNodesDistinctAndStable(t *testing.T) {
	p := newPool(t, 4, 2)
	for key := layout.Key(0); key < 100; key++ {
		nodes := p.ReplicaNodes(5, key)
		if len(nodes) != 3 {
			t.Fatalf("got %d replicas", len(nodes))
		}
		if nodes[0] != p.PrimaryOf(5, key) {
			t.Fatal("first replica is not the primary")
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if seen[n.ID] {
				t.Fatalf("duplicate node %d in replica set", n.ID)
			}
			seen[n.ID] = true
		}
	}
}

func TestPrimarySpreadsAcrossNodes(t *testing.T) {
	p := newPool(t, 2, 0)
	counts := map[int]int{}
	for key := layout.Key(0); key < 1000; key++ {
		counts[p.PrimaryOf(1, key).ID]++
	}
	for id, c := range counts {
		if c < 300 {
			t.Fatalf("node %d got only %d of 1000 primaries", id, c)
		}
	}
}

func TestHeapSlots(t *testing.T) {
	p := newPool(t, 2, 0)
	h := p.AllocHeap(100, 10) // slots pad to 128
	if h.RecSize != 128 {
		t.Fatalf("RecSize = %d", h.RecSize)
	}
	if h.SlotOff(0) != h.Base || h.SlotOff(9) != h.Base+9*128 {
		t.Fatal("bad slot offsets")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range slot")
		}
	}()
	h.SlotOff(10)
}

func TestLogSegmentReserveWraps(t *testing.T) {
	p := newPool(t, 1, 0)
	s := p.AllocLog(256)
	if off := s.Reserve(100); off != s.Base {
		t.Fatalf("first entry at %d", off)
	}
	if off := s.Reserve(100); off != s.Base+100 {
		t.Fatalf("second entry at %d", off)
	}
	// 56 bytes left; a 100-byte entry wraps to the start.
	if off := s.Reserve(100); off != s.Base {
		t.Fatalf("wrapped entry at %d, want base", off)
	}
	if s.Tail() != 100 {
		t.Fatalf("tail %d", s.Tail())
	}
}

func TestLogSegmentOversizePanics(t *testing.T) {
	p := newPool(t, 1, 0)
	s := p.AllocLog(64)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversize entry")
		}
	}()
	s.Reserve(65)
}

// Property: the replica set never depends on anything but (table, key)
// and is always the primary plus the following nodes in ring order.
func TestQuickReplicaRing(t *testing.T) {
	p := newPool(t, 5, 2)
	f := func(table uint32, key uint64) bool {
		nodes := p.ReplicaNodes(layout.TableID(table), layout.Key(key))
		for i := 1; i < len(nodes); i++ {
			if nodes[i].ID != (nodes[i-1].ID+1)%5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
