package stats

import (
	"math"
	"testing"
	"testing/quick"

	"crest/internal/engine"
	"crest/internal/sim"
)

func TestLatenciesPercentiles(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(sim.Duration(i) * sim.Microsecond)
	}
	if got := l.Avg(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("avg = %v", got)
	}
	if got := l.P50(); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.P99(); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := l.P999(); got != 100 {
		t.Fatalf("p999 = %v", got)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
}

func TestPercentileClampsOutOfContract(t *testing.T) {
	var l Latencies
	for i := 1; i <= 10; i++ {
		l.Add(sim.Duration(i) * sim.Microsecond)
	}
	cases := []struct {
		name string
		p    float64
		want float64
	}{
		{"zero clamps to min", 0, 1},
		{"negative clamps to min", -5, 1},
		{"neg infinity clamps to min", math.Inf(-1), 1},
		{"NaN clamps to min", math.NaN(), 1},
		{"above 100 clamps to max", 150, 10},
		{"pos infinity clamps to max", math.Inf(1), 10},
		{"in-contract low edge", 1, 1},
		{"in-contract high edge", 100, 10},
		{"median unchanged", 50, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := l.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
	// The empty aggregate stays zero for any p.
	var empty Latencies
	for _, p := range []float64{-1, 0, 50, 200, math.NaN()} {
		if got := empty.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v", p, got)
		}
	}
}

func TestLatenciesEmpty(t *testing.T) {
	var l Latencies
	if l.Avg() != 0 || l.P99() != 0 {
		t.Fatal("empty latencies not zero")
	}
}

func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latencies
		for _, v := range raw {
			l.Add(sim.Duration(v) * sim.Microsecond)
		}
		prev := 0.0
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 99.9} {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAccounting(t *testing.T) {
	r := NewRun()
	r.RecordAttempt(engine.Attempt{Committed: false, Reason: engine.AbortLockFail, FalseConflict: true,
		Exec: 10 * sim.Microsecond})
	r.RecordAttempt(engine.Attempt{Committed: true,
		Exec: 20 * sim.Microsecond, Validate: 5 * sim.Microsecond, Commit: 5 * sim.Microsecond})
	r.RecordCommit(40 * sim.Microsecond)
	r.Elapsed = 1 * sim.Millisecond

	if r.Committed != 1 || r.Aborted != 1 {
		t.Fatalf("counts %d/%d", r.Committed, r.Aborted)
	}
	if got := r.AbortRate(); got != 0.5 {
		t.Fatalf("abort rate %v", got)
	}
	if got := r.FalseAbortRate(); got != 1 {
		t.Fatalf("false abort rate %v", got)
	}
	// 1 committed txn in 1 ms = 1 KOPS.
	if got := r.ThroughputKOPS(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("throughput %v", got)
	}
	// Aborted attempt's exec time folds into the committed txn's
	// execution phase: (10+20)/1 = 30µs.
	if got := r.Phases.AvgExec(); got != 30 {
		t.Fatalf("avg exec %v", got)
	}
	if r.ByReason[engine.AbortLockFail] != 1 {
		t.Fatal("reason not counted")
	}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunMerge(t *testing.T) {
	a, b := NewRun(), NewRun()
	a.RecordCommit(10 * sim.Microsecond)
	b.RecordCommit(20 * sim.Microsecond)
	b.RecordAttempt(engine.Attempt{Reason: engine.AbortValidation})
	a.Merge(b)
	if a.Committed != 2 || a.Aborted != 1 {
		t.Fatalf("merge %d/%d", a.Committed, a.Aborted)
	}
	if a.Lat.Count() != 2 {
		t.Fatal("latencies not merged")
	}
	if a.ByReason[engine.AbortValidation] != 1 {
		t.Fatal("reasons not merged")
	}
}
