// Package stats aggregates the metrics the paper's evaluation reports:
// throughput (KOPS), average/median/tail latencies, per-phase latency
// breakdowns, abort rates and false-abort rates.
package stats

import (
	"fmt"
	"sort"

	"crest/internal/engine"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// Latencies collects latency samples (in virtual microseconds) and
// answers percentile queries.
type Latencies struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d sim.Duration) {
	l.samples = append(l.samples, d.Micros())
	l.sorted = false
}

// Count reports the number of samples.
func (l *Latencies) Count() int { return len(l.samples) }

// Avg returns the mean in microseconds (0 when empty).
func (l *Latencies) Avg() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range l.samples {
		sum += v
	}
	return sum / float64(len(l.samples))
}

// Percentile returns the p-th percentile in microseconds, using
// nearest-rank on the sorted samples. The contract is 0 < p ≤ 100;
// out-of-range p is clamped into it, so p ≤ 0 returns the minimum
// sample and p > 100 the maximum (NaN, having no order, also clamps to
// the minimum) rather than reading out of range or inventing values.
func (l *Latencies) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// P50, P99 and P999 are the percentiles the paper plots.
func (l *Latencies) P50() float64 { return l.Percentile(50) }

// P99 returns the 99th percentile.
func (l *Latencies) P99() float64 { return l.Percentile(99) }

// P999 returns the 99.9th percentile.
func (l *Latencies) P999() float64 { return l.Percentile(99.9) }

// Merge folds other's samples into l.
func (l *Latencies) Merge(other *Latencies) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = false
}

// Breakdown accumulates per-phase time across committed transactions
// (Fig 4 / Fig 14). Aborted attempts' time folds into the phase it was
// spent in, so re-execution shows up as execution latency, matching
// the paper's measurement.
type Breakdown struct {
	Exec     sim.Duration
	Validate sim.Duration
	Commit   sim.Duration
	N        int
}

// AddAttempt accumulates one attempt's phases.
func (b *Breakdown) AddAttempt(a engine.Attempt) {
	b.Exec += a.Exec
	b.Validate += a.Validate
	b.Commit += a.Commit
}

// AddTxn marks one committed transaction complete.
func (b *Breakdown) AddTxn() { b.N++ }

// AvgExec returns mean execution-phase microseconds per committed txn.
func (b *Breakdown) AvgExec() float64 { return avgPhase(b.Exec, b.N) }

// AvgValidate returns mean validation-phase microseconds.
func (b *Breakdown) AvgValidate() float64 { return avgPhase(b.Validate, b.N) }

// AvgCommit returns mean commit-phase microseconds.
func (b *Breakdown) AvgCommit() float64 { return avgPhase(b.Commit, b.N) }

func avgPhase(d sim.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return d.Micros() / float64(n)
}

// Merge folds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	b.Exec += other.Exec
	b.Validate += other.Validate
	b.Commit += other.Commit
	b.N += other.N
}

// Run aggregates one benchmark run.
type Run struct {
	Committed   uint64
	Aborted     uint64
	FalseAborts uint64
	// CrossShard counts attempts whose writes spanned shard groups;
	// CrossShardAborts is the aborted subset. Both stay zero on
	// single-group topologies.
	CrossShard       uint64
	CrossShardAborts uint64
	ByReason         map[engine.AbortReason]uint64
	Lat              Latencies
	Phases           Breakdown
	Elapsed          sim.Duration
	Verbs            rdma.Stats
}

// NewRun returns an empty aggregate.
func NewRun() *Run {
	return &Run{ByReason: map[engine.AbortReason]uint64{}}
}

// RecordAttempt folds one attempt's outcome in.
func (r *Run) RecordAttempt(a engine.Attempt) {
	r.Phases.AddAttempt(a)
	if a.CrossShard {
		r.CrossShard++
		if !a.Committed {
			r.CrossShardAborts++
		}
	}
	if a.Committed {
		return
	}
	r.Aborted++
	r.ByReason[a.Reason]++
	if a.FalseConflict {
		r.FalseAborts++
	}
}

// RecordCommit folds one committed transaction's end-to-end latency.
func (r *Run) RecordCommit(latency sim.Duration) {
	r.Committed++
	r.Lat.Add(latency)
	r.Phases.AddTxn()
}

// ThroughputKOPS is committed transactions per millisecond of virtual
// time — the paper's unit (thousand operations per second).
func (r *Run) ThroughputKOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / 1000 / r.Elapsed.Seconds()
}

// AbortRate is aborted executions over all executions, the §2.3
// definition.
func (r *Run) AbortRate() float64 {
	total := r.Committed + r.Aborted
	if total == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(total)
}

// FalseAbortRate is the fraction of aborts caused by false conflicts
// (Fig 3b).
func (r *Run) FalseAbortRate() float64 {
	if r.Aborted == 0 {
		return 0
	}
	return float64(r.FalseAborts) / float64(r.Aborted)
}

// Merge folds another run's counters in (e.g. per-coordinator
// sub-aggregates).
func (r *Run) Merge(other *Run) {
	r.Committed += other.Committed
	r.Aborted += other.Aborted
	r.FalseAborts += other.FalseAborts
	r.CrossShard += other.CrossShard
	r.CrossShardAborts += other.CrossShardAborts
	for k, v := range other.ByReason {
		r.ByReason[k] += v
	}
	r.Lat.Merge(&other.Lat)
	r.Phases.Merge(&other.Phases)
}

// String summarizes the run.
func (r *Run) String() string {
	return fmt.Sprintf("%.1f KOPS, %d committed, abort %.1f%% (false %.1f%%), avg %.1fµs p50 %.1fµs p99 %.1fµs p999 %.1fµs",
		r.ThroughputKOPS(), r.Committed, 100*r.AbortRate(), 100*r.FalseAbortRate(),
		r.Lat.Avg(), r.Lat.P50(), r.Lat.P99(), r.Lat.P999())
}
