// Package rdma simulates a one-sided RDMA fabric between compute
// nodes and memory nodes.
//
// The real system (and the paper's testbed) uses 100 Gbps InfiniBand
// NICs and the vendor masked-compare-and-swap experimental verb. This
// package substitutes a latency/bandwidth model on top of the
// deterministic simulator in internal/sim while preserving exactly the
// properties the protocols rely on:
//
//   - one-sided verbs: READ, WRITE, CAS and masked-CAS execute against
//     a memory node's registered region without remote CPU involvement;
//   - atomicity: a verb (and a whole doorbell batch) applies at one
//     instant of virtual time, so CAS semantics are exact;
//   - delivery order: the verbs of one batch apply in posted order,
//     which CREST's commit sequence (§4.2 of the paper) depends on;
//   - doorbell batching: a batch of verbs to one node costs a single
//     round-trip.
//
// Each round-trip parks the issuing process exactly once: the verbs
// apply at the virtual midpoint of the round-trip via a deferred call
// (sim.Env.CallAt) while the process stays parked until the completion
// instant. The apply instant, posted order, atomicity and tie-breaking
// against other processes are identical to parking twice — only the
// goroutine context switches are halved.
//
// Every verb and round-trip is counted, which is how the Table 2
// experiment (RDMA operations per transaction) is regenerated.
package rdma

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"

	"crest/internal/flight"
	"crest/internal/metrics"
	"crest/internal/sim"
	"crest/internal/trace"
)

// Params configures the latency model of a fabric.
type Params struct {
	// RTT is the base round-trip time of a verb or batch. The paper
	// quotes ~2µs for RDMA communication latency.
	RTT sim.Duration
	// GbpsBandwidth is the link bandwidth used to charge payload
	// serialization time on top of RTT.
	GbpsBandwidth float64
	// PerOp is additional NIC processing time charged per verb in a
	// batch (doorbell batching amortizes the round-trip, not the
	// per-WQE work).
	PerOp sim.Duration
	// JitterPct, if positive, widens each round-trip by a uniformly
	// random factor in the half-open interval [0, JitterPct/100): the
	// factor is Rand.Float64()*JitterPct/100, so the lower bound is
	// attainable and the upper bound is not. Jitter keeps coordinators
	// from running in lockstep; it is drawn from the environment's
	// seeded source, so runs stay reproducible.
	JitterPct float64
	// CopyResults, if true, makes every READ completion allocate a
	// private copy of the fetched bytes, the behaviour real verbs give
	// a caller that owns its receive buffers. When false (the default,
	// and what every engine in this repository assumes) READ payloads
	// are served from a reused scratch arena: callers must parse or
	// copy Result.Data before posting again or parking. Set it for
	// code that retains fetched buffers across round-trips.
	CopyResults bool
}

// DefaultParams matches the paper's testbed figures: 2µs RTT on a
// 100 Gbps fabric.
func DefaultParams() Params {
	return Params{
		RTT:           2 * sim.Microsecond,
		GbpsBandwidth: 100,
		PerOp:         60 * sim.Nanosecond,
		JitterPct:     10,
	}
}

// OpKind identifies a one-sided verb.
type OpKind uint8

// The supported one-sided verbs.
const (
	OpRead OpKind = iota
	OpWrite
	OpCAS
	OpMaskedCAS
)

// String returns the verb's conventional name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpCAS:
		return "CAS"
	case OpMaskedCAS:
		return "masked-CAS"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one verb in a doorbell batch.
type Op struct {
	Kind OpKind
	Off  uint64 // offset within the target region
	Len  int    // READ: bytes to fetch
	Data []byte // WRITE: payload

	// CAS / masked-CAS operands. The atomics operate on the 8-byte
	// little-endian word at Off. For masked-CAS only the bits set in
	// Mask participate in both the comparison and the swap, matching
	// the ConnectX extended-atomics verb the paper uses for per-cell
	// lock bits.
	Compare uint64
	Swap    uint64
	Mask    uint64
}

// Result is the completion of one Op.
type Result struct {
	// Data holds a READ's fetched bytes. Unless Params.CopyResults is
	// set it aliases a reused scratch arena: it is valid until the
	// issuing process posts again or parks, so parse or copy it
	// immediately.
	Data []byte
	Old  uint64 // CAS/masked-CAS: the prior word value
	OK   bool   // CAS/masked-CAS: whether the swap applied
}

// Stats counts fabric activity. Engines snapshot and diff it to report
// per-transaction and per-phase verb counts.
type Stats struct {
	Reads       uint64
	Writes      uint64
	CASes       uint64
	MaskedCASes uint64
	RTTs        uint64
	BytesRead   uint64
	BytesWrite  uint64
}

// Total returns the total number of verbs issued.
func (s Stats) Total() uint64 { return s.Reads + s.Writes + s.CASes + s.MaskedCASes }

// Sub returns s minus t, for diffing snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:       s.Reads - t.Reads,
		Writes:      s.Writes - t.Writes,
		CASes:       s.CASes - t.CASes,
		MaskedCASes: s.MaskedCASes - t.MaskedCASes,
		RTTs:        s.RTTs - t.RTTs,
		BytesRead:   s.BytesRead - t.BytesRead,
		BytesWrite:  s.BytesWrite - t.BytesWrite,
	}
}

// Add returns s plus t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Reads:       s.Reads + t.Reads,
		Writes:      s.Writes + t.Writes,
		CASes:       s.CASes + t.CASes,
		MaskedCASes: s.MaskedCASes + t.MaskedCASes,
		RTTs:        s.RTTs + t.RTTs,
		BytesRead:   s.BytesRead + t.BytesRead,
		BytesWrite:  s.BytesWrite + t.BytesWrite,
	}
}

// Fabric is the interconnect: it owns the latency model, the registered
// memory regions and the verb counters.
//
// On a partitioned simulation (sim.World) the fabric is the only seam
// crossing partitions: regions belong to the partition of their memory
// node's shard group, and a verb batch posted at a region owned by
// another partition applies there via a cross-partition deferred call
// at the round-trip midpoint, while the issuing process resumes in its
// own partition at the completion instant. Every per-post mutable
// resource (verb counters, descriptor pools) is striped into per-
// partition lanes so partitions share nothing on the hot path; a
// single-partition fabric has exactly one lane and behaves bit-for-bit
// like the pre-partitioned implementation.
type Fabric struct {
	env     *sim.Env
	world   *sim.World // nil when env is standalone
	params  Params
	regions []*Region
	lanes   []*lane
	nextQP  int64 // atomic: queue pairs may be connected from any partition
}

// lane is one partition's slice of the fabric: its scheduler, verb
// counters, observer handles and recycled descriptors. Only code
// running in the lane's partition touches it, so attached probes stay
// lock-free under the parallel window executor.
type lane struct {
	env     *sim.Env
	stats   Stats
	cross   Stats // verbs this lane posted that applied in other partitions
	rec     *trace.Recorder
	fl      *flight.Recorder
	met     *fabricMetrics
	free    []*pending  // recycled in-flight descriptors
	subFree []*applySub // recycled cross-partition apply descriptors
}

// SetRecorder attaches a trace recorder; every subsequent verb emits
// issue/complete events and every batch an RTT event. A nil recorder
// disables emission. On a partitioned fabric each lane records into its
// own partition shard of the recorder (trace.Recorder.Shard), so
// emission stays partition-local and the run may execute on any number
// of workers; the recorder merges deterministically at snapshot time.
func (f *Fabric) SetRecorder(rec *trace.Recorder) {
	for i, l := range f.lanes {
		l.rec = rec.Shard(i, len(f.lanes))
	}
}

// SetFlight attaches a flight recorder; every subsequent post charges
// its park time (one round-trip per post, classified by verb) to the
// transaction running on the posting process. Like SetRecorder, each
// lane records into its own partition shard so the run may execute on
// any number of workers.
func (f *Fabric) SetFlight(fl *flight.Recorder) {
	for i, l := range f.lanes {
		l.fl = fl.Shard(i, len(f.lanes))
	}
}

// classOfKind maps a verb to its flight wire class.
func classOfKind(k OpKind) flight.VerbClass {
	switch k {
	case OpRead:
		return flight.ClassRead
	case OpWrite:
		return flight.ClassWrite
	case OpCAS:
		return flight.ClassCAS
	case OpMaskedCAS:
		return flight.ClassMaskedCAS
	}
	return flight.ClassMixed
}

// classOfOps classifies a batch: the verbs' common class, or Mixed.
func classOfOps(ops []Op) flight.VerbClass {
	c := classOfKind(ops[0].Kind)
	for i := 1; i < len(ops); i++ {
		if classOfKind(ops[i].Kind) != c {
			return flight.ClassMixed
		}
	}
	return c
}

// wireClass classifies a whole post (single batch or multi-batch).
func (d *pending) wireClass() flight.VerbClass {
	if d.qp != nil {
		return classOfOps(d.ops)
	}
	c := classOfOps(d.batches[0].Ops)
	for _, b := range d.batches[1:] {
		if classOfOps(b.Ops) != c {
			return flight.ClassMixed
		}
	}
	return c
}

// fabricMetrics is the fabric's instrument bundle: in-flight verbs,
// per-verb and per-node counters, and doorbell batch shape histograms.
// All counting happens at post time (requested sizes), mirroring the
// Stats counters a successful batch accrues.
type fabricMetrics struct {
	reg        *metrics.Registry
	inflight   *metrics.Gauge
	rtts       *metrics.Counter
	verbs      [4]*metrics.Counter // indexed by OpKind
	bytesRead  *metrics.Counter
	bytesWrite *metrics.Counter
	batchOps   *metrics.Histogram
	batchBytes *metrics.Histogram
	nodeVerbs  []*metrics.Counter // indexed by region id
	nodeBytes  []*metrics.Counter
}

// SetMetrics attaches a metrics registry: every subsequent post moves
// the fabric gauges and counters. Regions registered before or after
// the call both get per-node instruments. Metrics consume no virtual
// time; a nil registry disables the bundle. On a partitioned fabric
// each lane counts into its own partition shard of the registry
// (metrics.Registry.Shard) — lock-free under parallel execution, summed
// deterministically at snapshot time.
func (f *Fabric) SetMetrics(m *metrics.Registry) {
	if m == nil {
		for _, l := range f.lanes {
			l.met = nil
		}
		return
	}
	for i, l := range f.lanes {
		l.met = newFabricMetrics(m.Shard(i, len(f.lanes)), f.regions)
	}
}

// newFabricMetrics registers the fabric instrument bundle on reg.
func newFabricMetrics(reg *metrics.Registry, regions []*Region) *fabricMetrics {
	fm := &fabricMetrics{reg: reg}
	fm.inflight = reg.Gauge("crest_rdma_inflight_verbs", "",
		"One-sided verbs posted and not yet completed.")
	fm.rtts = reg.Counter("crest_rdma_rtts_total", "",
		"Doorbell-batch round trips issued.")
	for k := OpRead; k <= OpMaskedCAS; k++ {
		fm.verbs[k] = reg.Counter("crest_rdma_verbs_total",
			`verb="`+k.String()+`"`, "One-sided verbs posted, by verb.")
	}
	fm.bytesRead = reg.Counter("crest_rdma_read_bytes_total", "",
		"Payload bytes requested by READ verbs.")
	fm.bytesWrite = reg.Counter("crest_rdma_write_bytes_total", "",
		"Payload bytes carried by WRITE verbs.")
	fm.batchOps = reg.Histogram("crest_rdma_batch_ops", "",
		"Verbs per doorbell batch.", metrics.LogLinearBounds(1, 64, 2))
	fm.batchBytes = reg.Histogram("crest_rdma_batch_bytes", "",
		"Payload bytes per doorbell batch.", metrics.LogLinearBounds(8, 1<<16, 2))
	for _, r := range regions {
		fm.addNode(r)
	}
	return fm
}

// addNode registers the per-node counters for region r.
func (fm *fabricMetrics) addNode(r *Region) {
	label := `node="` + r.name + `",id="` + strconv.Itoa(r.id) + `"`
	fm.nodeVerbs = append(fm.nodeVerbs, fm.reg.Counter(
		"crest_rdma_node_verbs_total", label, "One-sided verbs posted, by target node."))
	fm.nodeBytes = append(fm.nodeBytes, fm.reg.Counter(
		"crest_rdma_node_bytes_total", label, "Payload bytes posted, by target node."))
}

// post counts one doorbell batch at issue time.
func (fm *fabricMetrics) post(qp *QP, ops []Op) {
	fm.inflight.Add(int64(len(ops)))
	fm.rtts.Inc()
	fm.batchOps.Observe(int64(len(ops)))
	fm.batchBytes.Observe(int64(batchPayload(ops)))
	node := qp.region.id
	for i := range ops {
		op := &ops[i]
		fm.verbs[op.Kind].Inc()
		b := uint64(opBytes(op))
		switch op.Kind {
		case OpRead:
			fm.bytesRead.Add(b)
		case OpWrite:
			fm.bytesWrite.Add(b)
		}
		fm.nodeVerbs[node].Inc()
		fm.nodeBytes[node].Add(b)
	}
}

// complete retires a batch's verbs from the in-flight gauge at the
// completion instant.
func (fm *fabricMetrics) complete(ops []Op) {
	fm.inflight.Add(-int64(len(ops)))
}

// NewFabric creates a fabric on env with the given latency parameters.
// When env belongs to a sim.World, the fabric stripes itself into one
// lane per partition and supports cross-partition posts; the world's
// lookahead must not exceed params.Lookahead().
func NewFabric(env *sim.Env, params Params) *Fabric {
	if params.RTT <= 0 {
		panic("rdma: Params.RTT must be positive")
	}
	if params.GbpsBandwidth <= 0 {
		panic("rdma: Params.GbpsBandwidth must be positive")
	}
	f := &Fabric{env: env, params: params}
	if w := env.World(); w != nil && w.Parts() > 1 {
		if w.Lookahead() > params.Lookahead() {
			panic(fmt.Sprintf("rdma: world lookahead %v exceeds fabric one-way minimum %v",
				w.Lookahead(), params.Lookahead()))
		}
		f.world = w
		f.lanes = make([]*lane, w.Parts())
		for i := range f.lanes {
			f.lanes[i] = &lane{env: w.Env(i)}
		}
	} else {
		f.lanes = []*lane{{env: env}}
	}
	return f
}

// Lookahead is the minimum one-way latency of any verb: the base RTT's
// midpoint. Payload, per-op cost and jitter are strictly additive, so
// no batch can apply at a memory node earlier than this after it was
// posted — which makes it a safe conservative lookahead for
// partitioning the simulation along the fabric.
func (p Params) Lookahead() sim.Duration { return p.RTT / 2 }

// Stats returns a snapshot of the fabric counters, summed over lanes.
func (f *Fabric) Stats() Stats {
	s := f.lanes[0].stats
	for _, l := range f.lanes[1:] {
		s = s.Add(l.stats)
	}
	return s
}

// LaneStats returns partition part's verb counters: the verbs posted
// by processes running in that partition. On a single-partition fabric
// it equals Stats. Engines diff it per attempt so the measurement
// stays partition-local (and therefore deterministic) under parallel
// execution.
func (f *Fabric) LaneStats(part int) Stats { return f.lanes[part].stats }

// CrossLaneStats returns the verbs partition part posted that applied
// in other partitions (already included in LaneStats): the traffic that
// crossed the fabric's partition seam. Schedule-derived, so it is
// identical at any worker count.
func (f *Fabric) CrossLaneStats(part int) Stats { return f.lanes[part].cross }

// Lanes returns the number of partition lanes.
func (f *Fabric) Lanes() int { return len(f.lanes) }

// laneOf returns the lane of the partition that p runs in.
func (f *Fabric) laneOf(p *sim.Proc) *lane { return f.lanes[p.Env().Part()] }

// Params returns the fabric's latency parameters.
func (f *Fabric) Params() Params { return f.params }

// Region is a registered memory region on a memory node, addressed by
// byte offset from compute nodes.
type Region struct {
	fabric *Fabric
	id     int
	part   int // owning partition: verbs against the region apply there
	name   string
	buf    []byte
	failed bool
}

// Register allocates and registers a memory region of size bytes,
// owned by partition 0.
func (f *Fabric) Register(name string, size int) *Region {
	return f.RegisterAt(name, size, 0)
}

// RegisterAt allocates and registers a memory region owned by
// partition part: verbs posted from other partitions apply at the
// region through the cross-partition seam. On a single-partition
// fabric part must be 0.
func (f *Fabric) RegisterAt(name string, size, part int) *Region {
	if part < 0 || part >= len(f.lanes) {
		panic(fmt.Sprintf("rdma: RegisterAt partition %d of %d", part, len(f.lanes)))
	}
	r := &Region{fabric: f, id: len(f.regions), part: part, name: name, buf: make([]byte, size)}
	f.regions = append(f.regions, r)
	for _, l := range f.lanes {
		if l.met != nil {
			l.met.addNode(r)
		}
	}
	return r
}

// Part returns the partition owning the region.
func (r *Region) Part() int { return r.part }

// ID returns the region's registration index.
func (r *Region) ID() int { return r.id }

// Name returns the region's label.
func (r *Region) Name() string { return r.name }

// Size returns the region's length in bytes.
func (r *Region) Size() int { return len(r.buf) }

// Fail marks the region's memory node as crashed: subsequent verbs
// against it return an error. Used by recovery tests.
func (r *Region) Fail() { r.failed = true }

// Recover clears the crashed state.
func (r *Region) Recover() { r.failed = false }

// Failed reports whether the region's node is marked crashed.
func (r *Region) Failed() bool { return r.failed }

// Bytes exposes the raw region for loading and for recovery tooling.
// Protocol code must not touch it; it bypasses the fabric.
func (r *Region) Bytes() []byte { return r.buf }

// QP is a queue pair from one coordinator to one memory region.
// Distinct simulated processes may share a QP (the public API
// round-robins transactions over coordinators), but each in-flight
// post owns its own descriptor, so sharing is safe as long as every
// caller consumes its results before posting again or parking.
type QP struct {
	fabric *Fabric
	region *Region
	id     int
}

// Connect creates a queue pair targeting region r. The connection
// counter is atomic because engines may connect lazily from any
// partition; the id feeds only trace output, never the simulation
// schedule. (Engines connect eagerly at load time, before partitions
// run concurrently, so traced ids are stable in practice.)
func (f *Fabric) Connect(r *Region) *QP {
	if r.fabric != f {
		panic("rdma: Connect across fabrics")
	}
	return &QP{fabric: f, region: r, id: int(atomic.AddInt64(&f.nextQP, 1))}
}

// Region returns the queue pair's target region.
func (qp *QP) Region() *Region { return qp.region }

// ID returns the queue pair's connection index (1-based, per fabric).
func (qp *QP) ID() int { return qp.id }

// latency returns the virtual time one batch costs, drawing jitter
// from rng — the issuing partition's stream, so parallel partitions
// never contend on (or nondeterministically interleave) one source.
func (f *Fabric) latency(rng *rand.Rand, payload int, ops int) sim.Duration {
	d := f.params.RTT + sim.Duration(ops)*f.params.PerOp
	if payload > 0 {
		ns := float64(payload*8) / f.params.GbpsBandwidth // bits / (Gbps) = ns
		d += sim.Duration(ns)
	}
	if f.params.JitterPct > 0 {
		d += sim.Duration(rng.Float64() * f.params.JitterPct / 100 * float64(d))
	}
	return d
}

// opBytes returns the payload bytes one verb is charged for.
func opBytes(op *Op) int {
	switch op.Kind {
	case OpRead:
		return op.Len
	case OpWrite:
		return len(op.Data)
	}
	return 8
}

// emitIssue records per-verb issue events for one batch on the issuing
// lane's recorder shard. Callers guard with l.rec != nil so a disabled
// recorder costs one pointer check.
func (l *lane) emitIssue(p *sim.Proc, qp *QP, ops []Op) {
	s := trace.SpanOf(p)
	for i := range ops {
		l.rec.VerbIssue(p.Now(), s, ops[i].Kind.String(), qp.id, qp.region.id, opBytes(&ops[i]))
	}
}

// emitComplete records the batch's round-trip and per-verb completions,
// each charged the whole batch latency (doorbell batching amortizes the
// round-trip across the verbs, not the other way around).
func (l *lane) emitComplete(p *sim.Proc, qp *QP, ops []Op, lat sim.Duration) {
	s := trace.SpanOf(p)
	l.rec.RTT(p.Now(), s, qp.id, qp.region.id, len(ops), batchPayload(ops), lat)
	for i := range ops {
		l.rec.VerbComplete(p.Now(), s, ops[i].Kind.String(), qp.id, qp.region.id, opBytes(&ops[i]), lat)
	}
}

func batchPayload(ops []Op) int {
	n := 0
	for i := range ops {
		switch ops[i].Kind {
		case OpRead:
			n += ops[i].Len
		case OpWrite:
			n += len(ops[i].Data)
		case OpCAS, OpMaskedCAS:
			n += 8
		}
	}
	return n
}

// pending is one in-flight round-trip: the state its deferred midpoint
// call needs to apply the verbs and resume the issuing process, plus
// the scratch that backs the post's results. The descriptor is owned
// exclusively by one post from issue until completion, so results stay
// intact even when several processes share a queue pair; they are
// reused only after the issuer has had a chance to consume them (it
// must do so before posting again or parking). Descriptors are
// recycled through Fabric.free — the cooperative scheduler runs one
// process at a time, so the freelist needs no locking, and fire is
// bound once so a post allocates no closure.
type pending struct {
	f        *Fabric
	lane     *lane // issuing partition's lane (owns the descriptor)
	proc     *sim.Proc
	qp       *QP  // single-batch post (nil for PostMulti)
	ops      []Op // single-batch post
	batches  []Batch
	res      []Result
	err      error
	resumeAt sim.Time
	fire     func() // pre-bound (*pending).run
	wake     func() // pre-bound (*pending).resume, for cross-partition posts

	op1      [1]Op      // single-verb scratch for the convenience wrappers
	out      [][]Result // PostMulti result scratch, reused
	resBuf   []Result   // Result scratch carved by the apply step, reused
	arena    []byte     // READ payload scratch, reused
	resLen   int
	arenaLen int

	// Cross-partition post state: one applySub per distinct target
	// partition, and a per-batch error slot filled by the subs.
	subs      []*applySub
	batchErrs []error
}

// applySub is the target-partition half of one cross-partition post:
// the batches owned by one partition, with pre-carved result and arena
// destinations, applied at the round-trip midpoint by the target's
// scheduler. Stats accrue locally in the sub and are folded into the
// issuing lane at the completion instant — one window later, after the
// barrier — so no counter is ever touched by two partitions at once.
type applySub struct {
	stats   Stats
	batches []subBatch
	fire    func() // pre-bound (*applySub).run
}

type subBatch struct {
	qp    *QP
	ops   []Op
	out   []Result
	arena []byte
	errp  *error
}

func (s *applySub) run() {
	for i := range s.batches {
		b := &s.batches[i]
		copyRes := b.qp.fabric.params.CopyResults
		if _, err := applyOps(b.qp.region, b.ops, b.out, b.arena, copyRes, &s.stats); err != nil {
			*b.errp = err
		}
		s.stats.RTTs++
	}
}

func (l *lane) getPending(f *Fabric) *pending {
	if n := len(l.free); n > 0 {
		d := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return d
	}
	d := &pending{f: f, lane: l}
	d.fire = d.run
	d.wake = d.resume
	return d
}

func (l *lane) putPending(d *pending) {
	d.proc, d.qp, d.ops, d.batches = nil, nil, nil, nil
	d.res, d.err = nil, nil
	for i := range d.subs {
		sub := d.subs[i]
		sub.batches = sub.batches[:0]
		sub.stats = Stats{}
		l.subFree = append(l.subFree, sub)
		d.subs[i] = nil
	}
	d.subs = d.subs[:0]
	// The out/resBuf/arena/batchErrs backing arrays are kept for reuse.
	l.free = append(l.free, d)
}

func (l *lane) getSub() *applySub {
	if n := len(l.subFree); n > 0 {
		s := l.subFree[n-1]
		l.subFree[n-1] = nil
		l.subFree = l.subFree[:n-1]
		return s
	}
	s := &applySub{}
	s.fire = s.run
	return s
}

// resume wakes the issuing process at the completion instant of a
// cross-partition post. It runs in the issuing partition, scheduled at
// post time, so the target partition never touches this scheduler.
func (d *pending) resume() {
	d.lane.env.Resume(d.proc, d.resumeAt)
}

// readBytes totals the payload bytes the batch's READs will occupy in
// the descriptor arena.
func readBytes(ops []Op) int {
	n := 0
	for i := range ops {
		if ops[i].Kind == OpRead && ops[i].Len > 0 {
			n += ops[i].Len
		}
	}
	return n
}

// run executes at the virtual midpoint of the round-trip: it applies
// the posted verbs against their regions and schedules the issuing
// process's resume at the completion instant. Scheduling the resume
// here — not at post time — consumes a sequence number at the midpoint,
// exactly when the old second Sleep did, so tie-breaking against other
// processes is bit-identical to the two-sleep implementation.
func (d *pending) run() {
	// Size the descriptor scratch once, for the whole post, before any
	// carving: carved sub-slices must never be moved by a later grow.
	d.sizeScratch()
	if d.qp != nil {
		d.res, d.err = d.applyBatch(d.qp, d.ops)
		d.lane.stats.RTTs++
	} else {
		for i, b := range d.batches {
			res, err := d.applyBatch(b.QP, b.Ops)
			d.lane.stats.RTTs++
			if err != nil && d.err == nil {
				d.err = err
			}
			d.out[i] = res
		}
	}
	d.lane.env.Resume(d.proc, d.resumeAt)
}

// sizeScratch grows the descriptor's result and arena buffers to the
// whole post's footprint, so later carving never moves a live slice.
func (d *pending) sizeScratch() {
	nops, nbytes := 0, 0
	if d.qp != nil {
		nops, nbytes = len(d.ops), readBytes(d.ops)
	} else {
		for _, b := range d.batches {
			nops += len(b.Ops)
			nbytes += readBytes(b.Ops)
		}
	}
	if cap(d.resBuf) < nops {
		d.resBuf = make([]Result, nops)
	}
	if !d.f.params.CopyResults && cap(d.arena) < nbytes {
		d.arena = make([]byte, nbytes)
	}
	d.resLen, d.arenaLen = 0, 0
}

// applyBatch carves the batch's destinations out of the descriptor
// scratch and applies the verbs, charging the issuing lane's counters.
func (d *pending) applyBatch(qp *QP, ops []Op) ([]Result, error) {
	out := d.resBuf[d.resLen : d.resLen+len(ops)]
	d.resLen += len(ops)
	var arena []byte
	if !d.f.params.CopyResults {
		arena = d.arena[d.arenaLen:]
	}
	used, err := applyOps(qp.region, ops, out, arena, d.f.params.CopyResults, &d.lane.stats)
	d.arenaLen += used
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Post issues a doorbell batch: all ops execute against the target
// region in order, atomically at one instant of virtual time, and the
// whole batch costs one round-trip. It returns one Result per op; see
// Result.Data for the lifetime of READ payloads.
func (qp *QP) Post(p *sim.Proc, ops []Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	return qp.postWith(p, qp.fabric.laneOf(p).getPending(qp.fabric), ops)
}

// postWith runs one single-batch round-trip on descriptor d: the verbs
// land on the memory node halfway through the round-trip (so other
// coordinators can interleave before and after the apply instant) and
// the issuing process parks once, until the completion instant. A
// batch whose region lives in another partition takes the cross-
// partition seam instead.
func (qp *QP) postWith(p *sim.Proc, d *pending, ops []Op) ([]Result, error) {
	f := qp.fabric
	if f.world != nil && qp.region.part != p.Env().Part() {
		d.qp, d.ops = qp, ops
		res, _, err := d.crossPost(p)
		return res, err
	}
	lane := d.lane
	lat := f.latency(lane.env.Rand(), batchPayload(ops), len(ops))
	if lane.rec != nil {
		lane.emitIssue(p, qp, ops)
	}
	if lane.met != nil {
		lane.met.post(qp, ops)
	}
	d.proc, d.qp, d.ops = p, qp, ops
	now := p.Now()
	d.resumeAt = now.Add(lat)
	lane.env.CallAt(now.Add(lat/2), d.fire)
	p.Suspend()
	res, err := d.res, d.err
	if lane.rec != nil {
		lane.emitComplete(p, qp, ops, lat)
	}
	if lane.fl != nil {
		lane.fl.Wire(p, classOfOps(ops), lat)
	}
	if lane.met != nil {
		lane.met.complete(ops)
	}
	lane.putPending(d)
	return res, err
}

// crossPost runs a post (single-batch or multi-batch) whose targets
// include regions owned by other partitions. The protocol:
//
//   - at post time, in the issuing partition: draw the latency (local
//     random stream), size and pre-carve every batch's result and
//     arena destinations from the descriptor scratch, group batches by
//     target partition into pooled applySubs, hand each remote sub to
//     its target via the mailbox seam (sim.Env.Send) for the midpoint
//     instant, schedule the local wakeup at the completion instant,
//     and park;
//   - at the midpoint, in each target partition: the sub applies its
//     batches into the pre-carved destinations and counts verbs into
//     its own scratch — disjoint memory per target, no shared writes;
//   - at the completion instant, back in the issuing partition: fold
//     the subs' counters into the lane (the midpoint lies at least one
//     window earlier, so the barrier ordered those writes), surface
//     the first error in batch order, and recycle everything.
//
// The issuing process parks exactly once, like a local post.
//
// Trace and metrics, when attached, are emitted from the issuing
// partition exactly as on the local path, into the issuing lane's
// partition shard — so emission stays lock-free at any worker count;
// without probes the hot path stays probe-free behind one pointer
// check.
func (d *pending) crossPost(p *sim.Proc) ([]Result, [][]Result, error) {
	f := d.f
	lane := d.lane
	single := d.qp != nil
	var maxLat sim.Duration
	if single {
		maxLat = f.latency(lane.env.Rand(), batchPayload(d.ops), len(d.ops))
	} else {
		for _, b := range d.batches {
			if lat := f.latency(lane.env.Rand(), batchPayload(b.Ops), len(b.Ops)); lat > maxLat {
				maxLat = lat
			}
		}
	}
	d.sizeScratch()
	nb := 1
	if !single {
		nb = len(d.batches)
	}
	if cap(d.batchErrs) < nb {
		d.batchErrs = make([]error, nb)
	}
	d.batchErrs = d.batchErrs[:nb]
	for i := range d.batchErrs {
		d.batchErrs[i] = nil
	}
	for i := 0; i < nb; i++ {
		qp, ops := d.qp, d.ops
		if !single {
			qp, ops = d.batches[i].QP, d.batches[i].Ops
		}
		out := d.resBuf[d.resLen : d.resLen+len(ops)]
		d.resLen += len(ops)
		var arena []byte
		if !f.params.CopyResults {
			n := readBytes(ops)
			arena = d.arena[d.arenaLen : d.arenaLen+n]
			d.arenaLen += n
		}
		sub := d.subFor(qp.region.part)
		sub.batches = append(sub.batches, subBatch{
			qp: qp, ops: ops, out: out, arena: arena, errp: &d.batchErrs[i],
		})
		if single {
			d.res = out
		} else {
			d.out[i] = out
		}
	}
	if lane.rec != nil || lane.met != nil {
		d.emitPost(p)
	}
	d.proc = p
	now := p.Now()
	mid := now.Add(maxLat / 2)
	d.resumeAt = now.Add(maxLat)
	for _, sub := range d.subs {
		target := f.lanes[sub.batches[0].qp.region.part].env
		lane.env.Send(target, mid, sub.fire)
	}
	lane.env.CallAt(d.resumeAt, d.wake)
	p.Suspend()
	if lane.rec != nil || lane.met != nil {
		d.emitDone(p, maxLat)
	}
	if lane.fl != nil {
		// One park, one charge: a multi-batch post costs its slowest
		// batch, so flight charges maxLat once (not per batch).
		lane.fl.Wire(p, d.wireClass(), maxLat)
	}
	for _, sub := range d.subs {
		lane.stats = lane.stats.Add(sub.stats)
		lane.cross = lane.cross.Add(sub.stats)
	}
	for i := 0; i < nb; i++ {
		if d.batchErrs[i] == nil {
			continue
		}
		if d.err == nil {
			d.err = d.batchErrs[i]
		}
		if single {
			d.res = nil
		} else {
			d.out[i] = nil
		}
	}
	res, out, err := d.res, d.out, d.err
	lane.putPending(d)
	return res, out, err
}

// emitPost records issue-side trace events and metrics for every batch
// of a cross-partition post. Called only when a probe is attached.
func (d *pending) emitPost(p *sim.Proc) {
	l := d.lane
	if d.qp != nil {
		if l.rec != nil {
			l.emitIssue(p, d.qp, d.ops)
		}
		if l.met != nil {
			l.met.post(d.qp, d.ops)
		}
		return
	}
	for _, b := range d.batches {
		if l.rec != nil {
			l.emitIssue(p, b.QP, b.Ops)
		}
		if l.met != nil {
			l.met.post(b.QP, b.Ops)
		}
	}
}

// emitDone records completion-side trace events and metrics for every
// batch of a cross-partition post.
func (d *pending) emitDone(p *sim.Proc, lat sim.Duration) {
	l := d.lane
	if d.qp != nil {
		if l.rec != nil {
			l.emitComplete(p, d.qp, d.ops, lat)
		}
		if l.met != nil {
			l.met.complete(d.ops)
		}
		return
	}
	for _, b := range d.batches {
		if l.rec != nil {
			l.emitComplete(p, b.QP, b.Ops, lat)
		}
		if l.met != nil {
			l.met.complete(b.Ops)
		}
	}
}

// subFor returns the post's applySub for target partition part,
// creating it from the lane pool on first use.
func (d *pending) subFor(part int) *applySub {
	for _, s := range d.subs {
		if s.batches[0].qp.region.part == part {
			return s
		}
	}
	s := d.lane.getSub()
	d.subs = append(d.subs, s)
	return s
}

// applyOps executes ops against region r at one instant of virtual
// time (it runs inside a midpoint call, without yielding, so the batch
// is atomic), writing completions into out and carving READ payloads
// from the front of arena unless copyResults. It returns the arena
// bytes consumed. st receives the verb counters as ops apply — always
// a location owned by the partition the apply runs in (the issuing
// lane for local posts, the sub's fold-later scratch for cross-
// partition posts).
func applyOps(r *Region, ops []Op, out []Result, arena []byte, copyResults bool, st *Stats) (int, error) {
	if r.failed {
		return 0, fmt.Errorf("rdma: region %q (node %d) unreachable", r.name, r.id)
	}
	used := 0
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpRead:
			if err := r.check(op.Off, op.Len); err != nil {
				return used, err
			}
			var data []byte
			if copyResults {
				data = make([]byte, op.Len)
			} else {
				end := used + op.Len
				data = arena[used:end:end]
				used = end
			}
			copy(data, r.buf[op.Off:])
			out[i] = Result{Data: data}
			st.Reads++
			st.BytesRead += uint64(op.Len)
		case OpWrite:
			if err := r.check(op.Off, len(op.Data)); err != nil {
				return used, err
			}
			copy(r.buf[op.Off:], op.Data)
			out[i] = Result{}
			st.Writes++
			st.BytesWrite += uint64(len(op.Data))
		case OpCAS:
			if err := r.checkAtomic(op.Off); err != nil {
				return used, err
			}
			cur := binary.LittleEndian.Uint64(r.buf[op.Off:])
			ok := cur == op.Compare
			if ok {
				binary.LittleEndian.PutUint64(r.buf[op.Off:], op.Swap)
			}
			out[i] = Result{Old: cur, OK: ok}
			st.CASes++
		case OpMaskedCAS:
			if err := r.checkAtomic(op.Off); err != nil {
				return used, err
			}
			cur := binary.LittleEndian.Uint64(r.buf[op.Off:])
			ok := cur&op.Mask == op.Compare&op.Mask
			if ok {
				next := cur&^op.Mask | op.Swap&op.Mask
				binary.LittleEndian.PutUint64(r.buf[op.Off:], next)
			}
			out[i] = Result{Old: cur, OK: ok}
			st.MaskedCASes++
		default:
			return used, fmt.Errorf("rdma: unknown op kind %d", op.Kind)
		}
	}
	return used, nil
}

func (r *Region) check(off uint64, n int) error {
	if n < 0 || off > uint64(len(r.buf)) || uint64(n) > uint64(len(r.buf))-off {
		return fmt.Errorf("rdma: access [%d,%d) outside region %q of %d bytes",
			off, off+uint64(n), r.name, len(r.buf))
	}
	return nil
}

func (r *Region) checkAtomic(off uint64) error {
	if off%8 != 0 {
		return fmt.Errorf("rdma: atomic at unaligned offset %d", off)
	}
	return r.check(off, 8)
}

// post1 issues a single-verb batch with the op held in the post's own
// descriptor, so the convenience wrappers allocate nothing.
func (qp *QP) post1(p *sim.Proc, op Op) ([]Result, error) {
	d := qp.fabric.laneOf(p).getPending(qp.fabric)
	d.op1[0] = op
	return qp.postWith(p, d, d.op1[:1])
}

// Read fetches n bytes at off in a single round-trip. The returned
// bytes follow Result.Data's lifetime rules.
func (qp *QP) Read(p *sim.Proc, off uint64, n int) ([]byte, error) {
	res, err := qp.post1(p, Op{Kind: OpRead, Off: off, Len: n})
	if err != nil {
		return nil, err
	}
	return res[0].Data, nil
}

// Write stores data at off in a single round-trip.
func (qp *QP) Write(p *sim.Proc, off uint64, data []byte) error {
	_, err := qp.post1(p, Op{Kind: OpWrite, Off: off, Data: data})
	return err
}

// CAS compares-and-swaps the 8-byte word at off.
func (qp *QP) CAS(p *sim.Proc, off, compare, swap uint64) (old uint64, ok bool, err error) {
	res, err := qp.post1(p, Op{Kind: OpCAS, Off: off, Compare: compare, Swap: swap})
	if err != nil {
		return 0, false, err
	}
	return res[0].Old, res[0].OK, nil
}

// MaskedCAS compares-and-swaps only the bits of mask within the 8-byte
// word at off.
func (qp *QP) MaskedCAS(p *sim.Proc, off, compare, swap, mask uint64) (old uint64, ok bool, err error) {
	res, err := qp.post1(p, Op{Kind: OpMaskedCAS, Off: off, Compare: compare, Swap: swap, Mask: mask})
	if err != nil {
		return 0, false, err
	}
	return res[0].Old, res[0].OK, nil
}

// PostMulti issues one batch per queue pair concurrently (as a real
// NIC would with doorbells to several QPs) and waits for all of them:
// the verbs of every batch apply in order at the same instant and the
// caller is charged the slowest batch's round-trip, not the sum. This
// is how synchronous (f+1)-replication writes all replicas in one
// round-trip of latency.
//
// The returned slice (and any READ payloads inside it, unless
// CopyResults is set) is scratch reused by a later post: consume it
// before the issuing process posts again or parks.
func PostMulti(p *sim.Proc, batches []Batch) ([][]Result, error) {
	if len(batches) == 0 {
		return nil, nil
	}
	f := batches[0].QP.fabric
	part := p.Env().Part()
	cross := false
	for _, b := range batches {
		if b.QP.fabric != f {
			panic("rdma: PostMulti across fabrics")
		}
		if f.world != nil && b.QP.region.part != part {
			cross = true
		}
	}
	lane := f.lanes[part]
	if cross {
		d := lane.getPending(f)
		d.batches = batches
		if cap(d.out) < len(batches) {
			d.out = make([][]Result, len(batches))
		}
		d.out = d.out[:len(batches)]
		_, out, err := d.crossPost(p)
		return out, err
	}
	var maxLat sim.Duration
	for _, b := range batches {
		if lat := f.latency(lane.env.Rand(), batchPayload(b.Ops), len(b.Ops)); lat > maxLat {
			maxLat = lat
		}
	}
	if lane.rec != nil {
		for _, b := range batches {
			lane.emitIssue(p, b.QP, b.Ops)
		}
	}
	if lane.met != nil {
		for _, b := range batches {
			lane.met.post(b.QP, b.Ops)
		}
	}
	d := lane.getPending(f)
	d.proc, d.batches = p, batches
	if cap(d.out) < len(batches) {
		d.out = make([][]Result, len(batches))
	}
	d.out = d.out[:len(batches)]
	now := p.Now()
	d.resumeAt = now.Add(maxLat)
	lane.env.CallAt(now.Add(maxLat/2), d.fire)
	p.Suspend()
	out, err := d.out, d.err
	if lane.rec != nil {
		for _, b := range batches {
			lane.emitComplete(p, b.QP, b.Ops, maxLat)
		}
	}
	if lane.fl != nil {
		// One park for the whole multi-post: charge its cost once.
		lane.fl.Wire(p, d.wireClass(), maxLat)
	}
	if lane.met != nil {
		for _, b := range batches {
			lane.met.complete(b.Ops)
		}
	}
	lane.putPending(d)
	return out, err
}

// Batch pairs a queue pair with the ops to post on it, for PostMulti.
type Batch struct {
	QP  *QP
	Ops []Op
}
