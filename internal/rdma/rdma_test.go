package rdma

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"crest/internal/sim"
)

func noJitter() Params {
	p := DefaultParams()
	p.JitterPct = 0
	return p
}

// runOne runs fn as a single simulated process and fails on error.
func runOne(t *testing.T, params Params, fn func(p *sim.Proc, f *Fabric)) {
	t.Helper()
	env := sim.NewEnv(1)
	f := NewFabric(env, params)
	env.Spawn("test", func(p *sim.Proc) { fn(p, f) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 1024)
		qp := f.Connect(r)
		want := []byte("hello, remote memory")
		if err := qp.Write(p, 100, want); err != nil {
			t.Fatal(err)
		}
		got, err := qp.Read(p, 100, len(want))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q, want %q", got, want)
		}
	})
}

func TestReadReturnsPrivateCopy(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		if err := qp.Write(p, 0, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		got, err := qp.Read(p, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		got[0] = 99 // must not corrupt the region
		again, err := qp.Read(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if again[0] != 1 {
			t.Fatalf("region corrupted by mutating a read result")
		}
	})
}

func TestCASSemantics(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		old, ok, err := qp.CAS(p, 8, 0, 42)
		if err != nil || !ok || old != 0 {
			t.Fatalf("CAS(0,42) = (%d,%v,%v), want (0,true,nil)", old, ok, err)
		}
		old, ok, err = qp.CAS(p, 8, 0, 7)
		if err != nil || ok || old != 42 {
			t.Fatalf("failing CAS = (%d,%v,%v), want (42,false,nil)", old, ok, err)
		}
	})
}

func TestMaskedCASOnlyTouchesMaskedBits(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		// Preload word with bits 0 and 2 set.
		binary.LittleEndian.PutUint64(r.Bytes()[0:], 0b101)
		// Lock cells 1 and 3 (bits 1 and 3): expect them free.
		mask := uint64(0b1010)
		old, ok, err := qp.MaskedCAS(p, 0, 0, mask, mask)
		if err != nil || !ok {
			t.Fatalf("masked-CAS = (%d,%v,%v), want success", old, ok, err)
		}
		got := binary.LittleEndian.Uint64(r.Bytes()[0:])
		if got != 0b1111 {
			t.Fatalf("word = %b, want 1111", got)
		}
		// Locking bit 1 again must fail and change nothing.
		_, ok, err = qp.MaskedCAS(p, 0, 0, 0b10, 0b10)
		if err != nil || ok {
			t.Fatalf("relock succeeded")
		}
		if got := binary.LittleEndian.Uint64(r.Bytes()[0:]); got != 0b1111 {
			t.Fatalf("failed masked-CAS mutated word to %b", got)
		}
		// Release bits 1 and 3: compare them as set, swap to zero.
		_, ok, err = qp.MaskedCAS(p, 0, mask, 0, mask)
		if err != nil || !ok {
			t.Fatalf("release failed")
		}
		if got := binary.LittleEndian.Uint64(r.Bytes()[0:]); got != 0b101 {
			t.Fatalf("word after release = %b, want 101", got)
		}
	})
}

func TestBatchIsOneRTT(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 1024)
		qp := f.Connect(r)
		before := f.Stats()
		_, err := qp.Post(p, []Op{
			{Kind: OpWrite, Off: 0, Data: make([]byte, 64)},
			{Kind: OpWrite, Off: 64, Data: make([]byte, 64)},
			{Kind: OpMaskedCAS, Off: 128, Mask: 1, Swap: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		d := f.Stats().Sub(before)
		if d.RTTs != 1 {
			t.Fatalf("batch took %d RTTs, want 1", d.RTTs)
		}
		if d.Writes != 2 || d.MaskedCASes != 1 {
			t.Fatalf("counted %+v", d)
		}
	})
}

func TestBatchAppliesInPostedOrder(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		_, err := qp.Post(p, []Op{
			{Kind: OpWrite, Off: 0, Data: []byte{1}},
			{Kind: OpWrite, Off: 0, Data: []byte{2}},
			{Kind: OpRead, Off: 0, Len: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Bytes()[0] != 2 {
			t.Fatalf("later write did not win: %d", r.Bytes()[0])
		}
	})
}

func TestLatencyModel(t *testing.T) {
	params := Params{RTT: 2 * sim.Microsecond, GbpsBandwidth: 100, PerOp: 0}
	env := sim.NewEnv(1)
	f := NewFabric(env, params)
	r := f.Register("mn0", 1<<20)
	var took sim.Duration
	env.Spawn("test", func(p *sim.Proc) {
		qp := f.Connect(r)
		start := p.Now()
		if _, err := qp.Read(p, 0, 0); err != nil {
			t.Error(err)
		}
		took = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 2*sim.Microsecond {
		t.Fatalf("empty read took %v, want 2µs", took)
	}

	// A 100 KB payload on 100 Gbps adds 8µs of serialization.
	env2 := sim.NewEnv(1)
	f2 := NewFabric(env2, params)
	r2 := f2.Register("mn0", 1<<20)
	env2.Spawn("test", func(p *sim.Proc) {
		qp := f2.Connect(r2)
		start := p.Now()
		if _, err := qp.Read(p, 0, 100_000); err != nil {
			t.Error(err)
		}
		took = p.Now().Sub(start)
	})
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 10*sim.Microsecond {
		t.Fatalf("100KB read took %v, want 10µs", took)
	}
}

func TestConcurrentCASOnlyOneWins(t *testing.T) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	r := f.Register("mn0", 64)
	wins := 0
	for i := 0; i < 10; i++ {
		env.Spawn("racer", func(p *sim.Proc) {
			qp := f.Connect(r)
			if _, ok, err := qp.CAS(p, 0, 0, 1); err == nil && ok {
				wins++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if wins != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", wins)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		if _, err := qp.Read(p, 60, 8); err == nil {
			t.Error("read past end succeeded")
		}
		if err := qp.Write(p, 64, []byte{1}); err == nil {
			t.Error("write past end succeeded")
		}
		if _, _, err := qp.CAS(p, 4, 0, 1); err == nil {
			t.Error("unaligned CAS succeeded")
		}
	})
}

func TestFailedRegionRejectsVerbs(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 64)
		qp := f.Connect(r)
		r.Fail()
		if _, err := qp.Read(p, 0, 8); err == nil {
			t.Error("read on failed region succeeded")
		}
		r.Recover()
		if _, err := qp.Read(p, 0, 8); err != nil {
			t.Errorf("read after recover failed: %v", err)
		}
	})
}

func TestPostMultiParallelLatency(t *testing.T) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	r0 := f.Register("mn0", 1024)
	r1 := f.Register("mn1", 1024)
	var took sim.Duration
	env.Spawn("test", func(p *sim.Proc) {
		q0, q1 := f.Connect(r0), f.Connect(r1)
		start := p.Now()
		_, err := PostMulti(p, []Batch{
			{QP: q0, Ops: []Op{{Kind: OpWrite, Off: 0, Data: make([]byte, 64)}}},
			{QP: q1, Ops: []Op{{Kind: OpWrite, Off: 0, Data: make([]byte, 64)}}},
		})
		if err != nil {
			t.Error(err)
		}
		took = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Both replicas written, but the caller pays one round-trip.
	one := f.latencyForTest(64, 1)
	if took != one {
		t.Fatalf("PostMulti took %v, want %v (single RTT)", took, one)
	}
	if r0.Bytes()[0] != 0 || r1.Bytes()[0] != 0 {
		t.Fatal("unexpected region state")
	}
	if got := f.Stats().RTTs; got != 2 {
		t.Fatalf("counted %d wire RTTs, want 2", got)
	}
}

// latencyForTest exposes the internal latency model to tests.
func (f *Fabric) latencyForTest(payload, ops int) sim.Duration {
	return f.latency(f.lanes[0].env.Rand(), payload, ops)
}

// Property: masked-CAS with full mask behaves exactly like CAS.
func TestQuickMaskedCASFullMaskIsCAS(t *testing.T) {
	f := func(initial, compare, swap uint64) bool {
		env := sim.NewEnv(1)
		fab := NewFabric(env, noJitter())
		ra := fab.Register("a", 16)
		rb := fab.Register("b", 16)
		binary.LittleEndian.PutUint64(ra.Bytes(), initial)
		binary.LittleEndian.PutUint64(rb.Bytes(), initial)
		var same bool
		env.Spawn("t", func(p *sim.Proc) {
			qa, qb := fab.Connect(ra), fab.Connect(rb)
			oa, oka, _ := qa.CAS(p, 0, compare, swap)
			ob, okb, _ := qb.MaskedCAS(p, 0, compare, swap, ^uint64(0))
			same = oa == ob && oka == okb &&
				binary.LittleEndian.Uint64(ra.Bytes()) == binary.LittleEndian.Uint64(rb.Bytes())
		})
		if err := env.Run(); err != nil {
			return false
		}
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: masked-CAS never alters bits outside the mask.
func TestQuickMaskedCASPreservesUnmaskedBits(t *testing.T) {
	f := func(initial, compare, swap, mask uint64) bool {
		env := sim.NewEnv(1)
		fab := NewFabric(env, noJitter())
		r := fab.Register("a", 16)
		binary.LittleEndian.PutUint64(r.Bytes(), initial)
		ok := true
		env.Spawn("t", func(p *sim.Proc) {
			qp := fab.Connect(r)
			_, _, err := qp.MaskedCAS(p, 0, compare, swap, mask)
			after := binary.LittleEndian.Uint64(r.Bytes())
			ok = err == nil && after&^mask == initial&^mask
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVerbRoundTrip(b *testing.B) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	r := f.Register("mn0", 4096)
	env.Spawn("bench", func(p *sim.Proc) {
		qp := f.Connect(r)
		for i := 0; i < b.N; i++ {
			if _, err := qp.Read(p, 0, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestJitterStaysWithinHalfOpenBound pins the documented jitter
// contract: each round-trip is widened by a uniformly random factor in
// the half-open interval [0, JitterPct/100), so the no-jitter latency
// is attainable and the full widening is not.
func TestJitterStaysWithinHalfOpenBound(t *testing.T) {
	const payload = 256

	// The deterministic base latency of one single-verb read.
	var base sim.Duration
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		qp := f.Connect(f.Register("mn0", 1024))
		start := p.Now()
		if _, err := qp.Read(p, 0, payload); err != nil {
			t.Fatal(err)
		}
		base = p.Now().Sub(start)
	})

	params := noJitter()
	params.JitterPct = 20
	limit := base + sim.Duration(params.JitterPct/100*float64(base))
	var min, max sim.Duration
	runOne(t, params, func(p *sim.Proc, f *Fabric) {
		qp := f.Connect(f.Register("mn0", 1024))
		for i := 0; i < 2000; i++ {
			start := p.Now()
			if _, err := qp.Read(p, 0, payload); err != nil {
				t.Fatal(err)
			}
			d := p.Now().Sub(start)
			if d < base {
				t.Fatalf("draw %d: latency %v below the no-jitter base %v", i, d, base)
			}
			if d >= limit {
				t.Fatalf("draw %d: latency %v reached the open upper bound %v", i, d, limit)
			}
			if min == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
	})
	if max == min {
		t.Fatalf("jitter had no effect: every draw took %v", min)
	}
	// The draws should roam over most of the allowed interval.
	if spread := max - min; spread < (limit-base)/2 {
		t.Fatalf("jitter spread %v covers too little of [%v, %v)", spread, base, limit)
	}
}
