package rdma

import (
	"bytes"
	"testing"

	"crest/internal/sim"
)

// BenchmarkFabricRead measures the single-verb READ fast path:
// post, single midpoint park, scratch-served payload.
func BenchmarkFabricRead(b *testing.B) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	qp := f.Connect(f.Register("mn0", 4096))
	env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := qp.Read(p, 0, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFabricCASBatch measures a doorbell batch of four CAS verbs
// — the shape of a lock-acquire round in every engine.
func BenchmarkFabricCASBatch(b *testing.B) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	qp := f.Connect(f.Register("mn0", 4096))
	ops := make([]Op, 4)
	env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			for j := range ops {
				ops[j] = Op{Kind: OpCAS, Off: uint64(j * 64), Compare: 0, Swap: 1}
			}
			res, err := qp.Post(p, ops)
			if err != nil {
				b.Fatal(err)
			}
			for j := range ops {
				ops[j] = Op{Kind: OpCAS, Off: uint64(j * 64), Compare: 1, Swap: 0}
			}
			if !res[0].OK {
				b.Fatal("first CAS lost on an uncontended word")
			}
			if _, err := qp.Post(p, ops); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestVerbSteadyStateZeroAlloc pins the per-verb allocation contract:
// after the first round-trip sizes the descriptor scratch, READ,
// WRITE, CAS and multi-batch posts allocate nothing.
func TestVerbSteadyStateZeroAlloc(t *testing.T) {
	env := sim.NewEnv(1)
	f := NewFabric(env, noJitter())
	r0 := f.Register("mn0", 4096)
	r1 := f.Register("mn1", 4096)
	qp0, qp1 := f.Connect(r0), f.Connect(r1)
	payload := []byte("0123456789abcdef")
	batches := []Batch{
		{QP: qp0, Ops: []Op{{Kind: OpCAS, Off: 0, Compare: 0, Swap: 1}, {Kind: OpRead, Off: 0, Len: 64}}},
		{QP: qp1, Ops: []Op{{Kind: OpWrite, Off: 128, Data: payload}}},
	}
	env.Spawn("probe", func(p *sim.Proc) {
		verbs := map[string]func(){
			"read":  func() { qp0.Read(p, 0, 64) },
			"write": func() { qp0.Write(p, 64, payload) },
			"cas":   func() { qp0.CAS(p, 256, 0, 0) },
			"multi": func() {
				batches[0].Ops[0].Compare = 0
				PostMulti(p, batches)
				batches[0].Ops[0].Compare = 1
				batches[0].Ops[0].Swap = 0
				PostMulti(p, batches)
			},
		}
		for _, name := range []string{"read", "write", "cas", "multi"} {
			fn := verbs[name]
			fn() // warm up this verb's descriptor scratch
			if avg := testing.AllocsPerRun(20, fn); avg > 0 {
				t.Errorf("steady-state %s allocates %.1f objects per post, want 0", name, avg)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAppliesAtMidpoint pins the single-park timing contract:
// verbs take effect at the virtual midpoint of their round-trip, the
// instant the old request-sleep/apply/response-sleep implementation
// applied them.
func TestWriteAppliesAtMidpoint(t *testing.T) {
	env := sim.NewEnv(1)
	params := noJitter()
	f := NewFabric(env, params)
	r := f.Register("mn0", 1024)
	qp := f.Connect(r)

	// Measure one write's full round-trip first.
	var rtt sim.Duration
	probe := env.Spawn("probe", func(p *sim.Proc) {
		start := p.Now()
		if err := qp.Write(p, 0, []byte{7}); err != nil {
			t.Error(err)
			return
		}
		rtt = p.Now().Sub(start)
	})
	_ = probe
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt == 0 {
		t.Fatal("no round-trip measured")
	}

	// A second write starts at t0; watchers sample the region's memory
	// directly just before and just after the virtual midpoint.
	var before, after byte
	t0 := env.Now()
	mid := t0 + sim.Time(rtt/2)
	env.Spawn("writer", func(p *sim.Proc) {
		if err := qp.Write(p, 64, []byte{42}); err != nil {
			t.Error(err)
		}
	})
	env.CallAt(mid-1, func() { before = r.Bytes()[64] })
	env.CallAt(mid+1, func() { after = r.Bytes()[64] })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("write visible %v before its midpoint", sim.Duration(1))
	}
	if after != 42 {
		t.Fatal("write not applied immediately after its midpoint")
	}
}

// TestReadScratchReusedAcrossPosts pins the documented READ lifetime:
// without CopyResults, Result.Data is descriptor scratch that the next
// post on the same QP may overwrite — callers must consume it first.
func TestReadScratchReusedAcrossPosts(t *testing.T) {
	runOne(t, noJitter(), func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 1024)
		qp := f.Connect(r)
		if err := qp.Write(p, 0, []byte{1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
		if err := qp.Write(p, 512, []byte{2, 2, 2, 2}); err != nil {
			t.Fatal(err)
		}
		first, err := qp.Read(p, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, []byte{1, 1, 1, 1}) {
			t.Fatalf("first read %v", first)
		}
		if _, err := qp.Read(p, 512, 4); err != nil {
			t.Fatal(err)
		}
		// The first slice now aliases recycled scratch. Its content is
		// unspecified; the contract under test is only that same-sized
		// reads reuse the buffer rather than allocating fresh copies.
		second, err := qp.Read(p, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if &first[0] != &second[0] {
			t.Fatal("same-shape reads did not reuse descriptor scratch; the zero-alloc contract is broken")
		}
	})
}

// TestCopyResultsDetachesPayloads is the opt-out: with CopyResults
// set, READ payloads are private copies that survive later posts.
func TestCopyResultsDetachesPayloads(t *testing.T) {
	params := noJitter()
	params.CopyResults = true
	runOne(t, params, func(p *sim.Proc, f *Fabric) {
		r := f.Register("mn0", 1024)
		qp := f.Connect(r)
		if err := qp.Write(p, 0, []byte{1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
		if err := qp.Write(p, 512, []byte{2, 2, 2, 2}); err != nil {
			t.Fatal(err)
		}
		first, err := qp.Read(p, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := qp.Read(p, 512, 4); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(first, []byte{1, 1, 1, 1}) {
			t.Fatalf("CopyResults payload corrupted by later posts: %v", first)
		}
	})
}
