package placement

import (
	"strings"
	"testing"

	"crest/internal/layout"
)

// Mix is the layout's load-bearing hash: the hash policy's node and
// shard choices — and therefore every committed byte of a hash-placed
// run — depend on these exact outputs. Pin them.
func TestMixPinned(t *testing.T) {
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0, 0, 0x0},
		{1, 0, 0xe220a8397b1dcdaf},
		{1, 1, 0xe4d971771b652c20},
		{10, 42, 0x82bf139aa66fd91},
		{2, 123456789, 0x39818ac236c73fbf},
	}
	for _, tc := range cases {
		if got := Mix(tc.a, tc.b); got != tc.want {
			t.Fatalf("Mix(%d, %d) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"hash", "hotspot", "modulo", "range"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, name := range names {
		pol, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, pol.Name())
		}
	}
	if pol, err := New(""); err != nil || pol.Name() != "hash" {
		t.Fatalf(`New("") = %v, %v; want the hash default`, pol, err)
	}
	_, err := New("striped")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range append(names, "unknown policy") {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention %q", err, name)
		}
	}
}

// Property: under hash placement every node is primary for roughly
// 1/N of the keys, and every shard group owns roughly 1/S — no node
// or group is starved or doubly loaded.
func TestHashBalance(t *testing.T) {
	const keys, nodes, shards = 100_000, 8, 6
	nodeHits := make([]int, nodes)
	shardHits := make([]int, shards)
	pol := Hash{}
	for k := 0; k < keys; k++ {
		nodeHits[pol.Primary(10, layout.Key(k), nodes)]++
		shardHits[pol.Shard(10, layout.Key(k), shards)]++
	}
	for n, hits := range nodeHits {
		if lo, hi := keys/nodes*8/10, keys/nodes*12/10; hits < lo || hits > hi {
			t.Fatalf("node %d is primary for %d of %d keys, want within [%d, %d]", n, hits, keys, lo, hi)
		}
	}
	for s, hits := range shardHits {
		if lo, hi := keys/shards*8/10, keys/shards*12/10; hits < lo || hits > hi {
			t.Fatalf("shard %d owns %d of %d keys, want within [%d, %d]", s, hits, keys, lo, hi)
		}
	}
}

// Every policy must return in-range shard and node choices, and the
// same input must always map to the same place (determinism).
func TestPoliciesInRangeAndDeterministic(t *testing.T) {
	for _, name := range Names() {
		pol, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if cs, ok := pol.(CapacitySetter); ok {
			cs.SetCapacity(7, 10_000)
		}
		for k := 0; k < 10_000; k++ {
			s := pol.Shard(7, layout.Key(k), 5)
			if s < 0 || s >= 5 {
				t.Fatalf("%s.Shard = %d out of [0,5)", name, s)
			}
			if again := pol.Shard(7, layout.Key(k), 5); again != s {
				t.Fatalf("%s.Shard not deterministic: %d then %d", name, s, again)
			}
			n := pol.Primary(7, layout.Key(k), 4)
			if n < 0 || n >= 4 {
				t.Fatalf("%s.Primary = %d out of [0,4)", name, n)
			}
		}
		// One shard group degenerates to shard 0 for every policy.
		if s := pol.Shard(7, 12345, 1); s != 0 {
			t.Fatalf("%s.Shard(…, 1) = %d, want 0", name, s)
		}
	}
}

// Range placement carves the declared key space into S contiguous
// slabs once it knows the table's capacity.
func TestRangeContiguous(t *testing.T) {
	pol := NewRange()
	pol.SetCapacity(3, 900)
	prev := 0
	for k := 0; k < 900; k++ {
		s := pol.Shard(3, layout.Key(k), 3)
		if s < prev {
			t.Fatalf("range shard regressed at key %d: %d after %d", k, s, prev)
		}
		prev = s
	}
	if pol.Shard(3, 0, 3) != 0 || pol.Shard(3, 899, 3) != 2 {
		t.Fatal("range endpoints misplaced")
	}
}

// Hotspot placement honors its seeded overrides and falls back to
// modulo for everything else; a later seed wins.
func TestHotspotOverrides(t *testing.T) {
	pol := NewHotspot([]HotKey{{Table: 1, Key: 9, Shard: 2}})
	if s := pol.Shard(1, 9, 4); s != 2 {
		t.Fatalf("seeded key placed on shard %d, want 2", s)
	}
	if s := pol.Shard(1, 10, 4); s != 10%4 {
		t.Fatalf("unseeded key placed on shard %d, want modulo fallback", s)
	}
	if s := pol.Shard(2, 9, 4); s != 9%4 {
		t.Fatal("override leaked across tables")
	}
	hs := pol
	hs.Seed([]HotKey{{Table: 1, Key: 9, Shard: 3}})
	if s := pol.Shard(1, 9, 4); s != 3 {
		t.Fatalf("re-seeded key placed on shard %d, want 3", s)
	}
	if hs.Seeded() != 1 {
		t.Fatalf("Seeded() = %d, want 1", hs.Seeded())
	}
	// Overrides beyond the group count still land in range.
	hs.Seed([]HotKey{{Table: 1, Key: 5, Shard: 9}})
	if s := pol.Shard(1, 5, 4); s < 0 || s >= 4 {
		t.Fatalf("out-of-range override produced shard %d", s)
	}
}
