// Package placement is the data-placement seam of the sharded
// topology: a Policy decides which shard group owns a record and which
// node inside that group holds its primary copy. The memory pool
// routes every PrimaryOf/ReplicaNodes call through the configured
// policy, so adding a placement strategy means implementing one small
// interface and registering a name — nothing else in the data plane
// changes.
//
// Four policies ship:
//
//   - hash: the historical behavior. One finalizer-style hash of
//     (table, key) selects the primary; with one shard group it is
//     bit-for-bit the pre-sharding layout, which is what keeps every
//     golden artifact stable at -shards 1.
//   - modulo: naive striping — shard = key mod shards. The baseline
//     that loses throughput under skew because hot keys land on
//     different shards and force cross-shard commits.
//   - range: contiguous key ranges per shard, sized from the table
//     capacities the engine reports at load time.
//   - hotspot: modulo for cold keys plus an explicit override table
//     that pins the hottest keys to one shard, seeded from a
//     causality hotspot ranking (a probe run or a prior run's -why
//     export). Colocating the hot set turns most hot transactions
//     back into single-shard commits.
package placement

import (
	"fmt"
	"sort"

	"crest/internal/layout"
)

// Policy decides data placement. Shard picks the owning shard group
// of a record; Primary picks the node inside that group holding the
// primary copy (backups follow it in ring order). Both must be pure
// functions of their arguments: placement runs on the host during
// setup and routing and must never consume virtual time or
// randomness.
type Policy interface {
	// Name is the registered policy name.
	Name() string
	// Shard returns the owning shard group in [0, shards).
	Shard(table layout.TableID, key layout.Key, shards int) int
	// Primary returns the primary's index inside its group, in
	// [0, nodesPerShard).
	Primary(table layout.TableID, key layout.Key, nodesPerShard int) int
}

// CapacitySetter is implemented by policies that need table sizes
// (range placement). The engine reports each table's capacity when it
// is created, before any record is loaded.
type CapacitySetter interface {
	SetCapacity(table layout.TableID, capacity int)
}

// Mix is the 64-bit finalizer-style hash combining table and key that
// has always placed records (it predates the placement seam; the hash
// policy preserves it bit-for-bit).
func Mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// registry maps policy names to fresh-instance factories.
var registry = map[string]func() Policy{
	"hash":    func() Policy { return Hash{} },
	"modulo":  func() Policy { return Modulo{} },
	"range":   func() Policy { return NewRange() },
	"hotspot": func() Policy { return NewHotspot(nil) },
}

// Register adds a policy factory under name. Registering an existing
// name replaces it.
func Register(name string, factory func() Policy) {
	registry[name] = factory
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New returns a fresh instance of the named policy; the empty name
// selects hash (the historical behavior).
func New(name string) (Policy, error) {
	if name == "" {
		name = "hash"
	}
	factory, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("placement: unknown policy %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Hash is the historical placement: Mix(table, key) spread over the
// nodes. At one shard group it reproduces the pre-sharding layout
// bit-for-bit; at more it spreads keys over groups by the same hash.
type Hash struct{}

// Name implements Policy.
func (Hash) Name() string { return "hash" }

// Shard implements Policy. The high hash bits pick the group so the
// group choice stays independent of the in-group primary choice.
func (Hash) Shard(table layout.TableID, key layout.Key, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int((Mix(uint64(table), uint64(key)) >> 32) % uint64(shards))
}

// Primary implements Policy, bit-for-bit the pre-sharding
// primaryIndex.
func (Hash) Primary(table layout.TableID, key layout.Key, nodesPerShard int) int {
	return int(Mix(uint64(table), uint64(key)) % uint64(nodesPerShard))
}

// Modulo is naive striping: shard = key mod shards, primary =
// (key / shards) mod nodes. It ignores skew entirely — the policy the
// crossover experiment shows losing throughput past a few shards.
type Modulo struct{}

// Name implements Policy.
func (Modulo) Name() string { return "modulo" }

// Shard implements Policy.
func (Modulo) Shard(table layout.TableID, key layout.Key, shards int) int {
	return int(uint64(key) % uint64(shards))
}

// Primary implements Policy. The odd-constant multiply decorrelates
// the in-group choice from the group choice (plain key mod nodes
// would alias the two whenever shards and group size share a factor,
// starving some nodes of primaries).
func (Modulo) Primary(table layout.TableID, key layout.Key, nodesPerShard int) int {
	return int((uint64(key) * 2654435761) % uint64(nodesPerShard))
}

// Range places contiguous key ranges on each shard: a table of
// capacity C splits into shards equal slices. Capacities arrive via
// SetCapacity when the engine creates tables; keys of unknown tables
// (or beyond capacity) fall back to modulo striping.
type Range struct {
	capacity map[layout.TableID]uint64
}

// NewRange builds a range policy with no capacities yet.
func NewRange() *Range {
	return &Range{capacity: map[layout.TableID]uint64{}}
}

// Name implements Policy.
func (*Range) Name() string { return "range" }

// SetCapacity implements CapacitySetter.
func (r *Range) SetCapacity(table layout.TableID, capacity int) {
	if capacity > 0 {
		r.capacity[table] = uint64(capacity)
	}
}

// Shard implements Policy.
func (r *Range) Shard(table layout.TableID, key layout.Key, shards int) int {
	c, ok := r.capacity[table]
	if !ok || uint64(key) >= c {
		return int(uint64(key) % uint64(shards))
	}
	return int(uint64(key) * uint64(shards) / c)
}

// Primary implements Policy. Inside a group the range order carries
// no balance information, so the hash spreads primaries evenly.
func (*Range) Primary(table layout.TableID, key layout.Key, nodesPerShard int) int {
	return int(Mix(uint64(table), uint64(key)) % uint64(nodesPerShard))
}

// HotKey pins one record to a shard group: an entry of the override
// table a Hotspot policy is seeded with.
type HotKey struct {
	Table layout.TableID `json:"table"`
	Key   layout.Key     `json:"key"`
	Shard int            `json:"shard"`
}

// Hotspot is contention-aware placement: an override table pins the
// hottest keys (by abort count and wait time, from a causality
// ranking) to chosen shards, and everything else falls back to modulo
// striping. Colocated hot keys make hot transactions single-shard
// again, which is the whole point: the commit-time cross-shard
// prepare is what modulo placement pays on nearly every hot
// transaction.
type Hotspot struct {
	hot map[hotspotKey]int
}

type hotspotKey struct {
	table layout.TableID
	key   layout.Key
}

// NewHotspot builds a hotspot policy seeded with the given overrides
// (nil is valid: pure modulo until Seed is called).
func NewHotspot(keys []HotKey) *Hotspot {
	h := &Hotspot{hot: map[hotspotKey]int{}}
	h.Seed(keys)
	return h
}

// Name implements Policy.
func (*Hotspot) Name() string { return "hotspot" }

// Seed adds overrides; later entries for the same record win.
func (h *Hotspot) Seed(keys []HotKey) {
	for _, k := range keys {
		h.hot[hotspotKey{k.Table, k.Key}] = k.Shard
	}
}

// Seeded reports how many records have overrides.
func (h *Hotspot) Seeded() int { return len(h.hot) }

// Shard implements Policy.
func (h *Hotspot) Shard(table layout.TableID, key layout.Key, shards int) int {
	if s, ok := h.hot[hotspotKey{table, key}]; ok {
		return s % shards
	}
	return int(uint64(key) % uint64(shards))
}

// Primary implements Policy.
func (*Hotspot) Primary(table layout.TableID, key layout.Key, nodesPerShard int) int {
	return int(Mix(uint64(table), uint64(key)) % uint64(nodesPerShard))
}
