package flight

import (
	"fmt"
	"io"
	"sort"

	"crest/internal/sim"
	"crest/internal/trace"
)

// us renders a virtual duration in microseconds.
func us(d sim.Duration) string { return fmt.Sprintf("%.1fµs", d.Micros()) }

// txnRef renders "T42 [label]".
func txnRef(id uint64, label string) string {
	if label == "" {
		return fmt.Sprintf("T%d", id)
	}
	return fmt.Sprintf("T%d [%s]", id, label)
}

// quantile returns the nearest-rank q-quantile of the sorted slice.
func quantile(sorted []sim.Duration, q float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// cohortMean returns the mean budget over every committed transaction
// whose total latency is at least floor, and the cohort size.
func cohortMean(txns []*TxnBudget, floor sim.Duration) (Budget, int) {
	var sum Budget
	n := 0
	for _, t := range txns {
		if t.Total() < floor {
			continue
		}
		for c := range sum {
			sum[c] += t.Budget[c]
		}
		n++
	}
	if n > 0 {
		for c := range sum {
			sum[c] /= sim.Duration(n)
		}
	}
	return sum, n
}

// WriteTail renders the aggregate latency budget report: the p50/p99/
// p999 cohort decomposition table, the tail-vs-median delta
// attribution, and the topN captured exemplars with their critical
// paths. Cohorts are committed transactions at or above each latency
// quantile, so the p999 column reads "where the slowest 0.1% spend
// their time" and the delta column shows which component grows fastest
// from the median to the tail.
func WriteTail(w io.Writer, s *Snapshot, topN int) error {
	var committed []*TxnBudget
	other := 0
	for i := range s.Txns {
		if s.Txns[i].Committed {
			committed = append(committed, &s.Txns[i])
		} else {
			other++
		}
	}
	fmt.Fprintf(w, "flight budget: %d committed txns (%d aborted/open), %d evicted from the ring\n",
		len(committed), other, s.Dropped)
	if len(committed) == 0 {
		fmt.Fprintf(w, "no committed transactions captured\n")
		return nil
	}
	lats := make([]sim.Duration, len(committed))
	for i, t := range committed {
		lats[i] = t.Total()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99, p999 := quantile(lats, 0.50), quantile(lats, 0.99), quantile(lats, 0.999)
	fmt.Fprintf(w, "latency: p50 %s  p99 %s  p999 %s\n\n", us(p50), us(p99), us(p999))

	m50, n50 := cohortMean(committed, p50)
	m99, n99 := cohortMean(committed, p99)
	m999, n999 := cohortMean(committed, p999)
	fmt.Fprintf(w, "%-10s  %12s  %12s  %12s  %12s\n", "component",
		fmt.Sprintf("p50+ (%d)", n50), fmt.Sprintf("p99+ (%d)", n99),
		fmt.Sprintf("p999+ (%d)", n999), "tail-median")
	var delta Budget
	for c := Component(0); c < NumComponents; c++ {
		delta[c] = m999[c] - m50[c]
		if m50[c] == 0 && m99[c] == 0 && m999[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s  %12s  %12s  %12s  %+12.1f\n",
			c, us(m50[c]), us(m99[c]), us(m999[c]), delta[c].Micros())
	}
	fmt.Fprintf(w, "%-10s  %12s  %12s  %12s  %+12.1f\n", "total",
		us(m50.Total()), us(m99.Total()), us(m999.Total()),
		(m999.Total() - m50.Total()).Micros())
	growth := m999.Total() - m50.Total()
	fastest := delta.Dominant()
	if growth > 0 {
		fmt.Fprintf(w, "tail vs median: %s grows fastest (+%s of +%s, %.1f%%)\n",
			fastest, us(delta[fastest]), us(growth),
			100*float64(delta[fastest])/float64(growth))
	}

	if topN <= 0 {
		topN = 5
	}
	ex := make([]*Exemplar, len(s.Exemplars))
	for i := range s.Exemplars {
		ex[i] = &s.Exemplars[i]
	}
	sort.Slice(ex, func(i, j int) bool {
		a, b := ex[i], ex[j]
		if at, bt := a.Total(), b.Total(); at != bt {
			return at > bt
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.ID < b.ID
	})
	if len(ex) > topN {
		ex = ex[:topN]
	}
	if len(ex) > 0 {
		fmt.Fprintf(w, "\ntop exemplars:\n")
	}
	for _, e := range ex {
		dom := e.Budget.Dominant()
		fmt.Fprintf(w, "  %s shard %d: %s over %d attempt(s), dominant %s %s (%.0f%%)\n",
			txnRef(e.ID, e.Label), e.Shard, us(e.Total()), e.Attempts,
			dom, us(e.Budget[dom]), 100*float64(e.Budget[dom])/float64(e.Total()))
		fmt.Fprintf(w, "    └─ %s\n", critPathLine(e))
	}
	return nil
}

// dominantAttempt picks the exemplar's heaviest attempt by wall span
// (gap before it included); ties break toward the earlier attempt.
func dominantAttempt(e *Exemplar) int {
	best, bestD := 0, sim.Duration(-1)
	for i := range e.Detail {
		a := &e.Detail[i]
		d := a.End.Sub(a.Start) + a.Gap
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// dominantPhase picks an attempt's heaviest phase.
func dominantPhase(a *AttemptInfo) trace.Phase {
	best := trace.Phase(0)
	for ph := trace.Phase(1); ph < trace.NumPhases; ph++ {
		if a.Phases[ph] > a.Phases[best] {
			best = ph
		}
	}
	return best
}

// critPathLine renders one exemplar's critical path: the dominant
// attempt, its dominant phase, and that phase's wire/wait/compute
// split.
func critPathLine(e *Exemplar) string {
	if len(e.Detail) == 0 {
		return "no attempt detail captured"
	}
	i := dominantAttempt(e)
	a := &e.Detail[i]
	span := a.End.Sub(a.Start)
	out := fmt.Sprintf("critical path: attempt %d/%d (%s", i+1, e.Attempts, us(span))
	if a.Gap > 0 {
		kind := "backoff"
		if a.GapQueue {
			kind = "queue"
		}
		out += fmt.Sprintf(" after %s %s", us(a.Gap), kind)
	}
	ph := dominantPhase(a)
	comp := a.Phases[ph] - a.WirePhase[ph] - a.WaitPhase[ph] - a.BackoffPhase[ph]
	out += fmt.Sprintf(") → %s phase %s", ph, us(a.Phases[ph]))
	out += fmt.Sprintf(" = wire %s + wait %s + backoff %s + compute %s",
		us(a.WirePhase[ph]), us(a.WaitPhase[ph]), us(a.BackoffPhase[ph]), us(comp))
	if a.WaitPhase[ph] > 0 && a.WaitHolder != 0 {
		out += fmt.Sprintf(" (heaviest wait %s on T%d)", us(a.WaitMax), a.WaitHolder)
	}
	return out
}

// WriteCritPath renders transaction id's full flight record: the
// budget decomposition, the per-attempt timeline, and the critical
// path. When the transaction's summary survives in the ring but its
// full record was not captured as an exemplar, the summary-level
// decomposition is printed with a note. It errors when the id is
// unknown.
func WriteCritPath(w io.Writer, s *Snapshot, id uint64) error {
	if e := s.Exemplar(id); e != nil {
		writeHeader(w, &e.TxnBudget)
		writeBudget(w, &e.TxnBudget)
		for i := range e.Detail {
			a := &e.Detail[i]
			if a.Gap > 0 {
				kind := "backoff"
				if a.GapQueue {
					kind = "queue"
				}
				fmt.Fprintf(w, "  gap: %s %s\n", kind, us(a.Gap))
			}
			n := fmt.Sprintf("attempt %d", i+1)
			if a.Folded > 0 {
				n = fmt.Sprintf("attempts %d-%d", i+1, i+1+a.Folded)
			}
			fmt.Fprintf(w, "  %s: %s → %s\n", n, us(a.End.Sub(a.Start)), a.Outcome)
			for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
				if a.Phases[ph] == 0 {
					continue
				}
				comp := a.Phases[ph] - a.WirePhase[ph] - a.WaitPhase[ph] - a.BackoffPhase[ph]
				fmt.Fprintf(w, "    %-8s %10s   wire %s, wait %s, backoff %s, compute %s\n",
					ph, us(a.Phases[ph]), us(a.WirePhase[ph]), us(a.WaitPhase[ph]),
					us(a.BackoffPhase[ph]), us(comp))
			}
		}
		fmt.Fprintf(w, "%s\n", critPathLine(e))
		return nil
	}
	if t := s.Txn(id); t != nil {
		writeHeader(w, t)
		writeBudget(w, t)
		fmt.Fprintf(w, "  (no exemplar detail: txn was not a top-K outlier in its bucket)\n")
		return nil
	}
	return fmt.Errorf("flight: unknown txn %d (recorded %d txns, %d evicted)",
		id, len(s.Txns), s.Dropped)
}

// writeHeader prints a transaction's identity line.
func writeHeader(w io.Writer, t *TxnBudget) {
	state := "committed"
	if !t.Committed {
		state = "aborted/open"
		if t.Reason != "" {
			state = fmt.Sprintf("aborted/open (last: %s)", t.Reason)
		}
	}
	fmt.Fprintf(w, "%s coord %d, shard %d: %s in %s over %d attempt(s)\n",
		txnRef(t.ID, t.Label), t.Coord, t.Shard, state, us(t.Total()), t.Attempts)
}

// writeBudget prints the nonzero budget components, largest first.
func writeBudget(w io.Writer, t *TxnBudget) {
	type row struct {
		c Component
		d sim.Duration
	}
	var rows []row
	for c := Component(0); c < NumComponents; c++ {
		if t.Budget[c] != 0 {
			rows = append(rows, row{c, t.Budget[c]})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	total := t.Total()
	fmt.Fprintf(w, "budget:")
	for i, r := range rows {
		if i > 0 {
			fmt.Fprintf(w, ",")
		}
		pct := 0.0
		if total != 0 {
			pct = 100 * float64(r.d) / float64(total)
		}
		fmt.Fprintf(w, " %s %s (%.0f%%)", r.c, us(r.d), pct)
	}
	fmt.Fprintf(w, "\n")
	if t.WaitMax > 0 && t.WaitHolder != 0 {
		fmt.Fprintf(w, "heaviest wait: %s on T%d\n", us(t.WaitMax), t.WaitHolder)
	}
}
