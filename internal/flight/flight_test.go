package flight

import (
	"bytes"
	"testing"

	"crest/internal/sim"
	"crest/internal/trace"
)

func inProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Spawn("test", fn)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Shard(0, 4) != nil {
		t.Fatal("nil Shard should stay nil")
	}
	r.SetWarmup(5)
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, 0, "txn", nil)
		r.Phase(p, trace.PhaseLock)
		r.Wire(p, ClassRead, sim.Microsecond)
		r.Wait(p, 2, sim.Microsecond)
		r.Backoff(p, sim.Microsecond)
		r.Fail(p, "lock-fail", false)
		r.Done(p, false)
	})
	snap := r.Snapshot()
	if len(snap.Txns) != 0 || len(snap.Exemplars) != 0 {
		t.Fatal("nil recorder produced data")
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reports contents")
	}
}

// TestBudgetSumsToElapsed drives one transaction through two attempts
// with wire, wait and backoff charges and checks every component lands
// where it should — and that the budget sums exactly to the elapsed
// virtual time.
func TestBudgetSumsToElapsed(t *testing.T) {
	r := NewRecorder(Options{})
	key := new(int)
	inProc(t, func(p *sim.Proc) {
		// Attempt 1: 2µs exec (1µs wire-read inside), 3µs lock with a
		// 2µs wait, fail, 1µs release cleanup.
		r.Begin(p, 7, 2, "pay", key)
		p.Sleep(sim.Microsecond)
		r.Wire(p, ClassRead, sim.Microsecond)
		p.Sleep(sim.Microsecond) // exec compute
		r.Phase(p, trace.PhaseLock)
		p.Sleep(2 * sim.Microsecond)
		r.Wait(p, 42, 2*sim.Microsecond)
		p.Sleep(sim.Microsecond) // lock compute
		r.Fail(p, "lock-fail", false)
		p.Sleep(sim.Microsecond) // release cleanup after the abort
		r.Done(p, false)

		// 4µs retry backoff gap.
		p.Sleep(4 * sim.Microsecond)

		// Attempt 2: 1µs exec, 1µs validate with a 500ns CAS, commit.
		r.Begin(p, 7, 2, "pay", key)
		p.Sleep(sim.Microsecond)
		r.Phase(p, trace.PhaseValidate)
		p.Sleep(sim.Microsecond)
		r.Wire(p, ClassCAS, 500*sim.Nanosecond)
		r.Done(p, true)
	})
	snap := r.Snapshot()
	if len(snap.Txns) != 1 {
		t.Fatalf("recorded %d txns, want 1", len(snap.Txns))
	}
	tx := &snap.Txns[0]
	if !tx.Committed || tx.Attempts != 2 || tx.Reason != "lock-fail" {
		t.Fatalf("bad summary: %+v", tx)
	}
	if got, want := tx.Total(), tx.End.Sub(tx.Begin); got != want {
		t.Fatalf("budget sums to %v, elapsed %v", got, want)
	}
	want := Budget{}
	want[CompWireRead] = sim.Microsecond
	want[CompExec] = sim.Microsecond + sim.Microsecond // attempt 1 + attempt 2 compute
	want[CompWait] = 2 * sim.Microsecond
	want[CompLock] = sim.Microsecond
	want[CompRelease] = sim.Microsecond
	want[CompBackoff] = 4 * sim.Microsecond
	want[CompValidate] = sim.Microsecond - 500*sim.Nanosecond
	want[CompWireCAS] = 500 * sim.Nanosecond
	if tx.Budget != want {
		t.Fatalf("budget %v, want %v", tx.Budget, want)
	}
	if tx.WaitHolder != 42 || tx.WaitMax != 2*sim.Microsecond {
		t.Fatalf("heaviest wait %v on T%d, want 2µs on T42", tx.WaitMax, tx.WaitHolder)
	}

	// The committed outlier was captured with per-attempt detail.
	ex := snap.Exemplar(tx.ID)
	if ex == nil {
		t.Fatal("transaction not captured as an exemplar")
	}
	if len(ex.Detail) != 2 {
		t.Fatalf("captured %d attempts, want 2", len(ex.Detail))
	}
	a2 := ex.Detail[1]
	if a2.Gap != 4*sim.Microsecond || a2.GapQueue {
		t.Fatalf("attempt 2 gap %v queue=%v, want 4µs backoff", a2.Gap, a2.GapQueue)
	}
	if a2.Outcome != "commit" {
		t.Fatalf("attempt 2 outcome %q", a2.Outcome)
	}
}

// TestQueueVsBackoffGap: an admission-wait abort charges its re-queue
// gap to queue, any other abort to backoff.
func TestQueueVsBackoffGap(t *testing.T) {
	r := NewRecorder(Options{})
	key := new(int)
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, 0, "t", key)
		r.Fail(p, "wait", true)
		r.Done(p, false)
		p.Sleep(3 * sim.Microsecond)
		r.Begin(p, 1, 0, "t", key)
		r.Fail(p, "lock-fail", false)
		r.Done(p, false)
		p.Sleep(5 * sim.Microsecond)
		r.Begin(p, 1, 0, "t", key)
		r.Done(p, true)
	})
	tx := &r.Snapshot().Txns[0]
	if tx.Budget[CompQueue] != 3*sim.Microsecond {
		t.Fatalf("queue %v, want 3µs", tx.Budget[CompQueue])
	}
	if tx.Budget[CompBackoff] != 5*sim.Microsecond {
		t.Fatalf("backoff %v, want 5µs", tx.Budget[CompBackoff])
	}
}

// TestAbandonedTxnFinalizesOnNextBegin: when the harness gives up on a
// transaction (different txnKey begins on the same proc), the old
// record finalizes as aborted; transactions still open at snapshot
// time surface without mutation.
func TestAbandonedTxnFinalizes(t *testing.T) {
	r := NewRecorder(Options{})
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, 0, "a", new(int))
		p.Sleep(sim.Microsecond)
		r.Fail(p, "validation", false)
		r.Done(p, false)
		r.Begin(p, 1, 0, "b", new(int)) // abandons "a"
		p.Sleep(sim.Microsecond)
		// "b" still open at snapshot time.
	})
	snap := r.Snapshot()
	if len(snap.Txns) != 2 {
		t.Fatalf("recorded %d txns, want 2", len(snap.Txns))
	}
	a, b := &snap.Txns[0], &snap.Txns[1]
	if a.Label != "a" || a.Committed || a.Reason != "validation" {
		t.Fatalf("abandoned txn summary: %+v", a)
	}
	if a.Total() != a.End.Sub(a.Begin) {
		t.Fatalf("abandoned budget %v != elapsed %v", a.Total(), a.End.Sub(a.Begin))
	}
	if b.Label != "b" || b.Committed {
		t.Fatalf("open txn summary: %+v", b)
	}
	// Snapshot twice: surfacing open records must not mutate them.
	again := r.Snapshot()
	if len(again.Txns) != 2 || again.Txns[1] != *b {
		t.Fatal("second snapshot differs")
	}
}

// TestWarmupSkipsEarlyTxns: records beginning before the cutoff are
// tracked (retries still resume) but never published.
func TestWarmupSkipsEarlyTxns(t *testing.T) {
	r := NewRecorder(Options{})
	r.SetWarmup(sim.Time(10 * sim.Microsecond))
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 1, 0, "early", new(int))
		p.Sleep(sim.Microsecond)
		r.Done(p, true)
		p.Sleep(20 * sim.Microsecond)
		r.Begin(p, 1, 0, "late", new(int))
		r.Done(p, true)
	})
	snap := r.Snapshot()
	if len(snap.Txns) != 1 || snap.Txns[0].Label != "late" {
		t.Fatalf("want only the post-warmup txn, got %d", len(snap.Txns))
	}
}

// TestAttemptFoldPastDetailBound: a transaction with more attempts
// than the detail array folds the overflow into the last slot without
// losing budget exactness.
func TestAttemptFoldPastDetailBound(t *testing.T) {
	r := NewRecorder(Options{})
	key := new(int)
	const attempts = maxAttemptDetail + 5
	inProc(t, func(p *sim.Proc) {
		for i := 0; i < attempts; i++ {
			if i > 0 {
				p.Sleep(sim.Microsecond)
			}
			r.Begin(p, 1, 0, "hot", key)
			p.Sleep(2 * sim.Microsecond)
			if i < attempts-1 {
				r.Fail(p, "lock-fail", false)
			}
			r.Done(p, i == attempts-1)
		}
	})
	snap := r.Snapshot()
	tx := &snap.Txns[0]
	if tx.Attempts != attempts {
		t.Fatalf("attempts %d, want %d", tx.Attempts, attempts)
	}
	if tx.Total() != tx.End.Sub(tx.Begin) {
		t.Fatalf("folded budget %v != elapsed %v", tx.Total(), tx.End.Sub(tx.Begin))
	}
	ex := snap.Exemplar(tx.ID)
	if ex == nil {
		t.Fatal("not captured")
	}
	if len(ex.Detail) != maxAttemptDetail {
		t.Fatalf("detail has %d slots, want %d", len(ex.Detail), maxAttemptDetail)
	}
	last := ex.Detail[maxAttemptDetail-1]
	if last.Folded != attempts-maxAttemptDetail {
		t.Fatalf("folded %d, want %d", last.Folded, attempts-maxAttemptDetail)
	}
	if last.Outcome != "commit" {
		t.Fatalf("folded slot outcome %q", last.Outcome)
	}
}

// TestExemplarBucketsKeepTopK: buckets hold the K slowest transactions
// per (shard, dominant component), evicting deterministically.
func TestExemplarBucketsKeepTopK(t *testing.T) {
	r := NewRecorder(Options{ExemplarK: 2})
	inProc(t, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			r.Begin(p, 1, 0, "t", new(int))
			p.Sleep(sim.Duration(i+1) * sim.Microsecond) // exec compute: 1..6µs
			r.Done(p, true)
		}
	})
	snap := r.Snapshot()
	if len(snap.Txns) != 6 {
		t.Fatalf("%d summaries, want 6", len(snap.Txns))
	}
	if len(snap.Exemplars) != 2 {
		t.Fatalf("%d exemplars, want 2", len(snap.Exemplars))
	}
	if snap.Exemplars[0].Total() != 6*sim.Microsecond ||
		snap.Exemplars[1].Total() != 5*sim.Microsecond {
		t.Fatalf("kept %v and %v, want the two slowest",
			snap.Exemplars[0].Total(), snap.Exemplars[1].Total())
	}
	if snap.Exemplars[0].Bucket != CompExec {
		t.Fatalf("bucket %v, want exec", snap.Exemplars[0].Bucket)
	}
}

// TestShardStridedIDsAndMerge: partition children issue disjoint ids
// and the root snapshot merges deterministically.
func TestShardStridedIDsAndMerge(t *testing.T) {
	root := NewRecorder(Options{})
	c0, c1 := root.Shard(0, 2), root.Shard(1, 2)
	if root.Shard(0, 2) != c0 {
		t.Fatal("Shard is not idempotent")
	}
	env := sim.NewEnv(1)
	env.Spawn("p0", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			c0.Begin(p, 0, 0, "a", new(int))
			p.Sleep(sim.Microsecond)
			c0.Done(p, true)
		}
	})
	env.Spawn("p1", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			c1.Begin(p, 1, 1, "b", new(int))
			p.Sleep(2 * sim.Microsecond)
			c1.Done(p, true)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	snap := root.Snapshot()
	if len(snap.Txns) != 6 {
		t.Fatalf("merged %d txns, want 6", len(snap.Txns))
	}
	seen := map[uint64]bool{}
	for i := range snap.Txns {
		tx := &snap.Txns[i]
		if seen[tx.ID] {
			t.Fatalf("duplicate id %d after merge", tx.ID)
		}
		seen[tx.ID] = true
		odd := tx.ID%2 == 0 // stride 2: child 0 issues odd ids 1,3,5; child 1 even 2,4,6
		if tx.Shard == 0 && odd {
			t.Fatalf("child 0 issued id %d", tx.ID)
		}
	}
	for i := 1; i < len(snap.Txns); i++ {
		if snap.Txns[i].Begin < snap.Txns[i-1].Begin {
			t.Fatal("merge not ordered by begin time")
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Shard of a child did not panic")
		}
	}()
	c0.Shard(0, 2)
}

func TestShardIdentityWhenUnpartitioned(t *testing.T) {
	r := NewRecorder(Options{})
	if r.Shard(0, 1) != r {
		t.Fatal("parts=1 must return the receiver")
	}
}

// TestJSONRoundTripByteEqual: Write → Read → Write reproduces the
// export byte for byte.
func TestJSONRoundTripByteEqual(t *testing.T) {
	r := NewRecorder(Options{})
	key := new(int)
	inProc(t, func(p *sim.Proc) {
		r.Begin(p, 3, 1, "pay", key)
		p.Sleep(sim.Microsecond)
		r.Wire(p, ClassRead, 500*sim.Nanosecond)
		r.Fail(p, "lock-fail", false)
		r.Done(p, false)
		p.Sleep(sim.Microsecond)
		r.Begin(p, 3, 1, "pay", key)
		p.Sleep(sim.Microsecond)
		r.Done(p, true)
	})
	var a bytes.Buffer
	if err := WriteJSON(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteJSON(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON export does not round-trip byte-equal")
	}

	if _, err := ReadJSON(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestEmptySnapshotExports: empty and nil snapshots export cleanly.
func TestEmptySnapshotExports(t *testing.T) {
	var r *Recorder
	var a bytes.Buffer
	if err := WriteJSON(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteJSON(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("empty export does not round-trip")
	}
	if err := WriteTail(&b, r.Snapshot(), 5); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocatesNothingSteadyState is the exemplar hot-path
// guarantee: once the pool, ring and buckets are warm, a full
// begin→fail→retry→commit cycle allocates nothing — live and nil.
func TestHotPathAllocatesNothingSteadyState(t *testing.T) {
	r := NewRecorder(Options{TxnCapacity: 32, ExemplarK: 2})
	key := new(int)
	inProc(t, func(p *sim.Proc) {
		cycle := func(rec *Recorder) {
			rec.Begin(p, 1, 0, "hot", key)
			rec.Phase(p, trace.PhaseLock)
			rec.Wire(p, ClassCAS, sim.Microsecond)
			rec.Wait(p, 9, sim.Microsecond)
			rec.Fail(p, "lock-fail", false)
			rec.Done(p, false)
			rec.Begin(p, 1, 0, "hot", key)
			rec.Phase(p, trace.PhaseLog)
			rec.Wire(p, ClassWrite, sim.Microsecond)
			rec.Backoff(p, sim.Microsecond)
			rec.Done(p, true)
		}
		// Warm-up: fill the ring past capacity and populate the bucket.
		for i := 0; i < 64; i++ {
			cycle(r)
		}
		if allocs := testing.AllocsPerRun(200, func() { cycle(r) }); allocs != 0 {
			t.Errorf("live recorder steady state allocates %.1f/op, want 0", allocs)
		}
		var nilRec *Recorder
		if allocs := testing.AllocsPerRun(200, func() { cycle(nilRec) }); allocs != 0 {
			t.Errorf("nil recorder allocates %.1f/op, want 0", allocs)
		}
	})
	if r.Dropped() == 0 {
		t.Fatal("warm-up never overflowed the ring; the steady-state claim is untested")
	}
}
