package flight

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the export format. Bump on any change to
// the document shape.
const SchemaVersion = "crest-flight/v1"

// jsonDoc is the export envelope. Budgets serialize as fixed arrays in
// Component order and attempt detail in trace.Phase / VerbClass order;
// the schema string pins those orders.
type jsonDoc struct {
	Schema    string      `json:"schema"`
	Dropped   uint64      `json:"dropped"`
	Txns      []TxnBudget `json:"txns"`
	Exemplars []Exemplar  `json:"exemplars"`
}

// WriteJSON exports a snapshot. Deterministic: same snapshot, same
// bytes — and ReadJSON followed by WriteJSON reproduces the input
// byte for byte.
func WriteJSON(w io.Writer, s *Snapshot) error {
	doc := jsonDoc{
		Schema:    SchemaVersion,
		Dropped:   s.Dropped,
		Txns:      s.Txns,
		Exemplars: s.Exemplars,
	}
	if doc.Txns == nil {
		doc.Txns = []TxnBudget{}
	}
	if doc.Exemplars == nil {
		doc.Exemplars = []Exemplar{}
	}
	for i := range doc.Exemplars {
		if doc.Exemplars[i].Detail == nil {
			doc.Exemplars[i].Detail = []AttemptInfo{}
		}
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSON parses an export written by WriteJSON, verifying the
// schema version.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var doc jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("flight: decoding export: %w", err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("flight: schema %q, want %q", doc.Schema, SchemaVersion)
	}
	s := &Snapshot{Txns: doc.Txns, Exemplars: doc.Exemplars, Dropped: doc.Dropped}
	if s.Txns == nil {
		s.Txns = []TxnBudget{}
	}
	if s.Exemplars == nil {
		s.Exemplars = []Exemplar{}
	}
	for i := range s.Exemplars {
		if s.Exemplars[i].Detail == nil {
			s.Exemplars[i].Detail = []AttemptInfo{}
		}
	}
	return s, nil
}
