// Package flight is the tail-latency forensics layer of the
// observability stack: a deterministic per-transaction flight recorder
// and critical-path analyzer. Where trace records spans, metrics
// records windowed aggregates and causality records wait-for edges,
// flight joins those signals into one additive model: every logical
// transaction's virtual-time latency is decomposed into a Budget whose
// components — queueing, retry backoff, per-verb-class wire time,
// lock/dependency wait, and per-phase coordinator compute residual —
// sum exactly to the transaction's measured latency (last attempt end
// minus first attempt begin).
//
// Recording is host-side only: it consumes no virtual time, no
// simulator events and no randomness, so a flight-recorded run is
// byte-identical to a plain run. Every method is nil-safe — a disabled
// recorder is a nil pointer — and the per-transaction hot path
// allocates nothing after warm-up: records are pooled, the summary
// ring is preallocated, and exemplar buckets hold fixed-size arrays.
//
// Bounded memory comes from two tiers. Every finalized transaction
// leaves a compact TxnBudget summary in a ring; only the top-K
// outliers per (shard, dominant-component) bucket keep their full
// per-attempt flight record, ranked deterministically by (total
// latency desc, end asc, id asc) so exemplar capture is byte-identical
// at any worker count. Partitioned runs use the same Shard(part,
// parts) pattern as the trace/metrics/causality recorders: one child
// per partition written lock-free by its owning worker, ids strided by
// the partition count, merged deterministically at Snapshot.
package flight

import (
	"fmt"
	"sort"

	"crest/internal/sim"
	"crest/internal/trace"
)

// Component is one slot of the additive latency budget.
type Component uint8

// Budget components. The wire components mirror VerbClass; the
// compute components mirror trace.Phase (each phase's duration minus
// the wire, wait and backoff time spent inside it).
const (
	// CompQueue: inter-attempt gap after an admission-wait abort —
	// time the harness spent re-queueing the transaction.
	CompQueue Component = iota
	// CompBackoff: inter-attempt exponential backoff after a conflict
	// abort, plus intra-attempt lock-retry backoff sleeps.
	CompBackoff
	// CompWire*: time parked on the RDMA fabric, split by verb class.
	CompWireRead
	CompWireWrite
	CompWireCAS
	CompWireMaskedCAS
	CompWireMixed
	// CompWait: time blocked on another transaction (local-object
	// waits, CREST dependency waits) — the causality layer's edges,
	// seen as durations.
	CompWait
	// CompExec..CompRelease: per-phase coordinator compute residual.
	CompExec
	CompLock
	CompValidate
	CompLog
	CompApply
	CompRelease
	NumComponents
)

// String names the component.
func (c Component) String() string {
	switch c {
	case CompQueue:
		return "queue"
	case CompBackoff:
		return "backoff"
	case CompWireRead:
		return "wire-read"
	case CompWireWrite:
		return "wire-write"
	case CompWireCAS:
		return "wire-cas"
	case CompWireMaskedCAS:
		return "wire-mcas"
	case CompWireMixed:
		return "wire-mixed"
	case CompWait:
		return "lock-wait"
	case CompExec:
		return "exec"
	case CompLock:
		return "lock"
	case CompValidate:
		return "validate"
	case CompLog:
		return "log"
	case CompApply:
		return "apply"
	case CompRelease:
		return "release"
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// phaseComp maps a trace phase to its compute-residual component.
func phaseComp(ph trace.Phase) Component { return CompExec + Component(ph) }

// VerbClass classifies the verbs of one fabric park for wire-time
// attribution. A park posting a uniform batch gets that verb's class;
// doorbell batches mixing verbs get ClassMixed.
type VerbClass uint8

// Verb classes.
const (
	ClassRead VerbClass = iota
	ClassWrite
	ClassCAS
	ClassMaskedCAS
	ClassMixed
	NumVerbClasses
)

// String names the verb class.
func (v VerbClass) String() string {
	switch v {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassCAS:
		return "cas"
	case ClassMaskedCAS:
		return "mcas"
	case ClassMixed:
		return "mixed"
	}
	return fmt.Sprintf("VerbClass(%d)", uint8(v))
}

// Component returns the budget component the class charges.
func (v VerbClass) Component() Component { return CompWireRead + Component(v) }

// Budget is one transaction's additive latency decomposition. The
// components sum exactly to the transaction's virtual-time latency.
type Budget [NumComponents]sim.Duration

// Total sums the components.
func (b *Budget) Total() sim.Duration {
	var t sim.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Dominant returns the largest component (lowest index on ties).
func (b *Budget) Dominant() Component {
	best := Component(0)
	for c := Component(1); c < NumComponents; c++ {
		if b[c] > b[best] {
			best = c
		}
	}
	return best
}

// maxAttemptDetail bounds the per-attempt detail kept on a record;
// attempts past the bound fold into the last slot (Folded counts
// them), keeping the struct fixed-size so the hot path never grows it.
const maxAttemptDetail = 8

// attemptRec is one attempt's detail on a live record.
type attemptRec struct {
	start      sim.Time
	end        sim.Time
	outcome    string // "" in flight, "commit", or the abort reason
	wait       bool   // aborted for admission wait: the next gap is queue time
	gap        sim.Duration
	gapQueue   bool
	folded     int
	dur        [trace.NumPhases]sim.Duration
	wire       [NumVerbClasses]sim.Duration
	wireP      [trace.NumPhases]sim.Duration
	waitP      [trace.NumPhases]sim.Duration
	backP      [trace.NumPhases]sim.Duration
	waitD      sim.Duration
	waitMax    sim.Duration
	waitHolder uint64
}

// rec is the live per-transaction flight record, pooled and attached
// to the coordinator proc via sim.Proc's flight context. One record
// covers every attempt of a logical transaction.
type rec struct {
	id        uint64
	label     string
	coord     uint64
	shard     int
	begin     sim.Time
	end       sim.Time // last completed charge (attempt end)
	attempts  int
	committed bool
	reason    string
	skip      bool // began before warmup: tracked, never published
	done      bool

	budget      Budget
	waitHolder  uint64
	waitMax     sim.Duration
	waitAttempt int

	att  [maxAttemptDetail]attemptRec
	nAtt int

	// Current attempt working state.
	cur  trace.Phase
	mark sim.Time

	txnKey  any
	liveIdx int
}

// curAtt returns the slot accumulating the current attempt.
func (x *rec) curAtt() *attemptRec { return &x.att[x.nAtt-1] }

// bucketKey addresses one exemplar bucket: the transaction's home
// shard group and the dominant budget component.
type bucketKey struct {
	shard int
	comp  Component
}

// bucket holds the top-K outlier records for one key.
type bucket struct {
	recs [MaxExemplarK]*rec
	n    int
}

// Default sizes.
const (
	// DefaultTxnCapacity bounds the summary ring.
	DefaultTxnCapacity = 1 << 16
	// DefaultExemplarK is the outliers kept per bucket.
	DefaultExemplarK = 4
	// MaxExemplarK bounds the per-bucket array.
	MaxExemplarK = 8
)

// Options size a recorder.
type Options struct {
	// TxnCapacity bounds the summary ring (DefaultTxnCapacity when <= 0).
	TxnCapacity int
	// ExemplarK is the full records kept per (shard, component) bucket
	// (DefaultExemplarK when <= 0, clamped to MaxExemplarK).
	ExemplarK int
}

// Recorder collects flight records. It is owned by one simulation
// environment; the cooperative scheduler serializes all emissions, so
// no locking is needed. The zero Recorder is unusable; a nil *Recorder
// is the disabled state and every method tolerates it.
type Recorder struct {
	txnCap  int
	k       int
	warmup  sim.Time
	ring    []TxnBudget
	head    int
	full    bool
	dropped uint64
	nextID  uint64

	buckets map[bucketKey]*bucket
	free    []*rec
	live    []*rec

	// Partitioned mode (see Shard): ids stride by the partition count
	// so the merged Snapshot stays collision-free.
	part   int
	stride int
	shards []*Recorder
	root   *Recorder
}

// NewRecorder returns an enabled recorder.
func NewRecorder(opt Options) *Recorder {
	if opt.TxnCapacity <= 0 {
		opt.TxnCapacity = DefaultTxnCapacity
	}
	if opt.ExemplarK <= 0 {
		opt.ExemplarK = DefaultExemplarK
	}
	if opt.ExemplarK > MaxExemplarK {
		opt.ExemplarK = MaxExemplarK
	}
	return &Recorder{
		txnCap:  opt.TxnCapacity,
		k:       opt.ExemplarK,
		ring:    make([]TxnBudget, 0, opt.TxnCapacity),
		buckets: map[bucketKey]*bucket{},
	}
}

// Enabled reports whether the recorder collects flight records.
func (r *Recorder) Enabled() bool { return r != nil }

// SetWarmup excludes transactions beginning before the cutoff from
// capture, matching the benchmark's measurement window. Call before
// the run (and before Shard) — children inherit the cutoff.
func (r *Recorder) SetWarmup(cutoff sim.Time) {
	if r == nil {
		return
	}
	r.warmup = cutoff
	for _, c := range r.shards {
		c.warmup = cutoff
	}
}

// Shard returns the per-partition child recorder for part out of
// parts, creating the full child set on first use. Each child must be
// written by exactly one partition (one sim.Env), which keeps every
// emission lock-free under the parallel window executor; Snapshot on
// the root merges all children deterministically. With parts <= 1 (or
// a nil recorder) Shard returns the receiver, so single-partition
// wiring is byte-identical to an unsharded recorder.
func (r *Recorder) Shard(part, parts int) *Recorder {
	if r == nil || parts <= 1 {
		return r
	}
	if r.stride > 0 {
		panic("flight: Shard of a partition child")
	}
	if r.shards == nil {
		r.shards = make([]*Recorder, parts)
		for i := range r.shards {
			r.shards[i] = &Recorder{txnCap: r.txnCap, k: r.k, warmup: r.warmup,
				ring:    make([]TxnBudget, 0, r.txnCap),
				buckets: map[bucketKey]*bucket{},
				part:    i, stride: parts, root: r}
		}
	}
	if parts != len(r.shards) {
		panic(fmt.Sprintf("flight: Shard with %d parts after %d", parts, len(r.shards)))
	}
	if part < 0 || part >= parts {
		panic(fmt.Sprintf("flight: Shard part %d out of range [0,%d)", part, parts))
	}
	return r.shards[part]
}

// Dropped reports how many summaries were evicted from the ring,
// summed across partition children.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	d := r.dropped
	for _, c := range r.shards {
		d += c.dropped
	}
	return d
}

// Len reports the number of buffered summaries, summed across
// partition children.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.ring)
	for _, c := range r.shards {
		n += len(c.ring)
	}
	return n
}

// ctxOf extracts the flight record from a proc's flight context.
func ctxOf(p *sim.Proc) *rec {
	x, _ := p.FlightCtx().(*rec)
	return x
}

// alloc returns a record shell from the pool (warm-up allocates).
func (r *Recorder) alloc() *rec {
	if n := len(r.free); n > 0 {
		x := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return x
	}
	return &rec{}
}

// release resets a record and returns it to the pool.
func (r *Recorder) release(x *rec) {
	*x = rec{}
	r.free = append(r.free, x)
}

// Begin starts (or, on a retry of the same transaction, resumes) the
// flight record for txnKey on proc p. home is the transaction's home
// shard group. On a resume the gap since the previous attempt's end is
// charged to queue (after an admission-wait abort) or backoff; a Begin
// with a different txnKey finalizes any unfinished previous record as
// aborted (the harness gave up retrying it).
func (r *Recorder) Begin(p *sim.Proc, coord uint64, home int, label string, txnKey any) {
	if r == nil {
		return
	}
	now := p.Now()
	if prev := ctxOf(p); prev != nil && !prev.done {
		if prev.txnKey == txnKey {
			// Retry of the same logical transaction: classify the gap and
			// open the next attempt.
			gap := now.Sub(prev.end)
			queue := prev.curAtt().wait
			if queue {
				prev.budget[CompQueue] += gap
			} else {
				prev.budget[CompBackoff] += gap
			}
			prev.end = now // keep Total == End-Begin for mid-retry snapshots
			prev.openAttempt(now, gap, queue)
			return
		}
		// A different transaction began while the previous record was
		// still open: the harness abandoned it after its final abort.
		r.finalize(prev)
	}
	x := r.alloc()
	r.nextID++
	id := r.nextID
	if r.stride > 1 {
		id = uint64(r.part) + uint64(r.stride)*(r.nextID-1) + 1
	}
	x.id = id
	x.label = label
	x.coord = coord
	x.shard = home
	x.begin, x.end = now, now
	x.skip = now < r.warmup
	x.txnKey = txnKey
	x.liveIdx = len(r.live)
	r.live = append(r.live, x)
	x.openAttempt(now, 0, false)
	p.SetFlightCtx(x)
}

// openAttempt starts the next attempt slot at time now. Attempts past
// maxAttemptDetail fold into the last slot.
func (x *rec) openAttempt(now sim.Time, gap sim.Duration, gapQueue bool) {
	x.attempts++
	if x.nAtt < maxAttemptDetail {
		x.nAtt++
		a := x.curAtt()
		*a = attemptRec{start: now, gap: gap, gapQueue: gapQueue}
	} else {
		a := x.curAtt()
		// The previous Done charged this slot's cumulative totals into
		// the budget; back them out so the next Done — which re-charges
		// the grown totals — keeps the sum exact.
		x.charge(a, -1)
		a.folded++
		a.outcome, a.wait = "", false
		a.gap += gap
		if gapQueue {
			a.gapQueue = true
		}
	}
	x.cur = trace.PhaseExec
	x.mark = now
}

// charge folds attempt a's accumulators into the budget with the given
// sign: residual compute per phase, plus the wire, wait and backoff
// time carved out of each phase. Folded attempts re-charge their
// slot's grown totals on every Done, so openAttempt backs out the
// previous totals with sign -1 first.
func (x *rec) charge(a *attemptRec, sign sim.Duration) {
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		x.budget[phaseComp(ph)] += sign * (a.dur[ph] - a.wireP[ph] - a.waitP[ph] - a.backP[ph])
		x.budget[CompBackoff] += sign * a.backP[ph]
		x.budget[CompWait] += sign * a.waitP[ph]
	}
	for v := VerbClass(0); v < NumVerbClasses; v++ {
		x.budget[v.Component()] += sign * a.wire[v]
	}
}

// Phase transitions the current attempt to ph, charging the elapsed
// time to the phase being left (mirroring engine.AttemptTimer).
func (r *Recorder) Phase(p *sim.Proc, ph trace.Phase) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	now := p.Now()
	x.curAtt().dur[x.cur] += now.Sub(x.mark)
	x.mark = now
	x.cur = ph
}

// Wire charges one fabric park — lat of virtual time just consumed
// suspended on posted verbs of the given class — to the running
// transaction. Procs without a flight context (loaders, background
// flushers) are ignored.
func (r *Recorder) Wire(p *sim.Proc, class VerbClass, lat sim.Duration) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	a := x.curAtt()
	a.wire[class] += lat
	a.wireP[x.cur] += lat
}

// Wait charges one blocked-on-another-transaction window (a causality
// wait-for edge, seen as a duration) that just ended on p. holder is
// the blocking transaction's why id (0 when unattributed).
func (r *Recorder) Wait(p *sim.Proc, holder uint64, d sim.Duration) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	a := x.curAtt()
	a.waitD += d
	a.waitP[x.cur] += d
	if d > a.waitMax {
		a.waitMax, a.waitHolder = d, holder
	}
	if d > x.waitMax {
		x.waitMax, x.waitHolder, x.waitAttempt = d, holder, x.attempts
	}
}

// Backoff charges an intra-attempt backoff sleep (a lock-retry pause
// inside a phase) that just ended on p.
func (r *Recorder) Backoff(p *sim.Proc, d sim.Duration) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	x.curAtt().backP[x.cur] += d
}

// Fail marks the current attempt aborted: the failing phase's duration
// freezes here and subsequent cleanup time accrues to the release
// phase, exactly as engine.AttemptTimer charges it. isWait flags an
// admission-wait abort, whose re-queue gap counts as queue rather than
// backoff time.
func (r *Recorder) Fail(p *sim.Proc, reason string, isWait bool) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	now := p.Now()
	a := x.curAtt()
	a.dur[x.cur] += now.Sub(x.mark)
	x.mark = now
	x.cur = trace.PhaseRelease
	a.outcome = reason
	a.wait = isWait
	x.reason = reason
}

// Done closes the current attempt, folding it into the budget. Unlike
// engine.AttemptTimer — which drops post-Fail release time from its
// Attempt report — Done charges it, keeping the budget's sum exactly
// equal to the transaction's elapsed virtual time. A committed Done
// finalizes the record.
func (r *Recorder) Done(p *sim.Proc, committed bool) {
	if r == nil {
		return
	}
	x := ctxOf(p)
	if x == nil || x.done {
		return
	}
	now := p.Now()
	a := x.curAtt()
	a.dur[x.cur] += now.Sub(x.mark)
	x.mark = now
	a.end = now
	if committed {
		a.outcome = "commit"
	}
	x.charge(a, 1)
	x.end = now
	if committed {
		x.committed = true
		r.finalize(x)
		p.SetFlightCtx(nil)
	}
}

// finalize publishes a record: its summary enters the ring and the
// full record either joins its exemplar bucket or returns to the pool.
func (r *Recorder) finalize(x *rec) {
	x.done = true
	// Swap-remove from the live list.
	last := len(r.live) - 1
	if moved := r.live[last]; moved != x {
		r.live[x.liveIdx] = moved
		moved.liveIdx = x.liveIdx
	}
	r.live[last] = nil
	r.live = r.live[:last]
	if x.skip {
		r.release(x)
		return
	}
	s := x.summary()
	if len(r.ring) < r.txnCap {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.head] = s
		r.head = (r.head + 1) % r.txnCap
		r.full = true
		r.dropped++
	}
	if !r.offer(x) {
		r.release(x)
	}
}

// summary compacts a record into its ring entry.
func (x *rec) summary() TxnBudget {
	return TxnBudget{
		ID: x.id, Label: x.label, Coord: x.coord, Shard: x.shard,
		Begin: x.begin, End: x.end, Attempts: x.attempts,
		Committed: x.committed, Reason: x.reason, Budget: x.budget,
		WaitHolder: x.waitHolder, WaitMax: x.waitMax,
	}
}

// better ranks exemplar candidates: higher total latency wins; ties
// break toward the earlier end time, then the lower id — a total
// order, so capture is deterministic at any worker count.
func better(a, b *rec) bool {
	at, bt := a.budget.Total(), b.budget.Total()
	if at != bt {
		return at > bt
	}
	if a.end != b.end {
		return a.end < b.end
	}
	return a.id < b.id
}

// offer inserts a finalized record into its (shard, dominant
// component) bucket, evicting the weakest resident if the bucket is
// full. It reports whether the record was retained.
func (r *Recorder) offer(x *rec) bool {
	key := bucketKey{x.shard, x.budget.Dominant()}
	b := r.buckets[key]
	if b == nil {
		b = &bucket{}
		r.buckets[key] = b
	}
	if b.n < r.k {
		b.recs[b.n] = x
		b.n++
		return true
	}
	weak := 0
	for i := 1; i < b.n; i++ {
		if better(b.recs[weak], b.recs[i]) {
			weak = i
		}
	}
	if !better(x, b.recs[weak]) {
		return false
	}
	evict := b.recs[weak]
	b.recs[weak] = x
	r.release(evict)
	return true
}

// TxnBudget is one transaction's compact flight summary: identity,
// span, outcome, and the additive latency budget.
type TxnBudget struct {
	ID         uint64       `json:"id"`
	Label      string       `json:"label"`
	Coord      uint64       `json:"coord"`
	Shard      int          `json:"shard"`
	Begin      sim.Time     `json:"begin"`
	End        sim.Time     `json:"end"`
	Attempts   int          `json:"attempts"`
	Committed  bool         `json:"committed"`
	Reason     string       `json:"reason,omitempty"`
	Budget     Budget       `json:"budget"`
	WaitHolder uint64       `json:"waitHolder,omitempty"`
	WaitMax    sim.Duration `json:"waitMax,omitempty"`
}

// Total is the transaction's measured virtual-time latency — by
// construction, End.Sub(Begin) for finalized records.
func (t *TxnBudget) Total() sim.Duration { return t.Budget.Total() }

// AttemptInfo is one attempt's detail on an exemplar.
type AttemptInfo struct {
	Start        sim.Time                      `json:"start"`
	End          sim.Time                      `json:"end"`
	Outcome      string                        `json:"outcome"`
	Gap          sim.Duration                  `json:"gap,omitempty"`      // inter-attempt gap before this attempt
	GapQueue     bool                          `json:"gapQueue,omitempty"` // the gap was queue (admission) time
	Folded       int                           `json:"folded,omitempty"`   // extra attempts folded into this slot
	Phases       [trace.NumPhases]sim.Duration `json:"phases"`
	Wire         [NumVerbClasses]sim.Duration  `json:"wire"`
	WirePhase    [trace.NumPhases]sim.Duration `json:"wirePhase"`
	WaitPhase    [trace.NumPhases]sim.Duration `json:"waitPhase"`
	BackoffPhase [trace.NumPhases]sim.Duration `json:"backoffPhase"`
	Wait         sim.Duration                  `json:"wait,omitempty"`
	WaitMax      sim.Duration                  `json:"waitMax,omitempty"`
	WaitHolder   uint64                        `json:"waitHolder,omitempty"`
}

// Exemplar is one captured outlier: the summary plus per-attempt
// detail, bucketed by dominant budget component.
type Exemplar struct {
	TxnBudget
	Bucket Component     `json:"bucket"`
	Detail []AttemptInfo `json:"detail"`
}

// Snapshot is an immutable copy of the recorder's state, the input to
// every view and exporter. Transactions still open at snapshot time
// (abandoned by the harness drain or mid-retry) appear with their
// budget as of the last completed attempt and Committed false.
type Snapshot struct {
	Txns      []TxnBudget // begin order; merged: (begin, partition, id)
	Exemplars []Exemplar  // bucket order: (shard, component), ranked within
	Dropped   uint64      // summaries evicted from the ring
}

// detail copies a record's attempt slots.
func (x *rec) detail() []AttemptInfo {
	out := make([]AttemptInfo, x.nAtt)
	for i := 0; i < x.nAtt; i++ {
		a := &x.att[i]
		out[i] = AttemptInfo{
			Start: a.start, End: a.end, Outcome: a.outcome,
			Gap: a.gap, GapQueue: a.gapQueue, Folded: a.folded,
			Phases: a.dur, Wire: a.wire, WirePhase: a.wireP,
			WaitPhase: a.waitP, BackoffPhase: a.backP,
			Wait: a.waitD, WaitMax: a.waitMax, WaitHolder: a.waitHolder,
		}
	}
	return out
}

// taggedRec pairs a retained record with its partition for merging.
type taggedRec struct {
	part int
	x    *rec
}

// Snapshot copies the rings and exemplar buckets (a nil recorder
// yields an empty snapshot). A partitioned recorder merges every child
// deterministically: summaries order by (begin, partition, id) and
// each bucket re-ranks the union of the children's residents, keeping
// the global top K — byte-identical output at any worker count, since
// partitioning is fixed by the shard count, not the worker count.
func (r *Recorder) Snapshot() *Snapshot {
	out := &Snapshot{Txns: []TxnBudget{}, Exemplars: []Exemplar{}}
	if r == nil {
		return out
	}
	type tagTxn struct {
		part int
		TxnBudget
	}
	var txns []tagTxn
	byBucket := map[bucketKey][]taggedRec{}
	collect := func(part int, c *Recorder) {
		out.Dropped += c.dropped
		if c.full {
			for _, t := range c.ring[c.head:] {
				txns = append(txns, tagTxn{part, t})
			}
			for _, t := range c.ring[:c.head] {
				txns = append(txns, tagTxn{part, t})
			}
		} else {
			for _, t := range c.ring {
				txns = append(txns, tagTxn{part, t})
			}
		}
		// Open records surface as aborted-so-far summaries (no
		// mutation: the run may continue after the snapshot).
		for _, x := range c.live {
			if x.skip {
				continue
			}
			txns = append(txns, tagTxn{part, x.summary()})
		}
		for key, b := range c.buckets {
			for i := 0; i < b.n; i++ {
				byBucket[key] = append(byBucket[key], taggedRec{part, b.recs[i]})
			}
		}
	}
	collect(-1, r)
	for i, c := range r.shards {
		collect(i, c)
	}
	sort.Slice(txns, func(i, j int) bool {
		a, b := &txns[i], &txns[j]
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.ID < b.ID
	})
	out.Txns = make([]TxnBudget, len(txns))
	for i := range txns {
		out.Txns[i] = txns[i].TxnBudget
	}
	keys := make([]bucketKey, 0, len(byBucket))
	for key := range byBucket {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].comp < keys[j].comp
	})
	for _, key := range keys {
		cands := byBucket[key]
		sort.Slice(cands, func(i, j int) bool { return better(cands[i].x, cands[j].x) })
		n := len(cands)
		if n > r.k {
			n = r.k
		}
		for i := 0; i < n; i++ {
			x := cands[i].x
			out.Exemplars = append(out.Exemplars, Exemplar{
				TxnBudget: x.summary(), Bucket: key.comp, Detail: x.detail(),
			})
		}
	}
	return out
}

// Txn looks up a summary by id (nil when unknown or evicted).
func (s *Snapshot) Txn(id uint64) *TxnBudget {
	for i := range s.Txns {
		if s.Txns[i].ID == id {
			return &s.Txns[i]
		}
	}
	return nil
}

// Exemplar looks up a captured outlier by id (nil when not captured).
func (s *Snapshot) Exemplar(id uint64) *Exemplar {
	for i := range s.Exemplars {
		if s.Exemplars[i].ID == id {
			return &s.Exemplars[i]
		}
	}
	return nil
}
