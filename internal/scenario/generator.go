// The phase-aware generator: wraps any workload.Generator and
// implements workload.TimedGenerator by evaluating the spec's
// timeline against the virtual clock. Load phases gate coordinator
// admission (Gate); hotspot drift rotates every generated key through
// a per-table bijection (NextAt). Neither draws randomness, so a
// scenario run replays exactly under the same seed — and under a
// trivial timeline both collapse to the inner generator's behaviour,
// byte for byte.
package scenario

import (
	"math/rand"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
	"crest/internal/workload"
)

// Generator drives an inner workload generator through a scenario's
// timeline. It implements workload.TimedGenerator.
type Generator struct {
	spec  *Spec
	inner workload.Generator
	// spans maps each table to its loaded record count — the modulus
	// of the drift bijection. Keys at or above the span (none today)
	// would stay put.
	spans map[layout.TableID]uint64
	// drift is false when no phase drifts, letting NextAt skip the
	// per-op remap loop entirely.
	drift bool
}

var _ workload.TimedGenerator = (*Generator)(nil)

// NewGenerator wraps inner with spec's timeline.
func NewGenerator(spec *Spec, inner workload.Generator) *Generator {
	g := &Generator{spec: spec, inner: inner, spans: map[layout.TableID]uint64{}}
	for _, def := range inner.Tables() {
		g.spans[def.Schema.ID] = uint64(def.Capacity)
	}
	for i := range spec.Timeline {
		if spec.Timeline[i].Hotspot != 0 {
			g.drift = true
		}
	}
	return g
}

// Spec returns the scenario driving this generator.
func (g *Generator) Spec() *Spec { return g.spec }

// Name implements workload.Generator.
func (g *Generator) Name() string { return "scenario:" + g.spec.Name }

// PartitionSafe implements workload.PartitionSafe: the timeline
// evaluation is pure (spec and spans are immutable after
// construction), so safety is exactly the inner generator's.
func (g *Generator) PartitionSafe() bool { return workload.IsPartitionSafe(g.inner) }

// Tables implements workload.Generator.
func (g *Generator) Tables() []workload.TableDef { return g.inner.Tables() }

// Load implements workload.Generator.
func (g *Generator) Load(fn func(layout.TableID, layout.Key, [][]byte)) { g.inner.Load(fn) }

// Next implements workload.Generator: the inner generator at timeline
// origin (no drift applied).
func (g *Generator) Next(rng *rand.Rand) *engine.Txn { return g.inner.Next(rng) }

// NextAt implements workload.TimedGenerator: one transaction as of
// virtual time now, with the current phase's hotspot drift applied.
func (g *Generator) NextAt(now sim.Time, rng *rand.Rand) *engine.Txn {
	txn := g.inner.Next(rng)
	if !g.drift {
		return txn
	}
	frac := g.spec.HotspotAt(now)
	if frac == 0 {
		return txn
	}
	// Rotate every plain key by frac of its table's key space. The
	// rotation is a bijection, so distinct keys stay distinct and the
	// hot set migrates without changing the workload's shape. Key
	// dependencies (resolved mid-transaction) and insert claims keep
	// their semantic targets.
	for bi := range txn.Blocks {
		ops := txn.Blocks[bi].Ops
		for oi := range ops {
			op := &ops[oi]
			if op.KeyFn != nil || op.Insert {
				continue
			}
			n := g.spans[op.Table]
			if n == 0 {
				continue
			}
			if k := uint64(op.Key); k < n {
				op.Key = layout.Key((k + uint64(frac*float64(n))) % n)
			}
		}
	}
	return txn
}

// Gate implements workload.TimedGenerator by delegating to the spec's
// timeline.
func (g *Generator) Gate(now sim.Time, coord, total int) sim.Duration {
	return g.spec.Gate(now, coord, total)
}
