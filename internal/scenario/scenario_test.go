package scenario

import (
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"

	"crest/internal/sim"
	"crest/internal/workload/smallbank"
	"crest/internal/workload/ycsb"
)

func parse(t *testing.T, text string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(text), "test")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseGodbBenchCompatibleSpec(t *testing.T) {
	// The workloada.spec shape from godb-bench's README.
	s := parse(t, `
recordcount=1000
operationcount=1000
workload=core

readallfields=true

readproportion=0.5
updateproportion=0.5
scanproportion=0
insertproportion=0

requestdistribution=uniform
`)
	if s.Workload != WLYCSB {
		t.Fatalf("workload=core parsed as %q", s.Workload)
	}
	if s.RecordCount != 1000 || s.ReadProportion != 0.5 || s.UpdateProportion != 0.5 {
		t.Fatalf("core fields wrong: %+v", s)
	}
	if s.Distribution != "uniform" {
		t.Fatalf("distribution %q", s.Distribution)
	}
	if len(s.Timeline) != 0 || !s.Trivial() {
		t.Fatal("spec without phases must be the trivial timeline")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, text, wantErr string }{
		{"unknown key", "workload=ycsb\nfrobnicate=1\n", "unknown key"},
		{"not key=value", "workload ycsb\n", "key=value"},
		{"bad workload", "workload=oracle\n", "unknown workload"},
		{"no workload", "recordcount=10\n", "workload not set"},
		{"scan", "workload=ycsb\nscanproportion=0.1\n", "scanproportion"},
		{"proportions", "workload=ycsb\nreadproportion=0.9\nupdateproportion=0.9\n", "sum"},
		{"bad distribution", "workload=ycsb\nrequestdistribution=pareto\n", "requestdistribution"},
		{"latest smallbank", "workload=smallbank\nrequestdistribution=latest\n", "latest"},
		{"gap", "workload=ycsb\nphase.1.type=constant\nphase.1.duration=1ms\nphase.1.load=1\nphase.3.type=constant\nphase.3.duration=1ms\n", "contiguous"},
		{"bad kind", "workload=ycsb\nphase.1.type=square\nphase.1.duration=1ms\n", "unknown kind"},
		{"no duration", "workload=ycsb\nphase.1.type=constant\nphase.1.load=1\n", "duration"},
		{"load range", "workload=ycsb\nphase.1.type=constant\nphase.1.duration=1ms\nphase.1.load=1.5\n", "[0, 1]"},
		{"hotspot range", "workload=ycsb\nphase.1.type=constant\nphase.1.duration=1ms\nphase.1.load=1\nphase.1.hotspot=1.0\n", "hotspot"},
		{"tpcc drift", "workload=tpcc\nwarehouses=4\nphase.1.type=constant\nphase.1.duration=1ms\nphase.1.load=1\nphase.1.hotspot=0.5\n", "keyed workload"},
		{"burst shape", "workload=ycsb\nphase.1.type=burst\nphase.1.duration=1ms\nphase.1.burst=2ms\nphase.1.every=1ms\n", "burst"},
		{"bad duration", "workload=ycsb\nphase.1.type=constant\nphase.1.duration=fast\n", "bad duration"},
		{"duplicate phase field", "workload=ycsb\nphase.1.type=constant\nphase.1.type=ramp\n", "duplicate"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.text), "t")
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestTimelineEvaluation(t *testing.T) {
	s := parse(t, `
workload=ycsb
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=1.0
phase.2.type=ramp
phase.2.duration=1ms
phase.2.from=1.0
phase.2.to=0.5
phase.3.type=sine
phase.3.duration=2ms
phase.3.min=0.2
phase.3.max=0.8
phase.3.period=1ms
phase.4.type=burst
phase.4.duration=1ms
phase.4.base=0.1
phase.4.peak=0.9
phase.4.burst=100us
phase.4.every=400us
phase.4.hotspot=0.5
`)
	ms := func(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

	if got := s.LoadAt(ms(0.5)); got != 1.0 {
		t.Fatalf("constant phase load %g", got)
	}
	if got := s.LoadAt(ms(1.5)); !approx(got, 0.75) {
		t.Fatalf("ramp midpoint load %g, want 0.75", got)
	}
	if got := s.LoadAt(ms(2.0)); !approx(got, 0.2) {
		t.Fatalf("sine start %g, want trough 0.2", got)
	}
	if got := s.LoadAt(ms(2.5)); !approx(got, 0.8) {
		t.Fatalf("sine half period %g, want crest 0.8", got)
	}
	if got := s.LoadAt(ms(4.05)); got != 0.9 {
		t.Fatalf("in-burst load %g", got)
	}
	if got := s.LoadAt(ms(4.25)); got != 0.1 {
		t.Fatalf("between-burst load %g", got)
	}
	// Beyond the end the final phase keeps cycling: 1.65ms into the
	// burst phase, 1650 % 400 = 50µs < the 100µs burst width.
	if got := s.LoadAt(ms(5.65)); got != 0.9 {
		t.Fatalf("post-timeline burst load %g", got)
	}
	if got := s.HotspotAt(ms(4.5)); got != 0.5 {
		t.Fatalf("hotspot %g", got)
	}
	if got := s.HotspotAt(ms(0.5)); got != 0 {
		t.Fatalf("phase 1 hotspot %g", got)
	}
	if s.PhaseAt(ms(9.9)) != 3 {
		t.Fatalf("post-timeline phase %d", s.PhaseAt(ms(9.9)))
	}
}

func TestGateAdmissionByRank(t *testing.T) {
	s := parse(t, `
workload=ycsb
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=0.5
phase.2.type=constant
phase.2.duration=1ms
phase.2.load=1.0
`)
	const total = 10
	at := sim.Time(100 * sim.Microsecond)
	admitted := 0
	for c := 0; c < total; c++ {
		if s.Gate(at, c, total) == 0 {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("%d admitted at load 0.5 of %d", admitted, total)
	}
	// Gated coordinators never park past the next decision point, and
	// in phase 2 everyone is admitted.
	if w := s.Gate(at, 9, total); w <= 0 || w > DefaultResolution {
		t.Fatalf("gated wait %v", w)
	}
	for c := 0; c < total; c++ {
		if s.Gate(sim.Time(1500*sim.Microsecond), c, total) != 0 {
			t.Fatalf("coordinator %d gated at full load", c)
		}
	}
	// Load 0 gates everyone.
	zero := parse(t, "workload=ycsb\nphase.1.type=constant\nphase.1.duration=1ms\nphase.1.load=0\n")
	for c := 0; c < total; c++ {
		if zero.Gate(at, c, total) == 0 {
			t.Fatalf("coordinator %d admitted at load 0", c)
		}
	}
}

func TestGateHonorsBurstEdges(t *testing.T) {
	// A 30µs burst inside a 50µs resolution grid: edges must still be
	// exact decision points.
	s := parse(t, `
workload=ycsb
resolution=200us
phase.1.type=burst
phase.1.duration=1ms
phase.1.base=0
phase.1.peak=1
phase.1.burst=30us
phase.1.every=130us
`)
	// At t=40µs the burst is over; the gated coordinator must wake at
	// the next burst start (130µs), not the 200µs grid tick.
	w := s.Gate(sim.Time(40*sim.Microsecond), 0, 4)
	if w != 90*sim.Microsecond {
		t.Fatalf("gated wait %v, want 90µs to the next burst edge", w)
	}
	// Inside the burst everyone runs.
	if w := s.Gate(sim.Time(10*sim.Microsecond), 3, 4); w != 0 {
		t.Fatalf("in-burst gate %v", w)
	}
}

func TestTrivialTimelineNeverGatesOrDrifts(t *testing.T) {
	s := parse(t, `
workload=ycsb
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=1.0
`)
	if !s.Trivial() {
		t.Fatal("constant full-load timeline should be trivial")
	}
	g := NewGenerator(s, ycsb.New(ycsb.Config{Records: 1000, N: 2, WriteRatio: 0.5, Theta: 0.99, CellSize: 40, NumCells: 4}))
	for _, at := range []sim.Time{0, sim.Time(500 * sim.Microsecond), sim.Time(10 * sim.Millisecond)} {
		for c := 0; c < 8; c++ {
			if w := g.Gate(at, c, 8); w != 0 {
				t.Fatalf("trivial timeline gated coordinator %d at %v", c, at)
			}
		}
	}
	// NextAt must generate exactly what Next would.
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	plain := ycsb.New(ycsb.Config{Records: 1000, N: 2, WriteRatio: 0.5, Theta: 0.99, CellSize: 40, NumCells: 4})
	for i := 0; i < 200; i++ {
		x := g.NextAt(sim.Time(i)*sim.Time(sim.Microsecond), a)
		y := plain.Next(b)
		if len(x.Blocks[0].Ops) != len(y.Blocks[0].Ops) {
			t.Fatal("op count diverged")
		}
		for oi := range x.Blocks[0].Ops {
			if x.Blocks[0].Ops[oi].Key != y.Blocks[0].Ops[oi].Key {
				t.Fatalf("txn %d op %d: key %d != %d", i, oi, x.Blocks[0].Ops[oi].Key, y.Blocks[0].Ops[oi].Key)
			}
		}
	}
}

func TestDriftRotatesKeysBijectively(t *testing.T) {
	s := parse(t, `
workload=smallbank
theta=0.9
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=1.0
phase.2.type=constant
phase.2.duration=1ms
phase.2.load=1.0
phase.2.hotspot=0.25
`)
	const accounts = 1000
	g := NewGenerator(s, smallbank.New(smallbank.Config{Accounts: accounts, Theta: 0.9}))
	// Same RNG state: phase 1 leaves keys alone, phase 2 rotates them
	// by exactly a quarter of the key space.
	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		x := g.NextAt(sim.Time(100*sim.Microsecond), a)
		y := g.NextAt(sim.Time(1100*sim.Microsecond), b)
		xo, yo := x.Blocks[0].Ops, y.Blocks[0].Ops
		if len(xo) != len(yo) {
			t.Fatal("op shape diverged")
		}
		for oi := range xo {
			want := (uint64(xo[oi].Key) + accounts/4) % accounts
			if uint64(yo[oi].Key) != want {
				t.Fatalf("txn %d op %d: drifted key %d, want %d", i, oi, yo[oi].Key, want)
			}
			// Distinctness within the transaction survives rotation.
			for oj := 0; oj < oi; oj++ {
				if yo[oi].Table == yo[oj].Table && yo[oi].Key == yo[oj].Key && xo[oi].Key != xo[oj].Key {
					t.Fatalf("rotation collided keys in txn %d", i)
				}
			}
		}
	}
}

func TestDriftSkipsInsertClaims(t *testing.T) {
	s := parse(t, `
workload=ycsb
requestdistribution=latest
insertproportion=0.4
readproportion=0.3
updateproportion=0.3
preloaded=500
phase.1.type=constant
phase.1.duration=1ms
phase.1.load=1.0
phase.1.hotspot=0.5
`)
	inner := ycsb.New(ycsb.Config{
		Records: 1000, N: 2, WriteRatio: 0.5, Theta: 0.99, CellSize: 40, NumCells: 4,
		Distribution: ycsb.DistLatest, InsertProportion: 0.4, PreLoaded: 500,
	})
	g := NewGenerator(s, inner)
	rng := rand.New(rand.NewSource(11))
	inserts := 0
	for i := 0; i < 500; i++ {
		before := inner.Frontier()
		txn := g.NextAt(sim.Time(100*sim.Microsecond), rng)
		if txn.Label == "ycsb-insert" {
			inserts++
			if got := int(txn.Blocks[0].Ops[0].Key); got != before {
				t.Fatalf("drift remapped an insert claim to %d, frontier %d", got, before)
			}
		}
	}
	if inserts == 0 {
		t.Fatal("no inserts generated")
	}
}

func TestKeyStableAndSensitive(t *testing.T) {
	a := DriftDemo()
	b := DriftDemo()
	if a.Key() != b.Key() {
		t.Fatalf("same spec, different keys: %s vs %s", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), "drift-demo@") {
		t.Fatalf("key %q lost its name", a.Key())
	}
	c := DriftDemo()
	c.Timeline[1].Hotspot = 0.34
	if c.Key() == a.Key() {
		t.Fatal("different timelines, same key")
	}
	d := DriftDemo()
	d.Name = "Drift Demo!"
	if !strings.HasPrefix(d.Key(), "driftdemo@") {
		t.Fatalf("name not sanitized: %q", d.Key())
	}
}

func TestDriftDemoMatchesExampleFile(t *testing.T) {
	data, err := os.ReadFile("../../examples/scenarios/drift-demo.spec")
	if err != nil {
		t.Fatalf("the drift demo example must be committed: %v", err)
	}
	if string(data) != DriftDemoText {
		t.Fatal("examples/scenarios/drift-demo.spec diverged from scenario.DriftDemoText")
	}
}

func TestParseFileNamesAfterFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/steady.spec"
	if err := os.WriteFile(path, []byte("workload=smallbank\ntheta=0.9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "steady" {
		t.Fatalf("name %q", s.Name)
	}
	// An explicit name= wins.
	path2 := dir + "/other.spec"
	if err := os.WriteFile(path2, []byte("name=prod-day\nworkload=smallbank\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != "prod-day" {
		t.Fatalf("name %q", s2.Name)
	}
}
