// Package scenario makes workloads declarative: a .spec file (in the
// properties style of YCSB workload files, with godb-bench-compatible
// keys) describes a workload — operation proportions, request
// distribution, record counts, records per transaction — plus a
// virtual-time traffic timeline of phases: constant load, linear
// ramps, diurnal sine curves, bursts, and hotspot drift (the hot key
// set migrating mid-run via deterministic key-space rotation).
//
// A scenario preserves the repository's determinism contract: the
// timeline is evaluated as a pure function of the virtual clock, load
// is modulated by gating coordinator admission (no extra randomness is
// drawn, and a trivial timeline schedules no extra events), and drift
// remaps keys through a bijection, so the same seed and the same spec
// reproduce byte-identical output — and a spec describing a static
// workload is byte-equal to the equivalent hand-coded configuration.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"crest/internal/sim"
)

// Phase kinds a timeline can use.
const (
	PhaseConstant = "constant"
	PhaseRamp     = "ramp"
	PhaseSine     = "sine"
	PhaseBurst    = "burst"
)

// Workload kinds a spec can name.
const (
	WLYCSB      = "ycsb"
	WLSmallBank = "smallbank"
	WLTPCC      = "tpcc"
)

// DefaultResolution is the admission-decision grid: gated coordinators
// re-evaluate the timeline at phase boundaries, burst edges and every
// Resolution of virtual time.
const DefaultResolution = 50 * sim.Microsecond

// Phase is one segment of the traffic timeline. Load values are
// fractions of the run's coordinator count in [0, 1]; Hotspot is the
// drift offset as a fraction of each table's key space in [0, 1).
type Phase struct {
	Kind     string       `json:"kind"`
	Duration sim.Duration `json:"duration_ns"`

	Load float64 `json:"load,omitempty"` // constant
	From float64 `json:"from,omitempty"` // ramp start
	To   float64 `json:"to,omitempty"`   // ramp end

	Min    float64      `json:"min,omitempty"` // sine trough
	Max    float64      `json:"max,omitempty"` // sine crest
	Period sim.Duration `json:"period_ns,omitempty"`

	Base  float64      `json:"base,omitempty"`     // burst floor
	Peak  float64      `json:"peak,omitempty"`     // burst ceiling
	Burst sim.Duration `json:"burst_ns,omitempty"` // burst length
	Every sim.Duration `json:"every_ns,omitempty"` // burst cycle

	Hotspot float64 `json:"hotspot,omitempty"` // drift offset
}

// load evaluates the phase at local time u (u may exceed Duration when
// this is the timeline's final phase: ramps hold their end value,
// periodic phases keep oscillating).
func (ph *Phase) load(u sim.Duration) float64 {
	switch ph.Kind {
	case PhaseConstant:
		return ph.Load
	case PhaseRamp:
		if u >= ph.Duration {
			return ph.To
		}
		frac := float64(u) / float64(ph.Duration)
		return ph.From + (ph.To-ph.From)*frac
	case PhaseSine:
		// Starts at the trough, crests at Period/2: a diurnal curve.
		frac := float64(u%ph.Period) / float64(ph.Period)
		return ph.Min + (ph.Max-ph.Min)*0.5*(1-math.Cos(2*math.Pi*frac))
	case PhaseBurst:
		if u%ph.Every < ph.Burst {
			return ph.Peak
		}
		return ph.Base
	}
	return 1
}

// validate checks the phase's shape for its kind.
func (ph *Phase) validate(i int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario: phase.%d: %s", i+1, fmt.Sprintf(format, args...))
	}
	if ph.Duration <= 0 {
		return bad("duration must be positive")
	}
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return bad("%s=%g outside [0, 1]", name, v)
		}
		return nil
	}
	switch ph.Kind {
	case PhaseConstant:
		if err := inUnit("load", ph.Load); err != nil {
			return err
		}
	case PhaseRamp:
		if err := inUnit("from", ph.From); err != nil {
			return err
		}
		if err := inUnit("to", ph.To); err != nil {
			return err
		}
	case PhaseSine:
		if err := inUnit("min", ph.Min); err != nil {
			return err
		}
		if err := inUnit("max", ph.Max); err != nil {
			return err
		}
		if ph.Min > ph.Max {
			return bad("min=%g exceeds max=%g", ph.Min, ph.Max)
		}
		if ph.Period <= 0 {
			return bad("period must be positive")
		}
	case PhaseBurst:
		if err := inUnit("base", ph.Base); err != nil {
			return err
		}
		if err := inUnit("peak", ph.Peak); err != nil {
			return err
		}
		if ph.Burst <= 0 || ph.Every <= 0 || ph.Burst > ph.Every {
			return bad("need 0 < burst <= every")
		}
	default:
		return bad("unknown kind %q (constant, ramp, sine or burst)", ph.Kind)
	}
	if ph.Hotspot < 0 || ph.Hotspot >= 1 {
		return bad("hotspot=%g outside [0, 1)", ph.Hotspot)
	}
	return nil
}

// Spec is the parsed, canonical form of a scenario: the workload
// section plus the traffic timeline. An empty Timeline means constant
// full load with no drift — the trivial scenario, which behaves (and
// reproduces, byte for byte) exactly like the equivalent static
// configuration.
type Spec struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`

	// RecordCount is the table size (YCSB records / SmallBank
	// accounts); 0 defers to the run profile's default.
	RecordCount int `json:"record_count,omitempty"`
	// FieldCount and FieldLength shape YCSB records (cells per record
	// and bytes per cell; 0 = paper defaults).
	FieldCount  int `json:"field_count,omitempty"`
	FieldLength int `json:"field_length,omitempty"`
	// RecordsPerTxn is YCSB's N (0 = paper default 4).
	RecordsPerTxn int `json:"records_per_txn,omitempty"`

	// Operation proportions (YCSB only; must sum to 1).
	ReadProportion   float64 `json:"read_proportion,omitempty"`
	UpdateProportion float64 `json:"update_proportion,omitempty"`
	InsertProportion float64 `json:"insert_proportion,omitempty"`

	// Distribution is the request distribution: uniform, zipfian or
	// latest ("" = zipfian when Theta > 0, else uniform).
	Distribution string  `json:"request_distribution,omitempty"`
	Theta        float64 `json:"theta,omitempty"`
	// PreLoaded bounds the logically present prefix when inserts are
	// enabled (see the ycsb package).
	PreLoaded int `json:"pre_loaded,omitempty"`

	// Warehouses is the TPC-C contention knob.
	Warehouses int `json:"warehouses,omitempty"`

	// Resolution is the admission-decision grid (0 = 50µs).
	Resolution sim.Duration `json:"resolution_ns,omitempty"`

	Timeline []Phase `json:"timeline,omitempty"`
}

// Validate checks cross-field consistency. Parse calls it; specs
// constructed in Go should call it too.
func (s *Spec) Validate() error {
	switch s.Workload {
	case WLYCSB, WLSmallBank, WLTPCC:
	case "":
		return fmt.Errorf("scenario: workload not set")
	default:
		return fmt.Errorf("scenario: unknown workload %q (ycsb, smallbank or tpcc)", s.Workload)
	}
	switch s.Distribution {
	case "", "uniform", "zipfian":
	case "latest":
		if s.Workload != WLYCSB {
			return fmt.Errorf("scenario: the latest distribution needs the ycsb workload")
		}
	default:
		return fmt.Errorf("scenario: unknown requestdistribution %q (uniform, zipfian or latest)", s.Distribution)
	}
	if s.Workload != WLYCSB {
		if s.ReadProportion != 0 || s.UpdateProportion != 0 || s.InsertProportion != 0 {
			return fmt.Errorf("scenario: operation proportions apply to the ycsb workload only")
		}
		if s.Workload == WLTPCC && (s.Distribution != "" || s.Theta != 0) {
			return fmt.Errorf("scenario: tpcc has no request distribution knob")
		}
	} else if s.ReadProportion != 0 || s.UpdateProportion != 0 || s.InsertProportion != 0 {
		sum := s.ReadProportion + s.UpdateProportion + s.InsertProportion
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("scenario: operation proportions sum to %g, want 1", sum)
		}
		if s.ReadProportion < 0 || s.UpdateProportion < 0 || s.InsertProportion < 0 {
			return fmt.Errorf("scenario: negative operation proportion")
		}
	}
	if s.Theta < 0 {
		return fmt.Errorf("scenario: negative theta")
	}
	if s.RecordCount < 0 || s.RecordsPerTxn < 0 || s.Warehouses < 0 ||
		s.FieldCount < 0 || s.FieldLength < 0 || s.PreLoaded < 0 {
		return fmt.Errorf("scenario: negative count")
	}
	if s.Resolution < 0 {
		return fmt.Errorf("scenario: negative resolution")
	}
	for i := range s.Timeline {
		ph := &s.Timeline[i]
		if err := ph.validate(i); err != nil {
			return err
		}
		if ph.Hotspot != 0 && s.Workload == WLTPCC {
			return fmt.Errorf("scenario: phase.%d: hotspot drift needs a keyed workload (ycsb or smallbank)", i+1)
		}
	}
	return nil
}

// resolution returns the admission grid with the default applied.
func (s *Spec) resolution() sim.Duration {
	if s.Resolution > 0 {
		return s.Resolution
	}
	return DefaultResolution
}

// Trivial reports whether the timeline never gates admission and
// never drifts — the scenario adds no events and no key remapping, so
// its runs are byte-equal to the equivalent static configuration.
func (s *Spec) Trivial() bool {
	for i := range s.Timeline {
		ph := &s.Timeline[i]
		if ph.Hotspot != 0 {
			return false
		}
		if ph.Kind != PhaseConstant || ph.Load != 1 {
			return false
		}
	}
	return true
}

// PhaseAt maps a virtual time to its phase index. Beyond the last
// boundary the final phase continues; an empty timeline returns -1.
func (s *Spec) PhaseAt(t sim.Time) int {
	if len(s.Timeline) == 0 {
		return -1
	}
	var start sim.Time
	for i := range s.Timeline {
		end := start.Add(s.Timeline[i].Duration)
		if t < end || i == len(s.Timeline)-1 {
			return i
		}
		start = end
	}
	return len(s.Timeline) - 1
}

// TimelineDuration is the sum of all phase durations.
func (s *Spec) TimelineDuration() sim.Duration {
	var d sim.Duration
	for i := range s.Timeline {
		d += s.Timeline[i].Duration
	}
	return d
}

// PhaseStart returns the timeline offset at which phase i begins.
func (s *Spec) PhaseStart(i int) sim.Time {
	var start sim.Time
	for j := 0; j < i && j < len(s.Timeline); j++ {
		start = start.Add(s.Timeline[j].Duration)
	}
	return start
}

// LoadAt evaluates the timeline's load fraction at virtual time t
// (1 when the timeline is empty).
func (s *Spec) LoadAt(t sim.Time) float64 {
	i := s.PhaseAt(t)
	if i < 0 {
		return 1
	}
	return s.Timeline[i].load(t.Sub(s.PhaseStart(i)))
}

// HotspotAt evaluates the drift offset (fraction of the key space) at
// virtual time t.
func (s *Spec) HotspotAt(t sim.Time) float64 {
	i := s.PhaseAt(t)
	if i < 0 {
		return 0
	}
	return s.Timeline[i].Hotspot
}

// active is the number of admitted coordinators at load fraction l.
func active(l float64, total int) int {
	if l <= 0 {
		return 0
	}
	n := int(math.Ceil(l*float64(total) - 1e-9))
	if n > total {
		n = total
	}
	return n
}

// Gate reports how long coordinator coord (0-based, of total) must
// wait at virtual time now before admitting its next transaction: 0
// admits immediately. Admission is by coordinator rank — coord is
// admitted iff coord < ceil(load×total) — so load modulation is a
// deterministic function of (spec, now, coord) with no randomness; a
// gated coordinator parks until the next decision point (phase
// boundary, burst edge, or resolution tick, whichever is next).
func (s *Spec) Gate(now sim.Time, coord, total int) sim.Duration {
	if len(s.Timeline) == 0 {
		return 0
	}
	if coord < active(s.LoadAt(now), total) {
		return 0
	}
	return s.nextDecision(now).Sub(now)
}

// nextDecision returns the earliest instant after now at which the
// admission set can change.
func (s *Spec) nextDecision(now sim.Time) sim.Time {
	res := s.resolution()
	next := now - now%sim.Time(res) + sim.Time(res)
	i := s.PhaseAt(now)
	ph := &s.Timeline[i]
	start := s.PhaseStart(i)
	if i < len(s.Timeline)-1 {
		if end := start.Add(ph.Duration); end < next {
			next = end
		}
	}
	if ph.Kind == PhaseBurst {
		// Burst edges are exact decision points so that bursts shorter
		// than the resolution grid are still honored.
		u := sim.Duration(now - start)
		pos := u % ph.Every
		var edge sim.Duration
		if pos < ph.Burst {
			edge = u - pos + ph.Burst
		} else {
			edge = u - pos + ph.Every
		}
		if e := start.Add(edge); e < next {
			next = e
		}
	}
	return next
}

// Canonical renders every field that influences a run in a fixed
// order — the input to Key and the equality the memoizing matrix
// relies on.
func (s *Spec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wl=%s;rec=%d;fc=%d;fl=%d;n=%d;read=%.6f;upd=%.6f;ins=%.6f;dist=%s;theta=%.6f;pre=%d;wh=%d;res=%d",
		s.Workload, s.RecordCount, s.FieldCount, s.FieldLength, s.RecordsPerTxn,
		s.ReadProportion, s.UpdateProportion, s.InsertProportion,
		s.Distribution, s.Theta, s.PreLoaded, s.Warehouses, int64(s.Resolution))
	for i := range s.Timeline {
		ph := &s.Timeline[i]
		fmt.Fprintf(&b, ";p%d=%s,d%d,l%.6f,f%.6f,t%.6f,mn%.6f,mx%.6f,pd%d,b%.6f,pk%.6f,bl%d,ev%d,h%.6f",
			i+1, ph.Kind, int64(ph.Duration), ph.Load, ph.From, ph.To, ph.Min, ph.Max,
			int64(ph.Period), ph.Base, ph.Peak, int64(ph.Burst), int64(ph.Every), ph.Hotspot)
	}
	return b.String()
}

// Key is the scenario's hash-stable identity: the (sanitized) name
// plus a digest of the canonical form. Two specs with equal keys
// describe the same scenario, so matrix memoization and the on-disk
// result cache dedupe across them.
func (s *Spec) Key() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	clean := make([]byte, 0, len(name))
	for _, c := range []byte(name) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			clean = append(clean, c)
		case c >= 'A' && c <= 'Z':
			clean = append(clean, c+'a'-'A')
		}
	}
	return fmt.Sprintf("%s@%s", clean, hex.EncodeToString(sum[:6]))
}
