// The .spec parser. The format is the properties style of YCSB
// workload files: one key=value per line, # or ! comments, blank
// lines ignored. The core keys are godb-bench/YCSB-compatible
// (recordcount, readproportion, updateproportion, insertproportion,
// scanproportion, requestdistribution, fieldcount, fieldlength,
// operationcount, readallfields, workload=core); extensions cover the
// knobs this repository sweeps (theta, recordspertxn, warehouses,
// preloaded, resolution) and the phase.<i>.* traffic timeline. See
// DESIGN.md §9 for the grammar.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"crest/internal/sim"
)

// Parse reads a .spec document. name seeds Spec.Name when the file
// has no name= property (ParseFile passes the file's base name).
func Parse(r io.Reader, name string) (*Spec, error) {
	s := &Spec{Name: name}
	phases := map[int]map[string]string{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '!' {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("scenario: line %d: %q is not key=value", lineNo, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		if strings.HasPrefix(key, "phase.") {
			idx, field, err := phaseKey(key)
			if err != nil {
				return nil, fmt.Errorf("scenario: line %d: %w", lineNo, err)
			}
			if phases[idx] == nil {
				phases[idx] = map[string]string{}
			}
			if _, dup := phases[idx][field]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate %s", lineNo, key)
			}
			phases[idx][field] = val
			continue
		}
		if err := s.setProperty(key, val); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	timeline, err := buildTimeline(phases)
	if err != nil {
		return nil, err
	}
	s.Timeline = timeline
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseFile reads a .spec file, naming the scenario after the file
// when it has no name= property.
func ParseFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Parse(f, name)
}

// setProperty applies one non-phase key.
func (s *Spec) setProperty(key, val string) error {
	switch key {
	case "name":
		s.Name = val
	case "workload":
		if val == "core" { // YCSB's own name for its core workload
			val = WLYCSB
		}
		s.Workload = strings.ToLower(val)
	case "recordcount":
		return setInt(&s.RecordCount, key, val)
	case "fieldcount":
		return setInt(&s.FieldCount, key, val)
	case "fieldlength":
		return setInt(&s.FieldLength, key, val)
	case "recordspertxn":
		return setInt(&s.RecordsPerTxn, key, val)
	case "preloaded":
		return setInt(&s.PreLoaded, key, val)
	case "warehouses":
		return setInt(&s.Warehouses, key, val)
	case "readproportion":
		return setFloat(&s.ReadProportion, key, val)
	case "updateproportion":
		return setFloat(&s.UpdateProportion, key, val)
	case "insertproportion":
		return setFloat(&s.InsertProportion, key, val)
	case "scanproportion":
		var scan float64
		if err := setFloat(&scan, key, val); err != nil {
			return err
		}
		if scan != 0 {
			return fmt.Errorf("scanproportion is unsupported (must be 0)")
		}
	case "requestdistribution":
		s.Distribution = strings.ToLower(val)
	case "theta", "zipfian.theta":
		return setFloat(&s.Theta, key, val)
	case "resolution":
		return setDuration(&s.Resolution, key, val)
	case "operationcount", "readallfields", "insertorder":
		// Accepted for YCSB spec compatibility, ignored: runs are
		// bounded by virtual time, all fields are always read, and
		// insert order is the frontier's.
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// phaseKey splits "phase.<i>.<field>".
func phaseKey(key string) (idx int, field string, err error) {
	rest := strings.TrimPrefix(key, "phase.")
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return 0, "", fmt.Errorf("phase key %q wants phase.<i>.<field>", key)
	}
	idx, err = strconv.Atoi(rest[:dot])
	if err != nil || idx < 1 {
		return 0, "", fmt.Errorf("bad phase index in %q", key)
	}
	return idx, rest[dot+1:], nil
}

// buildTimeline assembles phases 1..K (contiguous) from their fields.
func buildTimeline(phases map[int]map[string]string) ([]Phase, error) {
	if len(phases) == 0 {
		return nil, nil
	}
	idxs := make([]int, 0, len(phases))
	for i := range phases {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for want, got := range idxs {
		if got != want+1 {
			return nil, fmt.Errorf("scenario: phase indices must be contiguous from 1 (missing phase.%d)", want+1)
		}
	}
	out := make([]Phase, len(idxs))
	for _, i := range idxs {
		ph := &out[i-1]
		for field, val := range phases[i] {
			var err error
			switch field {
			case "type":
				ph.Kind = strings.ToLower(val)
			case "duration":
				err = setDuration(&ph.Duration, field, val)
			case "load":
				err = setFloat(&ph.Load, field, val)
			case "from":
				err = setFloat(&ph.From, field, val)
			case "to":
				err = setFloat(&ph.To, field, val)
			case "min":
				err = setFloat(&ph.Min, field, val)
			case "max":
				err = setFloat(&ph.Max, field, val)
			case "period":
				err = setDuration(&ph.Period, field, val)
			case "base":
				err = setFloat(&ph.Base, field, val)
			case "peak":
				err = setFloat(&ph.Peak, field, val)
			case "burst":
				err = setDuration(&ph.Burst, field, val)
			case "every":
				err = setDuration(&ph.Every, field, val)
			case "hotspot":
				err = setFloat(&ph.Hotspot, field, val)
			default:
				err = fmt.Errorf("unknown field %q", field)
			}
			if err != nil {
				return nil, fmt.Errorf("scenario: phase.%d.%s: %w", i, field, err)
			}
		}
	}
	return out, nil
}

func setInt(dst *int, key, val string) error {
	n, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("%s: bad integer %q", key, val)
	}
	*dst = n
	return nil
}

func setFloat(dst *float64, key, val string) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("%s: bad number %q", key, val)
	}
	*dst = f
	return nil
}

func setDuration(dst *sim.Duration, key, val string) error {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return fmt.Errorf("%s: bad duration %q (Go syntax, e.g. 2ms, 500us)", key, val)
	}
	*dst = sim.Duration(d)
	return nil
}
