package scenario

import (
	"os"
	"testing"
)

func TestWriteDemoSpecFile(t *testing.T) {
	if os.Getenv("WRITE_DEMO_SPEC") == "" {
		t.Skip("set WRITE_DEMO_SPEC=1 to regenerate examples/scenarios/drift-demo.spec")
	}
	if err := os.WriteFile("../../examples/scenarios/drift-demo.spec", []byte(DriftDemoText), 0o644); err != nil {
		t.Fatal(err)
	}
}
