package scenario

import "strings"

// DriftDemoText is the canonical hotspot-drift demo scenario: three
// phases of YCSB traffic in which the hot key set migrates at every
// boundary while the offered load changes shape (full load → trough →
// bursts). It is the spec behind the "scenario" experiment, and
// examples/scenarios/drift-demo.spec carries the same bytes (a test
// pins them together).
const DriftDemoText = `# Hotspot-drift demo: the hot key set migrates at each phase boundary
# while offered load moves from saturation to a trough to bursts.
name=drift-demo
workload=ycsb
readproportion=0.5
updateproportion=0.5
requestdistribution=zipfian
theta=0.99
recordspertxn=4

# Phase 1: saturation, hot set at the origin.
phase.1.type=constant
phase.1.duration=2ms
phase.1.load=1.0
phase.1.hotspot=0

# Phase 2: load trough, hot set drifted a third of the key space.
phase.2.type=constant
phase.2.duration=2ms
phase.2.load=0.3
phase.2.hotspot=0.33

# Phase 3: bursts over the trough, hot set drifted again.
phase.3.type=burst
phase.3.duration=2ms
phase.3.base=0.3
phase.3.peak=1.0
phase.3.burst=300us
phase.3.every=600us
phase.3.hotspot=0.66
`

// DriftDemo parses DriftDemoText. The text is a compile-time
// constant, so failure is a programming error.
func DriftDemo() *Spec {
	s, err := Parse(strings.NewReader(DriftDemoText), "drift-demo")
	if err != nil {
		panic("scenario: DriftDemoText does not parse: " + err.Error())
	}
	return s
}
