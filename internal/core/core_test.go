package core

import (
	"encoding/binary"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

type fixture struct {
	env *sim.Env
	sys *System
	cns []*ComputeNode
}

func newFixture(t *testing.T, opts Options, mns, cnCount, replicas, records int, history bool) *fixture {
	t.Helper()
	env := sim.NewEnv(13)
	params := rdma.DefaultParams()
	params.JitterPct = 0
	fabric := rdma.NewFabric(env, params)
	pool := memnode.NewPool(fabric, mns, 32<<20, replicas)
	db := engine.NewDB(pool)
	if history {
		db.History = engine.NewHistory()
	}
	sys := New(db, opts)
	sys.CreateTable(layout.Schema{ID: 1, Name: "kv", CellSizes: []int{8, 8, 8}}, records+16)
	for k := 0; k < records; k++ {
		sys.Load(1, layout.Key(k), [][]byte{word(uint64(k)), word(uint64(k)), word(uint64(k))})
	}
	if err := sys.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	f := &fixture{env: env, sys: sys}
	for i := 0; i < cnCount; i++ {
		cn := sys.NewComputeNode(i)
		cn.WarmCache()
		f.cns = append(f.cns, cn)
	}
	return f
}

func word(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func incTxn(key layout.Key, cell int, delta uint64) *engine.Txn {
	t := &engine.Txn{Label: "inc"}
	t.Blocks = []engine.Block{{Ops: []engine.Op{{
		Table:      1,
		Key:        key,
		ReadCells:  []int{cell},
		WriteCells: []int{cell},
		Hook: func(_ any, read [][]byte) [][]byte {
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + delta)}
		},
	}}}}
	return t
}

func readTxn(key layout.Key, cells []int, out *[]uint64) *engine.Txn {
	t := &engine.Txn{Label: "read", ReadOnly: true}
	t.Blocks = []engine.Block{{Ops: []engine.Op{{
		Table:     1,
		Key:       key,
		ReadCells: cells,
		Hook: func(_ any, read [][]byte) [][]byte {
			*out = (*out)[:0]
			for _, r := range read {
				*out = append(*out, binary.LittleEndian.Uint64(r))
			}
			return nil
		},
	}}}}
	return t
}

// poolCell reads a cell value directly from a node's region.
func (f *fixture) poolCell(node *memnode.Node, key layout.Key, cell int) uint64 {
	tab := f.sys.db.Table(1)
	off, ok := tab.AddrOf(key)
	if !ok {
		panic("key not loaded")
	}
	lay := f.sys.layouts[1]
	return binary.LittleEndian.Uint64(node.Region.Bytes()[off+uint64(lay.CellValueOff(cell)):])
}

// poolHeader reads a record header from a node's region.
func (f *fixture) poolHeader(node *memnode.Node, key layout.Key) layout.Header {
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(key)
	return layout.DecodeHeader(node.Region.Bytes()[off:])
}

func run(t *testing.T, f *fixture) {
	t.Helper()
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func retryUntilCommit(p *sim.Proc, c *Coordinator, txn *engine.Txn) engine.Attempt {
	retry := engine.DefaultRetryPolicy()
	for attempt := 1; ; attempt++ {
		if a := c.Execute(p, txn); a.Committed {
			return a
		}
		p.Sleep(retry.Backoff(attempt, p.Rand()))
	}
}

func TestLocalizedSingleWriteCommits(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 1, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		if a := coord.Execute(p, incTxn(2, 1, 100)); !a.Committed {
			t.Errorf("abort: %v", a.Reason)
		}
	})
	run(t, f)
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 2) {
		if got := f.poolCell(n, 2, 1); got != 102 {
			t.Fatalf("node %d cell = %d, want 102", n.ID, got)
		}
		h := f.poolHeader(n, 2)
		if h.EN[1] != 1 {
			t.Fatalf("node %d EN[1] = %d, want 1", n.ID, h.EN[1])
		}
		if h.EN[0] != 0 || h.EN[2] != 0 {
			t.Fatalf("untouched cell epochs bumped: %v", h.EN[:3])
		}
	}
	// Everything released: no cached objects, no pool locks.
	if n := f.cns[0].CachedObjects(); n != 0 {
		t.Fatalf("%d objects leaked in record cache", n)
	}
	if h := f.poolHeader(f.sys.db.Pool.PrimaryOf(1, 2), 2); h.Lock != 0 {
		t.Fatalf("pool lock leaked: %b", h.Lock)
	}
}

func TestLocalizedVerbCountsMatchTable2(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("c", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops = append(txn.Blocks[0].Ops, engine.Op{
			Table: 1, Key: 1, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte { return nil },
		})
		att = coord.Execute(p, txn)
	})
	run(t, f)
	if !att.Committed {
		t.Fatalf("abort: %v", att.Reason)
	}
	v := att.Verbs
	// Execution: masked-CAS (lock) + 2 READs (fetch both records).
	// Validation: 1 READ (header of the read-only record).
	// Commit: 1 log WRITE + cell WRITE + EN WRITE + masked-CAS unlock.
	if v.MaskedCASes != 2 {
		t.Errorf("masked-CASes = %d, want 2 (lock+unlock)", v.MaskedCASes)
	}
	if v.Reads != 3 {
		t.Errorf("READs = %d, want 3", v.Reads)
	}
	if v.Writes != 3 {
		t.Errorf("WRITEs = %d, want 3 (log + cell + epoch)", v.Writes)
	}
	if v.CASes != 0 {
		t.Errorf("plain CASes = %d, want 0", v.CASes)
	}
}

func TestCachedRecordSkipsFetch(t *testing.T) {
	// Two sequential transactions on one compute node: the second
	// writer reuses the cached record and the held lock only if it
	// overlaps in time; after full release the record is refetched.
	// Here we overlap them so the second sees the cache.
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[0].NewCoordinator(1)
	var v1, v2 engine.Attempt
	f.env.Spawn("c1", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(30 * sim.Microsecond) // keep the object resident
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
		}
		v1 = c1.Execute(p, txn)
	})
	f.env.Spawn("c2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		v2 = c2.Execute(p, incTxn(0, 0, 1))
	})
	run(t, f)
	if !v1.Committed || !v2.Committed {
		t.Fatalf("aborts: %v %v", v1.Reason, v2.Reason)
	}
	// c2 found the record cached and locked by its own CN: no READ of
	// the record, no masked-CAS to lock. It still validates nothing
	// (write cell covered) — its verbs are only commit-phase ones, and
	// if it was the last writer it did the flush.
	if v2.Verbs.MaskedCASes > 1 {
		t.Errorf("second writer issued %d masked-CASes", v2.Verbs.MaskedCASes)
	}
	if v2.Verbs.Reads != 0 {
		t.Errorf("second writer issued %d READs despite cache hit", v2.Verbs.Reads)
	}
	if got := f.poolCell(f.sys.db.Pool.PrimaryOf(1, 0), 0, 0); got != 2 {
		t.Fatalf("final value %d, want 2", got)
	}
}

func TestCellLevelAllowsDisjointWritesAcrossCNs(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[1].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) { outcomes[0] = c1.Execute(p, incTxn(0, 0, 1)) })
	f.env.Spawn("c2", func(p *sim.Proc) { outcomes[1] = c2.Execute(p, incTxn(0, 2, 1)) })
	run(t, f)
	if !outcomes[0].Committed || !outcomes[1].Committed {
		t.Fatalf("disjoint-cell writes conflicted: %v %v", outcomes[0].Reason, outcomes[1].Reason)
	}
	primary := f.sys.db.Pool.PrimaryOf(1, 0)
	if f.poolCell(primary, 0, 0) != 1 || f.poolCell(primary, 0, 2) != 1 {
		t.Fatal("lost update")
	}
}

func TestRecordLevelBaseConflictsOnDisjointCells(t *testing.T) {
	f := newFixture(t, BaseOptions(), 1, 2, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[1].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	// Make c1 slow so the lock overlap is certain.
	f.env.Spawn("c1", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(100 * sim.Microsecond)
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
		}
		outcomes[0] = c1.Execute(p, txn)
	})
	f.env.Spawn("c2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		outcomes[1] = c2.Execute(p, incTxn(0, 2, 1))
	})
	run(t, f)
	if !outcomes[0].Committed {
		t.Fatalf("c1 aborted: %v", outcomes[0].Reason)
	}
	if outcomes[1].Committed {
		t.Fatal("record-level base let disjoint cells through")
	}
	if !outcomes[1].FalseConflict {
		t.Fatal("disjoint-cell abort not classified as false conflict")
	}
}

func TestCellVariantAvoidsThatFalseConflict(t *testing.T) {
	f := newFixture(t, CellOptions(), 1, 2, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[1].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(100 * sim.Microsecond)
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
		}
		outcomes[0] = c1.Execute(p, txn)
	})
	f.env.Spawn("c2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		outcomes[1] = c2.Execute(p, incTxn(0, 2, 1))
	})
	run(t, f)
	if !outcomes[0].Committed || !outcomes[1].Committed {
		t.Fatalf("cell-level variant aborted disjoint writes: %v %v",
			outcomes[0].Reason, outcomes[1].Reason)
	}
}

func TestLocalWritersSameCellLastWriterWins(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 1, 2, true)
	const workers, incs = 6, 8
	for i := 0; i < workers; i++ {
		coord := f.cns[0].NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < incs; j++ {
				retryUntilCommit(p, coord, incTxn(0, 0, 1))
			}
		})
	}
	run(t, f)
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 0) {
		if got := f.poolCell(n, 0, 0); got != workers*incs {
			t.Fatalf("node %d counter = %d, want %d", n.ID, got, workers*incs)
		}
	}
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
	if n := f.cns[0].CachedObjects(); n != 0 {
		t.Fatalf("%d objects leaked", n)
	}
}

func TestCrossCNIncrementsSerializable(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 3, 1, 4, true)
	const workers, incs = 9, 6
	for i := 0; i < workers; i++ {
		coord := f.cns[i%3].NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < incs; j++ {
				retryUntilCommit(p, coord, incTxn(layout.Key(j%2), j%3, 1))
			}
		})
	}
	run(t, f)
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
	// Every cell of keys 0 and 1 should total the increments applied.
	primary0 := f.sys.db.Pool.PrimaryOf(1, 0)
	primary1 := f.sys.db.Pool.PrimaryOf(1, 1)
	total := uint64(0)
	for cell := 0; cell < 3; cell++ {
		total += f.poolCell(primary0, 0, cell) - 0
		total += f.poolCell(primary1, 1, cell) - 1
	}
	if total != workers*incs {
		t.Fatalf("total increments %d, want %d", total, workers*incs)
	}
}

func TestMixedReadersWritersSerializable(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 2, 0, 6, true)
	for i := 0; i < 4; i++ {
		coord := f.cns[i%2].NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < 12; j++ {
				retryUntilCommit(p, coord, incTxn(layout.Key(j%3), j%3, 1))
			}
		})
	}
	for i := 4; i < 8; i++ {
		coord := f.cns[i%2].NewCoordinator(i)
		f.env.Spawn("r", func(p *sim.Proc) {
			for j := 0; j < 12; j++ {
				var out []uint64
				coord.Execute(p, readTxn(layout.Key(j%3), []int{0, 1, 2}, &out))
				p.Sleep(2 * sim.Microsecond)
			}
		})
	}
	run(t, f)
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

func TestPipelinedBlocksKeyDependency(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 0, 8, false)
	coord := f.cns[0].NewCoordinator(0)
	type st struct{ next uint64 }
	f.env.Spawn("c", func(p *sim.Proc) {
		s := &st{}
		txn := &engine.Txn{Label: "chain", State: s}
		txn.Blocks = []engine.Block{
			{Ops: []engine.Op{{
				Table: 1, Key: 3, ReadCells: []int{0},
				Hook: func(state any, read [][]byte) [][]byte {
					state.(*st).next = binary.LittleEndian.Uint64(read[0]) + 2
					return nil
				},
			}}},
			{Ops: []engine.Op{{
				Table:      1,
				KeyFn:      func(state any) layout.Key { return layout.Key(state.(*st).next) },
				ReadCells:  []int{1},
				WriteCells: []int{1},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1000)}
				},
			}}},
		}
		if a := coord.Execute(p, txn); !a.Committed {
			t.Errorf("abort: %v", a.Reason)
		}
	})
	run(t, f)
	// Key 3 cell 0 = 3 → dependent key 5 → cell 1 becomes 1005.
	if got := f.poolCell(f.sys.db.Pool.PrimaryOf(1, 5), 5, 1); got != 1005 {
		t.Fatalf("dependent write = %d, want 1005", got)
	}
}

func TestDependentCommitWaitsAndCascadingAbort(t *testing.T) {
	// T1 writes cell 0 slowly and then aborts (validation failure
	// injected by making its read-only record change). T2 reads T1's
	// uncommitted value and must abort with it.
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 4, false)
	t1 := f.cns[0].NewCoordinator(0)
	t2 := f.cns[0].NewCoordinator(1)
	remote := f.cns[1].NewCoordinator(2)
	var a1, a2 engine.Attempt
	f.env.Spawn("t1", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "t1"}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{
			{
				Table: 1, Key: 0, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(_ any, read [][]byte) [][]byte {
					return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
				},
			},
			{
				// Read-only record 1: its epoch will change under us.
				Table: 1, Key: 1, ReadCells: []int{1},
				Hook: func(_ any, _ [][]byte) [][]byte {
					p.Sleep(60 * sim.Microsecond)
					return nil
				},
			},
		}}}
		a1 = t1.Execute(p, txn)
	})
	f.env.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond) // after T1 wrote its local version
		a2 = t2.Execute(p, incTxn(0, 0, 10))
	})
	f.env.Spawn("remote", func(p *sim.Proc) {
		p.Sleep(30 * sim.Microsecond) // invalidate T1's read-only set
		if a := remote.Execute(p, incTxn(1, 1, 5)); !a.Committed {
			t.Errorf("remote writer aborted: %v", a.Reason)
		}
	})
	run(t, f)
	if a1.Committed {
		t.Fatal("T1 should have failed validation")
	}
	if a1.Reason != engine.AbortValidation {
		t.Fatalf("T1 reason = %v, want validation", a1.Reason)
	}
	if a2.Committed {
		t.Fatal("T2 read T1's doomed value and still committed")
	}
	if a2.Reason != engine.AbortDependency {
		t.Fatalf("T2 reason = %v, want dependency", a2.Reason)
	}
	// Key 0 untouched by the cascade.
	if got := f.poolCell(f.sys.db.Pool.PrimaryOf(1, 0), 0, 0); got != 0 {
		t.Fatalf("cell 0 = %d after cascading abort, want 0", got)
	}
}

func TestCrossCNLockConflictAbortsAfterRetries(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 2, false)
	holder := f.cns[0].NewCoordinator(0)
	contender := f.cns[1].NewCoordinator(1)
	var ha, ca engine.Attempt
	f.env.Spawn("holder", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(400 * sim.Microsecond)
			return [][]byte{word(binary.LittleEndian.Uint64(read[0]) + 1)}
		}
		ha = holder.Execute(p, txn)
	})
	f.env.Spawn("contender", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		ca = contender.Execute(p, incTxn(0, 0, 1))
	})
	run(t, f)
	if !ha.Committed {
		t.Fatalf("holder aborted: %v", ha.Reason)
	}
	if ca.Committed {
		t.Fatal("contender committed against a held cell lock")
	}
	if ca.Reason != engine.AbortLockFail {
		t.Fatalf("contender reason = %v", ca.Reason)
	}
	if ca.FalseConflict {
		t.Fatal("same-cell cross-CN conflict classified false")
	}
}

func TestValidationCatchesRemoteEpochChange(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 2, false)
	reader := f.cns[0].NewCoordinator(0)
	writer := f.cns[1].NewCoordinator(1)
	var ra engine.Attempt
	f.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "slow-read", ReadOnly: true}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{{
			Table: 1, Key: 0, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte {
				p.Sleep(60 * sim.Microsecond)
				return nil
			},
		}}}}
		ra = reader.Execute(p, txn)
	})
	f.env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(15 * sim.Microsecond)
		if a := writer.Execute(p, incTxn(0, 0, 9)); !a.Committed {
			t.Errorf("writer aborted: %v", a.Reason)
		}
	})
	run(t, f)
	if ra.Committed {
		t.Fatal("stale read committed")
	}
	if ra.Reason != engine.AbortValidation {
		t.Fatalf("reason = %v, want validation", ra.Reason)
	}
}

func TestReverseOrderDetected(t *testing.T) {
	// T1 (earlier TS_exec) pauses between blocks; T2 (later TS_exec)
	// writes the record T1 will read in its second block. T1 must
	// abort with a reverse-order violation.
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 4, false)
	t1 := f.cns[0].NewCoordinator(0)
	t2 := f.cns[0].NewCoordinator(1)
	anchor := f.cns[0].NewCoordinator(2)
	var a1 engine.Attempt
	// The anchor keeps record 1 write-referenced so T2's version is
	// still in the record cache when T1 reads it.
	f.env.Spawn("anchor", func(p *sim.Proc) {
		txn := incTxn(1, 2, 0)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(200 * sim.Microsecond)
			return [][]byte{read[0]}
		}
		anchor.Execute(p, txn)
	})
	f.env.Spawn("t1", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		txn := &engine.Txn{Label: "t1"}
		txn.Blocks = []engine.Block{
			{Ops: []engine.Op{{
				Table: 1, Key: 0, ReadCells: []int{0}, WriteCells: []int{0},
				Hook: func(_ any, read [][]byte) [][]byte {
					p.Sleep(80 * sim.Microsecond) // stall before block 2
					return [][]byte{read[0]}
				},
			}}},
			{Ops: []engine.Op{{
				Table: 1, Key: 1, ReadCells: []int{0},
				Hook: func(_ any, _ [][]byte) [][]byte { return nil },
			}}},
		}
		a1 = t1.Execute(p, txn)
	})
	f.env.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(30 * sim.Microsecond) // after T1 got its TS_exec
		if a := t2.Execute(p, incTxn(1, 0, 7)); !a.Committed {
			t.Errorf("t2 aborted: %v", a.Reason)
		}
	})
	run(t, f)
	if a1.Committed {
		t.Fatal("T1 committed through a reverse ordering")
	}
	if a1.Reason != engine.AbortReverse {
		t.Fatalf("T1 reason = %v, want reverse-order", a1.Reason)
	}
}

func TestDirectVariantsSerializable(t *testing.T) {
	for _, opts := range []Options{BaseOptions(), CellOptions()} {
		opts := opts
		name := "base"
		if opts.CellLevel {
			name = "cell"
		}
		t.Run(name, func(t *testing.T) {
			f := newFixture(t, opts, 2, 2, 1, 4, true)
			for i := 0; i < 6; i++ {
				coord := f.cns[i%2].NewCoordinator(i)
				f.env.Spawn("w", func(p *sim.Proc) {
					for j := 0; j < 8; j++ {
						retryUntilCommit(p, coord, incTxn(layout.Key(j%2), j%3, 1))
					}
				})
			}
			run(t, f)
			if err := f.sys.db.History.Check(); err != nil {
				t.Fatalf("history not serializable: %v", err)
			}
			total := uint64(0)
			for k := layout.Key(0); k < 2; k++ {
				primary := f.sys.db.Pool.PrimaryOf(1, k)
				for cell := 0; cell < 3; cell++ {
					total += f.poolCell(primary, k, cell) - uint64(k)
				}
			}
			if total != 48 {
				t.Fatalf("total increments %d, want 48", total)
			}
		})
	}
}

func TestENThresholdFallback(t *testing.T) {
	// Force the fallback by setting a tiny threshold: validation must
	// still work (and use full-record reads).
	opts := DefaultOptions()
	opts.ENThreshold = 1 * sim.Microsecond
	f := newFixture(t, opts, 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("c", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops = append(txn.Blocks[0].Ops, engine.Op{
			Table: 1, Key: 1, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte { return nil },
		})
		att = coord.Execute(p, txn)
	})
	run(t, f)
	if !att.Committed {
		t.Fatalf("fallback validation aborted: %v", att.Reason)
	}
	// The fallback validation read fetches the whole record (320
	// bytes for 3 cells + header), visible in BytesRead.
	lay := f.sys.layouts[1]
	if att.Verbs.BytesRead < uint64(2*lay.Size()) {
		t.Fatalf("read %d bytes; full-record fallback expected ≥ %d",
			att.Verbs.BytesRead, 2*lay.Size())
	}

	// And a stale read still aborts under the fallback.
	f2 := newFixture(t, opts, 1, 2, 0, 2, false)
	reader := f2.cns[0].NewCoordinator(0)
	writer := f2.cns[1].NewCoordinator(1)
	var ra engine.Attempt
	f2.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "r", ReadOnly: true}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{{
			Table: 1, Key: 0, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte {
				p.Sleep(50 * sim.Microsecond)
				return nil
			},
		}}}}
		ra = reader.Execute(p, txn)
	})
	f2.env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		writer.Execute(p, incTxn(0, 0, 1))
	})
	run(t, f2)
	if ra.Committed {
		t.Fatal("fallback validation missed a stale read")
	}
}

func TestLogEntryRoundTrip(t *testing.T) {
	recs := []logRecord{
		{Table: 1, Key: 42, Mask: 0b101, Vals: [][]byte{word(7), word(9)}},
		{Table: 3, Key: 0, Mask: 0b1, Vals: [][]byte{[]byte("abc")}},
	}
	entry := encodeLogEntry(77, 12345, []uint64{5, 6}, recs)
	txnID, ts, deps, got, n, err := decodeLogEntry(entry)
	if err != nil {
		t.Fatal(err)
	}
	if txnID != 77 || ts != 12345 || n != len(entry) {
		t.Fatalf("txnID=%d ts=%d n=%d", txnID, ts, n)
	}
	if len(deps) != 2 || deps[0] != 5 || deps[1] != 6 {
		t.Fatalf("deps = %v", deps)
	}
	if len(got) != 2 || got[0].Mask != 0b101 || string(got[1].Vals[0]) != "abc" {
		t.Fatalf("recs = %+v", got)
	}
	// Truncations must error, not panic.
	for i := 0; i < len(entry); i++ {
		if _, _, _, _, _, err := decodeLogEntry(entry[:i]); err == nil && i < len(entry) {
			// A shorter prefix may still decode if the length word is
			// intact and the content happens to fit — only lengths
			// below the declared total must fail.
			if i < n {
				t.Fatalf("truncated entry (%d bytes) decoded", i)
			}
		}
	}
}

func TestHighContentionStress(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 3, 1, 3, true)
	const workers = 12
	for i := 0; i < workers; i++ {
		coord := f.cns[i%3].NewCoordinator(i)
		seedK := i
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < 10; j++ {
				key := layout.Key((seedK + j) % 3)
				cell := (seedK * j) % 3
				if j%4 == 3 {
					var out []uint64
					coord.Execute(p, readTxn(key, []int{0, 1, 2}, &out))
				} else {
					retryUntilCommit(p, coord, incTxn(key, cell, 1))
				}
			}
		})
	}
	run(t, f)
	if err := f.sys.db.History.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
	for _, cn := range f.cns {
		if n := cn.CachedObjects(); n != 0 {
			t.Fatalf("record cache leaked %d objects", n)
		}
	}
	for k := layout.Key(0); k < 3; k++ {
		for _, n := range f.sys.db.Pool.ReplicaNodes(1, k) {
			if h := f.poolHeader(n, k); h.Lock != 0 {
				t.Fatalf("lock leaked on node %d key %d: %b", n.ID, k, h.Lock)
			}
		}
	}
}
